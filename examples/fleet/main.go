// Fleet: run the same 8-VM consolidation fleet under the parallel host
// execution engine at increasing worker counts. The simulated results —
// guest cycles, per-VM work, fairness — are byte-identical at every worker
// count (the engine's transparency guarantee); only host wall-clock changes,
// dropping with min(workers, host cores). An epoch-barrier dedup scan shows
// where cross-VM services live under parallel execution.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"govisor"
)

const (
	vmCount = 8
	vmRAM   = 4 << 20
)

func buildFleet() (*govisor.Host, error) {
	kernel, err := govisor.BuildKernel()
	if err != nil {
		return nil, err
	}
	host := govisor.NewHost(uint64(vmCount+2)*(vmRAM>>12), vmCount, govisor.NewCredit())
	for i := 0; i < vmCount; i++ {
		vm, err := host.CreateVM(govisor.Config{
			Name: fmt.Sprintf("vm%02d", i), Mode: govisor.ModeHW, MemBytes: vmRAM,
		})
		if err != nil {
			return nil, err
		}
		// Half the fleet computes, half dirties memory — identical kernels,
		// so the barrier dedup scan has pages to merge.
		if i%2 == 0 {
			govisor.Compute(120_000, 0).Apply(vm)
		} else {
			govisor.Dirty(40, 24, 300).Apply(vm)
		}
		if err := vm.Boot(kernel); err != nil {
			return nil, err
		}
		host.AddToScheduler(i, 256, 0)
	}
	return host, nil
}

func main() {
	fmt.Printf("fleet: %d VMs on an %d-PCPU simulated host, credit scheduler, %d host cores\n",
		vmCount, vmCount, runtime.NumCPU())
	fmt.Printf("%8s %10s %9s %16s %14s %12s\n",
		"workers", "wall ms", "speedup", "aggregate work", "guest cycles", "dedup saved")

	var baseWall time.Duration
	var baseWork, baseCycles uint64
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		host, err := buildFleet()
		if err != nil {
			log.Fatal(err)
		}
		// Cross-VM services run at epoch barriers: here, a KSM pass over the
		// fleet every epoch.
		scanner := govisor.NewDedupScanner(host.Pool)
		var spaces []*govisor.VM
		spaces = append(spaces, host.VMs...)
		host.EpochFunc = func() {
			for _, vm := range spaces {
				scanner.ScanVM(vm.Mem)
			}
		}

		start := time.Now()
		host.RunParallel(workers, 2_000_000_000)
		wall := time.Since(start)
		if !host.AllHalted() {
			log.Fatalf("fleet did not halt at %d workers", workers)
		}

		var work, cycles uint64
		for _, vm := range host.VMs {
			work += vm.Result(govisor.ResultPrimary)
			cycles += vm.CPU.Cycles
		}
		if baseWall == 0 {
			baseWall, baseWork, baseCycles = wall, work, cycles
		}
		if work != baseWork || cycles != baseCycles {
			log.Fatalf("worker count leaked into guest state: work %d vs %d, cycles %d vs %d",
				work, baseWork, cycles, baseCycles)
		}
		fmt.Printf("%8d %10.1f %8.2fx %16d %14d %12d\n",
			workers, float64(wall.Microseconds())/1000,
			float64(baseWall)/float64(wall), work, cycles, scanner.Stats.FramesFreed)
	}
	fmt.Println("\nguest-visible numbers identical at every worker count — parallelism is host-side only")
}
