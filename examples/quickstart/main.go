// Quickstart: boot the same guest kernel under all four virtualization
// modes, run a privileged-op-heavy workload, and compare the slowdown each
// mode imposes over the native baseline — the headline comparison of the
// study in a dozen lines of API.
package main

import (
	"fmt"
	"log"

	"govisor"
)

func main() {
	kernel, err := govisor.BuildKernel()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("govisor quickstart: compute workload, 1 privileged op / 50 ALU ops")
	fmt.Printf("%-8s  %14s  %12s  %s\n", "mode", "guest cycles", "vs native", "notes")

	var native uint64
	for _, mode := range []govisor.Mode{
		govisor.ModeNative, govisor.ModeHW, govisor.ModePara, govisor.ModeTrap,
	} {
		pool := govisor.NewPool(16 << 20 >> 12)
		vm, err := govisor.NewVM(pool, govisor.Config{
			Name: mode.String(), Mode: mode, MemBytes: 8 << 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		govisor.Compute(2000, 50).Apply(vm)
		if err := vm.Boot(kernel); err != nil {
			log.Fatal(err)
		}
		if st := vm.RunToHalt(5_000_000_000); st != govisor.StateHalted {
			log.Fatalf("%v: state %v (%v)", mode, st, vm.Err)
		}
		cycles := region(vm)
		if mode == govisor.ModeNative {
			native = cycles
		}
		fmt.Printf("%-8s  %14d  %11.2fx  exits: ecall=%d priv=%d\n",
			mode, cycles, float64(cycles)/float64(native),
			vm.Stats.Hypercalls, vm.Stats.PTWriteEmuls)
	}
	fmt.Println("\ntrap-and-emulate pays an exit per privileged op; hardware assist")
	fmt.Println("executes them directly — the gap the VT-x/EPT generation closed.")
}

// region extracts cycles between the kernel's start/end markers.
func region(vm *govisor.VM) uint64 {
	var start, end uint64
	for _, m := range vm.Markers {
		switch m.ID {
		case 1:
			start = m.Cycles
		case 2:
			end = m.Cycles
		}
	}
	return end - start
}
