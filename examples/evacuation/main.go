// Evacuation: drain every VM off a failing host over real (in-process)
// wire connections. Each guest streams to a fresh destination through the
// framed migration protocol; a deterministic fault injector then cuts
// connections, truncates writes, flips bits and spikes latency mid-drain,
// and the engine retries, resumes from the last acknowledged round, and —
// when a downtime budget is unmeetable — aborts with the source rolled
// back bit-for-bit.
package main

import (
	"errors"
	"fmt"
	"log"

	"govisor"
)

const (
	vmRAM = 2 << 20
	pool  = 8 << 20 >> 12
)

func main() {
	kernel, err := govisor.BuildKernel()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("host evacuation: 4 VMs drained over faulty wire connections")
	fmt.Printf("%-6s %-22s %14s %8s %8s %7s %s\n",
		"vm", "transport", "downtime(Kcyc)", "retries", "resumes", "faults", "outcome")

	for i := 0; i < 4; i++ {
		src := bootVM(kernel, fmt.Sprintf("vm%d", i), 8+uint64(i)*32)
		dst, err := govisor.NewVM(govisor.NewPool(pool), govisor.Config{
			Name: fmt.Sprintf("vm%d-new", i), Mode: govisor.ModeHW, MemBytes: vmRAM,
		})
		if err != nil {
			log.Fatal(err)
		}

		opt := govisor.DefaultStreamOptions()
		opt.MaxAttempts = 10
		transport := "clean pipe"
		var inj *govisor.FaultInjector
		if i%2 == 1 {
			// Odd VMs drain through a deliberately unreliable wire.
			inj = govisor.NewFaultInjector(govisor.FaultPlan{
				Seed: int64(42 + i), MeanGapBytes: 40_000, MaxFaults: 3,
			})
			opt.Wire = govisor.PipeWire(inj.Wrap)
			opt.DelayCycles = inj.TakeDelayCycles
			transport = fmt.Sprintf("faulty (seed %d)", 42+i)
		}

		rep, err := govisor.StreamMigrate(src, dst, opt)
		var faults uint64
		if inj != nil {
			faults = inj.Stats().Total()
		}
		switch {
		case err == nil:
			fmt.Printf("%-6s %-22s %14.1f %8d %8d %7d migrated, destination running\n",
				fmt.Sprintf("vm%d", i), transport,
				float64(rep.DowntimeCycles)/1e3, rep.Retries, rep.Resumes, faults)
			dst.Step(10_000_000)
			if dst.State == govisor.StateError {
				log.Fatalf("evacuated VM broke: %v", dst.Err)
			}
		case errors.Is(err, govisor.ErrMigrationAborted):
			fmt.Printf("%-6s %-22s %14s %8d %8d %7d aborted, source rolled back\n",
				fmt.Sprintf("vm%d", i), transport, "-", rep.Retries, rep.Resumes, faults)
			src.Step(10_000_000) // the rolled-back source keeps serving
			if src.State == govisor.StateError {
				log.Fatalf("rolled-back VM broke: %v", src.Err)
			}
		default:
			log.Fatal(err)
		}
	}

	// An unmeetable downtime budget: the engine must refuse to eat the
	// brown-out and instead roll the source back.
	src := bootVM(kernel, "budget-vm", 64)
	dst, err := govisor.NewVM(govisor.NewPool(pool), govisor.Config{
		Name: "budget-new", Mode: govisor.ModeHW, MemBytes: vmRAM,
	})
	if err != nil {
		log.Fatal(err)
	}
	opt := govisor.DefaultStreamOptions()
	opt.DowntimeBudget = 1 // one cycle: impossible
	if _, err := govisor.StreamMigrate(src, dst, opt); !errors.Is(err, govisor.ErrMigrationAborted) {
		log.Fatalf("impossible budget did not abort: %v", err)
	}
	src.Step(10_000_000)
	fmt.Printf("%-6s %-22s %14s %8s %8s %7s aborted on 1-cycle budget, source unharmed\n",
		"vm4", "clean pipe", "-", "-", "-", "-")

	fmt.Println("\nretry and round-resume ride out transport faults; when the budget")
	fmt.Println("cannot be met the source resumes with guest state bit-for-bit intact.")
}

func bootVM(kernel []byte, name string, pages uint64) *govisor.VM {
	vm, err := govisor.NewVM(govisor.NewPool(pool), govisor.Config{
		Name: name, Mode: govisor.ModeHW, MemBytes: vmRAM,
	})
	if err != nil {
		log.Fatal(err)
	}
	govisor.Dirty(0, pages, 2000).Apply(vm)
	if err := vm.Boot(kernel); err != nil {
		log.Fatal(err)
	}
	vm.Step(5_000_000)
	return vm
}
