// Migration: live-migrate a running VM between two simulated hosts under
// all three algorithms and at several guest dirty rates, reporting total
// time and downtime — the experiment that motivated pre-copy's design and
// post-copy's rebuttal.
package main

import (
	"fmt"
	"log"

	"govisor"
)

const (
	vmRAM = 8 << 20
	pool  = 64 << 20 >> 12
)

func main() {
	kernel, err := govisor.BuildKernel()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("live migration over a simulated 10 Gb/s link, 8 MiB guest")
	fmt.Printf("%-13s %-12s %12s %12s %10s %8s\n",
		"algorithm", "dirty rate", "total (ms)", "downtime(ms)", "sent (MiB)", "rounds")

	for _, load := range []struct {
		name  string
		pages uint64
		think uint64
	}{
		{"idle-ish", 8, 5000},
		{"moderate", 128, 500},
		{"hot", 512, 0},
	} {
		for _, alg := range []struct {
			name string
			opt  func() govisor.MigrateOptions
		}{
			{"pre-copy", func() govisor.MigrateOptions { return govisor.DefaultMigrateOptions() }},
			{"stop-and-copy", func() govisor.MigrateOptions {
				o := govisor.DefaultMigrateOptions()
				o.Mode = govisor.StopAndCopy
				return o
			}},
			{"post-copy", func() govisor.MigrateOptions {
				o := govisor.DefaultMigrateOptions()
				o.Mode = govisor.PostCopy
				o.PostCopyPushChunk = 256
				return o
			}},
		} {
			src := bootVM(kernel, load.pages, load.think)
			dst, err := govisor.NewVM(govisor.NewPool(pool), govisor.Config{
				Name: "dst", Mode: govisor.ModeHW, MemBytes: vmRAM,
			})
			if err != nil {
				log.Fatal(err)
			}
			rep, err := govisor.Migrate(src, dst, alg.opt())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-13s %-12s %12.2f %12.3f %10.1f %8d\n",
				alg.name, load.name,
				float64(rep.TotalCycles)/1e6, float64(rep.DowntimeCycles)/1e6,
				float64(rep.BytesSent)/(1<<20), len(rep.Rounds))
			// Prove the destination keeps working.
			dst.Step(20_000_000)
			if dst.State == govisor.StateError {
				log.Fatalf("destination broke: %v", dst.Err)
			}
		}
	}
	fmt.Println("\npre-copy downtime grows with dirty rate; post-copy keeps it flat")
	fmt.Println("and pays with demand-fetch latency after the switchover.")
}

func bootVM(kernel []byte, pages, think uint64) *govisor.VM {
	vm, err := govisor.NewVM(govisor.NewPool(pool), govisor.Config{
		Name: "src", Mode: govisor.ModeHW, MemBytes: vmRAM,
	})
	if err != nil {
		log.Fatal(err)
	}
	govisor.Dirty(0, pages, think).Apply(vm)
	if err := vm.Boot(kernel); err != nil {
		log.Fatal(err)
	}
	vm.Step(10_000_000) // warm the working set
	return vm
}
