// Overcommit: run a guest whose working set exceeds host memory and watch
// the memory-service stack hold it together — balloon policy, host swap
// with page pinning, and content dedup reclaiming what identical VMs share.
package main

import (
	"fmt"
	"log"

	"govisor"
	"govisor/internal/balloon"
	"govisor/internal/mem"
)

func main() {
	kernel, err := govisor.BuildKernel()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("overcommit sweep: 900-page working set vs shrinking host pool")
	fmt.Printf("%10s %12s %10s %10s %12s\n",
		"pool (pg)", "guest Mcyc", "swap-outs", "swap-ins", "slowdown")

	var baseline float64
	for _, frames := range []uint64{2048, 1024, 896, 832, 768} {
		pool := govisor.NewPool(frames)
		vm, err := govisor.NewVM(pool, govisor.Config{
			Name: "oc", Mode: govisor.ModeHW, MemBytes: 8 << 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		swap := balloon.NewSwapper()
		ctl := &balloon.Controller{
			Policy: balloon.DefaultPolicy(), Pool: pool,
			Spaces: []*mem.GuestPhys{vm.Mem}, Swap: swap,
		}
		vm.ReclaimHook = func() bool { return ctl.ReclaimOne() }
		source := swap.Source(vm.Mem)
		vm.PageSource = func(gfn uint64) ([]byte, bool) {
			page, ok := source(gfn)
			if ok {
				vm.CPU.AddCycles(20_000) // SSD-class swap-in latency
			}
			return page, ok
		}
		govisor.MemTouch(6, 900, 20).Apply(vm)
		if err := vm.Boot(kernel); err != nil {
			log.Fatal(err)
		}
		if st := vm.RunToHalt(50_000_000_000); st != govisor.StateHalted {
			log.Fatalf("pool %d: state %v (%v)", frames, st, vm.Err)
		}
		cyc := float64(cycles(vm))
		if baseline == 0 {
			baseline = cyc
		}
		fmt.Printf("%10d %12.1f %10d %10d %11.2fx\n",
			frames, cyc/1e6, swap.SwapOuts, swap.SwapIns, cyc/baseline)
	}

	fmt.Println("\nnow 8 identical idle guests + dedup:")
	pool := govisor.NewPool(4096)
	var vms []*govisor.VM
	for i := 0; i < 8; i++ {
		vm, err := govisor.NewVM(pool, govisor.Config{
			Name: fmt.Sprintf("vm%d", i), Mode: govisor.ModeHW, MemBytes: 8 << 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		govisor.MemTouch(1, 64, 0).Apply(vm)
		if err := vm.Boot(kernel); err != nil {
			log.Fatal(err)
		}
		vm.RunToHalt(10_000_000_000)
		vms = append(vms, vm)
	}
	before := pool.InUse()
	sc := govisor.NewDedupScanner(pool)
	for _, vm := range vms {
		sc.ScanVM(vm.Mem)
	}
	fmt.Printf("frames: %d → %d (%.0f%% reclaimed; %d pages merged)\n",
		before, pool.InUse(),
		100*float64(before-pool.InUse())/float64(before),
		sc.Stats.PagesMerged)
}

func cycles(vm *govisor.VM) uint64 {
	var start, end uint64
	for _, m := range vm.Markers {
		switch m.ID {
		case 1:
			start = m.Cycles
		case 2:
			end = m.Cycles
		}
	}
	return end - start
}
