// Consolidation: pack an increasing number of VMs onto one simulated host
// and measure aggregate and per-VM throughput under the credit scheduler,
// plus memory savings from page dedup across the identical guests — the
// "how many servers fit in one box" question server virtualization answers.
package main

import (
	"fmt"
	"log"

	"govisor"
)

const (
	vmRAM    = 4 << 20
	hostTime = 100_000_000 // 100 ms of host time per configuration
)

func main() {
	kernel, err := govisor.BuildKernel()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("consolidation on a 4-core simulated host, credit scheduler")
	fmt.Printf("%4s %16s %14s %12s %14s\n",
		"VMs", "aggregate work", "per-VM work", "fairness", "dedup saved")

	for _, n := range []int{1, 2, 4, 8, 16} {
		cs := govisor.NewCredit()
		host := govisor.NewHost(uint64(n+2)*(vmRAM>>12), 4, cs)
		for i := 0; i < n; i++ {
			vm, err := host.CreateVM(govisor.Config{
				Name: fmt.Sprintf("vm%02d", i), Mode: govisor.ModeHW, MemBytes: vmRAM,
			})
			if err != nil {
				log.Fatal(err)
			}
			govisor.Dirty(0, 16, 200).Apply(vm)
			if err := vm.Boot(kernel); err != nil {
				log.Fatal(err)
			}
			host.AddToScheduler(i, 256, 0)
		}
		host.Run(hostTime)

		var total uint64
		shares := make([]float64, 0, n)
		for _, vm := range host.VMs {
			w := vm.Result(govisor.ResultPrimary)
			total += w
			shares = append(shares, float64(w))
		}
		// Dedup the identical guests and report the saving.
		pool := host.Pool
		before := pool.InUse()
		scanner := govisor.NewDedupScanner(pool)
		for _, vm := range host.VMs {
			scanner.ScanVM(vm.Mem)
		}
		saved := before - pool.InUse()

		fmt.Printf("%4d %16d %14d %11.3f %11d pg\n",
			n, total, total/uint64(n), jain(shares), saved)
	}
	fmt.Println("\naggregate work scales until the 4 physical cores saturate, then")
	fmt.Println("per-VM share drops proportionally — the 3–4:1 consolidation point.")
}

func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
