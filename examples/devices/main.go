// Devices: drive the same disk and NIC traffic through the fully-emulated
// programmed-I/O devices and through virtio, counting VM exits and guest
// cycles — the reason every production hypervisor ships paravirtual I/O.
package main

import (
	"fmt"
	"log"

	"govisor"
)

const vmRAM = 8 << 20

func main() {
	fmt.Println("device path comparison (64 sectors written, 64 frames sent)")
	fmt.Printf("%-22s %14s %12s %14s\n", "path", "guest cycles", "mmio exits", "per operation")

	// --- disk ---
	{
		vm := newVM()
		if _, err := vm.AttachPIODisk(govisor.NewRawImage(4096)); err != nil {
			log.Fatal(err)
		}
		prog, err := govisor.BuildPIODiskProgram(64, true)
		if err != nil {
			log.Fatal(err)
		}
		cyc, exits := run(vm, prog)
		fmt.Printf("%-22s %14d %12d %11.1f ex\n", "disk: programmed-I/O", cyc, exits, float64(exits)/64)
	}
	for _, batch := range []uint64{1, 8, 32} {
		vm := newVM()
		if _, _, err := vm.AttachVirtioBlk(govisor.NewRawImage(4096)); err != nil {
			log.Fatal(err)
		}
		prog, err := govisor.BuildVirtioBlkProgram(64, batch, 0)
		if err != nil {
			log.Fatal(err)
		}
		cyc, exits := run(vm, prog)
		fmt.Printf("disk: virtio (batch %2d) %14d %12d %11.1f ex\n", batch, cyc, exits, float64(exits)/64)
	}

	// --- network ---
	{
		vm := newVM()
		sw := govisor.NewSwitch()
		if _, err := vm.AttachRegNIC(sw.NewPort()); err != nil {
			log.Fatal(err)
		}
		sw.NewPort() // sink
		prog, err := govisor.BuildRegNICProgram(64, 256)
		if err != nil {
			log.Fatal(err)
		}
		cyc, exits := run(vm, prog)
		fmt.Printf("%-22s %14d %12d %11.1f ex\n", "net: register NIC", cyc, exits, float64(exits)/64)
	}
	{
		vm := newVM()
		sw := govisor.NewSwitch()
		if _, _, err := vm.AttachVirtioNet(sw.NewPort()); err != nil {
			log.Fatal(err)
		}
		sw.NewPort()
		prog, err := govisor.BuildVirtioNetProgram(64, 16, 256, 0)
		if err != nil {
			log.Fatal(err)
		}
		cyc, exits := run(vm, prog)
		fmt.Printf("%-22s %14d %12d %11.1f ex\n", "net: virtio (batch 16)", cyc, exits, float64(exits)/64)
	}
	fmt.Println("\nvirtio collapses per-register exits into one doorbell per batch;")
	fmt.Println("exits per op is the whole story.")
}

func newVM() *govisor.VM {
	vm, err := govisor.NewVM(govisor.NewPool(2*vmRAM>>12), govisor.Config{
		Name: "dev", Mode: govisor.ModeHW, MemBytes: vmRAM,
	})
	if err != nil {
		log.Fatal(err)
	}
	return vm
}

func run(vm *govisor.VM, prog []byte) (cycles, mmioExits uint64) {
	if err := vm.Boot(prog); err != nil {
		log.Fatal(err)
	}
	if st := vm.RunToHalt(10_000_000_000); st != govisor.StateHalted || vm.HaltCode != 0 {
		log.Fatalf("state %v code %#x err %v", st, vm.HaltCode, vm.Err)
	}
	var start, end uint64
	for _, m := range vm.Markers {
		switch m.ID {
		case 1:
			start = m.Cycles
		case 2:
			end = m.Cycles
		}
	}
	return end - start, vm.Stats.MMIOExits
}
