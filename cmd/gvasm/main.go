// Gvasm assembles GV64 source (.gvs) into a flat binary runnable by
// `govisor -image`, and disassembles binaries back to mnemonics.
//
//	gvasm prog.gvs            # assemble → prog.bin
//	gvasm -o out.bin prog.gvs
//	gvasm -d prog.bin         # disassemble to stdout
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"govisor/internal/asm"
	"govisor/internal/gabi"
	"govisor/internal/isa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gvasm: ")
	var (
		out    = flag.String("o", "", "output file (default: input with .bin)")
		disasm = flag.Bool("d", false, "disassemble a binary instead")
		org    = flag.Uint64("org", gabi.KernelBase, "load/link address")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: gvasm [-d] [-o out.bin] file")
	}
	in := flag.Arg(0)
	data, err := os.ReadFile(in)
	if err != nil {
		log.Fatal(err)
	}

	if *disasm {
		for off := 0; off+4 <= len(data); off += 4 {
			w := binary.LittleEndian.Uint32(data[off:])
			inst := isa.Decode(w)
			text := isa.Disasm(inst)
			if !inst.Op.Valid() {
				text = fmt.Sprintf(".word 0x%08x", w)
			}
			fmt.Printf("%08x:  %08x  %s\n", *org+uint64(off), w, text)
		}
		return
	}

	img, err := asm.Assemble(string(data), *org)
	if err != nil {
		log.Fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(in, ".gvs") + ".bin"
	}
	if err := os.WriteFile(dst, img, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d bytes at %#x\n", dst, len(img), *org)
}
