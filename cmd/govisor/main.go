// Govisor runs a guest VM from the command line: either the built-in
// universal kernel with a named workload, or a flat GV64 binary produced by
// gvasm.
//
// Examples:
//
//	govisor -mode trap -workload compute -iters 10000
//	govisor -mode hw -workload memtouch -pages 512 -iters 50
//	govisor -mode native -image prog.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"govisor"
	"govisor/internal/gabi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("govisor: ")

	var (
		modeName = flag.String("mode", "hw", "virtualization mode: native, trap, para, hw")
		memMB    = flag.Uint64("mem", 16, "guest RAM in MiB")
		poolMB   = flag.Uint64("pool", 64, "host memory pool in MiB")
		image    = flag.String("image", "", "flat guest binary (from gvasm) instead of the built-in kernel")
		workload = flag.String("workload", "compute", "built-in workload: compute, memtouch, ptchurn, syscall, csr, dirty, idle")
		iters    = flag.Uint64("iters", 1000, "workload iterations")
		pages    = flag.Uint64("pages", 64, "workload working-set pages")
		arg0     = flag.Uint64("arg0", 0, "workload-specific argument")
		writes   = flag.Uint64("writes", 50, "write percentage for memtouch")
		budget   = flag.Uint64("budget", 60_000, "run budget in millions of cycles")
		stats    = flag.Bool("stats", true, "print execution statistics")
	)
	flag.Parse()

	var mode govisor.Mode
	switch *modeName {
	case "native":
		mode = govisor.ModeNative
	case "trap":
		mode = govisor.ModeTrap
	case "para":
		mode = govisor.ModePara
	case "hw":
		mode = govisor.ModeHW
	default:
		log.Fatalf("unknown mode %q", *modeName)
	}

	pool := govisor.NewPool(*poolMB << 20 >> 12)
	vm, err := govisor.NewVM(pool, govisor.Config{
		Name: "cli", Mode: mode, MemBytes: *memMB << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	var kernel []byte
	if *image != "" {
		kernel, err = os.ReadFile(*image)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		kernel, err = govisor.BuildKernel()
		if err != nil {
			log.Fatal(err)
		}
		w, err := workloadFor(*workload, *iters, *pages, *arg0, *writes)
		if err != nil {
			log.Fatal(err)
		}
		w.Apply(vm)
	}

	if err := vm.Boot(kernel); err != nil {
		log.Fatal(err)
	}
	state := vm.RunToHalt(*budget * 1_000_000)

	if out := vm.Output(); out != "" {
		fmt.Print(out)
	}
	fmt.Printf("state: %v (halt code %d)\n", state, vm.HaltCode)
	if vm.Err != nil {
		log.Fatal(vm.Err)
	}
	if *stats {
		cpu := vm.CPU
		fmt.Printf("cycles: %d  instructions: %d  traps: %d\n",
			cpu.Cycles, cpu.Instret, cpu.Stats.Traps)
		fmt.Printf("result0: %d  result1: %d\n",
			vm.Result(gabi.PResult0), vm.Result(gabi.PResult1))
		fmt.Printf("vmm: hypercalls=%d injections=%d shadow-fills=%d pt-emuls=%d para-maps=%d mmio=%d demand-fills=%d\n",
			vm.Stats.Hypercalls, vm.Stats.Injections, vm.Stats.ShadowFills,
			vm.Stats.PTWriteEmuls, vm.Stats.ParaMaps, vm.Stats.MMIOExits, vm.Stats.DemandFills)
		tlb := vm.MMUCtx.TLB
		fmt.Printf("tlb: hits=%d misses=%d (%.1f%% hit rate)\n",
			tlb.Stats.Hits, tlb.Stats.Misses, 100*tlb.HitRate())
	}
	if state != govisor.StateHalted {
		os.Exit(1)
	}
}

func workloadFor(name string, iters, pages, arg0, writes uint64) (govisor.Workload, error) {
	switch name {
	case "compute":
		return govisor.Compute(iters, arg0), nil
	case "memtouch":
		return govisor.MemTouch(iters, pages, writes), nil
	case "ptchurn":
		return govisor.PTChurn(iters, arg0 != 0), nil
	case "syscall":
		return govisor.Syscall(iters), nil
	case "csr":
		return govisor.CSRLoop(iters), nil
	case "dirty":
		return govisor.Dirty(iters, pages, arg0), nil
	case "idle":
		period := arg0
		if period == 0 {
			period = 100_000
		}
		return govisor.Idle(iters, period), nil
	}
	return govisor.Workload{}, fmt.Errorf("unknown workload %q", name)
}
