// Benchsuite regenerates every table and figure of the reproduced
// evaluation (see EXPERIMENTS.md) and prints them in order. Pass experiment
// IDs (e.g. "T1 F7 A2") to run a subset; -list shows what exists.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"govisor/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	experiments := bench.All()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	want := map[string]bool{}
	for _, arg := range flag.Args() {
		want[strings.ToUpper(arg)] = true
	}

	failed := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Printf("══ %s — %s ══\n", e.ID, e.Name)
		fmt.Printf("expected shape: %s\n\n", e.Notes)
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			fmt.Printf("FAILED: %v\n\n", err)
			failed++
			continue
		}
		fmt.Print(table.String())
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiments failed\n", failed)
		os.Exit(1)
	}
}
