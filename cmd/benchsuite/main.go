// Benchsuite regenerates every table and figure of the reproduced
// evaluation (see EXPERIMENTS.md) and prints them in order. Pass experiment
// IDs (e.g. "T1 F7 A2") to run a subset; -list shows what exists. Unknown
// IDs are an error, not a silent no-op.
//
// Flags for the perf trajectory:
//
//	-json DIR      also write one BENCH_<id>.json per M-series experiment
//	-cpuprofile F  write a pprof CPU profile of the run (interpreter profiling)
//	-quick         scale M-series workloads down (CI smoke budgets)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"govisor/internal/bench"
)

// jsonResult is the machine-readable form of one experiment's table.
type jsonResult struct {
	ID      string     `json:"id"`
	Name    string     `json:"name"`
	Notes   string     `json:"notes"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
	Seconds float64    `json:"seconds"`
	Quick   bool       `json:"quick"`
}

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	jsonDir := flag.String("json", "", "directory to write BENCH_<id>.json files for M-series experiments")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	quick := flag.Bool("quick", false, "scale M-series microbenchmark workloads down for smoke runs")
	flag.Parse()

	experiments := bench.All()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	valid := map[string]bool{}
	for _, e := range experiments {
		valid[e.ID] = true
	}
	want := map[string]bool{}
	var unknown []string
	for _, arg := range flag.Args() {
		id := strings.ToUpper(arg)
		if !valid[id] {
			unknown = append(unknown, arg)
			continue
		}
		want[id] = true
	}
	if len(unknown) > 0 {
		ids := make([]string, 0, len(valid))
		for id := range valid {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintf(os.Stderr, "benchsuite: unknown experiment(s): %s\nvalid IDs: %s\n",
			strings.Join(unknown, " "), strings.Join(ids, " "))
		os.Exit(2)
	}

	bench.SetQuick(*quick)
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
	}
	// The profile must be flushed even when experiments fail (that is
	// exactly when one profiles), so stop it explicitly before any exit
	// rather than deferring past os.Exit.
	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	failed := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Printf("══ %s — %s ══\n", e.ID, e.Name)
		fmt.Printf("expected shape: %s\n\n", e.Notes)
		start := time.Now()
		table, err := e.Run()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Printf("FAILED: %v\n\n", err)
			failed++
			continue
		}
		fmt.Print(table.String())
		fmt.Printf("(%.1fs)\n\n", elapsed.Seconds())
		if *jsonDir != "" && strings.HasPrefix(e.ID, "M") {
			out := jsonResult{
				ID: e.ID, Name: e.Name, Notes: e.Notes,
				Header: table.Header, Rows: table.Rows,
				Seconds: elapsed.Seconds(), Quick: *quick,
			}
			buf, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: encoding %s: %v\n", e.ID, err)
				failed++
				continue
			}
			path := filepath.Join(*jsonDir, "BENCH_"+e.ID+".json")
			if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: writing %s: %v\n", path, err)
				failed++
			}
		}
	}
	stopProfile()
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiments failed\n", failed)
		os.Exit(1)
	}
}
