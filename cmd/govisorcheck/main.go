// Command govisorcheck runs govisor's custom static-analysis suite over the
// module: atomic-field discipline, epoch-barrier confinement, fast-path/
// reference-arm parity, guest-visible determinism, and counter ownership.
//
// Usage:
//
//	go run ./cmd/govisorcheck ./...
//	go run ./cmd/govisorcheck -list
//	go run ./cmd/govisorcheck -run atomicfield,detorder ./...
//
// Exit status is 0 when no analyzer reports a finding, 1 on findings, 2 on
// load/usage errors. Directives (//govisor:nonatomic, //govisor:serialonly,
// //govisor:worker, //govisor:pair, ...) are documented in EXPERIMENTS.md
// under "Invariants & directives".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"govisor/internal/anlz"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	dir := flag.String("C", ".", "directory to run go list in")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: govisorcheck [-list] [-run a,b] [-C dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := anlz.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*anlz.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "govisorcheck: unknown analyzer %q\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}

	prog, err := anlz.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "govisorcheck: %v\n", err)
		return 2
	}
	diags, err := prog.Run(suite...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "govisorcheck: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "govisorcheck: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
