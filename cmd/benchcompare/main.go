// Benchcompare is the CI perf-regression gate: it diffs the BENCH_M*.json
// files fresh `benchsuite -quick -json` runs produced against the committed
// baselines in bench-baseline/ and fails when the host-ns/guest-instr column
// regresses beyond the tolerance (default 25%). The quick workloads time
// milliseconds of host work, so single samples are noisy; the gate therefore
// accepts several current-run directories and takes the per-row minimum —
// best-of-N is robust to scheduling spikes while a real dispatch regression
// (which inflates every sample) still trips it. Rows are keyed by every
// non-host column — mode, workload, config AND the guest instruction/cycle
// counts, which are byte-identical across runs by the transparency
// contract — so a key mismatch also catches a simulated number silently
// drifting. Baselines refresh with one command:
//
//	go run ./cmd/benchsuite -quick -json bench-baseline M1 M2 M3 M4 M5 M6
//
// Tables without a host-ns/guest-instr column (M2 measures wall-clock
// scale-out, which shared runners cannot gate meaningfully) are skipped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// metricColumn is the gated measurement.
const metricColumn = "host ns/instr"

// hostColumns are host-side values excluded from row keys: they vary run to
// run by design.
var hostColumns = map[string]bool{metricColumn: true, "speedup": true}

// table mirrors cmd/benchsuite's jsonResult.
type table struct {
	ID     string     `json:"id"`
	Name   string     `json:"name"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Quick  bool       `json:"quick"`
}

func load(path string) (*table, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t table
	if err := json.Unmarshal(buf, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &t, nil
}

// metrics extracts key → ns/instr for one table, or nil if the table has no
// gated column. The key joins every non-host cell.
func metrics(t *table) (map[string]float64, error) {
	col := -1
	for i, h := range t.Header {
		if h == metricColumn {
			col = i
		}
	}
	if col < 0 {
		return nil, nil
	}
	out := make(map[string]float64, len(t.Rows))
	for _, row := range t.Rows {
		var key []string
		for i, cell := range row {
			if i < len(t.Header) && !hostColumns[t.Header[i]] {
				key = append(key, cell)
			}
		}
		k := strings.Join(key, " | ")
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			return nil, fmt.Errorf("%s row %q: bad %s %q", t.ID, k, metricColumn, row[col])
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("%s: duplicate row key %q", t.ID, k)
		}
		out[k] = v
	}
	return out, nil
}

// summaryRow is one gated comparison, retained for the markdown summary.
type summaryRow struct {
	id, key, status string
	base, cur       float64
}

// writeSummary appends the per-row comparison table as GitHub-flavoured
// markdown — the shape $GITHUB_STEP_SUMMARY renders on the run page. Written
// on failure too, so a red gate shows exactly which row tripped it.
func writeSummary(path string, rows []summaryRow, failed int, tolerance float64) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: summary: %v\n", err)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "### Perf gate: %s, best-of-N vs baseline (tolerance %.0f%%)\n\n", metricColumn, tolerance*100)
	fmt.Fprintln(f, "| table | row | baseline | current | ratio | status |")
	fmt.Fprintln(f, "|---|---|---:|---:|---:|---|")
	for _, r := range rows {
		status := r.status
		if status == "REGRESSION" {
			status = "**REGRESSION**"
		}
		// Row keys join cells with " | "; escape so they stay one column.
		fmt.Fprintf(f, "| %s | %s | %.1f | %.1f | %.2fx | %s |\n",
			r.id, strings.ReplaceAll(r.key, "|", "\\|"), r.base, r.cur, r.cur/r.base, status)
	}
	if failed > 0 {
		fmt.Fprintf(f, "\n**%d regression(s)/mismatch(es) beyond tolerance.**\n", failed)
	} else {
		fmt.Fprintf(f, "\nAll gated metrics within tolerance.\n")
	}
}

func main() {
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional regression of "+metricColumn)
	summary := flag.String("summary", "", "append a markdown per-row table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	flag.Parse()
	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcompare [-tolerance F] BASELINE_DIR CURRENT_DIR...")
		os.Exit(2)
	}
	baseDir, curDirs := flag.Arg(0), flag.Args()[1:]

	paths, err := filepath.Glob(filepath.Join(baseDir, "BENCH_*.json"))
	if err != nil || len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: no BENCH_*.json baselines in %s\n", baseDir)
		os.Exit(2)
	}
	sort.Strings(paths)

	failed := 0
	var sumRows []summaryRow
	for _, basePath := range paths {
		name := filepath.Base(basePath)
		base, err := load(basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
			os.Exit(2)
		}
		baseM, err := metrics(base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
			os.Exit(2)
		}
		if baseM == nil {
			fmt.Printf("%-16s skipped (no %q column)\n", base.ID, metricColumn)
			continue
		}
		// Per-row minimum over every current run: best-of-N.
		curM := map[string]float64{}
		bad := false
		for _, curDir := range curDirs {
			cur, err := load(filepath.Join(curDir, name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchcompare: FAIL %s: current run missing: %v\n", base.ID, err)
				bad = true
				break
			}
			if cur.Quick != base.Quick {
				fmt.Fprintf(os.Stderr, "benchcompare: FAIL %s: quick=%v vs baseline quick=%v — not comparable\n",
					base.ID, cur.Quick, base.Quick)
				bad = true
				break
			}
			m, err := metrics(cur)
			if err != nil || m == nil {
				fmt.Fprintf(os.Stderr, "benchcompare: FAIL %s: unreadable current metrics: %v\n", base.ID, err)
				bad = true
				break
			}
			for k, v := range m {
				if best, ok := curM[k]; !ok || v < best {
					curM[k] = v
				}
			}
		}
		if bad {
			failed++
			continue
		}
		// Rows present only in the current run are a coverage hole, not a
		// pass: a new mode/workload/config row ships with a baseline or the
		// gate is lying about what it checked.
		for k := range curM {
			if _, ok := baseM[k]; !ok {
				fmt.Fprintf(os.Stderr, "benchcompare: FAIL %s [%s]: row has no baseline — refresh bench-baseline/\n",
					base.ID, k)
				failed++
			}
		}
		keys := make([]string, 0, len(baseM))
		for k := range baseM {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b := baseM[k]
			c, ok := curM[k]
			if !ok {
				// Either the table shape changed or a guest-visible number
				// drifted; both need a reviewed baseline refresh.
				fmt.Fprintf(os.Stderr, "benchcompare: FAIL %s [%s]: row missing from current run (shape change or guest-number drift)\n",
					base.ID, k)
				failed++
				continue
			}
			ratio := c / b
			status := "ok"
			if c > b*(1+*tolerance) {
				status = "REGRESSION"
				failed++
			}
			sumRows = append(sumRows, summaryRow{id: base.ID, key: k, status: status, base: b, cur: c})
			fmt.Printf("%-4s %-60s %8.1f → %8.1f ns/instr (%.2fx) %s\n",
				base.ID, k, b, c, ratio, status)
		}
	}
	// Tables emitted by the current runs but absent from the baseline dir
	// (a new M-series experiment) must commit a baseline to be gated at all.
	baselined := map[string]bool{}
	for _, p := range paths {
		baselined[filepath.Base(p)] = true
	}
	curOnly := map[string]bool{}
	for _, curDir := range curDirs {
		cps, _ := filepath.Glob(filepath.Join(curDir, "BENCH_*.json"))
		for _, p := range cps {
			if name := filepath.Base(p); !baselined[name] && !curOnly[name] {
				curOnly[name] = true
				fmt.Fprintf(os.Stderr, "benchcompare: FAIL %s: no committed baseline — add it to %s\n", name, baseDir)
				failed++
			}
		}
	}
	if *summary != "" {
		writeSummary(*summary, sumRows, failed, *tolerance)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: %d regression(s)/mismatch(es) beyond %.0f%% tolerance\n",
			failed, *tolerance*100)
		os.Exit(1)
	}
	fmt.Println("benchcompare: all gated metrics within tolerance")
}
