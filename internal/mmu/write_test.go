package mmu

import (
	"math/rand"
	"testing"

	"govisor/internal/isa"
)

// TestTranslateWriteEquivalence is the store-side sibling of
// TestTranslateDataEquivalence: two identical contexts, one translating
// stores with the generic Translate(AccWrite), the other with the memoized
// TranslateWrite, driven by the same randomized stream of stores, loads,
// fetches, flushes and SATP rewrites. Results, faults and every statistic
// must stay identical at every step — including the fill-time permission
// check standing in for the per-access recheck the hit path skips, user-mode
// faults replaying exactly, and memo invalidation by TLB inserts, evictions
// and flushes from the interleaved load/fetch traffic.
func TestTranslateWriteEquivalence(t *testing.T) {
	build := func() (*Context, uint64) {
		g := newSpace(t, 128)
		root := buildIdentity(t, g, 64*isa.PageSize, 96,
			isa.PTERead|isa.PTEWrite|isa.PTEExec)
		c := NewContext(g, StyleDirect)
		c.SetSatp(isa.MakeSatp(isa.SatpModePaged, 1, root))
		return c, root
	}
	ref, rootA := build()
	fast, rootB := build()
	if rootA != rootB {
		t.Fatalf("roots differ: %d vs %d", rootA, rootB)
	}

	rng := rand.New(rand.NewSource(23))
	check := func(step int, gr, gf uint64, rr, rf int, fr, ff *Fault) {
		t.Helper()
		if (fr == nil) != (ff == nil) {
			t.Fatalf("step %d: fault mismatch %v vs %v", step, fr, ff)
		}
		if fr != nil && (fr.Kind != ff.Kind || fr.Cause != ff.Cause) {
			t.Fatalf("step %d: fault detail mismatch %v vs %v", step, fr, ff)
		}
		if gr != gf || rr != rf {
			t.Fatalf("step %d: result mismatch (%#x,%d) vs (%#x,%d)", step, gr, rr, gf, rf)
		}
		if ref.Stats != fast.Stats {
			t.Fatalf("step %d: mmu stats diverged\nref  %+v\nfast %+v", step, ref.Stats, fast.Stats)
		}
		if ref.TLB.Stats != fast.TLB.Stats {
			t.Fatalf("step %d: tlb stats diverged\nref  %+v\nfast %+v", step, ref.TLB.Stats, fast.TLB.Stats)
		}
	}

	for i := 0; i < 20000; i++ {
		switch op := rng.Intn(100); {
		case op < 55:
			// Store, usually clustered on a few hot pages so the memo
			// engages, sometimes beyond the mapped region so guest faults
			// replay too, sometimes from user mode so the fill-time
			// permission check is exercised against U-less PTEs.
			var va uint64
			switch rng.Intn(10) {
			case 0:
				va = uint64(rng.Intn(80)) << isa.PageShift // may fault
			default:
				va = uint64(rng.Intn(4))<<isa.PageShift + uint64(rng.Intn(512))*8
			}
			user := rng.Intn(8) == 0
			gr, rr, fr := ref.Translate(va, isa.AccWrite, user)
			gf, rf, ff := fast.TranslateWrite(va, user)
			check(i, gr, gf, rr, rf, fr, ff)
		case op < 75:
			// Load through the data path on both sides: the load and store
			// memos are separate arrays, and their combined stat stream must
			// still match the single-path reference.
			va := uint64(rng.Intn(6))<<isa.PageShift + uint64(rng.Intn(512))*8
			gr, rr, fr := ref.Translate(va, isa.AccRead, false)
			gf, rf, ff := fast.TranslateData(va, isa.AccRead, false)
			check(i, gr, gf, rr, rf, fr, ff)
		case op < 90:
			// Fetch traffic: TLB inserts and LRU churn that can evict store
			// entries underneath the write memo.
			va := uint64(rng.Intn(64))<<isa.PageShift + uint64(rng.Intn(1024))*4
			gr, rr, fr := ref.TranslateFetch(va, false)
			gf, rf, ff := fast.TranslateFetch(va, false)
			check(i, gr, gf, rr, rf, fr, ff)
		case op < 96:
			// SFENCE of one page or the whole space.
			va := uint64(rng.Intn(64)) << isa.PageShift
			if rng.Intn(4) == 0 {
				va = 0
			}
			ref.Flush(va, 0)
			fast.Flush(va, 0)
		default:
			// SATP rewrite (ASID flip): exercises the memo's satp guard.
			satp := isa.MakeSatp(isa.SatpModePaged, uint16(1+rng.Intn(2)), rootA)
			ref.SetSatp(satp)
			fast.SetSatp(satp)
		}
	}
}

// TestTranslateWriteBareMode: with paging disabled the memo must still count
// translations exactly and pass addresses through.
func TestTranslateWriteBareMode(t *testing.T) {
	g := newSpace(t, 16)
	c := NewContext(g, StyleDirect)
	for i := 0; i < 10; i++ {
		gpa, refs, fault := c.TranslateWrite(uint64(i)*64, false)
		if fault != nil || refs != 0 || gpa != uint64(i)*64 {
			t.Fatalf("bare translate: gpa %#x refs %d fault %v", gpa, refs, fault)
		}
	}
	if c.Stats.Translations != 10 {
		t.Fatalf("translations = %d, want 10", c.Stats.Translations)
	}
	if c.TLB.Stats.Hits != 0 || c.TLB.Stats.Misses != 0 {
		t.Fatalf("bare mode touched the TLB: %+v", c.TLB.Stats)
	}
}
