package mmu

import (
	"math/rand"
	"testing"

	"govisor/internal/isa"
)

// TestTranslateFetchEquivalence drives two identical translation contexts
// with the same randomized stream of fetches, data accesses, flushes and
// SATP rewrites. One translates fetches with the generic Translate, the
// other with the memoized TranslateFetch. Results, faults, reference counts
// and every statistic (including TLB LRU-driven eviction behaviour) must be
// identical at every step — the memo must be invisible to the simulation.
func TestTranslateFetchEquivalence(t *testing.T) {
	build := func() (*Context, uint64) {
		g := newSpace(t, 128)
		root := buildIdentity(t, g, 64*isa.PageSize, 96,
			isa.PTERead|isa.PTEWrite|isa.PTEExec)
		c := NewContext(g, StyleDirect)
		c.SetSatp(isa.MakeSatp(isa.SatpModePaged, 1, root))
		return c, root
	}
	ref, rootA := build()
	fast, rootB := build()
	if rootA != rootB {
		t.Fatalf("roots differ: %d vs %d", rootA, rootB)
	}

	rng := rand.New(rand.NewSource(7))
	check := func(step int, gr, gf uint64, rr, rf int, fr, ff *Fault) {
		t.Helper()
		if (fr == nil) != (ff == nil) {
			t.Fatalf("step %d: fault mismatch %v vs %v", step, fr, ff)
		}
		if fr != nil && (fr.Kind != ff.Kind || fr.Cause != ff.Cause) {
			t.Fatalf("step %d: fault detail mismatch %v vs %v", step, fr, ff)
		}
		if gr != gf || rr != rf {
			t.Fatalf("step %d: result mismatch (%#x,%d) vs (%#x,%d)", step, gr, rr, gf, rf)
		}
		if ref.Stats != fast.Stats {
			t.Fatalf("step %d: mmu stats diverged\nref  %+v\nfast %+v", step, ref.Stats, fast.Stats)
		}
		if ref.TLB.Stats != fast.TLB.Stats {
			t.Fatalf("step %d: tlb stats diverged\nref  %+v\nfast %+v", step, ref.TLB.Stats, fast.TLB.Stats)
		}
	}

	for i := 0; i < 20000; i++ {
		switch op := rng.Intn(100); {
		case op < 70:
			// Instruction fetch, usually clustered on a few hot pages so the
			// memo actually engages, sometimes beyond the mapped region so
			// guest faults replay too.
			var va uint64
			switch rng.Intn(10) {
			case 0:
				va = uint64(rng.Intn(80)) << isa.PageShift // may fault
			default:
				va = uint64(rng.Intn(3))<<isa.PageShift + uint64(rng.Intn(1024))*4
			}
			user := rng.Intn(8) == 0
			gr, rr, fr := ref.Translate(va, isa.AccExec, user)
			gf, rf, ff := fast.TranslateFetch(va, user)
			check(i, gr, gf, rr, rf, fr, ff)
		case op < 90:
			// Data access: inserts and LRU churn that can evict the fetch
			// entry underneath the memo.
			va := uint64(rng.Intn(64))<<isa.PageShift + uint64(rng.Intn(512))*8
			acc := isa.AccRead
			if rng.Intn(2) == 0 {
				acc = isa.AccWrite
			}
			gr, rr, fr := ref.Translate(va, acc, false)
			gf, rf, ff := fast.Translate(va, acc, false)
			check(i, gr, gf, rr, rf, fr, ff)
		case op < 96:
			// SFENCE of one page or the whole space.
			va := uint64(rng.Intn(64)) << isa.PageShift
			if rng.Intn(4) == 0 {
				va = 0
			}
			ref.Flush(va, 0)
			fast.Flush(va, 0)
		default:
			// SATP rewrite (same root): exercises the memo's satp guard and,
			// without ASIDs, a full flush.
			satp := isa.MakeSatp(isa.SatpModePaged, uint16(1+rng.Intn(2)), rootA)
			ref.SetSatp(satp)
			fast.SetSatp(satp)
		}
	}
}
