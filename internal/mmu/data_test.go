package mmu

import (
	"math/rand"
	"testing"

	"govisor/internal/isa"
)

// TestTranslateDataEquivalence is TestTranslateFetchEquivalence's data-side
// twin: two identical contexts, one translating loads/stores with the
// generic Translate, the other with the memoized TranslateData, driven by
// the same randomized stream of data accesses, fetches, flushes and SATP
// rewrites. Results, faults, reference counts and every statistic must stay
// identical at every step — including permission faults replayed from the
// memo and memo invalidation by TLB inserts, evictions and flushes.
func TestTranslateDataEquivalence(t *testing.T) {
	build := func() (*Context, uint64) {
		g := newSpace(t, 128)
		root := buildIdentity(t, g, 64*isa.PageSize, 96,
			isa.PTERead|isa.PTEWrite|isa.PTEExec)
		c := NewContext(g, StyleDirect)
		c.SetSatp(isa.MakeSatp(isa.SatpModePaged, 1, root))
		return c, root
	}
	ref, rootA := build()
	fast, rootB := build()
	if rootA != rootB {
		t.Fatalf("roots differ: %d vs %d", rootA, rootB)
	}

	rng := rand.New(rand.NewSource(11))
	check := func(step int, gr, gf uint64, rr, rf int, fr, ff *Fault) {
		t.Helper()
		if (fr == nil) != (ff == nil) {
			t.Fatalf("step %d: fault mismatch %v vs %v", step, fr, ff)
		}
		if fr != nil && (fr.Kind != ff.Kind || fr.Cause != ff.Cause) {
			t.Fatalf("step %d: fault detail mismatch %v vs %v", step, fr, ff)
		}
		if gr != gf || rr != rf {
			t.Fatalf("step %d: result mismatch (%#x,%d) vs (%#x,%d)", step, gr, rr, gf, rf)
		}
		if ref.Stats != fast.Stats {
			t.Fatalf("step %d: mmu stats diverged\nref  %+v\nfast %+v", step, ref.Stats, fast.Stats)
		}
		if ref.TLB.Stats != fast.TLB.Stats {
			t.Fatalf("step %d: tlb stats diverged\nref  %+v\nfast %+v", step, ref.TLB.Stats, fast.TLB.Stats)
		}
	}

	for i := 0; i < 20000; i++ {
		switch op := rng.Intn(100); {
		case op < 70:
			// Data access, usually clustered on a few hot pages so the memo
			// engages (the loop's source/destination pages), sometimes beyond
			// the mapped region so guest faults replay too, sometimes from
			// user mode so permission faults replay from the memo.
			var va uint64
			switch rng.Intn(10) {
			case 0:
				va = uint64(rng.Intn(80)) << isa.PageShift // may fault
			default:
				va = uint64(rng.Intn(4))<<isa.PageShift + uint64(rng.Intn(512))*8
			}
			acc := isa.AccRead
			if rng.Intn(2) == 0 {
				acc = isa.AccWrite
			}
			user := rng.Intn(8) == 0
			gr, rr, fr := ref.Translate(va, acc, user)
			gf, rf, ff := fast.TranslateData(va, acc, user)
			check(i, gr, gf, rr, rf, fr, ff)
		case op < 90:
			// Instruction fetch through the fetch path on both sides: TLB
			// inserts and LRU churn that can evict data entries underneath
			// the data memo.
			va := uint64(rng.Intn(64))<<isa.PageShift + uint64(rng.Intn(1024))*4
			gr, rr, fr := ref.TranslateFetch(va, false)
			gf, rf, ff := fast.TranslateFetch(va, false)
			check(i, gr, gf, rr, rf, fr, ff)
		case op < 96:
			// SFENCE of one page or the whole space.
			va := uint64(rng.Intn(64)) << isa.PageShift
			if rng.Intn(4) == 0 {
				va = 0
			}
			ref.Flush(va, 0)
			fast.Flush(va, 0)
		default:
			// SATP rewrite (ASID flip): exercises the memo's satp guard.
			satp := isa.MakeSatp(isa.SatpModePaged, uint16(1+rng.Intn(2)), rootA)
			ref.SetSatp(satp)
			fast.SetSatp(satp)
		}
	}
}

// TestTranslateDataBareMode: with paging disabled the memo must still count
// translations exactly and pass addresses through.
func TestTranslateDataBareMode(t *testing.T) {
	g := newSpace(t, 16)
	c := NewContext(g, StyleDirect)
	for i := 0; i < 10; i++ {
		gpa, refs, fault := c.TranslateData(uint64(i)*64, isa.AccWrite, false)
		if fault != nil || refs != 0 || gpa != uint64(i)*64 {
			t.Fatalf("bare translate: gpa %#x refs %d fault %v", gpa, refs, fault)
		}
	}
	if c.Stats.Translations != 10 {
		t.Fatalf("translations = %d, want 10", c.Stats.Translations)
	}
	if c.TLB.Stats.Hits != 0 || c.TLB.Stats.Misses != 0 {
		t.Fatalf("bare mode touched the TLB: %+v", c.TLB.Stats)
	}
}

// TestMaxWalkRefsBounds pins the span bound the superblock engine uses: no
// single translation may ever cost more references than MaxWalkRefs claims.
func TestMaxWalkRefsBounds(t *testing.T) {
	for _, style := range []Style{StyleDirect, StyleNested, StyleShadow} {
		g := newSpace(t, 128)
		root := buildIdentity(t, g, 64*isa.PageSize, 96,
			isa.PTERead|isa.PTEWrite|isa.PTEExec)
		c := NewContext(g, style)
		if got := c.MaxWalkRefs(); got != 0 {
			t.Errorf("%v: bare-mode MaxWalkRefs = %d, want 0", style, got)
		}
		c.SetSatp(isa.MakeSatp(isa.SatpModePaged, 1, root))
		bound := c.MaxWalkRefs()
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 5000; i++ {
			va := uint64(rng.Intn(80))<<isa.PageShift + uint64(rng.Intn(512))*8
			acc := isa.Access(rng.Intn(3))
			_, refs, fault := c.Translate(va, acc, rng.Intn(4) == 0)
			if uint64(refs) > bound {
				t.Fatalf("%v: translation cost %d refs > bound %d", style, refs, bound)
			}
			if style == StyleShadow && fault != nil && fault.Kind == FaultShadowMiss {
				// Fill so later accesses exercise the filled path too.
				c.Shadow.Fill(root, va, acc, false)
			}
		}
	}
}
