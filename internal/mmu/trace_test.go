package mmu

import (
	"math/rand"
	"testing"

	"govisor/internal/isa"
)

// TestCheckFetchSnapReadOnlyParity drives a context through a randomized
// stream of fetches, data churn, flushes and SATP rewrites. At every step the
// read-only validation (CheckFetchSnap) must (a) leave every statistic and
// the TLB untouched, and (b) agree exactly with ChainFetch's verdict on the
// same snapshot — the two halves evaluate the same conditions, and a
// disagreement would let the trace engine admit a pass whose boundary replay
// then fails (or worse, the reverse).
func TestCheckFetchSnapReadOnlyParity(t *testing.T) {
	g := newSpace(t, 128)
	root := buildIdentity(t, g, 64*isa.PageSize, 96,
		isa.PTERead|isa.PTEWrite|isa.PTEExec)
	c := NewContext(g, StyleDirect)
	c.SetSatp(isa.MakeSatp(isa.SatpModePaged, 1, root))

	rng := rand.New(rand.NewSource(11))
	var snap FetchSnap
	var snapVA uint64
	var snapUser bool

	for i := 0; i < 20000; i++ {
		switch op := rng.Intn(100); {
		case op < 40:
			// Fetch then (re)capture the snapshot under test.
			va := uint64(rng.Intn(4))<<isa.PageShift + uint64(rng.Intn(1024))*4
			user := rng.Intn(8) == 0
			if _, _, f := c.TranslateFetch(va, user); f == nil {
				snap, snapVA, snapUser = c.SnapFetch(), va, user
			}
		case op < 70:
			// Data access: TLB LRU churn and inserts under the snapshot.
			va := uint64(rng.Intn(64))<<isa.PageShift + uint64(rng.Intn(512))*8
			acc := isa.AccRead
			if rng.Intn(2) == 0 {
				acc = isa.AccWrite
			}
			c.Translate(va, acc, false)
		case op < 85:
			// Validate at a randomly perturbed (va, priv) — sometimes the
			// snapshot's own, sometimes a mismatch the check must reject.
			va, user := snapVA, snapUser
			if rng.Intn(3) == 0 {
				va += uint64(rng.Intn(3)) << isa.PageShift
			}
			if rng.Intn(4) == 0 {
				user = !user
			}
			stats, tlbStats := c.Stats, c.TLB.Stats
			gen := c.TLB.Gen()
			checked := c.CheckFetchSnap(&snap, va, user)
			if c.Stats != stats || c.TLB.Stats != tlbStats || c.TLB.Gen() != gen {
				t.Fatalf("step %d: CheckFetchSnap perturbed state: stats %+v -> %+v tlb %+v -> %+v",
					i, stats, c.Stats, tlbStats, c.TLB.Stats)
			}
			if chained := c.ChainFetch(&snap, va, user); chained != checked {
				t.Fatalf("step %d: verdicts split: CheckFetchSnap=%v ChainFetch=%v (va=%#x user=%v)",
					i, checked, chained, va, user)
			}
		case op < 95:
			// SFENCE of one page or the whole space: generation bump, so both
			// halves must start rejecting the snapshot together.
			va := uint64(rng.Intn(64)) << isa.PageShift
			if rng.Intn(4) == 0 {
				va = 0
			}
			c.Flush(va, 0)
		default:
			satp := isa.MakeSatp(isa.SatpModePaged, uint16(1+rng.Intn(2)), root)
			c.SetSatp(satp)
		}
	}
}

// TestReplayFetchSpanEquivalence proves the folded span replay bit-identical
// to its expansion: two identical contexts, one replaying n consecutive
// same-page fetches one at a time, the other folding them into a single
// ReplayFetchSpan. Verdicts, translation counts and the TLB's clock, stamps
// and statistics must match at every step, across LRU churn and flushes that
// invalidate the memo underneath both.
func TestReplayFetchSpanEquivalence(t *testing.T) {
	build := func() *Context {
		g := newSpace(t, 128)
		root := buildIdentity(t, g, 64*isa.PageSize, 96,
			isa.PTERead|isa.PTEWrite|isa.PTEExec)
		c := NewContext(g, StyleDirect)
		c.SetSatp(isa.MakeSatp(isa.SatpModePaged, 1, root))
		return c
	}
	ref, fold := build(), build()

	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 5000; i++ {
		switch op := rng.Intn(100); {
		case op < 60:
			// A block entry (real fetch) then a span of replays.
			va := uint64(rng.Intn(4))<<isa.PageShift + uint64(rng.Intn(256))*4
			user := rng.Intn(8) == 0
			_, _, fr := ref.TranslateFetch(va, user)
			_, _, ff := fold.TranslateFetch(va, user)
			if (fr == nil) != (ff == nil) {
				t.Fatalf("step %d: entry fetch split: %v vs %v", i, fr, ff)
			}
			if fr != nil {
				break
			}
			// Spans never cross a page (blocks are per-page), so cap n at the
			// page edge like the callers do.
			maxN := (isa.PageSize - va&(isa.PageSize-1)) / 4
			if maxN > 64 {
				maxN = 64
			}
			n := uint64(1 + rng.Intn(int(maxN)))
			if rng.Intn(10) == 0 {
				// Flush between entry and replay: both sides must refuse the
				// whole span together, accounting nothing.
				ref.Flush(0, 0)
				fold.Flush(0, 0)
			}
			okRef := true
			for k := uint64(0); k < n && okRef; k++ {
				okRef = ref.ReplayFetch(va + 4*k)
			}
			okFold := fold.ReplayFetchSpan(va, n)
			if okRef != okFold {
				t.Fatalf("step %d: span verdict split: ref=%v fold=%v (va=%#x n=%d)", i, okRef, okFold, va, n)
			}
			if ref.Stats != fold.Stats {
				t.Fatalf("step %d: mmu stats diverged\nref  %+v\nfold %+v", i, ref.Stats, fold.Stats)
			}
			if ref.TLB.Stats != fold.TLB.Stats {
				t.Fatalf("step %d: tlb stats diverged\nref  %+v\nfold %+v", i, ref.TLB.Stats, fold.TLB.Stats)
			}
		case op < 85:
			// Data churn applied to both: LRU movement that a later span's
			// TouchN must reproduce exactly.
			va := uint64(rng.Intn(64))<<isa.PageShift + uint64(rng.Intn(512))*8
			acc := isa.AccRead
			if rng.Intn(2) == 0 {
				acc = isa.AccWrite
			}
			ref.Translate(va, acc, false)
			fold.Translate(va, acc, false)
		default:
			va := uint64(rng.Intn(64)) << isa.PageShift
			if rng.Intn(4) == 0 {
				va = 0
			}
			ref.Flush(va, 0)
			fold.Flush(va, 0)
		}
	}
	if ref.Stats != fold.Stats || ref.TLB.Stats != fold.TLB.Stats {
		t.Fatalf("final stats diverged\nref  %+v / %+v\nfold %+v / %+v",
			ref.Stats, ref.TLB.Stats, fold.Stats, fold.TLB.Stats)
	}
}
