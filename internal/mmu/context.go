package mmu

import (
	"fmt"

	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/tlb"
)

// Style selects how the vCPU's translations are produced. It is the memory
// half of the virtualization style triad (the privilege half lives in
// internal/vcpu):
//
//   - StyleDirect: the hardware walker walks the tables SATP points at.
//     Used by the native baseline and by paravirtual direct paging, where
//     guest tables are pre-validated by the VMM.
//   - StyleShadow: translations come from VMM-derived shadow tables; a miss
//     suspends the guest (FaultShadowMiss) so the VMM can fill.
//   - StyleNested: the walker walks guest tables, but every step pays the
//     two-dimensional cost of translating guest-physical table pointers
//     through the nested tables ((g+1)·(n+1)−1 references for a full walk).
type Style uint8

// Translation styles.
const (
	StyleDirect Style = iota
	StyleShadow
	StyleNested
)

// String names the style.
func (s Style) String() string {
	switch s {
	case StyleDirect:
		return "direct"
	case StyleShadow:
		return "shadow"
	case StyleNested:
		return "nested"
	}
	return "style?"
}

// FaultKind classifies translation failures.
type FaultKind uint8

// Translation fault kinds.
const (
	// FaultGuest is an architectural page fault delivered to the guest
	// (invalid PTE, permission violation, non-canonical address).
	FaultGuest FaultKind = iota
	// FaultShadowMiss suspends to the VMM to fill the shadow tables; the
	// guest never observes it.
	FaultShadowMiss
	// FaultHost is a guest-physical failure underneath the walk or the
	// access itself (page not present in the host, write-protected by the
	// VMM); the VMM resolves and retries.
	FaultHost
)

// Fault describes a failed translation.
type Fault struct {
	Kind  FaultKind
	Cause uint64     // guest trap cause (FaultGuest)
	VA    uint64     // faulting virtual address
	Mem   *mem.Fault // underlying host fault (FaultHost)
}

func (f *Fault) Error() string {
	switch f.Kind {
	case FaultGuest:
		return fmt.Sprintf("mmu: guest page fault %s at va %#x", isa.CauseName(f.Cause), f.VA)
	case FaultShadowMiss:
		return fmt.Sprintf("mmu: shadow miss at va %#x", f.VA)
	default:
		return fmt.Sprintf("mmu: host fault at va %#x: %v", f.VA, f.Mem)
	}
}

// Stats counts translation activity for the experiments.
type Stats struct {
	Translations uint64
	Walks        uint64
	WalkRefs     uint64 // 1-D page-table references
	NestedRefs   uint64 // additional references paid to the nested dimension
	GuestFaults  uint64
	ShadowMisses uint64
}

// Context is one vCPU's translation state.
type Context struct {
	Mem    *mem.GuestPhys
	TLB    *tlb.TLB
	Style  Style
	Shadow *Engine // required iff Style == StyleShadow

	// NestedLevels is the depth of the nested (gPA→hPA) tables in the cost
	// model; 0 disables the 2-D surcharge even in StyleNested.
	NestedLevels int

	// UseASID keeps TLB entries alive across address-space switches by
	// tagging them; when false, every SATP write flushes the whole TLB
	// (ablation A2).
	UseASID bool

	Satp  uint64
	Stats Stats

	fetch fetchMemo
	data  [dataMemoSlots]dataMemo
	write [dataMemoSlots]dataMemo
}

// fetchMemo caches the last successful instruction-fetch translation. It is
// usable only while nothing that could change the outcome has happened: same
// SATP (same address space and paging mode), same privilege, same virtual
// page, and no TLB insert or flush since (checked against the TLB generation
// counter). On a hit TranslateFetch replays exactly the bookkeeping the full
// path would perform — translation count, LRU stamp, TLB hit count — so the
// memo is invisible to both the cycle model and the statistics.
type fetchMemo struct {
	valid bool
	paged bool
	user  bool
	satp  uint64
	vpn   uint64
	gen   uint64
	entry *tlb.Entry
	ppn   uint64
}

// dataMemoSlots is the size of the per-context data-translation memo, a
// direct-mapped cache indexed by low VPN bits. Small on purpose: the memo
// only needs to cover the handful of pages a straight-line loop streams
// through (source, destination, stack); the TLB proper covers the rest.
const dataMemoSlots = 8

// dataMemo caches one successful load/store translation, the data-side
// sibling of fetchMemo — same fields, same validity discipline (same SATP,
// same privilege, same virtual page, no TLB insert or flush since). On a
// hit TranslateData replays exactly the bookkeeping the full path would
// perform — translation count, LRU stamp, TLB hit count — plus a
// permission check against the live entry, which the fetch memo's hit path
// can skip (fetch access is always AccExec, so the fill-time check stands
// while the entry is unchanged) but the data memo cannot (the access kind
// varies per call).
type dataMemo = fetchMemo

// NewContext builds a context with the default TLB geometry.
func NewContext(m *mem.GuestPhys, style Style) *Context {
	c := &Context{
		Mem:          m,
		TLB:          tlb.NewDefault(),
		Style:        style,
		NestedLevels: isa.PTLevels,
		UseASID:      true,
	}
	if style == StyleShadow {
		c.Shadow = NewEngine(m)
	}
	return c
}

func (c *Context) asid() uint16 {
	if !c.UseASID {
		return 0
	}
	return isa.SatpASID(c.Satp)
}

// SetSatp installs a new SATP value, performing the architectural TLB
// maintenance (full flush when ASIDs are off; nothing otherwise, entries are
// tagged).
func (c *Context) SetSatp(satp uint64) {
	c.Satp = satp
	if !c.UseASID {
		c.TLB.FlushAll()
	}
}

// Flush implements SFENCE.VMA semantics: va==0 flushes the address space
// (or everything without ASIDs), otherwise one page.
func (c *Context) Flush(va uint64, asid uint16) {
	switch {
	case va == 0 && (asid == 0 || !c.UseASID):
		c.TLB.FlushAll()
	case va == 0:
		c.TLB.FlushASID(asid)
	default:
		c.TLB.FlushPage(c.asid(), va)
	}
	if c.Shadow != nil {
		root := isa.SatpPPN(c.Satp)
		if va == 0 {
			c.Shadow.FlushSpace(root)
		} else {
			c.Shadow.FlushVA(root, va)
		}
	}
}

// Enabled reports whether paged translation is active.
func (c *Context) Enabled() bool { return isa.SatpMode(c.Satp) == isa.SatpModePaged }

// Translate maps va to a guest-physical address for the given access from
// the given (virtual) privilege. It returns the number of page-table memory
// references the access cost, which the interpreter converts to cycles.
func (c *Context) Translate(va uint64, acc isa.Access, userMode bool) (gpa uint64, refs int, fault *Fault) {
	c.Stats.Translations++
	if !c.Enabled() {
		return va, 0, nil
	}
	asid := c.asid()
	if e, ok := c.TLB.Lookup(asid, va); ok {
		if f := c.checkTLBPerms(e.Perms, acc, userMode, va); f != nil {
			return 0, 0, f
		}
		return e.PPN<<isa.PageShift | va&isa.PageMask, 0, nil
	}

	switch c.Style {
	case StyleShadow:
		return c.translateShadow(va, acc, userMode, asid)
	default:
		return c.translateWalk(va, acc, userMode, asid)
	}
}

// TranslateFetch is Translate specialized for instruction fetch (AccExec).
// Behaviour, cycle charging and every statistic are identical to calling
// Translate(va, isa.AccExec, userMode); consecutive fetches from the same
// page skip the TLB set scan through a one-entry memo that is revalidated
// against SATP, the privilege level and the TLB generation on every call.
func (c *Context) TranslateFetch(va uint64, userMode bool) (gpa uint64, refs int, fault *Fault) {
	m := &c.fetch
	if m.valid && c.Satp == m.satp && userMode == m.user && va>>isa.PageShift == m.vpn {
		if !m.paged {
			c.Stats.Translations++
			return va, 0, nil
		}
		if c.TLB.Gen() == m.gen {
			c.Stats.Translations++
			c.TLB.Touch(m.entry)
			return m.ppn<<isa.PageShift | va&isa.PageMask, 0, nil
		}
	}
	m.valid = false
	c.Stats.Translations++
	if !c.Enabled() {
		*m = fetchMemo{valid: true, satp: c.Satp, user: userMode, vpn: va >> isa.PageShift}
		return va, 0, nil
	}
	asid := c.asid()
	if e, ok := c.TLB.LookupRef(asid, va); ok {
		if f := c.checkTLBPerms(e.Perms, isa.AccExec, userMode, va); f != nil {
			return 0, 0, f
		}
		*m = fetchMemo{valid: true, paged: true, satp: c.Satp, user: userMode,
			vpn: va >> isa.PageShift, gen: c.TLB.Gen(), entry: e, ppn: e.PPN}
		return e.PPN<<isa.PageShift | va&isa.PageMask, 0, nil
	}
	switch c.Style {
	case StyleShadow:
		return c.translateShadow(va, isa.AccExec, userMode, asid)
	default:
		return c.translateWalk(va, isa.AccExec, userMode, asid)
	}
}

// FetchSnap is an exported snapshot of the fetch memo, the validation token
// of the vCPU's block-chain cache: taken (SnapFetch) right after a successful
// TranslateFetch of a block's first instruction, and later replayed
// (ChainFetch) to re-enter that block without the map lookup and TLB set
// scan. The fields mirror fetchMemo exactly; validity is proven per replay,
// never assumed.
type FetchSnap struct {
	valid bool
	paged bool
	user  bool
	satp  uint64
	vpn   uint64
	gen   uint64
	entry *tlb.Entry
	ppn   uint64
}

// SnapFetch captures the current fetch memo. Meaningful immediately after a
// successful TranslateFetch, when the memo covers that fetch's page; the
// snapshot stays safe to hold indefinitely because ChainFetch revalidates
// every field before replaying it.
func (c *Context) SnapFetch() FetchSnap { return FetchSnap(c.fetch) }

// ChainFetch replays the accounting of an instruction fetch of va from a
// previously snapshotted translation: the block-chain sibling of
// ReplayFetch. It succeeds only when the snapshot provably still describes
// what a fresh TranslateFetch(va) would do — same SATP (same address space
// and paging mode), same privilege, same virtual page, and no TLB insert or
// flush since the snapshot (TLB generation unchanged, so the entry, its
// permissions and the fill-time permission check all still stand). On
// success it performs exactly the bookkeeping of a fetch-memo miss that hits
// the TLB — translation count, LRU stamp, TLB hit count — and installs the
// snapshot as the live fetch memo, so in-block ReplayFetch continues on the
// chained page. On failure it performs nothing and the caller must take the
// full fetch path.
//
//govisor:pair ReplayFetch
func (c *Context) ChainFetch(s *FetchSnap, va uint64, userMode bool) bool {
	if !s.valid || c.Satp != s.satp || userMode != s.user || va>>isa.PageShift != s.vpn {
		return false
	}
	if !s.paged {
		c.Stats.Translations++
		c.fetch = fetchMemo(*s)
		return true
	}
	if c.TLB.Gen() != s.gen {
		return false
	}
	c.Stats.Translations++
	c.TLB.Touch(s.entry)
	c.fetch = fetchMemo(*s)
	return true
}

// CheckFetchSnap reports whether a snapshot still provably describes what a
// fresh TranslateFetch(va) would do — the read-only half of ChainFetch: same
// SATP (same address space and paging mode), same privilege, same virtual
// page, and no TLB insert or flush since the snapshot. It performs no
// bookkeeping and installs nothing, so it may be called any number of times
// without perturbing the statistics the differential suites compare.
//
// The vCPU's trace engine uses it to pre-validate every constituent page of
// a hot trace at entry (multi-page revalidation with one check per page);
// the exact stat replay still happens per hop boundary via ChainFetch, so a
// traced run's translation counters and TLB LRU evolution are byte-identical
// to the block path's. The validation conditions must stay in lockstep with
// ChainFetch: a condition ChainFetch gains that this check lacks only costs
// a failed boundary replay (the trace demotes), never a stale translation.
func (c *Context) CheckFetchSnap(s *FetchSnap, va uint64, userMode bool) bool {
	if !s.valid || c.Satp != s.satp || userMode != s.user || va>>isa.PageShift != s.vpn {
		return false
	}
	return !s.paged || c.TLB.Gen() == s.gen
}

// ReplayFetch replays the accounting of one more instruction fetch from the
// virtual page the fetch memo currently covers — the superblock engine's
// per-instruction fetch, where the block entry already performed the real
// TranslateFetch. It returns false (performing nothing) when the memo cannot
// prove the replay exact — unset, a different page, or a TLB insert/flush
// since the memo was filled — and the caller must fall back to the full
// fetch path. Callers guarantee SATP and the privilege level are unchanged
// since the memo was filled (inside a superblock neither can change: CSR
// writes and traps both end the block before the next fetch).
func (c *Context) ReplayFetch(va uint64) bool {
	m := &c.fetch
	if !m.valid || va>>isa.PageShift != m.vpn {
		return false
	}
	if !m.paged {
		c.Stats.Translations++
		return true
	}
	if c.TLB.Gen() != m.gen {
		return false
	}
	c.Stats.Translations++
	c.TLB.Touch(m.entry)
	return true
}

// ReplayFetchSpan folds n consecutive same-page ReplayFetch calls into one
// step: one memo validation, then the batched bookkeeping (n translations,
// TLB.TouchN). Bit-identical to the n individual calls — but only when the
// caller proves nothing between the folded fetches can touch the TLB or
// this memo: the block engines use it for straight-line spans containing no
// memory operations (pure ALU cannot trap, flush, insert or re-translate),
// where each per-instruction replay would hit the same memo entry and Touch
// the same TLB entry back to back.
func (c *Context) ReplayFetchSpan(va, n uint64) bool {
	m := &c.fetch
	if !m.valid || va>>isa.PageShift != m.vpn {
		return false
	}
	if !m.paged {
		c.Stats.Translations += n
		return true
	}
	if c.TLB.Gen() != m.gen {
		return false
	}
	c.Stats.Translations += n
	c.TLB.TouchN(m.entry, n)
	return true
}

// TranslateData is Translate specialized for loads and stores. Behaviour,
// cycle charging and every statistic are identical to calling Translate with
// the same arguments; repeated accesses to recently used data pages skip the
// TLB set scan through a small direct-mapped memo revalidated against SATP,
// the privilege level and the TLB generation on every call. Permissions are
// rechecked per access from the live TLB entry, so a page readable but not
// writable faults on stores exactly as the full path does.
func (c *Context) TranslateData(va uint64, acc isa.Access, userMode bool) (gpa uint64, refs int, fault *Fault) {
	vpn := va >> isa.PageShift
	m := &c.data[vpn&(dataMemoSlots-1)]
	if m.valid && m.satp == c.Satp && m.user == userMode && m.vpn == vpn {
		if !m.paged {
			c.Stats.Translations++
			return va, 0, nil
		}
		if c.TLB.Gen() == m.gen {
			c.Stats.Translations++
			c.TLB.Touch(m.entry)
			if f := c.checkTLBPerms(m.entry.Perms, acc, userMode, va); f != nil {
				return 0, 0, f
			}
			return m.ppn<<isa.PageShift | va&isa.PageMask, 0, nil
		}
	}
	m.valid = false
	c.Stats.Translations++
	if !c.Enabled() {
		*m = dataMemo{valid: true, satp: c.Satp, user: userMode, vpn: vpn}
		return va, 0, nil
	}
	asid := c.asid()
	if e, ok := c.TLB.LookupRef(asid, va); ok {
		if f := c.checkTLBPerms(e.Perms, acc, userMode, va); f != nil {
			return 0, 0, f
		}
		*m = dataMemo{valid: true, paged: true, satp: c.Satp, user: userMode,
			vpn: vpn, gen: c.TLB.Gen(), entry: e, ppn: e.PPN}
		return e.PPN<<isa.PageShift | va&isa.PageMask, 0, nil
	}
	switch c.Style {
	case StyleShadow:
		return c.translateShadow(va, acc, userMode, asid)
	default:
		return c.translateWalk(va, acc, userMode, asid)
	}
}

// TranslateWrite is Translate specialized for stores (AccWrite). Behaviour,
// cycle charging and every statistic are identical to calling Translate(va,
// isa.AccWrite, userMode); repeated stores to recently used pages skip the
// TLB set scan through a direct-mapped memo revalidated against SATP, the
// privilege level and the TLB generation on every call. Because the access
// kind is fixed, the fill-time write-permission check stands while the TLB
// generation is unchanged (an entry cannot change perms without an insert
// or flush), so — like the fetch memo, and unlike TranslateData — the hit
// path skips the per-access permission recheck entirely. Write-denied pages
// never fill the memo; stores to them take the full path and fault with
// identical statistics.
func (c *Context) TranslateWrite(va uint64, userMode bool) (gpa uint64, refs int, fault *Fault) {
	vpn := va >> isa.PageShift
	m := &c.write[vpn&(dataMemoSlots-1)]
	if m.valid && m.satp == c.Satp && m.user == userMode && m.vpn == vpn {
		if !m.paged {
			c.Stats.Translations++
			return va, 0, nil
		}
		if c.TLB.Gen() == m.gen {
			c.Stats.Translations++
			c.TLB.Touch(m.entry)
			return m.ppn<<isa.PageShift | va&isa.PageMask, 0, nil
		}
	}
	m.valid = false
	c.Stats.Translations++
	if !c.Enabled() {
		*m = dataMemo{valid: true, satp: c.Satp, user: userMode, vpn: vpn}
		return va, 0, nil
	}
	asid := c.asid()
	if e, ok := c.TLB.LookupRef(asid, va); ok {
		if f := c.checkTLBPerms(e.Perms, isa.AccWrite, userMode, va); f != nil {
			return 0, 0, f
		}
		*m = dataMemo{valid: true, paged: true, satp: c.Satp, user: userMode,
			vpn: vpn, gen: c.TLB.Gen(), entry: e, ppn: e.PPN}
		return e.PPN<<isa.PageShift | va&isa.PageMask, 0, nil
	}
	switch c.Style {
	case StyleShadow:
		return c.translateShadow(va, isa.AccWrite, userMode, asid)
	default:
		return c.translateWalk(va, isa.AccWrite, userMode, asid)
	}
}

// MaxWalkRefs returns an upper bound on the page-table references a single
// translation can cost in the current configuration — the superblock
// engine's worst case when bounding a block's cycle span. With paging
// disabled translations are free; a 1-D walk references at most PTLevels
// entries; nested paging pays the 2-D surcharge on a full walk.
func (c *Context) MaxWalkRefs() uint64 {
	if !c.Enabled() {
		return 0
	}
	refs := uint64(isa.PTLevels)
	if c.Style == StyleNested {
		refs += (refs + 1) * uint64(c.NestedLevels)
	}
	return refs
}

func (c *Context) checkTLBPerms(perms uint8, acc isa.Access, userMode bool, va uint64) *Fault {
	if userMode && perms&tlb.PermU == 0 {
		return c.guestFault(acc, va)
	}
	var need uint8
	switch acc {
	case isa.AccRead:
		need = tlb.PermR
	case isa.AccWrite:
		need = tlb.PermW
	default:
		need = tlb.PermX
	}
	if perms&need == 0 {
		return c.guestFault(acc, va)
	}
	return nil
}

func (c *Context) guestFault(acc isa.Access, va uint64) *Fault {
	c.Stats.GuestFaults++
	return &Fault{Kind: FaultGuest, Cause: isa.PageFaultCause(acc), VA: va}
}

func (c *Context) translateWalk(va uint64, acc isa.Access, userMode bool, asid uint16) (uint64, int, *Fault) {
	c.Stats.Walks++
	wr, werr := Walk(c.Mem, isa.SatpPPN(c.Satp), va)
	refs := wr.Refs
	if c.Style == StyleNested {
		// Each guest PTE reference is itself translated through the nested
		// tables, and the final guest-physical address pays one more nested
		// walk: (g+1)(n+1)−1 total references for a full 2-D walk.
		extra := (wr.Refs + 1) * c.NestedLevels
		refs += extra
		c.Stats.NestedRefs += uint64(extra)
	}
	c.Stats.WalkRefs += uint64(wr.Refs)
	if werr != nil {
		if werr.Fault != nil {
			return 0, refs, &Fault{Kind: FaultHost, VA: va, Mem: werr.Fault}
		}
		return 0, refs, c.guestFault(acc, va)
	}
	if PermError(wr.PTE, acc, userMode) {
		return 0, refs, c.guestFault(acc, va)
	}
	gpa := wr.GPA
	c.TLB.Insert(asid, va, gpa>>isa.PageShift, tlb.PermsFromPTE(wr.PTE), wr.PTE&isa.PTEGlobal != 0)
	return gpa, refs, nil
}

func (c *Context) translateShadow(va uint64, acc isa.Access, userMode bool, asid uint16) (uint64, int, *Fault) {
	root := isa.SatpPPN(c.Satp)
	e, ok := c.Shadow.Lookup(root, va)
	if !ok {
		c.Stats.ShadowMisses++
		return 0, 0, &Fault{Kind: FaultShadowMiss, VA: va}
	}
	// Walking the shadow tables costs the same as a 1-D walk: that is the
	// architectural benefit of shadow paging over nested paging.
	refs := isa.PTLevels
	c.Stats.Walks++
	c.Stats.WalkRefs += uint64(refs)
	if f := c.checkTLBPerms(e.Perms, acc, userMode, va); f != nil {
		return 0, refs, f
	}
	gpa := e.PPN<<isa.PageShift | va&isa.PageMask
	c.TLB.Insert(asid, va, e.PPN, e.Perms, e.Global)
	return gpa, refs, nil
}
