package mmu

import (
	"testing"

	"govisor/internal/isa"
	"govisor/internal/mem"
)

// newSpace creates a populated guest-physical space of npages pages.
func newSpace(t *testing.T, npages uint64) *mem.GuestPhys {
	t.Helper()
	g := mem.NewGuestPhys(mem.NewPool(npages*2+64), npages*isa.PageSize)
	if err := g.PopulateAll(); err != nil {
		t.Fatal(err)
	}
	return g
}

// buildIdentity builds identity tables over the first `bytes` of RAM with
// table pages allocated starting at tablePPN, and returns the root PPN.
func buildIdentity(t *testing.T, g *mem.GuestPhys, bytes, tablePPN uint64, flags uint64) uint64 {
	t.Helper()
	tb, err := NewTableBuilder(g, tablePPN, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.IdentityMap(bytes, flags); err != nil {
		t.Fatal(err)
	}
	return tb.RootPPN
}

func TestWalk4K(t *testing.T) {
	g := newSpace(t, 64)
	tb, err := NewTableBuilder(g, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Map(0x4000, 0x7000, isa.PTERead|isa.PTEWrite); err != nil {
		t.Fatal(err)
	}
	wr, werr := Walk(g, tb.RootPPN, 0x4123)
	if werr != nil {
		t.Fatal(werr)
	}
	if wr.GPA != 0x7123 {
		t.Fatalf("gpa = %#x", wr.GPA)
	}
	if wr.Level != 0 || wr.Refs != 3 {
		t.Fatalf("level %d refs %d", wr.Level, wr.Refs)
	}
	if wr.Plen != 3 {
		t.Fatalf("path len = %d", wr.Plen)
	}
}

func TestWalkSuperpage(t *testing.T) {
	g := newSpace(t, 16)
	tb, err := NewTableBuilder(g, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MapSuper(isa.MegaPageSize, 0, isa.PTERead|isa.PTEExec); err != nil {
		t.Fatal(err)
	}
	va := uint64(isa.MegaPageSize) + 0x1234
	wr, werr := Walk(g, tb.RootPPN, va)
	if werr != nil {
		t.Fatal(werr)
	}
	if wr.GPA != 0x1234 {
		t.Fatalf("gpa = %#x", wr.GPA)
	}
	if wr.Level != 1 || wr.Refs != 2 {
		t.Fatalf("level %d refs %d (superpage should cut one ref)", wr.Level, wr.Refs)
	}
}

func TestWalkInvalidPTE(t *testing.T) {
	g := newSpace(t, 16)
	tb, _ := NewTableBuilder(g, 8, 8)
	tb.Map(0x1000, 0x2000, isa.PTERead)
	if _, werr := Walk(g, tb.RootPPN, 0x9000_0000); werr == nil || werr.Fault != nil {
		t.Fatalf("expected architectural fault, got %v", werr)
	}
}

func TestWalkNonCanonical(t *testing.T) {
	g := newSpace(t, 4)
	if _, werr := Walk(g, 0, uint64(1)<<isa.VABits); werr == nil {
		t.Fatal("expected fault for non-canonical va")
	}
}

func TestWalkMisalignedSuperpageRejected(t *testing.T) {
	g := newSpace(t, 16)
	tb, _ := NewTableBuilder(g, 8, 8)
	// Hand-craft a misaligned superpage leaf at level 1.
	rootAddr := tb.RootPPN << isa.PageShift
	l1ppn, _ := g.Pool().Alloc()
	_ = l1ppn
	// Build: root[0] → table at ppn 9; table9[0] = leaf with unaligned ppn 3.
	g.WriteUintPriv(rootAddr, 8, isa.MakePTE(9, isa.PTEValid))
	g.WriteUintPriv(9<<isa.PageShift, 8, isa.MakePTE(3, isa.PTEValid|isa.PTERead))
	if _, werr := Walk(g, tb.RootPPN, 0); werr == nil {
		t.Fatal("misaligned superpage should fault")
	}
}

func TestWalkHostFaultEscalates(t *testing.T) {
	g := newSpace(t, 16)
	tb, _ := NewTableBuilder(g, 8, 8)
	tb.Map(0x1000, 0x2000, isa.PTERead)
	// Balloon out the root table page → walk must report a host fault.
	g.Unmap(tb.RootPPN)
	_, werr := Walk(g, tb.RootPPN, 0x1000)
	if werr == nil || werr.Fault == nil || werr.Fault.Kind != mem.FaultNotPresent {
		t.Fatalf("werr = %v", werr)
	}
}

func TestTableBuilderRegionExhaustion(t *testing.T) {
	g := newSpace(t, 8)
	tb, err := NewTableBuilder(g, 4, 1) // room for the root only
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Map(0, 0, isa.PTERead); err == nil {
		t.Fatal("expected table region exhaustion")
	}
}

func ctxDirect(t *testing.T, g *mem.GuestPhys, root uint64) *Context {
	t.Helper()
	c := NewContext(g, StyleDirect)
	c.SetSatp(isa.MakeSatp(isa.SatpModePaged, 1, root))
	return c
}

func TestTranslateBareMode(t *testing.T) {
	g := newSpace(t, 4)
	c := NewContext(g, StyleDirect)
	gpa, refs, f := c.Translate(0x2345, isa.AccWrite, false)
	if f != nil || gpa != 0x2345 || refs != 0 {
		t.Fatalf("bare: %#x %d %v", gpa, refs, f)
	}
}

func TestTranslateDirectWalkThenTLBHit(t *testing.T) {
	g := newSpace(t, 64)
	root := buildIdentity(t, g, 16*isa.PageSize, 32, isa.PTERead|isa.PTEWrite|isa.PTEExec)
	c := ctxDirect(t, g, root)

	gpa, refs, f := c.Translate(0x3008, isa.AccRead, false)
	if f != nil || gpa != 0x3008 {
		t.Fatalf("first: %#x %v", gpa, f)
	}
	if refs == 0 {
		t.Fatal("first access should pay walk refs")
	}
	gpa, refs, f = c.Translate(0x3010, isa.AccWrite, false)
	if f != nil || gpa != 0x3010 || refs != 0 {
		t.Fatalf("TLB hit should be free: %#x %d %v", gpa, refs, f)
	}
	if c.TLB.Stats.Hits != 1 {
		t.Fatalf("tlb hits = %d", c.TLB.Stats.Hits)
	}
}

func TestTranslatePermissionFaults(t *testing.T) {
	g := newSpace(t, 64)
	tb, _ := NewTableBuilder(g, 32, 16)
	tb.Map(0x1000, 0x1000, isa.PTERead)             // read-only
	tb.Map(0x2000, 0x2000, isa.PTERead|isa.PTEUser) // user page
	root := tb.RootPPN
	c := ctxDirect(t, g, root)

	if _, _, f := c.Translate(0x1000, isa.AccWrite, false); f == nil || f.Kind != FaultGuest || f.Cause != isa.CauseStorePageFault {
		t.Fatalf("write to RO: %v", f)
	}
	// Same check must hold via the TLB-hit path.
	if _, _, f := c.Translate(0x1000, isa.AccRead, false); f != nil {
		t.Fatalf("read RO: %v", f)
	}
	if _, _, f := c.Translate(0x1000, isa.AccWrite, false); f == nil {
		t.Fatal("write to RO via TLB should still fault")
	}
	// User page from U-mode ok; kernel-only page from U-mode faults.
	if _, _, f := c.Translate(0x2000, isa.AccRead, true); f != nil {
		t.Fatalf("user read of U page: %v", f)
	}
	if _, _, f := c.Translate(0x1000, isa.AccRead, true); f == nil {
		t.Fatal("user access to kernel page should fault")
	}
	// Exec on non-exec page.
	if _, _, f := c.Translate(0x1000, isa.AccExec, false); f == nil || f.Cause != isa.CauseInstrPageFault {
		t.Fatalf("exec fault: %v", f)
	}
}

func TestTranslateNestedCost(t *testing.T) {
	g := newSpace(t, 64)
	root := buildIdentity(t, g, 16*isa.PageSize, 32, isa.PTERead|isa.PTEWrite)
	cd := ctxDirect(t, g, root)
	_, refsDirect, f := cd.Translate(0x3000, isa.AccRead, false)
	if f != nil {
		t.Fatal(f)
	}

	g2 := newSpace(t, 64)
	root2 := buildIdentity(t, g2, 16*isa.PageSize, 32, isa.PTERead|isa.PTEWrite)
	cn := NewContext(g2, StyleNested)
	cn.SetSatp(isa.MakeSatp(isa.SatpModePaged, 1, root2))
	_, refsNested, f := cn.Translate(0x3000, isa.AccRead, false)
	if f != nil {
		t.Fatal(f)
	}

	// 2-D walk: (g+1)(n+1)−1 with g = n = refsDirect.
	want := (refsDirect+1)*(isa.PTLevels+1) - 1
	if refsNested != want {
		t.Fatalf("nested refs = %d, want %d (direct %d)", refsNested, want, refsDirect)
	}
	// After the fill, the TLB hides the 2-D cost.
	_, refs2, _ := cn.Translate(0x3000, isa.AccRead, false)
	if refs2 != 0 {
		t.Fatalf("nested TLB hit should be free, got %d", refs2)
	}
}

func TestTranslateASIDSwitch(t *testing.T) {
	g := newSpace(t, 64)
	root := buildIdentity(t, g, 16*isa.PageSize, 32, isa.PTERead|isa.PTEWrite)
	c := ctxDirect(t, g, root)
	c.Translate(0x1000, isa.AccRead, false) // fill asid 1

	// Switch to asid 2 (same tables): entry invisible, refill needed.
	c.SetSatp(isa.MakeSatp(isa.SatpModePaged, 2, root))
	_, refs, _ := c.Translate(0x1000, isa.AccRead, false)
	if refs == 0 {
		t.Fatal("asid 2 should not reuse asid 1 entries")
	}
	// Switching back: with ASIDs, old entry still live.
	c.SetSatp(isa.MakeSatp(isa.SatpModePaged, 1, root))
	_, refs, _ = c.Translate(0x1000, isa.AccRead, false)
	if refs != 0 {
		t.Fatal("asid 1 entry should have survived the switch")
	}

	// Without ASIDs every switch flushes.
	c.UseASID = false
	c.SetSatp(isa.MakeSatp(isa.SatpModePaged, 1, root))
	_, refs, _ = c.Translate(0x1000, isa.AccRead, false)
	if refs == 0 {
		t.Fatal("no-ASID mode must flush on satp write")
	}
}

func TestShadowMissFillHit(t *testing.T) {
	g := newSpace(t, 64)
	root := buildIdentity(t, g, 16*isa.PageSize, 32, isa.PTERead|isa.PTEWrite)
	c := NewContext(g, StyleShadow)
	c.SetSatp(isa.MakeSatp(isa.SatpModePaged, 1, root))

	// First access: shadow miss escalates to the VMM.
	_, _, f := c.Translate(0x5000, isa.AccRead, false)
	if f == nil || f.Kind != FaultShadowMiss {
		t.Fatalf("want shadow miss, got %v", f)
	}
	// VMM fills.
	refs, ff := c.Shadow.Fill(root, 0x5000, isa.AccRead, false)
	if ff != nil {
		t.Fatal(ff)
	}
	if refs != 3 {
		t.Fatalf("fill refs = %d", refs)
	}
	// Retry: now resolved through the shadow space.
	gpa, refs2, f := c.Translate(0x5000, isa.AccRead, false)
	if f != nil || gpa != 0x5000 {
		t.Fatalf("after fill: %#x %v", gpa, f)
	}
	if refs2 != isa.PTLevels {
		t.Fatalf("shadow walk refs = %d", refs2)
	}
	// And the third time through the TLB, free.
	_, refs3, _ := c.Translate(0x5000, isa.AccRead, false)
	if refs3 != 0 {
		t.Fatalf("TLB hit refs = %d", refs3)
	}
}

func TestShadowWriteProtectsGuestTables(t *testing.T) {
	g := newSpace(t, 64)
	root := buildIdentity(t, g, 16*isa.PageSize, 32, isa.PTERead|isa.PTEWrite)
	e := NewEngine(g)
	if _, f := e.Fill(root, 0x5000, isa.AccRead, false); f != nil {
		t.Fatal(f)
	}
	if !g.WriteProtected(root) {
		t.Fatal("root table page must be write-protected after fill")
	}
	if !e.IsPTPage(root) {
		t.Fatal("root should be tracked as PT page")
	}
	// A guest write to the root page must fault.
	if f := g.WriteUint(root<<isa.PageShift, 8, 0); f == nil || f.Kind != mem.FaultWriteProt {
		t.Fatalf("guest PT write: %v", f)
	}
}

func TestShadowInvalidateOnPTWrite(t *testing.T) {
	g := newSpace(t, 64)
	root := buildIdentity(t, g, 16*isa.PageSize, 32, isa.PTERead|isa.PTEWrite)
	e := NewEngine(g)
	e.Fill(root, 0x5000, isa.AccRead, false)
	e.Fill(root, 0x6000, isa.AccRead, false)
	if e.EntryCount(root) != 2 {
		t.Fatalf("entries = %d", e.EntryCount(root))
	}
	flush := e.InvalidatePTWrite(root)
	if len(flush) != 2 {
		t.Fatalf("flush list = %v", flush)
	}
	if e.EntryCount(root) != 0 {
		t.Fatal("entries should be dropped")
	}
	if g.WriteProtected(root) {
		t.Fatal("protection should be released")
	}
	if e.Stats.PTWriteTraps != 1 || e.Stats.Invalidations != 2 {
		t.Fatalf("stats = %+v", e.Stats)
	}
}

func TestShadowSpacesCachedPerRoot(t *testing.T) {
	g := newSpace(t, 128)
	rootA := buildIdentity(t, g, 8*isa.PageSize, 64, isa.PTERead|isa.PTEWrite)
	rootB := buildIdentity(t, g, 8*isa.PageSize, 96, isa.PTERead)
	e := NewEngine(g)
	e.Fill(rootA, 0x1000, isa.AccRead, false)
	e.Fill(rootB, 0x2000, isa.AccRead, false)
	if _, ok := e.Lookup(rootA, 0x1000); !ok {
		t.Fatal("rootA entry missing")
	}
	if _, ok := e.Lookup(rootB, 0x1000); ok {
		t.Fatal("rootB should not see rootA's entry")
	}
	if e.Stats.Spaces != 2 {
		t.Fatalf("spaces = %d", e.Stats.Spaces)
	}
	e.FlushSpace(rootA)
	if _, ok := e.Lookup(rootA, 0x1000); ok {
		t.Fatal("flush should drop rootA entries")
	}
	if _, ok := e.Lookup(rootB, 0x2000); !ok {
		t.Fatal("rootB must survive rootA flush")
	}
}

func TestShadowFillFaultsOnUnmappedVA(t *testing.T) {
	g := newSpace(t, 64)
	root := buildIdentity(t, g, 4*isa.PageSize, 32, isa.PTERead)
	e := NewEngine(g)
	_, f := e.Fill(root, 0x40_0000, isa.AccRead, false)
	if f == nil || f.Kind != FaultGuest {
		t.Fatalf("fill of unmapped va: %v", f)
	}
}

func TestShadowDropAllReleasesProtection(t *testing.T) {
	g := newSpace(t, 64)
	root := buildIdentity(t, g, 8*isa.PageSize, 32, isa.PTERead)
	e := NewEngine(g)
	e.Fill(root, 0x1000, isa.AccRead, false)
	e.DropAll()
	if g.WriteProtected(root) {
		t.Fatal("DropAll must unprotect")
	}
	if _, ok := e.Lookup(root, 0x1000); ok {
		t.Fatal("DropAll must drop entries")
	}
}

func TestContextFlushSFENCE(t *testing.T) {
	g := newSpace(t, 64)
	root := buildIdentity(t, g, 16*isa.PageSize, 32, isa.PTERead|isa.PTEWrite)
	c := ctxDirect(t, g, root)
	c.Translate(0x1000, isa.AccRead, false)
	c.Flush(0x1000, 0) // single page
	_, refs, _ := c.Translate(0x1000, isa.AccRead, false)
	if refs == 0 {
		t.Fatal("page flush should force a rewalk")
	}
	c.Translate(0x2000, isa.AccRead, false)
	c.Flush(0, 0) // everything
	_, refs, _ = c.Translate(0x2000, isa.AccRead, false)
	if refs == 0 {
		t.Fatal("full flush should force a rewalk")
	}
}
