package mmu

import (
	"sort"

	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/tlb"
)

// Engine is the shadow-paging engine of the trap-and-emulate VMM.
//
// The guest maintains its own page tables and believes the hardware walks
// them; in reality the VMM derives shadow translations on demand (Fill) and
// keeps them coherent by write-protecting every guest page-table page a
// shadow entry was derived through. A guest store to a protected page traps
// to the VMM, which emulates the store and invalidates the derived entries
// (InvalidatePTWrite) — the classic VMware/Disco design, with one shadow
// space cached per guest root so address-space switches don't rebuild from
// scratch.
type Engine struct {
	g      *mem.GuestPhys
	spaces map[uint64]*shadowSpace
	// ptUsers maps a guest page-table gfn to the roots whose shadow space
	// derived entries through it.
	ptUsers map[uint64]map[uint64]struct{}
	Stats   EngineStats
}

// EngineStats counts shadow-engine activity.
type EngineStats struct {
	Fills         uint64 // shadow misses resolved by walking guest tables
	FillRefs      uint64 // guest PTEs read during fills
	WPInstalls    uint64 // page-table pages newly write-protected
	PTWriteTraps  uint64 // guest writes to protected PT pages
	Invalidations uint64 // shadow entries dropped by PT writes
	SpaceFlushes  uint64
	Spaces        uint64 // live shadow spaces (gauge)
}

// ShadowEntry is one derived translation.
type ShadowEntry struct {
	PPN    uint64
	Perms  uint8
	Global bool
}

type shadowSpace struct {
	root    uint64
	entries map[uint64]ShadowEntry // vpn → entry
	derived map[uint64][]uint64    // guest PT gfn → vpns derived through it
}

// NewEngine creates a shadow engine over g.
func NewEngine(g *mem.GuestPhys) *Engine {
	return &Engine{
		g:       g,
		spaces:  make(map[uint64]*shadowSpace),
		ptUsers: make(map[uint64]map[uint64]struct{}),
	}
}

func (e *Engine) space(root uint64) *shadowSpace {
	s := e.spaces[root]
	if s == nil {
		s = &shadowSpace{
			root:    root,
			entries: make(map[uint64]ShadowEntry),
			derived: make(map[uint64][]uint64),
		}
		e.spaces[root] = s
		e.Stats.Spaces++
	}
	return s
}

// Lookup finds a derived translation for va under the guest root.
func (e *Engine) Lookup(root, va uint64) (ShadowEntry, bool) {
	s := e.spaces[root]
	if s == nil {
		return ShadowEntry{}, false
	}
	ent, ok := s.entries[va>>isa.PageShift]
	return ent, ok
}

// Fill resolves a shadow miss: it walks the guest tables for va, installs a
// derived entry, and write-protects the table pages it walked through.
// It returns the guest PTE refs consumed (charged as VMM emulation work).
// A *Fault of kind FaultGuest means the guest's own tables do not map va and
// the VMM must inject a page fault; FaultHost escalates host-level problems.
func (e *Engine) Fill(root, va uint64, acc isa.Access, userMode bool) (refs int, fault *Fault) {
	wr, werr := Walk(e.g, root, va)
	if werr != nil {
		if werr.Fault != nil {
			return wr.Refs, &Fault{Kind: FaultHost, VA: va, Mem: werr.Fault}
		}
		return wr.Refs, &Fault{Kind: FaultGuest, Cause: isa.PageFaultCause(acc), VA: va}
	}
	if PermError(wr.PTE, acc, userMode) {
		return wr.Refs, &Fault{Kind: FaultGuest, Cause: isa.PageFaultCause(acc), VA: va}
	}
	s := e.space(root)
	vpn := va >> isa.PageShift
	s.entries[vpn] = ShadowEntry{
		PPN:    wr.GPA >> isa.PageShift,
		Perms:  tlb.PermsFromPTE(wr.PTE),
		Global: wr.PTE&isa.PTEGlobal != 0,
	}
	for i := 0; i < wr.Plen; i++ {
		ptGfn := wr.Path[i]
		s.derived[ptGfn] = append(s.derived[ptGfn], vpn)
		users := e.ptUsers[ptGfn]
		if users == nil {
			users = make(map[uint64]struct{})
			e.ptUsers[ptGfn] = users
		}
		users[root] = struct{}{}
		if !e.g.WriteProtected(ptGfn) {
			e.g.WriteProtect(ptGfn, true)
			e.Stats.WPInstalls++
		}
	}
	e.Stats.Fills++
	e.Stats.FillRefs += uint64(wr.Refs)
	return wr.Refs, nil
}

// IsPTPage reports whether gfn is currently tracked as a guest page-table
// page (so a write-protect fault on it belongs to this engine).
func (e *Engine) IsPTPage(gfn uint64) bool {
	return len(e.ptUsers[gfn]) > 0
}

// InvalidatePTWrite handles a trapped guest store to the protected PT page
// gfn: every shadow entry derived through it is dropped from every space.
// It returns the virtual pages whose cached translations (TLB entries) the
// caller must flush. The caller emulates the store itself afterwards with
// WriteUintPriv.
func (e *Engine) InvalidatePTWrite(gfn uint64) (flushVPNs []uint64) {
	e.Stats.PTWriteTraps++
	users := e.ptUsers[gfn]
	for root := range users {
		s := e.spaces[root]
		if s == nil {
			continue
		}
		for _, vpn := range s.derived[gfn] {
			if _, live := s.entries[vpn]; live {
				delete(s.entries, vpn)
				e.Stats.Invalidations++
				flushVPNs = append(flushVPNs, vpn)
			}
		}
		delete(s.derived, gfn)
	}
	delete(e.ptUsers, gfn)
	// Leave the write-protection armed only if some other derivation still
	// references the page; since we dropped all of them, unprotect.
	e.g.WriteProtect(gfn, false)
	// The set of VPNs is determined by the derivation state, but its
	// collection order follows map iteration; sort so callers see the same
	// flush sequence every run.
	sort.Slice(flushVPNs, func(i, j int) bool { return flushVPNs[i] < flushVPNs[j] })
	return flushVPNs
}

// FlushVA drops the derived entry for one page (guest SFENCE.VMA va).
func (e *Engine) FlushVA(root, va uint64) {
	if s := e.spaces[root]; s != nil {
		delete(s.entries, va>>isa.PageShift)
	}
}

// FlushSpace drops every derived entry for a guest root (guest SFENCE.VMA
// with no operands, or the VMM reclaiming memory). Write protection on the
// guest's table pages is released lazily: pages remain protected until an
// actual write arrives, mirroring how real shadow VMMs batch unprotection.
func (e *Engine) FlushSpace(root uint64) {
	s := e.spaces[root]
	if s == nil {
		return
	}
	e.Stats.SpaceFlushes++
	s.entries = make(map[uint64]ShadowEntry)
	s.derived = make(map[uint64][]uint64)
}

// DropAll discards every space (VM reset / teardown) and releases all write
// protection installed by the engine.
func (e *Engine) DropAll() {
	//govisor:nondet(per-gfn unprotect on distinct keys is idempotent and order-free)
	for gfn := range e.ptUsers {
		e.g.WriteProtect(gfn, false)
	}
	e.spaces = make(map[uint64]*shadowSpace)
	e.ptUsers = make(map[uint64]map[uint64]struct{})
	e.Stats.Spaces = 0
}

// EntryCount returns the number of live derived entries under root.
func (e *Engine) EntryCount(root uint64) int {
	if s := e.spaces[root]; s != nil {
		return len(s.entries)
	}
	return 0
}
