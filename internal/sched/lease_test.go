package sched

import "testing"

// leasePolicy is the surface the parallel host engine drives; all three
// policies provide it through baseScheduler.
type leasePolicy interface {
	Add(id int, weight, capPct uint64)
	Remove(id int)
	Next() (int, uint64, bool)
	Account(id int, used uint64)
	Block(id int)
	Unblock(id int)
	BeginLease(id int)
	EndLease(id int)
	Leased(id int) bool
	Entity(id int) *Entity
	Shares() []float64
}

func policies() map[string]func() leasePolicy {
	return map[string]func() leasePolicy{
		"rr":     func() leasePolicy { return NewRoundRobin(1000) },
		"credit": func() leasePolicy { return NewCredit() },
		"cfs":    func() leasePolicy { return NewCFS() },
	}
}

// TestLeaseExcludesFromNext: leasing an entity must make Next hand out the
// remaining runnable entities, each exactly once, then report nothing left.
func TestLeaseExcludesFromNext(t *testing.T) {
	for name, mk := range policies() {
		s := mk()
		for id := 0; id < 4; id++ {
			s.Add(id, 256, 0)
		}
		seen := map[int]bool{}
		for i := 0; i < 4; i++ {
			id, _, ok := s.Next()
			if !ok {
				t.Fatalf("%s: Next dried up after %d leases", name, i)
			}
			if seen[id] {
				t.Fatalf("%s: entity %d leased twice in one epoch", name, id)
			}
			seen[id] = true
			s.BeginLease(id)
		}
		if _, _, ok := s.Next(); ok {
			t.Fatalf("%s: Next offered a leased entity", name)
		}
		for id := range seen {
			s.Account(id, 500)
			s.EndLease(id)
		}
		if _, _, ok := s.Next(); !ok {
			t.Fatalf("%s: nothing runnable after leases ended", name)
		}
	}
}

// TestRemoveWhileLeasedDefers is the regression test for the stale-
// accounting bug: removing a leased entity used to drop it immediately, so
// the quantum it was running never landed in Used (fairness shares) nor in
// the credit scheduler's period accounting. Removal must defer to EndLease,
// with Account still applying in between.
func TestRemoveWhileLeasedDefers(t *testing.T) {
	for name, mk := range policies() {
		s := mk()
		s.Add(0, 256, 50) // capped so credit's capDebt path is exercised
		s.Add(1, 256, 0)
		id, _, ok := s.Next()
		if !ok {
			t.Fatalf("%s: nothing runnable", name)
		}
		s.BeginLease(id)
		s.Remove(id)
		if s.Entity(id) == nil {
			t.Fatalf("%s: leased entity removed before EndLease", name)
		}
		s.Account(id, 12345)
		if got := s.Entity(id).Used; got != 12345 {
			t.Fatalf("%s: in-flight Account dropped: Used=%d", name, got)
		}
		s.EndLease(id)
		if s.Entity(id) != nil {
			t.Fatalf("%s: deferred removal never applied", name)
		}
		if s.Leased(id) {
			t.Fatalf("%s: lease leaked", name)
		}
		if n := len(s.Shares()); n != 1 {
			t.Fatalf("%s: %d entities remain, want 1", name, n)
		}
	}
}

// TestCreditPeriodAccountingSurvivesLeasedRemove: the credit scheduler's
// global period meter must include cycles consumed by an entity removed
// mid-lease, so refill timing does not drift.
func TestCreditPeriodAccountingSurvivesLeasedRemove(t *testing.T) {
	c := NewCredit()
	c.Add(0, 256, 0)
	c.Add(1, 256, 0)
	id, _, _ := c.Next()
	c.BeginLease(id)
	c.Remove(id)
	c.Account(id, c.Period/2)
	c.EndLease(id)
	if c.periodSpent != c.Period/2 {
		t.Fatalf("periodSpent=%d, want %d", c.periodSpent, c.Period/2)
	}
}

// TestReAddCancelsPendingRemove: Add of an entity whose removal is deferred
// behind a lease cancels the removal, adopts the caller's new weight/cap,
// and keeps the in-flight lease's accounting alive.
func TestReAddCancelsPendingRemove(t *testing.T) {
	for name, mk := range policies() {
		s := mk()
		s.Add(0, 256, 0)
		s.BeginLease(0)
		s.Remove(0)
		s.Add(0, 512, 25)
		s.Account(0, 777)
		s.EndLease(0)
		e := s.Entity(0)
		if e == nil {
			t.Fatalf("%s: re-added entity still removed", name)
		}
		if e.Used != 777 {
			t.Fatalf("%s: accounting lost on re-add: Used=%d", name, e.Used)
		}
		if e.Weight != 512 || e.CapPct != 25 {
			t.Fatalf("%s: re-add kept stale parameters: weight=%d cap=%d", name, e.Weight, e.CapPct)
		}
		// A plain duplicate Add (no pending removal) still no-ops.
		s.Add(0, 999, 0)
		if s.Entity(0).Weight != 512 {
			t.Fatalf("%s: duplicate Add overwrote weight", name)
		}
	}
}

// TestBlockWhileLeased: a lease finishing on a now-blocked entity must leave
// it out of the runnable set but keep its accounting.
func TestBlockWhileLeased(t *testing.T) {
	for name, mk := range policies() {
		s := mk()
		s.Add(0, 256, 0)
		s.Add(1, 256, 0)
		id, _, _ := s.Next()
		s.BeginLease(id)
		s.Block(id)
		s.Account(id, 999)
		s.EndLease(id)
		other := 1 - id
		for i := 0; i < 4; i++ {
			got, _, ok := s.Next()
			if !ok {
				t.Fatalf("%s: runnable entity starved", name)
			}
			if got != other {
				t.Fatalf("%s: blocked entity %d dispatched", name, got)
			}
			s.Account(got, 100)
		}
		s.Unblock(id)
		if e := s.Entity(id); e == nil || e.Used != 999 {
			t.Fatalf("%s: accounting lost across block", name)
		}
	}
}

// TestLeaseUnknownEntityHarmless: leasing an id that was never added (or
// already removed) must not wedge the scheduler.
func TestLeaseUnknownEntityHarmless(t *testing.T) {
	for name, mk := range policies() {
		s := mk()
		s.BeginLease(42)
		s.EndLease(42)
		s.Add(0, 256, 0)
		if _, _, ok := s.Next(); !ok {
			t.Fatalf("%s: scheduler wedged by phantom lease", name)
		}
	}
}
