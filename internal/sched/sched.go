// Package sched implements the vCPU schedulers the consolidation and
// fairness experiments compare: a round-robin baseline, a Xen-style credit
// scheduler (weights, caps, and a BOOST state for freshly woken entities),
// and a CFS-like fair scheduler driven by weighted virtual runtime.
//
// All three satisfy the core.Scheduler interface. Time is the host's
// simulated cycle count; schedulers are purely deterministic.
package sched

// Entity is the per-vCPU accounting state shared by the policies.
type Entity struct {
	ID      int
	Weight  uint64
	CapPct  uint64 // 0 = uncapped
	Blocked bool

	Used uint64 // total cycles consumed (for fairness measurement)

	credits  int64  // credit scheduler
	boosted  bool   // credit scheduler: woken and not yet rescheduled
	vruntime uint64 // cfs
	capDebt  uint64 // cycles consumed beyond the cap allowance
}

// baseScheduler holds the entity table shared by the policies, plus the
// lease bookkeeping the parallel host engine uses: an epoch leases several
// distinct entities with BeginLease (each excluded from Next until its
// EndLease), runs them concurrently, and applies Account/EndLease serially
// at the epoch barrier.
type baseScheduler struct {
	entities map[int]*Entity
	order    []int // stable iteration order

	leased        map[int]bool // excluded from Next until EndLease
	removePending map[int]bool // Remove arrived while leased; applied at EndLease
}

func newBase() baseScheduler {
	return baseScheduler{
		entities:      make(map[int]*Entity),
		leased:        make(map[int]bool),
		removePending: make(map[int]bool),
	}
}

// Add registers an entity.
//
//govisor:serialonly(mutates the shared runqueue; scheduler topology changes are barrier-only)
func (b *baseScheduler) Add(id int, weight, capPct uint64) {
	if weight == 0 {
		weight = 1
	}
	if e, dup := b.entities[id]; dup {
		// Re-adding an entity whose removal is still pending behind a lease
		// is a fresh registration that cannot drop the in-flight lease's
		// accounting: cancel the removal and install the caller's new
		// parameters, but keep the entity (and its Used) live so the
		// pending Account still lands.
		if b.removePending[id] {
			delete(b.removePending, id)
			e.Weight, e.CapPct = weight, capPct
		}
		return
	}
	b.entities[id] = &Entity{ID: id, Weight: weight, CapPct: capPct}
	b.order = append(b.order, id)
}

// Remove deregisters an entity. Removing a currently-leased entity defers
// until EndLease so the in-flight quantum's Account still lands on live
// state — dropping it would leave Used (fairness) and the credit/CFS global
// accounting (periodSpent, total vruntime progress) silently short.
//
//govisor:serialonly(mutates the shared runqueue; scheduler topology changes are barrier-only)
func (b *baseScheduler) Remove(id int) {
	if b.leased[id] {
		b.removePending[id] = true
		return
	}
	b.remove(id)
}

func (b *baseScheduler) remove(id int) {
	delete(b.entities, id)
	delete(b.removePending, id)
	for i, v := range b.order {
		if v == id {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
}

// BeginLease marks id as dispatched for the current epoch: Next will not
// offer it again until EndLease.
func (b *baseScheduler) BeginLease(id int) {
	if _, ok := b.entities[id]; ok {
		b.leased[id] = true
	}
}

// EndLease returns id to the schedulable set and applies a Remove that
// arrived while the lease was outstanding.
func (b *baseScheduler) EndLease(id int) {
	delete(b.leased, id)
	if b.removePending[id] {
		b.remove(id)
	}
}

// Leased reports whether id is currently leased (test visibility).
func (b *baseScheduler) Leased(id int) bool { return b.leased[id] }

// Block marks an entity unrunnable.
func (b *baseScheduler) Block(id int) {
	if e := b.entities[id]; e != nil {
		e.Blocked = true
	}
}

// Entity exposes accounting state (experiments read Used).
func (b *baseScheduler) Entity(id int) *Entity { return b.entities[id] }

// Shares returns each live entity's consumed cycles, in registration order
// (input to metrics.JainIndex).
func (b *baseScheduler) Shares() []float64 {
	out := make([]float64, 0, len(b.order))
	for _, id := range b.order {
		out = append(out, float64(b.entities[id].Used))
	}
	return out
}

func (b *baseScheduler) runnable() []*Entity {
	out := make([]*Entity, 0, len(b.order))
	for _, id := range b.order {
		if e := b.entities[id]; e != nil && !e.Blocked && !b.leased[id] {
			out = append(out, e)
		}
	}
	return out
}

// RoundRobin is the baseline policy: equal quanta in registration order,
// ignoring weights and caps — the strawman the fairness experiment knocks
// down.
type RoundRobin struct {
	baseScheduler
	next    int
	Quantum uint64
}

// NewRoundRobin creates the policy with the given quantum in cycles.
func NewRoundRobin(quantum uint64) *RoundRobin {
	return &RoundRobin{baseScheduler: newBase(), Quantum: quantum}
}

// Next implements core.Scheduler.
func (r *RoundRobin) Next() (int, uint64, bool) {
	run := r.runnable()
	if len(run) == 0 {
		return 0, 0, false
	}
	e := run[r.next%len(run)]
	r.next++
	return e.ID, r.Quantum, true
}

// Account implements core.Scheduler.
func (r *RoundRobin) Account(id int, used uint64) {
	if e := r.entities[id]; e != nil {
		e.Used += used
	}
}

// Unblock implements core.Scheduler.
func (r *RoundRobin) Unblock(id int) {
	if e := r.entities[id]; e != nil {
		e.Blocked = false
	}
}
