package sched

// CFS is a completely-fair-scheduler-like policy: each entity accrues
// weighted virtual runtime (used × referenceWeight ÷ weight) and the entity
// with the least vruntime runs next. Waking entities are placed at the
// current minimum so they neither starve nor monopolize.
type CFS struct {
	baseScheduler
	Quantum uint64
}

// referenceWeight normalizes vruntime (weight 1024 ≈ nice 0, as in Linux).
const referenceWeight = 1024

// NewCFS creates the policy.
func NewCFS() *CFS {
	return &CFS{baseScheduler: newBase(), Quantum: defaultQuantum}
}

func (c *CFS) minVruntime() uint64 {
	var m uint64
	first := true
	for _, id := range c.order {
		e := c.entities[id]
		if e == nil || e.Blocked {
			continue
		}
		if first || e.vruntime < m {
			m = e.vruntime
			first = false
		}
	}
	return m
}

// Next implements core.Scheduler: least vruntime wins; caps throttle.
func (c *CFS) Next() (int, uint64, bool) {
	run := c.runnable()
	if len(run) == 0 {
		return 0, 0, false
	}
	var pick *Entity
	for _, e := range run {
		if e.CapPct > 0 {
			// An entity past its cap relative to total progress is skipped.
			total := c.totalUsed()
			if total > 0 && e.Used*100 > total*e.CapPct {
				continue
			}
		}
		if pick == nil || e.vruntime < pick.vruntime {
			pick = e
		}
	}
	if pick == nil {
		return 0, 0, false
	}
	return pick.ID, c.Quantum, true
}

func (c *CFS) totalUsed() uint64 {
	var t uint64
	for _, id := range c.order {
		if e := c.entities[id]; e != nil {
			t += e.Used
		}
	}
	return t
}

// Account implements core.Scheduler.
func (c *CFS) Account(id int, used uint64) {
	e := c.entities[id]
	if e == nil {
		return
	}
	e.Used += used
	e.vruntime += used * referenceWeight / e.Weight
}

// Unblock implements core.Scheduler: wake at the current minimum vruntime.
func (c *CFS) Unblock(id int) {
	e := c.entities[id]
	if e == nil || !e.Blocked {
		return
	}
	// Compute the floor before marking runnable, so the woken entity's own
	// stale vruntime cannot become the minimum.
	floor := c.minVruntime()
	e.Blocked = false
	if e.vruntime < floor {
		e.vruntime = floor
	}
}
