package sched

import (
	"testing"

	"govisor/internal/metrics"
)

// drive simulates a dispatch loop: every runnable entity consumes exactly
// its granted quantum, for n dispatches.
func drive(s interface {
	Next() (int, uint64, bool)
	Account(id int, used uint64)
}, n int) {
	for i := 0; i < n; i++ {
		id, q, ok := s.Next()
		if !ok {
			return
		}
		s.Account(id, q)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rr := NewRoundRobin(100)
	rr.Add(1, 1, 0)
	rr.Add(2, 1, 0)
	rr.Add(3, 1, 0)
	var seq []int
	for i := 0; i < 6; i++ {
		id, q, ok := rr.Next()
		if !ok || q != 100 {
			t.Fatal("next failed")
		}
		seq = append(seq, id)
		rr.Account(id, q)
	}
	want := []int{1, 2, 3, 1, 2, 3}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq = %v", seq)
		}
	}
}

func TestRoundRobinIgnoresWeights(t *testing.T) {
	rr := NewRoundRobin(100)
	rr.Add(1, 10, 0)
	rr.Add(2, 1, 0)
	drive(rr, 100)
	e1, e2 := rr.Entity(1), rr.Entity(2)
	if e1.Used != e2.Used {
		t.Fatalf("rr should split equally: %d vs %d", e1.Used, e2.Used)
	}
}

func TestRoundRobinSkipsBlocked(t *testing.T) {
	rr := NewRoundRobin(100)
	rr.Add(1, 1, 0)
	rr.Add(2, 1, 0)
	rr.Block(1)
	for i := 0; i < 5; i++ {
		id, _, ok := rr.Next()
		if !ok || id != 2 {
			t.Fatalf("got %d", id)
		}
		rr.Account(id, 100)
	}
	rr.Unblock(1)
	found := false
	for i := 0; i < 3; i++ {
		id, _, _ := rr.Next()
		rr.Account(id, 100)
		if id == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("unblocked entity never ran")
	}
}

func TestNothingRunnable(t *testing.T) {
	for _, s := range []interface {
		Add(int, uint64, uint64)
		Block(int)
		Next() (int, uint64, bool)
	}{NewRoundRobin(100), NewCredit(), NewCFS()} {
		if _, _, ok := s.Next(); ok {
			t.Fatal("empty scheduler returned an entity")
		}
		s.Add(1, 1, 0)
		s.Block(1)
		if _, _, ok := s.Next(); ok {
			t.Fatal("blocked-only scheduler returned an entity")
		}
	}
}

func TestCreditWeightsProportional(t *testing.T) {
	c := NewCredit()
	c.Add(1, 256, 0) // weight 2x
	c.Add(2, 128, 0)
	drive(c, 3000)
	u1, u2 := c.Entity(1).Used, c.Entity(2).Used
	ratio := float64(u1) / float64(u2)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("weight 2:1 gave ratio %.2f (%d vs %d)", ratio, u1, u2)
	}
}

func TestCreditCapEnforced(t *testing.T) {
	c := NewCredit()
	c.Add(1, 256, 25) // capped at 25%
	c.Add(2, 256, 0)
	drive(c, 4000)
	u1, u2 := c.Entity(1).Used, c.Entity(2).Used
	share := float64(u1) / float64(u1+u2) * 100
	if share > 35 {
		t.Fatalf("capped entity got %.1f%%", share)
	}
	if c.Throttles == 0 {
		t.Fatal("cap never throttled")
	}
}

func TestCreditBoostPreempts(t *testing.T) {
	c := NewCredit()
	c.Add(1, 256, 0) // hog
	c.Add(2, 256, 0) // sleeper
	c.Block(2)
	drive(c, 50) // hog burns credits
	c.Unblock(2) // sleeper wakes → BOOST
	id, _, ok := c.Next()
	if !ok || id != 2 {
		t.Fatalf("woken entity should preempt, got %d", id)
	}
	if c.Boosts != 1 {
		t.Fatalf("boosts = %d", c.Boosts)
	}
}

func TestCreditFairnessEqualWeights(t *testing.T) {
	c := NewCredit()
	for i := 1; i <= 4; i++ {
		c.Add(i, 256, 0)
	}
	drive(c, 4000)
	if jain := metrics.JainIndex(c.Shares()); jain < 0.98 {
		t.Fatalf("credit fairness = %.3f", jain)
	}
}

func TestCFSFairnessEqualWeights(t *testing.T) {
	c := NewCFS()
	for i := 1; i <= 4; i++ {
		c.Add(i, 1024, 0)
	}
	drive(c, 4000)
	if jain := metrics.JainIndex(c.Shares()); jain < 0.98 {
		t.Fatalf("cfs fairness = %.3f", jain)
	}
}

func TestCFSWeightsProportional(t *testing.T) {
	c := NewCFS()
	c.Add(1, 4096, 0) // 4x weight
	c.Add(2, 1024, 0)
	drive(c, 5000)
	ratio := float64(c.Entity(1).Used) / float64(c.Entity(2).Used)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("weight 4:1 gave ratio %.2f", ratio)
	}
}

func TestCFSWakeDoesNotStarveOrMonopolize(t *testing.T) {
	c := NewCFS()
	c.Add(1, 1024, 0)
	c.Add(2, 1024, 0)
	c.Block(2)
	drive(c, 100) // entity 1 accumulates vruntime
	c.Unblock(2)  // entity 2 wakes at min vruntime, not zero
	// If it woke at vruntime 0 it would monopolize for ~100 dispatches.
	counts := map[int]int{}
	for i := 0; i < 20; i++ {
		id, q, _ := c.Next()
		c.Account(id, q)
		counts[id]++
	}
	if counts[2] > 15 {
		t.Fatalf("woken entity monopolized: %v", counts)
	}
	if counts[2] == 0 {
		t.Fatalf("woken entity starved: %v", counts)
	}
}

func TestRemoveEntity(t *testing.T) {
	c := NewCredit()
	c.Add(1, 256, 0)
	c.Add(2, 256, 0)
	c.Remove(1)
	for i := 0; i < 10; i++ {
		id, _, ok := c.Next()
		if !ok || id != 2 {
			t.Fatalf("removed entity dispatched: %d", id)
		}
		c.Account(id, 100)
	}
}

func TestAddDuplicateIgnored(t *testing.T) {
	c := NewCFS()
	c.Add(1, 1024, 0)
	c.Add(1, 2048, 0)
	if c.Entity(1).Weight != 1024 {
		t.Fatal("duplicate add should be ignored")
	}
}

func TestZeroWeightNormalized(t *testing.T) {
	c := NewCredit()
	c.Add(1, 0, 0)
	if c.Entity(1).Weight == 0 {
		t.Fatal("zero weight must be normalized")
	}
	drive(c, 10) // must not divide by zero
}
