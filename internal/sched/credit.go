package sched

// Credit is a Xen-style credit scheduler. Each accounting period it deals
// credits proportionally to weight; running burns credits; entities with
// positive credits are UNDER (preferred), negative are OVER. A blocked
// entity that wakes enters BOOST and preempts to the head of the queue —
// the mechanism that keeps latency-sensitive VMs responsive among CPU hogs.
// Caps throttle entities that exceeded their utilization allowance.
type Credit struct {
	baseScheduler

	Quantum     uint64 // cycles per dispatch
	Period      uint64 // credit refill period
	periodSpent uint64
	elapsed     uint64 // host cycles observed via Account
	primed      bool   // first credit deal done

	// Stats.
	Boosts, Throttles uint64
}

// Credit amounts are in cycle units: each period distributes Period cycles
// worth of credit across entities by weight.
const (
	defaultQuantum = 1_000_000  // 1 ms
	defaultPeriod  = 30_000_000 // 30 ms, as in Xen's 30 ms accounting
)

// NewCredit creates the scheduler with default Xen-like parameters.
func NewCredit() *Credit {
	return &Credit{baseScheduler: newBase(), Quantum: defaultQuantum, Period: defaultPeriod}
}

func (c *Credit) refill() {
	var totalWeight uint64
	for _, id := range c.order {
		if e := c.entities[id]; e != nil && !e.Blocked {
			totalWeight += e.Weight
		}
	}
	if totalWeight == 0 {
		return
	}
	for _, id := range c.order {
		e := c.entities[id]
		if e == nil || e.Blocked {
			continue
		}
		share := int64(c.Period * e.Weight / totalWeight)
		e.credits += share
		// Cap accumulated credit so long sleeps don't bank unbounded time.
		if e.credits > int64(2*c.Period) {
			e.credits = int64(2 * c.Period)
		}
		// Cap enforcement bookkeeping: allowance this period.
		if e.CapPct > 0 {
			allowance := c.Period * e.CapPct / 100
			if e.capDebt > allowance {
				e.capDebt -= allowance
			} else {
				e.capDebt = 0
			}
		}
	}
}

// Next implements core.Scheduler: boosted first, then highest credit.
func (c *Credit) Next() (int, uint64, bool) {
	if !c.primed {
		// Deal the first round of credits immediately so weight ratios hold
		// from the first dispatch, as in Xen (credits exist before use).
		c.refill()
		c.primed = true
	}
	run := c.runnable()
	if len(run) == 0 {
		return 0, 0, false
	}
	var pick *Entity
	for _, e := range run {
		if e.CapPct > 0 && e.capDebt > c.Period*e.CapPct/100 {
			c.Throttles++
			continue // over cap: skip this period
		}
		switch {
		case pick == nil:
			pick = e
		case e.boosted && !pick.boosted:
			pick = e
		case e.boosted == pick.boosted && e.credits > pick.credits:
			pick = e
		}
	}
	if pick == nil {
		return 0, 0, false // everyone throttled
	}
	pick.boosted = false
	return pick.ID, c.Quantum, true
}

// Account implements core.Scheduler.
func (c *Credit) Account(id int, used uint64) {
	e := c.entities[id]
	if e == nil {
		return
	}
	e.Used += used
	e.credits -= int64(used)
	if e.CapPct > 0 {
		e.capDebt += used
	}
	c.periodSpent += used
	c.elapsed += used
	if c.periodSpent >= c.Period {
		c.periodSpent = 0
		c.refill()
	}
}

// Unblock implements core.Scheduler: waking enters BOOST.
func (c *Credit) Unblock(id int) {
	e := c.entities[id]
	if e == nil || !e.Blocked {
		return
	}
	e.Blocked = false
	e.boosted = true
	c.Boosts++
}
