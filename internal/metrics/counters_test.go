package metrics

import (
	"strings"
	"testing"
)

func TestCounterSetAccumulatesAndOrders(t *testing.T) {
	var s CounterSet
	s.Add("hits", 3)
	s.Add("misses", 1)
	s.Add("hits", 2)
	if got := s.Get("hits"); got != 5 {
		t.Fatalf("hits = %d", got)
	}
	if got := s.Get("absent"); got != 0 {
		t.Fatalf("absent = %d", got)
	}
	all := s.All()
	if len(all) != 2 || all[0].Name != "hits" || all[1].Name != "misses" {
		t.Fatalf("order lost: %+v", all)
	}
	if got := s.String(); got != "hits=5 misses=1" {
		t.Fatalf("String = %q", got)
	}
}

func TestCounterSetTable(t *testing.T) {
	var s CounterSet
	s.Add("icache_hits", 42)
	out := s.Table().String()
	if !strings.Contains(out, "icache_hits") || !strings.Contains(out, "42") {
		t.Fatalf("table missing counter:\n%s", out)
	}
}
