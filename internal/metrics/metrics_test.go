package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should read zero")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 50 {
		t.Fatalf("p50 = %v", q)
	}
	if q := h.Quantile(0.99); q != 99 {
		t.Fatalf("p99 = %v", q)
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %v", h.Sum())
	}
	if h.String() == "" {
		t.Fatal("String")
	}
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("reset")
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	var h Histogram
	h.Observe(3)
	h.Observe(1)
	_ = h.Quantile(0.5) // sorts
	h.Observe(2)        // must re-sort lazily
	if h.Quantile(0.5) != 2 {
		t.Fatalf("p50 = %v", h.Quantile(0.5))
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	if got := h.Stddev(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("stddev = %v", got)
	}
}

func TestHistogramQuantileMonotonicProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var h Histogram
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		if h.Count() == 0 {
			return true
		}
		last := h.Quantile(0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if cur < last {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJainIndex(t *testing.T) {
	if JainIndex(nil) != 0 {
		t.Fatal("empty")
	}
	if JainIndex([]float64{0, 0}) != 0 {
		t.Fatal("all zero")
	}
	if j := JainIndex([]float64{5, 5, 5, 5}); math.Abs(j-1.0) > 1e-12 {
		t.Fatalf("equal shares = %v", j)
	}
	// One party hogging everything among n → 1/n.
	if j := JainIndex([]float64{10, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("monopoly = %v", j)
	}
}

func TestJainBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		shares := make([]float64, len(raw))
		nonzero := false
		for i, v := range raw {
			shares[i] = float64(v)
			if v != 0 {
				nonzero = true
			}
		}
		j := JainIndex(shares)
		if !nonzero {
			return j == 0
		}
		return j >= 1.0/float64(len(shares))-1e-9 && j <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRowv("beta-longer", 3.14159)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta-longer") {
		t.Fatalf("table:\n%s", out)
	}
	if !strings.Contains(out, "3.14") {
		t.Fatalf("float formatting:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: every line at least as long as the header names.
	if len(lines[1]) < len("name") {
		t.Fatal("rule too short")
	}
}
