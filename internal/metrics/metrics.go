// Package metrics provides the lightweight counters and histograms the
// experiments report. Everything is plain in-process state — benchmarks
// snapshot values between phases.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Histogram accumulates samples and reports order statistics. It stores raw
// samples (experiments are bounded) so percentiles are exact.
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the total of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the average, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) by nearest-rank, or 0 when
// empty.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Min returns the smallest sample.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Stddev returns the population standard deviation.
func (h *Histogram) Stddev() float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Reset discards all samples.
func (h *Histogram) Reset() { h.samples = h.samples[:0]; h.sum = 0; h.sorted = false }

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Counter is one named monotonic count.
type Counter struct {
	Name  string
	Value uint64
}

// CounterSet is an ordered collection of named counters — the conventional
// way subsystems surface hit/miss-style statistics to the benchmark tables.
// It is goroutine-safe, so concurrent VM workers under the parallel host
// engine can aggregate into one shared set.
type CounterSet struct {
	mu       sync.Mutex
	counters []Counter
}

// Add appends (or accumulates into) the named counter.
func (s *CounterSet) Add(name string, v uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.counters {
		if s.counters[i].Name == name {
			s.counters[i].Value += v
			return
		}
	}
	s.counters = append(s.counters, Counter{Name: name, Value: v})
}

// Get returns the named counter's value, or 0 if absent.
func (s *CounterSet) Get(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// All returns a snapshot of the counters in insertion order.
func (s *CounterSet) All() []Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Counter(nil), s.counters...)
}

// Table renders the set as a two-column table.
func (s *CounterSet) Table() *Table {
	t := &Table{Header: []string{"counter", "value"}}
	for _, c := range s.All() {
		t.AddRow(c.Name, fmt.Sprint(c.Value))
	}
	return t
}

// String renders the set compactly: "a=1 b=2".
func (s *CounterSet) String() string {
	var b strings.Builder
	for i, c := range s.All() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", c.Name, c.Value)
	}
	return b.String()
}

// JainIndex computes Jain's fairness index over per-party allocations:
// (Σx)² / (n·Σx²). 1.0 is perfectly fair; 1/n is maximally unfair.
func JainIndex(shares []float64) float64 {
	if len(shares) == 0 {
		return 0
	}
	var sum, sq float64
	for _, s := range shares {
		sum += s
		sq += s * s
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(shares)) * sq)
}

// Table renders rows of columns with aligned widths — the benchsuite's
// output format for every reproduced table and figure.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row of Sprintf-formatted cells given as (format, value)
// alternation convenience: each argument is rendered with %v.
func (t *Table) AddRowv(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
