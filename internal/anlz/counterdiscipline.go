package anlz

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CounterDiscipline enforces counter ownership: a metrics/stat counter —
// an exported integer field of another package's struct — may only be
// bumped (++, --, +=, -=, |=, &=, ^=) by its owning package or through
// metrics.CounterSet. Cross-package bumps bypass the owner's accounting
// discipline (epoch batching, atomic publication, histogram mirroring) and
// are how counters silently desynchronize from the state they describe.
//
// Plain assignment (`=`) from another package is allowed: snapshot
// restoration and test setup legitimately overwrite counters wholesale;
// it is the read-modify-write that must stay with the owner.
//
// Suppression: `//govisor:counterok(reason)` on the bump line.
var CounterDiscipline = &Analyzer{
	Name: "counterdiscipline",
	Doc:  "stat counters are bumped only by their owning package or metrics.CounterSet",
	Run:  runCounterDiscipline,
}

func runCounterDiscipline(pass *Pass) error {
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var target ast.Expr
				switch st := n.(type) {
				case *ast.IncDecStmt:
					target = st.X
				case *ast.AssignStmt:
					switch st.Tok {
					case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
						token.AND_ASSIGN, token.XOR_ASSIGN, token.SHL_ASSIGN,
						token.SHR_ASSIGN, token.AND_NOT_ASSIGN, token.QUO_ASSIGN,
						token.REM_ASSIGN, token.MUL_ASSIGN:
						if len(st.Lhs) == 1 {
							target = st.Lhs[0]
						}
					}
				}
				if target == nil {
					return true
				}
				sel, _ := baseSelector(target)
				if sel == nil {
					return true
				}
				field := fieldOf(info, sel)
				if field == nil || !field.Exported() || field.Pkg() == nil {
					return true
				}
				if field.Pkg() == pkg.Types {
					return true // owner bumps its own counters freely
				}
				if b, ok := field.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
					return true
				}
				if _, ok := pkg.directiveAt(pass.Fset, n.Pos(), "counterok"); ok {
					return true
				}
				pass.Reportf(n.Pos(),
					"counter %s.%s is owned by package %s but bumped here in %s; route the bump through the owner (or metrics.CounterSet), or annotate //govisor:counterok(reason)",
					field.Pkg().Name(), field.Name(), field.Pkg().Name(), pkg.Name)
				return true
			})
		}
	}
	return nil
}
