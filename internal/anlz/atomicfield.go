package anlz

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces all-or-nothing atomic access to struct fields: a
// field that is read or written through sync/atomic anywhere in the program
// must be accessed through sync/atomic everywhere. The race detector only
// catches a mixed access when the schedule actually interleaves it; this
// check catches it at lint time, which is what the memo-coherence fields
// (mem.GuestPhys.ver/wepoch, writeMemo.gfn/armed, pool refcnts) rely on —
// a single plain read of one of those can observe a torn or stale value on
// exactly the cross-goroutine probe the counters exist for.
//
// Two granularities are tracked. When atomics target the field itself
// (&s.f), every plain access of f is flagged. When atomics target an element
// (&s.f[i]), element reads and writes are flagged but whole-slice operations
// (s.f = make(...), len, range) are not: the slice header is owner-only
// setup, the elements are the shared cells.
//
// Suppression: `//govisor:nonatomic(reason)` on the field declaration
// exempts the field; the same directive on an access line exempts that
// access (for provably pre-publication initialization).
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicField,
}

type atomicUse struct {
	pos     token.Pos // one representative atomic access, for the diagnostic
	element bool      // atomics target &f[i] rather than &f
	direct  bool      // atomics target &f itself
}

func runAtomicField(pass *Pass) error {
	atomicFields := map[*types.Var]*atomicUse{}
	sanctioned := map[*ast.SelectorExpr]bool{}

	// Pass 1: collect fields whose address feeds a sync/atomic call.
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(info, call) || len(call.Args) == 0 {
					return true
				}
				unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					return true
				}
				sel, indexed := baseSelector(unary.X)
				if sel == nil {
					return true
				}
				field := fieldOf(info, sel)
				if field == nil {
					return true
				}
				use := atomicFields[field]
				if use == nil {
					use = &atomicUse{pos: call.Pos()}
					atomicFields[field] = use
				}
				if indexed {
					use.element = true
				} else {
					use.direct = true
				}
				sanctioned[sel] = true
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}

	fieldDecls := fieldDeclIndex(pass)

	// Pass 2: flag every plain access of those fields.
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			var stack []ast.Node
			ast.Inspect(file, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				// Ranging with a value variable reads elements, which for an
				// element-atomic field is a plain element access.
				if rng, ok := n.(*ast.RangeStmt); ok && rng.Value != nil {
					if sel, _ := baseSelector(rng.X); sel != nil {
						field := fieldOf(info, sel)
						if use, tracked := atomicFields[field]; tracked && use.element {
							if _, suppressed := pkg.directiveAt(pass.Fset, rng.Pos(), "nonatomic"); !suppressed {
								pass.Reportf(rng.Pos(),
									"range over field %s reads its elements directly, but they are accessed atomically (e.g. at %s)",
									fieldDisplay(field), pass.Fset.Position(use.pos))
							}
						}
					}
					return true
				}
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				field := fieldOf(info, sel)
				use, tracked := atomicFields[field]
				if !tracked {
					return true
				}
				// Element-only atomics: a plain mention of the field is an
				// access to the shared cells only when indexed.
				if !use.direct && use.element && !selectorIndexed(stack, sel) {
					return true
				}
				if fd, ok := fieldDecls[field]; ok {
					if _, suppressed := fd.pkg.fieldDirective(fd.field, "nonatomic"); suppressed {
						return true
					}
				}
				if _, suppressed := pkg.directiveAt(pass.Fset, sel.Pos(), "nonatomic"); suppressed {
					return true
				}
				pass.Reportf(sel.Pos(),
					"field %s is accessed atomically (e.g. at %s) but accessed directly here; use sync/atomic or annotate the field //govisor:nonatomic(reason)",
					fieldDisplay(field), pass.Fset.Position(use.pos))
				return true
			})
		}
	}
	return nil
}

// isAtomicCall reports a call to a sync/atomic package-level function.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := funcObj(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" &&
		fn.Type().(*types.Signature).Recv() == nil
}

// selectorIndexed reports whether sel is the operand of an index expression
// (s.f[i], including (s.f)[i]) — i.e. whether the access touches an element
// rather than the slice header.
func selectorIndexed(stack []ast.Node, sel *ast.SelectorExpr) bool {
	child := ast.Node(sel)
	for j := len(stack) - 2; j >= 0; j-- {
		switch e := stack[j].(type) {
		case *ast.ParenExpr:
			child = e
		case *ast.IndexExpr:
			return e.X == child
		default:
			return false
		}
	}
	return false
}

type fieldDecl struct {
	pkg   *Package
	field *ast.Field
}

// fieldDeclIndex maps every struct field object of the program to its
// declaration site (for field-level directive lookups).
func fieldDeclIndex(pass *Pass) map[*types.Var]fieldDecl {
	idx := map[*types.Var]fieldDecl{}
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						if v, ok := info.Defs[name].(*types.Var); ok {
							idx[v] = fieldDecl{pkg: pkg, field: f}
						}
					}
				}
				return true
			})
		}
	}
	return idx
}

// fieldDisplay renders a field for diagnostics as pkg.field.
func fieldDisplay(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}
