package anlz

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PairParity keeps fast paths and their reference arms in lockstep: a
// function annotated `//govisor:pair <refName>` (the fast path) must mutate
// the same set of integer state fields — cycle counters, instret, CSRs,
// stat counters — as its reference arm <refName> in the same package. The
// differential tests prove the pair byte-identical on the inputs they
// generate; this check proves structurally that neither arm can grow a
// counter bump the other lacks, which is exactly how arms drift when a
// later PR touches only one of them.
//
// Write-sets are transitive over same-package static callees (the memoized
// fast path and the reference arm typically share helpers like vmExit) and
// filtered to integer-typed fields, including integer arrays (register
// files) — struct- and slice-typed fields are bookkeeping whose equality is
// the differential tests' job, not a counter contract.
var PairParity = &Analyzer{
	Name: "pairparity",
	Doc:  "//govisor:pair fast-path/reference arms must mutate the same integer state fields",
	Run:  runPairParity,
}

func runPairParity(pass *Pass) error {
	for _, pkg := range pass.Pkgs {
		decls := map[string]*ast.FuncDecl{}
		var names []string
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					key := funcDeclKey(fd)
					decls[key] = fd
					names = append(names, key)
				}
			}
		}
		sort.Strings(names)

		memo := map[*ast.FuncDecl]map[*types.Var]bool{}
		for _, name := range names {
			fd := decls[name]
			dir, ok := pkg.funcDirective(fd, "pair")
			if !ok {
				continue
			}
			refName := dir.Arg
			ref := findPairTarget(decls, fd, refName)
			if ref == nil {
				pass.Reportf(fd.Pos(), "pair reference %q for %s not found in package %s", refName, name, pkg.Name)
				continue
			}
			fastW := writeSet(pkg, fd, decls, memo, nil)
			refW := writeSet(pkg, ref, decls, memo, nil)
			var missing, extra []string
			for v := range refW {
				if !fastW[v] {
					missing = append(missing, fieldDisplay(v))
				}
			}
			for v := range fastW {
				if !refW[v] {
					extra = append(extra, fieldDisplay(v))
				}
			}
			sort.Strings(missing)
			sort.Strings(extra)
			if len(missing) > 0 {
				pass.Reportf(fd.Pos(),
					"fast path %s does not mutate %s, but its reference arm %s does; the arms have drifted",
					name, strings.Join(missing, ", "), refName)
			}
			if len(extra) > 0 {
				pass.Reportf(fd.Pos(),
					"fast path %s mutates %s, but its reference arm %s does not; the arms have drifted",
					name, strings.Join(extra, ", "), refName)
			}
		}
	}
	return nil
}

// funcDeclKey names a declaration within its package: Func or Type.Method.
func funcDeclKey(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// findPairTarget resolves a pair reference name: either a bare function/
// method name (matched on the same receiver type first, then any), or a
// Type.Method key.
func findPairTarget(decls map[string]*ast.FuncDecl, from *ast.FuncDecl, refName string) *ast.FuncDecl {
	if fd, ok := decls[refName]; ok {
		return fd
	}
	// Bare method name: prefer the fast path's own receiver type.
	if from.Recv != nil {
		key := funcDeclKey(from)
		if i := strings.LastIndex(key, "."); i >= 0 {
			if fd, ok := decls[key[:i]+"."+refName]; ok {
				return fd
			}
		}
	}
	var found *ast.FuncDecl
	for key, fd := range decls {
		if key == refName || strings.HasSuffix(key, "."+refName) {
			if found != nil && found != fd {
				return nil // ambiguous
			}
			found = fd
		}
	}
	return found
}

// writeSet computes the set of integer-typed struct fields a function
// mutates, transitively through same-package static callees. memo caches
// completed sets; path guards against recursion (a cycle contributes the
// fields found so far).
func writeSet(pkg *Package, fd *ast.FuncDecl, decls map[string]*ast.FuncDecl, memo map[*ast.FuncDecl]map[*types.Var]bool, path map[*ast.FuncDecl]bool) map[*types.Var]bool {
	if set, ok := memo[fd]; ok {
		return set
	}
	if path == nil {
		path = map[*ast.FuncDecl]bool{}
	}
	if path[fd] {
		return nil
	}
	path[fd] = true
	defer delete(path, fd)

	set := map[*types.Var]bool{}
	addTarget := func(expr ast.Expr) {
		sel, _ := baseSelector(expr)
		if sel == nil {
			return
		}
		if v := fieldOf(pkg.Info, sel); v != nil && isCounterLike(v.Type()) {
			set[v] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				addTarget(lhs)
			}
		case *ast.IncDecStmt:
			addTarget(st.X)
		case *ast.CallExpr:
			// Atomic mutations count as writes too (&s.f first arg). Pure
			// observations (atomic.Load*) are not mutations: a fast path
			// validating against an epoch counter does not thereby write it.
			if isAtomicCall(pkg.Info, st) && len(st.Args) > 0 {
				if fn := funcObj(pkg.Info, st); fn != nil && !strings.HasPrefix(fn.Name(), "Load") {
					if u, ok := ast.Unparen(st.Args[0]).(*ast.UnaryExpr); ok && u.Op == token.AND {
						addTarget(u.X)
					}
				}
				return true
			}
			// Same-package static callee: fold in its write-set.
			if callee := funcObj(pkg.Info, st); callee != nil && callee.Pkg() == pkg.Types {
				if calleeDecl := declOf(decls, callee); calleeDecl != nil && calleeDecl != fd {
					for v := range writeSet(pkg, calleeDecl, decls, memo, path) {
						set[v] = true
					}
				}
			}
		}
		return true
	})
	memo[fd] = set
	return set
}

// declOf finds the declaration of a *types.Func among the package decls.
func declOf(decls map[string]*ast.FuncDecl, fn *types.Func) *ast.FuncDecl {
	sig := fn.Type().(*types.Signature)
	key := fn.Name()
	if sig.Recv() != nil {
		if n := recvName(sig.Recv().Type()); n != "" {
			key = n + "." + fn.Name()
		}
	}
	return decls[key]
}

// isCounterLike reports integer-valued state: plain integers and integer
// arrays (register files, counter banks).
func isCounterLike(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsInteger != 0
	case *types.Array:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok {
			return b.Info()&types.IsInteger != 0
		}
	}
	return false
}
