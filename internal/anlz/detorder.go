package anlz

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetOrder flags the classic nondeterminism hazards in guest-visible
// packages of a byte-identical simulator:
//
//   - map iteration whose per-element effects escape the loop in an
//     order-sensitive way. Order-insensitive bodies are allowed: deleting
//     from the ranged map, commutative accumulation (+=, |=, counters,
//     min/max folds), writes indexed by the range key, and the
//     collect-then-sort idiom (append into a slice that is subsequently
//     sorted in the same function).
//   - time.Now and unseeded math/rand: wall-clock and global-RNG values
//     must never feed guest-visible state. `//govisor:hostclock(reason)`
//     allowlists a site as host-side telemetry; `//govisor:nondet(reason)`
//     allowlists a map range proven order-insensitive by other means.
//
// Guest-visible means every govisor/internal/... package except the bench
// harness and this analysis suite — those run host-side by construction.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "guest-visible packages must not iterate maps with escaping effects or read wall clock/global RNG",
	Run:  runDetOrder,
}

func runDetOrder(pass *Pass) error {
	for _, pkg := range pass.Pkgs {
		if !guestVisible(pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.CallExpr:
					checkNondetSource(pass, pkg, e)
				case *ast.FuncDecl:
					if e.Body != nil {
						checkMapRanges(pass, pkg, e)
					}
				}
				return true
			})
		}
	}
	return nil
}

// guestVisible reports whether a package's state can reach guest-observable
// simulation output.
func guestVisible(path string) bool {
	if !strings.HasPrefix(path, "govisor/internal/") {
		return false
	}
	switch {
	case strings.HasPrefix(path, "govisor/internal/bench"),
		strings.HasPrefix(path, "govisor/internal/anlz"):
		return false
	}
	return true
}

// checkNondetSource flags time.Now and global math/rand calls.
func checkNondetSource(pass *Pass, pkg *Package, call *ast.CallExpr) {
	fn := funcObj(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	var what, directive string
	switch {
	case fn.Pkg().Path() == "time" && fn.Name() == "Now":
		what, directive = "time.Now", "hostclock"
	case fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2":
		// Methods on an explicit *rand.Rand are fine — the seed is the
		// caller's responsibility and deterministic seeding is idiomatic
		// here. Package-level functions use the global, randomly-seeded
		// source.
		if fn.Type().(*types.Signature).Recv() != nil {
			return
		}
		if fn.Name() == "New" || fn.Name() == "NewSource" || strings.HasPrefix(fn.Name(), "NewPCG") || fn.Name() == "NewChaCha8" {
			return
		}
		what, directive = fn.Pkg().Path()+"."+fn.Name(), "hostclock"
	default:
		return
	}
	if _, ok := pkg.directiveAt(pass.Fset, call.Pos(), directive); ok {
		return
	}
	pass.Reportf(call.Pos(),
		"%s in guest-visible package %s: wall clock/global RNG breaks determinism; use the simulated clock or a seeded rand.Rand, or annotate //govisor:%s(reason)",
		what, pkg.Name, directive)
}

// checkMapRanges inspects every map-range statement of a function body.
func checkMapRanges(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := pkg.Info.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
			return true
		}
		if _, ok := pkg.directiveAt(pass.Fset, rng.Pos(), "nondet"); ok {
			return true
		}
		if effects := orderSensitiveEffect(pkg, fd, rng); effects != "" {
			pass.Reportf(rng.Pos(),
				"map iteration order is nondeterministic and %s; iterate sorted keys, make the body order-insensitive, or annotate //govisor:nondet(reason)",
				effects)
		}
		return true
	})
}

// orderSensitiveEffect decides whether a map-range body has effects that
// escape the loop in an order-dependent way. It returns "" for benign
// bodies and a description of the first offending effect otherwise.
func orderSensitiveEffect(pkg *Package, fd *ast.FuncDecl, rng *ast.RangeStmt) string {
	info := pkg.Info
	keyObj := rangeVarObj(info, rng.Key)
	valObj := rangeVarObj(info, rng.Value)
	mapObj := exprRootObj(info, rng.X)

	// Collect identifiers appended to inside the body; if every appended-to
	// slice is sorted later in the same function, the idiom is
	// collect-then-sort and benign.
	appended := map[types.Object]bool{}

	var offend string
	note := func(s string) {
		if offend == "" {
			offend = s
		}
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if offend != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.ASSIGN || st.Tok == token.DEFINE {
				for i, lhs := range st.Lhs {
					// append target?
					if i < len(st.Rhs) {
						if call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
							if obj := exprRootObj(info, lhs); obj != nil && !localToBody(obj, rng) {
								appended[obj] = true
								continue
							}
						}
					}
					if benignAssignTarget(info, lhs, keyObj, valObj, rng) {
						continue
					}
					if obj := exprRootObj(info, lhs); obj != nil && localToBody(obj, rng) {
						continue
					}
					note("assigns to state that outlives the loop")
				}
				return true
			}
			// Compound assignment: commutative ops folding into an
			// accumulator are order-insensitive.
			switch st.Tok {
			case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.SUB_ASSIGN:
				return true
			default:
				for _, lhs := range st.Lhs {
					if obj := exprRootObj(info, lhs); obj != nil && localToBody(obj, rng) {
						continue
					}
					note("assigns to state that outlives the loop")
				}
			}
		case *ast.IncDecStmt:
			return true // counters commute
		case *ast.CallExpr:
			if isBuiltin(info, st, "delete") && len(st.Args) > 0 && exprRootObj(info, st.Args[0]) == mapObj {
				return true // deleting from the ranged map is explicitly safe and order-free
			}
			if isBuiltin(info, st, "append") || isBuiltin(info, st, "len") || isBuiltin(info, st, "cap") || isBuiltin(info, st, "delete") {
				return true
			}
			if fn := funcObj(info, st); fn != nil {
				// Calls can carry arbitrary effects; only flag when a range
				// variable flows in — a call independent of the element is
				// the same every iteration.
				if usesObj(info, st, keyObj) || usesObj(info, st, valObj) {
					note("calls " + funcDisplayName(fn) + " with the range element")
				}
				return true
			}
			if usesObj(info, st, keyObj) || usesObj(info, st, valObj) {
				note("calls a function value with the range element")
			}
		case *ast.ReturnStmt:
			note("returns from inside the iteration")
		case *ast.BranchStmt:
			if st.Tok == token.GOTO {
				note("branches out of the iteration")
			}
		case *ast.SendStmt:
			note("sends on a channel")
		}
		return true
	})
	if offend != "" {
		return offend
	}
	// append targets must be sorted afterwards in the same function
	for obj := range appended {
		if !sortedAfter(pkg, fd, rng, obj) {
			return "appends to " + obj.Name() + " without sorting it afterwards"
		}
	}
	return ""
}

// benignAssignTarget reports assignment shapes that are order-insensitive:
// writes indexed by the range key or value (m2[k] = ...), and min/max-style
// folds guarded by a comparison with the range variables.
func benignAssignTarget(info *types.Info, lhs ast.Expr, keyObj, valObj types.Object, rng *ast.RangeStmt) bool {
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if usesObj(info, idx.Index, keyObj) || usesObj(info, idx.Index, valObj) {
			return true
		}
	}
	return false
}

// rangeVarObj resolves a range clause variable to its object.
func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	if e == nil {
		return nil
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	return nil
}

// exprRootObj walks to the root identifier of a selector/index chain.
func exprRootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// localToBody reports whether obj is declared inside the range statement.
func localToBody(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
}

// usesObj reports whether node references obj (or, when obj is nil, never).
func usesObj(info *types.Info, node ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// isBuiltin reports a call of the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// sortedAfter reports whether obj is passed to a sort/slices call after the
// range statement within the same function.
func sortedAfter(pkg *Package, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	info := pkg.Info
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rng.End() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObj(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		p := fn.Pkg().Path()
		if p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if usesObj(info, arg, obj) {
				found = true
			}
		}
		return true
	})
	return found
}
