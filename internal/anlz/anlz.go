// Package anlz is govisor's static-analysis suite: a set of custom
// analyzers that machine-enforce the invariants the fast-path engines rest
// on — atomic-access discipline on fields shared with concurrent observers,
// the epoch-barrier confinement of cross-VM services, fast-path/reference-arm
// lockstep, guest-visible determinism, and counter ownership. The analyzers
// run over the whole program at once (not per package like go/vet), because
// the invariants they check are cross-package by nature: a field declared in
// internal/mem is accessed from internal/vcpu, a barrier-only function in
// internal/ksm must be unreachable from a worker root in internal/core.
//
// The suite is deliberately built on the standard library alone (go/ast,
// go/types, go/importer and the go list command) rather than
// golang.org/x/tools/go/analysis, so `go run ./cmd/govisorcheck ./...` works
// in a dependency-free module. The Analyzer/Pass shapes mirror x/tools so a
// later migration is mechanical.
//
// Source annotations are `//govisor:` directives; see EXPERIMENTS.md
// ("Invariants & directives") for the vocabulary and when suppression is
// acceptable. Every suppressing directive requires a written reason in
// parentheses.
package anlz

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one whole-program check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Package is one loaded, type-checked package of the program under analysis.
type Package struct {
	Path  string
	Name  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives []Directive
}

// Pass carries the loaded program to an analyzer and collects findings.
type Pass struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Run executes the analyzers over the program and returns every finding,
// sorted by file position.
func (prog *Program) Run(analyzers ...*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Fset: prog.Fset, Pkgs: prog.Pkgs}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for i := range pass.diags {
			pass.diags[i].Analyzer = a.Name
		}
		all = append(all, pass.diags...)
	}
	fset := prog.Fset
	sort.SliceStable(all, func(i, j int) bool {
		pi, pj := fset.Position(all[i].Pos), fset.Position(all[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

// All returns the full analyzer suite in its canonical order.
func All() []*Analyzer {
	return []*Analyzer{AtomicField, SerialOnly, PairParity, DetOrder, CounterDiscipline}
}

// ---- directives ----

// Directive is one parsed `//govisor:name(arg)` (or `//govisor:name arg`)
// source annotation.
type Directive struct {
	Pos  token.Pos
	Line int
	Name string
	Arg  string
}

// parseDirectives extracts every govisor directive of a file.
func parseDirectives(fset *token.FileSet, f *ast.File) []Directive {
	var ds []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "govisor:") {
				continue
			}
			rest := strings.TrimPrefix(text, "govisor:")
			name := rest
			arg := ""
			if i := strings.IndexAny(rest, "( "); i >= 0 {
				name = rest[:i]
				arg = strings.TrimSpace(rest[i:])
				arg = strings.TrimPrefix(arg, "(")
				if j := strings.LastIndex(arg, ")"); j >= 0 {
					arg = arg[:j]
				}
				arg = strings.TrimSpace(arg)
			}
			ds = append(ds, Directive{
				Pos:  c.Pos(),
				Line: fset.Position(c.Pos()).Line,
				Name: name,
				Arg:  arg,
			})
		}
	}
	return ds
}

// directiveAt reports a directive named name on the same line as pos or on
// the line immediately above (the two places a statement-level suppression
// can be written).
func (pkg *Package) directiveAt(fset *token.FileSet, pos token.Pos, name string) (Directive, bool) {
	line := fset.Position(pos).Line
	file := fset.Position(pos).Filename
	for _, d := range pkg.directives {
		if d.Name != name {
			continue
		}
		if fset.Position(d.Pos).Filename != file {
			continue
		}
		if d.Line == line || d.Line == line-1 {
			return d, true
		}
	}
	return Directive{}, false
}

// funcDirective reports a directive named name written in fd's doc comment
// group (a comment directly above the declaration is part of that group).
// Deliberately no line-number fallback: a trailing comment on the previous
// line of unrelated code must not attach to this declaration.
func (pkg *Package) funcDirective(fd *ast.FuncDecl, name string) (Directive, bool) {
	for _, d := range pkg.directives {
		if d.Name != name {
			continue
		}
		if fd.Doc != nil && d.Pos >= fd.Doc.Pos() && d.Pos <= fd.Doc.End() {
			return d, true
		}
	}
	return Directive{}, false
}

// fieldDirective reports a directive named name attached to a struct field:
// in its doc comment or its trailing comment. As with funcDirective, no
// line-number fallback — the previous field's trailing comment is on "the
// line above" and must not leak onto this one.
func (pkg *Package) fieldDirective(field *ast.Field, name string) (Directive, bool) {
	for _, d := range pkg.directives {
		if d.Name != name {
			continue
		}
		if field.Doc != nil && d.Pos >= field.Doc.Pos() && d.Pos <= field.Doc.End() {
			return d, true
		}
		if field.Comment != nil && d.Pos >= field.Comment.Pos() && d.Pos <= field.Comment.End() {
			return d, true
		}
	}
	return Directive{}, false
}

// ---- shared AST/type helpers ----

// fieldOf resolves a selector expression to the struct field it selects, or
// nil when it selects something else (a method, a package member).
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// baseSelector unwraps index and parenthesis layers of an lvalue/expression
// chain: g.ver[gfn] → (selector g.ver, indexed=true); m.gfn → (m.gfn, false).
func baseSelector(expr ast.Expr) (*ast.SelectorExpr, bool) {
	indexed := false
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			indexed = true
			expr = e.X
		case *ast.SelectorExpr:
			return e, indexed
		default:
			return nil, false
		}
	}
}

// funcObj resolves a call expression's callee to its static *types.Func:
// package functions, qualified functions and concrete method calls. It
// returns nil for calls through function values, builtins and conversions.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			if f, ok := s.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// recvName names the receiver's named type (dereferencing pointers) for
// diagnostics; "" when the receiver is unnamed.
func recvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// funcDisplayName renders fn as Pkg.Func or Pkg.(Type).Method.
func funcDisplayName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		if n := recvName(sig.Recv().Type()); n != "" {
			return fmt.Sprintf("%s.(%s).%s", fn.Pkg().Name(), n, fn.Name())
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
