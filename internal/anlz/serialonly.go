package anlz

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SerialOnly enforces the epoch-barrier contract: functions annotated
// `//govisor:serialonly(reason)` — cross-VM services like KSM merging,
// balloon reclaim, vnet.Switch.Flush/SetDeferred, migration rounds and
// scheduler mutation — must be statically unreachable from worker-context
// roots, the functions annotated `//govisor:worker` ((*core.VM).Step and
// (*vcpu.CPU).Run). A worker owns exactly one VM's state; reaching a
// function that touches other VMs mid-epoch is a determinism and memory-
// safety violation that -race only catches under the right interleaving.
//
// The call graph is static: direct calls and concrete method calls resolve
// exactly; interface method calls expand by class-hierarchy analysis (every
// program type implementing the interface); calls through plain function
// values (fields, parameters) are not expanded — hook fields like
// core.VM.ReclaimHook carry their contract in documentation, which is
// exactly the gap the annotations close for named functions. Function
// literals are attributed to their enclosing declaration.
//
// Suppression: `//govisor:serialok(reason)` on a call line removes that
// edge, asserting the call is dynamically confined to the barrier.
var SerialOnly = &Analyzer{
	Name: "serialonly",
	Doc:  "//govisor:serialonly functions must be unreachable from //govisor:worker roots",
	Run:  runSerialOnly,
}

type callEdge struct {
	to  *types.Func
	pos token.Pos
}

type callGraph struct {
	edges map[*types.Func][]callEdge
	decls map[*types.Func]*ast.FuncDecl
	pkgOf map[*types.Func]*Package
}

func runSerialOnly(pass *Pass) error {
	g := buildCallGraph(pass)

	var roots, serial []*types.Func
	for fn, decl := range g.decls {
		pkg := g.pkgOf[fn]
		if _, ok := pkg.funcDirective(decl, "worker"); ok {
			roots = append(roots, fn)
		}
		if _, ok := pkg.funcDirective(decl, "serialonly"); ok {
			serial = append(serial, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })
	serialSet := map[*types.Func]bool{}
	for _, fn := range serial {
		serialSet[fn] = true
	}

	for _, root := range roots {
		// BFS, remembering the edge that first reached each function so a
		// finding can show the full call path.
		type visit struct {
			from *types.Func
			via  token.Pos
		}
		seen := map[*types.Func]visit{root: {}}
		queue := []*types.Func{root}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			if serialSet[fn] {
				// Report at the call site entering the serialonly function.
				path := []string{funcDisplayName(fn)}
				via := seen[fn].via
				for cur := seen[fn].from; cur != nil; cur = seen[cur].from {
					path = append(path, funcDisplayName(cur))
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				pass.Reportf(via,
					"serialonly function %s is reachable from worker root %s: %s; confine it to the epoch barrier or annotate the call //govisor:serialok(reason)",
					funcDisplayName(fn), funcDisplayName(root), strings.Join(path, " → "))
				continue // don't walk past a reported function
			}
			for _, e := range g.edges[fn] {
				if _, ok := seen[e.to]; ok {
					continue
				}
				seen[e.to] = visit{from: fn, via: e.pos}
				queue = append(queue, e.to)
			}
		}
	}
	return nil
}

// buildCallGraph walks every function declaration of the program and
// records its statically resolvable callees.
func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{
		edges: map[*types.Func][]callEdge{},
		decls: map[*types.Func]*ast.FuncDecl{},
		pkgOf: map[*types.Func]*Package{},
	}
	cha := newCHAIndex(pass)
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.decls[fn] = fd
				g.pkgOf[fn] = pkg
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if _, ok := pkg.directiveAt(pass.Fset, call.Pos(), "serialok"); ok {
						return true
					}
					for _, callee := range resolveCallees(pkg.Info, call, cha) {
						g.edges[fn] = append(g.edges[fn], callEdge{to: callee, pos: call.Pos()})
					}
					return true
				})
			}
		}
	}
	return g
}

// resolveCallees returns the possible static callees of a call expression:
// the exact function for direct and concrete-method calls, or the CHA
// expansion for interface-method calls.
func resolveCallees(info *types.Info, call *ast.CallExpr, cha *chaIndex) []*types.Func {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			fn, ok := s.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(s.Recv().Underlying()) {
				return cha.implementations(s.Recv(), fn)
			}
			return []*types.Func{fn}
		}
	}
	if fn := funcObj(info, call); fn != nil {
		return []*types.Func{fn}
	}
	return nil
}

// chaIndex supports class-hierarchy analysis: for an interface method call,
// the possible callees are that method on every program type implementing
// the interface.
type chaIndex struct {
	named []*types.Named
	memo  map[chaKey][]*types.Func
}

type chaKey struct {
	iface  *types.Interface
	method string
}

func newCHAIndex(pass *Pass) *chaIndex {
	idx := &chaIndex{memo: map[chaKey][]*types.Func{}}
	for _, pkg := range pass.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok && !types.IsInterface(named.Underlying()) {
				idx.named = append(idx.named, named)
			}
		}
	}
	sort.Slice(idx.named, func(i, j int) bool { return idx.named[i].Obj().Pos() < idx.named[j].Obj().Pos() })
	return idx
}

func (idx *chaIndex) implementations(recv types.Type, method *types.Func) []*types.Func {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return []*types.Func{method}
	}
	key := chaKey{iface: iface, method: method.Name()}
	if fns, ok := idx.memo[key]; ok {
		return fns
	}
	var fns []*types.Func
	for _, named := range idx.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, method.Pkg(), method.Name())
		if fn, ok := obj.(*types.Func); ok {
			fns = append(fns, fn)
		}
	}
	idx.memo[key] = fns
	return fns
}
