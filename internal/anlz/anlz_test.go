package anlz_test

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"govisor/internal/anlz"
)

// The analyzer suites follow the analysistest convention: testdata trees
// under testdata/src/<analyzer>/ carry `// want "regex"` comments on every
// line expected to produce a diagnostic; lines without a want comment must
// stay silent. Each tree contains at least one positive (flagging) case,
// one negative case, and one directive-suppression case per analyzer.

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantKey struct {
	file string
	line int
}

// collectWants scans the loaded tree's comments for `// want "..."` marks.
func collectWants(t *testing.T, prog *anlz.Program) map[wantKey][]string {
	t.Helper()
	wants := map[wantKey][]string{}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					key := wantKey{file: pos.Filename, line: pos.Line}
					for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
						wants[key] = append(wants[key], m[1])
					}
					if len(wants[key]) == 0 {
						t.Errorf("%s: want comment with no quoted pattern: %s", pos, c.Text)
					}
				}
			}
		}
	}
	return wants
}

// runTree loads testdata/src/<dir> under modpath and checks analyzer
// diagnostics against the tree's want comments.
func runTree(t *testing.T, a *anlz.Analyzer, dir, modpath string) {
	t.Helper()
	prog, err := anlz.LoadTree(filepath.Join("testdata", "src", dir), modpath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := prog.Run(a)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(t, prog)
	if len(wants) == 0 {
		t.Fatalf("%s: testdata tree has no want comments; the positive cases are missing", dir)
	}

	matched := map[wantKey][]bool{}
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		key := wantKey{file: pos.Filename, line: pos.Line}
		pats, ok := wants[key]
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		if matched[key] == nil {
			matched[key] = make([]bool, len(pats))
		}
		found := false
		for i, pat := range pats {
			if matched[key][i] {
				continue
			}
			ok, err := regexp.MatchString(pat, d.Message)
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
			}
			if ok {
				matched[key][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: diagnostic matches no want pattern: %s", pos, d.Message)
		}
	}
	for key, pats := range wants {
		for i, pat := range pats {
			if matched[key] == nil || !matched[key][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, pat)
			}
		}
	}
}

func TestAtomicField(t *testing.T) {
	runTree(t, anlz.AtomicField, "atomicfield", "aftest")
}

func TestSerialOnly(t *testing.T) {
	runTree(t, anlz.SerialOnly, "serialonly", "sotest")
}

func TestPairParity(t *testing.T) {
	runTree(t, anlz.PairParity, "pairparity", "pptest")
}

func TestDetOrder(t *testing.T) {
	runTree(t, anlz.DetOrder, "detorder", "govisor")
}

func TestCounterDiscipline(t *testing.T) {
	runTree(t, anlz.CounterDiscipline, "counterdiscipline", "cdtest")
}

// TestGovisorcheckCleanOnRepo is the acceptance gate: the full suite must
// exit clean on the real module, directives included. A regression here is
// exactly what CI's `go run ./cmd/govisorcheck ./...` step would catch.
func TestGovisorcheckCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := anlz.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := prog.Run(anlz.All()...)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

// TestDirectivesCarryReasons enforces the vocabulary contract: every
// suppressing directive in the real tree must include a written reason.
func TestDirectivesCarryReasons(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := anlz.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	needReason := map[string]bool{
		"nonatomic":  true,
		"serialonly": true,
		"serialok":   true,
		"nondet":     true,
		"hostclock":  true,
		"counterok":  true,
	}
	// Anchored at comment start, like the directive parser: prose that
	// merely mentions a directive is not a directive.
	re := regexp.MustCompile(`^govisor:([a-z]+)(.*)`)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					m := re.FindStringSubmatch(text)
					if m == nil || !needReason[m[1]] {
						continue
					}
					arg := strings.TrimSpace(m[2])
					if !strings.HasPrefix(arg, "(") || len(strings.Trim(arg, "() ")) == 0 {
						t.Errorf("%s: directive //govisor:%s needs a (reason)",
							prog.Fset.Position(c.Pos()), m[1])
					}
				}
			}
		}
	}
}

// TestAnalyzerMetadata pins the suite roster so a dropped analyzer fails
// loudly rather than silently thinning CI.
func TestAnalyzerMetadata(t *testing.T) {
	want := []string{"atomicfield", "serialonly", "pairparity", "detorder", "counterdiscipline"}
	all := anlz.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("%s: missing Doc or Run", a.Name)
		}
	}
}

// TestLoadTreeShape sanity-checks the testdata loader itself: package
// naming, in-tree import resolution and comment retention, which every
// suite above depends on.
func TestLoadTreeShape(t *testing.T) {
	prog, err := anlz.LoadTree(filepath.Join("testdata", "src", "counterdiscipline"), "cdtest")
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	byPath := map[string]bool{}
	comments := 0
	for _, pkg := range prog.Pkgs {
		byPath[pkg.Path] = true
		for _, f := range pkg.Files {
			comments += len(f.Comments)
			ast.Inspect(f, func(n ast.Node) bool { return true })
		}
	}
	for _, p := range []string{"cdtest/owner", "cdtest/use"} {
		if !byPath[p] {
			t.Errorf("missing package %s (have %v)", p, byPath)
		}
	}
	if comments == 0 {
		t.Error("comments were not retained by the loader")
	}
}
