package anlz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Program is a fully loaded and type-checked set of packages — the unit the
// analyzers run over. Only the target packages appear in Pkgs; their
// out-of-module dependencies (the standard library) are type-checked through
// the shared source importer but not analyzed.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// The source importer type-checks standard-library dependencies from
// $GOROOT/src. It is shared process-wide (its internal cache makes repeat
// loads cheap) and serialized by srcMu: the importer is not safe for
// concurrent use.
var (
	srcMu   sync.Mutex
	srcImp  types.Importer
	srcOnce sync.Once
)

func sourceImport(path string) (*types.Package, error) {
	srcMu.Lock()
	defer srcMu.Unlock()
	srcOnce.Do(func() {
		// The importer gets its own FileSet: positions inside dependency
		// packages never surface in diagnostics.
		srcImp = importer.ForCompiler(token.NewFileSet(), "source", nil)
	})
	return srcImp.Import(path)
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
}

// goList runs `go list -json patterns...` in dir.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// loader type-checks a set of source directories with a closed import
// universe: target packages resolve against each other, everything else
// resolves through the shared source importer.
type loader struct {
	fset    *token.FileSet
	sources map[string]*listedPkg // import path → files on disk
	done    map[string]*Package
	loading map[string]bool
	err     error
}

func (l *loader) Import(path string) (*types.Package, error) {
	if src, ok := l.sources[path]; ok {
		pkg, err := l.load(src)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return sourceImport(path)
}

func (l *loader) load(src *listedPkg) (*Package, error) {
	if pkg, ok := l.done[src.ImportPath]; ok {
		return pkg, nil
	}
	if l.loading[src.ImportPath] {
		return nil, fmt.Errorf("import cycle through %s", src.ImportPath)
	}
	l.loading[src.ImportPath] = true
	defer delete(l.loading, src.ImportPath)

	var files []*ast.File
	for _, name := range src.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(src.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tp, err := conf.Check(src.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", src.ImportPath, err)
	}
	name := src.Name
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	pkg := &Package{
		Path:  src.ImportPath,
		Name:  name,
		Files: files,
		Types: tp,
		Info:  info,
	}
	for _, f := range files {
		pkg.directives = append(pkg.directives, parseDirectives(l.fset, f)...)
	}
	l.done[src.ImportPath] = pkg
	return pkg, nil
}

func (l *loader) program(order []*listedPkg) (*Program, error) {
	prog := &Program{Fset: l.fset}
	for _, src := range order {
		pkg, err := l.load(src)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// Load type-checks the packages matched by the go list patterns (relative to
// dir) and returns them as a Program. Test files are excluded: the analyzers
// enforce invariants on the shipped code; tests may legitimately poke
// internal state.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:    token.NewFileSet(),
		sources: map[string]*listedPkg{},
		done:    map[string]*Package{},
		loading: map[string]bool{},
	}
	for _, p := range listed {
		l.sources[p.ImportPath] = p
	}
	return l.program(listed)
}

// LoadTree loads a self-contained source tree (the analyzers' testdata):
// every directory under root holding .go files becomes one package whose
// import path is modpath joined with the directory's relative path (root
// itself maps to modpath). Imports with the modpath prefix resolve within
// the tree; everything else resolves through the source importer.
func LoadTree(root, modpath string) (*Program, error) {
	l := &loader{
		fset:    token.NewFileSet(),
		sources: map[string]*listedPkg{},
		done:    map[string]*Package{},
		loading: map[string]bool{},
	}
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil || !fi.IsDir() {
			return err
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		var goFiles []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				goFiles = append(goFiles, e.Name())
			}
		}
		if len(goFiles) == 0 {
			return nil
		}
		sort.Strings(goFiles)
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ip := modpath
		if rel != "." {
			ip = modpath + "/" + filepath.ToSlash(rel)
		}
		name := filepath.Base(path)
		if rel == "." {
			name = filepath.Base(modpath)
		}
		l.sources[ip] = &listedPkg{ImportPath: ip, Dir: path, Name: name, GoFiles: goFiles}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var order []*listedPkg
	for _, src := range l.sources {
		order = append(order, src)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].ImportPath < order[j].ImportPath })
	return l.program(order)
}
