// Package owner holds the counters; only it (or an explicit stat method)
// may bump them.
package owner

type Stats struct {
	Exits  uint64
	Merges uint64
	label  string
}

// Negative: the owning package bumps its own counters freely.
func (s *Stats) NoteExit() { s.Exits++ }

// AddMerges is the sanctioned cross-package mutation path.
func (s *Stats) AddMerges(n uint64) { s.Merges += n }

// Label is here so the struct has non-counter state too.
func (s *Stats) Label() string { return s.label }
