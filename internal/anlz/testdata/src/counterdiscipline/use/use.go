package use

import "cdtest/owner"

// Positive: a foreign package read-modify-writes the owner's counter.
func Bad(s *owner.Stats) {
	s.Exits++ // want "owned by package owner"
}

// Positive: compound assignment is the same violation.
func BadAdd(s *owner.Stats, n uint64) {
	s.Exits += n // want "owned by package owner"
}

// Negative: the sanctioned path routes through the owner's method.
func Ok(s *owner.Stats, n uint64) {
	s.AddMerges(n)
}

// Negative: wholesale assignment is state restoration, not accounting.
func OkRestore(s *owner.Stats, snapshot uint64) {
	s.Exits = snapshot
}

// Negative: an explicit //govisor:counterok suppression.
func OkSuppressed(s *owner.Stats) {
	//govisor:counterok(replay path; reconstructing the owner's history verbatim)
	s.Exits++
}
