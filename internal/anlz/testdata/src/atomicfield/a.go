package aftest

import "sync/atomic"

type S struct {
	n     uint64
	noted uint64 //govisor:nonatomic(owner goroutine only; atomic use below is belt-and-braces)
	elems []uint64
	plain uint64
}

// Atomic uses establish the discipline.
func (s *S) bump()              { atomic.AddUint64(&s.n, 1) }
func (s *S) bumpNoted()         { atomic.AddUint64(&s.noted, 1) }
func (s *S) bumpElem(i int)     { atomic.AddUint64(&s.elems[i], 1) }
func (s *S) loadAtomic() uint64 { return atomic.LoadUint64(&s.n) }

// Positive: plain read of a direct-atomic field.
func (s *S) badRead() uint64 { return s.n } // want "accessed atomically"

// Positive: plain write of a direct-atomic field.
func (s *S) badWrite() { s.n = 0 } // want "accessed atomically"

// Negative: field-level //govisor:nonatomic suppresses everywhere.
func (s *S) okNoted() uint64 { return s.noted }

// Negative: access-line suppression for pre-publication init.
func newS() *S {
	s := &S{}
	//govisor:nonatomic(not yet published; no concurrent observer exists)
	s.n = 0
	return s
}

// Negative: untracked fields are never flagged.
func (s *S) okPlain() uint64 { return s.plain }

// Element-granular atomics: slice-header operations stay legal...
func (s *S) okHeader() int {
	s.elems = make([]uint64, 8)
	return len(s.elems)
}

// ...but plain element access is flagged.
func (s *S) badElem(i int) uint64 { return s.elems[i] } // want "accessed atomically"

// Positive: ranging with a value variable reads elements directly.
func (s *S) badRange() uint64 {
	var total uint64
	for _, v := range s.elems { // want "reads its elements directly"
		total += v
	}
	return total
}

// Negative: index-only range never touches element values.
func (s *S) okIndexRange() int {
	count := 0
	for range s.elems {
		count++
	}
	return count
}
