// Package hosttool is host-side only (not under internal/), so the
// determinism rules do not apply: these are all negative cases.
package hosttool

import (
	"math/rand"
	"time"
)

func Stamp() int64 { return time.Now().UnixNano() }

func Jitter() uint64 { return rand.Uint64() }

func Spread(m map[string]int, sink func(string, int)) {
	for k, v := range m {
		sink(k, v)
	}
}
