package dtest

import (
	"math/rand"
	"sort"
	"time"
)

type T struct {
	m   map[uint64]uint64
	rng *rand.Rand
}

// Positive: wall clock in a guest-visible package.
func (t *T) badClock() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

// Negative: //govisor:hostclock allowlists host-side telemetry.
func (t *T) okClock() int64 {
	//govisor:hostclock(debug telemetry; value never reaches guest state)
	return time.Now().UnixNano()
}

// Positive: the global math/rand source is randomly seeded.
func (t *T) badRand() uint64 {
	return rand.Uint64() // want "math/rand"
}

// Negative: an explicit *rand.Rand carries its seed; determinism is the
// constructor's contract.
func (t *T) okRand() uint64 {
	return t.rng.Uint64()
}

// Negative: constructing a seeded source is the deterministic idiom.
func newT(seed int64) *T {
	return &T{m: map[uint64]uint64{}, rng: rand.New(rand.NewSource(seed))}
}

// Positive: a min-fold writes a variable that outlives the loop; the
// analyzer cannot see the fold is order-insensitive.
func (t *T) badFold() uint64 {
	best := uint64(0)
	for _, v := range t.m { // want "map iteration order is nondeterministic"
		if v > best {
			best = v
		}
	}
	return best
}

// Negative: the same fold under an explicit order-insensitivity claim.
func (t *T) okFoldSuppressed() uint64 {
	best := uint64(0)
	//govisor:nondet(pure max fold; result independent of iteration order)
	for _, v := range t.m {
		if v > best {
			best = v
		}
	}
	return best
}

// Negative: commutative accumulation is order-insensitive.
func (t *T) okSum() uint64 {
	var sum uint64
	for _, v := range t.m {
		sum += v
	}
	return sum
}

// Negative: collect-then-sort restores a deterministic order.
func (t *T) okSortedKeys() []uint64 {
	var keys []uint64
	for k := range t.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Positive: collected keys escape without the sort.
func (t *T) badKeys() []uint64 {
	var keys []uint64
	for k := range t.m { // want "without sorting"
		keys = append(keys, k)
	}
	return keys
}

// Negative: writes indexed by the range key commute.
func (t *T) okCopy(dst map[uint64]uint64) {
	for k, v := range t.m {
		dst[k] = v
	}
}

// Negative: deleting from the ranged map is explicitly specified and
// order-free.
func (t *T) okPrune() {
	for k := range t.m {
		if k%2 == 0 {
			delete(t.m, k)
		}
	}
}

// Positive: calling out with the range element leaks iteration order.
func (t *T) badCallOut(sink func(uint64)) {
	for k := range t.m { // want "map iteration order is nondeterministic"
		sink(k)
	}
}
