package sotest

var counter uint64

// Flush stands in for a cross-VM barrier service.
//
//govisor:serialonly(delivers into every VM; barrier-only)
func Flush() { counter++ }

//govisor:serialonly(steals frames across VMs)
func Reclaim() { counter++ }

// helper gives the positive case a multi-hop path: Step → helper → Flush.
func helper() {
	Flush() // want "reachable from worker root"
}

// Positive: a worker root reaching a serialonly function transitively.
//
//govisor:worker
func Step() {
	helper()
}

// Negative: serial orchestration outside worker context may call freely.
func Barrier() {
	Flush()
	Reclaim()
}

// Negative: a call-site //govisor:serialok edge suppression.
//
//govisor:worker
func StepSuppressed() {
	//govisor:serialok(only reached when this VM holds the barrier token)
	Reclaim()
}

// Interface dispatch: class-hierarchy analysis must see through Dev.
type Dev interface{ Tick() }

type dev struct{}

//govisor:serialonly(walks all VMs' device state)
func (dev) Tick() { counter++ }

// Positive: worker → interface method call → serialonly implementation.
//
//govisor:worker
func StepDev(d Dev) {
	d.Tick() // want "reachable from worker root"
}

// Negative: function-value calls are opaque by design (hook contracts are
// documented, not annotated).
//
//govisor:worker
func StepHook(hook func()) {
	hook()
}
