package pptest

import "sync/atomic"

type C struct {
	Cycles  uint64
	Instret uint64
	misses  uint64
	scratch []byte
}

// Negative: arms mutate the same integer fields (order and idiom differ).
//
//govisor:pair slowAdd
func (c *C) fastAdd() {
	c.Instret++
	c.Cycles += 2
}

func (c *C) slowAdd() {
	c.Cycles++
	c.Instret += 1
}

// Positive: the fast path forgot the Instret bump the reference arm has.
//
//govisor:pair slowDrift
func (c *C) fastDrift() { // want "does not mutate"
	c.Cycles++
}

func (c *C) slowDrift() {
	c.Cycles++
	c.Instret++
}

// Positive: the fast path grew a bump the reference arm lacks.
//
//govisor:pair slowExtra
func (c *C) fastExtra() { // want "reference arm slowExtra does not"
	c.Cycles++
	c.Instret++
}

func (c *C) slowExtra() {
	c.Instret++
}

// Negative: write-sets are transitive through same-package helpers.
//
//govisor:pair slowVia
func (c *C) fastVia() {
	c.bumpCycles()
}

func (c *C) bumpCycles() { c.Cycles++ }

func (c *C) slowVia() { c.Cycles++ }

// Negative: non-integer fields are outside the counter contract.
//
//govisor:pair slowBuf
func (c *C) fastBuf() {
	c.Cycles++
	c.scratch = append(c.scratch, 0)
}

func (c *C) slowBuf() { c.Cycles++ }

// Negative: the snapshot-replay shape (ChainFetch/ReplayFetch) — the fast
// arm's bumps sit behind early-return validation checks, but the write-set
// is flow-insensitive, so parity with the unconditional reference holds.
//
//govisor:pair slowReplay
func (c *C) fastReplay(ok bool) bool {
	if !ok {
		return false
	}
	c.Cycles++
	c.Instret++
	return true
}

func (c *C) slowReplay() {
	c.Instret++
	c.Cycles++
}

// Positive: a guarded replay arm whose failure path stamps telemetry the
// reference arm lacks — counters must be bumped at the call site instead.
//
//govisor:pair slowGuarded
func (c *C) fastGuarded(ok bool) bool { // want "reference arm slowGuarded does not"
	if !ok {
		c.misses++
		return false
	}
	c.Cycles++
	return true
}

func (c *C) slowGuarded() { c.Cycles++ }

// Positive: a dangling pair reference is itself a finding.
//
//govisor:pair vanished
func (c *C) orphan() { // want "not found"
	c.Cycles++
}

// Negative: an atomic Load is an observation, not a mutation — a fast path
// validating against an epoch counter its reference arm never touches has
// not drifted.
//
//govisor:pair slowEpochRef
func (c *C) fastEpochProbe() {
	if atomic.LoadUint64(&c.Instret) == 0 {
		return
	}
	c.Cycles++
}

func (c *C) slowEpochRef() { c.Cycles++ }

// Positive: mutating atomics still count — an atomic Add the reference arm
// lacks is drift like any other bump.
//
//govisor:pair slowAtomicAdd
func (c *C) fastAtomicAdd() { // want "reference arm slowAtomicAdd does not"
	atomic.AddUint64(&c.misses, 1)
	c.Cycles++
}

func (c *C) slowAtomicAdd() { c.Cycles++ }
