package virtio

import (
	"govisor/internal/mem"
)

// Device IDs, matching the virtio specification.
const (
	IDNet     = 1
	IDBlock   = 2
	IDConsole = 3
	IDBalloon = 5
)

// MMIO register offsets (virtio-mmio flavoured; 64-bit ring addresses are
// written as single doublewords rather than lo/hi pairs).
const (
	RegMagic      = 0x00 // RO: 0x74726976 "virt"
	RegDeviceID   = 0x08 // RO
	RegQueueSel   = 0x30 // WO: selects the queue the Queue* regs address
	RegQueueMax   = 0x34 // RO: max ring size
	RegQueueNum   = 0x38 // WO: ring size
	RegQueueDesc  = 0x40 // WO: descriptor table gpa
	RegQueueAvail = 0x48 // WO: available ring gpa
	RegQueueUsed  = 0x50 // WO: used ring gpa
	RegQueueReady = 0x58 // WO: 1 arms the selected queue
	RegNotify     = 0x60 // WO: doorbell; value = queue index
	RegIntStatus  = 0x68 // RO: bit0 = used-ring update
	RegIntAck     = 0x70 // WO: acknowledge interrupt bits
	RegStatus     = 0x78 // RW: driver status
	RegConfig     = 0x80 // device-specific config space
)

// Magic is the value of RegMagic.
const Magic = 0x74726976

// MaxQueueSize bounds ring sizes.
const MaxQueueSize = 1024

// Backend is the device-specific behaviour behind the common MMIO plumbing.
type Backend interface {
	// DeviceID returns the virtio device type.
	DeviceID() uint32
	// NumQueues returns how many virtqueues the device exposes.
	NumQueues() int
	// Process drains one queue after a guest kick.
	Process(q *Queue, qi int)
	// ReadConfig reads device-specific configuration space.
	ReadConfig(off uint64, size int) uint64
}

// IRQRaiser abstracts the interrupt controller line of a device.
type IRQRaiser func()

// MMIODev is the common virtio-mmio transport wrapping a Backend. It
// implements dev.Device structurally (Name/MMIORead/MMIOWrite) without
// importing the dev package.
type MMIODev struct {
	name    string
	backend Backend
	g       *mem.GuestPhys
	raise   IRQRaiser

	queues    []Queue
	sel       uint32
	num       uint16
	desc      uint64
	avail     uint64
	used      uint64
	intStatus uint64
	status    uint64

	// Stats.
	Notifies uint64
	IRQs     uint64
}

// NewMMIODev wires a backend to guest memory and an IRQ line.
func NewMMIODev(name string, backend Backend, g *mem.GuestPhys, raise IRQRaiser) *MMIODev {
	return &MMIODev{
		name:    name,
		backend: backend,
		g:       g,
		raise:   raise,
		queues:  make([]Queue, backend.NumQueues()),
	}
}

// Name implements the device interface.
func (d *MMIODev) Name() string { return d.name }

// Queue exposes queue qi (device models and tests).
func (d *MMIODev) Queue(qi int) *Queue {
	if qi < 0 || qi >= len(d.queues) {
		return nil
	}
	return &d.queues[qi]
}

// InterruptPending reports unacknowledged interrupt bits.
func (d *MMIODev) InterruptPending() bool { return d.intStatus != 0 }

// SignalUsed marks a used-ring update and raises the device IRQ; device
// models call it after pushing completions.
func (d *MMIODev) SignalUsed() {
	d.intStatus |= 1
	d.IRQs++
	if d.raise != nil {
		d.raise()
	}
}

// MMIORead implements the device interface.
func (d *MMIODev) MMIORead(off uint64, size int) uint64 {
	switch off {
	case RegMagic:
		return Magic
	case RegDeviceID:
		return uint64(d.backend.DeviceID())
	case RegQueueMax:
		return MaxQueueSize
	case RegIntStatus:
		return d.intStatus
	case RegStatus:
		return d.status
	}
	if off >= RegConfig {
		return d.backend.ReadConfig(off-RegConfig, size)
	}
	return 0
}

// MMIOWrite implements the device interface.
func (d *MMIODev) MMIOWrite(off uint64, size int, v uint64) {
	switch off {
	case RegQueueSel:
		d.sel = uint32(v)
	case RegQueueNum:
		if v > MaxQueueSize {
			v = MaxQueueSize
		}
		d.num = uint16(v)
	case RegQueueDesc:
		d.desc = v
	case RegQueueAvail:
		d.avail = v
	case RegQueueUsed:
		d.used = v
	case RegQueueReady:
		if v == 1 && int(d.sel) < len(d.queues) {
			// Configuration errors leave the queue unarmed; the guest
			// observes a dead device rather than a crashed VMM.
			_ = d.queues[d.sel].Configure(d.g, d.num, d.desc, d.avail, d.used)
		}
	case RegNotify:
		qi := int(v)
		if qi < len(d.queues) && d.queues[qi].Ready() {
			d.Notifies++
			q := &d.queues[qi]
			q.Kicks++
			before := q.usedIdx
			d.backend.Process(q, qi)
			// Completions the backend did not signal — malformed chains
			// finished inside Pop on a kick whose every chain was bad —
			// must still interrupt the guest, or a driver sleeping on the
			// used ring hangs forever. Idempotent when the bit is already
			// pending.
			if q.usedIdx != before && d.intStatus&1 == 0 {
				d.SignalUsed()
			}
		}
	case RegIntAck:
		d.intStatus &^= v
	case RegStatus:
		d.status = v
	}
}

// SetupQueue is a host-side convenience used by tests and the Go driver: it
// lays the rings out at base and arms queue qi, returning the first free
// address past the rings.
func (d *MMIODev) SetupQueue(qi int, base uint64, num uint16) (uint64, error) {
	desc, avail, used, end := Layout(base, num)
	d.MMIOWrite(RegQueueSel, 4, uint64(qi))
	d.MMIOWrite(RegQueueNum, 4, uint64(num))
	d.MMIOWrite(RegQueueDesc, 8, desc)
	d.MMIOWrite(RegQueueAvail, 8, avail)
	d.MMIOWrite(RegQueueUsed, 8, used)
	d.MMIOWrite(RegQueueReady, 4, 1)
	if !d.queues[qi].Ready() {
		return 0, errQueueConfig
	}
	return end, nil
}

var errQueueConfig = errConfigType{}

type errConfigType struct{}

func (errConfigType) Error() string { return "virtio: queue configuration rejected" }
