// Malformed-ring robustness suite: the device side of every queue must
// survive a corrupt or malicious guest — scribbled producer indices,
// descriptor loops, faulting buffer addresses, zero-length and
// wrongly-directed descriptors — without panicking, without trusting guest
// memory for device-owned state, and without leaking descriptors.
package virtio

import (
	"testing"

	"govisor/internal/isa"
	"govisor/internal/mem"
)

// qSetup arms a bare queue at a fixed layout and returns it with its rings'
// addresses.
func qSetup(t *testing.T, g *mem.GuestPhys, num uint16) (*Queue, uint64, uint64, uint64) {
	t.Helper()
	desc, avail, used, _ := Layout(0x1000, num)
	q := &Queue{}
	if err := q.Configure(g, num, desc, avail, used); err != nil {
		t.Fatal(err)
	}
	return q, desc, avail, used
}

// postChain publishes head on the avail ring (slot = current index).
func postChain(g *mem.GuestPhys, avail uint64, idx *uint16, head uint16, num uint16) {
	g.WriteUintPriv(avail+4+2*uint64(*idx%num), 2, uint64(head))
	*idx++
	g.WriteUintPriv(avail+2, 2, uint64(*idx))
}

// writeDesc writes one descriptor table entry.
func writeDesc(g *mem.GuestPhys, desc uint64, i uint16, addr uint64, length uint32, flags, next uint16) {
	d := desc + uint64(i)*descSize
	g.WriteUintPriv(d, 8, addr)
	g.WriteUintPriv(d+8, 4, uint64(length))
	g.WriteUintPriv(d+12, 2, uint64(flags))
	g.WriteUintPriv(d+14, 2, uint64(next))
}

// TestUsedIdxCorruptionIgnored is the regression test for the Push read-back
// bug: the used-ring producer index is device-owned, so a guest scribbling
// used.idx mid-stream must not redirect later completions. Before the fix
// the device re-read the index on every Push, so the corruption below sent
// the second completion to slot 0xEE%num and published idx 0xEF.
func TestUsedIdxCorruptionIgnored(t *testing.T) {
	g := newGuest(t, 64)
	q, desc, avail, used := qSetup(t, g, 8)
	var availIdx uint16
	writeDesc(g, desc, 0, 0x8000, 16, 0, 0)
	writeDesc(g, desc, 1, 0x8100, 16, 0, 0)
	postChain(g, avail, &availIdx, 0, 8)

	if ch, ok := q.Pop(); !ok {
		t.Fatal("pop 1")
	} else {
		q.Push(ch.Head, 0)
	}
	// Guest corrupts the producer index between completions.
	g.WriteUintPriv(used+2, 2, 0xEE)

	postChain(g, avail, &availIdx, 1, 8)
	if ch, ok := q.Pop(); !ok {
		t.Fatal("pop 2")
	} else {
		q.Push(ch.Head, 0)
	}
	if got := q.UsedIdx(); got != 2 {
		t.Fatalf("used idx = %d, want 2 (device must own the index)", got)
	}
	// The second completion sits in slot 1, where an uncorrupted stream
	// would put it.
	h, _ := g.ReadUint(used+4+8*1, 4)
	if uint16(h) != 1 {
		t.Fatalf("slot 1 head = %d, want 1", h)
	}
}

// TestUsedIdxFaultingRingNoSlotStomp: if the used ring sits on faulting
// memory the index read-back used to return 0 forever, stomping slot 0 with
// every completion. The shadow index keeps completions sequenced even though
// the writes themselves fault harmlessly.
func TestUsedIdxFaultingRingNoSlotStomp(t *testing.T) {
	g := newGuest(t, 64)
	q := &Queue{}
	desc, avail, _, _ := Layout(0x1000, 8)
	// Used ring beyond RAM: every device write to it faults (and is
	// discarded); the shadow must still advance.
	if err := q.Configure(g, 8, desc, avail, g.Size()+0x1000); err != nil {
		t.Fatal(err)
	}
	var availIdx uint16
	writeDesc(g, desc, 0, 0x8000, 16, 0, 0)
	writeDesc(g, desc, 1, 0x8100, 16, 0, 0)
	postChain(g, avail, &availIdx, 0, 8)
	postChain(g, avail, &availIdx, 1, 8)
	for i := 0; i < 2; i++ {
		ch, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d", i)
		}
		q.Push(ch.Head, 0)
	}
	if q.usedIdx != 2 {
		t.Fatalf("shadow used idx = %d, want 2", q.usedIdx)
	}
}

// TestTxFaultDropsFrame is the regression test for the processTX bug: a TX
// descriptor aimed beyond RAM used to transmit the zero-filled remainder of
// the frame. The frame must be dropped (counted in TxDropped), nothing may
// reach the link, and the chain still completes so the ring stays live.
func TestTxFaultDropsFrame(t *testing.T) {
	g := newGuest(t, 64)
	var sent [][]byte
	link := &pipeLink{}
	peer := &pipeLink{}
	link.peer, peer.peer = peer, link
	peer.rx = func(f []byte) { sent = append(sent, f) }

	n := NewNet(link)
	d := NewMMIODev("vnet", n, g, nil)
	n.Bind(d)
	drv, buf, err := NewDriver(g, d, NetTXQueue, 0x10000, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Faulting frame: descriptor points past the end of RAM.
	if _, err := drv.Submit([]DescBuf{{Addr: g.Size() + 0x1000, Len: NetHeaderSize + 64}}); err != nil {
		t.Fatal(err)
	}
	drv.Kick()
	if len(sent) != 0 {
		t.Fatalf("faulting frame reached the link: %d", len(sent))
	}
	if n.TxDropped != 1 || n.TxFrames != 0 {
		t.Fatalf("dropped=%d tx=%d, want 1/0", n.TxDropped, n.TxFrames)
	}
	if _, _, ok := drv.PollUsed(); !ok {
		t.Fatal("dropped frame must still complete its chain")
	}
	// The ring is live: a good frame right after goes through.
	payload := make([]byte, NetHeaderSize+32)
	for i := range payload[NetHeaderSize:] {
		payload[NetHeaderSize+i] = byte(i)
	}
	g.Write(buf, payload)
	if _, err := drv.Submit([]DescBuf{{Addr: buf, Len: uint32(len(payload))}}); err != nil {
		t.Fatal(err)
	}
	drv.Kick()
	if n.TxFrames != 1 || len(sent) != 1 {
		t.Fatalf("follow-up frame lost: tx=%d sent=%d", n.TxFrames, len(sent))
	}
}

// TestTxOversizedChainDropped: a chain advertising a multi-gigabyte total
// must not size a host allocation; it drops and completes.
func TestTxOversizedChainDropped(t *testing.T) {
	g := newGuest(t, 64)
	n := NewNet(nil)
	d := NewMMIODev("vnet", n, g, nil)
	n.Bind(d)
	drv, _, err := NewDriver(g, d, NetTXQueue, 0x10000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drv.Submit([]DescBuf{{Addr: 0x8000, Len: 0xF000_0000}}); err != nil {
		t.Fatal(err)
	}
	drv.Kick()
	if n.TxDropped != 1 {
		t.Fatalf("TxDropped = %d", n.TxDropped)
	}
	if _, _, ok := drv.PollUsed(); !ok {
		t.Fatal("oversized chain must still complete")
	}
}

// TestMalformedChainsDontWedgeRing is the regression test for the Pop leak:
// malformed chains used to consume the available entry without ever pushing
// to the used ring, so a guest emitting them leaked descriptors until the
// ring wedged. Far more chains than the ring holds must flow through — each
// completing with written=0 — and a well-formed chain afterwards still works.
func TestMalformedChainsDontWedgeRing(t *testing.T) {
	g := newGuest(t, 64)
	q, desc, avail, _ := qSetup(t, g, 4)
	var availIdx uint16
	// Descriptor 2 chains to itself forever.
	writeDesc(g, desc, 2, 0x8000, 16, DescNext, 2)
	// 3 ring-sizes' worth of cyclic chains: with the leak, the 5th pop
	// would already have wedged (4 in flight, none completed).
	for i := 0; i < 12; i++ {
		postChain(g, avail, &availIdx, 2, 4)
		if _, ok := q.Pop(); ok {
			t.Fatalf("chain %d: cyclic chain popped as well-formed", i)
		}
	}
	if q.Malformed != 12 {
		t.Fatalf("Malformed = %d, want 12", q.Malformed)
	}
	if q.UsedIdx() != 12 {
		t.Fatalf("used idx = %d, want 12 (ring wedged)", q.UsedIdx())
	}
	// Ring still live for a well-formed chain.
	writeDesc(g, desc, 0, 0x9000, 32, 0, 0)
	postChain(g, avail, &availIdx, 0, 4)
	ch, ok := q.Pop()
	if !ok || ch.Head != 0 || len(ch.Buf) != 1 {
		t.Fatalf("well-formed chain after malformed storm: ok=%v head=%d", ok, ch.Head)
	}
	if q.Chains != 1 {
		t.Fatalf("Chains = %d, want 1", q.Chains)
	}
}

// TestChainLengthOffByOne: a chain may use each of the ring's num
// descriptors exactly once. Before the fix the walk admitted num+1 hops, so
// a full-length chain was indistinguishable from a cycle's first lap.
func TestChainLengthOffByOne(t *testing.T) {
	g := newGuest(t, 64)
	q, desc, avail, _ := qSetup(t, g, 4)
	var availIdx uint16
	// A well-formed maximal chain: 0→1→2→3.
	for i := uint16(0); i < 4; i++ {
		flags := uint16(0)
		if i < 3 {
			flags = DescNext
		}
		writeDesc(g, desc, i, 0x8000+uint64(i)*0x100, 16, flags, i+1)
	}
	postChain(g, avail, &availIdx, 0, 4)
	ch, ok := q.Pop()
	if !ok || len(ch.Buf) != 4 {
		t.Fatalf("maximal chain rejected: ok=%v len=%d", ok, len(ch.Buf))
	}
	// Now loop descriptor 3 back to 0: 5 hops means a revisit, and the old
	// `hops <= num` walk would have accepted num+1 buffers.
	writeDesc(g, desc, 3, 0x8300, 16, DescNext, 0)
	postChain(g, avail, &availIdx, 0, 4)
	if _, ok := q.Pop(); ok {
		t.Fatal("num+1-hop chain must be malformed")
	}
	if q.Malformed != 1 {
		t.Fatalf("Malformed = %d, want 1", q.Malformed)
	}
}

// TestCorruptAvailIdxStorm: the guest publishes a wildly wrong producer
// index. The device must chew through the phantom window — every phantom
// head resolves as a zero-descriptor chain and completes — without panic and
// without the used ring falling out of step with consumption.
func TestCorruptAvailIdxStorm(t *testing.T) {
	g := newGuest(t, 64)
	n := NewNet(nil)
	d := NewMMIODev("vnet", n, g, nil)
	n.Bind(d)
	if _, err := d.SetupQueue(NetTXQueue, 0x1000, 8); err != nil {
		t.Fatal(err)
	}
	q := d.Queue(NetTXQueue)
	// avail.idx jumps to 5000 with nothing actually posted.
	avail := q.avail
	g.WriteUintPriv(avail+2, 2, 5000)
	d.MMIOWrite(RegNotify, 4, NetTXQueue)
	if q.lastAvail != 5000 {
		t.Fatalf("consumed %d chains, want 5000", q.lastAvail)
	}
	if q.usedIdx != 5000 {
		t.Fatalf("used idx = %d, want 5000 (every consumed chain completes)", q.usedIdx)
	}
	if !d.InterruptPending() {
		t.Fatal("completions must raise the interrupt even when all chains are phantom")
	}
}

// TestZeroLengthDescriptors: zero-length descriptors are legal (if useless);
// they must complete cleanly in both directions.
func TestZeroLengthDescriptors(t *testing.T) {
	g := newGuest(t, 64)
	n := NewNet(nil)
	d := NewMMIODev("vnet", n, g, nil)
	n.Bind(d)
	drv, _, err := NewDriver(g, d, NetTXQueue, 0x10000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drv.Submit([]DescBuf{{Addr: 0x8000, Len: 0}}); err != nil {
		t.Fatal(err)
	}
	drv.Kick()
	if _, _, ok := drv.PollUsed(); !ok {
		t.Fatal("zero-length chain must complete")
	}
	if n.TxFrames != 0 || n.TxDropped != 0 {
		t.Fatalf("zero-length chain counted as traffic: tx=%d dropped=%d", n.TxFrames, n.TxDropped)
	}
}

// TestTxDeviceWritableOnlyChain: a TX chain made solely of device-writable
// descriptors carries no readable bytes; it completes without transmitting.
func TestTxDeviceWritableOnlyChain(t *testing.T) {
	g := newGuest(t, 64)
	n := NewNet(nil)
	d := NewMMIODev("vnet", n, g, nil)
	n.Bind(d)
	drv, buf, err := NewDriver(g, d, NetTXQueue, 0x10000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drv.Submit([]DescBuf{{Addr: buf, Len: 2048, Device: true}}); err != nil {
		t.Fatal(err)
	}
	drv.Kick()
	if n.TxFrames != 0 {
		t.Fatalf("device-writable-only chain transmitted: %d", n.TxFrames)
	}
	if _, _, ok := drv.PollUsed(); !ok {
		t.Fatal("chain must complete")
	}
}

// TestQueueEnsurePageArithmetic: ensure must use the machine's page
// constants. A DMA buffer spanning pages of an initially unpopulated space
// demand-populates every page it touches (lazy guest memory behaves like
// pinned DMA memory).
func TestQueueEnsurePageArithmetic(t *testing.T) {
	pool := mem.NewPool(64)
	g := mem.NewGuestPhys(pool, 16<<isa.PageShift) // nothing populated
	q, desc, avail, _ := qSetup(t, g, 8)
	_ = desc
	_ = avail
	// A device write spanning three pages, unaligned start.
	start := uint64(2<<isa.PageShift) - 100
	data := make([]byte, 2*isa.PageSize+200)
	for i := range data {
		data[i] = byte(i)
	}
	if err := q.WriteTo(DescBuf{Addr: start, Len: uint32(len(data)), Device: true}, data); err != nil {
		t.Fatal(err)
	}
	for gfn := uint64(1); gfn <= 4; gfn++ {
		if g.Frame(gfn) == mem.NoFrame {
			t.Fatalf("page %d not populated by DMA ensure", gfn)
		}
	}
	got := make([]byte, len(data))
	if f := g.Read(start, got); f != nil {
		t.Fatal(f)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d mismatch", i)
		}
	}
}
