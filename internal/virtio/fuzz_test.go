package virtio

import (
	"testing"

	"govisor/internal/isa"
	"govisor/internal/mem"
)

// FuzzVirtqueue throws arbitrary bytes at the rings of a virtio-net device
// and kicks both queues. Whatever the guest scribbles — descriptor loops,
// wild addresses, wrapped length sums, corrupt producer indices — the device
// must (a) never panic and (b) complete every chain it consumes: the number
// of available-ring entries the device took must equal the number of
// used-ring entries it produced, or descriptors leak until the ring wedges.
func FuzzVirtqueue(f *testing.F) {
	// Seed: a well-formed single-descriptor TX frame.
	good := make([]byte, 256)
	// desc[0]: addr 0x8000, len 64, flags 0, next 0.
	good[0] = 0x00
	good[1] = 0x80
	good[8] = 64
	f.Add(good, uint16(1), false)
	// Seed: a self-chaining (cyclic) descriptor.
	cyclic := make([]byte, 256)
	cyclic[0] = 0x00
	cyclic[1] = 0x80
	cyclic[8] = 16
	cyclic[12] = byte(DescNext)
	f.Add(cyclic, uint16(2), true)
	// Seed: descriptor aimed past the end of RAM.
	wild := make([]byte, 256)
	wild[6] = 0xFF // addr = 0xFF000000000000
	wild[8] = 32
	f.Add(wild, uint16(3), true)
	f.Add([]byte{}, uint16(0xFFFF), false)

	f.Fuzz(func(t *testing.T, ring []byte, availIdx uint16, withBacklog bool) {
		pages := uint64(16)
		g := mem.NewGuestPhys(mem.NewPool(pages*2), pages*isa.PageSize)
		for i := uint64(0); i < pages; i++ {
			if err := g.Populate(i); err != nil {
				t.Fatal(err)
			}
		}
		n := NewNet(nil)
		d := NewMMIODev("vnet", n, g, nil)
		n.Bind(d)
		const rxBase, txBase = 0x1000, 0x3000
		if _, err := d.SetupQueue(NetRXQueue, rxBase, 8); err != nil {
			t.Fatal(err)
		}
		if _, err := d.SetupQueue(NetTXQueue, txBase, 8); err != nil {
			t.Fatal(err)
		}
		// Overlay the fuzz bytes on both queues' ring areas, then publish the
		// producer index the fuzzer chose.
		overlay := ring
		if len(overlay) > 512 {
			overlay = overlay[:512]
		}
		if len(overlay) > 0 {
			g.Write(rxBase, overlay)
			g.Write(txBase, overlay)
		}
		rx, tx := d.Queue(NetRXQueue), d.Queue(NetTXQueue)
		g.WriteUintPriv(rx.avail+2, 2, uint64(availIdx))
		g.WriteUintPriv(tx.avail+2, 2, uint64(availIdx))

		if withBacklog {
			frame := make([]byte, 64)
			for i := range frame {
				frame[i] = byte(i)
			}
			n.receive(frame)
		}
		d.MMIOWrite(RegNotify, 4, NetTXQueue)
		d.MMIOWrite(RegNotify, 4, NetRXQueue)

		for _, q := range []*Queue{rx, tx} {
			if q.lastAvail != q.usedIdx {
				t.Fatalf("queue leaked descriptors: consumed %d chains, completed %d",
					q.lastAvail, q.usedIdx)
			}
		}
	})
}
