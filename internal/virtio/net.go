package virtio

// NetHeaderSize is the virtio-net per-frame header the device skips over
// (no offloads are modelled, so its contents are zero).
const NetHeaderSize = 12

// Virtio-net queue indices.
const (
	NetRXQueue = 0
	NetTXQueue = 1
)

// NetBackend matches dev.NetBackend structurally.
type NetBackend interface {
	Send(frame []byte)
	SetReceiver(fn func(frame []byte))
}

// Net is the virtio-net device model: an RX queue the guest posts empty
// buffers into and a TX queue it posts frames on. Frames arriving while no
// RX buffers are posted are queued up to a bounded depth, then dropped —
// matching real NIC semantics.
type Net struct {
	link NetBackend
	dev  *MMIODev

	rxBacklog [][]byte

	// Stats.
	TxFrames, RxFrames, RxDropped, TxDropped uint64
}

const netBacklogDepth = 256

// maxTxFrame bounds one TX chain's readable bytes (64 KiB covers the largest
// TSO-style frame). A malformed descriptor advertising a multi-gigabyte
// length must not size a host allocation.
const maxTxFrame = 64 << 10

// NewNet creates the model over a link (a vnet switch port).
func NewNet(link NetBackend) *Net {
	n := &Net{link: link}
	if link != nil {
		link.SetReceiver(n.receive)
	}
	return n
}

// Bind attaches the transport.
func (n *Net) Bind(dev *MMIODev) { n.dev = dev }

// DeviceID implements Backend.
func (n *Net) DeviceID() uint32 { return IDNet }

// NumQueues implements Backend.
func (n *Net) NumQueues() int { return 2 }

// ReadConfig implements Backend.
func (n *Net) ReadConfig(off uint64, size int) uint64 { return 0 }

// Process implements Backend.
func (n *Net) Process(q *Queue, qi int) {
	switch qi {
	case NetTXQueue:
		n.processTX(q)
	case NetRXQueue:
		// Fresh RX buffers posted: drain any backlog into them.
		n.flushBacklog()
	}
}

func (n *Net) processTX(q *Queue) {
	completed := false
	for {
		ch, ok := q.Pop()
		if !ok {
			break
		}
		total := ch.ReadLen()
		switch {
		case total > maxTxFrame:
			// Malformed length: a guest-advertised multi-gigabyte chain must
			// neither size a host allocation nor reach the wire.
			n.TxDropped++
		case total > NetHeaderSize:
			buf := make([]byte, total)
			off := 0
			faulted := false
			for _, d := range ch.Buf {
				if d.Device {
					continue
				}
				nb := int(d.Len)
				if nb > len(buf)-off {
					// The uint32 length sum wrapped: individual descriptors
					// carry more bytes than the chain's total claims.
					faulted = true
					break
				}
				if err := q.ReadFrom(d, buf[off:off+nb]); err != nil {
					faulted = true
					break
				}
				off += nb
			}
			if faulted {
				// A descriptor aimed at faulting memory: transmitting the
				// zero-filled remainder would put a frame the guest never
				// wrote on the wire. Drop it; the chain still completes.
				n.TxDropped++
			} else {
				frame := buf[NetHeaderSize:]
				if n.link != nil {
					n.link.Send(frame)
				}
				n.TxFrames++
			}
		}
		q.Push(ch.Head, 0)
		completed = true
	}
	if completed && n.dev != nil {
		n.dev.SignalUsed()
	}
}

// receive handles a frame from the link.
func (n *Net) receive(frame []byte) {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	n.rxBacklog = append(n.rxBacklog, cp)
	if len(n.rxBacklog) > netBacklogDepth {
		n.rxBacklog = n.rxBacklog[1:]
		n.RxDropped++
	}
	n.flushBacklog()
}

func (n *Net) flushBacklog() {
	if n.dev == nil {
		return
	}
	q := n.dev.Queue(NetRXQueue)
	if q == nil || !q.Ready() {
		return
	}
	delivered := false
	for len(n.rxBacklog) > 0 {
		ch, ok := q.Pop()
		if !ok {
			break
		}
		frame := n.rxBacklog[0]
		n.rxBacklog = n.rxBacklog[1:]
		// Device writes header (zeros) + frame into the chain's buffers.
		payload := make([]byte, NetHeaderSize+len(frame))
		copy(payload[NetHeaderSize:], frame)
		written := uint32(0)
		off := 0
		for _, d := range ch.Buf {
			if !d.Device || off >= len(payload) {
				continue
			}
			nb := int(d.Len)
			if nb > len(payload)-off {
				nb = len(payload) - off
			}
			q.WriteTo(d, payload[off:off+nb])
			off += nb
			written += uint32(nb)
		}
		q.Push(ch.Head, written)
		n.RxFrames++
		delivered = true
	}
	if delivered {
		n.dev.SignalUsed()
	}
}
