// Package virtio implements paravirtual I/O: split virtqueues living in
// guest memory and the virtio-blk, virtio-net, virtio-console and
// virtio-balloon device models served over them.
//
// The design follows the virtio split-ring specification: a descriptor
// table, an available ring the guest produces into, and a used ring the
// device produces into. The guest batches work and issues a single doorbell
// MMIO write ("kick"); the device drains the available ring synchronously
// and signals completion through the interrupt controller. One exit per
// batch instead of one exit per register access is precisely the
// paravirtual advantage quantified in experiment T6.
package virtio

import (
	"encoding/binary"
	"fmt"

	"govisor/internal/isa"
	"govisor/internal/mem"
)

// Descriptor flags.
const (
	DescNext  uint16 = 1 // chain continues at Next
	DescWrite uint16 = 2 // device writes this buffer (guest reads it)
)

const descSize = 16

// Layout computes the memory addresses of a queue's three rings when packed
// contiguously at base: descriptor table, available ring, used ring. It
// returns the first address past the queue.
func Layout(base uint64, num uint16) (desc, avail, used, end uint64) {
	desc = base
	avail = desc + uint64(num)*descSize
	// avail: flags u16 + idx u16 + ring[num] u16, then align 8.
	used = (avail + 4 + 2*uint64(num) + 7) &^ 7
	// used: flags u16 + idx u16 + ring[num]{id u32, len u32}, align 8.
	end = (used + 4 + 8*uint64(num) + 7) &^ 7
	return desc, avail, used, end
}

// DescBuf is one resolved descriptor in a chain.
type DescBuf struct {
	Addr   uint64 // guest-physical buffer address
	Len    uint32
	Device bool // device-writable (DescWrite)
}

// Chain is one request: the head descriptor index plus resolved buffers.
type Chain struct {
	Head uint16
	Buf  []DescBuf
}

// ReadLen sums guest-readable buffer lengths.
func (c *Chain) ReadLen() (n uint32) {
	for _, b := range c.Buf {
		if !b.Device {
			n += b.Len
		}
	}
	return n
}

// WriteLen sums device-writable buffer lengths.
func (c *Chain) WriteLen() (n uint32) {
	for _, b := range c.Buf {
		if b.Device {
			n += b.Len
		}
	}
	return n
}

// Queue is the device-side view of one virtqueue.
type Queue struct {
	g     *mem.GuestPhys
	num   uint16
	desc  uint64
	avail uint64
	used  uint64
	ready bool

	lastAvail uint16

	// usedIdx is the device-owned shadow of the used-ring producer index.
	// The device never re-reads the index from guest memory: a guest (or a
	// corruption) scribbling used.idx would otherwise redirect completions
	// over arbitrary slots, and a read fault would return 0 and pin every
	// completion to slot 0. The shadow advances monotonically and is written
	// out on each Push.
	usedIdx uint16

	// Stats.
	Kicks, Chains, Malformed uint64
}

// Configure points the queue at guest memory. num must be a power of two.
func (q *Queue) Configure(g *mem.GuestPhys, num uint16, desc, avail, used uint64) error {
	if num == 0 || num&(num-1) != 0 {
		return fmt.Errorf("virtio: queue size %d not a power of two", num)
	}
	q.g = g
	q.num = num
	q.desc, q.avail, q.used = desc, avail, used
	q.ready = true
	q.lastAvail = 0
	q.usedIdx = 0
	return nil
}

// Ready reports whether the queue has been configured.
func (q *Queue) Ready() bool { return q.ready }

// Num returns the configured ring size.
func (q *Queue) Num() uint16 { return q.num }

func (q *Queue) read16(gpa uint64) uint16 {
	v, f := q.g.ReadUint(gpa, 2)
	if f != nil {
		return 0
	}
	return uint16(v)
}

// availIdx reads the guest's producer index.
func (q *Queue) availIdx() uint16 { return q.read16(q.avail + 2) }

// Pending reports whether unprocessed chains are available.
func (q *Queue) Pending() bool {
	return q.ready && q.availIdx() != q.lastAvail
}

// Pop fetches the next well-formed available chain, resolving its
// descriptors. Malformed chains — a descriptor-read fault, or a chain longer
// than the ring (a cycle, necessarily) — are completed immediately with
// written=0 and counted in Malformed, so the guest's descriptors return to
// the used ring instead of leaking until the ring wedges; Pop then moves on
// to the next pending chain.
func (q *Queue) Pop() (Chain, bool) {
	for q.Pending() {
		slot := uint64(q.lastAvail % q.num)
		head := q.read16(q.avail + 4 + 2*slot)
		q.lastAvail++
		if ch, ok := q.resolve(head); ok {
			q.Chains++
			return ch, true
		}
		q.Malformed++
		q.Push(head, 0)
	}
	return Chain{}, false
}

// resolve walks one descriptor chain from head. A chain may reference each
// of the ring's num descriptors at most once, so num hops is the longest
// well-formed walk; the num+1th hop proves a cycle.
func (q *Queue) resolve(head uint16) (Chain, bool) {
	ch := Chain{Head: head}
	idx := head
	for hops := 0; hops < int(q.num); hops++ {
		d := q.desc + uint64(idx%q.num)*descSize
		var raw [descSize]byte
		if f := q.g.ReadSpan(d, raw[:]); f != nil {
			return ch, false
		}
		addr := binary.LittleEndian.Uint64(raw[0:])
		length := binary.LittleEndian.Uint32(raw[8:])
		flags := binary.LittleEndian.Uint16(raw[12:])
		next := binary.LittleEndian.Uint16(raw[14:])
		ch.Buf = append(ch.Buf, DescBuf{Addr: addr, Len: length, Device: flags&DescWrite != 0})
		if flags&DescNext == 0 {
			return ch, true
		}
		idx = next
	}
	return ch, false
}

// Push records a completed chain in the used ring, advancing the
// device-owned shadow producer index (see usedIdx — guest memory is written,
// never read back).
func (q *Queue) Push(head uint16, written uint32) {
	slot := uint64(q.usedIdx % q.num)
	entry := q.used + 4 + 8*slot
	q.g.WriteUintPriv(entry, 4, uint64(head))
	q.g.WriteUintPriv(entry+4, 4, uint64(written))
	q.usedIdx++
	q.g.WriteUintPriv(q.used+2, 2, uint64(q.usedIdx))
}

// UsedIdx returns the device's producer index as the guest observes it.
func (q *Queue) UsedIdx() uint16 { return q.read16(q.used + 2) }

// ensure demand-populates the pages under a DMA target: device access to a
// lazily allocated guest buffer must behave like pinned DMA memory, not
// fault.
func (q *Queue) ensure(gpa uint64, n int) {
	if n <= 0 {
		return
	}
	for p := gpa >> isa.PageShift; p <= (gpa+uint64(n)-1)>>isa.PageShift; p++ {
		if err := q.g.Populate(p); err != nil {
			return // out of range or pool exhausted: the access will fault
		}
	}
}

// ReadFrom copies a descriptor buffer out of guest memory through the span
// memo: each page resolves once per epoch instead of once per access.
func (q *Queue) ReadFrom(b DescBuf, buf []byte) error {
	n := int(b.Len)
	if n > len(buf) {
		n = len(buf)
	}
	q.ensure(b.Addr, n)
	if f := q.g.ReadSpan(b.Addr, buf[:n]); f != nil {
		return f
	}
	return nil
}

// WriteTo copies data into a device-writable buffer through the span memo.
func (q *Queue) WriteTo(b DescBuf, data []byte) error {
	n := len(data)
	if n > int(b.Len) {
		n = int(b.Len)
	}
	q.ensure(b.Addr, n)
	if f := q.g.WriteSpan(b.Addr, data[:n]); f != nil {
		return f
	}
	return nil
}
