package virtio

import "encoding/binary"

// Virtio-blk request types.
const (
	BlkTIn    = 0 // read from disk into guest buffers
	BlkTOut   = 1 // write guest buffers to disk
	BlkTFlush = 4
)

// Virtio-blk status byte values.
const (
	BlkSOK     = 0
	BlkSIOErr  = 1
	BlkSUnsupp = 2
)

// BlkHeaderSize is the request header: type u32, reserved u32, sector u64.
const BlkHeaderSize = 16

// SectorSize mirrors the machine-wide sector size.
const SectorSize = 512

// BlockBackend matches dev.BlockBackend structurally.
type BlockBackend interface {
	ReadSector(lba uint64, buf []byte) error
	WriteSector(lba uint64, buf []byte) error
	Sectors() uint64
}

// Blk is the virtio-blk device model: one request queue carrying
// header / data... / status descriptor chains.
type Blk struct {
	img BlockBackend
	dev *MMIODev

	// Stats.
	Requests, SectorsRead, SectorsWritten, Errors uint64
}

// NewBlk creates the model; call Attach to get its MMIO transport.
func NewBlk(img BlockBackend) *Blk { return &Blk{img: img} }

// Bind attaches the transport (done by core when wiring the machine).
func (b *Blk) Bind(dev *MMIODev) { b.dev = dev }

// DeviceID implements Backend.
func (b *Blk) DeviceID() uint32 { return IDBlock }

// NumQueues implements Backend.
func (b *Blk) NumQueues() int { return 1 }

// ReadConfig implements Backend: config space is the capacity in sectors.
func (b *Blk) ReadConfig(off uint64, size int) uint64 {
	if off == 0 {
		return b.img.Sectors()
	}
	return 0
}

// Process implements Backend: drain the request queue.
func (b *Blk) Process(q *Queue, qi int) {
	completed := false
	for {
		ch, ok := q.Pop()
		if !ok {
			break
		}
		written := b.handle(q, ch)
		q.Push(ch.Head, written)
		completed = true
	}
	if completed && b.dev != nil {
		b.dev.SignalUsed()
	}
}

// handle executes one request chain and returns the device-written byte
// count (data read + status byte).
func (b *Blk) handle(q *Queue, ch Chain) uint32 {
	b.Requests++
	if len(ch.Buf) < 2 || ch.Buf[0].Device || ch.Buf[0].Len < BlkHeaderSize {
		return b.fail(q, ch)
	}
	var hdr [BlkHeaderSize]byte
	if err := q.ReadFrom(ch.Buf[0], hdr[:]); err != nil {
		return b.fail(q, ch)
	}
	reqType := binary.LittleEndian.Uint32(hdr[0:])
	sector := binary.LittleEndian.Uint64(hdr[8:])
	status := ch.Buf[len(ch.Buf)-1]
	if !status.Device || status.Len < 1 {
		b.Errors++
		return 0
	}
	data := ch.Buf[1 : len(ch.Buf)-1]

	var written uint32
	ok := true
	switch reqType {
	case BlkTIn:
		for _, d := range data {
			if !d.Device || d.Len%SectorSize != 0 {
				ok = false
				break
			}
			buf := make([]byte, d.Len)
			for s := uint32(0); s < d.Len/SectorSize; s++ {
				if err := b.img.ReadSector(sector, buf[s*SectorSize:(s+1)*SectorSize]); err != nil {
					ok = false
					break
				}
				sector++
				b.SectorsRead++
			}
			if !ok {
				break
			}
			if err := q.WriteTo(d, buf); err != nil {
				ok = false
				break
			}
			written += d.Len
		}
	case BlkTOut:
		for _, d := range data {
			if d.Device || d.Len%SectorSize != 0 {
				ok = false
				break
			}
			buf := make([]byte, d.Len)
			if err := q.ReadFrom(d, buf); err != nil {
				ok = false
				break
			}
			for s := uint32(0); s < d.Len/SectorSize; s++ {
				if err := b.img.WriteSector(sector, buf[s*SectorSize:(s+1)*SectorSize]); err != nil {
					ok = false
					break
				}
				sector++
				b.SectorsWritten++
			}
			if !ok {
				break
			}
		}
	case BlkTFlush:
		// In-memory images are always durable.
	default:
		q.WriteTo(status, []byte{BlkSUnsupp})
		return written + 1
	}
	code := byte(BlkSOK)
	if !ok {
		code = BlkSIOErr
		b.Errors++
	}
	q.WriteTo(status, []byte{code})
	return written + 1
}

func (b *Blk) fail(q *Queue, ch Chain) uint32 {
	b.Errors++
	if len(ch.Buf) > 0 {
		last := ch.Buf[len(ch.Buf)-1]
		if last.Device && last.Len >= 1 {
			q.WriteTo(last, []byte{BlkSIOErr})
			return 1
		}
	}
	return 0
}
