package virtio

import "encoding/binary"

// Virtio-balloon queue indices.
const (
	BalloonInflateQueue = 0 // guest → host: these pages are now free, reclaim them
	BalloonDeflateQueue = 1 // guest → host: give these pages back
)

// BalloonOps is the host memory-management hook the balloon drives;
// implemented by the VMM over mem.GuestPhys.
type BalloonOps interface {
	// ReclaimPage releases the host frame behind gfn.
	ReclaimPage(gfn uint64)
	// ReturnPage re-establishes gfn (zero-filled on next touch).
	ReturnPage(gfn uint64)
}

// Balloon is the virtio-balloon device: the guest leases pages to the host
// by posting arrays of little-endian u64 guest frame numbers on the inflate
// queue, and reclaims them via the deflate queue. The config space carries
// the host's requested target so the guest driver knows how much to give.
type Balloon struct {
	ops BalloonOps
	dev *MMIODev

	targetPages uint64 // host-requested balloon size
	actualPages uint64 // currently leased

	Inflations, Deflations uint64
}

// NewBalloon creates the model.
func NewBalloon(ops BalloonOps) *Balloon { return &Balloon{ops: ops} }

// Bind attaches the transport.
func (b *Balloon) Bind(dev *MMIODev) { b.dev = dev }

// DeviceID implements Backend.
func (b *Balloon) DeviceID() uint32 { return IDBalloon }

// NumQueues implements Backend.
func (b *Balloon) NumQueues() int { return 2 }

// ReadConfig implements Backend: offset 0 = target pages, 8 = actual pages.
func (b *Balloon) ReadConfig(off uint64, size int) uint64 {
	switch off {
	case 0:
		return b.targetPages
	case 8:
		return b.actualPages
	}
	return 0
}

// SetTarget sets the host's requested balloon size in pages; the guest polls
// config space (or reacts to the config interrupt) and inflates/deflates.
func (b *Balloon) SetTarget(pages uint64) {
	b.targetPages = pages
	if b.dev != nil {
		b.dev.SignalUsed() // config-change notification
	}
}

// Target returns the current host request.
func (b *Balloon) Target() uint64 { return b.targetPages }

// Actual returns the number of pages currently leased to the host.
func (b *Balloon) Actual() uint64 { return b.actualPages }

// Process implements Backend.
func (b *Balloon) Process(q *Queue, qi int) {
	completed := false
	for {
		ch, ok := q.Pop()
		if !ok {
			break
		}
		for _, d := range ch.Buf {
			if d.Device || d.Len%8 != 0 {
				continue
			}
			buf := make([]byte, d.Len)
			if err := q.ReadFrom(d, buf); err != nil {
				continue
			}
			for off := 0; off+8 <= len(buf); off += 8 {
				gfn := binary.LittleEndian.Uint64(buf[off:])
				switch qi {
				case BalloonInflateQueue:
					b.ops.ReclaimPage(gfn)
					b.actualPages++
					b.Inflations++
				case BalloonDeflateQueue:
					b.ops.ReturnPage(gfn)
					if b.actualPages > 0 {
						b.actualPages--
					}
					b.Deflations++
				}
			}
		}
		q.Push(ch.Head, 0)
		completed = true
	}
	if completed && b.dev != nil {
		b.dev.SignalUsed()
	}
}
