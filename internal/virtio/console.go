package virtio

import "bytes"

// Virtio-console queue indices.
const (
	ConsoleRXQueue = 0
	ConsoleTXQueue = 1
)

// Console is the paravirtual console: byte streams over two queues. The
// host side accumulates guest output and feeds input.
type Console struct {
	dev *MMIODev
	out bytes.Buffer
	in  []byte

	TxBytes, RxBytes uint64
}

// NewConsole creates the model.
func NewConsole() *Console { return &Console{} }

// Bind attaches the transport.
func (c *Console) Bind(dev *MMIODev) { c.dev = dev }

// DeviceID implements Backend.
func (c *Console) DeviceID() uint32 { return IDConsole }

// NumQueues implements Backend.
func (c *Console) NumQueues() int { return 2 }

// ReadConfig implements Backend.
func (c *Console) ReadConfig(off uint64, size int) uint64 { return 0 }

// Process implements Backend.
func (c *Console) Process(q *Queue, qi int) {
	switch qi {
	case ConsoleTXQueue:
		completed := false
		for {
			ch, ok := q.Pop()
			if !ok {
				break
			}
			for _, d := range ch.Buf {
				if d.Device {
					continue
				}
				buf := make([]byte, d.Len)
				q.ReadFrom(d, buf)
				c.out.Write(buf)
				c.TxBytes += uint64(d.Len)
			}
			q.Push(ch.Head, 0)
			completed = true
		}
		if completed && c.dev != nil {
			c.dev.SignalUsed()
		}
	case ConsoleRXQueue:
		c.flushInput()
	}
}

// Feed queues host→guest input bytes and delivers into posted RX buffers.
func (c *Console) Feed(data []byte) {
	c.in = append(c.in, data...)
	c.flushInput()
}

func (c *Console) flushInput() {
	if c.dev == nil || len(c.in) == 0 {
		return
	}
	q := c.dev.Queue(ConsoleRXQueue)
	if q == nil || !q.Ready() {
		return
	}
	delivered := false
	for len(c.in) > 0 {
		ch, ok := q.Pop()
		if !ok {
			break
		}
		written := uint32(0)
		for _, d := range ch.Buf {
			if !d.Device || len(c.in) == 0 {
				continue
			}
			n := int(d.Len)
			if n > len(c.in) {
				n = len(c.in)
			}
			q.WriteTo(d, c.in[:n])
			c.in = c.in[n:]
			written += uint32(n)
			c.RxBytes += uint64(n)
		}
		q.Push(ch.Head, written)
		delivered = true
	}
	if delivered {
		c.dev.SignalUsed()
	}
}

// Output returns everything the guest has written.
func (c *Console) Output() string { return c.out.String() }
