package virtio

import (
	"bytes"
	"encoding/binary"
	"testing"

	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/storage"
)

func newGuest(t *testing.T, pages uint64) *mem.GuestPhys {
	t.Helper()
	g := mem.NewGuestPhys(mem.NewPool(pages*2), pages*isa.PageSize)
	if err := g.PopulateAll(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLayoutNonOverlapping(t *testing.T) {
	desc, avail, used, end := Layout(0x1000, 128)
	if desc != 0x1000 {
		t.Fatal("desc base")
	}
	if avail < desc+128*descSize {
		t.Fatal("avail overlaps desc")
	}
	if used < avail+4+2*128 {
		t.Fatal("used overlaps avail")
	}
	if end < used+4+8*128 {
		t.Fatal("end overlaps used")
	}
	if used%8 != 0 || end%8 != 0 {
		t.Fatal("alignment")
	}
}

func TestMMIOTransportBasics(t *testing.T) {
	g := newGuest(t, 64)
	blk := NewBlk(storage.NewRaw(128))
	d := NewMMIODev("vblk", blk, g, nil)
	blk.Bind(d)
	if d.MMIORead(RegMagic, 4) != Magic {
		t.Fatal("magic")
	}
	if d.MMIORead(RegDeviceID, 4) != IDBlock {
		t.Fatal("device id")
	}
	if d.MMIORead(RegConfig, 8) != 128 {
		t.Fatal("capacity config")
	}
	// Bad queue size (not a power of two) leaves the queue unarmed.
	d.MMIOWrite(RegQueueSel, 4, 0)
	d.MMIOWrite(RegQueueNum, 4, 3)
	d.MMIOWrite(RegQueueReady, 4, 1)
	if d.Queue(0).Ready() {
		t.Fatal("queue armed with bad size")
	}
}

// blkSetup wires a virtio-blk device with a driver and returns helpers.
func blkSetup(t *testing.T, img BlockBackend) (*mem.GuestPhys, *Blk, *MMIODev, *Driver, uint64) {
	t.Helper()
	g := newGuest(t, 256)
	blk := NewBlk(img)
	var raised int
	d := NewMMIODev("vblk", blk, g, func() { raised++ })
	blk.Bind(d)
	drv, bufBase, err := NewDriver(g, d, 0, 0x10000, 64)
	if err != nil {
		t.Fatal(err)
	}
	return g, blk, d, drv, bufBase
}

// blkRequest performs a full request round trip through the queue.
func blkRequest(t *testing.T, g *mem.GuestPhys, drv *Driver, bufBase uint64, reqType uint32, sector uint64, data []byte) (status byte, out []byte) {
	t.Helper()
	hdrGPA := bufBase
	dataGPA := bufBase + 0x100
	statusGPA := bufBase + 0x8000

	var hdr [BlkHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], reqType)
	binary.LittleEndian.PutUint64(hdr[8:], sector)
	if f := g.Write(hdrGPA, hdr[:]); f != nil {
		t.Fatal(f)
	}
	chain := []DescBuf{{Addr: hdrGPA, Len: BlkHeaderSize}}
	if reqType == BlkTOut {
		if f := g.Write(dataGPA, data); f != nil {
			t.Fatal(f)
		}
		chain = append(chain, DescBuf{Addr: dataGPA, Len: uint32(len(data))})
	} else if reqType == BlkTIn {
		chain = append(chain, DescBuf{Addr: dataGPA, Len: uint32(len(data)), Device: true})
	}
	chain = append(chain, DescBuf{Addr: statusGPA, Len: 1, Device: true})
	if _, err := drv.Submit(chain); err != nil {
		t.Fatal(err)
	}
	drv.Kick()
	_, _, ok := drv.PollUsed()
	if !ok {
		t.Fatal("no completion")
	}
	stv, _ := g.ReadUint(statusGPA, 1)
	out = make([]byte, len(data))
	if reqType == BlkTIn {
		g.Read(dataGPA, out)
	}
	return byte(stv), out
}

func TestBlkWriteReadRoundTrip(t *testing.T) {
	img := storage.NewRaw(128)
	g, blk, dev, drv, bufBase := blkSetup(t, img)

	data := make([]byte, 2*SectorSize)
	for i := range data {
		data[i] = byte(i)
	}
	st, _ := blkRequest(t, g, drv, bufBase, BlkTOut, 10, data)
	if st != BlkSOK {
		t.Fatalf("write status = %d", st)
	}
	st, out := blkRequest(t, g, drv, bufBase, BlkTIn, 10, make([]byte, 2*SectorSize))
	if st != BlkSOK {
		t.Fatalf("read status = %d", st)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("data mismatch")
	}
	if blk.SectorsWritten != 2 || blk.SectorsRead != 2 {
		t.Fatalf("sectors = %d/%d", blk.SectorsWritten, blk.SectorsRead)
	}
	if dev.Notifies != 2 {
		t.Fatalf("notifies = %d", dev.Notifies)
	}
	if !dev.InterruptPending() {
		t.Fatal("interrupt should be pending")
	}
	drv.AckInterrupt()
	if dev.InterruptPending() {
		t.Fatal("ack should clear")
	}
}

func TestBlkBatchedRequestsOneKick(t *testing.T) {
	img := storage.NewRaw(128)
	g, _, dev, drv, bufBase := blkSetup(t, img)

	// Queue 8 writes, then one kick.
	for i := 0; i < 8; i++ {
		hdrGPA := bufBase + uint64(i)*0x300
		dataGPA := hdrGPA + 0x20
		statusGPA := hdrGPA + 0x250
		var hdr [BlkHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:], BlkTOut)
		binary.LittleEndian.PutUint64(hdr[8:], uint64(i))
		g.Write(hdrGPA, hdr[:])
		g.Write(dataGPA, bytes.Repeat([]byte{byte(i)}, SectorSize))
		if _, err := drv.Submit([]DescBuf{
			{Addr: hdrGPA, Len: BlkHeaderSize},
			{Addr: dataGPA, Len: SectorSize},
			{Addr: statusGPA, Len: 1, Device: true},
		}); err != nil {
			t.Fatal(err)
		}
	}
	drv.Kick()
	done := 0
	for {
		if _, _, ok := drv.PollUsed(); !ok {
			break
		}
		done++
	}
	if done != 8 {
		t.Fatalf("completions = %d", done)
	}
	if dev.Notifies != 1 {
		t.Fatalf("notifies = %d (batching broken)", dev.Notifies)
	}
	// Verify the data actually landed.
	buf := make([]byte, SectorSize)
	img.ReadSector(5, buf)
	if buf[0] != 5 {
		t.Fatal("write 5 missing")
	}
}

func TestBlkUnsupportedRequest(t *testing.T) {
	g, _, _, drv, bufBase := blkSetup(t, storage.NewRaw(16))
	st, _ := blkRequest(t, g, drv, bufBase, 99, 0, nil)
	if st != BlkSUnsupp {
		t.Fatalf("status = %d", st)
	}
}

func TestBlkIOErrorOnBadSector(t *testing.T) {
	g, blk, _, drv, bufBase := blkSetup(t, storage.NewRaw(4))
	st, _ := blkRequest(t, g, drv, bufBase, BlkTOut, 1000, make([]byte, SectorSize))
	if st != BlkSIOErr {
		t.Fatalf("status = %d", st)
	}
	if blk.Errors != 1 {
		t.Fatalf("errors = %d", blk.Errors)
	}
}

type pipeLink struct {
	peer *pipeLink
	rx   func([]byte)
}

func (p *pipeLink) Send(frame []byte) {
	if p.peer != nil && p.peer.rx != nil {
		p.peer.rx(frame)
	}
}
func (p *pipeLink) SetReceiver(fn func([]byte)) { p.rx = fn }

func TestNetTxRx(t *testing.T) {
	gA := newGuest(t, 256)
	gB := newGuest(t, 256)
	la, lb := &pipeLink{}, &pipeLink{}
	la.peer, lb.peer = lb, la

	netA := NewNet(la)
	devA := NewMMIODev("vnetA", netA, gA, nil)
	netA.Bind(devA)
	netB := NewNet(lb)
	devB := NewMMIODev("vnetB", netB, gB, nil)
	netB.Bind(devB)

	drvATx, bufA, err := NewDriver(gA, devA, NetTXQueue, 0x10000, 32)
	if err != nil {
		t.Fatal(err)
	}
	drvBRx, bufB, err := NewDriver(gB, devB, NetRXQueue, 0x10000, 32)
	if err != nil {
		t.Fatal(err)
	}

	// B posts an RX buffer.
	rxGPA := bufB
	drvBRx.Submit([]DescBuf{{Addr: rxGPA, Len: 2048, Device: true}})
	drvBRx.Kick()

	// A transmits a frame (with virtio-net header prepended).
	frame := []byte("\xff\xff\xff\xff\xff\xff\x02\x00\x00\x00\x00\x01hello world")
	txGPA := bufA
	payload := make([]byte, NetHeaderSize+len(frame))
	copy(payload[NetHeaderSize:], frame)
	gA.Write(txGPA, payload)
	drvATx.Submit([]DescBuf{{Addr: txGPA, Len: uint32(len(payload))}})
	drvATx.Kick()

	if netA.TxFrames != 1 || netB.RxFrames != 1 {
		t.Fatalf("frames tx=%d rx=%d", netA.TxFrames, netB.RxFrames)
	}
	head, written, ok := drvBRx.PollUsed()
	_ = head
	if !ok {
		t.Fatal("no rx completion")
	}
	if int(written) != NetHeaderSize+len(frame) {
		t.Fatalf("written = %d", written)
	}
	got := make([]byte, len(frame))
	gB.Read(rxGPA+NetHeaderSize, got)
	if !bytes.Equal(got, frame) {
		t.Fatal("frame mismatch")
	}
}

func TestNetBacklogWhenNoRxBuffers(t *testing.T) {
	g := newGuest(t, 64)
	link := &pipeLink{}
	n := NewNet(link)
	d := NewMMIODev("vnet", n, g, nil)
	n.Bind(d)
	// Frame arrives before any RX buffer exists: backlogged, not dropped.
	n.receive([]byte("early frame padded to min len.."))
	if n.RxFrames != 0 || n.RxDropped != 0 {
		t.Fatal("should be backlogged")
	}
	drv, buf, err := NewDriver(g, d, NetRXQueue, 0x8000, 16)
	if err != nil {
		t.Fatal(err)
	}
	drv.Submit([]DescBuf{{Addr: buf, Len: 2048, Device: true}})
	drv.Kick() // posting buffers flushes the backlog
	if n.RxFrames != 1 {
		t.Fatalf("rx = %d", n.RxFrames)
	}
}

func TestConsoleEcho(t *testing.T) {
	g := newGuest(t, 64)
	con := NewConsole()
	d := NewMMIODev("vcon", con, g, nil)
	con.Bind(d)

	drvTx, bufTx, err := NewDriver(g, d, ConsoleTXQueue, 0x8000, 16)
	if err != nil {
		t.Fatal(err)
	}
	g.Write(bufTx, []byte("hello from guest"))
	drvTx.Submit([]DescBuf{{Addr: bufTx, Len: 16}})
	drvTx.Kick()
	if con.Output() != "hello from guest" {
		t.Fatalf("output = %q", con.Output())
	}

	drvRx, bufRx, err := NewDriver(g, d, ConsoleRXQueue, 0xC000, 16)
	if err != nil {
		t.Fatal(err)
	}
	drvRx.Submit([]DescBuf{{Addr: bufRx, Len: 64, Device: true}})
	drvRx.Kick()
	con.Feed([]byte("hi"))
	_, written, ok := drvRx.PollUsed()
	if !ok || written != 2 {
		t.Fatalf("rx written = %d ok=%v", written, ok)
	}
	got := make([]byte, 2)
	g.Read(bufRx, got)
	if string(got) != "hi" {
		t.Fatalf("rx = %q", got)
	}
}

type fakeBalloonOps struct{ reclaimed, returned []uint64 }

func (f *fakeBalloonOps) ReclaimPage(gfn uint64) { f.reclaimed = append(f.reclaimed, gfn) }
func (f *fakeBalloonOps) ReturnPage(gfn uint64)  { f.returned = append(f.returned, gfn) }

func TestBalloonInflateDeflate(t *testing.T) {
	g := newGuest(t, 64)
	ops := &fakeBalloonOps{}
	bal := NewBalloon(ops)
	d := NewMMIODev("vballoon", bal, g, nil)
	bal.Bind(d)

	bal.SetTarget(2)
	if d.MMIORead(RegConfig, 8) != 2 {
		t.Fatal("target config")
	}

	drvInf, buf, err := NewDriver(g, d, BalloonInflateQueue, 0x8000, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Lease gfns 30 and 31.
	g.WriteUintPriv(buf, 8, 30)
	g.WriteUintPriv(buf+8, 8, 31)
	drvInf.Submit([]DescBuf{{Addr: buf, Len: 16}})
	drvInf.Kick()
	if len(ops.reclaimed) != 2 || ops.reclaimed[0] != 30 {
		t.Fatalf("reclaimed = %v", ops.reclaimed)
	}
	if bal.Actual() != 2 {
		t.Fatalf("actual = %d", bal.Actual())
	}

	drvDef, buf2, err := NewDriver(g, d, BalloonDeflateQueue, 0xC000, 16)
	if err != nil {
		t.Fatal(err)
	}
	g.WriteUintPriv(buf2, 8, 30)
	drvDef.Submit([]DescBuf{{Addr: buf2, Len: 8}})
	drvDef.Kick()
	if len(ops.returned) != 1 || ops.returned[0] != 30 {
		t.Fatalf("returned = %v", ops.returned)
	}
	if bal.Actual() != 1 {
		t.Fatalf("actual = %d", bal.Actual())
	}
}

func TestQueueMalformedChainCycle(t *testing.T) {
	g := newGuest(t, 64)
	var q Queue
	if err := q.Configure(g, 4, 0x1000, 0x1100, 0x1200); err != nil {
		t.Fatal(err)
	}
	// Descriptor 0 chains to itself.
	g.WriteUintPriv(0x1000+8, 4, 16)                // len
	g.WriteUintPriv(0x1000+12, 2, uint64(DescNext)) // flags
	g.WriteUintPriv(0x1000+14, 2, 0)                // next = self
	// avail ring: one entry, head 0.
	g.WriteUintPriv(0x1100+4, 2, 0)
	g.WriteUintPriv(0x1100+2, 2, 1)
	if _, ok := q.Pop(); ok {
		t.Fatal("cyclic chain must be rejected")
	}
	// The malformed chain completes instead of leaking: its head lands in
	// the used ring with written=0 and the stat records the event.
	if q.Malformed != 1 {
		t.Fatalf("Malformed = %d, want 1", q.Malformed)
	}
	if q.UsedIdx() != 1 {
		t.Fatalf("used idx = %d, want 1 (cyclic chain must still complete)", q.UsedIdx())
	}
}
