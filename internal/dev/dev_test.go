package dev

import (
	"bytes"
	"encoding/binary"
	"testing"

	"govisor/internal/storage"
)

func TestBusAttachAndDispatch(t *testing.T) {
	b := NewBus()
	u := NewUART(nil)
	if err := b.Attach(UARTBase, UARTSize, u); err != nil {
		t.Fatal(err)
	}
	if !b.IsMMIO(UARTBase) || !b.IsMMIO(UARTBase+UARTSize-1) {
		t.Fatal("IsMMIO window")
	}
	if b.IsMMIO(UARTBase + UARTSize) {
		t.Fatal("IsMMIO beyond window")
	}
	if b.IsMMIO(0x1000) {
		t.Fatal("RAM address is not MMIO")
	}
	b.Write(UARTBase+UARTTx, 1, 'h')
	b.Write(UARTBase+UARTTx, 1, 'i')
	if u.Output() != "hi" {
		t.Fatalf("output = %q", u.Output())
	}
	// Unmapped reads float to zero, writes are dropped.
	if v := b.Read(MMIOBase+0x9000000, 8); v != 0 {
		t.Fatalf("floating read = %d", v)
	}
	b.Write(MMIOBase+0x9000000, 8, 1)
}

func TestBusRejectsOverlap(t *testing.T) {
	b := NewBus()
	u := NewUART(nil)
	if err := b.Attach(UARTBase, 0x100, u); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(UARTBase+0x80, 0x100, u); err == nil {
		t.Fatal("expected overlap error")
	}
	if err := b.Attach(0x1000, 0x100, u); err == nil {
		t.Fatal("expected below-MMIO error")
	}
}

func TestIntControllerClaimComplete(t *testing.T) {
	ic := NewIntController()
	var pin bool
	ic.SetPin = func(a bool) { pin = a }
	ic.Raise(IRQPIODisk)
	ic.Raise(IRQUart)
	if !pin {
		t.Fatal("pin should assert")
	}
	// Lowest line has priority: UART (1) before disk (2).
	if got := ic.MMIORead(IntCtlClaim, 8); got != IRQUart {
		t.Fatalf("first claim = %d", got)
	}
	if !pin {
		t.Fatal("pin should stay asserted while disk pending")
	}
	if got := ic.MMIORead(IntCtlClaim, 8); got != IRQPIODisk {
		t.Fatalf("second claim = %d", got)
	}
	if pin {
		t.Fatal("pin should deassert when drained")
	}
	if got := ic.MMIORead(IntCtlClaim, 8); got != 0 {
		t.Fatalf("empty claim = %d", got)
	}
}

func TestUARTRxPath(t *testing.T) {
	ic := NewIntController()
	u := NewUART(ic)
	u.Feed([]byte("ok"))
	if !ic.Pending(IRQUart) {
		t.Fatal("feed should raise IRQ")
	}
	if u.MMIORead(UARTStatus, 8) != 1 {
		t.Fatal("status should show data")
	}
	if b := u.MMIORead(UARTRx, 8); b != 'o' {
		t.Fatalf("rx = %c", b)
	}
	if b := u.MMIORead(UARTRx, 8); b != 'k' {
		t.Fatalf("rx = %c", b)
	}
	if u.MMIORead(UARTStatus, 8) != 0 {
		t.Fatal("status should be empty")
	}
}

// writeSectorPIO drives the register protocol like guest code would.
func writeSectorPIO(d *PIODisk, lba uint64, data []byte) {
	d.MMIOWrite(PIODiskSector, 8, lba)
	d.MMIOWrite(PIODiskCmd, 8, PIODiskCmdRewind)
	for off := 0; off < SectorSize; off += 8 {
		d.MMIOWrite(PIODiskData, 8, binary.LittleEndian.Uint64(data[off:]))
	}
	d.MMIOWrite(PIODiskCmd, 8, PIODiskCmdWrite)
}

func readSectorPIO(d *PIODisk, lba uint64) []byte {
	d.MMIOWrite(PIODiskSector, 8, lba)
	d.MMIOWrite(PIODiskCmd, 8, PIODiskCmdRead)
	out := make([]byte, SectorSize)
	for off := 0; off < SectorSize; off += 8 {
		binary.LittleEndian.PutUint64(out[off:], d.MMIORead(PIODiskData, 8))
	}
	return out
}

func TestPIODiskReadWriteSector(t *testing.T) {
	img := storage.NewRaw(64)
	ic := NewIntController()
	d := NewPIODisk(img, ic)

	data := make([]byte, SectorSize)
	for i := range data {
		data[i] = byte(i * 3)
	}
	writeSectorPIO(d, 5, data)
	if d.MMIORead(PIODiskStatus, 8)&PIODiskError != 0 {
		t.Fatal("write errored")
	}
	if !ic.Pending(IRQPIODisk) {
		t.Fatal("completion IRQ missing")
	}
	got := readSectorPIO(d, 5)
	if !bytes.Equal(got, data) {
		t.Fatal("sector mismatch")
	}
	if d.SectorsRead != 1 || d.SectorsWritten != 1 {
		t.Fatalf("stats = %d/%d", d.SectorsRead, d.SectorsWritten)
	}
	if d.MMIORead(PIODiskCount, 8) != 64 {
		t.Fatal("count register")
	}
}

func TestPIODiskErrorOnBadLBA(t *testing.T) {
	d := NewPIODisk(storage.NewRaw(4), nil)
	d.MMIOWrite(PIODiskSector, 8, 99)
	d.MMIOWrite(PIODiskCmd, 8, PIODiskCmdRead)
	if d.MMIORead(PIODiskStatus, 8)&PIODiskError == 0 {
		t.Fatal("expected error status")
	}
}

type loopback struct{ rx func([]byte) }

func (l *loopback) Send(frame []byte)           { l.rx(frame) }
func (l *loopback) SetReceiver(fn func([]byte)) { l.rx = fn }

func TestRegNICLoopback(t *testing.T) {
	lb := &loopback{}
	ic := NewIntController()
	n := NewRegNIC(lb, ic)

	frame := make([]byte, 60)
	for i := range frame {
		frame[i] = byte(i)
	}
	// Transmit via register banging; loopback feeds it straight back.
	n.MMIOWrite(RegNICTxLen, 8, uint64(len(frame)))
	for off := 0; off < len(frame); off += 8 {
		var chunk [8]byte
		copy(chunk[:], frame[off:])
		n.MMIOWrite(RegNICTxData, 8, binary.LittleEndian.Uint64(chunk[:]))
	}
	n.MMIOWrite(RegNICTxSend, 8, 1)

	if !ic.Pending(IRQRegNIC) {
		t.Fatal("rx IRQ missing")
	}
	if n.MMIORead(RegNICStatus, 8) != 1 {
		t.Fatal("rx status")
	}
	ln := n.MMIORead(RegNICRxLen, 8)
	if ln != uint64(len(frame)) {
		t.Fatalf("rx len = %d", ln)
	}
	got := make([]byte, ln)
	for off := uint64(0); off < ln; off += 8 {
		var chunk [8]byte
		binary.LittleEndian.PutUint64(chunk[:], n.MMIORead(RegNICRxData, 8))
		copy(got[off:], chunk[:])
	}
	n.MMIOWrite(RegNICRxDone, 8, 1)
	if !bytes.Equal(got, frame) {
		t.Fatal("frame mismatch")
	}
	if n.TxFrames != 1 || n.RxFrames != 1 {
		t.Fatalf("stats = %d/%d", n.TxFrames, n.RxFrames)
	}
}

func TestRegNICQueueOverflowDrops(t *testing.T) {
	n := NewRegNIC(nil, nil)
	for i := 0; i < rxQueueDepth+10; i++ {
		n.receive(make([]byte, 14))
	}
	if n.RxDropped != 10 {
		t.Fatalf("dropped = %d", n.RxDropped)
	}
}
