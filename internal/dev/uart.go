package dev

import "bytes"

// UART is the console device: a transmit register the guest writes bytes to
// and a receive register fed by the host. Every byte is one MMIO exit —
// consoles are allowed to be slow.
type UART struct {
	out bytes.Buffer
	in  []byte
	ic  *IntController

	TxBytes, RxBytes uint64
}

// UART register offsets.
const (
	UARTTx     = 0x0  // write: transmit one byte
	UARTRx     = 0x8  // read: next input byte (0 if empty)
	UARTStatus = 0x10 // read: bit0 = rx data available
)

// NewUART creates a console; ic may be nil for polled operation.
func NewUART(ic *IntController) *UART { return &UART{ic: ic} }

// Name implements Device.
func (u *UART) Name() string { return "uart" }

// MMIOWrite implements Device.
func (u *UART) MMIOWrite(off uint64, size int, v uint64) {
	if off == UARTTx {
		u.out.WriteByte(byte(v))
		u.TxBytes++
	}
}

// MMIORead implements Device.
func (u *UART) MMIORead(off uint64, size int) uint64 {
	switch off {
	case UARTRx:
		if len(u.in) == 0 {
			return 0
		}
		b := u.in[0]
		u.in = u.in[1:]
		u.RxBytes++
		return uint64(b)
	case UARTStatus:
		if len(u.in) > 0 {
			return 1
		}
	}
	return 0
}

// Feed queues host→guest input and raises the UART interrupt.
func (u *UART) Feed(data []byte) {
	u.in = append(u.in, data...)
	if u.ic != nil {
		u.ic.Raise(IRQUart)
	}
}

// Output returns everything the guest has printed.
func (u *UART) Output() string { return u.out.String() }

// ResetOutput clears the captured output.
func (u *UART) ResetOutput() { u.out.Reset() }
