package dev

import "encoding/binary"

// SectorSize is the disk sector size used throughout govisor.
const SectorSize = 512

// BlockBackend is the storage a block device sits on; implemented by
// internal/storage images.
type BlockBackend interface {
	ReadSector(lba uint64, buf []byte) error
	WriteSector(lba uint64, buf []byte) error
	Sectors() uint64
}

// PIODisk is the fully-emulated baseline block device: the guest programs a
// sector number and command through registers and moves data 8 bytes at a
// time through a data port. A 512-byte sector therefore costs 64 data-port
// exits plus the command exits — exactly the behaviour that motivated
// paravirtual I/O, reproduced for experiment T6.
type PIODisk struct {
	backend BlockBackend
	ic      *IntController

	sector uint64
	buf    [SectorSize]byte
	bufPos uint64
	status uint64
	errors uint64

	// Stats.
	SectorsRead, SectorsWritten uint64
}

// PIODisk register offsets.
const (
	PIODiskSector = 0x00 // write: target LBA
	PIODiskCmd    = 0x08 // write: 1 = read sector, 2 = write sector, 3 = reset data pointer
	PIODiskStatus = 0x10 // read: bit0 ready, bit1 error
	PIODiskData   = 0x18 // read/write: 8 bytes of the sector buffer, auto-increment
	PIODiskCount  = 0x20 // read: total sectors on the medium
)

// PIODisk commands.
const (
	PIODiskCmdRead   = 1
	PIODiskCmdWrite  = 2
	PIODiskCmdRewind = 3
)

// Status bits.
const (
	PIODiskReady = 1 << 0
	PIODiskError = 1 << 1
)

// NewPIODisk creates the device over a backend; ic may be nil for polling.
func NewPIODisk(backend BlockBackend, ic *IntController) *PIODisk {
	return &PIODisk{backend: backend, ic: ic, status: PIODiskReady}
}

// Name implements Device.
func (d *PIODisk) Name() string { return "pio-disk" }

// MMIOWrite implements Device.
func (d *PIODisk) MMIOWrite(off uint64, size int, v uint64) {
	switch off {
	case PIODiskSector:
		d.sector = v
	case PIODiskCmd:
		d.command(v)
	case PIODiskData:
		if d.bufPos+8 <= SectorSize {
			binary.LittleEndian.PutUint64(d.buf[d.bufPos:], v)
			d.bufPos += 8
		}
	}
}

// MMIORead implements Device.
func (d *PIODisk) MMIORead(off uint64, size int) uint64 {
	switch off {
	case PIODiskStatus:
		return d.status
	case PIODiskData:
		if d.bufPos+8 <= SectorSize {
			v := binary.LittleEndian.Uint64(d.buf[d.bufPos:])
			d.bufPos += 8
			return v
		}
		return 0
	case PIODiskCount:
		return d.backend.Sectors()
	case PIODiskSector:
		return d.sector
	}
	return 0
}

func (d *PIODisk) command(cmd uint64) {
	switch cmd {
	case PIODiskCmdRead:
		if err := d.backend.ReadSector(d.sector, d.buf[:]); err != nil {
			d.fail()
			return
		}
		d.SectorsRead++
		d.complete()
	case PIODiskCmdWrite:
		if err := d.backend.WriteSector(d.sector, d.buf[:]); err != nil {
			d.fail()
			return
		}
		d.SectorsWritten++
		d.complete()
	case PIODiskCmdRewind:
		d.bufPos = 0
	}
}

func (d *PIODisk) complete() {
	d.bufPos = 0
	d.status = PIODiskReady
	if d.ic != nil {
		d.ic.Raise(IRQPIODisk)
	}
}

func (d *PIODisk) fail() {
	d.errors++
	d.status = PIODiskReady | PIODiskError
}
