// Package dev implements the device side of the simulated machine: the MMIO
// bus, a claim/complete interrupt controller, a UART console, and the
// fully-emulated baseline devices (a programmed-I/O disk and a register-
// banged NIC) that the virtio paravirtual devices are compared against in
// experiment T6.
package dev

import (
	"fmt"
	"sort"
)

// Physical memory map of the machine. Guest RAM occupies [0, ramSize); all
// device windows live at or above MMIOBase so they can never collide with
// RAM.
const (
	MMIOBase = 0x4000_0000

	UARTBase = MMIOBase + 0x0000
	UARTSize = 0x100

	IntCtlBase = MMIOBase + 0x1000
	IntCtlSize = 0x100

	PIODiskBase = MMIOBase + 0x2000
	PIODiskSize = 0x100

	RegNICBase = MMIOBase + 0x3000
	RegNICSize = 0x100

	// VirtioBase is the first of up to 8 virtio-mmio slots, one page each.
	VirtioBase   = MMIOBase + 0x10000
	VirtioStride = 0x1000
	VirtioSlots  = 8
)

// Interrupt line assignments.
const (
	IRQUart    = 1
	IRQPIODisk = 2
	IRQRegNIC  = 3
	IRQVirtio0 = 8 // virtio slot n uses IRQVirtio0+n
)

// Device is a memory-mapped peripheral. Offsets are relative to the
// device's window base. Reads/writes are at most 8 bytes and naturally
// aligned (the CPU enforces alignment before the access reaches the bus).
type Device interface {
	Name() string
	MMIORead(off uint64, size int) uint64
	MMIOWrite(off uint64, size int, v uint64)
}

type mapping struct {
	base, size uint64
	dev        Device
}

// Bus routes guest-physical accesses in the MMIO window to devices.
type Bus struct {
	maps []mapping // sorted by base

	// Stats for the I/O-path experiments.
	Reads, Writes uint64
}

// NewBus creates an empty bus.
func NewBus() *Bus { return &Bus{} }

// Attach maps dev at [base, base+size). Overlapping windows are an error.
func (b *Bus) Attach(base, size uint64, dev Device) error {
	if base < MMIOBase {
		return fmt.Errorf("dev: window %#x below MMIO base", base)
	}
	for _, m := range b.maps {
		if base < m.base+m.size && m.base < base+size {
			return fmt.Errorf("dev: window %#x+%#x overlaps %s", base, size, m.dev.Name())
		}
	}
	b.maps = append(b.maps, mapping{base, size, dev})
	sort.Slice(b.maps, func(i, j int) bool { return b.maps[i].base < b.maps[j].base })
	return nil
}

func (b *Bus) find(gpa uint64) *mapping {
	lo, hi := 0, len(b.maps)
	for lo < hi {
		mid := (lo + hi) / 2
		m := &b.maps[mid]
		switch {
		case gpa < m.base:
			hi = mid
		case gpa >= m.base+m.size:
			lo = mid + 1
		default:
			return m
		}
	}
	return nil
}

// IsMMIO reports whether gpa belongs to an attached device window.
func (b *Bus) IsMMIO(gpa uint64) bool { return b.find(gpa) != nil }

// Read dispatches a device load. Unmapped addresses read as zero (the bus
// floats), which matches how probing absent devices behaves.
func (b *Bus) Read(gpa uint64, size int) uint64 {
	b.Reads++
	if m := b.find(gpa); m != nil {
		return m.dev.MMIORead(gpa-m.base, size)
	}
	return 0
}

// Write dispatches a device store; writes to unmapped space are dropped.
func (b *Bus) Write(gpa uint64, size int, v uint64) {
	b.Writes++
	if m := b.find(gpa); m != nil {
		m.dev.MMIOWrite(gpa-m.base, size, v)
	}
}

// IntController is the machine's external-interrupt controller: a bitmap of
// pending lines with a claim/complete protocol, akin to a minimal PLIC.
// When any line is pending it asserts the CPU's external-interrupt pin via
// the SetPin callback.
type IntController struct {
	pending uint64
	SetPin  func(asserted bool) // wired to the vCPU's SEIP bit

	Raised, Claims uint64 // stats
}

// Interrupt-controller register offsets.
const (
	IntCtlClaim   = 0x0 // read: highest pending line (0 if none), clears it
	IntCtlPending = 0x8 // read: raw pending bitmap
)

// NewIntController creates a controller; callers wire SetPin.
func NewIntController() *IntController { return &IntController{} }

// Name implements Device.
func (ic *IntController) Name() string { return "intctl" }

// Raise marks line pending and asserts the CPU pin.
func (ic *IntController) Raise(line uint) {
	ic.pending |= 1 << line
	ic.Raised++
	if ic.SetPin != nil {
		ic.SetPin(true)
	}
}

// Pending reports whether the line is pending.
func (ic *IntController) Pending(line uint) bool { return ic.pending&(1<<line) != 0 }

// MMIORead implements the claim/complete protocol.
func (ic *IntController) MMIORead(off uint64, size int) uint64 {
	switch off {
	case IntCtlClaim:
		if ic.pending == 0 {
			return 0
		}
		// Lowest-numbered pending line wins (lower line = higher priority).
		var line uint
		for line = 0; line < 64; line++ {
			if ic.pending&(1<<line) != 0 {
				break
			}
		}
		ic.pending &^= 1 << line
		ic.Claims++
		if ic.pending == 0 && ic.SetPin != nil {
			ic.SetPin(false)
		}
		return uint64(line)
	case IntCtlPending:
		return ic.pending
	}
	return 0
}

// MMIOWrite is a no-op (claim-by-read protocol).
func (ic *IntController) MMIOWrite(off uint64, size int, v uint64) {}
