package dev

import "encoding/binary"

// MaxFrameSize bounds Ethernet-style frames in the simulated network.
const MaxFrameSize = 1536

// NetBackend is the link a NIC attaches to; implemented by internal/vnet
// switch ports.
type NetBackend interface {
	// Send transmits a frame into the network.
	Send(frame []byte)
	// SetReceiver registers the function invoked for frames addressed to
	// this port.
	SetReceiver(fn func(frame []byte))
}

// RegNIC is the fully-emulated baseline network device: the guest moves
// every frame through an 8-byte data port, one MMIO exit per doubleword,
// mirroring pre-virtio emulated NICs. Compared against virtio-net in T6.
type RegNIC struct {
	backend NetBackend
	ic      *IntController

	txBuf [MaxFrameSize]byte
	txLen uint64
	txPos uint64

	rxQueue [][]byte
	rxBuf   []byte
	rxPos   uint64

	// Stats.
	TxFrames, RxFrames, RxDropped uint64
}

// RegNIC register offsets.
const (
	RegNICTxLen  = 0x00 // write: frame length, resets the tx pointer
	RegNICTxData = 0x08 // write: next 8 frame bytes
	RegNICTxSend = 0x10 // write: transmit the buffered frame
	RegNICStatus = 0x18 // read: bit0 = rx frame available
	RegNICRxLen  = 0x20 // read: length of head rx frame, loads it for reading
	RegNICRxData = 0x28 // read: next 8 bytes of the loaded frame
	RegNICRxDone = 0x30 // write: pop the consumed frame
)

const rxQueueDepth = 64

// NewRegNIC creates the device; ic may be nil for polled receive.
func NewRegNIC(backend NetBackend, ic *IntController) *RegNIC {
	n := &RegNIC{backend: backend, ic: ic}
	if backend != nil {
		backend.SetReceiver(n.receive)
	}
	return n
}

// Name implements Device.
func (n *RegNIC) Name() string { return "reg-nic" }

func (n *RegNIC) receive(frame []byte) {
	if len(n.rxQueue) >= rxQueueDepth {
		n.RxDropped++
		return
	}
	cp := make([]byte, len(frame))
	copy(cp, frame)
	n.rxQueue = append(n.rxQueue, cp)
	if n.ic != nil {
		n.ic.Raise(IRQRegNIC)
	}
}

// MMIOWrite implements Device.
func (n *RegNIC) MMIOWrite(off uint64, size int, v uint64) {
	switch off {
	case RegNICTxLen:
		if v > MaxFrameSize {
			v = MaxFrameSize
		}
		n.txLen = v
		n.txPos = 0
	case RegNICTxData:
		if n.txPos+8 <= MaxFrameSize {
			binary.LittleEndian.PutUint64(n.txBuf[n.txPos:], v)
			n.txPos += 8
		}
	case RegNICTxSend:
		if n.backend != nil && n.txLen > 0 {
			frame := make([]byte, n.txLen)
			copy(frame, n.txBuf[:n.txLen])
			n.backend.Send(frame)
			n.TxFrames++
		}
	case RegNICRxDone:
		n.rxBuf = nil
		n.rxPos = 0
	}
}

// MMIORead implements Device.
func (n *RegNIC) MMIORead(off uint64, size int) uint64 {
	switch off {
	case RegNICStatus:
		if len(n.rxQueue) > 0 || n.rxBuf != nil {
			return 1
		}
	case RegNICRxLen:
		if n.rxBuf == nil && len(n.rxQueue) > 0 {
			n.rxBuf = n.rxQueue[0]
			n.rxQueue = n.rxQueue[1:]
			n.rxPos = 0
			n.RxFrames++
		}
		if n.rxBuf != nil {
			return uint64(len(n.rxBuf))
		}
	case RegNICRxData:
		if n.rxBuf != nil && n.rxPos < uint64(len(n.rxBuf)) {
			var chunk [8]byte
			copy(chunk[:], n.rxBuf[n.rxPos:])
			n.rxPos += 8
			return binary.LittleEndian.Uint64(chunk[:])
		}
	}
	return 0
}
