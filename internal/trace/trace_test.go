package trace

import (
	"strings"
	"testing"
)

func TestDisabledRingRecordsNothing(t *testing.T) {
	r := NewRing(8)
	r.Add(1, "x", "event")
	if r.Len() != 0 {
		t.Fatal("disabled ring recorded")
	}
}

func TestRingRecordsInOrder(t *testing.T) {
	r := NewRing(8)
	r.Enabled = true
	for i := 0; i < 5; i++ {
		r.Add(uint64(i), "k", "e%d", i)
	}
	ev := r.Events()
	if len(ev) != 5 {
		t.Fatalf("len = %d", len(ev))
	}
	for i, e := range ev {
		if e.Cycle != uint64(i) || e.Msg != strings.Replace("eN", "N", string(rune('0'+i)), 1) {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
}

func TestRingWrapsKeepingNewest(t *testing.T) {
	r := NewRing(4)
	r.Enabled = true
	for i := 0; i < 10; i++ {
		r.Add(uint64(i), "k", "e%d", i)
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("len = %d", len(ev))
	}
	if ev[0].Cycle != 6 || ev[3].Cycle != 9 {
		t.Fatalf("events = %+v", ev)
	}
	if r.Len() != 4 {
		t.Fatal("Len after wrap")
	}
}

func TestRingResetAndDump(t *testing.T) {
	r := NewRing(4)
	r.Enabled = true
	r.Add(7, "vmexit", "reason=%s", "mmio")
	dump := r.Dump()
	if !strings.Contains(dump, "vmexit") || !strings.Contains(dump, "reason=mmio") {
		t.Fatalf("dump = %q", dump)
	}
	r.Reset()
	if r.Len() != 0 || r.Dump() != "" {
		t.Fatal("reset")
	}
}

func TestZeroCapacityNormalized(t *testing.T) {
	r := NewRing(0)
	r.Enabled = true
	r.Add(1, "k", "x")
	if r.Len() != 1 {
		t.Fatal("capacity floor")
	}
}
