// Package trace provides a bounded in-memory event ring used to debug guest
// and VMM behaviour. Tracing is off by default and costs one branch when
// disabled.
package trace

import (
	"fmt"
	"strings"
)

// Event is one trace record.
type Event struct {
	Cycle uint64
	Kind  string
	Msg   string
}

// Ring is a fixed-capacity event buffer; when full, the oldest events are
// overwritten.
type Ring struct {
	Enabled bool
	buf     []Event
	next    int
	wrapped bool
}

// NewRing creates a ring holding up to n events.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// Add records an event if tracing is enabled.
func (r *Ring) Add(cycle uint64, kind, format string, args ...any) {
	if !r.Enabled {
		return
	}
	r.buf[r.next] = Event{Cycle: cycle, Kind: kind, Msg: fmt.Sprintf(format, args...)}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
}

// Events returns the recorded events in order, oldest first.
func (r *Ring) Events() []Event {
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len returns the number of stored events.
func (r *Ring) Len() int {
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}

// Reset clears the ring.
func (r *Ring) Reset() { r.next = 0; r.wrapped = false }

// Dump renders all events, one per line.
func (r *Ring) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		fmt.Fprintf(&b, "[%12d] %-10s %s\n", e.Cycle, e.Kind, e.Msg)
	}
	return b.String()
}
