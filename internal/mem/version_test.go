package mem

import (
	"testing"

	"govisor/internal/isa"
)

// TestPageVersionBumpsOnMutation: every path that can change what a read of
// a page returns must bump its version; read paths must not. The decoded-
// instruction cache's coherence rests entirely on this.
func TestPageVersionBumpsOnMutation(t *testing.T) {
	p := NewPool(64)
	g := NewGuestPhys(p, 16*isa.PageSize)

	v0 := g.PageVersion(3)

	if err := g.Populate(3); err != nil {
		t.Fatal(err)
	}
	v1 := g.PageVersion(3)
	if v1 == v0 {
		t.Fatal("Populate did not bump the version")
	}

	if f := g.WriteUint(3*isa.PageSize+8, 8, 0xDEAD); f != nil {
		t.Fatal(f)
	}
	v2 := g.PageVersion(3)
	if v2 == v1 {
		t.Fatal("WriteUint did not bump the version")
	}

	// Reads must not bump.
	if _, f := g.ReadUint(3*isa.PageSize+8, 8); f != nil {
		t.Fatal(f)
	}
	buf := make([]byte, 32)
	if f := g.Read(3*isa.PageSize, buf); f != nil {
		t.Fatal(f)
	}
	g.ReadRaw(3, buf)
	if g.PageVersion(3) != v2 {
		t.Fatal("read paths bumped the version")
	}

	if f := g.Write(3*isa.PageSize, []byte{1, 2, 3}); f != nil {
		t.Fatal(f)
	}
	v3 := g.PageVersion(3)
	if v3 == v2 {
		t.Fatal("Write did not bump the version")
	}

	if f := g.WriteUintPriv(3*isa.PageSize, 4, 7); f != nil {
		t.Fatal(f)
	}
	v4 := g.PageVersion(3)
	if v4 == v3 {
		t.Fatal("WriteUintPriv did not bump the version")
	}

	if err := g.WriteRaw(3, make([]byte, isa.PageSize)); err != nil {
		t.Fatal(err)
	}
	v5 := g.PageVersion(3)
	if v5 == v4 {
		t.Fatal("WriteRaw did not bump the version")
	}

	g.Unmap(3)
	v6 := g.PageVersion(3)
	if v6 == v5 {
		t.Fatal("Unmap did not bump the version")
	}
}

// TestPageVersionBumpsOnRemap: dedup-style remaps and COW breaks are remap
// events a code cache must observe.
func TestPageVersionBumpsOnRemap(t *testing.T) {
	p := NewPool(64)
	g := NewGuestPhys(p, 16*isa.PageSize)
	if err := g.Populate(1); err != nil {
		t.Fatal(err)
	}

	hfn, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	v := g.PageVersion(1)
	g.Map(1, hfn)
	if g.PageVersion(1) == v {
		t.Fatal("Map did not bump the version")
	}

	// Shared mapping, then a write that breaks COW: the write itself must
	// bump (the frame changes underneath the gfn).
	other, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	p.IncRef(other)
	g.MapShared(2, other)
	v = g.PageVersion(2)
	if f := g.WriteUint(2*isa.PageSize, 8, 42); f != nil {
		t.Fatal(f)
	}
	if g.PageVersion(2) == v {
		t.Fatal("COW-breaking write did not bump the version")
	}
	if g.Frame(2) == other {
		t.Fatal("COW was not broken")
	}
}

// TestPageVersionOutOfRange: beyond-RAM queries are stable zeros, never a
// panic (the fetch path probes with raw gpa>>shift values).
func TestPageVersionOutOfRange(t *testing.T) {
	g := NewGuestPhys(NewPool(8), 4*isa.PageSize)
	if v := g.PageVersion(1 << 40); v != 0 {
		t.Fatalf("out-of-range version = %d", v)
	}
}
