package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"govisor/internal/isa"
)

func TestPoolAllocFree(t *testing.T) {
	p := NewPool(4)
	var hfns []uint64
	for i := 0; i < 4; i++ {
		h, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		hfns = append(hfns, h)
	}
	if _, err := p.Alloc(); !errors.Is(err, ErrOutOfFrames) {
		t.Fatalf("5th alloc: %v", err)
	}
	if p.InUse() != 4 || p.Free() != 0 {
		t.Fatalf("inUse %d free %d", p.InUse(), p.Free())
	}
	p.DecRef(hfns[0])
	if p.Free() != 1 {
		t.Fatalf("free after DecRef = %d", p.Free())
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatalf("realloc: %v", err)
	}
}

func TestPoolZeroFrameReadsZero(t *testing.T) {
	p := NewPool(2)
	h, _ := p.Alloc()
	buf := []byte{1, 2, 3, 4}
	p.ReadAt(h, 100, buf)
	if !bytes.Equal(buf, []byte{0, 0, 0, 0}) {
		t.Fatalf("fresh frame read %v", buf)
	}
	if !p.IsZero(h) {
		t.Fatal("fresh frame should be zero")
	}
}

func TestPoolWriteRead(t *testing.T) {
	p := NewPool(2)
	h, _ := p.Alloc()
	p.WriteAt(h, 8, []byte("hello"))
	buf := make([]byte, 5)
	p.ReadAt(h, 8, buf)
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
	if p.IsZero(h) {
		t.Fatal("written frame should not be zero")
	}
}

func TestPoolSharedWritePanics(t *testing.T) {
	p := NewPool(2)
	h, _ := p.Alloc()
	p.IncRef(h)
	defer func() {
		if recover() == nil {
			t.Fatal("write to shared frame should panic")
		}
	}()
	p.WriteAt(h, 0, []byte{1})
}

func TestPoolBreakCOW(t *testing.T) {
	p := NewPool(4)
	h, _ := p.Alloc()
	p.WriteAt(h, 0, []byte{0xAA})
	p.IncRef(h) // now shared
	nfn, err := p.BreakCOW(h)
	if err != nil {
		t.Fatal(err)
	}
	if nfn == h {
		t.Fatal("BreakCOW on shared frame returned same frame")
	}
	buf := make([]byte, 1)
	p.ReadAt(nfn, 0, buf)
	if buf[0] != 0xAA {
		t.Fatalf("copy lost content: %v", buf)
	}
	if p.RefCount(h) != 1 {
		t.Fatalf("old refcount = %d", p.RefCount(h))
	}
	if p.COWBreaks() != 1 {
		t.Fatalf("cowBreaks = %d", p.COWBreaks())
	}
	// Unshared frame: no copy.
	n2, _ := p.BreakCOW(nfn)
	if n2 != nfn {
		t.Fatal("BreakCOW on private frame should be identity")
	}
}

func TestPoolShareInto(t *testing.T) {
	p := NewPool(4)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	p.WriteAt(a, 0, []byte{7})
	p.WriteAt(b, 0, []byte{7})
	got := p.ShareInto(a, b)
	if got != a {
		t.Fatalf("canonical = %d", got)
	}
	if p.RefCount(a) != 2 {
		t.Fatalf("refcount = %d", p.RefCount(a))
	}
	if p.InUse() != 1 {
		t.Fatalf("inUse = %d", p.InUse())
	}
	if p.Merges() != 1 {
		t.Fatalf("merges = %d", p.Merges())
	}
}

func TestPoolRefCountNeverNegative(t *testing.T) {
	p := NewPool(1)
	h, _ := p.Alloc()
	p.DecRef(h)
	defer func() {
		if recover() == nil {
			t.Fatal("DecRef on free frame should panic")
		}
	}()
	p.DecRef(h)
}

func newGP(t *testing.T, pages, poolFrames uint64) *GuestPhys {
	t.Helper()
	return NewGuestPhys(NewPool(poolFrames), pages*isa.PageSize)
}

func TestGuestPhysDemandPopulate(t *testing.T) {
	g := newGP(t, 8, 16)
	if g.Present() != 0 {
		t.Fatal("fresh space should be empty")
	}
	if f := g.Write(0x10, []byte{1}); f == nil || f.Kind != FaultNotPresent {
		t.Fatalf("write to unmapped: %v", f)
	}
	if err := g.Populate(0); err != nil {
		t.Fatal(err)
	}
	if f := g.Write(0x10, []byte{1}); f != nil {
		t.Fatal(f)
	}
	var b [1]byte
	if f := g.Read(0x10, b[:]); f != nil || b[0] != 1 {
		t.Fatalf("read back %v %v", b, f)
	}
}

func TestGuestPhysBeyondRAM(t *testing.T) {
	g := newGP(t, 2, 4)
	if f := g.Read(2*isa.PageSize, make([]byte, 1)); f == nil || f.Kind != FaultBeyondRAM {
		t.Fatalf("fault = %v", f)
	}
	if g.Contains(2 * isa.PageSize) {
		t.Fatal("Contains out of range")
	}
	if !g.Contains(2*isa.PageSize - 1) {
		t.Fatal("Contains last byte")
	}
}

func TestGuestPhysDirtyTracking(t *testing.T) {
	g := newGP(t, 8, 16)
	if err := g.PopulateAll(); err != nil {
		t.Fatal(err)
	}
	g.CollectDirty(nil) // clear any population dirt
	if f := g.WriteUint(3*isa.PageSize+8, 8, 42); f != nil {
		t.Fatal(f)
	}
	if f := g.WriteUint(5*isa.PageSize, 4, 7); f != nil {
		t.Fatal(f)
	}
	if g.DirtyCount() != 2 {
		t.Fatalf("dirty = %d", g.DirtyCount())
	}
	got := g.CollectDirty(nil)
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("dirty gfns = %v", got)
	}
	if g.DirtyCount() != 0 {
		t.Fatal("collect should clear")
	}
	// Rewriting the same page dirties again.
	g.WriteUint(3*isa.PageSize, 8, 1)
	if !g.Dirty(3) {
		t.Fatal("page 3 should be dirty again")
	}
}

func TestGuestPhysWriteProtect(t *testing.T) {
	g := newGP(t, 4, 8)
	g.PopulateAll()
	g.WriteProtect(1, true)
	if f := g.WriteUint(isa.PageSize+16, 8, 9); f == nil || f.Kind != FaultWriteProt {
		t.Fatalf("fault = %v", f)
	}
	// Reads still work.
	if _, f := g.ReadUint(isa.PageSize+16, 8); f != nil {
		t.Fatal(f)
	}
	g.WriteProtect(1, false)
	if f := g.WriteUint(isa.PageSize+16, 8, 9); f != nil {
		t.Fatal(f)
	}
}

func TestGuestPhysCOWBreakOnWrite(t *testing.T) {
	pool := NewPool(16)
	g1 := NewGuestPhys(pool, 2*isa.PageSize)
	g2 := NewGuestPhys(pool, 2*isa.PageSize)
	g1.PopulateAll()
	g1.WriteUint(0, 8, 0x1234)

	// Share g1's page 0 into g2 (what dedup/clone does).
	h := g1.Frame(0)
	pool.IncRef(h)
	g2.MapShared(0, h)

	if !g2.IsCOW(0) {
		t.Fatal("g2 page 0 should be COW")
	}
	v, f := g2.ReadUint(0, 8)
	if f != nil || v != 0x1234 {
		t.Fatalf("shared read = %#x, %v", v, f)
	}
	// Write breaks sharing; g1 unaffected.
	if f := g2.WriteUint(0, 8, 0x5678); f != nil {
		t.Fatal(f)
	}
	if g2.IsCOW(0) {
		t.Fatal("COW bit should clear after break")
	}
	if g2.Frame(0) == g1.Frame(0) {
		t.Fatal("frames should have split")
	}
	v1, _ := g1.ReadUint(0, 8)
	v2, _ := g2.ReadUint(0, 8)
	if v1 != 0x1234 || v2 != 0x5678 {
		t.Fatalf("v1=%#x v2=%#x", v1, v2)
	}
	if g2.COWBreaks != 1 {
		t.Fatalf("COWBreaks = %d", g2.COWBreaks)
	}
}

func TestGuestPhysUnmapBalloon(t *testing.T) {
	g := newGP(t, 4, 4)
	g.PopulateAll()
	pool := g.Pool()
	if pool.Free() != 0 {
		t.Fatalf("free = %d", pool.Free())
	}
	g.Unmap(2)
	if pool.Free() != 1 {
		t.Fatalf("free after unmap = %d", pool.Free())
	}
	if f := g.Read(2*isa.PageSize, make([]byte, 1)); f == nil || f.Kind != FaultNotPresent {
		t.Fatalf("fault = %v", f)
	}
	// Repopulating zeroes the page.
	g.Populate(2)
	v, _ := g.ReadUint(2*isa.PageSize, 8)
	if v != 0 {
		t.Fatalf("repopulated page not zero: %#x", v)
	}
}

func TestGuestPhysReadWriteSpanningPages(t *testing.T) {
	g := newGP(t, 2, 4)
	g.PopulateAll()
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	start := uint64(isa.PageSize - 50)
	if f := g.Write(start, data); f != nil {
		t.Fatal(f)
	}
	got := make([]byte, 100)
	if f := g.Read(start, got); f != nil {
		t.Fatal(f)
	}
	if !bytes.Equal(data, got) {
		t.Fatal("span mismatch")
	}
	if !g.Dirty(0) || !g.Dirty(1) {
		t.Fatal("both spanned pages should be dirty")
	}
}

func TestGuestPhysReadWriteUintWidths(t *testing.T) {
	g := newGP(t, 1, 2)
	g.PopulateAll()
	for _, size := range []int{1, 2, 4, 8} {
		want := uint64(0x1122334455667788) & (1<<(8*size) - 1)
		if size == 8 {
			want = 0x1122334455667788
		}
		if f := g.WriteUint(64, size, want); f != nil {
			t.Fatal(f)
		}
		got, f := g.ReadUint(64, size)
		if f != nil || got != want {
			t.Fatalf("size %d: got %#x want %#x (%v)", size, got, want, f)
		}
	}
}

func TestGuestPhysRawRoundTrip(t *testing.T) {
	g := newGP(t, 4, 8)
	page := make([]byte, isa.PageSize)
	for i := range page {
		page[i] = byte(i * 7)
	}
	if err := g.WriteRaw(3, page); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, isa.PageSize)
	g.ReadRaw(3, got)
	if !bytes.Equal(page, got) {
		t.Fatal("raw round trip mismatch")
	}
	// Unmapped page reads as zeros.
	g.ReadRaw(1, got)
	for _, b := range got {
		if b != 0 {
			t.Fatal("unmapped ReadRaw not zero")
		}
	}
}

func TestGuestPhysWriteRawBypassesWP(t *testing.T) {
	g := newGP(t, 2, 4)
	g.PopulateAll()
	g.WriteProtect(0, true)
	page := make([]byte, isa.PageSize)
	page[0] = 0xFF
	if err := g.WriteRaw(0, page); err != nil {
		t.Fatal(err)
	}
	v, _ := g.ReadUint(0, 1)
	if v != 0xFF {
		t.Fatalf("WriteRaw did not land: %#x", v)
	}
}

func TestGuestPhysRelease(t *testing.T) {
	pool := NewPool(8)
	g := NewGuestPhys(pool, 8*isa.PageSize)
	g.PopulateAll()
	g.Release()
	if pool.InUse() != 0 {
		t.Fatalf("inUse after release = %d", pool.InUse())
	}
	if g.Present() != 0 {
		t.Fatalf("present = %d", g.Present())
	}
}

// Property: for any sequence of aligned writes, reads return the last value
// written, dirty bits cover exactly the written pages.
func TestGuestPhysWriteReadProperty(t *testing.T) {
	f := func(ops []struct {
		Page uint8
		Off  uint16
		Val  uint64
	}) bool {
		g := newGP(t, 16, 32)
		g.PopulateAll()
		g.CollectDirty(nil)
		shadow := map[uint64]uint64{}
		for _, op := range ops {
			gpa := uint64(op.Page%16)*isa.PageSize + uint64(op.Off%(isa.PageSize/8))*8
			if f := g.WriteUint(gpa, 8, op.Val); f != nil {
				return false
			}
			shadow[gpa] = op.Val
		}
		for gpa, want := range shadow {
			got, fault := g.ReadUint(gpa, 8)
			if fault != nil || got != want {
				return false
			}
			if !g.Dirty(gpa >> isa.PageShift) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectDirtyMatchesCount(t *testing.T) {
	f := func(pages []uint8) bool {
		g := newGP(t, 64, 128)
		g.PopulateAll()
		g.CollectDirty(nil)
		want := map[uint64]bool{}
		for _, p := range pages {
			gfn := uint64(p % 64)
			g.WriteUint(gfn*isa.PageSize, 8, 1)
			want[gfn] = true
		}
		if g.DirtyCount() != uint64(len(want)) {
			return false
		}
		got := g.CollectDirty(nil)
		if len(got) != len(want) {
			return false
		}
		for _, gfn := range got {
			if !want[gfn] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
