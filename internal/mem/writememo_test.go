package mem

import (
	"testing"

	"govisor/internal/isa"
)

// primeWriteMemo installs a memo entry for gfn and proves the next store
// hits the fast path.
func primeWriteMemo(t *testing.T, g *GuestPhys, gfn uint64) {
	t.Helper()
	if f := g.WriteUintMemo(gfn*isa.PageSize, 8, 0x11); f != nil {
		t.Fatalf("prime fill: %v", f)
	}
	hits := g.WMemoHits
	if f := g.WriteUintMemo(gfn*isa.PageSize+8, 8, 0x22); f != nil {
		t.Fatalf("prime hit: %v", f)
	}
	if g.WMemoHits != hits+1 {
		t.Fatalf("second store did not hit the write memo (hits %d → %d)", hits, g.WMemoHits)
	}
}

// TestWriteMemoCollectDirtyReDirties: CollectDirty clears dirty bits without
// bumping page versions, so only the write epoch can invalidate the memo's
// "already dirty" assumption. A post-collection store must go back through
// resolveWrite and land in the next dirty set.
func TestWriteMemoCollectDirtyReDirties(t *testing.T) {
	g := NewGuestPhys(NewPool(64), 16*isa.PageSize)
	if err := g.Populate(3); err != nil {
		t.Fatal(err)
	}
	primeWriteMemo(t, g, 3)
	if !g.Dirty(3) {
		t.Fatal("memoized stores left the page clean")
	}

	round1 := g.CollectDirty(nil)
	if len(round1) != 1 || round1[0] != 3 {
		t.Fatalf("round 1 dirty set = %v, want [3]", round1)
	}
	if g.Dirty(3) {
		t.Fatal("CollectDirty did not clear the bit")
	}

	sets := g.DirtySets
	if f := g.WriteUintMemo(3*isa.PageSize+16, 8, 0x33); f != nil {
		t.Fatal(f)
	}
	if !g.Dirty(3) || g.DirtySets != sets+1 {
		t.Fatal("post-collection store did not re-dirty through the memo")
	}
	round2 := g.CollectDirty(nil)
	if len(round2) != 1 || round2[0] != 3 {
		t.Fatalf("round 2 dirty set = %v, want [3]", round2)
	}
}

// TestWriteMemoObservesWriteProtect: flipping the write-protect bit either
// way must be observed — a protected page faults even with a warm memo, and
// unprotecting restores writability.
func TestWriteMemoObservesWriteProtect(t *testing.T) {
	g := NewGuestPhys(NewPool(64), 16*isa.PageSize)
	if err := g.Populate(2); err != nil {
		t.Fatal(err)
	}
	primeWriteMemo(t, g, 2)

	g.WriteProtect(2, true)
	if f := g.WriteUintMemo(2*isa.PageSize, 8, 0xBAD); f == nil || f.Kind != FaultWriteProt {
		t.Fatalf("store to protected page through warm memo: fault %v, want write-protect", f)
	}
	g.WriteProtect(2, false)
	if f := g.WriteUintMemo(2*isa.PageSize, 8, 0x77); f != nil {
		t.Fatalf("store after unprotect: %v", f)
	}
	if v, _ := g.ReadUint(2*isa.PageSize, 8); v != 0x77 {
		t.Fatalf("read back %#x, want 0x77", v)
	}
}

// TestWriteMemoObservesKSMMerge: a dedup-style merge marks the canonical
// side COW in place — no remap, no version bump, only the write epoch. The
// canonical owner's next store must break COW instead of scribbling on the
// shared frame.
func TestWriteMemoObservesKSMMerge(t *testing.T) {
	p := NewPool(64)
	g1 := NewGuestPhys(p, 16*isa.PageSize)
	g2 := NewGuestPhys(p, 16*isa.PageSize)
	if err := g1.Populate(1); err != nil {
		t.Fatal(err)
	}
	primeWriteMemo(t, g1, 1)
	if f := g1.WriteUintMemo(1*isa.PageSize, 8, 0xAAAA); f != nil {
		t.Fatal(f)
	}

	// The scanner's merge sequence: victim remaps to the canonical frame,
	// canonical side flips to COW in place.
	canon := g1.Frame(1)
	p.IncRef(canon)
	g2.MapShared(1, canon)
	g1.MarkCOWIfMapped(1, canon)

	breaks := g1.COWBreaks
	if f := g1.WriteUintMemo(1*isa.PageSize, 8, 0xBBBB); f != nil {
		t.Fatal(f)
	}
	if g1.COWBreaks != breaks+1 {
		t.Fatal("post-merge store through warm memo did not break COW")
	}
	if g1.Frame(1) == canon {
		t.Fatal("canonical owner still maps the shared frame after its write")
	}
	if v, _ := g1.ReadUint(1*isa.PageSize, 8); v != 0xBBBB {
		t.Fatalf("writer reads %#x, want 0xBBBB", v)
	}
	if v, _ := g2.ReadUint(1*isa.PageSize, 8); v != 0xAAAA {
		t.Fatalf("sharer reads %#x — the memoized store leaked through the shared frame", v)
	}
}

// TestWriteMemoObservesUnmap: a balloon-style unmap must fault the next
// store even with a warm memo, and a repopulated page must not resurrect
// the old frame's bytes through the cached backing array.
func TestWriteMemoObservesUnmap(t *testing.T) {
	g := NewGuestPhys(NewPool(64), 16*isa.PageSize)
	if err := g.Populate(4); err != nil {
		t.Fatal(err)
	}
	primeWriteMemo(t, g, 4)

	g.Unmap(4)
	if f := g.WriteUintMemo(4*isa.PageSize, 8, 0xDEAD); f == nil || f.Kind != FaultNotPresent {
		t.Fatalf("store to ballooned page through warm memo: fault %v, want not-present", f)
	}
	if err := g.Populate(4); err != nil {
		t.Fatal(err)
	}
	if v, _ := g.ReadUint(4*isa.PageSize+8, 8); v != 0 {
		t.Fatalf("repopulated page reads %#x, want 0", v)
	}
	if f := g.WriteUintMemo(4*isa.PageSize, 8, 0x55); f != nil {
		t.Fatal(f)
	}
	if v, _ := g.ReadUint(4*isa.PageSize, 8); v != 0x55 {
		t.Fatalf("read back %#x, want 0x55", v)
	}
}

// TestWriteMemoObservesRemap: Map replacing the frame under a gfn (the
// migration-restore / dedup-victim shape) must redirect memoized stores to
// the new frame.
func TestWriteMemoObservesRemap(t *testing.T) {
	p := NewPool(64)
	g := NewGuestPhys(p, 16*isa.PageSize)
	if err := g.Populate(5); err != nil {
		t.Fatal(err)
	}
	primeWriteMemo(t, g, 5)
	old := g.Frame(5)

	nfn, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	g.Map(5, nfn)
	if f := g.WriteUintMemo(5*isa.PageSize, 8, 0x99); f != nil {
		t.Fatal(f)
	}
	buf := make([]byte, 8)
	p.ReadAt(nfn, 0, buf)
	if buf[0] != 0x99 {
		t.Fatalf("new frame byte 0 = %#x, want 0x99", buf[0])
	}
	// The old frame was released by Map; it must not have been written. It
	// is enough that the new frame received the store and the space reads it.
	if g.Frame(5) != nfn {
		t.Fatalf("frame = %d, want %d (old %d)", g.Frame(5), nfn, old)
	}
}

// TestWriteMemoVersionContract: coalesced bumps must preserve the
// PageVersion bracketing contract exactly — two observations with a store
// between them always differ; two observations with none are equal.
func TestWriteMemoVersionContract(t *testing.T) {
	g := NewGuestPhys(NewPool(64), 16*isa.PageSize)
	if err := g.Populate(7); err != nil {
		t.Fatal(err)
	}
	addr := uint64(7 * isa.PageSize)

	v0 := g.PageVersion(7)
	if f := g.WriteUintMemo(addr, 8, 1); f != nil { // miss: fill + eager bump
		t.Fatal(f)
	}
	v1 := g.PageVersion(7)
	if v1 == v0 {
		t.Fatal("fill store did not bump the version")
	}
	if f := g.WriteUintMemo(addr, 8, 2); f != nil { // hit after observation: must bump
		t.Fatal(f)
	}
	v2 := g.PageVersion(7)
	if v2 == v1 {
		t.Fatal("memoized store after an observation did not advance the version")
	}
	// Unobserved burst: hits may share one bump, but the next observation
	// must still differ from v2.
	for i := 0; i < 10; i++ {
		if f := g.WriteUintMemo(addr+uint64(i)*8, 8, uint64(i)); f != nil {
			t.Fatal(f)
		}
	}
	v3 := g.PageVersion(7)
	if v3 == v2 {
		t.Fatal("burst of memoized stores was invisible to the version")
	}
	// No stores between observations: versions must be stable.
	if g.PageVersion(7) != v3 {
		t.Fatal("version changed with no intervening store")
	}
	// Reads never bump and always see the latest store.
	if v, _ := g.ReadUint(addr, 8); v != 0 {
		t.Fatalf("read %#x, want 0 (last burst store)", v)
	}
	if g.PageVersion(7) != v3 {
		t.Fatal("read path advanced the version")
	}
}

// TestWriteMemoAliasedSlots: pages colliding in the direct-mapped memo must
// displace each other without cross-talk, and each displacement must keep
// dirty accounting exact.
func TestWriteMemoAliasedSlots(t *testing.T) {
	g := NewGuestPhys(NewPool(128), 32*isa.PageSize)
	a := uint64(3)
	b := a + wmemoSlots // same slot
	for _, gfn := range []uint64{a, b} {
		if err := g.Populate(gfn); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if f := g.WriteUintMemo(a*isa.PageSize+uint64(i)*8, 8, 0xA0+uint64(i)); f != nil {
			t.Fatal(f)
		}
		if f := g.WriteUintMemo(b*isa.PageSize+uint64(i)*8, 8, 0xB0+uint64(i)); f != nil {
			t.Fatal(f)
		}
	}
	for i := 0; i < 4; i++ {
		if v, _ := g.ReadUint(a*isa.PageSize+uint64(i)*8, 8); v != 0xA0+uint64(i) {
			t.Fatalf("page a word %d = %#x", i, v)
		}
		if v, _ := g.ReadUint(b*isa.PageSize+uint64(i)*8, 8); v != 0xB0+uint64(i) {
			t.Fatalf("page b word %d = %#x", i, v)
		}
	}
	if !g.Dirty(a) || !g.Dirty(b) {
		t.Fatal("aliased pages lost their dirty bits")
	}
}

// TestWriteMemoDeviceWritesInterleave: unmemoized writes (device DMA through
// WriteUint, bulk Write) interleaving with a warm memo must stay coherent —
// same frame, eager version bumps, reads always current.
func TestWriteMemoDeviceWritesInterleave(t *testing.T) {
	g := NewGuestPhys(NewPool(64), 16*isa.PageSize)
	if err := g.Populate(6); err != nil {
		t.Fatal(err)
	}
	addr := uint64(6 * isa.PageSize)
	primeWriteMemo(t, g, 6)

	v0 := g.PageVersion(6)
	if f := g.WriteUint(addr, 8, 0x1111); f != nil { // device-style store
		t.Fatal(f)
	}
	if g.PageVersion(6) == v0 {
		t.Fatal("unmemoized store did not bump the version")
	}
	if f := g.WriteUintMemo(addr+8, 8, 0x2222); f != nil { // memo still warm
		t.Fatal(f)
	}
	if v, _ := g.ReadUint(addr, 8); v != 0x1111 {
		t.Fatalf("device byte lost: %#x", v)
	}
	if v, _ := g.ReadUint(addr+8, 8); v != 0x2222 {
		t.Fatalf("memoized byte lost: %#x", v)
	}
	v1 := g.PageVersion(6)
	if f := g.WriteUintMemo(addr+16, 8, 0x3333); f != nil {
		t.Fatal(f)
	}
	if g.PageVersion(6) == v1 {
		t.Fatal("memoized store after observation did not advance the version")
	}
}
