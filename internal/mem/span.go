package mem

import (
	"sync/atomic"

	"govisor/internal/isa"
)

// spanSlots is the span memo's direct-mapped size. Device DMA streams a
// handful of ring and buffer pages per queue; eight slots cover a virtio
// queue's descriptor table, avail/used rings and the active buffer pages.
const spanSlots = 8

// spanEntry caches one resolved DMA page. gfn == NoFrame marks an empty
// slot. epoch is the space's write epoch at install time: the entry is valid
// only while they still match, so every event that can change a resolve
// verdict — remaps, ballooning, COW creation and breaks, write-protect
// flips, CollectDirty — invalidates the whole memo at once, exactly like
// the write memo. writable records which resolver installed the entry: only
// a resolveWrite-vetted entry (page present, private, unprotected, dirty)
// may serve a write hit; a read-installed entry can cover a COW or
// write-protected page whose verdict never changed epoch since. data is the
// live backing array (never nil — logically-zero pages are not memoized), so
// a hit always sees current content: guest stores mutate the same array in
// place, and anything that swaps the array under the gfn bumps the epoch.
type spanEntry struct {
	gfn      uint64
	epoch    uint64
	writable bool
	data     []byte
}

// SetNoSpanDMA selects the reference arm: span resolution falls back to the
// page-by-page Read/Write paths and the memo is dropped (entries installed
// while the fast path was live must not serve hits afterwards).
func (g *GuestPhys) SetNoSpanDMA(off bool) {
	g.noSpanDMA = off
	for i := range g.smemo {
		g.smemo[i] = spanEntry{gfn: NoFrame}
	}
}

// ReadSpan copies len(buf) bytes from gpa, resolving each page at most once
// through the span memo: a valid entry proves the cached backing array still
// is what resolveRead + Pool.Data would produce (every content-moving event
// bumps the write epoch), so the hit path is a straight memcpy. Misses take
// the full resolve and install the page for the next DMA touching it. Reads
// have no guest-visible side effects, so nothing is replayed on a hit; the
// arm split is guest-invisible by construction and the differential suites
// prove it.
//
//govisor:pair Read
func (g *GuestPhys) ReadSpan(gpa uint64, buf []byte) *Fault {
	if g.noSpanDMA {
		return g.Read(gpa, buf)
	}
	for len(buf) > 0 {
		off := int(gpa & isa.PageMask)
		n := isa.PageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		gfn := gpa >> isa.PageShift
		e := &g.smemo[gfn&(spanSlots-1)]
		if e.gfn == gfn && e.epoch == atomic.LoadUint64(&g.wepoch) {
			copy(buf[:n], e.data[off:])
		} else {
			hfn, f := g.resolveRead(gpa, isa.AccRead)
			if f != nil {
				return f
			}
			if data := g.pool.Data(hfn); data != nil {
				copy(buf[:n], data[off:])
				*e = spanEntry{gfn: gfn, epoch: atomic.LoadUint64(&g.wepoch), data: data}
			} else {
				// Logically-zero frame: materializing it for a read would
				// defeat the pool's zero-page economics, and memoizing nil
				// would need a nil check on every hit. Serve zeros, skip
				// the memo.
				for i := range buf[:n] {
					buf[i] = 0
				}
			}
		}
		buf = buf[n:]
		gpa += uint64(n)
	}
	return nil
}

// WriteSpan copies buf to gpa through the span memo. A write hit requires a
// writable entry: resolveWrite vetted the page at install time (present,
// unprotected, private, dirty) and an unchanged epoch proves every one of
// those verdicts still stands — each contrary event bumps it — so the hit
// skips the per-page bitmap tests and writes the cached array directly,
// bumping the page's content version exactly as resolveWrite would. Misses
// run resolveWrite in full (COW breaks, dirty accounting, fault surfacing
// included) and install the vetted page.
//
//govisor:pair Write
func (g *GuestPhys) WriteSpan(gpa uint64, buf []byte) *Fault {
	if g.noSpanDMA {
		return g.Write(gpa, buf)
	}
	for len(buf) > 0 {
		off := int(gpa & isa.PageMask)
		n := isa.PageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		gfn := gpa >> isa.PageShift
		e := &g.smemo[gfn&(spanSlots-1)]
		if e.gfn == gfn && e.writable && e.epoch == atomic.LoadUint64(&g.wepoch) {
			g.bumpVersion(gfn)
			copy(e.data[off:], buf[:n])
		} else {
			hfn, f := g.resolveWrite(gpa)
			if f != nil {
				return f
			}
			data := g.pool.writable(hfn)
			copy(data[off:], buf[:n])
			// Epoch read after resolveWrite: a COW break in the resolve
			// bumps it, and the entry must be valid for the frame the break
			// installed, not the shared one it replaced.
			*e = spanEntry{gfn: gfn, epoch: atomic.LoadUint64(&g.wepoch), writable: true, data: data}
		}
		buf = buf[n:]
		gpa += uint64(n)
	}
	return nil
}
