package mem

import (
	"sync"
	"testing"

	"govisor/internal/isa"
)

// TestShardedPoolExactCapacity: striping must not change capacity semantics —
// exactly capacity frames allocate, with dense frame numbers, for shard
// counts that do and do not divide the capacity.
func TestShardedPoolExactCapacity(t *testing.T) {
	for _, tc := range []struct {
		capacity uint64
		shards   int
	}{{40, 1}, {40, 8}, {41, 8}, {7, 8}, {256, 3}} {
		p := NewPoolSharded(tc.capacity, tc.shards)
		seen := make(map[uint64]bool)
		for i := uint64(0); i < tc.capacity; i++ {
			hfn, err := p.Alloc()
			if err != nil {
				t.Fatalf("cap=%d shards=%d: alloc %d failed: %v", tc.capacity, tc.shards, i, err)
			}
			if hfn >= tc.capacity {
				t.Fatalf("cap=%d shards=%d: hfn %d not dense", tc.capacity, tc.shards, hfn)
			}
			if seen[hfn] {
				t.Fatalf("cap=%d shards=%d: hfn %d handed out twice", tc.capacity, tc.shards, hfn)
			}
			seen[hfn] = true
		}
		if _, err := p.Alloc(); err != ErrOutOfFrames {
			t.Fatalf("cap=%d shards=%d: over-capacity alloc gave %v", tc.capacity, tc.shards, err)
		}
		if p.InUse() != tc.capacity || p.Free() != 0 {
			t.Fatalf("cap=%d shards=%d: inUse=%d free=%d", tc.capacity, tc.shards, p.InUse(), p.Free())
		}
	}
}

// TestShardedPoolRaceStress hammers one pool from many goroutines the way a
// parallel host does: each goroutine owns a GuestPhys (single-owner, as the
// epoch protocol guarantees) and churns demand fills, stores, unmaps and
// COW breaks of frames pre-shared across all spaces. Run under -race this is
// the data-race proof for the shard locking, the atomic budget, and the
// atomic page-version counters.
func TestShardedPoolRaceStress(t *testing.T) {
	const (
		workers  = 8
		pages    = 64
		rounds   = 400
		capacity = workers*pages + 128
	)
	p := NewPoolSharded(capacity, 4)
	spaces := make([]*GuestPhys, workers)
	for i := range spaces {
		g := NewGuestPhys(p, pages<<isa.PageShift)
		g.SetAllocHint(i)
		spaces[i] = g
	}
	// Pre-share one canonical frame into every space (the dedup outcome),
	// so concurrent first writes race through BreakCOW on the shared frame.
	canonical, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	p.WriteAt(canonical, 0, []byte{0xAB})
	for _, g := range spaces {
		p.IncRef(canonical)
		g.MapShared(0, canonical)
	}
	p.DecRef(canonical) // spaces now hold the only references

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := spaces[w]
			for r := 0; r < rounds; r++ {
				// COW break on the pre-shared page (first round), then
				// plain stores bumping versions.
				if f := g.WriteUint(0, 8, uint64(r)); f != nil {
					t.Errorf("worker %d: shared write: %v", w, f)
					return
				}
				gfn := uint64(1 + (r % (pages - 1)))
				if err := g.Populate(gfn); err != nil {
					t.Errorf("worker %d: populate: %v", w, err)
					return
				}
				if f := g.WriteUint(gfn<<isa.PageShift, 8, uint64(w)<<32|uint64(r)); f != nil {
					t.Errorf("worker %d: write: %v", w, f)
					return
				}
				if v := g.PageVersion(gfn); v == 0 {
					t.Errorf("worker %d: version not bumped", w)
					return
				}
				if r%7 == 0 {
					g.Unmap(gfn) // exercise free-list churn across shards
				}
			}
		}(w)
	}
	wg.Wait()

	// Every space must own a private copy of page 0 with its own last value.
	for w, g := range spaces {
		if g.IsCOW(0) {
			t.Fatalf("space %d still COW after write", w)
		}
		v, f := g.ReadUint(0, 8)
		if f != nil || v != rounds-1 {
			t.Fatalf("space %d: page0 = %d (%v)", w, v, f)
		}
	}
	if p.InUse() > capacity {
		t.Fatalf("pool overran budget: %d > %d", p.InUse(), capacity)
	}
	// The last holder of the shared frame writes it in place, so the break
	// count is at least workers-1 (exact value depends on the race's order).
	if p.COWBreaks() < workers-1 {
		t.Fatalf("expected ≥%d COW breaks, got %d", workers-1, p.COWBreaks())
	}
}

// TestWriteMemoEpochRaceStress is the write-memo concurrency hammer: several
// VMs (single-owner spaces, as the epoch protocol guarantees) hammer
// memoized stores over one sharded pool, with epoch-barrier phases between
// rounds performing CollectDirty over every space and KSM-style merges of
// content-identical pages — so the following round's memoized stores must
// COW-break the shared frames. A free-running observer goroutine probes
// WriteEpoch and PageVersion across all spaces the whole time, the way a
// scanner probes for stability. Run under -race this exercises the write-
// epoch counter's atomicity, the armed-flag disarm handshake in PageVersion,
// and the atomic page versions underneath coalesced bumps.
func TestWriteMemoEpochRaceStress(t *testing.T) {
	const (
		workers  = 6
		pages    = 16
		rounds   = 120
		capacity = workers*pages + 256
	)
	p := NewPoolSharded(capacity, 4)
	spaces := make([]*GuestPhys, workers)
	for i := range spaces {
		g := NewGuestPhys(p, pages<<isa.PageShift)
		g.SetAllocHint(i)
		spaces[i] = g
		if err := g.PopulateAll(); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	go func() { // concurrent stability prober
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, g := range spaces {
				_ = g.WriteEpoch()
				for gfn := uint64(0); gfn < pages; gfn += 3 {
					_ = g.PageVersion(gfn)
				}
			}
		}
	}()

	dirty := make([]uint64, 0, pages)
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for w := range spaces {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				g := spaces[w]
				for k := 0; k < 32; k++ {
					gfn := uint64(k) % pages
					// Page 1 gets identical content on every space so the
					// barrier's merge pass always has candidates; the rest
					// carry worker-unique values to catch cross-VM leaks.
					val := uint64(r)<<16 | uint64(k)
					if gfn != 1 {
						val |= uint64(w+1) << 48
					}
					if f := g.WriteUintMemo(gfn<<isa.PageShift|uint64(k%8)*8, 8, val); f != nil {
						t.Errorf("worker %d round %d: store: %v", w, r, f)
						return
					}
					if v := g.PageVersion(gfn); v == 0 {
						t.Errorf("worker %d: version never advanced", w)
						return
					}
				}
			}(w)
		}
		wg.Wait()

		// Epoch barrier: dirty-log collection over every space, then a
		// KSM-style merge of page 1 into space 0's frame.
		for _, g := range spaces {
			dirty = g.CollectDirty(dirty[:0])
			if r > 0 && len(dirty) == 0 {
				t.Fatal("a round of stores left no dirty pages")
			}
		}
		canon := spaces[0].Frame(1)
		for _, g := range spaces[1:] {
			if v := g.Frame(1); v == NoFrame || v == canon {
				continue
			}
			p.IncRef(canon)
			g.MapShared(1, canon)
		}
		spaces[0].MarkCOWIfMapped(1, canon)
	}
	close(done)

	// Every space must have broken back out of the final merge by its last
	// round of stores... except round rounds-1's merge, which nobody wrote
	// after. What must hold: worker-unique pages never leaked across VMs.
	for w, g := range spaces {
		for gfn := uint64(0); gfn < pages; gfn++ {
			if gfn == 1 {
				continue
			}
			v, f := g.ReadUint(gfn<<isa.PageShift, 8)
			if f != nil {
				t.Fatalf("space %d gfn %d: %v", w, gfn, f)
			}
			if v != 0 && v>>48 != uint64(w+1) {
				t.Fatalf("space %d gfn %d holds %#x — another VM's store leaked in", w, gfn, v)
			}
		}
	}
	if p.COWBreaks() == 0 {
		t.Fatal("the merge/store churn never broke COW — the stress lost its teeth")
	}
	if p.InUse() > capacity {
		t.Fatalf("pool overran budget: %d > %d", p.InUse(), capacity)
	}
}

// TestShardedPoolConcurrentExhaustion: when many allocators fight over the
// last frames, the pool must hand out exactly the remaining budget and fail
// the rest — never oversubscribe, never deadlock.
func TestShardedPoolConcurrentExhaustion(t *testing.T) {
	const capacity = 100
	p := NewPoolSharded(capacity, 8)
	var wg sync.WaitGroup
	got := make([]int, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if _, err := p.AllocNear(w); err != nil {
					return
				}
				got[w]++
			}
		}(w)
	}
	wg.Wait()
	var total int
	for _, n := range got {
		total += n
	}
	if total != capacity {
		t.Fatalf("allocated %d frames from a %d-frame pool", total, capacity)
	}
	if p.Free() != 0 {
		t.Fatalf("free = %d after exhaustion", p.Free())
	}
}
