// Package mem provides the memory substrate of the simulated machine: a host
// physical frame pool shared by all VMs on a host, and per-VM guest-physical
// address spaces mapped onto it.
//
// The pool supports reference-counted frame sharing, which is the foundation
// for content-based page deduplication (internal/ksm), copy-on-write VM
// cloning (internal/snapshot) and ballooning (internal/balloon). Frames are
// allocated lazily: a frame with no backing storage reads as zeros, so
// freshly booted VMs cost no host memory for untouched pages — mirroring how
// a real hypervisor demand-populates guest RAM.
//
// Concurrency model. The pool is shared by every VM on a host, and the
// parallel execution engine (core.Host.RunParallel) runs VMs on concurrent
// worker goroutines, so the pool is goroutine-safe: it is striped into
// lock-protected shards (frame numbers interleave across shards, so one VM's
// demand-fill burst spreads) with per-shard free lists, while the global
// frame budget and all statistics are atomics. The per-frame *data* paths
// (Data, ReadAt, WriteAt) are deliberately unlocked: the refcount/COW
// protocol already guarantees a frame is only written by a holder of its
// sole reference (writes to shared frames panic), so data accesses never
// race. Each GuestPhys remains single-writer — only its VM's currently
// leased worker may access it during an epoch; cross-VM services (dedup,
// ballooning, migration) run serially at epoch barriers.
package mem

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"govisor/internal/isa"
)

// ErrOutOfFrames is returned when the host pool is exhausted. Overcommit
// policies (ballooning, dedup) exist to avoid hitting it.
var ErrOutOfFrames = errors.New("mem: host frame pool exhausted")

// NoFrame is the sentinel host frame number for "unmapped".
const NoFrame = ^uint64(0)

// defaultShards is the stripe count for pools large enough to matter; tiny
// pools (unit tests, deliberately starved overcommit scenarios) stay single-
// shard so exhaustion behaviour is trivially sequential.
const defaultShards = 8

// smallPoolFrames is the capacity below which a pool defaults to one shard.
const smallPoolFrames = 256

// poolShard is one lock stripe of the pool. A shard owns every frame number
// congruent to its index modulo the shard count; its frame and refcount
// tables are preallocated to the shard's exact capacity so the slice headers
// never change after construction — element accesses from concurrent workers
// need no lock.
type poolShard struct {
	mu     sync.Mutex
	cap    uint64   // frame numbers owned by this shard
	next   uint64   // bump watermark: locals never yet handed out
	free   []uint64 // recycled locals
	frames [][]byte // local → backing bytes; nil ⇒ logically zero or free
	refcnt []uint32 // local → reference count (atomic access)
}

// Pool is a host physical memory: a fixed budget of 4 KiB frames with
// per-frame reference counts. Frame numbers are dense small integers, so
// the hot paths (every guest load/store resolves a frame) are slice
// lookups, not map probes.
type Pool struct {
	capacity uint64
	nshards  uint64
	shards   []poolShard

	inUse atomic.Uint64 // frames with refcnt > 0 (plus in-flight allocations)
	rotor atomic.Uint64 // round-robin start shard for unhinted allocation

	// Stats.
	allocs, frees, cowBreaks, sharedMerges atomic.Uint64
}

// NewPool creates a host pool with the given capacity in frames, striped
// over a default shard count.
func NewPool(capacityFrames uint64) *Pool {
	shards := defaultShards
	if capacityFrames < smallPoolFrames {
		shards = 1
	}
	return NewPoolSharded(capacityFrames, shards)
}

// NewPoolSharded creates a host pool striped over exactly nshards lock
// shards. Shard count never changes semantics — only contention.
func NewPoolSharded(capacityFrames uint64, nshards int) *Pool {
	if nshards < 1 {
		nshards = 1
	}
	n := uint64(nshards)
	p := &Pool{capacity: capacityFrames, nshards: n, shards: make([]poolShard, n)}
	for s := uint64(0); s < n; s++ {
		// Shard s owns frame numbers ≡ s (mod n) below capacity.
		var scap uint64
		if capacityFrames > s {
			scap = (capacityFrames - s + n - 1) / n
		}
		sh := &p.shards[s]
		sh.cap = scap
		sh.frames = make([][]byte, scap)
		sh.refcnt = make([]uint32, scap)
	}
	return p
}

// shardOf splits a frame number into its owning shard and local index.
func (p *Pool) shardOf(hfn uint64) (*poolShard, uint64) {
	return &p.shards[hfn%p.nshards], hfn / p.nshards
}

// Capacity returns the pool size in frames.
func (p *Pool) Capacity() uint64 { return p.capacity }

// Shards returns the lock-stripe count.
func (p *Pool) Shards() int { return int(p.nshards) }

// InUse returns the number of live (refcnt > 0) frames.
func (p *Pool) InUse() uint64 { return p.inUse.Load() }

// Free returns the number of frames still allocatable.
func (p *Pool) Free() uint64 { return p.capacity - p.inUse.Load() }

// COWBreaks returns how many copy-on-write splits the pool has performed.
func (p *Pool) COWBreaks() uint64 { return p.cowBreaks.Load() }

// Merges returns how many frames have been merged by sharing.
func (p *Pool) Merges() uint64 { return p.sharedMerges.Load() }

// Alloc reserves a zero-filled frame and returns its frame number.
func (p *Pool) Alloc() (uint64, error) {
	return p.AllocNear(int(p.rotor.Add(1)))
}

// AllocNear is Alloc preferring the shard hint maps to (VMs pass a stable
// per-VM hint so their allocation streams stay on one stripe and mostly
// avoid cross-VM lock contention). It falls back to the other shards, so
// the global capacity is always fully usable.
func (p *Pool) AllocNear(hint int) (uint64, error) {
	// Reserve a unit of the global budget first; the reservation guarantees
	// some shard holds a free slot for as long as we keep scanning.
	for {
		cur := p.inUse.Load()
		if cur >= p.capacity {
			return NoFrame, ErrOutOfFrames
		}
		if p.inUse.CompareAndSwap(cur, cur+1) {
			break
		}
	}
	n := p.nshards
	start := uint64(hint) % n
	for {
		for i := uint64(0); i < n; i++ {
			sh := &p.shards[(start+i)%n]
			sh.mu.Lock()
			var local uint64
			ok := false
			if ln := len(sh.free); ln > 0 {
				local = sh.free[ln-1]
				sh.free = sh.free[:ln-1]
				ok = true
			} else if sh.next < sh.cap {
				local = sh.next
				sh.next++
				ok = true
			}
			if ok {
				atomic.StoreUint32(&sh.refcnt[local], 1)
				sh.mu.Unlock()
				p.allocs.Add(1)
				return local*n + (start+i)%n, nil
			}
			sh.mu.Unlock()
		}
		// All shards momentarily full while a concurrent DecRef is between
		// returning its slot and publishing it: our budget reservation proves
		// a slot exists, so yield and rescan.
		runtime.Gosched()
	}
}

func (p *Pool) rc(hfn uint64) uint32 {
	if hfn >= p.capacity {
		return 0
	}
	sh, local := p.shardOf(hfn)
	return atomic.LoadUint32(&sh.refcnt[local])
}

// IncRef adds a reference to hfn (sharing).
func (p *Pool) IncRef(hfn uint64) {
	if hfn >= p.capacity {
		panic(fmt.Sprintf("mem: IncRef on free frame %d", hfn))
	}
	sh, local := p.shardOf(hfn)
	sh.mu.Lock()
	rc := atomic.LoadUint32(&sh.refcnt[local])
	if rc == 0 {
		sh.mu.Unlock()
		panic(fmt.Sprintf("mem: IncRef on free frame %d", hfn))
	}
	atomic.StoreUint32(&sh.refcnt[local], rc+1)
	sh.mu.Unlock()
}

// DecRef drops a reference; the frame is freed when the count reaches zero.
func (p *Pool) DecRef(hfn uint64) {
	if hfn >= p.capacity {
		panic(fmt.Sprintf("mem: DecRef on free frame %d", hfn))
	}
	sh, local := p.shardOf(hfn)
	sh.mu.Lock()
	rc := atomic.LoadUint32(&sh.refcnt[local])
	if rc == 0 {
		sh.mu.Unlock()
		panic(fmt.Sprintf("mem: DecRef on free frame %d", hfn))
	}
	if rc > 1 {
		atomic.StoreUint32(&sh.refcnt[local], rc-1)
		sh.mu.Unlock()
		return
	}
	atomic.StoreUint32(&sh.refcnt[local], 0)
	sh.frames[local] = nil
	sh.free = append(sh.free, local)
	sh.mu.Unlock()
	// Publish the slot before releasing the budget unit, so an allocator
	// that won the budget race can always find a slot.
	p.inUse.Add(^uint64(0))
	p.frees.Add(1)
}

// RefCount returns the current reference count of hfn (0 if free).
func (p *Pool) RefCount(hfn uint64) uint32 { return p.rc(hfn) }

// Shared reports whether hfn is mapped by more than one user.
func (p *Pool) Shared(hfn uint64) bool { return p.rc(hfn) > 1 }

// Data returns the backing bytes of hfn for reading, or nil if the frame is
// logically zero. Callers must not mutate the returned slice, and must hold
// a reference on hfn (the refcount protocol is what makes the unlocked
// element read safe).
func (p *Pool) Data(hfn uint64) []byte {
	if hfn >= p.capacity {
		return nil
	}
	sh, local := p.shardOf(hfn)
	return sh.frames[local]
}

// writable returns a materialized, mutable backing array for hfn. Callers
// hold the frame's sole reference (shared writes panic in WriteAt before
// reaching here), so the element store cannot race a legitimate reader.
func (p *Pool) writable(hfn uint64) []byte {
	sh, local := p.shardOf(hfn)
	b := sh.frames[local]
	if b == nil {
		b = make([]byte, isa.PageSize)
		sh.frames[local] = b
	}
	return b
}

// ReadAt copies frame contents at off into buf. Zero frames read as zeros.
func (p *Pool) ReadAt(hfn uint64, off int, buf []byte) {
	if b := p.Data(hfn); b != nil {
		copy(buf, b[off:])
		return
	}
	for i := range buf {
		buf[i] = 0
	}
}

// WriteAt copies buf into the frame at off. The caller must have resolved
// sharing first (see BreakCOW); writing a shared frame panics, because it
// would corrupt other VMs.
func (p *Pool) WriteAt(hfn uint64, off int, buf []byte) {
	if p.rc(hfn) > 1 {
		panic(fmt.Sprintf("mem: write to shared frame %d without COW break", hfn))
	}
	copy(p.writable(hfn)[off:], buf)
}

// BreakCOW gives the caller a private copy of hfn: if the frame is shared, a
// new frame is allocated, the contents copied, and the old reference
// dropped. It returns the (possibly new) frame number.
func (p *Pool) BreakCOW(hfn uint64) (uint64, error) {
	return p.BreakCOWNear(hfn, int(hfn%p.nshards))
}

// BreakCOWNear is BreakCOW with an allocation shard hint for the copy.
func (p *Pool) BreakCOWNear(hfn uint64, hint int) (uint64, error) {
	if p.rc(hfn) <= 1 {
		return hfn, nil
	}
	nfn, err := p.AllocNear(hint)
	if err != nil {
		return NoFrame, err
	}
	// Reading the shared source unlocked is safe: every other holder may
	// only read it too (a writer would have had to break COW first).
	if src := p.Data(hfn); src != nil {
		copy(p.writable(nfn), src)
	}
	p.DecRef(hfn)
	p.cowBreaks.Add(1)
	return nfn, nil
}

// ShareInto replaces victim with canonical: callers (the dedup scanner)
// guarantee both frames hold identical content. The victim's reference moves
// to canonical and the victim frame is freed. Returns the canonical hfn.
func (p *Pool) ShareInto(canonical, victim uint64) uint64 {
	if canonical == victim {
		return canonical
	}
	p.IncRef(canonical)
	p.DecRef(victim)
	p.sharedMerges.Add(1)
	return canonical
}

// IsZero reports whether the frame currently holds all-zero content.
func (p *Pool) IsZero(hfn uint64) bool {
	b := p.Data(hfn)
	if b == nil {
		return true
	}
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
