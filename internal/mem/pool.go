// Package mem provides the memory substrate of the simulated machine: a host
// physical frame pool shared by all VMs on a host, and per-VM guest-physical
// address spaces mapped onto it.
//
// The pool supports reference-counted frame sharing, which is the foundation
// for content-based page deduplication (internal/ksm), copy-on-write VM
// cloning (internal/snapshot) and ballooning (internal/balloon). Frames are
// allocated lazily: a frame with no backing storage reads as zeros, so
// freshly booted VMs cost no host memory for untouched pages — mirroring how
// a real hypervisor demand-populates guest RAM.
package mem

import (
	"errors"
	"fmt"

	"govisor/internal/isa"
)

// ErrOutOfFrames is returned when the host pool is exhausted. Overcommit
// policies (ballooning, dedup) exist to avoid hitting it.
var ErrOutOfFrames = errors.New("mem: host frame pool exhausted")

// NoFrame is the sentinel host frame number for "unmapped".
const NoFrame = ^uint64(0)

// Pool is a host physical memory: a fixed budget of 4 KiB frames with
// per-frame reference counts. Frame numbers are dense small integers, so
// the hot paths (every guest load/store resolves a frame) are slice
// lookups, not map probes.
type Pool struct {
	capacity uint64
	frames   [][]byte // hfn → backing bytes; nil ⇒ logically zero or free
	refcnt   []uint32
	free     []uint64 // recycled hfns
	inUse    uint64   // frames with refcnt > 0

	// Stats.
	allocs, frees, cowBreaks, sharedMerges uint64
}

// NewPool creates a host pool with the given capacity in frames.
func NewPool(capacityFrames uint64) *Pool {
	return &Pool{capacity: capacityFrames}
}

// Capacity returns the pool size in frames.
func (p *Pool) Capacity() uint64 { return p.capacity }

// InUse returns the number of live (refcnt > 0) frames.
func (p *Pool) InUse() uint64 { return p.inUse }

// Free returns the number of frames still allocatable.
func (p *Pool) Free() uint64 { return p.capacity - p.inUse }

// COWBreaks returns how many copy-on-write splits the pool has performed.
func (p *Pool) COWBreaks() uint64 { return p.cowBreaks }

// Merges returns how many frames have been merged by sharing.
func (p *Pool) Merges() uint64 { return p.sharedMerges }

// Alloc reserves a zero-filled frame and returns its frame number.
func (p *Pool) Alloc() (uint64, error) {
	if p.inUse >= p.capacity {
		return NoFrame, ErrOutOfFrames
	}
	var hfn uint64
	if n := len(p.free); n > 0 {
		hfn = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		hfn = uint64(len(p.frames))
		p.frames = append(p.frames, nil)
		p.refcnt = append(p.refcnt, 0)
	}
	p.refcnt[hfn] = 1
	p.inUse++
	p.allocs++
	return hfn, nil
}

func (p *Pool) rc(hfn uint64) uint32 {
	if hfn >= uint64(len(p.refcnt)) {
		return 0
	}
	return p.refcnt[hfn]
}

// IncRef adds a reference to hfn (sharing).
func (p *Pool) IncRef(hfn uint64) {
	if p.rc(hfn) == 0 {
		panic(fmt.Sprintf("mem: IncRef on free frame %d", hfn))
	}
	p.refcnt[hfn]++
}

// DecRef drops a reference; the frame is freed when the count reaches zero.
func (p *Pool) DecRef(hfn uint64) {
	rc := p.rc(hfn)
	if rc == 0 {
		panic(fmt.Sprintf("mem: DecRef on free frame %d", hfn))
	}
	if rc == 1 {
		p.refcnt[hfn] = 0
		p.frames[hfn] = nil
		p.free = append(p.free, hfn)
		p.inUse--
		p.frees++
		return
	}
	p.refcnt[hfn] = rc - 1
}

// RefCount returns the current reference count of hfn (0 if free).
func (p *Pool) RefCount(hfn uint64) uint32 { return p.rc(hfn) }

// Shared reports whether hfn is mapped by more than one user.
func (p *Pool) Shared(hfn uint64) bool { return p.rc(hfn) > 1 }

// Data returns the backing bytes of hfn for reading, or nil if the frame is
// logically zero. Callers must not mutate the returned slice.
func (p *Pool) Data(hfn uint64) []byte {
	if hfn >= uint64(len(p.frames)) {
		return nil
	}
	return p.frames[hfn]
}

// writable returns a materialized, mutable backing array for hfn.
func (p *Pool) writable(hfn uint64) []byte {
	b := p.frames[hfn]
	if b == nil {
		b = make([]byte, isa.PageSize)
		p.frames[hfn] = b
	}
	return b
}

// ReadAt copies frame contents at off into buf. Zero frames read as zeros.
func (p *Pool) ReadAt(hfn uint64, off int, buf []byte) {
	if b := p.Data(hfn); b != nil {
		copy(buf, b[off:])
		return
	}
	for i := range buf {
		buf[i] = 0
	}
}

// WriteAt copies buf into the frame at off. The caller must have resolved
// sharing first (see BreakCOW); writing a shared frame panics, because it
// would corrupt other VMs.
func (p *Pool) WriteAt(hfn uint64, off int, buf []byte) {
	if p.rc(hfn) > 1 {
		panic(fmt.Sprintf("mem: write to shared frame %d without COW break", hfn))
	}
	copy(p.writable(hfn)[off:], buf)
}

// BreakCOW gives the caller a private copy of hfn: if the frame is shared, a
// new frame is allocated, the contents copied, and the old reference
// dropped. It returns the (possibly new) frame number.
func (p *Pool) BreakCOW(hfn uint64) (uint64, error) {
	if p.rc(hfn) <= 1 {
		return hfn, nil
	}
	nfn, err := p.Alloc()
	if err != nil {
		return NoFrame, err
	}
	if src := p.frames[hfn]; src != nil {
		copy(p.writable(nfn), src)
	}
	p.DecRef(hfn)
	p.cowBreaks++
	return nfn, nil
}

// ShareInto replaces victim with canonical: callers (the dedup scanner)
// guarantee both frames hold identical content. The victim's reference moves
// to canonical and the victim frame is freed. Returns the canonical hfn.
func (p *Pool) ShareInto(canonical, victim uint64) uint64 {
	if canonical == victim {
		return canonical
	}
	p.IncRef(canonical)
	p.DecRef(victim)
	p.sharedMerges++
	return canonical
}

// IsZero reports whether the frame currently holds all-zero content.
func (p *Pool) IsZero(hfn uint64) bool {
	b := p.Data(hfn)
	if b == nil {
		return true
	}
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
