package mem

import (
	"bytes"
	"math/rand"
	"testing"

	"govisor/internal/isa"
)

// newSpanSpace builds a populated 8-page space for the span tests.
func newSpanSpace(t *testing.T, pages uint64) (*Pool, *GuestPhys) {
	t.Helper()
	p := NewPool(pages * 4)
	g := NewGuestPhys(p, pages<<isa.PageShift)
	if err := g.PopulateAll(); err != nil {
		t.Fatal(err)
	}
	return p, g
}

// spanHot reports whether the span memo currently holds a valid entry for
// gfn (white-box: the invalidation matrix asserts exactly which events kill
// entries).
func (g *GuestPhys) spanHot(gfn uint64) bool {
	e := &g.smemo[gfn&(spanSlots-1)]
	return e.gfn == gfn && e.epoch == g.WriteEpoch()
}

func TestSpanReadWriteRoundTrip(t *testing.T) {
	_, g := newSpanSpace(t, 8)
	// A span crossing three pages, unaligned on both ends.
	gpa := uint64(isa.PageSize - 100)
	msg := make([]byte, 2*isa.PageSize+200)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	if f := g.WriteSpan(gpa, msg); f != nil {
		t.Fatal(f)
	}
	got := make([]byte, len(msg))
	if f := g.ReadSpan(gpa, got); f != nil {
		t.Fatal(f)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("span round trip mismatch")
	}
	// The same bytes must be visible through the unmemoized reference path.
	ref := make([]byte, len(msg))
	if f := g.Read(gpa, ref); f != nil {
		t.Fatal(f)
	}
	if !bytes.Equal(ref, msg) {
		t.Fatal("reference read disagrees with span write")
	}
	if !g.spanHot(0) || !g.spanHot(1) || !g.spanHot(2) {
		t.Fatal("written pages should be memoized")
	}
}

func TestSpanFaultsMatchReference(t *testing.T) {
	_, g := newSpanSpace(t, 4)
	buf := make([]byte, 64)
	// Beyond RAM: both arms fault identically.
	f1 := g.WriteSpan(g.Size()-32, buf)
	f2 := g.Write(g.Size()-32, buf)
	if f1 == nil || f2 == nil || f1.Kind != f2.Kind {
		t.Fatalf("beyond-RAM: span %v vs ref %v", f1, f2)
	}
	// Write-protected page mid-span: the fault surfaces, and bytes before
	// the protected page land exactly as the reference arm would land them.
	g.WriteProtect(2, true)
	f1 = g.WriteSpan(1<<isa.PageShift, make([]byte, 2*isa.PageSize))
	if f1 == nil || f1.Kind != FaultWriteProt {
		t.Fatalf("wprot span fault = %v", f1)
	}
}

// TestSpanMemoInvalidationMatrix walks every event that must kill a span
// entry: each bumps the write epoch, and the next span access re-resolves.
func TestSpanMemoInvalidationMatrix(t *testing.T) {
	events := []struct {
		name string
		prep func(t *testing.T, p *Pool, g *GuestPhys)
		act  func(t *testing.T, p *Pool, g *GuestPhys)
	}{
		{"WriteProtect", nil, func(t *testing.T, p *Pool, g *GuestPhys) { g.WriteProtect(1, true) }},
		{"Unprotect", func(t *testing.T, p *Pool, g *GuestPhys) { g.WriteProtect(1, true); g.WriteProtect(1, false) }, func(t *testing.T, p *Pool, g *GuestPhys) { g.WriteProtect(1, false) }},
		{"Unmap", nil, func(t *testing.T, p *Pool, g *GuestPhys) { g.Unmap(1) }},
		{"Remap", nil, func(t *testing.T, p *Pool, g *GuestPhys) {
			hfn, err := p.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			g.Map(1, hfn)
		}},
		{"CollectDirty", nil, func(t *testing.T, p *Pool, g *GuestPhys) { g.CollectDirty(nil) }},
		{"MarkCOWIfMapped", nil, func(t *testing.T, p *Pool, g *GuestPhys) { g.MarkCOWIfMapped(1, g.Frame(1)) }},
		{"WriteRaw", nil, func(t *testing.T, p *Pool, g *GuestPhys) {
			if err := g.WriteRaw(1, make([]byte, isa.PageSize)); err != nil {
				t.Fatal(err)
			}
		}},
		{"PopulateElsewhere", func(t *testing.T, p *Pool, g *GuestPhys) { g.Unmap(3) }, func(t *testing.T, p *Pool, g *GuestPhys) {
			if err := g.Populate(3); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, ev := range events {
		t.Run(ev.name, func(t *testing.T) {
			p, g := newSpanSpace(t, 4)
			if ev.prep != nil {
				ev.prep(t, p, g)
			}
			seed := make([]byte, 128)
			for i := range seed {
				seed[i] = 0xAB
			}
			if f := g.WriteSpan(1<<isa.PageShift, seed); f != nil {
				t.Fatal(f)
			}
			if !g.spanHot(1) {
				t.Fatal("entry not installed")
			}
			ev.act(t, p, g)
			if g.spanHot(1) {
				t.Fatalf("%s left the span entry valid", ev.name)
			}
		})
	}
}

// TestSpanCOWWriteBreaks: a ReadSpan entry over a page that later turns COW
// must not serve a write hit — the write re-resolves, breaks COW and redirects
// to the private copy, leaving the shared frame untouched.
func TestSpanCOWWriteBreaks(t *testing.T) {
	p := NewPool(16)
	a := NewGuestPhys(p, 4<<isa.PageShift)
	b := NewGuestPhys(p, 4<<isa.PageShift)
	if err := a.PopulateAll(); err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte{0x5A}, isa.PageSize)
	if f := a.WriteSpan(1<<isa.PageShift, content); f != nil {
		t.Fatal(f)
	}
	// Share a's page into b (clone-style): both sides COW.
	hfn := a.Frame(1)
	p.IncRef(hfn)
	b.MapShared(1, hfn)
	a.MarkCOWIfMapped(1, hfn)

	// a's writable span entry must be dead (epoch moved), and a write must
	// break COW instead of scribbling the shared frame.
	if f := a.WriteSpan(1<<isa.PageShift, bytes.Repeat([]byte{0x11}, 64)); f != nil {
		t.Fatal(f)
	}
	if a.Frame(1) == hfn {
		t.Fatal("write did not break COW")
	}
	got := make([]byte, 64)
	if f := b.ReadSpan(1<<isa.PageShift, got); f != nil {
		t.Fatal(f)
	}
	if !bytes.Equal(got, content[:64]) {
		t.Fatal("shared frame corrupted through stale span entry")
	}
	if a.COWBreaks != 1 {
		t.Fatalf("COWBreaks = %d, want 1", a.COWBreaks)
	}
}

// TestSpanReadRawMemoized: ReadRaw shares the span memo; a migration-style
// page stream installs entries, and a guest store between reads is still
// visible through the hit (the entry aliases the live backing array).
func TestSpanReadRawMemoized(t *testing.T) {
	_, g := newSpanSpace(t, 4)
	if f := g.Write(2<<isa.PageShift, []byte("round-one")); f != nil {
		t.Fatal(f)
	}
	buf := make([]byte, isa.PageSize)
	g.ReadRaw(2, buf)
	if string(buf[:9]) != "round-one" {
		t.Fatalf("ReadRaw = %q", buf[:9])
	}
	if !g.spanHot(2) {
		t.Fatal("ReadRaw should install a span entry")
	}
	// In-place store (no remap): entry stays valid, content stays current.
	if f := g.Write(2<<isa.PageShift, []byte("round-two")); f != nil {
		t.Fatal(f)
	}
	g.ReadRaw(2, buf)
	if string(buf[:9]) != "round-two" {
		t.Fatalf("ReadRaw after store = %q", buf[:9])
	}
}

// TestSpanDifferentialVsNoSpanDMA drives random span/page operations through
// a fast space and a NoSpanDMA reference space and demands byte-identical
// RAM, faults and dirty accounting.
func TestSpanDifferentialVsNoSpanDMA(t *testing.T) {
	const pages = 8
	pf := NewPool(pages * 4)
	pr := NewPool(pages * 4)
	fast := NewGuestPhys(pf, pages<<isa.PageShift)
	ref := NewGuestPhys(pr, pages<<isa.PageShift)
	ref.SetNoSpanDMA(true)
	for _, g := range []*GuestPhys{fast, ref} {
		if err := g.PopulateAll(); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(42))
	size := pages << isa.PageShift
	for i := 0; i < 4000; i++ {
		gpa := rng.Uint64() % uint64(size+isa.PageSize) // sometimes beyond RAM
		n := rng.Intn(3*isa.PageSize) + 1
		switch rng.Intn(5) {
		case 0, 1:
			buf := make([]byte, n)
			rng.Read(buf)
			f1 := fast.WriteSpan(gpa, buf)
			f2 := ref.WriteSpan(gpa, buf)
			if (f1 == nil) != (f2 == nil) || (f1 != nil && f1.Kind != f2.Kind) {
				t.Fatalf("op %d: write fault %v vs %v", i, f1, f2)
			}
		case 2, 3:
			b1 := make([]byte, n)
			b2 := make([]byte, n)
			f1 := fast.ReadSpan(gpa, b1)
			f2 := ref.ReadSpan(gpa, b2)
			if (f1 == nil) != (f2 == nil) || (f1 != nil && f1.Kind != f2.Kind) {
				t.Fatalf("op %d: read fault %v vs %v", i, f1, f2)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("op %d: read divergence", i)
			}
		case 4:
			switch rng.Intn(4) {
			case 0:
				gfn := gpa >> isa.PageShift
				on := rng.Intn(2) == 0
				fast.WriteProtect(gfn, on)
				ref.WriteProtect(gfn, on)
			case 1:
				fast.CollectDirty(nil)
				ref.CollectDirty(nil)
			case 2:
				gfn := (gpa >> isa.PageShift) % pages
				fast.Unmap(gfn)
				ref.Unmap(gfn)
			case 3:
				gfn := (gpa >> isa.PageShift) % pages
				e1 := fast.Populate(gfn)
				e2 := ref.Populate(gfn)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("op %d: populate %v vs %v", i, e1, e2)
				}
			}
		}
	}
	// Final sweep: every page byte-identical, same dirty census.
	b1 := make([]byte, isa.PageSize)
	b2 := make([]byte, isa.PageSize)
	for gfn := uint64(0); gfn < pages; gfn++ {
		fast.ReadRaw(gfn, b1)
		ref.ReadRaw(gfn, b2)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("page %d diverged", gfn)
		}
		if fast.Dirty(gfn) != ref.Dirty(gfn) {
			t.Fatalf("page %d dirty bit diverged", gfn)
		}
	}
	if fast.DirtySets != ref.DirtySets {
		t.Fatalf("DirtySets %d vs %d", fast.DirtySets, ref.DirtySets)
	}
}
