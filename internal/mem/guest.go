package mem

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"

	"govisor/internal/isa"
)

// FaultKind classifies guest-physical access failures that escalate to the
// VMM (the software analogue of an EPT violation / host page fault).
type FaultKind uint8

// Guest-physical fault kinds.
const (
	FaultNone       FaultKind = iota
	FaultNotPresent           // gfn has no host frame (demand page, ballooned out, post-copy)
	FaultWriteProt            // page is write-protected by the VMM (shadow PT tracking, dirty logging)
	FaultBeyondRAM            // gpa outside guest RAM and outside any MMIO window
)

// Fault describes a guest-physical access failure.
type Fault struct {
	Kind   FaultKind
	GPA    uint64
	Access isa.Access
}

// Error implements error for plumbing through test helpers.
func (f *Fault) Error() string {
	return fmt.Sprintf("mem: %v fault at gpa %#x (%v)", f.Kind, f.GPA, f.Access)
}

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultNotPresent:
		return "not-present"
	case FaultWriteProt:
		return "write-protect"
	case FaultBeyondRAM:
		return "beyond-ram"
	}
	return "fault?"
}

const wordsPerBitmap = 64

// GuestPhys is one VM's guest-physical address space: a gfn → hfn mapping
// over the host pool, with per-page state used by the VMM's memory services:
//
//   - dirty bits (live migration, incremental snapshots)
//   - write-protect bits (shadow page-table coherence; pre-copy rounds)
//   - COW bits (pages shared with other VMs by dedup or cloning)
type GuestPhys struct {
	pool   *Pool
	npages uint64
	hfn    []uint64 // NoFrame when unmapped

	dirty   []uint64 // bitmaps, one bit per gfn
	wprot   []uint64
	cow     []uint64
	pinned  []uint64
	present uint64 // count of mapped pages

	// ver holds one content-version counter per page, bumped by every event
	// that can change what a read of the page returns: guest stores,
	// privileged VMM writes, demand population, ballooning unmap, migration
	// page copies, and remaps from dedup or cloning. Caches of derived page
	// content (the vCPU's decoded-instruction cache) validate with a single
	// compare against PageVersion instead of registering callbacks. Counters
	// are accessed atomically so a version observer on another goroutine
	// (a concurrent cache validation, a scanner probing for stability) never
	// races the owning VM's writes; everything else in GuestPhys remains
	// single-owner — one goroutine at a time, with cross-VM services
	// confined to epoch barriers.
	ver []uint64

	// hint is the preferred pool shard for this space's allocations; hosts
	// assign each VM a distinct hint so concurrent demand fills mostly stay
	// off each other's locks.
	hint int

	// rmemo is the read fast path: a tiny direct-mapped cache of resolved
	// readable page slices, validated per access against the page's content
	// version. Every event that could change what a read returns (stores,
	// unmap, remap, demand fill, COW break, migration copies) bumps the
	// version, so a hit proves the cached slice still is what resolveRead +
	// Pool.Data would produce — the fast path is exact, it only skips host
	// work. Reads have no guest-visible side effects (no stats, no dirty
	// bits), so nothing needs replaying on a hit.
	rmemo [rmemoSlots]readMemo

	// Stats visible to experiments.
	DirtySets   uint64 // writes that newly dirtied a page
	COWBreaks   uint64
	DemandFills uint64
}

// rmemoSlots is the read fast path's direct-mapped size; straight-line
// loops stream a handful of pages, the rest stay on the full path.
const rmemoSlots = 8

// readMemo caches one resolved readable page. data == nil means the page is
// present but logically zero (an unmaterialized frame). gfn == NoFrame marks
// an empty slot, so a zero-value memo can never falsely match gfn 0.
type readMemo struct {
	gfn  uint64
	ver  uint64
	data []byte
}

// NewGuestPhys creates an address space of size bytes (rounded up to pages)
// over pool. No pages are populated; callers either PopulateAll (eager) or
// let not-present faults drive demand population.
func NewGuestPhys(pool *Pool, size uint64) *GuestPhys {
	np := isa.PageRoundUp(size) >> isa.PageShift
	g := &GuestPhys{
		pool:   pool,
		npages: np,
		hfn:    make([]uint64, np),
		dirty:  make([]uint64, (np+wordsPerBitmap-1)/wordsPerBitmap),
		wprot:  make([]uint64, (np+wordsPerBitmap-1)/wordsPerBitmap),
		cow:    make([]uint64, (np+wordsPerBitmap-1)/wordsPerBitmap),
		pinned: make([]uint64, (np+wordsPerBitmap-1)/wordsPerBitmap),
		ver:    make([]uint64, np),
	}
	for i := range g.hfn {
		g.hfn[i] = NoFrame
	}
	for i := range g.rmemo {
		g.rmemo[i].gfn = NoFrame
	}
	return g
}

// Pool returns the backing host pool.
func (g *GuestPhys) Pool() *Pool { return g.pool }

// Pages returns the number of guest-physical pages.
func (g *GuestPhys) Pages() uint64 { return g.npages }

// Size returns the RAM size in bytes.
func (g *GuestPhys) Size() uint64 { return g.npages << isa.PageShift }

// Present returns the number of currently mapped pages.
func (g *GuestPhys) Present() uint64 { return g.present }

// Contains reports whether gpa falls inside guest RAM.
func (g *GuestPhys) Contains(gpa uint64) bool { return gpa>>isa.PageShift < g.npages }

func bit(bm []uint64, i uint64) bool { return bm[i/wordsPerBitmap]&(1<<(i%wordsPerBitmap)) != 0 }
func setBit(bm []uint64, i uint64)   { bm[i/wordsPerBitmap] |= 1 << (i % wordsPerBitmap) }
func clearBit(bm []uint64, i uint64) { bm[i/wordsPerBitmap] &^= 1 << (i % wordsPerBitmap) }

// PageVersion returns the content-version counter of gfn. Any two calls that
// return the same value bracket a window in which the page's readable content
// (including its presence) did not change, so derived caches keyed on it stay
// coherent across self-modifying code, ballooning, dedup remaps, COW breaks
// and migration page copies without invalidation callbacks.
func (g *GuestPhys) PageVersion(gfn uint64) uint64 {
	if gfn >= g.npages {
		return 0
	}
	return atomic.LoadUint64(&g.ver[gfn])
}

// bumpVersion invalidates derived caches of gfn's content. Callers guarantee
// gfn < npages.
func (g *GuestPhys) bumpVersion(gfn uint64) { atomic.AddUint64(&g.ver[gfn], 1) }

// SetAllocHint sets the preferred pool shard for this space's allocations.
func (g *GuestPhys) SetAllocHint(h int) { g.hint = h }

// Frame returns the host frame mapped at gfn, or NoFrame.
func (g *GuestPhys) Frame(gfn uint64) uint64 {
	if gfn >= g.npages {
		return NoFrame
	}
	return g.hfn[gfn]
}

// Map installs hfn at gfn, replacing (and releasing) any previous frame.
// The caller transfers its reference on hfn to the GuestPhys.
func (g *GuestPhys) Map(gfn, hfn uint64) {
	if gfn >= g.npages {
		panic(fmt.Sprintf("mem: Map gfn %d beyond %d", gfn, g.npages))
	}
	if old := g.hfn[gfn]; old != NoFrame {
		g.pool.DecRef(old)
	} else {
		g.present++
	}
	g.hfn[gfn] = hfn
	g.bumpVersion(gfn)
}

// MapShared installs hfn at gfn as a shared, copy-on-write page. The caller
// transfers its reference.
func (g *GuestPhys) MapShared(gfn, hfn uint64) {
	g.Map(gfn, hfn)
	setBit(g.cow, gfn)
}

// MarkCOWIfMapped sets the copy-on-write bit on gfn if it still maps hfn.
// The dedup scanner uses it to flip the canonical side of a merge to COW
// without racing a concurrent remap.
func (g *GuestPhys) MarkCOWIfMapped(gfn, hfn uint64) {
	if gfn < g.npages && g.hfn[gfn] == hfn {
		setBit(g.cow, gfn)
	}
}

// Unmap removes the mapping at gfn, releasing the frame reference (the
// balloon path). Subsequent access faults with FaultNotPresent.
func (g *GuestPhys) Unmap(gfn uint64) {
	if gfn >= g.npages || g.hfn[gfn] == NoFrame {
		return
	}
	g.pool.DecRef(g.hfn[gfn])
	g.hfn[gfn] = NoFrame
	g.present--
	clearBit(g.cow, gfn)
	clearBit(g.wprot, gfn)
	g.bumpVersion(gfn)
}

// Populate demand-allocates a zero frame at gfn if unmapped.
func (g *GuestPhys) Populate(gfn uint64) error {
	if gfn >= g.npages {
		return &Fault{Kind: FaultBeyondRAM, GPA: gfn << isa.PageShift}
	}
	if g.hfn[gfn] != NoFrame {
		return nil
	}
	hfn, err := g.pool.AllocNear(g.hint)
	if err != nil {
		return err
	}
	g.hfn[gfn] = hfn
	g.present++
	g.DemandFills++
	g.bumpVersion(gfn)
	return nil
}

// PopulateAll eagerly maps every page (boot-time allocation).
func (g *GuestPhys) PopulateAll() error {
	for gfn := uint64(0); gfn < g.npages; gfn++ {
		if err := g.Populate(gfn); err != nil {
			return err
		}
	}
	return nil
}

// WriteProtect marks gfn so the next write faults with FaultWriteProt (used
// by the shadow-paging engine to track guest page-table pages, and by
// pre-copy migration for dirty logging with page-granularity cost).
func (g *GuestPhys) WriteProtect(gfn uint64, on bool) {
	if gfn >= g.npages {
		return
	}
	if on {
		setBit(g.wprot, gfn)
	} else {
		clearBit(g.wprot, gfn)
	}
}

// WriteProtected reports the write-protect bit of gfn.
func (g *GuestPhys) WriteProtected(gfn uint64) bool {
	return gfn < g.npages && bit(g.wprot, gfn)
}

// Pin marks gfn as non-reclaimable: reclaim and swap policies must skip it.
// The VMM pins pages whose eviction would fault recursively (page-table
// pages walked by the MMU, firmware/parameter pages).
func (g *GuestPhys) Pin(gfn uint64) {
	if gfn < g.npages {
		setBit(g.pinned, gfn)
	}
}

// Unpin clears the pin.
func (g *GuestPhys) Unpin(gfn uint64) {
	if gfn < g.npages {
		clearBit(g.pinned, gfn)
	}
}

// Pinned reports whether gfn is exempt from reclaim.
func (g *GuestPhys) Pinned(gfn uint64) bool {
	return gfn < g.npages && bit(g.pinned, gfn)
}

// IsCOW reports whether gfn currently maps a shared frame.
func (g *GuestPhys) IsCOW(gfn uint64) bool {
	return gfn < g.npages && bit(g.cow, gfn)
}

// Dirty reports the dirty bit of gfn.
func (g *GuestPhys) Dirty(gfn uint64) bool {
	return gfn < g.npages && bit(g.dirty, gfn)
}

// MarkDirty sets the dirty bit explicitly (DMA by device models).
func (g *GuestPhys) MarkDirty(gfn uint64) {
	if gfn < g.npages && !bit(g.dirty, gfn) {
		setBit(g.dirty, gfn)
		g.DirtySets++
	}
}

// CollectDirty appends all dirty gfns to dst, clears their bits, and returns
// the extended slice. Migration calls this once per pre-copy round.
func (g *GuestPhys) CollectDirty(dst []uint64) []uint64 {
	for w, word := range g.dirty {
		for word != 0 {
			b := word & -word
			i := uint64(w*wordsPerBitmap) + uint64(bits.TrailingZeros64(b))
			if i < g.npages {
				dst = append(dst, i)
			}
			word &^= b
		}
		g.dirty[w] = 0
	}
	return dst
}

// DirtyCount returns the number of dirty pages without clearing.
func (g *GuestPhys) DirtyCount() uint64 {
	var n uint64
	for _, w := range g.dirty {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}

// resolveWrite prepares gfn for writing: presence, write-protection and COW
// are all checked here, so every store in the machine funnels through one
// place. It returns the writable hfn.
func (g *GuestPhys) resolveWrite(gpa uint64) (uint64, *Fault) {
	gfn := gpa >> isa.PageShift
	if gfn >= g.npages {
		return 0, &Fault{Kind: FaultBeyondRAM, GPA: gpa, Access: isa.AccWrite}
	}
	if bit(g.wprot, gfn) {
		return 0, &Fault{Kind: FaultWriteProt, GPA: gpa, Access: isa.AccWrite}
	}
	hfn := g.hfn[gfn]
	if hfn == NoFrame {
		return 0, &Fault{Kind: FaultNotPresent, GPA: gpa, Access: isa.AccWrite}
	}
	if bit(g.cow, gfn) {
		nfn, err := g.pool.BreakCOWNear(hfn, g.hint)
		if err != nil {
			// Pool exhausted: surface as not-present so the VMM's overcommit
			// policy can reclaim and retry.
			return 0, &Fault{Kind: FaultNotPresent, GPA: gpa, Access: isa.AccWrite}
		}
		g.hfn[gfn] = nfn
		clearBit(g.cow, gfn)
		g.COWBreaks++
		hfn = nfn
	}
	if !bit(g.dirty, gfn) {
		setBit(g.dirty, gfn)
		g.DirtySets++
	}
	g.bumpVersion(gfn)
	return hfn, nil
}

func (g *GuestPhys) resolveRead(gpa uint64, acc isa.Access) (uint64, *Fault) {
	gfn := gpa >> isa.PageShift
	if gfn >= g.npages {
		return 0, &Fault{Kind: FaultBeyondRAM, GPA: gpa, Access: acc}
	}
	hfn := g.hfn[gfn]
	if hfn == NoFrame {
		return 0, &Fault{Kind: FaultNotPresent, GPA: gpa, Access: acc}
	}
	return hfn, nil
}

// Read copies len(buf) bytes from gpa; the range may span pages.
func (g *GuestPhys) Read(gpa uint64, buf []byte) *Fault {
	for len(buf) > 0 {
		off := int(gpa & isa.PageMask)
		n := isa.PageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		hfn, f := g.resolveRead(gpa, isa.AccRead)
		if f != nil {
			return f
		}
		g.pool.ReadAt(hfn, off, buf[:n])
		buf = buf[n:]
		gpa += uint64(n)
	}
	return nil
}

// Write copies buf to gpa; the range may span pages.
func (g *GuestPhys) Write(gpa uint64, buf []byte) *Fault {
	for len(buf) > 0 {
		off := int(gpa & isa.PageMask)
		n := isa.PageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		hfn, f := g.resolveWrite(gpa)
		if f != nil {
			return f
		}
		g.pool.WriteAt(hfn, off, buf[:n])
		buf = buf[n:]
		gpa += uint64(n)
	}
	return nil
}

// ReadUint reads a naturally aligned size-byte little-endian value
// (size ∈ {1,2,4,8}). This is the interpreter's hot load path: the version-
// validated read memo serves repeat reads of stable pages without the
// frame-resolution walk (m.gfn is only ever a valid gfn, so a match proves
// the version index is in range before it is touched).
func (g *GuestPhys) ReadUint(gpa uint64, size int) (uint64, *Fault) {
	gfn := gpa >> isa.PageShift
	m := &g.rmemo[gfn&(rmemoSlots-1)]
	if m.gfn == gfn && atomic.LoadUint64(&g.ver[gfn]) == m.ver {
		return readUintFrom(m.data, gpa&isa.PageMask, size), nil
	}
	hfn, f := g.resolveRead(gpa, isa.AccRead)
	if f != nil {
		return 0, f
	}
	data := g.pool.Data(hfn)
	*m = readMemo{gfn: gfn, ver: atomic.LoadUint64(&g.ver[gfn]), data: data}
	return readUintFrom(data, gpa&isa.PageMask, size), nil
}

// readUintFrom decodes the value at off from a page slice; nil means the
// frame is logically zero.
func readUintFrom(data []byte, off uint64, size int) uint64 {
	if data == nil {
		return 0
	}
	switch size {
	case 1:
		return uint64(data[off])
	case 2:
		return uint64(binary.LittleEndian.Uint16(data[off:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(data[off:]))
	default:
		return binary.LittleEndian.Uint64(data[off:])
	}
}

// WriteUint writes a naturally aligned size-byte little-endian value.
// This is the interpreter's hot store path.
func (g *GuestPhys) WriteUint(gpa uint64, size int, v uint64) *Fault {
	hfn, f := g.resolveWrite(gpa)
	if f != nil {
		return f
	}
	data := g.pool.writable(hfn)
	off := gpa & isa.PageMask
	switch size {
	case 1:
		data[off] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(data[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(data[off:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(data[off:], v)
	}
	return nil
}

// WriteUintPriv is WriteUint for the VMM itself: it bypasses write-protect
// bits (the VMM emulating a guest store to a tracked page-table page) while
// still honouring COW and dirty tracking.
func (g *GuestPhys) WriteUintPriv(gpa uint64, size int, v uint64) *Fault {
	gfn := gpa >> isa.PageShift
	wasProt := g.WriteProtected(gfn)
	if wasProt {
		clearBit(g.wprot, gfn)
	}
	f := g.WriteUint(gpa, size, v)
	if wasProt {
		setBit(g.wprot, gfn)
	}
	return f
}

// ReadRaw is Read without fault handling for VMM-internal use (migration,
// snapshots) where pages are known present; unmapped pages read as zero.
func (g *GuestPhys) ReadRaw(gfn uint64, buf []byte) {
	hfn := g.Frame(gfn)
	if hfn == NoFrame {
		for i := range buf {
			buf[i] = 0
		}
		return
	}
	g.pool.ReadAt(hfn, 0, buf)
}

// WriteRaw installs page content at gfn, populating if needed, bypassing
// write-protection and COW semantics (migration restore path). The dirty
// bit is left untouched.
func (g *GuestPhys) WriteRaw(gfn uint64, buf []byte) error {
	if err := g.Populate(gfn); err != nil {
		return err
	}
	hfn := g.hfn[gfn]
	if g.pool.Shared(hfn) {
		nfn, err := g.pool.BreakCOWNear(hfn, g.hint)
		if err != nil {
			return err
		}
		g.hfn[gfn] = nfn
		clearBit(g.cow, gfn)
	}
	g.pool.WriteAt(g.hfn[gfn], 0, buf)
	g.bumpVersion(gfn)
	return nil
}

// Release returns every frame to the pool (VM teardown).
func (g *GuestPhys) Release() {
	for gfn := uint64(0); gfn < g.npages; gfn++ {
		g.Unmap(gfn)
	}
}
