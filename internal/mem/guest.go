package mem

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"

	"govisor/internal/isa"
)

// FaultKind classifies guest-physical access failures that escalate to the
// VMM (the software analogue of an EPT violation / host page fault).
type FaultKind uint8

// Guest-physical fault kinds.
const (
	FaultNone       FaultKind = iota
	FaultNotPresent           // gfn has no host frame (demand page, ballooned out, post-copy)
	FaultWriteProt            // page is write-protected by the VMM (shadow PT tracking, dirty logging)
	FaultBeyondRAM            // gpa outside guest RAM and outside any MMIO window
)

// Fault describes a guest-physical access failure.
type Fault struct {
	Kind   FaultKind
	GPA    uint64
	Access isa.Access
}

// Error implements error for plumbing through test helpers.
func (f *Fault) Error() string {
	return fmt.Sprintf("mem: %v fault at gpa %#x (%v)", f.Kind, f.GPA, f.Access)
}

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultNotPresent:
		return "not-present"
	case FaultWriteProt:
		return "write-protect"
	case FaultBeyondRAM:
		return "beyond-ram"
	}
	return "fault?"
}

const wordsPerBitmap = 64

// GuestPhys is one VM's guest-physical address space: a gfn → hfn mapping
// over the host pool, with per-page state used by the VMM's memory services:
//
//   - dirty bits (live migration, incremental snapshots)
//   - write-protect bits (shadow page-table coherence; pre-copy rounds)
//   - COW bits (pages shared with other VMs by dedup or cloning)
type GuestPhys struct {
	pool   *Pool
	npages uint64
	hfn    []uint64 // NoFrame when unmapped

	dirty   []uint64 // bitmaps, one bit per gfn
	wprot   []uint64
	cow     []uint64
	pinned  []uint64
	present uint64 // count of mapped pages

	// ver holds one content-version counter per page, bumped by every event
	// that can change what a read of the page returns: guest stores,
	// privileged VMM writes, demand population, ballooning unmap, migration
	// page copies, and remaps from dedup or cloning. Caches of derived page
	// content (the vCPU's decoded-instruction cache) validate with a single
	// compare against PageVersion instead of registering callbacks. Counters
	// are accessed atomically so a version observer on another goroutine
	// (a concurrent cache validation, a scanner probing for stability) never
	// races the owning VM's writes; everything else in GuestPhys remains
	// single-owner — one goroutine at a time, with cross-VM services
	// confined to epoch barriers.
	ver []uint64

	// hint is the preferred pool shard for this space's allocations; hosts
	// assign each VM a distinct hint so concurrent demand fills mostly stay
	// off each other's locks.
	hint int

	// rmemo is the read fast path: a tiny direct-mapped cache of resolved
	// readable page slices, validated per access against the page's content
	// version. Every event that could change what a read returns (stores,
	// unmap, remap, demand fill, COW break, migration copies) bumps the
	// version, so a hit proves the cached slice still is what resolveRead +
	// Pool.Data would produce — the fast path is exact, it only skips host
	// work. Reads have no guest-visible side effects (no stats, no dirty
	// bits), so nothing needs replaying on a hit.
	rmemo [rmemoSlots]readMemo

	// wmemo is the write fast path: a direct-mapped cache of resolveWrite
	// verdicts. A valid entry proves the page is present, not write-
	// protected, not copy-on-write, and already dirty, so a memoized store
	// skips every per-store bitmap test and writes the cached backing array
	// directly. Validity is guarded by wepoch, the write-epoch counter:
	// every event that can change a write verdict — CollectDirty clearing
	// dirty bits, write-protect flips, COW creation (dedup merges, clone
	// sharing) and breaks, map/unmap/populate remaps, migration restores —
	// bumps the epoch and thereby invalidates every entry at once. See
	// WriteUintMemo for the per-store version-bump coalescing the memo
	// layers on top.
	wmemo  [wmemoSlots]writeMemo
	wepoch uint64 // write-epoch counter (atomic)

	// smemo is the DMA fast path: a direct-mapped cache of resolved span
	// pages shared by ReadSpan, WriteSpan and ReadRaw. Like the write memo
	// it validates against wepoch, so one epoch bump invalidates every
	// entry; see span.go for the verdict argument. noSpanDMA selects the
	// page-by-page reference arm (Config.NoSpanDMA).
	smemo     [spanSlots]spanEntry
	noSpanDMA bool

	// Stats visible to experiments.
	DirtySets   uint64 // writes that newly dirtied a page
	COWBreaks   uint64
	DemandFills uint64

	// Host-side write-memo telemetry. Like the icache counters these have
	// no guest-visible meaning: no simulated statistic may depend on them.
	WMemoHits  uint64 // stores served by the memoized fast path
	WMemoFills uint64 // memo entries (re)installed by the slow path
}

// rmemoSlots is the read fast path's direct-mapped size; straight-line
// loops stream a handful of pages, the rest stay on the full path.
const rmemoSlots = 8

// readMemo caches one resolved readable page. data == nil means the page is
// present but logically zero (an unmaterialized frame). gfn == NoFrame marks
// an empty slot, so a zero-value memo can never falsely match gfn 0.
type readMemo struct {
	gfn  uint64
	ver  uint64
	data []byte
}

// wmemoSlots is the write fast path's direct-mapped size, matching the read
// memo: store bursts stream a handful of destination pages.
const wmemoSlots = 8

// writeMemo caches one resolved writable page. gfn is NoFrame while the slot
// is empty and is accessed atomically: a concurrent version observer
// (PageVersion on another goroutine) reads it to find the slot's page, while
// only the owning VM's goroutine fills it. epoch is the space's write epoch
// at fill time — the entry is valid only while they still match. armed is
// the version-coalescing state (atomic): 1 means a version bump covering
// every memoized store since the last observation of the page's version is
// already in place, so further memoized stores need not bump again;
// PageVersion clears it, forcing the next store to bump (and thereby keeps
// the "same version ⇒ unchanged content between the two observations"
// contract exact). data is the materialized writable backing array — never
// nil, because the fill path materializes the frame.
type writeMemo struct {
	gfn   uint64 // atomic
	epoch uint64
	armed uint32 // atomic
	data  []byte
}

// NewGuestPhys creates an address space of size bytes (rounded up to pages)
// over pool. No pages are populated; callers either PopulateAll (eager) or
// let not-present faults drive demand population.
func NewGuestPhys(pool *Pool, size uint64) *GuestPhys {
	np := isa.PageRoundUp(size) >> isa.PageShift
	g := &GuestPhys{
		pool:   pool,
		npages: np,
		hfn:    make([]uint64, np),
		dirty:  make([]uint64, (np+wordsPerBitmap-1)/wordsPerBitmap),
		wprot:  make([]uint64, (np+wordsPerBitmap-1)/wordsPerBitmap),
		cow:    make([]uint64, (np+wordsPerBitmap-1)/wordsPerBitmap),
		pinned: make([]uint64, (np+wordsPerBitmap-1)/wordsPerBitmap),
		ver:    make([]uint64, np),
	}
	for i := range g.hfn {
		g.hfn[i] = NoFrame
	}
	for i := range g.rmemo {
		g.rmemo[i].gfn = NoFrame
	}
	for i := range g.smemo {
		g.smemo[i].gfn = NoFrame
	}
	for i := range g.wmemo {
		// Published atomically like every other wmemo.gfn store: a memo
		// probe may race with construction once the GuestPhys escapes.
		atomic.StoreUint64(&g.wmemo[i].gfn, NoFrame)
	}
	return g
}

// Pool returns the backing host pool.
func (g *GuestPhys) Pool() *Pool { return g.pool }

// Pages returns the number of guest-physical pages.
func (g *GuestPhys) Pages() uint64 { return g.npages }

// Size returns the RAM size in bytes.
func (g *GuestPhys) Size() uint64 { return g.npages << isa.PageShift }

// Present returns the number of currently mapped pages.
func (g *GuestPhys) Present() uint64 { return g.present }

// Contains reports whether gpa falls inside guest RAM.
func (g *GuestPhys) Contains(gpa uint64) bool { return gpa>>isa.PageShift < g.npages }

func bit(bm []uint64, i uint64) bool { return bm[i/wordsPerBitmap]&(1<<(i%wordsPerBitmap)) != 0 }
func setBit(bm []uint64, i uint64)   { bm[i/wordsPerBitmap] |= 1 << (i % wordsPerBitmap) }
func clearBit(bm []uint64, i uint64) { bm[i/wordsPerBitmap] &^= 1 << (i % wordsPerBitmap) }

// PageVersion returns the content-version counter of gfn. Any two calls that
// return the same value bracket a window in which the page's readable content
// (including its presence) did not change, so derived caches keyed on it stay
// coherent across self-modifying code, ballooning, dedup remaps, COW breaks
// and migration page copies without invalidation callbacks.
//
// Observing a version ends the page's memoized write burst (the armed flag is
// cleared), so the next memoized store bumps the version again: the
// bracketing contract holds exactly — even though stores between two
// observations share a single bump — for any observation ordered with the
// owning VM's stores, i.e. on the owning goroutine (the icache's per-fetch
// validation) or across an epoch barrier (scanners, migration). Both sides
// of the handshake are atomic, so unordered concurrent calls remain
// race-free, but they get only that: an observation racing an in-flight
// memoized store may miss it, so mid-epoch cross-goroutine probes must not
// rely on the bracketing contract (the single-owner discipline already
// confines cross-VM services to barriers).
func (g *GuestPhys) PageVersion(gfn uint64) uint64 {
	if gfn >= g.npages {
		return 0
	}
	m := &g.wmemo[gfn&(wmemoSlots-1)]
	if atomic.LoadUint64(&m.gfn) == gfn && atomic.LoadUint32(&m.armed) != 0 {
		atomic.StoreUint32(&m.armed, 0)
	}
	return atomic.LoadUint64(&g.ver[gfn])
}

// bumpVersion invalidates derived caches of gfn's content. Callers guarantee
// gfn < npages.
func (g *GuestPhys) bumpVersion(gfn uint64) { atomic.AddUint64(&g.ver[gfn], 1) }

// bumpWriteEpoch invalidates every write-memo entry at once. Called by every
// event that can change a resolveWrite verdict; entries revalidate by
// comparing their fill-time epoch.
func (g *GuestPhys) bumpWriteEpoch() { atomic.AddUint64(&g.wepoch, 1) }

// WriteEpoch returns the current write-epoch counter. Exported for the
// invalidation tests and for concurrent observers probing stability; like
// PageVersion it is safe to call from any goroutine.
func (g *GuestPhys) WriteEpoch() uint64 { return atomic.LoadUint64(&g.wepoch) }

// SetAllocHint sets the preferred pool shard for this space's allocations.
func (g *GuestPhys) SetAllocHint(h int) { g.hint = h }

// Frame returns the host frame mapped at gfn, or NoFrame.
func (g *GuestPhys) Frame(gfn uint64) uint64 {
	if gfn >= g.npages {
		return NoFrame
	}
	return g.hfn[gfn]
}

// Map installs hfn at gfn, replacing (and releasing) any previous frame.
// The caller transfers its reference on hfn to the GuestPhys.
func (g *GuestPhys) Map(gfn, hfn uint64) {
	if gfn >= g.npages {
		panic(fmt.Sprintf("mem: Map gfn %d beyond %d", gfn, g.npages))
	}
	if old := g.hfn[gfn]; old != NoFrame {
		g.pool.DecRef(old)
	} else {
		g.present++
	}
	g.hfn[gfn] = hfn
	g.bumpVersion(gfn)
	g.bumpWriteEpoch()
}

// MapShared installs hfn at gfn as a shared, copy-on-write page. The caller
// transfers its reference.
func (g *GuestPhys) MapShared(gfn, hfn uint64) {
	g.Map(gfn, hfn)
	setBit(g.cow, gfn)
}

// MarkCOWIfMapped sets the copy-on-write bit on gfn if it still maps hfn.
// The dedup scanner uses it to flip the canonical side of a merge to COW
// without racing a concurrent remap. The content is unchanged (dedup merges
// only identical frames) so the page version stands, but the write verdict
// flips — the canonical owner's next store must break COW, so the write
// epoch must advance.
func (g *GuestPhys) MarkCOWIfMapped(gfn, hfn uint64) {
	if gfn < g.npages && g.hfn[gfn] == hfn {
		setBit(g.cow, gfn)
		g.bumpWriteEpoch()
	}
}

// Unmap removes the mapping at gfn, releasing the frame reference (the
// balloon path). Subsequent access faults with FaultNotPresent.
func (g *GuestPhys) Unmap(gfn uint64) {
	if gfn >= g.npages || g.hfn[gfn] == NoFrame {
		return
	}
	g.pool.DecRef(g.hfn[gfn])
	g.hfn[gfn] = NoFrame
	g.present--
	clearBit(g.cow, gfn)
	clearBit(g.wprot, gfn)
	g.bumpVersion(gfn)
	g.bumpWriteEpoch()
}

// Populate demand-allocates a zero frame at gfn if unmapped.
func (g *GuestPhys) Populate(gfn uint64) error {
	if gfn >= g.npages {
		return &Fault{Kind: FaultBeyondRAM, GPA: gfn << isa.PageShift}
	}
	if g.hfn[gfn] != NoFrame {
		return nil
	}
	hfn, err := g.pool.AllocNear(g.hint)
	if err != nil {
		return err
	}
	g.hfn[gfn] = hfn
	g.present++
	g.DemandFills++
	g.bumpVersion(gfn)
	g.bumpWriteEpoch()
	return nil
}

// PopulateAll eagerly maps every page (boot-time allocation).
func (g *GuestPhys) PopulateAll() error {
	for gfn := uint64(0); gfn < g.npages; gfn++ {
		if err := g.Populate(gfn); err != nil {
			return err
		}
	}
	return nil
}

// WriteProtect marks gfn so the next write faults with FaultWriteProt (used
// by the shadow-paging engine to track guest page-table pages, and by
// pre-copy migration for dirty logging with page-granularity cost). Either
// direction changes the write verdict, so the write epoch advances.
func (g *GuestPhys) WriteProtect(gfn uint64, on bool) {
	if gfn >= g.npages {
		return
	}
	if on {
		setBit(g.wprot, gfn)
	} else {
		clearBit(g.wprot, gfn)
	}
	g.bumpWriteEpoch()
}

// WriteProtected reports the write-protect bit of gfn.
func (g *GuestPhys) WriteProtected(gfn uint64) bool {
	return gfn < g.npages && bit(g.wprot, gfn)
}

// Pin marks gfn as non-reclaimable: reclaim and swap policies must skip it.
// The VMM pins pages whose eviction would fault recursively (page-table
// pages walked by the MMU, firmware/parameter pages).
func (g *GuestPhys) Pin(gfn uint64) {
	if gfn < g.npages {
		setBit(g.pinned, gfn)
	}
}

// Unpin clears the pin.
func (g *GuestPhys) Unpin(gfn uint64) {
	if gfn < g.npages {
		clearBit(g.pinned, gfn)
	}
}

// Pinned reports whether gfn is exempt from reclaim.
func (g *GuestPhys) Pinned(gfn uint64) bool {
	return gfn < g.npages && bit(g.pinned, gfn)
}

// IsCOW reports whether gfn currently maps a shared frame.
func (g *GuestPhys) IsCOW(gfn uint64) bool {
	return gfn < g.npages && bit(g.cow, gfn)
}

// Dirty reports the dirty bit of gfn.
func (g *GuestPhys) Dirty(gfn uint64) bool {
	return gfn < g.npages && bit(g.dirty, gfn)
}

// MarkDirty sets the dirty bit explicitly (DMA by device models).
func (g *GuestPhys) MarkDirty(gfn uint64) {
	if gfn < g.npages && !bit(g.dirty, gfn) {
		setBit(g.dirty, gfn)
		g.DirtySets++
	}
}

// CollectDirty appends all dirty gfns to dst, clears their bits, and returns
// the extended slice. Migration calls this once per pre-copy round. Clearing
// dirty bits changes no page content (no version bumps), but it voids the
// write memo's "already dirty" assumption: the epoch bump forces the next
// store to every page back through resolveWrite, which re-dirties it — so a
// post-round store always lands in the next round's dirty set.
func (g *GuestPhys) CollectDirty(dst []uint64) []uint64 {
	g.bumpWriteEpoch()
	for w, word := range g.dirty {
		for word != 0 {
			b := word & -word
			i := uint64(w*wordsPerBitmap) + uint64(bits.TrailingZeros64(b))
			if i < g.npages {
				dst = append(dst, i)
			}
			word &^= b
		}
		g.dirty[w] = 0
	}
	return dst
}

// DirtyCount returns the number of dirty pages without clearing.
func (g *GuestPhys) DirtyCount() uint64 {
	var n uint64
	for _, w := range g.dirty {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}

// resolveWrite prepares gfn for writing: presence, write-protection and COW
// are all checked here, so every store in the machine funnels through one
// place. It returns the writable hfn.
func (g *GuestPhys) resolveWrite(gpa uint64) (uint64, *Fault) {
	gfn := gpa >> isa.PageShift
	if gfn >= g.npages {
		return 0, &Fault{Kind: FaultBeyondRAM, GPA: gpa, Access: isa.AccWrite}
	}
	if bit(g.wprot, gfn) {
		return 0, &Fault{Kind: FaultWriteProt, GPA: gpa, Access: isa.AccWrite}
	}
	hfn := g.hfn[gfn]
	if hfn == NoFrame {
		return 0, &Fault{Kind: FaultNotPresent, GPA: gpa, Access: isa.AccWrite}
	}
	if bit(g.cow, gfn) {
		nfn, err := g.pool.BreakCOWNear(hfn, g.hint)
		if err != nil {
			// Pool exhausted: surface as not-present so the VMM's overcommit
			// policy can reclaim and retry.
			return 0, &Fault{Kind: FaultNotPresent, GPA: gpa, Access: isa.AccWrite}
		}
		g.hfn[gfn] = nfn
		clearBit(g.cow, gfn)
		g.COWBreaks++
		hfn = nfn
		// The frame under the gfn changed: any write-memo entry caching the
		// old backing array is stale.
		g.bumpWriteEpoch()
	}
	if !bit(g.dirty, gfn) {
		setBit(g.dirty, gfn)
		g.DirtySets++
	}
	g.bumpVersion(gfn)
	return hfn, nil
}

func (g *GuestPhys) resolveRead(gpa uint64, acc isa.Access) (uint64, *Fault) {
	gfn := gpa >> isa.PageShift
	if gfn >= g.npages {
		return 0, &Fault{Kind: FaultBeyondRAM, GPA: gpa, Access: acc}
	}
	hfn := g.hfn[gfn]
	if hfn == NoFrame {
		return 0, &Fault{Kind: FaultNotPresent, GPA: gpa, Access: acc}
	}
	return hfn, nil
}

// Read copies len(buf) bytes from gpa; the range may span pages.
func (g *GuestPhys) Read(gpa uint64, buf []byte) *Fault {
	for len(buf) > 0 {
		off := int(gpa & isa.PageMask)
		n := isa.PageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		hfn, f := g.resolveRead(gpa, isa.AccRead)
		if f != nil {
			return f
		}
		g.pool.ReadAt(hfn, off, buf[:n])
		buf = buf[n:]
		gpa += uint64(n)
	}
	return nil
}

// Write copies buf to gpa; the range may span pages.
func (g *GuestPhys) Write(gpa uint64, buf []byte) *Fault {
	for len(buf) > 0 {
		off := int(gpa & isa.PageMask)
		n := isa.PageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		hfn, f := g.resolveWrite(gpa)
		if f != nil {
			return f
		}
		g.pool.WriteAt(hfn, off, buf[:n])
		buf = buf[n:]
		gpa += uint64(n)
	}
	return nil
}

// ReadUint reads a naturally aligned size-byte little-endian value
// (size ∈ {1,2,4,8}). This is the interpreter's hot load path: the version-
// validated read memo serves repeat reads of stable pages without the
// frame-resolution walk (m.gfn is only ever a valid gfn, so a match proves
// the version index is in range before it is touched).
func (g *GuestPhys) ReadUint(gpa uint64, size int) (uint64, *Fault) {
	gfn := gpa >> isa.PageShift
	m := &g.rmemo[gfn&(rmemoSlots-1)]
	if m.gfn == gfn && atomic.LoadUint64(&g.ver[gfn]) == m.ver {
		return readUintFrom(m.data, gpa&isa.PageMask, size), nil
	}
	hfn, f := g.resolveRead(gpa, isa.AccRead)
	if f != nil {
		return 0, f
	}
	data := g.pool.Data(hfn)
	*m = readMemo{gfn: gfn, ver: atomic.LoadUint64(&g.ver[gfn]), data: data}
	return readUintFrom(data, gpa&isa.PageMask, size), nil
}

// ReadUintFast is ReadUint's hit-only probe: it serves the value when the
// read memo covers the page (which also proves the address is inside guest
// RAM — only successful in-RAM resolutions fill the memo, so callers may
// skip their Contains/MMIO range checks on a hit) and reports false
// otherwise, performing nothing. Same exactness argument as the hit path of
// ReadUint; the caller falls back to the full path on a miss.
func (g *GuestPhys) ReadUintFast(gpa uint64, size int) (uint64, bool) {
	gfn := gpa >> isa.PageShift
	m := &g.rmemo[gfn&(rmemoSlots-1)]
	if m.gfn == gfn && atomic.LoadUint64(&g.ver[gfn]) == m.ver {
		return readUintFrom(m.data, gpa&isa.PageMask, size), true
	}
	return 0, false
}

// readUintFrom decodes the value at off from a page slice; nil means the
// frame is logically zero.
func readUintFrom(data []byte, off uint64, size int) uint64 {
	if data == nil {
		return 0
	}
	switch size {
	case 1:
		return uint64(data[off])
	case 2:
		return uint64(binary.LittleEndian.Uint16(data[off:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(data[off:]))
	default:
		return binary.LittleEndian.Uint64(data[off:])
	}
}

// WriteUint writes a naturally aligned size-byte little-endian value.
// This is the unmemoized store path: every call resolves the page and bumps
// its version. Device models, VMM-internal writes and the NoWriteMemo
// differential arm all use it.
func (g *GuestPhys) WriteUint(gpa uint64, size int, v uint64) *Fault {
	hfn, f := g.resolveWrite(gpa)
	if f != nil {
		return f
	}
	writeUintTo(g.pool.writable(hfn), gpa&isa.PageMask, size, v)
	return nil
}

// WriteUintFast attempts the memoized store fast path: if the write memo
// proves the resolveWrite verdict for gpa's page is unchanged (entry valid
// at the current write epoch), the value is written directly to the cached
// backing array and the per-store bitmap tests, dirty accounting and MMIO
// range checks are all skipped — a valid entry implies the page is inside
// guest RAM, present, writable, private and already dirty, so the slow path
// would have reached the same byte with no guest-visible side effects
// beyond the write itself. The per-store version bump is coalesced: the
// first memoized store after an observation of the page's version bumps it
// (keeping derived caches exactly coherent), later stores in the same
// unobserved burst share that bump. Returns false on a miss; the caller
// falls back to the full path (and WriteUintMemo to refill).
func (g *GuestPhys) WriteUintFast(gpa uint64, size int, v uint64) bool {
	gfn := gpa >> isa.PageShift
	m := &g.wmemo[gfn&(wmemoSlots-1)]
	if atomic.LoadUint64(&m.gfn) != gfn || m.epoch != atomic.LoadUint64(&g.wepoch) {
		return false
	}
	if atomic.LoadUint32(&m.armed) == 0 {
		g.bumpVersion(gfn)
		atomic.StoreUint32(&m.armed, 1)
	}
	writeUintTo(m.data, gpa&isa.PageMask, size, v)
	g.WMemoHits++
	return true
}

// WriteUintMemo is the complete memoized store path — the fast probe
// followed by the fill — for callers that have not already probed
// (the invalidation tests and the fuzz oracle drive it directly).
func (g *GuestPhys) WriteUintMemo(gpa uint64, size int, v uint64) *Fault {
	if g.WriteUintFast(gpa, size, v) {
		return nil
	}
	return g.WriteUintFill(gpa, size, v)
}

// WriteUintFill is WriteUint installing a write-memo entry for the page, so
// subsequent stores to it hit WriteUintFast. Behaviour and guest-visible
// side effects are identical to WriteUint — resolveWrite runs in full,
// including COW breaks, dirty accounting and the version bump; only the
// memo bookkeeping is added. This is the interpreter's store slow path when
// the write memo is enabled: the caller has already probed WriteUintFast,
// so the fill does not re-probe.
func (g *GuestPhys) WriteUintFill(gpa uint64, size int, v uint64) *Fault {
	gfn := gpa >> isa.PageShift
	hfn, f := g.resolveWrite(gpa)
	if f != nil {
		return f
	}
	data := g.pool.writable(hfn)
	m := &g.wmemo[gfn&(wmemoSlots-1)]
	atomic.StoreUint64(&m.gfn, gfn)
	m.epoch = atomic.LoadUint64(&g.wepoch)
	m.data = data
	// resolveWrite just bumped the version for this store; that bump covers
	// the burst until the next observation.
	atomic.StoreUint32(&m.armed, 1)
	g.WMemoFills++
	writeUintTo(data, gpa&isa.PageMask, size, v)
	return nil
}

// writeUintTo encodes the value at off into a materialized page slice.
func writeUintTo(data []byte, off uint64, size int, v uint64) {
	switch size {
	case 1:
		data[off] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(data[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(data[off:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(data[off:], v)
	}
}

// WriteUintPriv is WriteUint for the VMM itself: it bypasses write-protect
// bits (the VMM emulating a guest store to a tracked page-table page) while
// still honouring COW and dirty tracking. The temporary protection toggle
// deliberately does not bump the write epoch: a protected page can hold no
// valid memo entry (the WriteProtect that protected it already bumped past
// any fill, and resolveWrite faults on protected pages so none forms while
// it stays protected), WriteUint never installs one, and the space is
// single-owner so no memoized store can interleave inside the window —
// bumping here would only flush the whole memo on every emulated PT write
// under shadow paging.
func (g *GuestPhys) WriteUintPriv(gpa uint64, size int, v uint64) *Fault {
	gfn := gpa >> isa.PageShift
	wasProt := g.WriteProtected(gfn)
	if wasProt {
		clearBit(g.wprot, gfn)
	}
	f := g.WriteUint(gpa, size, v)
	if wasProt {
		setBit(g.wprot, gfn)
	}
	return f
}

// ReadRaw is Read without fault handling for VMM-internal use (migration,
// snapshots) where pages are known present; unmapped pages read as zero. It
// probes the span memo first — the migration page copier streams every page
// of a round through here, and a valid entry serves the page as one memcpy —
// installing on miss so the next round's copy of a stable page hits.
func (g *GuestPhys) ReadRaw(gfn uint64, buf []byte) {
	e := &g.smemo[gfn&(spanSlots-1)]
	if e.gfn == gfn && e.epoch == atomic.LoadUint64(&g.wepoch) {
		copy(buf, e.data)
		return
	}
	hfn := g.Frame(gfn)
	if hfn == NoFrame {
		for i := range buf {
			buf[i] = 0
		}
		return
	}
	if data := g.pool.Data(hfn); data != nil {
		copy(buf, data)
		if !g.noSpanDMA {
			*e = spanEntry{gfn: gfn, epoch: atomic.LoadUint64(&g.wepoch), data: data}
		}
		return
	}
	for i := range buf {
		buf[i] = 0
	}
}

// WriteRaw installs page content at gfn, populating if needed, bypassing
// write-protection and COW semantics (migration restore path). The dirty
// bit is left untouched. The write epoch advances unconditionally — the
// frame may change under the gfn (COW split), and migration restores are
// cold enough that the conservative bump costs nothing.
func (g *GuestPhys) WriteRaw(gfn uint64, buf []byte) error {
	if err := g.Populate(gfn); err != nil {
		return err
	}
	hfn := g.hfn[gfn]
	if g.pool.Shared(hfn) {
		nfn, err := g.pool.BreakCOWNear(hfn, g.hint)
		if err != nil {
			return err
		}
		g.hfn[gfn] = nfn
		clearBit(g.cow, gfn)
	}
	g.pool.WriteAt(g.hfn[gfn], 0, buf)
	g.bumpVersion(gfn)
	g.bumpWriteEpoch()
	return nil
}

// Release returns every frame to the pool (VM teardown).
func (g *GuestPhys) Release() {
	for gfn := uint64(0); gfn < g.npages; gfn++ {
		g.Unmap(gfn)
	}
}
