package mem

import (
	"testing"

	"govisor/internal/isa"
)

// TestReadMemoCoherence: the version-validated read fast path must never
// serve stale data. Every mutation path — stores, privileged writes, raw
// migration copies, unmap/repopulate, remap — must be observed by the very
// next ReadUint of the page.
func TestReadMemoCoherence(t *testing.T) {
	p := NewPool(64)
	g := NewGuestPhys(p, 16*isa.PageSize)
	addr := uint64(5*isa.PageSize + 64)

	if err := g.Populate(5); err != nil {
		t.Fatal(err)
	}
	// Prime the memo, then mutate through each path and re-read.
	if v, f := g.ReadUint(addr, 8); f != nil || v != 0 {
		t.Fatalf("fresh page read %d (%v)", v, f)
	}
	if f := g.WriteUint(addr, 8, 0xAB); f != nil {
		t.Fatal(f)
	}
	if v, _ := g.ReadUint(addr, 8); v != 0xAB {
		t.Fatalf("after WriteUint read %#x, want 0xAB", v)
	}
	if f := g.WriteUintPriv(addr, 8, 0xCD); f != nil {
		t.Fatal(f)
	}
	if v, _ := g.ReadUint(addr, 8); v != 0xCD {
		t.Fatalf("after WriteUintPriv read %#x, want 0xCD", v)
	}
	page := make([]byte, isa.PageSize)
	page[64] = 0xEF
	if err := g.WriteRaw(5, page); err != nil {
		t.Fatal(err)
	}
	if v, _ := g.ReadUint(addr, 8); v != 0xEF {
		t.Fatalf("after WriteRaw read %#x, want 0xEF", v)
	}

	// Unmap: the next read must fault, not hit the memo.
	g.Unmap(5)
	if _, f := g.ReadUint(addr, 8); f == nil || f.Kind != FaultNotPresent {
		t.Fatalf("read of unmapped page: fault %v, want not-present", f)
	}
	// Repopulate: reads as zero again.
	if err := g.Populate(5); err != nil {
		t.Fatal(err)
	}
	if v, f := g.ReadUint(addr, 8); f != nil || v != 0 {
		t.Fatalf("after repopulate read %d (%v), want 0", v, f)
	}

	// Remap to a frame with different content (the dedup/migration shape).
	hfn, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	p.WriteAt(hfn, 64, []byte{0x77})
	if v, _ := g.ReadUint(addr, 8); v != 0 {
		t.Fatal("memo must still see the old frame before the remap")
	}
	g.Map(5, hfn)
	if v, _ := g.ReadUint(addr, 8); v != 0x77 {
		t.Fatalf("after remap read %#x, want 0x77", v)
	}
}

// TestReadMemoNeverFalselyHitsGfnZero: a zero-value memo slot must not match
// gfn 0 of an unmapped page — the very first read of an untouched space must
// fault like it always did.
func TestReadMemoNeverFalselyHitsGfnZero(t *testing.T) {
	g := NewGuestPhys(NewPool(8), 4*isa.PageSize)
	if _, f := g.ReadUint(0, 8); f == nil || f.Kind != FaultNotPresent {
		t.Fatalf("read of never-mapped gfn 0: fault %v, want not-present", f)
	}
}

// TestReadMemoAliasedSlots: pages that collide in the direct-mapped memo
// must displace each other without cross-talk.
func TestReadMemoAliasedSlots(t *testing.T) {
	g := NewGuestPhys(NewPool(64), 32*isa.PageSize)
	a := uint64(2)      // slot 2
	b := a + rmemoSlots // same slot
	for _, gfn := range []uint64{a, b} {
		if err := g.Populate(gfn); err != nil {
			t.Fatal(err)
		}
	}
	if f := g.WriteUint(a*isa.PageSize, 8, 0xAAAA); f != nil {
		t.Fatal(f)
	}
	if f := g.WriteUint(b*isa.PageSize, 8, 0xBBBB); f != nil {
		t.Fatal(f)
	}
	for i := 0; i < 4; i++ {
		if v, _ := g.ReadUint(a*isa.PageSize, 8); v != 0xAAAA {
			t.Fatalf("page a read %#x", v)
		}
		if v, _ := g.ReadUint(b*isa.PageSize, 8); v != 0xBBBB {
			t.Fatalf("page b read %#x", v)
		}
	}
}
