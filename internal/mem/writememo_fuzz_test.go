package mem

import (
	"bytes"
	"testing"

	"govisor/internal/isa"
)

// fuzzSide is one arm of the write-memo differential fuzz: a pool with a
// primary space (the one being stored into) and a peer space for dedup-style
// sharing. The memo arm stores through WriteUintMemo/WriteUintFast; the
// oracle arm stores through the unmemoized WriteUint. Everything else is
// driven identically, so any observable divergence is a memo bug.
type fuzzSide struct {
	pool *Pool
	g    *GuestPhys
	peer *GuestPhys
	memo bool
}

const fuzzPages = 8

func newFuzzSide(memo bool) *fuzzSide {
	p := NewPool(512)
	return &fuzzSide{
		pool: p,
		g:    NewGuestPhys(p, fuzzPages*isa.PageSize),
		peer: NewGuestPhys(p, fuzzPages*isa.PageSize),
		memo: memo,
	}
}

func (s *fuzzSide) store(gpa uint64, v uint64) *Fault {
	if s.memo {
		return s.g.WriteUintMemo(gpa, 8, v)
	}
	return s.g.WriteUint(gpa, 8, v)
}

// FuzzWriteMemo drives randomized interleavings of stores, CollectDirty,
// write-protect flips, COW sharing (KSM-merge shape), Unmap and Populate
// against a memo-off oracle. After every operation the two arms must agree
// on fault kinds, read values and dirty sets; at the end, on every page's
// content, presence, dirty bit and the guest-visible memory statistics.
func FuzzWriteMemo(f *testing.F) {
	// Seeds covering each opcode and a few adversarial interleavings
	// (store→collect→store, share→store, protect→store→unprotect→store).
	f.Add([]byte{0, 1, 8, 0, 2, 0, 0, 1, 16, 7, 0, 0})
	f.Add([]byte{6, 2, 0, 0, 2, 8, 4, 2, 3, 0, 2, 24, 7, 2, 0})
	f.Add([]byte{6, 3, 0, 3, 3, 0, 0, 3, 8, 3, 3, 1, 0, 3, 8, 7, 3, 0})
	f.Add([]byte{6, 1, 0, 6, 2, 0, 0, 1, 8, 4, 1, 2, 0, 2, 8, 7, 2, 0, 5, 1, 0, 0, 1, 8})
	f.Add([]byte{0, 0, 0, 2, 0, 0, 0, 0, 8, 2, 0, 0, 0, 0, 16, 2, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		memo := newFuzzSide(true)
		oracle := newFuzzSide(false)
		sides := []*fuzzSide{memo, oracle}

		var mDirty, oDirty []uint64
		for i := 0; i+2 < len(data) && i < 3*512; i += 3 {
			op, a, b := data[i], data[i+1], data[i+2]
			gfn := uint64(a) % fuzzPages
			off := uint64(b) % (isa.PageSize / 8) * 8
			gpa := gfn*isa.PageSize + off
			val := uint64(i)<<8 | uint64(b)
			switch op % 8 {
			case 0, 1: // store (double weight: the hot op)
				fm := memo.store(gpa, val)
				fo := oracle.store(gpa, val)
				if (fm == nil) != (fo == nil) || (fm != nil && fm.Kind != fo.Kind) {
					t.Fatalf("op %d: store fault diverged: memo %v oracle %v", i, fm, fo)
				}
			case 2: // CollectDirty
				mDirty = memo.g.CollectDirty(mDirty[:0])
				oDirty = oracle.g.CollectDirty(oDirty[:0])
				if len(mDirty) != len(oDirty) {
					t.Fatalf("op %d: dirty sets diverged: %v vs %v", i, mDirty, oDirty)
				}
				for j := range mDirty {
					if mDirty[j] != oDirty[j] {
						t.Fatalf("op %d: dirty sets diverged: %v vs %v", i, mDirty, oDirty)
					}
				}
			case 3: // write-protect flip
				for _, s := range sides {
					s.g.WriteProtect(gfn, b%2 == 0)
				}
			case 4: // KSM-merge shape: peer maps the primary's frame, primary flips COW
				peerGfn := uint64(b) % fuzzPages
				for _, s := range sides {
					canon := s.g.Frame(gfn)
					if canon == NoFrame {
						continue
					}
					s.pool.IncRef(canon)
					s.peer.MapShared(peerGfn, canon)
					s.g.MarkCOWIfMapped(gfn, canon)
				}
			case 5: // balloon-style unmap
				for _, s := range sides {
					s.g.Unmap(gfn)
				}
			case 6: // demand populate
				em := memo.g.Populate(gfn)
				eo := oracle.g.Populate(gfn)
				if (em == nil) != (eo == nil) {
					t.Fatalf("op %d: populate diverged: %v vs %v", i, em, eo)
				}
			default: // read (exercises the read memo against coalesced bumps)
				vm, fm := memo.g.ReadUint(gpa, 8)
				vo, fo := oracle.g.ReadUint(gpa, 8)
				if (fm == nil) != (fo == nil) || vm != vo {
					t.Fatalf("op %d: read diverged: %#x/%v vs %#x/%v", i, vm, fm, vo, fo)
				}
			}
		}

		// Final state: both arms must be indistinguishable in everything
		// guest-visible.
		mg, og := memo.g, oracle.g
		if mg.Present() != og.Present() || mg.DirtySets != og.DirtySets ||
			mg.COWBreaks != og.COWBreaks || mg.DemandFills != og.DemandFills {
			t.Fatalf("stats diverged: memo present=%d dirty=%d cow=%d fills=%d, oracle present=%d dirty=%d cow=%d fills=%d",
				mg.Present(), mg.DirtySets, mg.COWBreaks, mg.DemandFills,
				og.Present(), og.DirtySets, og.COWBreaks, og.DemandFills)
		}
		bufM := make([]byte, isa.PageSize)
		bufO := make([]byte, isa.PageSize)
		for gfn := uint64(0); gfn < fuzzPages; gfn++ {
			if (mg.Frame(gfn) == NoFrame) != (og.Frame(gfn) == NoFrame) {
				t.Fatalf("gfn %d: presence diverged", gfn)
			}
			if mg.Dirty(gfn) != og.Dirty(gfn) {
				t.Fatalf("gfn %d: dirty bit diverged", gfn)
			}
			mg.ReadRaw(gfn, bufM)
			og.ReadRaw(gfn, bufO)
			if !bytes.Equal(bufM, bufO) {
				t.Fatalf("gfn %d: page content diverged", gfn)
			}
			memo.peer.ReadRaw(gfn, bufM)
			oracle.peer.ReadRaw(gfn, bufO)
			if !bytes.Equal(bufM, bufO) {
				t.Fatalf("peer gfn %d: page content diverged (memoized store leaked through a shared frame?)", gfn)
			}
		}
	})
}
