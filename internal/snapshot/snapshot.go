// Package snapshot implements whole-VM state capture: serialization of the
// architectural CPU state and memory image to a portable binary format
// (save/restore, disaster recovery), and instant copy-on-write cloning of a
// running VM on the same host (the rapid-provisioning path of experiment
// T14).
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"govisor/internal/core"
	"govisor/internal/isa"
	"govisor/internal/mem"
)

// magic identifies govisor snapshot streams.
const magic = 0x47565356 // "GVSV"

const version = 1

// header fields are written as little-endian u64 unless noted.

// Save serializes the VM (which should be paused or halted for a consistent
// image) to w. Only present pages are stored; zero pages are elided, so
// sparse guests stay small.
func Save(vm *core.VM, w io.Writer) error {
	bw := bufio.NewWriter(w)
	cpu := vm.CPU

	var scratch [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		bw.Write(scratch[:])
	}

	wu(magic)
	wu(version)
	wu(uint64(vm.Mode))
	wu(vm.Mem.Pages())

	// CPU: 32 GPRs, PC, priv, cycles, instret, CSR file.
	for _, x := range cpu.X {
		wu(x)
	}
	wu(cpu.PC)
	wu(uint64(cpu.Priv))
	wu(cpu.Cycles)
	wu(cpu.Instret)
	csr := cpu.CSR
	for _, v := range []uint64{
		csr.Sstatus, csr.Sie, csr.Stvec, csr.Sscratch, csr.Sepc,
		csr.Scause, csr.Stval, csr.Sip, csr.Stimecmp, csr.Satp,
	} {
		wu(v)
	}

	// Memory: count, then (gfn, page) pairs for non-zero present pages.
	var pages []uint64
	buf := make([]byte, isa.PageSize)
	for gfn := uint64(0); gfn < vm.Mem.Pages(); gfn++ {
		hfn := vm.Mem.Frame(gfn)
		if hfn == mem.NoFrame || vm.Mem.Pool().IsZero(hfn) {
			continue
		}
		pages = append(pages, gfn)
	}
	wu(uint64(len(pages)))
	for _, gfn := range pages {
		wu(gfn)
		vm.Mem.ReadRaw(gfn, buf)
		bw.Write(buf)
	}
	return bw.Flush()
}

// Restore loads a snapshot stream into a freshly created (un-booted) VM of
// at least the snapshot's memory size and marks it running.
//
// The stream is fully parsed and validated into temporaries before any VM
// state is touched: a truncated, corrupted, or version-skewed stream is an
// error that leaves the VM exactly as it was — never a panic, never a
// half-adopted image.
func Restore(vm *core.VM, r io.Reader) error {
	if vm.State != core.StateCreated {
		return fmt.Errorf("snapshot: restore target is %v, want freshly created", vm.State)
	}
	br := bufio.NewReader(r)
	var scratch [8]byte
	ru := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	need := func(what string, want uint64) error {
		got, err := ru()
		if err != nil {
			return fmt.Errorf("snapshot: reading %s: %w", what, err)
		}
		if got != want {
			return fmt.Errorf("snapshot: %s = %#x, want %#x", what, got, want)
		}
		return nil
	}
	if err := need("magic", magic); err != nil {
		return err
	}
	if err := need("version", version); err != nil {
		return err
	}
	modev, err := ru()
	if err != nil {
		return err
	}
	if core.Mode(modev) != vm.Mode {
		return fmt.Errorf("snapshot: mode %v does not match VM mode %v", core.Mode(modev), vm.Mode)
	}
	npages, err := ru()
	if err != nil {
		return err
	}
	if npages > vm.Mem.Pages() {
		return fmt.Errorf("snapshot: image has %d pages, VM has %d", npages, vm.Mem.Pages())
	}

	// Stage the CPU image.
	var x [32]uint64
	for i := range x {
		v, err := ru()
		if err != nil {
			return fmt.Errorf("snapshot: reading GPRs: %w", err)
		}
		x[i] = v
	}
	vals := make([]uint64, 14)
	for i := range vals {
		v, err := ru()
		if err != nil {
			return fmt.Errorf("snapshot: reading CPU state: %w", err)
		}
		vals[i] = v
	}
	if vals[1] > 3 {
		return fmt.Errorf("snapshot: privilege %d out of range", vals[1])
	}

	// Stage the memory image. Save emits each present page at most once,
	// so count is bounded by npages and gfns must be in-range and unique —
	// anything else is corruption, caught here before a single page lands.
	count, err := ru()
	if err != nil {
		return fmt.Errorf("snapshot: reading page count: %w", err)
	}
	if count > npages {
		return fmt.Errorf("snapshot: page count %d exceeds image size %d", count, npages)
	}
	type staged struct {
		gfn  uint64
		data []byte
	}
	pages := make([]staged, 0, count)
	seen := make([]byte, (npages+7)/8)
	for i := uint64(0); i < count; i++ {
		gfn, err := ru()
		if err != nil {
			return fmt.Errorf("snapshot: reading page %d gfn: %w", i, err)
		}
		if gfn >= npages {
			return fmt.Errorf("snapshot: gfn %d outside image of %d pages", gfn, npages)
		}
		if seen[gfn>>3]&(1<<(gfn&7)) != 0 {
			return fmt.Errorf("snapshot: gfn %d appears twice", gfn)
		}
		seen[gfn>>3] |= 1 << (gfn & 7)
		buf := make([]byte, isa.PageSize)
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("snapshot: page %d content: %w", gfn, err)
		}
		pages = append(pages, staged{gfn, buf})
	}

	// Everything parsed and validated: apply atomically.
	cpu := vm.CPU
	cpu.X = x
	cpu.PC = vals[0]
	cpu.Priv = uint8(vals[1])
	cpu.Cycles = vals[2]
	cpu.Instret = vals[3]
	cpu.CSR.Sstatus = vals[4]
	cpu.CSR.Sie = vals[5]
	cpu.CSR.Stvec = vals[6]
	cpu.CSR.Sscratch = vals[7]
	cpu.CSR.Sepc = vals[8]
	cpu.CSR.Scause = vals[9]
	cpu.CSR.Stval = vals[10]
	cpu.CSR.Sip = vals[11]
	cpu.CSR.Stimecmp = vals[12]
	cpu.WriteCSR(isa.CSRSatp, vals[13])
	for _, p := range pages {
		if err := vm.Mem.WriteRaw(p.gfn, p.data); err != nil {
			return fmt.Errorf("snapshot: applying gfn %d: %w", p.gfn, err)
		}
	}
	vm.State = core.StateRunning
	return nil
}

// Clone instantly forks src into dst on the same host pool: every present
// page is shared copy-on-write, so the clone costs no page copies up front
// and splits lazily as either side writes. dst must be freshly created with
// the same configuration.
func Clone(src, dst *core.VM) error {
	if src == dst {
		return fmt.Errorf("snapshot: clone source and destination are the same VM")
	}
	if src.Mem == dst.Mem {
		return fmt.Errorf("snapshot: clone source and destination share a guest-physical space")
	}
	if dst.State != core.StateCreated {
		return fmt.Errorf("snapshot: clone destination is %v", dst.State)
	}
	if dst.Mem.Pages() < src.Mem.Pages() {
		return fmt.Errorf("snapshot: clone destination too small")
	}
	if dst.Mem.Pool() != src.Mem.Pool() {
		return fmt.Errorf("snapshot: clone requires a shared host pool")
	}
	pool := src.Mem.Pool()
	for gfn := uint64(0); gfn < src.Mem.Pages(); gfn++ {
		hfn := src.Mem.Frame(gfn)
		if hfn == mem.NoFrame {
			continue
		}
		pool.IncRef(hfn)
		dst.Mem.MapShared(gfn, hfn)
		// The source side becomes COW too: its next write must split.
		src.Mem.MarkCOWIfMapped(gfn, hfn)
	}
	dst.AdoptState(src)
	return nil
}
