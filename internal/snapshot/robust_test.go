package snapshot

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"govisor/internal/core"
	"govisor/internal/isa"
	"govisor/internal/mem"
)

// vmFingerprint digests everything Restore would touch, so tests can prove
// a rejected stream changed nothing.
func vmFingerprint(vm *core.VM) string {
	var b bytes.Buffer
	cpu := vm.CPU
	for _, x := range cpu.X {
		binary.Write(&b, binary.LittleEndian, x)
	}
	binary.Write(&b, binary.LittleEndian, cpu.PC)
	binary.Write(&b, binary.LittleEndian, uint64(cpu.Priv))
	binary.Write(&b, binary.LittleEndian, cpu.Cycles)
	binary.Write(&b, binary.LittleEndian, cpu.CSR)
	binary.Write(&b, binary.LittleEndian, uint64(vm.State))
	binary.Write(&b, binary.LittleEndian, vm.Mem.Present())
	buf := make([]byte, isa.PageSize)
	for gfn := uint64(0); gfn < vm.Mem.Pages(); gfn++ {
		vm.Mem.ReadRaw(gfn, buf)
		b.Write(buf)
	}
	return b.String()
}

// goodSnapshot serializes a paused workload VM.
func goodSnapshot(t *testing.T, pool *mem.Pool) []byte {
	t.Helper()
	src := runningVM(t, pool, "snap-src")
	src.Pause()
	var buf bytes.Buffer
	if err := Save(src, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// mustRejectCleanly asserts Restore errors without panicking and without
// touching a single byte of the target VM.
func mustRejectCleanly(t *testing.T, pool *mem.Pool, name string, stream []byte) {
	t.Helper()
	dst := freshVM(t, pool, name)
	before := vmFingerprint(dst)
	err := Restore(dst, bytes.NewReader(stream))
	if err == nil {
		t.Fatalf("%s: corrupt stream accepted", name)
	}
	if vmFingerprint(dst) != before {
		t.Fatalf("%s: rejected restore modified the VM (err was %v)", name, err)
	}
	if dst.State != core.StateCreated {
		t.Fatalf("%s: rejected restore changed state to %v", name, dst.State)
	}
}

// word offsets into the snapshot header (see Save).
const (
	offVersion = 8
	offNPages  = 24
	offCount   = 32 + 32*8 + 14*8 // after header words, GPRs and CPU words
	offFirstG  = offCount + 8
)

// TestRestoreStagedRejection: every class of damage — truncation at each
// region, bad version, oversized page count, out-of-range or duplicate
// gfn — must error cleanly with zero partial adoption.
func TestRestoreStagedRejection(t *testing.T) {
	pool := mem.NewPool(16 * vmRAM >> isa.PageShift)
	good := goodSnapshot(t, pool)
	if len(good) < offFirstG+8+isa.PageSize {
		t.Fatalf("snapshot unexpectedly small: %d bytes", len(good))
	}
	mut := func(off int, v uint64) []byte {
		s := append([]byte(nil), good...)
		binary.LittleEndian.PutUint64(s[off:], v)
		return s
	}

	cases := []struct {
		name   string
		stream []byte
	}{
		{"version-skew", mut(offVersion, version+1)},
		{"npages-overflow", mut(offNPages, 1<<40)},
		{"count-overflow", mut(offCount, ^uint64(0))},
		{"count-exceeds-npages", mut(offCount, vmRAM>>isa.PageShift+1)},
		{"gfn-out-of-range", mut(offFirstG, 1<<40)},
		{"truncated-header", good[:offNPages+4]},
		{"truncated-cpu", good[:offCount-8]},
		{"truncated-mid-page", good[:offFirstG+8+100]},
		{"truncated-last-page", good[:len(good)-1]},
	}
	// Duplicate gfn: make page 2's gfn equal page 1's.
	if binary.LittleEndian.Uint64(good[offCount:]) >= 2 {
		dup := append([]byte(nil), good...)
		first := binary.LittleEndian.Uint64(dup[offFirstG:])
		binary.LittleEndian.PutUint64(dup[offFirstG+8+isa.PageSize:], first)
		cases = append(cases, struct {
			name   string
			stream []byte
		}{"duplicate-gfn", dup})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mustRejectCleanly(t, pool, "dst-"+tc.name, tc.stream)
		})
	}
	// The unmodified stream still restores — the mutations above, not the
	// fixture, are what Restore rejected.
	dst := freshVM(t, pool, "dst-good")
	if err := Restore(dst, bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
	if dst.State != core.StateRunning {
		t.Fatalf("restored VM state %v", dst.State)
	}
}

// TestRestoreRejectsBootedTarget: restoring over a running VM would splice
// two machine states together; it must refuse before reading the stream.
func TestRestoreRejectsBootedTarget(t *testing.T) {
	pool := mem.NewPool(16 * vmRAM >> isa.PageShift)
	good := goodSnapshot(t, pool)
	dst := runningVM(t, pool, "booted")
	if err := Restore(dst, bytes.NewReader(good)); err == nil {
		t.Fatal("restore over a running VM accepted")
	}
	if dst.State != core.StateRunning {
		t.Fatalf("rejected restore changed running VM state to %v", dst.State)
	}
}

// TestCloneRejectsSelfAndAliased: cloning a VM onto itself or onto a shell
// sharing its guest-physical space must fail cleanly.
func TestCloneRejectsSelfAndAliased(t *testing.T) {
	pool := mem.NewPool(8 * vmRAM >> isa.PageShift)
	src := runningVM(t, pool, "src")
	src.Pause()
	if err := Clone(src, src); err == nil {
		t.Fatal("self-clone accepted")
	} else if !strings.Contains(err.Error(), "same VM") {
		t.Fatalf("unexpected error: %v", err)
	}
	alias := *src
	if err := Clone(src, &alias); err == nil {
		t.Fatal("aliased-memory clone accepted")
	} else if !strings.Contains(err.Error(), "guest-physical") {
		t.Fatalf("unexpected error: %v", err)
	}
	if src.State != core.StatePaused {
		t.Fatalf("rejected clone changed source state to %v", src.State)
	}
}
