package snapshot

import (
	"bytes"
	"testing"

	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/guest"
	"govisor/internal/isa"
	"govisor/internal/mem"
)

const vmRAM = 2 << 20

func runningVM(t *testing.T, pool *mem.Pool, name string) *core.VM {
	t.Helper()
	kernel, err := guest.BuildKernel()
	if err != nil {
		t.Fatal(err)
	}
	vm, err := core.NewVM(pool, core.Config{Name: name, Mode: core.ModeHW, MemBytes: vmRAM})
	if err != nil {
		t.Fatal(err)
	}
	guest.Dirty(0, 16, 500).Apply(vm)
	if err := vm.Boot(kernel); err != nil {
		t.Fatal(err)
	}
	vm.Step(3_000_000)
	if vm.State != core.StateRunning {
		t.Fatalf("vm state %v err %v", vm.State, vm.Err)
	}
	return vm
}

func freshVM(t *testing.T, pool *mem.Pool, name string) *core.VM {
	t.Helper()
	vm, err := core.NewVM(pool, core.Config{Name: name, Mode: core.ModeHW, MemBytes: vmRAM})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	pool := mem.NewPool(4 * vmRAM >> isa.PageShift)
	src := runningVM(t, pool, "src")
	src.Pause()

	var buf bytes.Buffer
	if err := Save(src, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty snapshot")
	}

	dst := freshVM(t, pool, "dst")
	if err := Restore(dst, &buf); err != nil {
		t.Fatal(err)
	}
	if dst.CPU.PC != src.CPU.PC || dst.CPU.X[5] != src.CPU.X[5] {
		t.Fatal("cpu state mismatch")
	}
	// Restored guest continues the workload.
	before := dst.Result(gabi.PResult0)
	dst.Step(30_000_000)
	if dst.State == core.StateError {
		t.Fatalf("restored vm errored: %v", dst.Err)
	}
	if dst.Result(gabi.PResult0) <= before {
		t.Fatal("restored vm made no progress")
	}
}

func TestSnapshotElidesZeroPages(t *testing.T) {
	pool := mem.NewPool(4 * vmRAM >> isa.PageShift)
	src := runningVM(t, pool, "src")
	src.Pause()
	var buf bytes.Buffer
	if err := Save(src, &buf); err != nil {
		t.Fatal(err)
	}
	// Far smaller than full RAM: only touched pages are stored.
	if buf.Len() >= vmRAM {
		t.Fatalf("snapshot %d bytes for %d RAM", buf.Len(), vmRAM)
	}
}

func TestRestoreRejectsCorruptStream(t *testing.T) {
	pool := mem.NewPool(4 * vmRAM >> isa.PageShift)
	dst := freshVM(t, pool, "dst")
	if err := Restore(dst, bytes.NewReader([]byte("not a snapshot, definitely"))); err == nil {
		t.Fatal("corrupt stream accepted")
	}
	if err := Restore(dst, bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestRestoreRejectsModeMismatch(t *testing.T) {
	pool := mem.NewPool(8 * vmRAM >> isa.PageShift)
	src := runningVM(t, pool, "src")
	src.Pause()
	var buf bytes.Buffer
	if err := Save(src, &buf); err != nil {
		t.Fatal(err)
	}
	wrong, err := core.NewVM(pool, core.Config{Name: "wrong", Mode: core.ModeTrap, MemBytes: vmRAM})
	if err != nil {
		t.Fatal(err)
	}
	if err := Restore(wrong, &buf); err == nil {
		t.Fatal("mode mismatch accepted")
	}
}

func TestCloneSharesAndSplits(t *testing.T) {
	pool := mem.NewPool(4 * vmRAM >> isa.PageShift)
	src := runningVM(t, pool, "src")
	src.Pause()

	inUseBefore := pool.InUse()
	dst := freshVM(t, pool, "clone")
	if err := Clone(src, dst); err != nil {
		t.Fatal(err)
	}
	// Cloning allocates no frames.
	if pool.InUse() != inUseBefore {
		t.Fatalf("clone allocated frames: %d → %d", inUseBefore, pool.InUse())
	}
	// Both run independently.
	src.Resume()
	src.Step(20_000_000)
	dst.Step(20_000_000)
	if src.State == core.StateError || dst.State == core.StateError {
		t.Fatalf("src=%v dst=%v (%v/%v)", src.State, dst.State, src.Err, dst.Err)
	}
	// Writes split frames: usage grows past the shared baseline.
	if pool.InUse() <= inUseBefore {
		t.Fatal("COW splits should have allocated")
	}
	if dst.Mem.COWBreaks == 0 && src.Mem.COWBreaks == 0 {
		t.Fatal("no COW breaks recorded")
	}
}

func TestCloneRequiresSharedPool(t *testing.T) {
	poolA := mem.NewPool(4 * vmRAM >> isa.PageShift)
	poolB := mem.NewPool(4 * vmRAM >> isa.PageShift)
	src := runningVM(t, poolA, "src")
	src.Pause()
	dst := freshVM(t, poolB, "dst")
	if err := Clone(src, dst); err == nil {
		t.Fatal("cross-pool clone accepted")
	}
}

func TestCloneRejectsBootedDestination(t *testing.T) {
	pool := mem.NewPool(8 * vmRAM >> isa.PageShift)
	src := runningVM(t, pool, "src")
	src.Pause()
	dst := runningVM(t, pool, "dst")
	if err := Clone(src, dst); err == nil {
		t.Fatal("running destination accepted")
	}
}
