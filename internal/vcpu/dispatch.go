package vcpu

import (
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/mmu"
)

// Threaded dispatch: every opcode resolves once, at decode/predecode time,
// to an executor function, and the hot loop calls the resolved pointer per
// retired instruction instead of walking the `switch in.Op` in execute.
// Executors return a small int status; the rare Exit travels out of line
// through c.pendExit, so the no-exit fast path never materializes the large
// Exit struct. The engine is architecturally invisible — byte-identical
// guest state, cycle accounting and statistics to the switch — and the
// original switch is retained behind CPU.NoThreadedDispatch as the
// differential reference arm (see TestDifferentialThreadedDispatch*).

// Executor statuses. Shared between the threaded executors and the
// superblock engine: both keep the per-instruction result a small int and
// route the rare Exit through c.pendExit.
const (
	stOK   = iota // retired; continue
	stTrap        // a guest trap redirected control in place
	stExit        // Run must return c.pendExit
	stSMC         // retired, but the store hit the executing code page
)

// execFn executes one decoded instruction. raw is the original instruction
// word (needed for the exact stval of illegal-instruction traps: Encode∘
// Decode does not preserve padding bits).
type execFn func(c *CPU, in isa.Inst, raw uint32) int

// execTable resolves every valid opcode to its executor. Indexed composite
// literal so the mapping reads like the opcode declaration; completeness
// (no valid opcode left nil) is pinned by TestExecTableComplete and
// FuzzDecode via ExecutorResolved.
var execTable = isa.ExecTable[execFn]{
	isa.OpADD: execADD, isa.OpSUB: execSUB, isa.OpAND: execAND,
	isa.OpOR: execOR, isa.OpXOR: execXOR, isa.OpSLL: execSLL,
	isa.OpSRL: execSRL, isa.OpSRA: execSRA, isa.OpSLT: execSLT,
	isa.OpSLTU: execSLTU, isa.OpMUL: execMUL, isa.OpMULH: execMULH,
	isa.OpDIV: execDIV, isa.OpDIVU: execDIVU, isa.OpREM: execREM,
	isa.OpREMU: execREMU,

	isa.OpADDI: execADDI, isa.OpANDI: execANDI, isa.OpORI: execORI,
	isa.OpXORI: execXORI, isa.OpSLLI: execSLLI, isa.OpSRLI: execSRLI,
	isa.OpSRAI: execSRAI, isa.OpSLTI: execSLTI, isa.OpSLTIU: execSLTIU,
	isa.OpLUI: execLUI,

	isa.OpLB: execLB, isa.OpLBU: execLBU, isa.OpLH: execLH,
	isa.OpLHU: execLHU, isa.OpLW: execLW, isa.OpLWU: execLWU,
	isa.OpLD: execLD,

	isa.OpSB: execSB, isa.OpSH: execSH, isa.OpSW: execSW, isa.OpSD: execSD,

	isa.OpBEQ: execBEQ, isa.OpBNE: execBNE, isa.OpBLT: execBLT,
	isa.OpBGE: execBGE, isa.OpBLTU: execBLTU, isa.OpBGEU: execBGEU,

	isa.OpJAL: execJAL, isa.OpJALR: execJALR,

	isa.OpECALL: execECALL, isa.OpEBREAK: execEBREAK, isa.OpSRET: execSRET,
	isa.OpWFI: execWFI, isa.OpFENCE: execFENCE, isa.OpSFENCE: execSFENCE,
	isa.OpCSRRW: execCSROp, isa.OpCSRRS: execCSROp, isa.OpCSRRC: execCSROp,
	isa.OpHALT: execHALT,
}

// ExecutorResolved reports whether op resolves to a threaded-dispatch
// executor. Exported for the ISA decode fuzzer, which asserts the table is
// total over every decodable instruction so table/switch completeness can
// never drift.
func ExecutorResolved(op isa.Op) bool { return execTable.For(op) != nil }

// guestTrapStatus delivers a guest trap from an executor or a superblock.
func (c *CPU) guestTrapStatus(cause, tval uint64) int {
	if e, exited := c.guestTrap(cause, tval); exited {
		c.pendExit = e
		return stExit
	}
	return stTrap
}

// illegalStatus is guestTrapStatus for illegal-instruction traps.
func (c *CPU) illegalStatus(raw uint32) int {
	return c.guestTrapStatus(isa.CauseIllegal, uint64(raw))
}

// faultStatus is translateFault with executor-status results.
func (c *CPU) faultStatus(va uint64, acc isa.Access, fault *mmu.Fault) int {
	switch fault.Kind {
	case mmu.FaultGuest:
		return c.guestTrapStatus(fault.Cause, va)
	case mmu.FaultShadowMiss:
		c.pendExit = c.vmExit(Exit{Reason: ExitShadowMiss, VA: va, Access: acc})
		return stExit
	default: // mmu.FaultHost
		c.pendExit = c.vmExit(Exit{Reason: ExitHostFault, VA: va, Access: acc, Mem: fault.Mem})
		return stExit
	}
}

// ---- register-register ALU ----

func execADD(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, c.X[in.Rs1]+c.X[in.Rs2])
	c.PC += 4
	return stOK
}

func execSUB(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, c.X[in.Rs1]-c.X[in.Rs2])
	c.PC += 4
	return stOK
}

func execAND(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, c.X[in.Rs1]&c.X[in.Rs2])
	c.PC += 4
	return stOK
}

func execOR(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, c.X[in.Rs1]|c.X[in.Rs2])
	c.PC += 4
	return stOK
}

func execXOR(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, c.X[in.Rs1]^c.X[in.Rs2])
	c.PC += 4
	return stOK
}

func execSLL(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, c.X[in.Rs1]<<(c.X[in.Rs2]&63))
	c.PC += 4
	return stOK
}

func execSRL(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, c.X[in.Rs1]>>(c.X[in.Rs2]&63))
	c.PC += 4
	return stOK
}

func execSRA(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, uint64(int64(c.X[in.Rs1])>>(c.X[in.Rs2]&63)))
	c.PC += 4
	return stOK
}

func execSLT(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, boolTo64(int64(c.X[in.Rs1]) < int64(c.X[in.Rs2])))
	c.PC += 4
	return stOK
}

func execSLTU(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, boolTo64(c.X[in.Rs1] < c.X[in.Rs2]))
	c.PC += 4
	return stOK
}

func execMUL(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, c.X[in.Rs1]*c.X[in.Rs2])
	c.PC += 4
	return stOK
}

func execMULH(c *CPU, in isa.Inst, _ uint32) int {
	hi, _ := mulh64(int64(c.X[in.Rs1]), int64(c.X[in.Rs2]))
	c.SetReg(in.Rd, uint64(hi))
	c.PC += 4
	return stOK
}

func execDIV(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, uint64(div64(int64(c.X[in.Rs1]), int64(c.X[in.Rs2]))))
	c.PC += 4
	return stOK
}

func execDIVU(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, divu64(c.X[in.Rs1], c.X[in.Rs2]))
	c.PC += 4
	return stOK
}

func execREM(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, uint64(rem64(int64(c.X[in.Rs1]), int64(c.X[in.Rs2]))))
	c.PC += 4
	return stOK
}

func execREMU(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, remu64(c.X[in.Rs1], c.X[in.Rs2]))
	c.PC += 4
	return stOK
}

// ---- immediates ----

func execADDI(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, c.X[in.Rs1]+uint64(int64(in.Imm)))
	c.PC += 4
	return stOK
}

func execANDI(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, c.X[in.Rs1]&uint64(uint32(in.Imm)))
	c.PC += 4
	return stOK
}

func execORI(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, c.X[in.Rs1]|uint64(uint32(in.Imm)))
	c.PC += 4
	return stOK
}

func execXORI(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, c.X[in.Rs1]^uint64(uint32(in.Imm)))
	c.PC += 4
	return stOK
}

func execSLLI(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, c.X[in.Rs1]<<(uint(in.Imm)&63))
	c.PC += 4
	return stOK
}

func execSRLI(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, c.X[in.Rs1]>>(uint(in.Imm)&63))
	c.PC += 4
	return stOK
}

func execSRAI(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, uint64(int64(c.X[in.Rs1])>>(uint(in.Imm)&63)))
	c.PC += 4
	return stOK
}

func execSLTI(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, boolTo64(int64(c.X[in.Rs1]) < int64(in.Imm)))
	c.PC += 4
	return stOK
}

func execSLTIU(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, boolTo64(c.X[in.Rs1] < uint64(int64(in.Imm))))
	c.PC += 4
	return stOK
}

func execLUI(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, uint64(int64(in.Imm))<<16)
	c.PC += 4
	return stOK
}

// ---- loads / stores ----
//
// Decode-time resolution bakes the access width and extension into the
// executor, so the per-instruction path skips the loadMeta/storeSize
// switches; the shared bodies (loadExec/storeExec) are the same ones the
// superblock engine runs, and the switch arm's execLoad/execStore stay in
// lockstep with them under the differential suites.

func execLB(c *CPU, in isa.Inst, _ uint32) int  { return c.loadExec(in, 1, true) }
func execLBU(c *CPU, in isa.Inst, _ uint32) int { return c.loadExec(in, 1, false) }
func execLH(c *CPU, in isa.Inst, _ uint32) int  { return c.loadExec(in, 2, true) }
func execLHU(c *CPU, in isa.Inst, _ uint32) int { return c.loadExec(in, 2, false) }
func execLW(c *CPU, in isa.Inst, _ uint32) int  { return c.loadExec(in, 4, true) }
func execLWU(c *CPU, in isa.Inst, _ uint32) int { return c.loadExec(in, 4, false) }
func execLD(c *CPU, in isa.Inst, _ uint32) int  { return c.loadExec(in, 8, false) }

func execSB(c *CPU, in isa.Inst, _ uint32) int { return c.storeExec(in, 1) }
func execSH(c *CPU, in isa.Inst, _ uint32) int { return c.storeExec(in, 2) }
func execSW(c *CPU, in isa.Inst, _ uint32) int { return c.storeExec(in, 4) }
func execSD(c *CPU, in isa.Inst, _ uint32) int { return c.storeExec(in, 8) }

// loadExec is the load body shared by the threaded executors and the
// superblock engine: semantics, cycle charges, fault taxonomy and statistics
// identical to the switch arm's execLoad — any change here must land there
// too (and vice versa); the differential suites enforce the lockstep.
//
//govisor:pair execLoad
func (c *CPU) loadExec(in isa.Inst, size int, signed bool) int {
	va := c.X[in.Rs1] + uint64(int64(in.Imm))
	if va&uint64(size-1) != 0 {
		return c.guestTrapStatus(isa.CauseLoadMisaligned, va)
	}
	gpa, refs, fault := c.MMU.TranslateData(va, isa.AccRead, c.Priv == PrivU)
	c.Cycles += uint64(refs) * c.Costs.PTRef
	if fault != nil {
		return c.faultStatus(va, isa.AccRead, fault)
	}
	if !c.NoWriteMemo {
		// Memoized RAM verdict: a read-memo hit proves the page is inside
		// guest RAM, so the Contains/IsMMIO range checks fold into the probe
		// and the value comes straight from the cached page — exactly what
		// the full path below computes for an in-RAM address.
		if v, ok := c.Mem.ReadUintFast(gpa, size); ok {
			c.Cycles += c.Costs.MemAccess
			c.SetReg(in.Rd, extendLoad(v, size, signed))
			c.PC += 4
			return stOK
		}
	}
	if !c.Mem.Contains(gpa) && c.IsMMIO != nil && c.IsMMIO(gpa) {
		c.PC += 4
		c.pendExit = c.vmExit(Exit{Reason: ExitMMIO, MMIO: MMIOInfo{
			GPA: gpa, Size: uint8(size), Rd: in.Rd, Signed: signed,
		}})
		return stExit
	}
	c.Cycles += c.Costs.MemAccess
	v, f := c.Mem.ReadUint(gpa, size)
	if f != nil {
		if f.Kind == mem.FaultBeyondRAM {
			return c.guestTrapStatus(isa.CauseLoadAccess, va)
		}
		c.pendExit = c.memFaultExit(va, isa.AccRead, f)
		return stExit
	}
	c.SetReg(in.Rd, extendLoad(v, size, signed))
	c.PC += 4
	return stOK
}

// extendLoad applies the architectural sign/zero extension of a load.
func extendLoad(v uint64, size int, signed bool) uint64 {
	if signed {
		switch size {
		case 1:
			return uint64(int64(int8(v)))
		case 2:
			return uint64(int64(int16(v)))
		case 4:
			return uint64(int64(int32(v)))
		}
	}
	return v
}

// storeExec is the store body shared by the threaded executors and the
// superblock engine (same lockstep contract with execStore as loadExec).
// A retired store into the executing superblock's code page (c.codeGfn,
// mem.NoFrame outside blocks) returns stSMC so the block ends; every other
// consumer treats stSMC exactly like stOK. The memoized body lives here;
// storeExecRef is the NoWriteMemo reference arm, byte-for-byte the PR 4
// store path.
//
//govisor:pair storeExecRef
func (c *CPU) storeExec(in isa.Inst, size int) int {
	if c.NoWriteMemo {
		return c.storeExecRef(in, size)
	}
	va := c.X[in.Rs1] + uint64(int64(in.Imm))
	val := c.X[in.Rs2]
	if va&uint64(size-1) != 0 {
		return c.guestTrapStatus(isa.CauseStoreMisaligned, va)
	}
	gpa, refs, fault := c.MMU.TranslateWrite(va, c.Priv == PrivU)
	if refs != 0 {
		c.Cycles += uint64(refs) * c.Costs.PTRef
	}
	if fault != nil {
		return c.faultStatus(va, isa.AccWrite, fault)
	}
	if c.Mem.WriteUintFast(gpa, size, val) {
		// Memoized store: the memo proves the page is in RAM (so the
		// Contains/IsMMIO checks fold into the probe), present, writable,
		// private and already dirty — the write itself is the only effect
		// the slow path below would have had.
		c.Cycles += c.Costs.MemAccess
		c.PC += 4
		if gpa>>isa.PageShift == c.codeGfn {
			return stSMC
		}
		return stOK
	}
	if !c.Mem.Contains(gpa) && c.IsMMIO != nil && c.IsMMIO(gpa) {
		c.PC += 4
		c.pendExit = c.vmExit(Exit{Reason: ExitMMIO, MMIO: MMIOInfo{
			GPA: gpa, Size: uint8(size), Write: true, Value: val,
		}})
		return stExit
	}
	c.Cycles += c.Costs.MemAccess
	if f := c.Mem.WriteUintFill(gpa, size, val); f != nil {
		if f.Kind == mem.FaultBeyondRAM {
			return c.guestTrapStatus(isa.CauseStoreAccess, va)
		}
		c.pendExit = c.memFaultExit(va, isa.AccWrite, f)
		return stExit
	}
	c.PC += 4
	if gpa>>isa.PageShift == c.codeGfn {
		return stSMC
	}
	return stOK
}

// storeExecRef is storeExec's unmemoized reference arm: per-store
// TranslateData, explicit range checks and WriteUint with its per-store
// version bump — the differential baseline the memo must be invisible
// against.
func (c *CPU) storeExecRef(in isa.Inst, size int) int {
	va := c.X[in.Rs1] + uint64(int64(in.Imm))
	val := c.X[in.Rs2]
	if va&uint64(size-1) != 0 {
		return c.guestTrapStatus(isa.CauseStoreMisaligned, va)
	}
	gpa, refs, fault := c.MMU.TranslateData(va, isa.AccWrite, c.Priv == PrivU)
	c.Cycles += uint64(refs) * c.Costs.PTRef
	if fault != nil {
		return c.faultStatus(va, isa.AccWrite, fault)
	}
	if !c.Mem.Contains(gpa) && c.IsMMIO != nil && c.IsMMIO(gpa) {
		c.PC += 4
		c.pendExit = c.vmExit(Exit{Reason: ExitMMIO, MMIO: MMIOInfo{
			GPA: gpa, Size: uint8(size), Write: true, Value: val,
		}})
		return stExit
	}
	c.Cycles += c.Costs.MemAccess
	if f := c.Mem.WriteUint(gpa, size, val); f != nil {
		if f.Kind == mem.FaultBeyondRAM {
			return c.guestTrapStatus(isa.CauseStoreAccess, va)
		}
		c.pendExit = c.memFaultExit(va, isa.AccWrite, f)
		return stExit
	}
	c.PC += 4
	if gpa>>isa.PageShift == c.codeGfn {
		return stSMC
	}
	return stOK
}

// ---- control flow ----

func execBEQ(c *CPU, in isa.Inst, _ uint32) int {
	if c.X[in.Rs1] == c.X[in.Rs2] {
		c.PC += uint64(int64(in.Imm))
	} else {
		c.PC += 4
	}
	return stOK
}

func execBNE(c *CPU, in isa.Inst, _ uint32) int {
	if c.X[in.Rs1] != c.X[in.Rs2] {
		c.PC += uint64(int64(in.Imm))
	} else {
		c.PC += 4
	}
	return stOK
}

func execBLT(c *CPU, in isa.Inst, _ uint32) int {
	if int64(c.X[in.Rs1]) < int64(c.X[in.Rs2]) {
		c.PC += uint64(int64(in.Imm))
	} else {
		c.PC += 4
	}
	return stOK
}

func execBGE(c *CPU, in isa.Inst, _ uint32) int {
	if int64(c.X[in.Rs1]) >= int64(c.X[in.Rs2]) {
		c.PC += uint64(int64(in.Imm))
	} else {
		c.PC += 4
	}
	return stOK
}

func execBLTU(c *CPU, in isa.Inst, _ uint32) int {
	if c.X[in.Rs1] < c.X[in.Rs2] {
		c.PC += uint64(int64(in.Imm))
	} else {
		c.PC += 4
	}
	return stOK
}

func execBGEU(c *CPU, in isa.Inst, _ uint32) int {
	if c.X[in.Rs1] >= c.X[in.Rs2] {
		c.PC += uint64(int64(in.Imm))
	} else {
		c.PC += 4
	}
	return stOK
}

func execJAL(c *CPU, in isa.Inst, _ uint32) int {
	c.SetReg(in.Rd, c.PC+4)
	c.PC += uint64(int64(in.Imm))
	return stOK
}

func execJALR(c *CPU, in isa.Inst, _ uint32) int {
	target := (c.X[in.Rs1] + uint64(int64(in.Imm))) &^ 1
	c.SetReg(in.Rd, c.PC+4)
	c.PC = target
	return stOK
}

// ---- system ----

func execECALL(c *CPU, _ isa.Inst, _ uint32) int {
	if !c.Deprivileged && c.Priv == PrivU {
		// Native/HW-assist syscall: vectors straight into the guest kernel.
		c.InjectTrap(isa.CauseEcallU, 0)
		return stTrap
	}
	c.pendExit = c.vmExit(Exit{Reason: ExitEcall, From: c.Priv})
	return stExit
}

func execEBREAK(c *CPU, _ isa.Inst, _ uint32) int {
	return c.guestTrapStatus(isa.CauseBreakpoint, c.PC)
}

func execSRET(c *CPU, in isa.Inst, raw uint32) int {
	if c.Priv != PrivS {
		return c.illegalStatus(raw)
	}
	if c.Deprivileged {
		c.pendExit = c.vmExit(Exit{Reason: ExitPriv, Inst: in})
		return stExit
	}
	c.ExecuteSRET()
	return stTrap
}

func execWFI(c *CPU, _ isa.Inst, raw uint32) int {
	if c.Priv != PrivS {
		return c.illegalStatus(raw)
	}
	c.PC += 4
	if c.CSR.Sip&c.CSR.Sie != 0 {
		return stOK // already pending: WFI is a no-op
	}
	c.pendExit = c.vmExit(Exit{Reason: ExitWFI})
	return stExit
}

func execFENCE(c *CPU, _ isa.Inst, _ uint32) int {
	// No reordering to model.
	c.PC += 4
	return stOK
}

func execSFENCE(c *CPU, in isa.Inst, raw uint32) int {
	if c.Priv != PrivS {
		return c.illegalStatus(raw)
	}
	if c.Deprivileged {
		c.pendExit = c.vmExit(Exit{Reason: ExitPriv, Inst: in})
		return stExit
	}
	c.MMU.Flush(c.X[in.Rs1], uint16(c.X[in.Rs2]))
	c.PC += 4
	return stOK
}

func execCSROp(c *CPU, in isa.Inst, raw uint32) int {
	addr := uint16(in.Imm)
	// Unprivileged counters execute directly in every regime.
	if !isa.IsUserCSR(addr) {
		if c.Priv != PrivS {
			return c.illegalStatus(raw)
		}
		if c.Deprivileged {
			c.pendExit = c.vmExit(Exit{Reason: ExitPriv, Inst: in})
			return stExit
		}
	}
	old, known := c.ReadCSR(addr)
	if !known {
		return c.illegalStatus(raw)
	}
	src := c.X[in.Rs1]
	var newVal uint64
	write := true
	switch in.Op {
	case isa.OpCSRRW:
		newVal = src
	case isa.OpCSRRS:
		newVal = old | src
		write = in.Rs1 != 0
	default: // CSRRC
		newVal = old &^ src
		write = in.Rs1 != 0
	}
	if write && !c.WriteCSR(addr, newVal) {
		return c.illegalStatus(raw)
	}
	c.SetReg(in.Rd, old)
	c.PC += 4
	return stOK
}

func execHALT(c *CPU, in isa.Inst, raw uint32) int {
	if c.Priv != PrivS {
		return c.illegalStatus(raw)
	}
	c.PC += 4
	c.pendExit = c.exit(Exit{Reason: ExitHalt, Code: uint16(in.Imm)})
	return stExit
}
