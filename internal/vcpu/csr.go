package vcpu

import "govisor/internal/isa"

// CSRFile holds the supervisor control and status registers of one vCPU.
// Under trap-and-emulate these are the *virtual* CSRs the VMM maintains;
// under native/hardware-assisted execution the interpreter accesses them
// directly. Either way there is exactly one copy, so the VMM and the
// interpreter can never disagree.
type CSRFile struct {
	Sstatus  uint64
	Sie      uint64
	Stvec    uint64
	Sscratch uint64
	Sepc     uint64
	Scause   uint64
	Stval    uint64
	Sip      uint64
	Stimecmp uint64
	Satp     uint64
}

// ReadCSR returns the value of a CSR. Counter CSRs come from the CPU's
// cycle state. The second result is false for unimplemented CSRs.
func (c *CPU) ReadCSR(addr uint16) (uint64, bool) {
	switch addr {
	case isa.CSRSstatus:
		return c.CSR.Sstatus, true
	case isa.CSRSie:
		return c.CSR.Sie, true
	case isa.CSRStvec:
		return c.CSR.Stvec, true
	case isa.CSRSscratch:
		return c.CSR.Sscratch, true
	case isa.CSRSepc:
		return c.CSR.Sepc, true
	case isa.CSRScause:
		return c.CSR.Scause, true
	case isa.CSRStval:
		return c.CSR.Stval, true
	case isa.CSRSip:
		return c.CSR.Sip, true
	case isa.CSRStimecmp:
		return c.CSR.Stimecmp, true
	case isa.CSRSatp:
		return c.CSR.Satp, true
	case isa.CSRCycle, isa.CSRTime:
		return c.Cycles, true
	case isa.CSRInstret:
		return c.Instret, true
	case isa.CSRVenv:
		return c.Venv, true
	}
	return 0, false
}

// WriteCSR stores v into a CSR, applying side effects (SATP installs the new
// translation root; STIMECMP rearms the timer). Read-only CSRs return false.
func (c *CPU) WriteCSR(addr uint16, v uint64) bool {
	if isa.IsReadOnlyCSR(addr) {
		return false
	}
	switch addr {
	case isa.CSRSstatus:
		c.CSR.Sstatus = v & (isa.StatusSIE | isa.StatusSPIE | isa.StatusSPP)
	case isa.CSRSie:
		c.CSR.Sie = v
	case isa.CSRStvec:
		c.CSR.Stvec = v &^ 3 // 4-byte aligned direct vector
	case isa.CSRSscratch:
		c.CSR.Sscratch = v
	case isa.CSRSepc:
		c.CSR.Sepc = v &^ 1
	case isa.CSRScause:
		c.CSR.Scause = v
	case isa.CSRStval:
		c.CSR.Stval = v
	case isa.CSRSip:
		c.CSR.Sip = v
	case isa.CSRStimecmp:
		c.CSR.Stimecmp = v
		c.CSR.Sip &^= 1 << isa.IntTimer // rearming acknowledges the timer
	case isa.CSRSatp:
		c.CSR.Satp = v
		c.MMU.SetSatp(v)
	default:
		return false
	}
	return true
}

// InjectTrap performs the architectural trap entry: it stacks the interrupt
// enable and privilege, records the cause, and vectors to STVEC. The VMM
// uses it to inject virtual traps and interrupts into a deprivileged guest;
// the interpreter uses it directly when the guest runs fully privileged.
func (c *CPU) InjectTrap(cause, tval uint64) {
	c.CSR.Scause = cause
	c.CSR.Stval = tval
	c.CSR.Sepc = c.PC
	st := c.CSR.Sstatus
	// SPIE ← SIE, SIE ← 0, SPP ← current privilege.
	st &^= isa.StatusSPIE | isa.StatusSPP
	if st&isa.StatusSIE != 0 {
		st |= isa.StatusSPIE
	}
	st &^= isa.StatusSIE
	if c.Priv == PrivS {
		st |= isa.StatusSPP
	}
	c.CSR.Sstatus = st
	c.Priv = PrivS
	c.PC = c.CSR.Stvec
	c.Cycles += c.Costs.TrapEntry
	c.Stats.Traps++
}

// ExecuteSRET performs the architectural return-from-trap: privilege and
// interrupt state are unstacked and control returns to SEPC. The VMM calls
// it when emulating a trapped SRET.
func (c *CPU) ExecuteSRET() {
	st := c.CSR.Sstatus
	if st&isa.StatusSPP != 0 {
		c.Priv = PrivS
	} else {
		c.Priv = PrivU
	}
	st &^= isa.StatusSIE
	if st&isa.StatusSPIE != 0 {
		st |= isa.StatusSIE
	}
	st |= isa.StatusSPIE
	st &^= isa.StatusSPP
	c.CSR.Sstatus = st
	c.PC = c.CSR.Sepc
}

// PendingInterrupt returns the highest-priority deliverable interrupt
// number, or 0 if none. Delivery requires the bit pending and enabled, and —
// when running in S-mode — the global SIE bit; U-mode always takes enabled
// interrupts.
func (c *CPU) PendingInterrupt() uint64 {
	deliverable := c.CSR.Sip & c.CSR.Sie
	if deliverable == 0 {
		return 0
	}
	if c.Priv == PrivS && c.CSR.Sstatus&isa.StatusSIE == 0 {
		return 0
	}
	switch {
	case deliverable&(1<<isa.IntExt) != 0:
		return isa.IntExt
	case deliverable&(1<<isa.IntTimer) != 0:
		return isa.IntTimer
	case deliverable&(1<<isa.IntSoft) != 0:
		return isa.IntSoft
	}
	return 0
}

// RaiseIRQ marks interrupt line n pending (VMM / device side).
func (c *CPU) RaiseIRQ(n uint64) { c.CSR.Sip |= 1 << n }

// ClearIRQ clears a pending interrupt line.
func (c *CPU) ClearIRQ(n uint64) { c.CSR.Sip &^= 1 << n }
