package vcpu

import (
	"encoding/binary"
	"testing"

	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/mmu"
)

// words assembles raw instruction words into a loadable image.
func words(ins ...isa.Inst) []byte {
	img := make([]byte, 4*len(ins))
	for i, in := range ins {
		binary.LittleEndian.PutUint32(img[i*4:], isa.Encode(in))
	}
	return img
}

// newCPUPair builds two CPUs over identical memory images: one with the
// decoded-instruction cache, one without.
func newCPUPair(t *testing.T, img []byte) (cached, plain *CPU) {
	t.Helper()
	build := func(on bool) *CPU {
		g := mem.NewGuestPhys(mem.NewPool(ramPages*2), ramPages*isa.PageSize)
		if err := g.PopulateAll(); err != nil {
			t.Fatal(err)
		}
		if f := g.Write(0x1000, img); f != nil {
			t.Fatal(f)
		}
		c := New(g, mmu.NewContext(g, mmu.StyleDirect))
		c.Priv = PrivS
		c.PC = 0x1000
		if on {
			c.ICache = NewICache()
		}
		return c
	}
	return build(true), build(false)
}

// smcProgram writes a replacement instruction over its own loop body between
// the first and second iteration:
//
//	pass 1 executes "addi a0, a0, 11", then stores the encoding of
//	"addi a0, a0, 100" over it; pass 2 must execute the new instruction.
//
// Final a0 is 111 iff the interpreter observes the store; a stale decoded
// block would compute 22.
func smcProgram() []byte {
	newWord := isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 100})
	img := words(
		isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegZero, Imm: 0},  // 0x1000
		isa.Inst{Op: isa.OpADDI, Rd: isa.RegS0, Rs1: isa.RegZero, Imm: 0},  // 0x1004
		isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 11},   // 0x1008 target
		isa.Inst{Op: isa.OpADDI, Rd: isa.RegS0, Rs1: isa.RegS0, Imm: 1},    // 0x100C
		isa.Inst{Op: isa.OpSLTI, Rd: isa.RegT0, Rs1: isa.RegS0, Imm: 2},    // 0x1010
		isa.Inst{Op: isa.OpBEQ, Rs1: isa.RegT0, Rs2: isa.RegZero, Imm: 16}, // 0x1014 → halt
		isa.Inst{Op: isa.OpLW, Rd: isa.RegT1, Rs1: isa.RegZero, Imm: 0x1030},
		isa.Inst{Op: isa.OpSW, Rs2: isa.RegT1, Rs1: isa.RegZero, Imm: 0x1008},
		isa.Inst{Op: isa.OpJAL, Rd: isa.RegZero, Imm: -24}, // 0x1020 → 0x1008
		isa.Inst{Op: isa.OpHALT}, // 0x1024
	)
	img = append(img, make([]byte, 0x1030-0x1000-len(img))...)
	var data [4]byte
	binary.LittleEndian.PutUint32(data[:], newWord)
	return append(img, data[:]...)
}

// TestICacheSelfModifyingCode: the decoded cache must observe stores to code
// pages (the per-page version bump) and re-predecode, exactly matching the
// uncached interpreter.
func TestICacheSelfModifyingCode(t *testing.T) {
	cached, plain := newCPUPair(t, smcProgram())
	exC := cached.Run(1_000_000)
	exP := plain.Run(1_000_000)
	if exC.Reason != ExitHalt || exP.Reason != ExitHalt {
		t.Fatalf("exits: cached %v plain %v", exC, exP)
	}
	if got := cached.X[isa.RegA0]; got != 111 {
		t.Fatalf("cached a0 = %d, want 111 (stale decoded block?)", got)
	}
	if cached.X != plain.X || cached.Cycles != plain.Cycles ||
		cached.Instret != plain.Instret || cached.PC != plain.PC {
		t.Fatalf("state diverged: cached (a0=%d cyc=%d ret=%d) plain (a0=%d cyc=%d ret=%d)",
			cached.X[isa.RegA0], cached.Cycles, cached.Instret,
			plain.X[isa.RegA0], plain.Cycles, plain.Instret)
	}
	st := cached.ICache.Stats
	if st.Invalidations == 0 {
		t.Errorf("self-modifying store did not invalidate: %+v", st)
	}
	if st.Predecodes < 2 {
		t.Errorf("expected re-predecode after invalidation: %+v", st)
	}
}

// TestICacheStreamsHotLoop: a tight loop must be served almost entirely from
// the decoded cache, with identical architectural outcome.
func TestICacheStreamsHotLoop(t *testing.T) {
	// for s0 = 1000; s0 != 0; s0-- { a0 += 3 }
	img := words(
		isa.Inst{Op: isa.OpADDI, Rd: isa.RegS0, Rs1: isa.RegZero, Imm: 1000},
		isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 3},
		isa.Inst{Op: isa.OpADDI, Rd: isa.RegS0, Rs1: isa.RegS0, Imm: -1},
		isa.Inst{Op: isa.OpBNE, Rs1: isa.RegS0, Rs2: isa.RegZero, Imm: -8},
		isa.Inst{Op: isa.OpHALT},
	)
	cached, plain := newCPUPair(t, img)
	exC, exP := cached.Run(1_000_000), plain.Run(1_000_000)
	if exC.Reason != ExitHalt || exP.Reason != ExitHalt {
		t.Fatalf("exits: cached %v plain %v", exC, exP)
	}
	if cached.X != plain.X || cached.Cycles != plain.Cycles || cached.Instret != plain.Instret {
		t.Fatal("cached and plain interpreters diverged")
	}
	st := cached.ICache.Stats
	// Superblock dispatch performs one lookup per block entry plus one per
	// terminator, so the loop's 4 instructions cost 2 lookups per iteration.
	if st.Hits < 1900 {
		t.Errorf("hot loop barely hit the cache: %+v", st)
	}
	if got := cached.ICache.HitRate(); got < 0.99 {
		t.Errorf("hit rate = %.3f", got)
	}
	if cached.ICache.Pages() == 0 {
		t.Error("no pages cached")
	}
	// The counter surface the benchmarks consume.
	cs := cached.ICache.Counters()
	if cs.Get("icache_hits") != st.Hits || cs.Get("icache_predecodes") != st.Predecodes {
		t.Errorf("counter set out of sync: %v vs %+v", cs, st)
	}
}

// TestICacheCapacityEvictsSingleVictim: hitting maxCachedPages must evict
// exactly one page — the least recently fetched — instead of dropping the
// whole cache (the old behaviour, which made pathological code pay a full
// re-predecode of its entire footprint). Regression test for the eviction
// path, which was previously untested.
func TestICacheCapacityEvictsSingleVictim(t *testing.T) {
	np := uint64(maxCachedPages + 8)
	g := mem.NewGuestPhys(mem.NewPool(np+8), np*isa.PageSize)
	if err := g.PopulateAll(); err != nil {
		t.Fatal(err)
	}
	ic := NewICache()
	// Fill to capacity: pages 0 .. maxCachedPages-1, in order.
	for gfn := uint64(0); gfn < maxCachedPages; gfn++ {
		ic.fill(g, gfn)
	}
	if ic.Pages() != maxCachedPages {
		t.Fatalf("cache holds %d pages, want %d", ic.Pages(), maxCachedPages)
	}
	// Touch page 0 so it is no longer the LRU; page 1 becomes the victim.
	if ic.lookup(g, 0) == nil {
		t.Fatal("page 0 vanished before capacity was exceeded")
	}
	ic.fill(g, maxCachedPages) // one past capacity
	if ic.Pages() != maxCachedPages {
		t.Fatalf("after eviction cache holds %d pages, want %d", ic.Pages(), maxCachedPages)
	}
	if ic.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (whole-cache drop?)", ic.Stats.Evictions)
	}
	if _, ok := ic.pages[1]; ok {
		t.Error("LRU victim (page 1) survived the eviction")
	}
	for _, gfn := range []uint64{0, 2, maxCachedPages - 1, maxCachedPages} {
		if _, ok := ic.pages[gfn]; !ok {
			t.Errorf("page %d was dropped alongside the victim", gfn)
		}
	}
	// Evicting the page the one-entry MRU shortcut points at must reset the
	// shortcut rather than leave a dangling pointer.
	ic2 := NewICache()
	for gfn := uint64(0); gfn < maxCachedPages; gfn++ {
		ic2.fill(g, gfn)
	}
	ic2.lookup(g, 0)         // current page := 0
	ic2.pages[0].lastUse = 0 // force it to be the LRU victim
	ic2.fill(g, maxCachedPages)
	if _, ok := ic2.pages[0]; ok {
		t.Error("forced LRU (page 0) survived")
	}
	if ic2.curGfn == 0 {
		t.Error("MRU shortcut still points at the evicted page")
	}
	if p := ic2.lookup(g, 0); p != nil {
		t.Error("lookup of evicted current page returned a stale pointer")
	}
}

// TestICacheHotPageSurvivesEvictionPressure: a streaming hit must refresh
// the eviction stamp. Before the fix, lookup stamped lastUse only on MRU
// *transitions*, so a page hit exclusively through the MRU shortcut — a
// tight loop, and since block chaining every chained entry via noteChainHit
// — kept a stamp frozen at its entry time while colder pages accumulated
// newer ones, and under fill pressure evictOne victimized the hottest page
// in the cache, the one currently executing.
func TestICacheHotPageSurvivesEvictionPressure(t *testing.T) {
	np := uint64(maxCachedPages + 64)
	g := mem.NewGuestPhys(mem.NewPool(np+8), np*isa.PageSize)
	if err := g.PopulateAll(); err != nil {
		t.Fatal(err)
	}
	ic := NewICache()
	const hot = uint64(0)
	ic.fill(g, hot)
	hp := ic.lookup(g, hot) // MRU hit: fill left cur on the hot page
	if hp == nil {
		t.Fatal("hot page not cached")
	}
	before := hp.lastUse
	if ic.lookup(g, hot) != hp {
		t.Fatal("hot page lookup failed")
	}
	if hp.lastUse <= before {
		t.Fatalf("streaming MRU hit left lastUse frozen at %d", hp.lastUse)
	}
	// Chained-loop pressure: the hot page is entered via chain links only
	// (no lookup transitions to restamp it) while more cold pages than the
	// cache holds are filled. The hot page must survive every eviction.
	for cold := uint64(1); cold <= maxCachedPages+16; cold++ {
		ic.noteChainHit(hot, hp)
		ic.fill(g, cold)
		if _, ok := ic.pages[hot]; !ok {
			t.Fatalf("hot page evicted after %d cold fills", cold)
		}
	}
	if ic.Stats.Evictions == 0 {
		t.Fatal("pressure never triggered an eviction — the test lost its teeth")
	}
}

// TestICacheQuantumAndTraps: cache behaviour across quantum expiry, guest
// traps (illegal instruction vectoring through STVEC) and re-entry must be
// invisible.
func TestICacheQuantumAndTraps(t *testing.T) {
	// STVEC handler at 0x1100 skips the faulting instruction via sepc += 4.
	img := words(
		isa.Inst{Op: isa.OpCSRRW, Rd: isa.RegZero, Rs1: isa.RegT0, Imm: int32(isa.CSRStvec)}, // t0 preset
		isa.Inst{Op: isa.OpADDI, Rd: isa.RegS0, Rs1: isa.RegZero, Imm: 200},
		isa.Inst{Op: isa.OpIllegal}, // traps every iteration (loop re-enters here)
		isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 7},
		isa.Inst{Op: isa.OpADDI, Rd: isa.RegS0, Rs1: isa.RegS0, Imm: -1},
		isa.Inst{Op: isa.OpBNE, Rs1: isa.RegS0, Rs2: isa.RegZero, Imm: -12},
		isa.Inst{Op: isa.OpHALT},
	)
	// Handler: csrr t1, sepc; addi t1, t1, 4; csrw sepc, t1; sret
	handler := words(
		isa.Inst{Op: isa.OpCSRRS, Rd: isa.RegT1, Rs1: isa.RegZero, Imm: int32(isa.CSRSepc)},
		isa.Inst{Op: isa.OpADDI, Rd: isa.RegT1, Rs1: isa.RegT1, Imm: 4},
		isa.Inst{Op: isa.OpCSRRW, Rd: isa.RegZero, Rs1: isa.RegT1, Imm: int32(isa.CSRSepc)},
		isa.Inst{Op: isa.OpSRET},
	)
	run := func(on bool) *CPU {
		g := mem.NewGuestPhys(mem.NewPool(ramPages*2), ramPages*isa.PageSize)
		if err := g.PopulateAll(); err != nil {
			t.Fatal(err)
		}
		if f := g.Write(0x1000, img); f != nil {
			t.Fatal(f)
		}
		if f := g.Write(0x1100, handler); f != nil {
			t.Fatal(f)
		}
		c := New(g, mmu.NewContext(g, mmu.StyleDirect))
		c.Priv = PrivS
		c.PC = 0x1000
		c.X[isa.RegT0] = 0x1100
		if on {
			c.ICache = NewICache()
		}
		// Tiny quanta force many exits/re-entries mid-stream.
		for {
			ex := c.Run(50)
			if ex.Reason == ExitHalt {
				return c
			}
			if ex.Reason != ExitQuantum {
				t.Fatalf("unexpected exit %v at pc %#x", ex, c.PC)
			}
		}
	}
	cached, plain := run(true), run(false)
	if cached.X != plain.X || cached.Cycles != plain.Cycles ||
		cached.Instret != plain.Instret || cached.CSR != plain.CSR ||
		cached.Stats != plain.Stats {
		t.Fatalf("diverged:\ncached cyc=%d ret=%d traps=%d\nplain  cyc=%d ret=%d traps=%d",
			cached.Cycles, cached.Instret, cached.Stats.Traps,
			plain.Cycles, plain.Instret, plain.Stats.Traps)
	}
	if cached.X[isa.RegA0] != 200*7 {
		t.Fatalf("a0 = %d", cached.X[isa.RegA0])
	}
}
