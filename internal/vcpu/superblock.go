package vcpu

import (
	"govisor/internal/isa"
	"govisor/internal/mem"
)

// Superblock execution: straight-line runs of predecoded instructions
// dispatched as one unit, with the per-instruction event checks hoisted to
// block entry. The engine is architecturally invisible by construction:
//
//   - Event horizon. The slow path checks the quantum deadline, the STIMECMP
//     latch and pending interrupts before every instruction. Inside a block
//     none of those checks can fire: dispatch requires that the block's
//     worst-case cycle span stays strictly below both the deadline and an
//     unlatched STIMECMP, and nothing inside a block can make a new
//     interrupt pending (Sip/Sie/Sstatus only change via CSR writes, traps
//     and VMM injection — the first two end blocks, the last happens outside
//     Run). When the horizon check fails, the caller falls back to the
//     per-instruction path, so event boundaries land on exactly the same
//     instruction as an unblocked run.
//
//   - Bail-anywhere. Skipped checks are reads with no side effects (the one
//     write, the STIMECMP latch, is excluded by the horizon), so abandoning
//     a block at any instruction boundary and resuming the outer loop is
//     always exact: the outer loop performs precisely the checks the slow
//     path would have performed at that boundary. The engine uses this
//     liberally — a guest trap redirecting the PC, a TLB generation change
//     under the fetch stream, or a store invalidating the executing page all
//     just end the block.
//
//   - Exact replay. Fetch translations for instructions after the first are
//     replayed through mmu.Context.ReplayFetch (translation count, TLB LRU
//     stamp and hit counter — identical to what TranslateFetch would do),
//     and cycle/instret accounting is batched into one addition per block,
//     which is exact because nothing inside a block reads the clock.
//
// In-block instructions run on the threaded executors (dispatch.go) via the
// slot's decode-time-resolved func pointer — stores included: storeExec
// detects stores into the executing page through c.codeGfn (set for the
// block's duration) and reports stSMC, so blocks need no per-instruction
// store special-casing. Under CPU.NoThreadedDispatch the block body instead
// routes through blockLoad/blockStore and the execute switch — the
// differential reference arm.

// runBlock executes the superblock starting at slot idx of predecoded page p
// (whose guest-physical page is gfn), assuming the caller already performed
// this instruction's fetch translation and event checks. dispatched reports
// whether the block was entered at all; when false nothing happened and the
// caller must execute the instruction on the single-instruction path. When
// done is true, Run must return ex; otherwise the outer loop resumes at the
// current PC (which may be mid-block after a bail, or the terminator).
func (c *CPU) runBlock(p *decodedPage, idx, gfn, deadline uint64) (ex Exit, done, dispatched bool) {
	n := uint64(p.blkLen[idx])
	// Worst-case cycle span: every instruction's base cost plus, for each
	// memory op, the access itself and a maximal page-table walk. Fetch
	// replays add no cycles (a TLB geometry change ends the block before a
	// fetch could walk).
	span := n*c.Costs.Instr +
		uint64(p.blkMem[idx])*(c.Costs.MemAccess+c.MMU.MaxWalkRefs()*c.Costs.PTRef)
	horizon := c.Cycles + span
	if horizon >= deadline {
		return Exit{}, false, false
	}
	if cmp := c.CSR.Stimecmp; cmp != 0 && horizon >= cmp && c.CSR.Sip&(1<<isa.IntTimer) == 0 {
		return Exit{}, false, false
	}

	instr := c.Costs.Instr
	threaded := !c.NoThreadedDispatch
	// Arm the self-modifying-code detector in storeExec for the block's
	// duration; outside blocks the sentinel never matches a store.
	c.codeGfn = gfn
	var retired uint64
loop:
	for retired < n {
		j := idx + retired
		if p.valid[j>>6]&(1<<(j&63)) == 0 {
			p.ins[j] = isa.Decode(p.raw[j])
			p.fn[j] = execTable.For(p.ins[j].Op)
			p.valid[j>>6] |= 1 << (j & 63)
		}
		in := p.ins[j]
		if retired > 0 && !c.MMU.ReplayFetch(c.PC) {
			break // TLB insert/flush under the fetch stream: resume slow
		}
		retired++
		// Statuses stay small ints and the rare Exit goes through
		// c.pendExit, keeping the large Exit struct out of the
		// per-instruction return path.
		var st int
		if threaded {
			// Block-specialized execution: every instruction — stores
			// included — runs the slot's decode-time-resolved executor.
			st = p.fn[j](c, in, p.raw[j])
		} else {
			switch {
			case isa.IsLoad(in.Op):
				st = c.blockLoad(in)
			case isa.IsStore(in.Op):
				st = c.blockStore(in)
			default:
				pcNext := c.PC + 4
				ex, d := c.execute(in, p.raw[j])
				if d {
					c.codeGfn = mem.NoFrame
					c.Cycles += retired * instr
					c.Instret += retired
					return ex, true, true
				}
				if c.PC == pcNext {
					st = stOK
				} else {
					st = stTrap
				}
			}
		}
		switch st {
		case stOK:
		case stExit:
			c.codeGfn = mem.NoFrame
			c.Cycles += retired * instr
			c.Instret += retired
			return c.pendExit, true, true
		default: // stTrap: control redirected; stSMC: the block wrote itself
			break loop
		}
	}
	c.codeGfn = mem.NoFrame
	c.Cycles += retired * instr
	c.Instret += retired
	return Exit{}, false, true
}

// blockLoad is the load entry for the reference (switch-dispatch) block arm:
// the shared loadExec body behind the loadMeta width switch the threaded
// executors resolve at decode time instead.
//
//govisor:pair loadExec
func (c *CPU) blockLoad(in isa.Inst) int {
	size, signed := loadMeta(in.Op)
	return c.loadExec(in, size, signed)
}

// blockStore is the store entry for the reference (switch-dispatch) block
// arm: the shared storeExec body (whose c.codeGfn check reports stores into
// the executing page as stSMC) behind the storeSize width switch the
// threaded executors resolve at decode time instead.
//
//govisor:pair storeExec
func (c *CPU) blockStore(in isa.Inst) int {
	return c.storeExec(in, storeSize(in.Op))
}
