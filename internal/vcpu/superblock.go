package vcpu

import (
	"govisor/internal/isa"
	"govisor/internal/mem"
)

// Superblock execution: straight-line runs of predecoded instructions
// dispatched as one unit, with the per-instruction event checks hoisted to
// block entry. The engine is architecturally invisible by construction:
//
//   - Event horizon. The slow path checks the quantum deadline, the STIMECMP
//     latch and pending interrupts before every instruction. Inside a block
//     none of those checks can fire: dispatch requires that the block's
//     worst-case cycle span stays strictly below both the deadline and an
//     unlatched STIMECMP, and nothing inside a block can make a new
//     interrupt pending (Sip/Sie/Sstatus only change via CSR writes, traps
//     and VMM injection — the first two end blocks, the last happens outside
//     Run). When the horizon check fails, the caller falls back to the
//     per-instruction path, so event boundaries land on exactly the same
//     instruction as an unblocked run.
//
//   - Bail-anywhere. Skipped checks are reads with no side effects (the one
//     write, the STIMECMP latch, is excluded by the horizon), so abandoning
//     a block at any instruction boundary and resuming the outer loop is
//     always exact: the outer loop performs precisely the checks the slow
//     path would have performed at that boundary. The engine uses this
//     liberally — a guest trap redirecting the PC, a TLB generation change
//     under the fetch stream, or a store invalidating the executing page all
//     just end the block.
//
//   - Exact replay. Fetch translations for instructions after the first are
//     replayed through mmu.Context.ReplayFetch (translation count, TLB LRU
//     stamp and hit counter — identical to what TranslateFetch would do),
//     and cycle/instret accounting is batched into one addition per block,
//     which is exact because nothing inside a block reads the clock.
//
// In-block instructions run on the threaded executors (dispatch.go) via the
// slot's decode-time-resolved func pointer — stores included: storeExec
// detects stores into the executing page through c.codeGfn (set for the
// block's duration) and reports stSMC, so blocks need no per-instruction
// store special-casing. Under CPU.NoThreadedDispatch the block body instead
// routes through blockLoad/blockStore and the execute switch — the
// differential reference arm.

// blockAdmissible reports whether a straight-line run of n instructions
// containing memOps memory operations can retire without any event boundary
// landing inside it: the run's worst-case cycle span — every instruction's
// base cost plus, per memory op, the access itself and a maximal page-table
// walk (fetch replays add no cycles; a TLB geometry change ends the block
// before a fetch could walk) — must stay strictly below both the quantum
// deadline and an unlatched STIMECMP. The comparisons are wrap-guarded: the
// old `c.Cycles + span` horizon wrapped when the cycle counter ran near
// ^uint64(0) and falsely admitted blocks whose span crossed the deadline or
// the timer latch (bugfix; see TestBlockHorizonSaturatedCycles).
func (c *CPU) blockAdmissible(n, memOps, deadline uint64) bool {
	span := n*c.Costs.Instr +
		memOps*(c.Costs.MemAccess+c.MMU.MaxWalkRefs()*c.Costs.PTRef)
	if c.Cycles >= deadline || span >= deadline-c.Cycles {
		return false
	}
	if cmp := c.CSR.Stimecmp; cmp != 0 && c.CSR.Sip&(1<<isa.IntTimer) == 0 {
		if cmp <= c.Cycles || span >= cmp-c.Cycles {
			return false
		}
	}
	return true
}

// runBlock executes the superblock starting at slot idx of predecoded page p
// (whose guest-physical page is gfn), assuming the caller already performed
// this instruction's fetch translation and event checks. dispatched reports
// whether the block was entered at all; when false nothing happened and the
// caller must execute the instruction on the single-instruction path. When
// done is true, Run must return ex; otherwise the outer loop resumes at the
// current PC (which may be mid-block after a bail, or the terminator).
//
// Cross-page continuation: a run cut by the page boundary rather than a
// terminator may continue into the successor page when the boundary's chain
// link proves the successor still exact — observed PC recurs, target page
// version unchanged, translation snapshot revalidated by mmu.ChainFetch
// (which replays precisely the fetch bookkeeping the outer loop's real
// TranslateFetch would perform) — and the successor run passes its own
// admission check against the advanced clock. That check is the same
// decision a fresh block entry at the successor's first instruction would
// make, and the entry admission proves no loop-top event (quantum, timer
// latch, interrupt window) could have fired at the boundary, so event
// boundaries land on exactly the same instruction as the unchained run.
func (c *CPU) runBlock(p *decodedPage, idx, gfn, deadline uint64) (ex Exit, done, dispatched bool) {
	n := uint64(p.blkLen[idx])
	memOps := uint64(p.blkMem[idx])
	if !c.blockAdmissible(n, memOps, deadline) {
		return Exit{}, false, false
	}

	instr := c.Costs.Instr
	threaded := !c.NoThreadedDispatch
	// Arm the self-modifying-code detector in storeExec for the block's
	// duration; outside blocks the sentinel never matches a store.
	c.codeGfn = gfn
	for {
		retired, st := c.retireRun(p, idx, n, threaded, memOps == 0)
		c.Cycles += retired * instr
		c.Instret += retired
		if st == stExit {
			c.codeGfn = mem.NoFrame
			return c.pendExit, true, true
		}
		if st != stOK || idx+n < instPerPage || c.NoBlockChain {
			break
		}
		// The run was cut by the page boundary, not a terminator. Arm the
		// boundary pseudo-terminator: if the block ends here, the outer loop
		// consumes the chain link (or resolves one from its real fetch); a
		// link that validates and admits right now lets the block continue
		// in place instead.
		c.chainPage, c.chainSlot, c.chainArmed = p, instPerPage-1, true
		l := p.chainAt(instPerPage - 1)
		if l == nil || l.pc != c.PC || c.Mem.PageVersion(l.gfn) != l.page.ver {
			break
		}
		tn := uint64(l.page.blkLen[l.tslot])
		tm := uint64(l.page.blkMem[l.tslot])
		if tn == 0 || !c.blockAdmissible(tn, tm, deadline) {
			break
		}
		if !c.MMU.ChainFetch(&l.snap, c.PC, c.Priv == PrivU) {
			break
		}
		c.chainArmed = false
		p, gfn, idx, n, memOps = l.page, l.gfn, uint64(l.tslot), tn, tm
		c.ICache.noteChainHit(gfn, p)
		c.ICache.Stats.Crossings++
		c.codeGfn = gfn
	}
	c.codeGfn = mem.NoFrame
	return Exit{}, false, true
}

// stBail is a retireRun-local status: the fetch replay could not prove the
// memoized translation still exact (TLB insert/flush under the fetch stream),
// so the run ended at an instruction boundary without retiring the slot.
const stBail = -1

// retireRun executes up to n straight-line predecoded instructions starting
// at slot idx of page p — the body loop shared by the superblock engine and
// the trace engine (trace.go), so the two retire instructions through
// literally the same code. The caller has already performed (or exactly
// replayed) the fetch translation of the first instruction; subsequent
// fetches replay through mmu.Context.ReplayFetch. The caller batches the
// cycle/instret accounting for the retired count. Status is stOK when all n
// retired cleanly, stExit when Run must return c.pendExit, stTrap/stSMC when
// the run ended early at an instruction boundary (guest trap redirected
// control / the body stored into its own code page — both counted in
// retired), or stBail when the fetch replay failed before the slot retired.
//
// memless asserts the run contains no memory operations (blkMem == 0).
// Every such instruction — the straight-line set minus loads/stores is pure
// ALU plus FENCE — unconditionally retires with PC advancing one word:
// nothing can trap, exit, store into the code page, or touch the TLB or the
// fetch memo. The engine exploits that with a batched span replay
// (mmu.ReplayFetchSpan, bit-identical bookkeeping because no data-side
// touch can interleave with the folded fetch hits) and a body loop with no
// per-instruction replay or status dispatch.
func (c *CPU) retireRun(p *decodedPage, idx, n uint64, threaded, memless bool) (retired uint64, status int) {
	if memless && n > 1 && c.MMU.ReplayFetchSpan(c.PC, n-1) {
		if threaded {
			for retired < n {
				j := idx + retired
				if p.valid[j>>6]&(1<<(j&63)) == 0 {
					p.ins[j] = isa.Decode(p.raw[j])
					p.fn[j] = execTable.For(p.ins[j].Op)
					p.valid[j>>6] |= 1 << (j & 63)
				}
				p.fn[j](c, p.ins[j], p.raw[j])
				retired++
			}
		} else {
			for retired < n {
				j := idx + retired
				if p.valid[j>>6]&(1<<(j&63)) == 0 {
					p.ins[j] = isa.Decode(p.raw[j])
					p.fn[j] = execTable.For(p.ins[j].Op)
					p.valid[j>>6] |= 1 << (j & 63)
				}
				c.execute(p.ins[j], p.raw[j])
				retired++
			}
		}
		return n, stOK
	}
	for retired < n {
		j := idx + retired
		if p.valid[j>>6]&(1<<(j&63)) == 0 {
			p.ins[j] = isa.Decode(p.raw[j])
			p.fn[j] = execTable.For(p.ins[j].Op)
			p.valid[j>>6] |= 1 << (j & 63)
		}
		in := p.ins[j]
		if retired > 0 && !c.MMU.ReplayFetch(c.PC) {
			return retired, stBail // TLB insert/flush under the fetch stream
		}
		retired++
		// Statuses stay small ints and the rare Exit goes through
		// c.pendExit, keeping the large Exit struct out of the
		// per-instruction return path.
		var st int
		if threaded {
			// Block-specialized execution: every instruction — stores
			// included — runs the slot's decode-time-resolved executor.
			st = p.fn[j](c, in, p.raw[j])
		} else {
			switch {
			case isa.IsLoad(in.Op):
				st = c.blockLoad(in)
			case isa.IsStore(in.Op):
				st = c.blockStore(in)
			default:
				pcNext := c.PC + 4
				ex, d := c.execute(in, p.raw[j])
				if d {
					c.pendExit = ex
					return retired, stExit
				}
				if c.PC == pcNext {
					st = stOK
				} else {
					st = stTrap
				}
			}
		}
		switch st {
		case stOK:
		case stExit:
			return retired, stExit
		default: // stTrap: control redirected; stSMC: the run wrote itself
			return retired, st
		}
	}
	return retired, stOK
}

// blockLoad is the load entry for the reference (switch-dispatch) block arm:
// the shared loadExec body behind the loadMeta width switch the threaded
// executors resolve at decode time instead.
//
//govisor:pair loadExec
func (c *CPU) blockLoad(in isa.Inst) int {
	size, signed := loadMeta(in.Op)
	return c.loadExec(in, size, signed)
}

// blockStore is the store entry for the reference (switch-dispatch) block
// arm: the shared storeExec body (whose c.codeGfn check reports stores into
// the executing page as stSMC) behind the storeSize width switch the
// threaded executors resolve at decode time instead.
//
//govisor:pair storeExec
func (c *CPU) blockStore(in isa.Inst) int {
	return c.storeExec(in, storeSize(in.Op))
}
