package vcpu

import (
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/mmu"
)

// Superblock execution: straight-line runs of predecoded instructions
// dispatched as one unit, with the per-instruction event checks hoisted to
// block entry. The engine is architecturally invisible by construction:
//
//   - Event horizon. The slow path checks the quantum deadline, the STIMECMP
//     latch and pending interrupts before every instruction. Inside a block
//     none of those checks can fire: dispatch requires that the block's
//     worst-case cycle span stays strictly below both the deadline and an
//     unlatched STIMECMP, and nothing inside a block can make a new
//     interrupt pending (Sip/Sie/Sstatus only change via CSR writes, traps
//     and VMM injection — the first two end blocks, the last happens outside
//     Run). When the horizon check fails, the caller falls back to the
//     per-instruction path, so event boundaries land on exactly the same
//     instruction as an unblocked run.
//
//   - Bail-anywhere. Skipped checks are reads with no side effects (the one
//     write, the STIMECMP latch, is excluded by the horizon), so abandoning
//     a block at any instruction boundary and resuming the outer loop is
//     always exact: the outer loop performs precisely the checks the slow
//     path would have performed at that boundary. The engine uses this
//     liberally — a guest trap redirecting the PC, a TLB generation change
//     under the fetch stream, or a store invalidating the executing page all
//     just end the block.
//
//   - Exact replay. Fetch translations for instructions after the first are
//     replayed through mmu.Context.ReplayFetch (translation count, TLB LRU
//     stamp and hit counter — identical to what TranslateFetch would do),
//     and cycle/instret accounting is batched into one addition per block,
//     which is exact because nothing inside a block reads the clock.

// runBlock executes the superblock starting at slot idx of predecoded page p
// (whose guest-physical page is gfn), assuming the caller already performed
// this instruction's fetch translation and event checks. dispatched reports
// whether the block was entered at all; when false nothing happened and the
// caller must execute the instruction on the single-instruction path. When
// done is true, Run must return ex; otherwise the outer loop resumes at the
// current PC (which may be mid-block after a bail, or the terminator).
func (c *CPU) runBlock(p *decodedPage, idx, gfn, deadline uint64) (ex Exit, done, dispatched bool) {
	n := uint64(p.blkLen[idx])
	// Worst-case cycle span: every instruction's base cost plus, for each
	// memory op, the access itself and a maximal page-table walk. Fetch
	// replays add no cycles (a TLB geometry change ends the block before a
	// fetch could walk).
	span := n*c.Costs.Instr +
		uint64(p.blkMem[idx])*(c.Costs.MemAccess+c.MMU.MaxWalkRefs()*c.Costs.PTRef)
	horizon := c.Cycles + span
	if horizon >= deadline {
		return Exit{}, false, false
	}
	if cmp := c.CSR.Stimecmp; cmp != 0 && horizon >= cmp && c.CSR.Sip&(1<<isa.IntTimer) == 0 {
		return Exit{}, false, false
	}

	instr := c.Costs.Instr
	var retired uint64
loop:
	for retired < n {
		j := idx + retired
		if p.valid[j>>6]&(1<<(j&63)) == 0 {
			p.ins[j] = isa.Decode(p.raw[j])
			p.valid[j>>6] |= 1 << (j & 63)
		}
		in := p.ins[j]
		if retired > 0 && !c.MMU.ReplayFetch(c.PC) {
			break // TLB insert/flush under the fetch stream: resume slow
		}
		retired++
		// Loads and stores run on block-specialized executors: identical
		// guest-visible semantics to execLoad/execStore (the differential
		// suite holds the two in lockstep), but status is a small int and
		// the rare Exit goes through c.blockExit, keeping the large Exit
		// struct out of the per-instruction return path.
		var st int
		switch {
		case isa.IsLoad(in.Op):
			st = c.blockLoad(in)
		case isa.IsStore(in.Op):
			st = c.blockStore(in, gfn)
		default:
			pcNext := c.PC + 4
			ex, d := c.execute(in, p.raw[j])
			if d {
				c.Cycles += retired * instr
				c.Instret += retired
				return ex, true, true
			}
			if c.PC == pcNext {
				st = bOK
			} else {
				st = bTrap
			}
		}
		switch st {
		case bOK:
		case bExit:
			c.Cycles += retired * instr
			c.Instret += retired
			return c.blockExit, true, true
		default: // bTrap: control redirected; bSMC: the block wrote itself
			break loop
		}
	}
	c.Cycles += retired * instr
	c.Instret += retired
	return Exit{}, false, true
}

// Block executor statuses.
const (
	bOK   = iota // retired; continue the block
	bTrap        // a guest trap redirected control in place; end the block
	bExit        // Run must return c.blockExit
	bSMC         // retired, but the store hit the executing code page
)

// blockGuestTrap delivers a guest trap from inside a block.
func (c *CPU) blockGuestTrap(cause, tval uint64) int {
	if e, exited := c.guestTrap(cause, tval); exited {
		c.blockExit = e
		return bExit
	}
	return bTrap
}

// blockTranslateFault is translateFault with block-status results.
func (c *CPU) blockTranslateFault(va uint64, acc isa.Access, fault *mmu.Fault) int {
	switch fault.Kind {
	case mmu.FaultGuest:
		return c.blockGuestTrap(fault.Cause, va)
	case mmu.FaultShadowMiss:
		c.blockExit = c.vmExit(Exit{Reason: ExitShadowMiss, VA: va, Access: acc})
		return bExit
	default: // mmu.FaultHost
		c.blockExit = c.vmExit(Exit{Reason: ExitHostFault, VA: va, Access: acc, Mem: fault.Mem})
		return bExit
	}
}

// blockLoad is execLoad for the block path. Semantics, cycle charges, fault
// taxonomy and statistics are identical — any change here must land in
// execLoad too (and vice versa); the superblock differential tests enforce
// the lockstep.
func (c *CPU) blockLoad(in isa.Inst) int {
	size, signed := loadMeta(in.Op)
	va := c.X[in.Rs1] + uint64(int64(in.Imm))
	if va&uint64(size-1) != 0 {
		return c.blockGuestTrap(isa.CauseLoadMisaligned, va)
	}
	gpa, refs, fault := c.MMU.TranslateData(va, isa.AccRead, c.Priv == PrivU)
	c.Cycles += uint64(refs) * c.Costs.PTRef
	if fault != nil {
		return c.blockTranslateFault(va, isa.AccRead, fault)
	}
	if !c.Mem.Contains(gpa) && c.IsMMIO != nil && c.IsMMIO(gpa) {
		c.PC += 4
		c.blockExit = c.vmExit(Exit{Reason: ExitMMIO, MMIO: MMIOInfo{
			GPA: gpa, Size: uint8(size), Rd: in.Rd, Signed: signed,
		}})
		return bExit
	}
	c.Cycles += c.Costs.MemAccess
	v, f := c.Mem.ReadUint(gpa, size)
	if f != nil {
		if f.Kind == mem.FaultBeyondRAM {
			return c.blockGuestTrap(isa.CauseLoadAccess, va)
		}
		c.blockExit = c.memFaultExit(va, isa.AccRead, f)
		return bExit
	}
	if signed {
		switch size {
		case 1:
			v = uint64(int64(int8(v)))
		case 2:
			v = uint64(int64(int16(v)))
		case 4:
			v = uint64(int64(int32(v)))
		}
	}
	c.SetReg(in.Rd, v)
	c.PC += 4
	return bOK
}

// blockStore is execStore for the block path (same lockstep contract as
// blockLoad). codeGfn is the executing page: a store landing there is
// self-modifying code, which the per-instruction path would observe on the
// very next fetch, so the block ends after the store retires.
func (c *CPU) blockStore(in isa.Inst, codeGfn uint64) int {
	size := storeSize(in.Op)
	va := c.X[in.Rs1] + uint64(int64(in.Imm))
	val := c.X[in.Rs2]
	if va&uint64(size-1) != 0 {
		return c.blockGuestTrap(isa.CauseStoreMisaligned, va)
	}
	gpa, refs, fault := c.MMU.TranslateData(va, isa.AccWrite, c.Priv == PrivU)
	c.Cycles += uint64(refs) * c.Costs.PTRef
	if fault != nil {
		return c.blockTranslateFault(va, isa.AccWrite, fault)
	}
	if !c.Mem.Contains(gpa) && c.IsMMIO != nil && c.IsMMIO(gpa) {
		c.PC += 4
		c.blockExit = c.vmExit(Exit{Reason: ExitMMIO, MMIO: MMIOInfo{
			GPA: gpa, Size: uint8(size), Write: true, Value: val,
		}})
		return bExit
	}
	c.Cycles += c.Costs.MemAccess
	if f := c.Mem.WriteUint(gpa, size, val); f != nil {
		if f.Kind == mem.FaultBeyondRAM {
			return c.blockGuestTrap(isa.CauseStoreAccess, va)
		}
		c.blockExit = c.memFaultExit(va, isa.AccWrite, f)
		return bExit
	}
	c.PC += 4
	if gpa>>isa.PageShift == codeGfn {
		return bSMC
	}
	return bOK
}
