package vcpu

import (
	"fmt"
	"math/bits"

	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/mmu"
)

// Privilege levels of the (virtual) architecture.
const (
	PrivU uint8 = 0
	PrivS uint8 = 1
)

// Stats counts interpreter activity.
type Stats struct {
	Exits      [NumExitReasons]uint64
	Traps      uint64 // architectural trap entries (direct or injected)
	Interrupts uint64 // interrupts delivered directly (full-privilege mode)
}

// CPU is one GV64 hart.
type CPU struct {
	X    [32]uint64
	PC   uint64
	Priv uint8 // virtual privilege: PrivU or PrivS
	CSR  CSRFile

	Mem *mem.GuestPhys
	MMU *mmu.Context

	// IsMMIO reports whether a guest-physical address belongs to a device
	// window; such accesses exit with ExitMMIO. Nil means no devices.
	IsMMIO func(gpa uint64) bool

	// Deprivileged selects the trap-and-emulate / paravirtual regime: all
	// privileged instructions and guest-visible traps exit to the VMM.
	Deprivileged bool

	// Venv is the value the guest reads from the CSRVenv discovery register.
	Venv uint64

	Costs   Costs
	Cycles  uint64 // simulated time, 1 cycle = 1 ns
	Instret uint64

	// ICache, when non-nil, enables the decoded-instruction block cache on
	// the fetch path. It is architecturally invisible: guest state, cycle
	// accounting and all simulation statistics are identical with it on or
	// off; only host-side speed changes.
	ICache *ICache

	// NoSuperblocks disables superblock dispatch (see superblock.go),
	// pinning execution to the per-instruction path even when the ICache is
	// on. Superblocks are architecturally invisible like the ICache they
	// build on; the switch exists for the differential transparency tests
	// and for isolating their host-side speedup in benchmarks.
	NoSuperblocks bool

	// NoThreadedDispatch pins instruction execution to the original
	// `switch in.Op` interpreter (execute, below) instead of the decode-
	// time-resolved executor table (dispatch.go). Threaded dispatch is
	// architecturally invisible like the ICache and superblocks; the switch
	// arm exists as the differential reference for the transparency tests
	// and for isolating the dispatch win in benchmarks.
	NoThreadedDispatch bool

	// NoWriteMemo pins the store path to the unmemoized reference arm:
	// per-store mmu.TranslateData, explicit RAM/MMIO range checks and
	// mem.WriteUint with its per-store version bump, instead of the
	// write-path memo stack (mmu.TranslateWrite + mem.WriteUintFast/Memo).
	// It also disables the load path's read-memo RAM-verdict fold. The memo
	// is architecturally invisible like the engines above; this arm exists
	// as the differential reference for the transparency tests and for
	// isolating the write-memo win in benchmark M5.
	NoWriteMemo bool

	// NoBlockChain pins block entry to the unchained reference arm: every
	// superblock ends at its page boundary and every block entry repeats
	// the full TranslateFetch + icache map lookup, instead of consuming
	// recorded chain links (icache.go) that revalidate the memoized
	// translation via mmu.ChainFetch — replaying its exact bookkeeping —
	// and let superblocks continue across page boundaries (superblock.go).
	// Chaining is architecturally invisible like the engines above; this
	// arm is the differential reference for the transparency tests and
	// isolates the chaining win in benchmark M6.
	NoBlockChain bool

	// NoTraces pins execution to the per-dispatch chained-block path: hot
	// chain links never promote to traces (trace.go) — the multi-block
	// straight-line runs with one entry check, one admission over the whole
	// span and batched accounting that let closed loops iterate without
	// returning to the fetch loop. Traces are architecturally invisible
	// like the engines above; this arm is the differential reference for
	// the transparency tests and isolates the trace win in benchmark M8.
	// Implied by NoBlockChain (core.Config wires the implication): traces
	// are built from and entered through chain links.
	NoTraces bool

	// pendExit carries the rare Exit out of the threaded executors and the
	// superblock engine so the per-instruction status stays a small int
	// (see dispatch.go).
	pendExit Exit

	// codeGfn is the guest-physical page a superblock is executing from
	// (mem.NoFrame outside blocks): storeExec compares every retired
	// store's page against it so self-modifying code ends the block. The
	// fold lets blocks dispatch stores through the slot's decode-resolved
	// executor like every other instruction; outside blocks the sentinel
	// never matches and the status is plain stOK.
	codeGfn uint64

	// Block-chain arm state: when a chain source retires — a pure
	// control-transfer terminator (isa.IsChainSource) or the page-boundary
	// pseudo-terminator of a superblock — the source slot is parked here.
	// The next fetch either consumes a matching recorded link (skipping the
	// icache map lookup and replaying the memoized translation exactly) or
	// records a fresh link from the real fetch it performs instead. Stale
	// armed state — left over from a trap, interrupt or VM exit landing
	// between arm and fetch — is harmless: consumption proves the link
	// exact (successor PC, page version, translation snapshot) before use,
	// and a mismatched record just parks a latest-wins link that will not
	// validate until the observed successor recurs.
	chainPage  *decodedPage
	chainSlot  uint16
	chainArmed bool

	Stats Stats
}

// New creates a CPU over the given memory and translation context.
func New(m *mem.GuestPhys, ctx *mmu.Context) *CPU {
	return &CPU{Mem: m, MMU: ctx, Costs: DefaultCosts(), codeGfn: mem.NoFrame}
}

// Reg returns register r (x0 reads as zero by construction).
func (c *CPU) Reg(r uint8) uint64 { return c.X[r] }

// SetReg writes register r, ignoring writes to x0.
func (c *CPU) SetReg(r uint8, v uint64) {
	if r != 0 {
		c.X[r] = v
	}
}

// AddCycles charges VMM-side emulation work to the guest's clock.
func (c *CPU) AddCycles(n uint64) { c.Cycles += n }

// SkipInstr advances PC past a 4-byte instruction the VMM emulated on the
// guest's behalf (MMIO, PT writes, hypercalls).
func (c *CPU) SkipInstr() { c.PC += 4 }

func (c *CPU) exit(e Exit) Exit {
	c.Stats.Exits[e.Reason]++
	return e
}

// vmExit charges the world-switch cost and returns the exit.
func (c *CPU) vmExit(e Exit) Exit {
	c.Cycles += c.Costs.ExitRound
	return c.exit(e)
}

// FinishMMIORead completes a load that exited with ExitMMIO: the VMM passes
// the device's value, and the CPU performs the architectural sign/zero
// extension into the destination register.
func (c *CPU) FinishMMIORead(info MMIOInfo, value uint64) {
	v := value
	switch info.Size {
	case 1:
		if info.Signed {
			v = uint64(int64(int8(v)))
		} else {
			v = uint64(uint8(v))
		}
	case 2:
		if info.Signed {
			v = uint64(int64(int16(v)))
		} else {
			v = uint64(uint16(v))
		}
	case 4:
		if info.Signed {
			v = uint64(int64(int32(v)))
		} else {
			v = uint64(uint32(v))
		}
	}
	c.SetReg(info.Rd, v)
}

// guestTrap delivers a guest-visible trap: directly when fully privileged,
// as an ExitGuestTrap for the VMM to inject when deprivileged.
func (c *CPU) guestTrap(cause, tval uint64) (Exit, bool) {
	if c.Deprivileged {
		return c.vmExit(Exit{Reason: ExitGuestTrap, Cause: cause, Tval: tval}), true
	}
	c.InjectTrap(cause, tval)
	return Exit{}, false
}

// translate wraps the MMU, converting its fault taxonomy into either a guest
// trap or a VM exit. ok is false when an Exit must be returned.
func (c *CPU) translate(va uint64, acc isa.Access) (gpa uint64, ex Exit, ok bool) {
	gpa, refs, fault := c.MMU.Translate(va, acc, c.Priv == PrivU)
	c.Cycles += uint64(refs) * c.Costs.PTRef
	if fault == nil {
		return gpa, Exit{}, true
	}
	return c.translateFault(va, acc, fault)
}

// fetchTranslate is translate for instruction fetch via the MMU's memoized
// fetch path: identical cycle charges, faults and statistics, less host work
// while the fetch stream stays on one page.
func (c *CPU) fetchTranslate(va uint64) (gpa uint64, ex Exit, ok bool) {
	gpa, refs, fault := c.MMU.TranslateFetch(va, c.Priv == PrivU)
	c.Cycles += uint64(refs) * c.Costs.PTRef
	if fault == nil {
		return gpa, Exit{}, true
	}
	return c.translateFault(va, isa.AccExec, fault)
}

// translateData is translate for loads and stores via the MMU's memoized
// data path: identical cycle charges, faults and statistics, less host work
// while accesses revisit recently used pages.
func (c *CPU) translateData(va uint64, acc isa.Access) (gpa uint64, ex Exit, ok bool) {
	gpa, refs, fault := c.MMU.TranslateData(va, acc, c.Priv == PrivU)
	c.Cycles += uint64(refs) * c.Costs.PTRef
	if fault == nil {
		return gpa, Exit{}, true
	}
	return c.translateFault(va, acc, fault)
}

func (c *CPU) translateFault(va uint64, acc isa.Access, fault *mmu.Fault) (gpa uint64, ex Exit, ok bool) {
	switch fault.Kind {
	case mmu.FaultGuest:
		e, exited := c.guestTrap(fault.Cause, va)
		if exited {
			return 0, e, false
		}
		// Trap delivered inside the guest; instruction restarts at the
		// handler. Signal the caller to continue the loop.
		return 0, Exit{Reason: ExitNone}, false
	case mmu.FaultShadowMiss:
		return 0, c.vmExit(Exit{Reason: ExitShadowMiss, VA: va, Access: acc}), false
	default: // mmu.FaultHost
		return 0, c.vmExit(Exit{Reason: ExitHostFault, VA: va, Access: acc, Mem: fault.Mem}), false
	}
}

// memFaultExit converts a guest-physical access fault on a data access.
func (c *CPU) memFaultExit(va uint64, acc isa.Access, f *mem.Fault) Exit {
	return c.vmExit(Exit{Reason: ExitHostFault, VA: va, Access: acc, Mem: f})
}

// Run interprets instructions until the cycle budget is exhausted or an exit
// condition arises. The budget is a cycle count relative to the current
// clock.
//
//govisor:worker
func (c *CPU) Run(budget uint64) Exit {
	deadline := c.Cycles + budget
	for {
		if c.Cycles >= deadline {
			return c.exit(Exit{Reason: ExitQuantum})
		}
		// Timer: STIP latches when the clock passes STIMECMP.
		if cmp := c.CSR.Stimecmp; cmp != 0 && c.Cycles >= cmp && c.CSR.Sip&(1<<isa.IntTimer) == 0 {
			c.CSR.Sip |= 1 << isa.IntTimer
		}
		if irq := c.PendingInterrupt(); irq != 0 {
			if c.Deprivileged {
				return c.vmExit(Exit{Reason: ExitIntrWindow})
			}
			c.Stats.Interrupts++
			c.InjectTrap(isa.CauseInterrupt|irq, 0)
			continue
		}

		// Fetch. With the decoded-instruction cache enabled, fetches that
		// stay on a predecoded page with an unchanged content version skip
		// the guest-RAM read and isa.Decode; translation still runs (via the
		// MMU's exact memoized fetch path) so the TLB's LRU state, the walk
		// cycle charges and every statistic evolve identically either way.
		if c.PC&3 != 0 {
			if e, exited := c.guestTrap(isa.CauseInstrMisaligned, c.PC); exited {
				return e
			}
			continue
		}
		var in isa.Inst
		var raw uint32
		var fn execFn
		if ic := c.ICache; ic != nil {
			var p *decodedPage
			var i, gfn, gpa uint64
			var recSrc *decodedPage
			var recSlot uint16
			var hitLink *chainLink
			if c.chainArmed {
				src, slot := c.chainPage, c.chainSlot
				c.chainArmed = false
				if !c.NoBlockChain {
					// Chain consume: a link recorded for the slot that just
					// redirected control proves this fetch's outcome — the
					// observed successor PC recurs, the target page's content
					// version is unchanged, and the translation snapshot
					// revalidates (SATP, privilege, TLB generation) via
					// ChainFetch, which replays exactly the bookkeeping the
					// real TranslateFetch below would perform — so the map
					// lookup and full translation are skipped.
					if l := src.chainAt(slot); l != nil && l.pc == c.PC &&
						c.Mem.PageVersion(l.gfn) == l.page.ver &&
						c.MMU.ChainFetch(&l.snap, c.PC, c.Priv == PrivU) {
						p, i, gfn = l.page, uint64(l.tslot), l.gfn
						hitLink = l
						ic.noteChainHit(gfn, p)
					} else {
						ic.Stats.ChainMisses++
						recSrc, recSlot = src, slot
					}
				}
			}
			if p == nil {
				var ex Exit
				var ok bool
				gpa, ex, ok = c.fetchTranslate(c.PC)
				if !ok {
					if ex.Reason == ExitNone {
						continue
					}
					return ex
				}
				gfn = gpa >> isa.PageShift
				i = (gpa & isa.PageMask) >> 2
				p = ic.lookup(c.Mem, gfn)
				if p != nil && recSrc != nil {
					// Chain record: the real fetch just resolved the armed
					// slot's successor; park it with the translation
					// snapshot, latest-wins.
					ic.setChain(recSrc, recSlot, c.PC, p, gfn, uint16(i), c.MMU.SnapFetch())
				}
			}
			if p != nil {
				// Superblock dispatch: a straight-line run of ≥2 decoded
				// instructions executes as one unit when no event boundary
				// (quantum, timer latch, interrupt window) can land inside
				// its cycle span; otherwise fall through to the exact
				// per-instruction path below.
				if !c.NoSuperblocks && p.blkLen[i] > 1 {
					if hitLink != nil && !c.NoTraces {
						// Trace layer (trace.go): a validated chain consume
						// is the only way in. A link that already carries a
						// trace dispatches it (one entry check, whole-span
						// admission, batched run); otherwise the consume
						// heats the link toward promotion.
						if tr := hitLink.tr; tr != nil {
							ex, done, dispatched := c.runTrace(tr, deadline)
							if dispatched {
								if done {
									return ex
								}
								continue
							}
						} else if hitLink.heat < traceHotThreshold {
							hitLink.heat++
							if hitLink.heat == traceHotThreshold {
								c.formTrace(hitLink)
							}
						}
					}
					ex, done, dispatched := c.runBlock(p, i, gfn, deadline)
					if dispatched {
						if done {
							return ex
						}
						continue
					}
				}
				// Lazy slot decode, spelled out here because the compiler
				// will not inline it as a method and this is the hottest
				// line in the simulator. The threaded executor is resolved
				// once, here, so steady-state fetches load a direct func
				// pointer instead of re-inspecting the opcode.
				if p.valid[i>>6]&(1<<(i&63)) == 0 {
					p.ins[i] = isa.Decode(p.raw[i])
					p.fn[i] = execTable.For(p.ins[i].Op)
					p.valid[i>>6] |= 1 << (i & 63)
				}
				in, raw, fn = p.ins[i], p.raw[i], p.fn[i]
				if !c.NoBlockChain && isa.IsChainSource(in.Op) {
					// Arm the slot so the post-redirect fetch can consume or
					// record its chain link. Chain sources never trap and
					// never exit, so the arm is consumed on the very next
					// loop iteration in the common case.
					c.chainPage, c.chainSlot, c.chainArmed = p, uint16(i), true
				}
			} else {
				word, e, st := c.fetchWord(gpa)
				if st == fetchExit {
					return e
				}
				if st == fetchRetry {
					continue
				}
				raw = uint32(word)
				in = isa.Decode(raw)
				fn = execTable.For(in.Op)
				ic.fill(c.Mem, gfn)
				if recSrc != nil {
					ic.setChain(recSrc, recSlot, c.PC, ic.cur, gfn, uint16(i), c.MMU.SnapFetch())
				}
			}
		} else {
			gpa, ex, ok := c.translate(c.PC, isa.AccExec)
			if !ok {
				if ex.Reason == ExitNone {
					continue
				}
				return ex
			}
			word, e, st := c.fetchWord(gpa)
			if st == fetchExit {
				return e
			}
			if st == fetchRetry {
				continue
			}
			raw = uint32(word)
			in = isa.Decode(raw)
			fn = execTable.For(in.Op)
		}
		if !in.Op.Valid() {
			if e, exited := c.guestTrap(isa.CauseIllegal, uint64(raw)); exited {
				return e
			}
			continue
		}
		c.Cycles += c.Costs.Instr
		c.Instret++
		if fn == nil || c.NoThreadedDispatch {
			// Reference arm: the original dispatch switch. (fn is never nil
			// for a valid opcode — the table is total, see FuzzDecode — but
			// falling back keeps the nil case safe by construction.)
			if ex, done := c.execute(in, raw); done {
				return ex
			}
		} else if fn(c, in, raw) == stExit {
			return c.pendExit
		}
	}
}

// fetchWord outcomes.
const (
	fetchOK    = iota // word holds the instruction
	fetchRetry        // a guest trap was delivered in place; restart the loop
	fetchExit         // Run must return the Exit
)

// fetchWord performs the uncached instruction read at gpa: the executing-
// from-device-space check and the guest-physical read, with the same fault
// taxonomy the interpreter has always had.
func (c *CPU) fetchWord(gpa uint64) (uint64, Exit, int) {
	if c.IsMMIO != nil && !c.Mem.Contains(gpa) && c.IsMMIO(gpa) {
		// Executing out of device space is an access fault.
		if e, exited := c.guestTrap(isa.CauseInstrAccess, c.PC); exited {
			return 0, e, fetchExit
		}
		return 0, Exit{}, fetchRetry
	}
	word, f := c.Mem.ReadUint(gpa, 4)
	if f != nil {
		if f.Kind == mem.FaultBeyondRAM {
			if e, exited := c.guestTrap(isa.CauseInstrAccess, c.PC); exited {
				return 0, e, fetchExit
			}
			return 0, Exit{}, fetchRetry
		}
		return 0, c.memFaultExit(c.PC, isa.AccExec, f), fetchExit
	}
	return word, Exit{}, fetchOK
}

// execute runs one decoded instruction. done reports that Run must return ex.
func (c *CPU) execute(in isa.Inst, raw uint32) (ex Exit, done bool) {
	switch in.Op {
	// ---- register-register ALU ----
	case isa.OpADD:
		c.SetReg(in.Rd, c.X[in.Rs1]+c.X[in.Rs2])
	case isa.OpSUB:
		c.SetReg(in.Rd, c.X[in.Rs1]-c.X[in.Rs2])
	case isa.OpAND:
		c.SetReg(in.Rd, c.X[in.Rs1]&c.X[in.Rs2])
	case isa.OpOR:
		c.SetReg(in.Rd, c.X[in.Rs1]|c.X[in.Rs2])
	case isa.OpXOR:
		c.SetReg(in.Rd, c.X[in.Rs1]^c.X[in.Rs2])
	case isa.OpSLL:
		c.SetReg(in.Rd, c.X[in.Rs1]<<(c.X[in.Rs2]&63))
	case isa.OpSRL:
		c.SetReg(in.Rd, c.X[in.Rs1]>>(c.X[in.Rs2]&63))
	case isa.OpSRA:
		c.SetReg(in.Rd, uint64(int64(c.X[in.Rs1])>>(c.X[in.Rs2]&63)))
	case isa.OpSLT:
		c.SetReg(in.Rd, boolTo64(int64(c.X[in.Rs1]) < int64(c.X[in.Rs2])))
	case isa.OpSLTU:
		c.SetReg(in.Rd, boolTo64(c.X[in.Rs1] < c.X[in.Rs2]))
	case isa.OpMUL:
		c.SetReg(in.Rd, c.X[in.Rs1]*c.X[in.Rs2])
	case isa.OpMULH:
		hi, _ := mulh64(int64(c.X[in.Rs1]), int64(c.X[in.Rs2]))
		c.SetReg(in.Rd, uint64(hi))
	case isa.OpDIV:
		c.SetReg(in.Rd, uint64(div64(int64(c.X[in.Rs1]), int64(c.X[in.Rs2]))))
	case isa.OpDIVU:
		c.SetReg(in.Rd, divu64(c.X[in.Rs1], c.X[in.Rs2]))
	case isa.OpREM:
		c.SetReg(in.Rd, uint64(rem64(int64(c.X[in.Rs1]), int64(c.X[in.Rs2]))))
	case isa.OpREMU:
		c.SetReg(in.Rd, remu64(c.X[in.Rs1], c.X[in.Rs2]))

	// ---- immediates ----
	case isa.OpADDI:
		c.SetReg(in.Rd, c.X[in.Rs1]+uint64(int64(in.Imm)))
	case isa.OpANDI:
		c.SetReg(in.Rd, c.X[in.Rs1]&uint64(uint32(in.Imm)))
	case isa.OpORI:
		c.SetReg(in.Rd, c.X[in.Rs1]|uint64(uint32(in.Imm)))
	case isa.OpXORI:
		c.SetReg(in.Rd, c.X[in.Rs1]^uint64(uint32(in.Imm)))
	case isa.OpSLLI:
		c.SetReg(in.Rd, c.X[in.Rs1]<<(uint(in.Imm)&63))
	case isa.OpSRLI:
		c.SetReg(in.Rd, c.X[in.Rs1]>>(uint(in.Imm)&63))
	case isa.OpSRAI:
		c.SetReg(in.Rd, uint64(int64(c.X[in.Rs1])>>(uint(in.Imm)&63)))
	case isa.OpSLTI:
		c.SetReg(in.Rd, boolTo64(int64(c.X[in.Rs1]) < int64(in.Imm)))
	case isa.OpSLTIU:
		c.SetReg(in.Rd, boolTo64(c.X[in.Rs1] < uint64(int64(in.Imm))))
	case isa.OpLUI:
		c.SetReg(in.Rd, uint64(int64(in.Imm))<<16)

	// ---- loads / stores ----
	case isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW, isa.OpLWU, isa.OpLD:
		return c.execLoad(in)
	case isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSD:
		return c.execStore(in)

	// ---- control flow ----
	case isa.OpBEQ:
		return c.branch(in, c.X[in.Rs1] == c.X[in.Rs2])
	case isa.OpBNE:
		return c.branch(in, c.X[in.Rs1] != c.X[in.Rs2])
	case isa.OpBLT:
		return c.branch(in, int64(c.X[in.Rs1]) < int64(c.X[in.Rs2]))
	case isa.OpBGE:
		return c.branch(in, int64(c.X[in.Rs1]) >= int64(c.X[in.Rs2]))
	case isa.OpBLTU:
		return c.branch(in, c.X[in.Rs1] < c.X[in.Rs2])
	case isa.OpBGEU:
		return c.branch(in, c.X[in.Rs1] >= c.X[in.Rs2])
	case isa.OpJAL:
		c.SetReg(in.Rd, c.PC+4)
		c.PC += uint64(int64(in.Imm))
		return Exit{}, false
	case isa.OpJALR:
		target := (c.X[in.Rs1] + uint64(int64(in.Imm))) &^ 1
		c.SetReg(in.Rd, c.PC+4)
		c.PC = target
		return Exit{}, false

	// ---- system ----
	case isa.OpECALL:
		if !c.Deprivileged && c.Priv == PrivU {
			// Native/HW-assist syscall: vectors straight into the guest
			// kernel without VMM involvement.
			c.InjectTrap(isa.CauseEcallU, 0)
			return Exit{}, false
		}
		return c.vmExit(Exit{Reason: ExitEcall, From: c.Priv}), true
	case isa.OpEBREAK:
		if e, exited := c.guestTrap(isa.CauseBreakpoint, c.PC); exited {
			return e, true
		}
		return Exit{}, false
	case isa.OpSRET:
		if c.Priv != PrivS {
			return c.illegal(raw)
		}
		if c.Deprivileged {
			return c.vmExit(Exit{Reason: ExitPriv, Inst: in}), true
		}
		c.ExecuteSRET()
		return Exit{}, false
	case isa.OpWFI:
		if c.Priv != PrivS {
			return c.illegal(raw)
		}
		c.PC += 4
		if c.CSR.Sip&c.CSR.Sie != 0 {
			return Exit{}, false // already pending: WFI is a no-op
		}
		return c.vmExit(Exit{Reason: ExitWFI}), true
	case isa.OpFENCE:
		// No reordering to model.
	case isa.OpSFENCE:
		if c.Priv != PrivS {
			return c.illegal(raw)
		}
		if c.Deprivileged {
			return c.vmExit(Exit{Reason: ExitPriv, Inst: in}), true
		}
		c.MMU.Flush(c.X[in.Rs1], uint16(c.X[in.Rs2]))
	case isa.OpCSRRW, isa.OpCSRRS, isa.OpCSRRC:
		return c.execCSR(in, raw)
	case isa.OpHALT:
		if c.Priv != PrivS {
			return c.illegal(raw)
		}
		c.PC += 4
		return c.exit(Exit{Reason: ExitHalt, Code: uint16(in.Imm)}), true
	default:
		return c.illegal(raw)
	}
	c.PC += 4
	return Exit{}, false
}

func (c *CPU) illegal(raw uint32) (Exit, bool) {
	if e, exited := c.guestTrap(isa.CauseIllegal, uint64(raw)); exited {
		return e, true
	}
	return Exit{}, false
}

func (c *CPU) branch(in isa.Inst, taken bool) (Exit, bool) {
	if taken {
		c.PC += uint64(int64(in.Imm))
	} else {
		c.PC += 4
	}
	return Exit{}, false
}

func loadMeta(op isa.Op) (size int, signed bool) {
	switch op {
	case isa.OpLB:
		return 1, true
	case isa.OpLBU:
		return 1, false
	case isa.OpLH:
		return 2, true
	case isa.OpLHU:
		return 2, false
	case isa.OpLW:
		return 4, true
	case isa.OpLWU:
		return 4, false
	default:
		return 8, false
	}
}

func storeSize(op isa.Op) int {
	switch op {
	case isa.OpSB:
		return 1
	case isa.OpSH:
		return 2
	case isa.OpSW:
		return 4
	default:
		return 8
	}
}

func (c *CPU) execLoad(in isa.Inst) (Exit, bool) {
	size, signed := loadMeta(in.Op)
	va := c.X[in.Rs1] + uint64(int64(in.Imm))
	if va&uint64(size-1) != 0 {
		if e, exited := c.guestTrap(isa.CauseLoadMisaligned, va); exited {
			return e, true
		}
		return Exit{}, false
	}
	gpa, ex, ok := c.translateData(va, isa.AccRead)
	if !ok {
		return ex, ex.Reason != ExitNone
	}
	if !c.Mem.Contains(gpa) && c.IsMMIO != nil && c.IsMMIO(gpa) {
		c.PC += 4
		return c.vmExit(Exit{Reason: ExitMMIO, MMIO: MMIOInfo{
			GPA: gpa, Size: uint8(size), Rd: in.Rd, Signed: signed,
		}}), true
	}
	c.Cycles += c.Costs.MemAccess
	v, f := c.Mem.ReadUint(gpa, size)
	if f != nil {
		if f.Kind == mem.FaultBeyondRAM {
			if e, exited := c.guestTrap(isa.CauseLoadAccess, va); exited {
				return e, true
			}
			return Exit{}, false
		}
		return c.memFaultExit(va, isa.AccRead, f), true
	}
	if signed {
		switch size {
		case 1:
			v = uint64(int64(int8(v)))
		case 2:
			v = uint64(int64(int16(v)))
		case 4:
			v = uint64(int64(int32(v)))
		}
	}
	c.SetReg(in.Rd, v)
	c.PC += 4
	return Exit{}, false
}

func (c *CPU) execStore(in isa.Inst) (Exit, bool) {
	size := storeSize(in.Op)
	va := c.X[in.Rs1] + uint64(int64(in.Imm))
	val := c.X[in.Rs2]
	if va&uint64(size-1) != 0 {
		if e, exited := c.guestTrap(isa.CauseStoreMisaligned, va); exited {
			return e, true
		}
		return Exit{}, false
	}
	gpa, ex, ok := c.translateData(va, isa.AccWrite)
	if !ok {
		return ex, ex.Reason != ExitNone
	}
	if !c.Mem.Contains(gpa) && c.IsMMIO != nil && c.IsMMIO(gpa) {
		c.PC += 4
		return c.vmExit(Exit{Reason: ExitMMIO, MMIO: MMIOInfo{
			GPA: gpa, Size: uint8(size), Write: true, Value: val,
		}}), true
	}
	c.Cycles += c.Costs.MemAccess
	if f := c.Mem.WriteUint(gpa, size, val); f != nil {
		if f.Kind == mem.FaultBeyondRAM {
			if e, exited := c.guestTrap(isa.CauseStoreAccess, va); exited {
				return e, true
			}
			return Exit{}, false
		}
		return c.memFaultExit(va, isa.AccWrite, f), true
	}
	c.PC += 4
	return Exit{}, false
}

func (c *CPU) execCSR(in isa.Inst, raw uint32) (Exit, bool) {
	addr := uint16(in.Imm)
	// Unprivileged counters execute directly in every regime.
	if !isa.IsUserCSR(addr) {
		if c.Priv != PrivS {
			return c.illegal(raw)
		}
		if c.Deprivileged {
			return c.vmExit(Exit{Reason: ExitPriv, Inst: in}), true
		}
	}
	old, known := c.ReadCSR(addr)
	if !known {
		return c.illegal(raw)
	}
	src := c.X[in.Rs1]
	var newVal uint64
	write := true
	switch in.Op {
	case isa.OpCSRRW:
		newVal = src
	case isa.OpCSRRS:
		newVal = old | src
		write = in.Rs1 != 0
	default: // CSRRC
		newVal = old &^ src
		write = in.Rs1 != 0
	}
	if write {
		if !c.WriteCSR(addr, newVal) {
			return c.illegal(raw)
		}
	}
	c.SetReg(in.Rd, old)
	c.PC += 4
	return Exit{}, false
}

// EmulatePrivileged is the VMM-side emulation of an instruction that exited
// with ExitPriv: it applies the same architectural semantics the hardware
// would, against the virtual CSR file, and advances the PC. The emulation
// work itself is charged separately by the caller.
func (c *CPU) EmulatePrivileged(in isa.Inst) error {
	switch in.Op {
	case isa.OpCSRRW, isa.OpCSRRS, isa.OpCSRRC:
		addr := uint16(in.Imm)
		old, known := c.ReadCSR(addr)
		if !known {
			return fmt.Errorf("vcpu: emulate access to unknown CSR %#x", addr)
		}
		src := c.X[in.Rs1]
		newVal := src
		write := true
		switch in.Op {
		case isa.OpCSRRS:
			newVal = old | src
			write = in.Rs1 != 0
		case isa.OpCSRRC:
			newVal = old &^ src
			write = in.Rs1 != 0
		}
		if write && !c.WriteCSR(addr, newVal) {
			return fmt.Errorf("vcpu: emulated write to read-only CSR %s", isa.CSRName(addr))
		}
		c.SetReg(in.Rd, old)
		c.PC += 4
		return nil
	case isa.OpSRET:
		c.ExecuteSRET()
		return nil
	case isa.OpSFENCE:
		c.MMU.Flush(c.X[in.Rs1], uint16(c.X[in.Rs2]))
		c.PC += 4
		return nil
	default:
		return fmt.Errorf("vcpu: cannot emulate %s", isa.Disasm(in))
	}
}

func boolTo64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func mulh64(a, b int64) (hi, lo int64) {
	uhi, ulo := bits.Mul64(uint64(a), uint64(b))
	h := int64(uhi)
	if a < 0 {
		h -= b
	}
	if b < 0 {
		h -= a
	}
	return h, int64(ulo)
}

func div64(a, b int64) int64 {
	switch {
	case b == 0:
		return -1
	case a == -1<<63 && b == -1:
		return a
	default:
		return a / b
	}
}

func rem64(a, b int64) int64 {
	switch {
	case b == 0:
		return a
	case a == -1<<63 && b == -1:
		return 0
	default:
		return a % b
	}
}

func divu64(a, b uint64) uint64 {
	if b == 0 {
		return ^uint64(0)
	}
	return a / b
}

func remu64(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}
