package vcpu

import (
	"encoding/binary"

	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/metrics"
	"govisor/internal/mmu"
)

// instPerPage is how many 32-bit instruction slots one guest page holds.
const instPerPage = isa.PageSize / 4

// maxCachedPages bounds the cache's host memory (~28 KiB per page). Guests
// execute from a handful of pages, so the bound only matters for pathological
// code that jumps through all of RAM; hitting it evicts the least recently
// fetched page and predecode refills on demand.
const maxCachedPages = 1024

// decodedPage is one guest code page in instruction form. Raw words are
// captured when the page is filled; each slot's isa.Inst is decoded lazily
// on first fetch (the valid bitmap tracks which), so a refill after
// invalidation costs one page copy rather than a thousand decodes — a guest
// that keeps storing to a page it executes from degrades gracefully instead
// of falling off a predecode cliff. The lazy decode also resolves the
// slot's threaded-dispatch executor (fn[i], see dispatch.go), so steady-
// state execution calls a direct func pointer per instruction.
//
// Fill also lowers the page into superblocks: blkLen[i] is the number of
// straight-line instructions (isa.IsBlockStraight) starting at slot i before
// the next block terminator — branch, jump, system op, invalid slot or the
// page boundary — and blkMem[i] counts the loads/stores among them. Both are
// suffix sums over the raw opcode bytes, so any slot can enter block
// dispatch mid-run (a block that bails at instruction k resumes as the
// k-suffix block). Terminator slots have blkLen 0 and execute on the
// single-instruction path.
type decodedPage struct {
	ver     uint64 // mem.GuestPhys.PageVersion at fill time
	lastUse uint64 // ICache tick at last hit, for eviction
	valid   [instPerPage / 64]uint64
	ins     [instPerPage]isa.Inst
	fn      [instPerPage]execFn
	raw     [instPerPage]uint32
	blkLen  [instPerPage]uint16
	blkMem  [instPerPage]uint16
	chain   [chainSlots]chainLink
}

// chainSlots sizes the per-page block-chain table, direct-mapped on the low
// bits of the source slot. Chain sources are sparse — one back-edge per loop
// plus the page-boundary fallthrough — so a small table covers the hot
// successors while bounding the per-page footprint.
const chainSlots = 32

// chainLink caches the resolved successor of one chain source: the slot of
// a control-transfer terminator, or the page-boundary pseudo-terminator
// (slot instPerPage-1 of a page whose last instruction is straight-line).
// A link is a pure host-side hint. Consumption proves it exact first: the
// observed successor PC must recur, the target page's content version must
// match, and the translation snapshot must revalidate (SATP, privilege, TLB
// generation) via mmu.Context.ChainFetch — the same counters that guard the
// fetch memo and the icache itself. Stale links are overwritten latest-wins.
type chainLink struct {
	valid bool
	slot  uint16 // source slot (direct-mapped tag)
	tslot uint16 // target slot within the successor page
	heat  uint16 // consecutive validated consumes; trace forms at threshold
	pc    uint64 // successor virtual PC observed at record time
	gfn   uint64 // successor guest-physical page
	page  *decodedPage
	snap  mmu.FetchSnap
	tr    *trace // hot trace entered through this link, nil until promoted
}

// The lazy slot decode (check valid bit, isa.Decode on first touch) lives
// inline in CPU.Run's fetch path: as a method it is beyond the compiler's
// inlining budget and the call costs measurable ns per retired instruction.

// ICacheStats counts decoded-instruction cache activity. All of it is
// host-side bookkeeping: no counter here corresponds to any guest-visible
// event, which is the point — the cache is architecturally invisible.
type ICacheStats struct {
	Hits          uint64 // fetches served from a cached page
	Misses        uint64 // fetches from pages not in the cache
	Invalidations uint64 // fetches that found a stale cached page
	Predecodes    uint64 // pages (re)filled; slot decode is lazy on top
	Evictions     uint64 // pages dropped to stay under maxCachedPages
	ChainHits     uint64 // block entries served from a validated chain link
	ChainMisses   uint64 // chain consults that found no link or a stale one
	ChainResolves uint64 // links recorded or refreshed
	Crossings     uint64 // superblocks continued across a page boundary

	TraceFormations    uint64 // hot chains lowered into traces
	TraceEntries       uint64 // trace passes entered (one per loop iteration)
	TraceDemotions     uint64 // entries rejected or passes cut back to blocks
	TraceInvalidations uint64 // traces dropped (stale beyond repair, evicted)
}

// ICache is the decoded-instruction block cache on the interpreter's fetch
// path. Guest code pages are captured wholesale and decoded into isa.Inst
// slots on first execution, keyed by guest-physical page; while the fetch
// stream stays on a page whose mem.PageVersion is unchanged, the interpreter
// skips the guest-RAM read and isa.Decode per instruction. Coherence is by
// version validation rather than
// invalidation callbacks: any write, demand fill, balloon unmap, dedup remap
// or migration copy bumps the page's version, and the next fetch from the
// page notices and re-predecodes. The cache carries no architectural state,
// so cycles, instret, registers, CSRs and every simulation statistic are
// byte-identical with the cache on or off.
type ICache struct {
	pages  map[uint64]*decodedPage
	curGfn uint64 // one-entry MRU so streaming a page skips the map
	cur    *decodedPage
	tick   uint64 // advances on fills and MRU transitions; orders eviction
	buf    [isa.PageSize]byte
	// traces is the trace store (trace.go): a slice, not a map, so eviction
	// scans and registration order are deterministic run to run.
	traces []*trace
	Stats  ICacheStats
}

// NewICache creates an empty decoded-instruction cache.
func NewICache() *ICache {
	return &ICache{pages: make(map[uint64]*decodedPage), curGfn: mem.NoFrame}
}

// lookup returns the predecoded page for gfn if it is still coherent with
// guest memory, or nil — the caller then falls back to the uncached fetch
// and calls fill.
func (ic *ICache) lookup(g *mem.GuestPhys, gfn uint64) *decodedPage {
	p := ic.cur
	if gfn != ic.curGfn {
		var ok bool
		if p, ok = ic.pages[gfn]; !ok {
			ic.Stats.Misses++
			return nil
		}
		ic.curGfn, ic.cur = gfn, p
	}
	if p.ver != g.PageVersion(gfn) {
		ic.Stats.Invalidations++
		delete(ic.pages, gfn)
		ic.curGfn, ic.cur = mem.NoFrame, nil
		return nil
	}
	// Every hit refreshes the eviction stamp — including streaming MRU hits.
	// Stamping only on MRU transitions (the original behaviour) let evictOne
	// victimize the page a tight loop was executing from the moment the
	// cache filled with colder pages.
	ic.tick++
	p.lastUse = ic.tick
	ic.Stats.Hits++
	return p
}

// chainAt returns the live chain link recorded for source slot, or nil.
func (p *decodedPage) chainAt(slot uint16) *chainLink {
	l := &p.chain[slot&(chainSlots-1)]
	if !l.valid || l.slot != slot {
		return nil
	}
	return l
}

// setChain records (or overwrites, latest-wins) the resolved successor of
// source slot: the successor's predecoded page, slot, observed PC and the
// fetch-translation snapshot ChainFetch will revalidate on consumption.
func (ic *ICache) setChain(p *decodedPage, slot uint16, pc uint64, target *decodedPage, gfn uint64, tslot uint16, snap mmu.FetchSnap) {
	p.chain[slot&(chainSlots-1)] = chainLink{
		valid: true, slot: slot, tslot: tslot, pc: pc, gfn: gfn, page: target, snap: snap,
	}
	ic.Stats.ChainResolves++
}

// noteChainHit replays the icache bookkeeping of a lookup hit for a block
// entry served from a chain link — hit count, MRU slot, eviction stamp —
// so the cache's host-side state evolves as if the map lookup had run.
func (ic *ICache) noteChainHit(gfn uint64, p *decodedPage) {
	ic.curGfn, ic.cur = gfn, p
	ic.tick++
	p.lastUse = ic.tick
	ic.Stats.Hits++
	ic.Stats.ChainHits++
}

// fill captures the raw words of the page at gfn and lowers it into
// superblocks; instruction decode happens lazily per slot. It is called only
// after an uncached fetch from the page succeeded, so the page is present in
// guest RAM; the raw read has no guest-visible side effects (no dirty bits,
// no stats, no cycles).
func (ic *ICache) fill(g *mem.GuestPhys, gfn uint64) {
	if len(ic.pages) >= maxCachedPages {
		ic.evictOne()
	}
	p := &decodedPage{ver: g.PageVersion(gfn)}
	g.ReadRaw(gfn, ic.buf[:])
	for i := 0; i < instPerPage; i++ {
		p.raw[i] = binary.LittleEndian.Uint32(ic.buf[i*4:])
	}
	// Superblock lowering: one backward pass computes, per slot, the
	// straight-line run length to the next terminator and the memory-op
	// count within it. Classification needs only the opcode bits, so the
	// pass stays on the raw words and full decode stays lazy.
	for i := instPerPage - 1; i >= 0; i-- {
		op := isa.Op(p.raw[i] >> 26)
		if !isa.IsBlockStraight(op) {
			continue // terminator: blkLen stays 0
		}
		var memOp uint16
		if isa.IsMemOp(op) {
			memOp = 1
		}
		if i == instPerPage-1 {
			p.blkLen[i], p.blkMem[i] = 1, memOp
		} else {
			p.blkLen[i] = p.blkLen[i+1] + 1
			p.blkMem[i] = p.blkMem[i+1] + memOp
		}
	}
	ic.pages[gfn] = p
	ic.curGfn, ic.cur = gfn, p
	ic.tick++
	p.lastUse = ic.tick
	ic.Stats.Predecodes++
}

// evictOne drops the least recently fetched page (ties broken on the lower
// gfn so the choice is independent of map iteration order — the cache must
// behave identically run to run even though it is host-side only).
func (ic *ICache) evictOne() {
	victim := mem.NoFrame
	var vp *decodedPage
	//govisor:nondet(total-order fold on (lastUse, gfn); victim is independent of iteration order)
	for gfn, p := range ic.pages {
		if vp == nil || p.lastUse < vp.lastUse || (p.lastUse == vp.lastUse && gfn < victim) {
			victim, vp = gfn, p
		}
	}
	if vp == nil {
		return
	}
	delete(ic.pages, victim)
	if victim == ic.curGfn {
		ic.curGfn, ic.cur = mem.NoFrame, nil
	}
	ic.Stats.Evictions++
}

// HitRate returns hits / all lookups, or 0 when idle.
func (ic *ICache) HitRate() float64 {
	total := ic.Stats.Hits + ic.Stats.Misses + ic.Stats.Invalidations
	if total == 0 {
		return 0
	}
	return float64(ic.Stats.Hits) / float64(total)
}

// Pages returns the number of currently cached predecoded pages.
func (ic *ICache) Pages() int { return len(ic.pages) }

// Counters exposes the cache statistics as a metrics counter set, the form
// the benchmark tables consume.
func (ic *ICache) Counters() *metrics.CounterSet {
	s := &metrics.CounterSet{}
	s.Add("icache_hits", ic.Stats.Hits)
	s.Add("icache_misses", ic.Stats.Misses)
	s.Add("icache_invalidations", ic.Stats.Invalidations)
	s.Add("icache_predecodes", ic.Stats.Predecodes)
	s.Add("icache_evictions", ic.Stats.Evictions)
	s.Add("icache_chain_hits", ic.Stats.ChainHits)
	s.Add("icache_chain_misses", ic.Stats.ChainMisses)
	s.Add("icache_chain_resolves", ic.Stats.ChainResolves)
	s.Add("icache_block_crossings", ic.Stats.Crossings)
	s.Add("icache_trace_formations", ic.Stats.TraceFormations)
	s.Add("icache_trace_entries", ic.Stats.TraceEntries)
	s.Add("icache_trace_demotions", ic.Stats.TraceDemotions)
	s.Add("icache_trace_invalidations", ic.Stats.TraceInvalidations)
	return s
}
