package vcpu

import (
	"govisor/internal/isa"
	"govisor/internal/mem"
)

// Hot-trace execution: the layer above block chaining. The chain cache
// (icache.go) records each terminator's validated successor; once a link has
// been consumed hot — traceHotThreshold consecutive validated consumes — the
// engine follows the links forward and lowers the stable multi-block
// straight-line run into a trace: one entry check over every constituent
// page (content version + read-only mmu.CheckFetchSnap revalidation), one
// wrap-safe horizon admission over the whole run's worst-case cycle span,
// and then block bodies, inline terminators and page-boundary crossings
// retire back to back with batched cycle/instret accounting. A trace whose
// tail terminator re-enters its own head (a hot loop) keeps iterating inside
// the trace, paying the outer fetch loop once per pass instead of once per
// block.
//
// Invisibility is inherited from the layers below and re-proven at each
// boundary:
//
//   - The entry check is pure reads (CheckFetchSnap does no bookkeeping);
//     a rejected entry falls back to the block path having changed nothing.
//   - Execution replays exactly what the block path would have done: hop
//     bodies run through the same retireRun body the superblock engine
//     uses, hop transitions replay the chain-consume / crossing bookkeeping
//     (page version + mmu.ChainFetch + noteChainHit) per boundary per pass,
//     and inline terminators replay the per-instruction path's fetch
//     (ReplayFetch) and icache-hit accounting before executing through the
//     same executors.
//   - Skipped loop-top event checks cannot fire inside an admitted pass:
//     the admission span counts every instruction including inline
//     terminators, nothing inside a trace latches STIMECMP or makes a new
//     interrupt pending (CSR writes are system ops, never chain sources),
//     and each extra loop iteration re-admits against the freshly flushed
//     clock.
//   - Any surprise — guest trap, SMC into the executing page, TLB
//     generation change under a fetch, a boundary that no longer validates
//     — demotes back to the block path at the exact instruction boundary
//     where the untraced run would have noticed, with accounting flushed
//     for everything that actually retired.
//
// The whole engine is host-side: Config.NoTraces (implied by NoBlockChain)
// disables it for the differential reference arm, and the suites in
// internal/guest prove guest-visible state byte-identical either way.

const (
	// traceHotThreshold is how many consecutive validated consumes a chain
	// link needs before the engine attempts to lower a trace through it.
	traceHotThreshold = 8
	// maxTraceHops caps the constituent blocks of one trace; longer chains
	// split at the cap and the tail executes as ordinary chained blocks.
	maxTraceHops = 8
	// maxTraces bounds the per-CPU trace store; registration past the bound
	// evicts the least recently entered trace.
	maxTraces = 64
	// traceFailLimit is how many consecutive entry rejections a trace
	// survives before it is dropped for re-formation from fresh links.
	traceFailLimit = 4
)

// traceHop pins one constituent block at formation time: the successor PC
// and guest-physical page the chain link resolved to. Entry validation
// re-derives everything else (page object, slot, block shape) from the live
// links so a trace never trusts stale pointers.
type traceHop struct {
	pc  uint64
	gfn uint64
}

// rtHop is the entry-validated runtime state of one hop, rebuilt by every
// runTrace call: the live predecoded page, the consumed link (nil for hop
// 0, whose validation the outer loop's chain consume already performed),
// and the block shape. term is the slot after the body — a terminator slot,
// or instPerPage when the body runs flush to the page boundary (a crossing).
type rtHop struct {
	p    *decodedPage
	link *chainLink
	gfn  uint64
	slot uint64
	n    uint64
	term uint64
}

// trace is a lowered multi-block run, entered through headLink. tailTerm
// marks a closed loop: the last hop's terminator was observed (at formation)
// to re-enter the head through tailLink, so an admitted pass may iterate.
type trace struct {
	headPC   uint64
	headGfn  uint64
	tailTerm bool
	headLink *chainLink
	tailLink *chainLink
	hops     []traceHop
	rt       [maxTraceHops]rtHop
	lastUse  uint64
	fails    uint8
}

// registerTrace adds a formed trace to the store, evicting the least
// recently entered trace (ties broken by registration order — the scan is
// over a slice, so the choice is deterministic run to run) when full.
func (ic *ICache) registerTrace(tr *trace) {
	if len(ic.traces) >= maxTraces {
		victim := 0
		for i, t := range ic.traces {
			if t.lastUse < ic.traces[victim].lastUse {
				victim = i
			}
		}
		ic.dropTrace(ic.traces[victim])
	}
	ic.traces = append(ic.traces, tr)
	ic.Stats.TraceFormations++
}

// dropTrace removes a trace from the store and unhooks its entry link.
// The headLink identity check matters: setChain overwrites link structs
// wholesale (clearing tr and heat), so the slot may already belong to a
// newer trace this one must not orphan.
func (ic *ICache) dropTrace(tr *trace) {
	for i, t := range ic.traces {
		if t == tr {
			ic.traces = append(ic.traces[:i], ic.traces[i+1:]...)
			break
		}
	}
	if tr.headLink.tr == tr {
		tr.headLink.tr = nil
	}
	ic.Stats.TraceInvalidations++
}

// invalidateTraces drops every registered trace — the big hammer for
// whole-cache resets; steady-state staleness is handled per entry check.
func (ic *ICache) invalidateTraces() {
	for len(ic.traces) > 0 {
		ic.dropTrace(ic.traces[len(ic.traces)-1])
	}
}

// formTrace attempts to lower a trace through l, a chain link that just
// validated its traceHotThreshold-th consecutive consume. It walks the
// chain forward from l's target, accepting each continuation only while it
// is provable right now — the terminator is a pure control transfer with a
// recorded link whose target page version matches and whose translation
// snapshot revalidates (read-only CheckFetchSnap; formation must not
// perturb MMU bookkeeping). The walk closes into a loop when it returns to
// l itself — the entry link is the back edge — which marks the trace
// tailTerm. A walk that yields fewer than two hops and no closed loop has
// nothing to amortize; the heat resets so formation retries after the
// links warm further.
func (c *CPU) formTrace(l *chainLink) {
	headP, headSlot := l.page, uint64(l.tslot)
	if uint64(headP.blkLen[headSlot]) < 2 {
		l.heat = 0
		return
	}
	tr := &trace{headPC: l.pc, headGfn: l.gfn, headLink: l}
	tr.hops = append(tr.hops, traceHop{pc: l.pc, gfn: l.gfn})
	p, slot := headP, headSlot
	user := c.Priv == PrivU
	for len(tr.hops) < maxTraceHops {
		n := uint64(p.blkLen[slot])
		if n == 0 {
			break
		}
		ts := slot + n
		var src uint16
		if ts == instPerPage {
			src = instPerPage - 1 // page-boundary pseudo-terminator
		} else {
			// The terminator must be a control transfer the trace can
			// retire inline; system ops and invalid slots end the walk.
			if !isa.IsChainSource(isa.Op(p.raw[ts] >> 26)) {
				break
			}
			src = uint16(ts)
		}
		nl := p.chainAt(src)
		if nl == nil || c.Mem.PageVersion(nl.gfn) != nl.page.ver ||
			!c.MMU.CheckFetchSnap(&nl.snap, nl.pc, user) {
			break
		}
		if nl == l {
			// The walk consumed its own entry link: a closed loop whose
			// tail re-enters the head every pass.
			tr.tailTerm = true
			tr.tailLink = nl
			break
		}
		if nl.page.blkLen[nl.tslot] == 0 {
			break
		}
		tr.hops = append(tr.hops, traceHop{pc: nl.pc, gfn: nl.gfn})
		p, slot = nl.page, uint64(nl.tslot)
	}
	if !tr.tailTerm && len(tr.hops) < 2 {
		l.heat = 0
		return
	}
	c.ICache.registerTrace(tr)
	l.tr = tr
}

// traceAdmissible is the trace engine's event-horizon admission: the same
// wrap-guarded quantum/STIMECMP span check the superblock engine makes, run
// once over the whole trace pass's worst-case cycle span. Admitting the
// total span implies every per-block admission the unchained run would make
// along the pass (each suffix span is no larger, and actual cycles spent
// never exceed the worst case already subtracted), so event boundaries land
// on exactly the same instruction either way.
//
//govisor:pair blockAdmissible
func (c *CPU) traceAdmissible(n, memOps, deadline uint64) bool {
	return c.blockAdmissible(n, memOps, deadline)
}

// traceReject records an entry-check failure: the trace demotes to the
// block path for this dispatch, and traceFailLimit consecutive rejections
// drop it entirely so formation can restart from fresh links.
func (c *CPU) traceReject(tr *trace) (Exit, bool, bool) {
	c.ICache.Stats.TraceDemotions++
	tr.fails++
	if tr.fails >= traceFailLimit {
		c.ICache.dropTrace(tr)
	}
	return Exit{}, false, false
}

// traceTerm statuses.
const (
	termOK      = iota // terminator retired and control went where expected
	termBail           // fetch replay failed; the terminator did not retire
	termDiverge        // terminator retired but control left the trace
	termExit           // Run must return c.pendExit
)

// traceTerm retires one inline terminator (slot term of page p, the current
// PC) and reports whether control continued to expectPC. It replays exactly
// the per-instruction path's bookkeeping for this fetch: the memoized
// same-page translation via ReplayFetch, then the icache lookup hit (the
// MRU slot is this page — the hop body just ran from it, and nothing inside
// the hop can have changed the page's version without ending it as stSMC),
// then the slot's lazy decode and the same executor the outer loop would
// call. Cycle/instret accounting stays with the caller's batch.
func (c *CPU) traceTerm(p *decodedPage, term uint64, expectPC uint64, threaded bool) int {
	if !c.MMU.ReplayFetch(c.PC) {
		return termBail
	}
	ic := c.ICache
	ic.tick++
	p.lastUse = ic.tick
	ic.Stats.Hits++
	j := term
	if p.valid[j>>6]&(1<<(j&63)) == 0 {
		p.ins[j] = isa.Decode(p.raw[j])
		p.fn[j] = execTable.For(p.ins[j].Op)
		p.valid[j>>6] |= 1 << (j & 63)
	}
	if threaded {
		if st := p.fn[j](c, p.ins[j], p.raw[j]); st == stExit {
			return termExit
		}
	} else {
		if ex, d := c.execute(p.ins[j], p.raw[j]); d {
			c.pendExit = ex
			return termExit
		}
	}
	if c.PC != expectPC {
		return termDiverge
	}
	return termOK
}

// runTrace attempts to execute one admitted pass of tr — or, for a closed
// loop, as many passes as keep re-admitting — starting from the chain
// consume the outer loop just performed through tr.headLink. dispatched
// reports whether the trace ran at all; when false nothing was perturbed
// and the caller falls through to the superblock path. When done is true,
// Run must return ex; otherwise the outer loop resumes at the current PC.
func (c *CPU) runTrace(tr *trace, deadline uint64) (ex Exit, done, dispatched bool) {
	ic := c.ICache
	user := c.Priv == PrivU
	nh := len(tr.hops)

	// Entry check: one read-only validation pass over every constituent
	// page. Hop 0 needs no revalidation — the outer loop's chain consume
	// just proved it (PC recurred, version matched, ChainFetch replayed the
	// fetch bookkeeping). Each later hop is re-derived from the live link
	// its predecessor's terminator recorded, and must still resolve to the
	// formation-time successor with an unchanged page version and a
	// translation snapshot CheckFetchSnap can prove current.
	hl := tr.headLink
	hp, slot := hl.page, uint64(hl.tslot)
	var totalN, totalMem uint64
	for k := 0; k < nh; k++ {
		rt := &tr.rt[k]
		if k == 0 {
			rt.link, rt.gfn = nil, hl.gfn
		} else {
			prev := &tr.rt[k-1]
			src := uint16(prev.term)
			if prev.term == instPerPage {
				src = instPerPage - 1
			}
			l := prev.p.chainAt(src)
			h := &tr.hops[k]
			if l == nil || l.pc != h.pc || l.gfn != h.gfn ||
				c.Mem.PageVersion(l.gfn) != l.page.ver ||
				!c.MMU.CheckFetchSnap(&l.snap, l.pc, user) {
				return c.traceReject(tr)
			}
			hp, slot = l.page, uint64(l.tslot)
			rt.link, rt.gfn = l, l.gfn
		}
		n := uint64(hp.blkLen[slot])
		if n == 0 {
			return c.traceReject(tr)
		}
		rt.p, rt.slot, rt.n, rt.term = hp, slot, n, slot+n
		totalN += n
		totalMem += uint64(hp.blkMem[slot])
		if rt.term < instPerPage && (k < nh-1 || tr.tailTerm) {
			totalN++ // this hop's terminator retires inline
		}
	}
	if tr.tailTerm {
		last := &tr.rt[nh-1]
		tl := tr.tailLink
		if last.term == instPerPage || last.p.chainAt(uint16(last.term)) != tl ||
			tl.pc != tr.headPC || c.Mem.PageVersion(tl.gfn) != tl.page.ver ||
			!c.MMU.CheckFetchSnap(&tl.snap, tl.pc, user) {
			return c.traceReject(tr)
		}
	}

	if !c.traceAdmissible(totalN, totalMem, deadline) {
		// Not staleness — the quantum or timer horizon is too close for a
		// whole pass. The block path runs this dispatch and event
		// boundaries land exactly where the untraced run puts them.
		return Exit{}, false, false
	}
	tr.fails = 0
	tr.lastUse = ic.tick
	ic.Stats.TraceEntries++

	instr := c.Costs.Instr
	threaded := !c.NoThreadedDispatch
	var retired uint64
	// flushExit ends the pass at the current instruction boundary with
	// accounting batched for everything that actually retired. (retired is
	// passed by value so the hot loop's counter stays in a register.)
	flushExit := func(retired uint64) {
		c.Cycles += retired * instr
		c.Instret += retired
		c.codeGfn = mem.NoFrame
	}
	for {
		for k := 0; k < nh; k++ {
			rt := &tr.rt[k]
			c.codeGfn = rt.gfn
			r, st := c.retireRun(rt.p, rt.slot, rt.n, threaded, rt.p.blkMem[rt.slot] == 0)
			retired += r
			if st != stOK {
				flushExit(retired)
				if st == stExit {
					return c.pendExit, true, true
				}
				// Guest trap, SMC into this page, or a TLB generation
				// change under the fetch stream: demote in place.
				ic.Stats.TraceDemotions++
				return Exit{}, false, true
			}
			if k == nh-1 {
				break
			}
			next := &tr.rt[k+1]
			if rt.term == instPerPage {
				// Page-boundary crossing: replay runBlock's continuation —
				// arm the pseudo-terminator, then prove the recorded link
				// still exact before following it.
				c.chainPage, c.chainSlot, c.chainArmed = rt.p, instPerPage-1, true
				if c.Mem.PageVersion(next.link.gfn) != next.link.page.ver ||
					!c.MMU.ChainFetch(&next.link.snap, c.PC, user) {
					flushExit(retired)
					ic.Stats.TraceDemotions++
					return Exit{}, false, true
				}
				c.chainArmed = false
				ic.noteChainHit(next.link.gfn, next.link.page)
				ic.Stats.Crossings++
			} else {
				switch c.traceTerm(rt.p, rt.term, next.link.pc, threaded) {
				case termBail:
					flushExit(retired)
					ic.Stats.TraceDemotions++
					return Exit{}, false, true
				case termExit:
					retired++
					flushExit(retired)
					return c.pendExit, true, true
				case termDiverge:
					// Control left the trace mid-pass (a branch changed
					// polarity). Arm the source so the outer loop records
					// or consumes the new edge, exactly as the
					// per-instruction path would have.
					retired++
					c.chainPage, c.chainSlot, c.chainArmed = rt.p, uint16(rt.term), true
					flushExit(retired)
					ic.Stats.TraceDemotions++
					return Exit{}, false, true
				}
				retired++
				// Terminator transition: replay the chain consume the
				// outer loop would perform for this armed source.
				c.chainPage, c.chainSlot, c.chainArmed = rt.p, uint16(rt.term), true
				if c.Mem.PageVersion(next.link.gfn) != next.link.page.ver ||
					!c.MMU.ChainFetch(&next.link.snap, c.PC, user) {
					flushExit(retired)
					ic.Stats.TraceDemotions++
					return Exit{}, false, true
				}
				c.chainArmed = false
				ic.noteChainHit(next.link.gfn, next.link.page)
			}
		}
		last := &tr.rt[nh-1]
		if !tr.tailTerm {
			if last.term == instPerPage {
				// The pass ends flush at a page boundary with no admitted
				// continuation in the trace: arm the pseudo-terminator and
				// let the outer loop continue the chain, exactly as
				// runBlock's boundary break does.
				c.chainPage, c.chainSlot, c.chainArmed = last.p, instPerPage-1, true
			}
			break
		}
		// Closed loop: retire the tail terminator; control should return
		// to the head.
		switch c.traceTerm(last.p, last.term, tr.headPC, threaded) {
		case termBail:
			flushExit(retired)
			ic.Stats.TraceDemotions++
			return Exit{}, false, true
		case termExit:
			retired++
			flushExit(retired)
			return c.pendExit, true, true
		case termDiverge:
			// The loop exited through its tail branch — a normal trace
			// end, not a demotion. Arm the source so the outer loop
			// handles the exit edge's own chain link.
			retired++
			c.chainPage, c.chainSlot, c.chainArmed = last.p, uint16(last.term), true
			flushExit(retired)
			return Exit{}, false, true
		}
		retired++
		// Flush before re-admission so the horizon compares against the
		// live clock, then replay the back-edge consume for the next pass.
		c.Cycles += retired * instr
		c.Instret += retired
		retired = 0
		c.chainPage, c.chainSlot, c.chainArmed = last.p, uint16(last.term), true
		tl := tr.tailLink
		if !c.traceAdmissible(totalN, totalMem, deadline) ||
			c.Mem.PageVersion(tl.gfn) != tl.page.ver ||
			!c.MMU.ChainFetch(&tl.snap, c.PC, user) {
			// Horizon reached or the back edge went stale: exit armed at
			// the head boundary; the outer loop's event checks and chain
			// consume take over at the same instruction.
			c.codeGfn = mem.NoFrame
			return Exit{}, false, true
		}
		c.chainArmed = false
		ic.noteChainHit(tl.gfn, tl.page)
		tr.lastUse = ic.tick
		ic.Stats.TraceEntries++
	}
	flushExit(retired)
	return Exit{}, false, true
}
