package vcpu

import (
	"testing"

	"govisor/internal/asm"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/mmu"
)

func TestFinishMMIOReadExtensions(t *testing.T) {
	c := newCPU(t, []byte{0, 0, 0, 0}, 0x1000)
	cases := []struct {
		size   uint8
		signed bool
		in     uint64
		want   uint64
	}{
		{1, true, 0x80, 0xFFFFFFFFFFFFFF80},
		{1, false, 0x80, 0x80},
		{2, true, 0x8000, 0xFFFFFFFFFFFF8000},
		{2, false, 0x8000, 0x8000},
		{4, true, 0x80000000, 0xFFFFFFFF80000000},
		{4, false, 0x80000000, 0x80000000},
		{8, false, 0xDEADBEEF00000000, 0xDEADBEEF00000000},
	}
	for _, tc := range cases {
		c.FinishMMIORead(MMIOInfo{Size: tc.size, Rd: isa.RegA0, Signed: tc.signed}, tc.in)
		if c.X[isa.RegA0] != tc.want {
			t.Errorf("size %d signed %v: got %#x want %#x", tc.size, tc.signed, c.X[isa.RegA0], tc.want)
		}
	}
	// Writes to x0 are dropped.
	c.FinishMMIORead(MMIOInfo{Size: 8, Rd: 0}, 0xFFFF)
	if c.X[0] != 0 {
		t.Fatal("x0 written")
	}
}

func TestEmulatePrivilegedRejectsGarbage(t *testing.T) {
	c := newCPU(t, []byte{0, 0, 0, 0}, 0x1000)
	if err := c.EmulatePrivileged(isa.Inst{Op: isa.OpADD}); err == nil {
		t.Fatal("emulating ADD should fail")
	}
	if err := c.EmulatePrivileged(isa.Inst{Op: isa.OpCSRRW, Imm: 0x7FF}); err == nil {
		t.Fatal("unknown CSR should fail")
	}
	if err := c.EmulatePrivileged(isa.Inst{Op: isa.OpCSRRW, Rs1: 1, Imm: int32(isa.CSRCycle)}); err == nil {
		t.Fatal("read-only CSR write should fail")
	}
}

func TestCSRRSWithX0DoesNotWrite(t *testing.T) {
	// csrr (CSRRS rd, csr, x0) must not fault on read-only CSRs.
	c := buildRun(t, func(b *asm.Builder) {
		b.Csrr(isa.RegA0, isa.CSRCycle) // read-only: must succeed
		b.Halt(0)
	})
	if c.X[isa.RegA0] == 0 {
		t.Fatal("cycle read failed")
	}
}

func TestWriteToReadOnlyCSRTraps(t *testing.T) {
	c := buildRun(t, func(b *asm.Builder) {
		b.La(isa.RegT0, "handler")
		b.Csrw(isa.CSRStvec, isa.RegT0)
		b.Li(isa.RegT1, 5)
		b.Csrw(isa.CSRCycle, isa.RegT1) // illegal
		b.Label("spin")
		b.J("spin")
		b.Align(4)
		b.Label("handler")
		b.Csrr(isa.RegA0, isa.CSRScause)
		b.Halt(0)
	})
	if c.X[isa.RegA0] != isa.CauseIllegal {
		t.Fatalf("cause = %d", c.X[isa.RegA0])
	}
}

func TestMisalignedPCTraps(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.La(isa.RegT0, "handler")
	b.Csrw(isa.CSRStvec, isa.RegT0)
	b.Li(isa.RegT1, 0x2002) // misaligned target
	b.Jalr(isa.RegZero, isa.RegT1, 0)
	b.Align(4)
	b.Label("handler")
	b.Csrr(isa.RegA0, isa.CSRScause)
	b.Halt(0)
	img, _ := b.Finish()
	c := newCPU(t, img, 0x1000)
	if ex := c.Run(100_000); ex.Reason != ExitHalt {
		t.Fatalf("exit %v", ex)
	}
	// JALR clears bit 0 only; 0x2002 stays misaligned → instr-misaligned.
	if c.X[isa.RegA0] != isa.CauseInstrMisaligned {
		t.Fatalf("cause = %d", c.X[isa.RegA0])
	}
}

func TestHaltFromUserModeIsIllegal(t *testing.T) {
	c := buildRun(t, func(b *asm.Builder) {
		b.La(isa.RegT0, "handler")
		b.Csrw(isa.CSRStvec, isa.RegT0)
		b.La(isa.RegT1, "user")
		b.Csrw(isa.CSRSepc, isa.RegT1)
		b.Li(isa.RegT2, 0)
		b.Csrw(isa.CSRSstatus, isa.RegT2)
		b.Sret()
		b.Label("user")
		b.Halt(1) // privileged from U → illegal
		b.Align(4)
		b.Label("handler")
		b.Csrr(isa.RegA0, isa.CSRScause)
		b.Halt(0)
	})
	if c.X[isa.RegA0] != isa.CauseIllegal {
		t.Fatalf("cause = %d", c.X[isa.RegA0])
	}
}

func TestSRETFromUserIsIllegal(t *testing.T) {
	c := buildRun(t, func(b *asm.Builder) {
		b.La(isa.RegT0, "handler")
		b.Csrw(isa.CSRStvec, isa.RegT0)
		b.La(isa.RegT1, "user")
		b.Csrw(isa.CSRSepc, isa.RegT1)
		b.Li(isa.RegT2, 0)
		b.Csrw(isa.CSRSstatus, isa.RegT2)
		b.Sret()
		b.Label("user")
		b.Sret()
		b.Align(4)
		b.Label("handler")
		b.Csrr(isa.RegA0, isa.CSRScause)
		b.Halt(0)
	})
	if c.X[isa.RegA0] != isa.CauseIllegal {
		t.Fatalf("cause = %d", c.X[isa.RegA0])
	}
}

func TestInterruptPriorityExtBeforeTimer(t *testing.T) {
	c := newCPU(t, []byte{0, 0, 0, 0}, 0x1000)
	c.CSR.Sie = 1<<isa.IntExt | 1<<isa.IntTimer | 1<<isa.IntSoft
	c.CSR.Sstatus = isa.StatusSIE
	c.Priv = PrivS
	c.RaiseIRQ(isa.IntSoft)
	c.RaiseIRQ(isa.IntTimer)
	c.RaiseIRQ(isa.IntExt)
	if got := c.PendingInterrupt(); got != isa.IntExt {
		t.Fatalf("priority pick = %d", got)
	}
	c.ClearIRQ(isa.IntExt)
	if got := c.PendingInterrupt(); got != isa.IntTimer {
		t.Fatalf("second pick = %d", got)
	}
}

func TestInterruptMaskedBySIE(t *testing.T) {
	c := newCPU(t, []byte{0, 0, 0, 0}, 0x1000)
	c.Priv = PrivS
	c.CSR.Sie = 1 << isa.IntTimer
	c.RaiseIRQ(isa.IntTimer)
	if c.PendingInterrupt() != 0 {
		t.Fatal("S-mode with SIE=0 must mask")
	}
	// U-mode takes enabled interrupts regardless of SIE.
	c.Priv = PrivU
	if c.PendingInterrupt() != isa.IntTimer {
		t.Fatal("U-mode should take it")
	}
}

func TestTrapStacksAndSRETRestoresState(t *testing.T) {
	c := newCPU(t, []byte{0, 0, 0, 0}, 0x1000)
	c.Priv = PrivU
	c.CSR.Sstatus = isa.StatusSIE
	c.CSR.Stvec = 0x3000
	c.PC = 0x2000
	c.InjectTrap(isa.CauseEcallU, 0)
	if c.Priv != PrivS || c.PC != 0x3000 || c.CSR.Sepc != 0x2000 {
		t.Fatalf("trap entry state: priv=%d pc=%#x sepc=%#x", c.Priv, c.PC, c.CSR.Sepc)
	}
	st := c.CSR.Sstatus
	if st&isa.StatusSIE != 0 || st&isa.StatusSPIE == 0 || st&isa.StatusSPP != 0 {
		t.Fatalf("sstatus after trap = %#x", st)
	}
	c.ExecuteSRET()
	if c.Priv != PrivU || c.PC != 0x2000 {
		t.Fatalf("sret state: priv=%d pc=%#x", c.Priv, c.PC)
	}
	if c.CSR.Sstatus&isa.StatusSIE == 0 {
		t.Fatal("SIE not restored")
	}
}

func TestHostFaultExitOnBalloonedCodePage(t *testing.T) {
	// Executing from an unmapped page must escalate to the VMM, not the
	// guest (failure injection: balloon stole the code page).
	g := mem.NewGuestPhys(mem.NewPool(64), 32*isa.PageSize)
	g.PopulateAll()
	b := asm.NewBuilder(0x1000)
	b.Nop()
	b.Halt(0)
	img, _ := b.Finish()
	g.Write(0x1000, img)
	g.Unmap(1) // steal the code page
	c := New(g, mmu.NewContext(g, mmu.StyleDirect))
	c.Priv = PrivS
	c.PC = 0x1000
	ex := c.Run(10_000)
	if ex.Reason != ExitHostFault || ex.Mem.Kind != mem.FaultNotPresent {
		t.Fatalf("exit = %v", ex)
	}
}

func TestExitStringsRender(t *testing.T) {
	exits := []Exit{
		{Reason: ExitHalt, Code: 3},
		{Reason: ExitPriv, Inst: isa.Inst{Op: isa.OpSRET}},
		{Reason: ExitMMIO, MMIO: MMIOInfo{GPA: 0x4000_0000, Size: 4, Write: true}},
		{Reason: ExitGuestTrap, Cause: isa.CauseIllegal},
		{Reason: ExitHostFault, Mem: &mem.Fault{Kind: mem.FaultNotPresent}},
		{Reason: ExitQuantum},
	}
	for _, e := range exits {
		if e.String() == "" {
			t.Fatalf("empty render for %v", e.Reason)
		}
	}
	if ExitReason(200).String() == "" {
		t.Fatal("unknown reason should still render")
	}
}
