package vcpu

import (
	"fmt"

	"govisor/internal/isa"
	"govisor/internal/mem"
)

// ExitReason says why Run returned control to the VMM.
type ExitReason uint8

// Exit reasons.
const (
	ExitNone       ExitReason = iota
	ExitQuantum               // cycle budget exhausted (host scheduler preemption)
	ExitHalt                  // guest executed HALT; Code carries the diagnostic
	ExitEcall                 // environment call: hypercall (From==PrivS) or syscall to reflect (From==PrivU, deprivileged only)
	ExitPriv                  // privileged instruction while deprivileged; Inst holds it
	ExitMMIO                  // device access; MMIO holds the transaction
	ExitHostFault             // guest-physical fault (demand page, WP, balloon); Mem holds it
	ExitShadowMiss            // shadow-paging fill needed for VA/Access
	ExitGuestTrap             // guest-visible trap while deprivileged; VMM must inject Cause/Tval
	ExitWFI                   // guest idles until an interrupt is pending
	ExitIntrWindow            // deprivileged guest has a deliverable virtual interrupt; VMM injects
	ExitError                 // interpreter invariant violated; Err set

	NumExitReasons = int(ExitError) + 1
)

var exitNames = [...]string{
	ExitNone: "none", ExitQuantum: "quantum", ExitHalt: "halt",
	ExitEcall: "ecall", ExitPriv: "priv", ExitMMIO: "mmio",
	ExitHostFault: "host-fault", ExitShadowMiss: "shadow-miss",
	ExitGuestTrap: "guest-trap", ExitWFI: "wfi",
	ExitIntrWindow: "intr-window", ExitError: "error",
}

// String names the exit reason.
func (r ExitReason) String() string {
	if int(r) < len(exitNames) {
		return exitNames[r]
	}
	return fmt.Sprintf("exit(%d)", uint8(r))
}

// MMIOInfo describes a device access that exited to the VMM. The program
// counter has already advanced past the instruction; for reads the VMM
// completes the access with CPU.FinishMMIORead.
type MMIOInfo struct {
	GPA    uint64
	Size   uint8 // 1, 2, 4 or 8
	Write  bool
	Value  uint64 // store data (Write == true)
	Rd     uint8  // destination register (Write == false)
	Signed bool   // sign-extend the loaded value
}

// Exit is the result of CPU.Run.
type Exit struct {
	Reason ExitReason
	Code   uint16   // ExitHalt diagnostic
	Inst   isa.Inst // ExitPriv: the instruction to emulate
	From   uint8    // ExitEcall: virtual privilege it was issued from

	VA     uint64     // faulting virtual address (shadow miss / host fault)
	Access isa.Access // access kind for VA
	Mem    *mem.Fault // ExitHostFault detail

	Cause uint64 // ExitGuestTrap: scause to inject
	Tval  uint64 // ExitGuestTrap: stval to inject

	MMIO MMIOInfo

	Err error // ExitError
}

func (e Exit) String() string {
	switch e.Reason {
	case ExitHalt:
		return fmt.Sprintf("halt(%d)", e.Code)
	case ExitPriv:
		return fmt.Sprintf("priv(%s)", isa.Disasm(e.Inst))
	case ExitMMIO:
		dir := "read"
		if e.MMIO.Write {
			dir = "write"
		}
		return fmt.Sprintf("mmio(%s %d @ %#x)", dir, e.MMIO.Size, e.MMIO.GPA)
	case ExitGuestTrap:
		return fmt.Sprintf("guest-trap(%s)", isa.CauseName(e.Cause))
	case ExitHostFault:
		return fmt.Sprintf("host-fault(%v)", e.Mem)
	case ExitError:
		return fmt.Sprintf("error(%v)", e.Err)
	default:
		return e.Reason.String()
	}
}
