package vcpu

import (
	"testing"

	"govisor/internal/asm"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/mmu"
)

// newCPUPairSB builds two CPUs over identical images, both with the decoded
// cache, differing only in superblock dispatch.
func newCPUPairSB(t *testing.T, img []byte, tweak func(*CPU)) (blocks, slow *CPU) {
	t.Helper()
	build := func(noSB bool) *CPU {
		g := mem.NewGuestPhys(mem.NewPool(ramPages*2), ramPages*isa.PageSize)
		if err := g.PopulateAll(); err != nil {
			t.Fatal(err)
		}
		if f := g.Write(0x1000, img); f != nil {
			t.Fatal(f)
		}
		c := New(g, mmu.NewContext(g, mmu.StyleDirect))
		c.Priv = PrivS
		c.PC = 0x1000
		c.ICache = NewICache()
		c.NoSuperblocks = noSB
		if tweak != nil {
			tweak(c)
		}
		return c
	}
	return build(false), build(true)
}

// compareCPUs asserts every architectural and statistical field matches.
func compareCPUs(t *testing.T, label string, a, b *CPU) {
	t.Helper()
	if a.Cycles != b.Cycles || a.Instret != b.Instret {
		t.Errorf("%s: time diverged: blocks (cyc=%d ret=%d) slow (cyc=%d ret=%d)",
			label, a.Cycles, a.Instret, b.Cycles, b.Instret)
	}
	if a.X != b.X || a.PC != b.PC || a.Priv != b.Priv {
		t.Errorf("%s: register state diverged (pc %#x vs %#x)", label, a.PC, b.PC)
	}
	if a.CSR != b.CSR {
		t.Errorf("%s: CSR state diverged: %+v vs %+v", label, a.CSR, b.CSR)
	}
	if a.Stats != b.Stats {
		t.Errorf("%s: exit stats diverged: %+v vs %+v", label, a.Stats, b.Stats)
	}
	if a.MMU.Stats != b.MMU.Stats {
		t.Errorf("%s: MMU stats diverged: %+v vs %+v", label, a.MMU.Stats, b.MMU.Stats)
	}
	if a.MMU.TLB.Stats != b.MMU.TLB.Stats {
		t.Errorf("%s: TLB stats diverged: %+v vs %+v", label, a.MMU.TLB.Stats, b.MMU.TLB.Stats)
	}
}

// straightLineImg builds a program whose body is one long straight-line run:
// n ALU instructions mixing in a load+store pair every 8 ops, then HALT.
func straightLineImg(t *testing.T, n int) []byte {
	t.Helper()
	b := asm.NewBuilder(0x1000)
	b.Li(isa.RegS0, 0x8000) // scratch page
	for i := 0; i < n; i++ {
		switch i % 8 {
		case 3:
			b.Load(isa.OpLD, isa.RegT1, isa.RegS0, 0)
		case 6:
			b.Store(isa.OpSD, isa.RegA0, isa.RegS0, 8)
		default:
			b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1)
		}
	}
	b.Halt(0)
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestSuperblockQuantumFallback: quantum expiry must land on exactly the
// same instruction with blocks on or off — the horizon check falls back to
// the per-instruction path whenever the deadline could land inside a block.
// Swept across budgets so the deadline lands on every boundary of the run,
// including deep inside would-be blocks.
func TestSuperblockQuantumFallback(t *testing.T) {
	img := straightLineImg(t, 100)
	for budget := uint64(1); budget < 160; budget += 3 {
		blocks, slow := newCPUPairSB(t, img, nil)
		for {
			exB := blocks.Run(budget)
			exS := slow.Run(budget)
			if exB.Reason != exS.Reason {
				t.Fatalf("budget %d: exit diverged: blocks %v slow %v (pc %#x vs %#x)",
					budget, exB, exS, blocks.PC, slow.PC)
			}
			compareCPUs(t, "quantum", blocks, slow)
			if t.Failed() {
				t.Fatalf("diverged at budget %d", budget)
			}
			if exB.Reason == ExitHalt {
				break
			}
		}
	}
}

// TestSuperblockStimecmpFallback: the STIP latch must set at exactly the
// same instruction boundary with blocks on or off, for every placement of
// STIMECMP inside the run — including mid-block, where dispatch must fall
// back. With the timer interrupt enabled the trap must also vector at the
// identical point.
func TestSuperblockStimecmpFallback(t *testing.T) {
	// Handler at 0x2000: rearm stimecmp far away, record entry, sret.
	b := asm.NewBuilder(0x2000)
	b.I(isa.OpADDI, isa.RegA7, isa.RegA7, 1) // count timer traps
	b.Li(isa.RegT2, 1<<40)
	b.Csrw(isa.CSRStimecmp, isa.RegT2)
	b.Sret()
	handler, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	img := straightLineImg(t, 100)
	for _, enableIRQ := range []bool{false, true} {
		for cmp := uint64(1); cmp < 140; cmp += 7 {
			tweak := func(c *CPU) {
				if f := c.Mem.Write(0x2000, handler); f != nil {
					t.Fatal(f)
				}
				c.CSR.Stvec = 0x2000
				c.CSR.Stimecmp = cmp
				if enableIRQ {
					c.CSR.Sie = 1 << isa.IntTimer
					c.CSR.Sstatus = isa.StatusSIE
				}
			}
			blocks, slow := newCPUPairSB(t, img, tweak)
			for {
				exB := blocks.Run(1_000_000)
				exS := slow.Run(1_000_000)
				if exB.Reason != exS.Reason {
					t.Fatalf("irq=%v cmp %d: exit diverged: %v vs %v", enableIRQ, cmp, exB, exS)
				}
				compareCPUs(t, "stimecmp", blocks, slow)
				if t.Failed() {
					t.Fatalf("diverged at irq=%v cmp=%d", enableIRQ, cmp)
				}
				if exB.Reason == ExitHalt {
					break
				}
			}
			if enableIRQ && blocks.X[isa.RegA7] == 0 {
				t.Fatalf("cmp %d: timer trap never delivered", cmp)
			}
		}
	}
}

// TestSuperblockInterruptWindowFallback: a deprivileged vCPU with an
// interrupt becoming deliverable partway through a straight-line run must
// exit with ExitIntrWindow at exactly the same instruction with blocks on or
// off. The IRQ is raised between Run calls (as the VMM does), with small
// quanta so re-entry points land mid-run.
func TestSuperblockInterruptWindowFallback(t *testing.T) {
	img := straightLineImg(t, 100)
	for raiseAt := uint64(10); raiseAt < 150; raiseAt += 13 {
		tweak := func(c *CPU) {
			c.Deprivileged = true
			c.CSR.Sie = 1 << isa.IntExt
			c.CSR.Sstatus = isa.StatusSIE
		}
		blocks, slow := newCPUPairSB(t, img, tweak)
		raised := false
		for {
			budget := uint64(25)
			exB := blocks.Run(budget)
			exS := slow.Run(budget)
			if exB.Reason != exS.Reason {
				t.Fatalf("raiseAt %d: exit diverged: %v vs %v (pc %#x vs %#x)",
					raiseAt, exB, exS, blocks.PC, slow.PC)
			}
			compareCPUs(t, "intr-window", blocks, slow)
			if t.Failed() {
				t.Fatalf("diverged at raiseAt=%d", raiseAt)
			}
			switch exB.Reason {
			case ExitHalt:
				if !raised {
					t.Fatalf("raiseAt %d: halted before the IRQ was raised", raiseAt)
				}
				return
			case ExitIntrWindow:
				// Both exited the window at the same point; deliver and go on.
				blocks.InjectTrap(isa.CauseInterrupt|isa.IntExt, 0)
				slow.InjectTrap(isa.CauseInterrupt|isa.IntExt, 0)
				blocks.ClearIRQ(isa.IntExt)
				slow.ClearIRQ(isa.IntExt)
				// Return from the "handler" immediately: there is no guest
				// handler mapped at stvec 0, so just unwind via SRET state.
				blocks.ExecuteSRET()
				slow.ExecuteSRET()
			}
			if !raised && blocks.Cycles >= raiseAt {
				blocks.RaiseIRQ(isa.IntExt)
				slow.RaiseIRQ(isa.IntExt)
				raised = true
			}
		}
	}
}

// TestSuperblockSelfModifyingCode: a store into the executing superblock
// must end the block and re-predecode, keeping block execution byte-
// identical with the per-instruction path (which notices on the very next
// fetch).
func TestSuperblockSelfModifyingCode(t *testing.T) {
	blocks, slow := newCPUPairSB(t, smcProgram(), nil)
	exB, exS := blocks.Run(1_000_000), slow.Run(1_000_000)
	if exB.Reason != ExitHalt || exS.Reason != ExitHalt {
		t.Fatalf("exits: blocks %v slow %v", exB, exS)
	}
	if blocks.X[isa.RegA0] != 111 {
		t.Fatalf("blocks a0 = %d, want 111 (stale superblock?)", blocks.X[isa.RegA0])
	}
	compareCPUs(t, "smc", blocks, slow)
}

// TestSuperblockLoweringShapes pins the lowering pass: run lengths and
// memory-op counts are suffix sums that stop at terminators and the page
// boundary.
func TestSuperblockLoweringShapes(t *testing.T) {
	g := mem.NewGuestPhys(mem.NewPool(8), 4*isa.PageSize)
	if err := g.PopulateAll(); err != nil {
		t.Fatal(err)
	}
	img := words(
		isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 1}, // 0: run of 4
		isa.Inst{Op: isa.OpLD, Rd: isa.RegT0, Rs1: isa.RegS0},           // 1: mem
		isa.Inst{Op: isa.OpSD, Rs2: isa.RegT0, Rs1: isa.RegS0, Imm: 8},  // 2: mem
		isa.Inst{Op: isa.OpADD, Rd: isa.RegA1, Rs1: isa.RegA0},          // 3
		isa.Inst{Op: isa.OpBEQ, Rs1: isa.RegZero, Rs2: isa.RegZero},     // 4: terminator
		isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 1}, // 5: run of 1
		isa.Inst{Op: isa.OpJAL, Rd: isa.RegZero},                        // 6: terminator
	)
	if f := g.Write(0, img); f != nil {
		t.Fatal(f)
	}
	ic := NewICache()
	ic.fill(g, 0)
	p := ic.pages[0]
	wantLen := []uint16{4, 3, 2, 1, 0, 1, 0}
	wantMem := []uint16{2, 2, 1, 0, 0, 0, 0}
	for i, w := range wantLen {
		if p.blkLen[i] != w {
			t.Errorf("blkLen[%d] = %d, want %d", i, p.blkLen[i], w)
		}
		if p.blkMem[i] != wantMem[i] {
			t.Errorf("blkMem[%d] = %d, want %d", i, p.blkMem[i], wantMem[i])
		}
	}
	// The rest of the page is zeroed: OpIllegal, all terminators.
	for i := len(wantLen); i < instPerPage; i++ {
		if p.blkLen[i] != 0 {
			t.Fatalf("blkLen[%d] = %d for zeroed slot", i, p.blkLen[i])
		}
	}
	// Page-boundary cap: a page ending in straight-line ops must not run
	// past the last slot.
	var full []isa.Inst
	for i := 0; i < instPerPage; i++ {
		full = append(full, isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 1})
	}
	if f := g.Write(isa.PageSize, words(full...)); f != nil {
		t.Fatal(f)
	}
	ic.fill(g, 1)
	p1 := ic.pages[1]
	if p1.blkLen[0] != instPerPage || p1.blkLen[instPerPage-1] != 1 {
		t.Errorf("page-spanning run mislowered: blkLen[0]=%d blkLen[last]=%d",
			p1.blkLen[0], p1.blkLen[instPerPage-1])
	}
}

// TestBlockHorizonSaturatedCycles: the block admission check must be exact
// when the cycle counter runs near ^uint64(0). The old form computed
// `horizon := c.Cycles + span`; with the clock saturated the addition
// wrapped, the tiny wrapped horizon compared below the deadline, and a block
// whose span crossed the quantum was dispatched — retiring past the deadline
// (and, once the clock itself wrapped, running clean through HALT while the
// reference arm exited with ExitQuantum). The wrap-guarded blockAdmissible
// refuses dispatch and both arms exit at the identical instruction.
func TestBlockHorizonSaturatedCycles(t *testing.T) {
	// A long load-heavy straight-line run: big worst-case span.
	var ins []isa.Inst
	for i := 0; i < 200; i++ {
		ins = append(ins,
			isa.Inst{Op: isa.OpLW, Rd: isa.RegT0, Rs1: isa.RegZero, Imm: 0x100},
			isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 1})
	}
	ins = append(ins, isa.Inst{Op: isa.OpHALT})
	img := words(ins...)
	cached, plain := newCPUPair(t, img)
	span := uint64(len(ins)-1)*cached.Costs.Instr +
		200*(cached.Costs.MemAccess+cached.MMU.MaxWalkRefs()*cached.Costs.PTRef)
	delta := span / 2   // span >= delta: admission must refuse...
	budget := delta / 2 // ...and the deadline itself must not wrap
	for _, c := range []*CPU{cached, plain} {
		c.Cycles = ^uint64(0) - delta
	}
	exC, exP := cached.Run(budget), plain.Run(budget)
	if exC.Reason != ExitQuantum || exP.Reason != ExitQuantum {
		t.Fatalf("exits: cached %v plain %v, want ExitQuantum (wrapped horizon admitted the block?)", exC, exP)
	}
	if cached.X != plain.X || cached.Cycles != plain.Cycles ||
		cached.Instret != plain.Instret || cached.PC != plain.PC {
		t.Fatalf("saturated-clock runs diverged: cached (cyc=%d ret=%d pc=%#x) plain (cyc=%d ret=%d pc=%#x)",
			cached.Cycles, cached.Instret, cached.PC, plain.Cycles, plain.Instret, plain.PC)
	}
	// The same saturated entry must also hold with STIMECMP armed just past
	// the clock: cmp - Cycles < span, so admission refuses; the latch then
	// fires at the same loop-top boundary either way.
	cached2, plain2 := newCPUPair(t, img)
	for _, c := range []*CPU{cached2, plain2} {
		c.Cycles = ^uint64(0) - span - span/4
		c.CSR.Stimecmp = c.Cycles + delta
	}
	exC2, exP2 := cached2.Run(span*2), plain2.Run(span*2)
	if exC2.Reason != exP2.Reason {
		t.Fatalf("stimecmp exits diverged: cached %v plain %v", exC2, exP2)
	}
	if cached2.CSR != plain2.CSR || cached2.Cycles != plain2.Cycles || cached2.Instret != plain2.Instret {
		t.Fatalf("stimecmp runs diverged: cached (cyc=%d sip=%#x) plain (cyc=%d sip=%#x)",
			cached2.Cycles, cached2.CSR.Sip, plain2.Cycles, plain2.CSR.Sip)
	}
}

// chainLoopImg builds a loop whose body straddles the 0x2000 page boundary:
// a one-time straight-line prologue pads execution up to just below the
// boundary, then the loop body runs 8 instructions on the first page,
// crosses into the second, and branches back. Every iteration exercises both
// chain paths — the page-boundary pseudo-terminator (cross-page superblock
// continuation) and the back-edge terminator (chained block entry).
func chainLoopImg(t *testing.T, iters uint64) []byte {
	t.Helper()
	b := asm.NewBuilder(0x1000)
	b.Li(isa.RegS0, iters)
	for b.PC() < 0x1FE0 {
		b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1)
	}
	b.Label("loop")
	for b.PC() < 0x2020 {
		b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1)
	}
	b.I(isa.OpADDI, isa.RegS0, isa.RegS0, -1)
	b.Branch(isa.OpBNE, isa.RegS0, isa.RegZero, "loop")
	b.Halt(0)
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestBlockChainCrossPageLoop: a hot loop straddling a page boundary must be
// byte-identical between the chained engine and the NoBlockChain reference
// arm — across a budget sweep that lands quantum deadlines on every boundary
// near the crossing — while the chained run actually crosses and chains.
func TestBlockChainCrossPageLoop(t *testing.T) {
	img := chainLoopImg(t, 50)
	for budget := uint64(97); budget < 4000; budget += 449 {
		chained, _ := newCPUPairSB(t, img, nil)
		unchained, _ := newCPUPairSB(t, img, func(c *CPU) { c.NoBlockChain = true })
		for {
			exC := chained.Run(budget)
			exU := unchained.Run(budget)
			if exC.Reason != exU.Reason {
				t.Fatalf("budget %d: exit diverged: chained %v unchained %v (pc %#x vs %#x)",
					budget, exC, exU, chained.PC, unchained.PC)
			}
			compareCPUs(t, "chain", chained, unchained)
			if t.Failed() {
				t.Fatalf("diverged at budget %d", budget)
			}
			if exC.Reason == ExitHalt {
				break
			}
		}
		st := chained.ICache.Stats
		if st.Crossings == 0 || st.ChainHits == 0 {
			t.Fatalf("budget %d: chain engine idle: %+v", budget, st)
		}
		if un := unchained.ICache.Stats; un.Crossings != 0 || un.ChainHits != 0 || un.ChainResolves != 0 {
			t.Fatalf("budget %d: reference arm used the chain cache: %+v", budget, un)
		}
	}
}

// TestBlockChainSMCAndFlushInvalidation: a chained successor must be
// re-proven on every consumption. The guest overwrites an instruction in the
// *successor* page of a chained crossing (page version bump) and later runs
// an SFENCE.VMA between chained iterations (TLB generation bump); both must
// invalidate the link and both arms must stay byte-identical.
func TestBlockChainSMCAndFlushInvalidation(t *testing.T) {
	// Loop straddles 0x2000; iteration 25 stores a new instruction into the
	// successor page (changing an ADDI a0,+1 to ADDI a0,+3 at 0x2010), and
	// every iteration executes SFENCE.VMA (a system terminator between the
	// chained back-edge and the next entry).
	build := func(sfence bool) []byte {
		b := asm.NewBuilder(0x1000)
		b.Li(isa.RegS0, 50)
		for b.PC() < 0x1FF0 {
			b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1)
		}
		b.Label("loop")
		for b.PC() < 0x2020 {
			b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1)
		}
		// if s0 == 25: patch 0x2010 with "addi a0, a0, 3"
		b.Li(isa.RegT0, 25)
		b.Branch(isa.OpBNE, isa.RegS0, isa.RegT0, "nopatch")
		b.Li(isa.RegT1, uint64(isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 3})))
		b.Li(isa.RegT2, 0x2010)
		b.Store(isa.OpSW, isa.RegT1, isa.RegT2, 0)
		b.Label("nopatch")
		if sfence {
			b.SfenceVMA(isa.RegZero, isa.RegZero)
		}
		b.I(isa.OpADDI, isa.RegS0, isa.RegS0, -1)
		b.Branch(isa.OpBNE, isa.RegS0, isa.RegZero, "loop")
		b.Halt(0)
		img, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	for _, sfence := range []bool{false, true} {
		img := build(sfence)
		chained, _ := newCPUPairSB(t, img, nil)
		unchained, _ := newCPUPairSB(t, img, func(c *CPU) { c.NoBlockChain = true })
		exC, exU := chained.Run(10_000_000), unchained.Run(10_000_000)
		if exC.Reason != ExitHalt || exU.Reason != ExitHalt {
			t.Fatalf("sfence=%v exits: chained %v unchained %v", sfence, exC, exU)
		}
		compareCPUs(t, "chain-smc", chained, unchained)
		if t.Failed() {
			t.FailNow()
		}
		if st := chained.ICache.Stats; st.Crossings == 0 {
			t.Fatalf("sfence=%v: loop never crossed in-block: %+v", sfence, st)
		}
	}
}

// TestBlockChainRemapFlushExact: the one invalidation the page-version check
// cannot see — the guest rewrites a leaf PTE so the chained virtual page maps
// to a different frame with different code, then SFENCE.VMAs. The chain
// link's translation snapshot still names the old frame (whose content, and
// hence page version, never changed), so only the TLB-generation check in
// mmu.ChainFetch stands between the chained arm and silently executing stale
// code. The chained and unchained arms must stay byte-identical across the
// remap, and both must observe the new frame's code.
func TestBlockChainRemapFlushExact(t *testing.T) {
	const (
		targetVA = uint64(0x200000) // chained page, outside the identity region
		frame1   = uint64(80)
		frame2   = uint64(81)
		iters    = uint64(64)
		remapAt  = uint64(32)
	)
	build := func(noChain bool) *CPU {
		g := mem.NewGuestPhys(mem.NewPool(ramPages*2), ramPages*isa.PageSize)
		if err := g.PopulateAll(); err != nil {
			t.Fatal(err)
		}
		tb, err := mmu.NewTableBuilder(g, 128, 32)
		if err != nil {
			t.Fatal(err)
		}
		// Identity-map code, data and the page tables themselves (the guest
		// rewrites a leaf slot directly, like the PT-churn workload).
		if err := tb.IdentityMap(160*isa.PageSize, isa.PTERead|isa.PTEWrite|isa.PTEExec); err != nil {
			t.Fatal(err)
		}
		if err := tb.Map(targetVA, frame1<<isa.PageShift, isa.PTERead|isa.PTEExec); err != nil {
			t.Fatal(err)
		}
		l0, err := tb.EnsureL0(targetVA)
		if err != nil {
			t.Fatal(err)
		}
		pteAddr := l0<<isa.PageShift + isa.VPN(targetVA, 0)*8
		newPTE := isa.MakePTE(frame2, isa.PTERead|isa.PTEExec|isa.PTEValid|isa.PTEAcc|isa.PTEDirty)

		// Both frames: bump a1, then return to the loop. Frame 2 bumps by 2,
		// so executing a stale frame after the remap is architecturally
		// visible.
		for _, fr := range []struct {
			ppn uint64
			inc int64
		}{{frame1, 1}, {frame2, 2}} {
			fb := asm.NewBuilder(targetVA)
			fb.I(isa.OpADDI, isa.RegA1, isa.RegA1, fr.inc)
			fb.Jalr(isa.RegZero, isa.RegS3, 0)
			fimg, err := fb.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if f := g.Write(fr.ppn<<isa.PageShift, fimg); f != nil {
				t.Fatal(f)
			}
		}

		b := asm.NewBuilder(0x1000)
		b.Li(isa.RegT0, isa.MakeSatp(isa.SatpModePaged, 1, tb.RootPPN))
		b.Csrw(isa.CSRSatp, isa.RegT0)
		b.SfenceVMA(isa.RegZero, isa.RegZero)
		b.La(isa.RegS3, "loopret")
		b.Li(isa.RegS4, targetVA)
		b.Li(isa.RegS5, pteAddr)
		b.Li(isa.RegS6, newPTE)
		b.Li(isa.RegS0, iters)
		b.Li(isa.RegS2, 0)
		b.Li(isa.RegT5, remapAt)
		b.Label("top")
		b.Jalr(isa.RegZero, isa.RegS4, 0) // into the chained page
		b.Label("loopret")
		b.Branch(isa.OpBNE, isa.RegS2, isa.RegT5, "no_remap")
		b.Store(isa.OpSD, isa.RegS6, isa.RegS5, 0) // retarget the leaf PTE
		b.SfenceVMA(isa.RegZero, isa.RegZero)
		b.Label("no_remap")
		b.I(isa.OpADDI, isa.RegS2, isa.RegS2, 1)
		b.I(isa.OpADDI, isa.RegS0, isa.RegS0, -1)
		b.Branch(isa.OpBNE, isa.RegS0, isa.RegZero, "top")
		b.Halt(0)
		img, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if f := g.Write(0x1000, img); f != nil {
			t.Fatal(f)
		}

		c := New(g, mmu.NewContext(g, mmu.StyleDirect))
		c.Priv = PrivS
		c.PC = 0x1000
		c.ICache = NewICache()
		c.NoBlockChain = noChain
		return c
	}

	chained, plain := build(false), build(true)
	for name, c := range map[string]*CPU{"chained": chained, "plain": plain} {
		if ex := c.Run(10_000_000); ex.Reason != ExitHalt {
			t.Fatalf("%s: exit %v (pc=%#x)", name, ex, c.PC)
		}
	}
	// Iterations 0..remapAt ran frame 1 (+1), the rest frame 2 (+2): both
	// arms must have switched frames at exactly the remap.
	want := (remapAt + 1) + (iters-remapAt-1)*2
	if chained.X[isa.RegA1] != want || plain.X[isa.RegA1] != want {
		t.Errorf("a1: chained=%d plain=%d want %d (stale frame executed?)",
			chained.X[isa.RegA1], plain.X[isa.RegA1], want)
	}
	compareCPUs(t, "remap", chained, plain)
	if st := chained.ICache.Stats; st.ChainHits == 0 {
		t.Errorf("chained arm never chained: %+v", st)
	}
}
