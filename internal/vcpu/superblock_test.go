package vcpu

import (
	"testing"

	"govisor/internal/asm"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/mmu"
)

// newCPUPairSB builds two CPUs over identical images, both with the decoded
// cache, differing only in superblock dispatch.
func newCPUPairSB(t *testing.T, img []byte, tweak func(*CPU)) (blocks, slow *CPU) {
	t.Helper()
	build := func(noSB bool) *CPU {
		g := mem.NewGuestPhys(mem.NewPool(ramPages*2), ramPages*isa.PageSize)
		if err := g.PopulateAll(); err != nil {
			t.Fatal(err)
		}
		if f := g.Write(0x1000, img); f != nil {
			t.Fatal(f)
		}
		c := New(g, mmu.NewContext(g, mmu.StyleDirect))
		c.Priv = PrivS
		c.PC = 0x1000
		c.ICache = NewICache()
		c.NoSuperblocks = noSB
		if tweak != nil {
			tweak(c)
		}
		return c
	}
	return build(false), build(true)
}

// compareCPUs asserts every architectural and statistical field matches.
func compareCPUs(t *testing.T, label string, a, b *CPU) {
	t.Helper()
	if a.Cycles != b.Cycles || a.Instret != b.Instret {
		t.Errorf("%s: time diverged: blocks (cyc=%d ret=%d) slow (cyc=%d ret=%d)",
			label, a.Cycles, a.Instret, b.Cycles, b.Instret)
	}
	if a.X != b.X || a.PC != b.PC || a.Priv != b.Priv {
		t.Errorf("%s: register state diverged (pc %#x vs %#x)", label, a.PC, b.PC)
	}
	if a.CSR != b.CSR {
		t.Errorf("%s: CSR state diverged: %+v vs %+v", label, a.CSR, b.CSR)
	}
	if a.Stats != b.Stats {
		t.Errorf("%s: exit stats diverged: %+v vs %+v", label, a.Stats, b.Stats)
	}
	if a.MMU.Stats != b.MMU.Stats {
		t.Errorf("%s: MMU stats diverged: %+v vs %+v", label, a.MMU.Stats, b.MMU.Stats)
	}
	if a.MMU.TLB.Stats != b.MMU.TLB.Stats {
		t.Errorf("%s: TLB stats diverged: %+v vs %+v", label, a.MMU.TLB.Stats, b.MMU.TLB.Stats)
	}
}

// straightLineImg builds a program whose body is one long straight-line run:
// n ALU instructions mixing in a load+store pair every 8 ops, then HALT.
func straightLineImg(t *testing.T, n int) []byte {
	t.Helper()
	b := asm.NewBuilder(0x1000)
	b.Li(isa.RegS0, 0x8000) // scratch page
	for i := 0; i < n; i++ {
		switch i % 8 {
		case 3:
			b.Load(isa.OpLD, isa.RegT1, isa.RegS0, 0)
		case 6:
			b.Store(isa.OpSD, isa.RegA0, isa.RegS0, 8)
		default:
			b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1)
		}
	}
	b.Halt(0)
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestSuperblockQuantumFallback: quantum expiry must land on exactly the
// same instruction with blocks on or off — the horizon check falls back to
// the per-instruction path whenever the deadline could land inside a block.
// Swept across budgets so the deadline lands on every boundary of the run,
// including deep inside would-be blocks.
func TestSuperblockQuantumFallback(t *testing.T) {
	img := straightLineImg(t, 100)
	for budget := uint64(1); budget < 160; budget += 3 {
		blocks, slow := newCPUPairSB(t, img, nil)
		for {
			exB := blocks.Run(budget)
			exS := slow.Run(budget)
			if exB.Reason != exS.Reason {
				t.Fatalf("budget %d: exit diverged: blocks %v slow %v (pc %#x vs %#x)",
					budget, exB, exS, blocks.PC, slow.PC)
			}
			compareCPUs(t, "quantum", blocks, slow)
			if t.Failed() {
				t.Fatalf("diverged at budget %d", budget)
			}
			if exB.Reason == ExitHalt {
				break
			}
		}
	}
}

// TestSuperblockStimecmpFallback: the STIP latch must set at exactly the
// same instruction boundary with blocks on or off, for every placement of
// STIMECMP inside the run — including mid-block, where dispatch must fall
// back. With the timer interrupt enabled the trap must also vector at the
// identical point.
func TestSuperblockStimecmpFallback(t *testing.T) {
	// Handler at 0x2000: rearm stimecmp far away, record entry, sret.
	b := asm.NewBuilder(0x2000)
	b.I(isa.OpADDI, isa.RegA7, isa.RegA7, 1) // count timer traps
	b.Li(isa.RegT2, 1<<40)
	b.Csrw(isa.CSRStimecmp, isa.RegT2)
	b.Sret()
	handler, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	img := straightLineImg(t, 100)
	for _, enableIRQ := range []bool{false, true} {
		for cmp := uint64(1); cmp < 140; cmp += 7 {
			tweak := func(c *CPU) {
				if f := c.Mem.Write(0x2000, handler); f != nil {
					t.Fatal(f)
				}
				c.CSR.Stvec = 0x2000
				c.CSR.Stimecmp = cmp
				if enableIRQ {
					c.CSR.Sie = 1 << isa.IntTimer
					c.CSR.Sstatus = isa.StatusSIE
				}
			}
			blocks, slow := newCPUPairSB(t, img, tweak)
			for {
				exB := blocks.Run(1_000_000)
				exS := slow.Run(1_000_000)
				if exB.Reason != exS.Reason {
					t.Fatalf("irq=%v cmp %d: exit diverged: %v vs %v", enableIRQ, cmp, exB, exS)
				}
				compareCPUs(t, "stimecmp", blocks, slow)
				if t.Failed() {
					t.Fatalf("diverged at irq=%v cmp=%d", enableIRQ, cmp)
				}
				if exB.Reason == ExitHalt {
					break
				}
			}
			if enableIRQ && blocks.X[isa.RegA7] == 0 {
				t.Fatalf("cmp %d: timer trap never delivered", cmp)
			}
		}
	}
}

// TestSuperblockInterruptWindowFallback: a deprivileged vCPU with an
// interrupt becoming deliverable partway through a straight-line run must
// exit with ExitIntrWindow at exactly the same instruction with blocks on or
// off. The IRQ is raised between Run calls (as the VMM does), with small
// quanta so re-entry points land mid-run.
func TestSuperblockInterruptWindowFallback(t *testing.T) {
	img := straightLineImg(t, 100)
	for raiseAt := uint64(10); raiseAt < 150; raiseAt += 13 {
		tweak := func(c *CPU) {
			c.Deprivileged = true
			c.CSR.Sie = 1 << isa.IntExt
			c.CSR.Sstatus = isa.StatusSIE
		}
		blocks, slow := newCPUPairSB(t, img, tweak)
		raised := false
		for {
			budget := uint64(25)
			exB := blocks.Run(budget)
			exS := slow.Run(budget)
			if exB.Reason != exS.Reason {
				t.Fatalf("raiseAt %d: exit diverged: %v vs %v (pc %#x vs %#x)",
					raiseAt, exB, exS, blocks.PC, slow.PC)
			}
			compareCPUs(t, "intr-window", blocks, slow)
			if t.Failed() {
				t.Fatalf("diverged at raiseAt=%d", raiseAt)
			}
			switch exB.Reason {
			case ExitHalt:
				if !raised {
					t.Fatalf("raiseAt %d: halted before the IRQ was raised", raiseAt)
				}
				return
			case ExitIntrWindow:
				// Both exited the window at the same point; deliver and go on.
				blocks.InjectTrap(isa.CauseInterrupt|isa.IntExt, 0)
				slow.InjectTrap(isa.CauseInterrupt|isa.IntExt, 0)
				blocks.ClearIRQ(isa.IntExt)
				slow.ClearIRQ(isa.IntExt)
				// Return from the "handler" immediately: there is no guest
				// handler mapped at stvec 0, so just unwind via SRET state.
				blocks.ExecuteSRET()
				slow.ExecuteSRET()
			}
			if !raised && blocks.Cycles >= raiseAt {
				blocks.RaiseIRQ(isa.IntExt)
				slow.RaiseIRQ(isa.IntExt)
				raised = true
			}
		}
	}
}

// TestSuperblockSelfModifyingCode: a store into the executing superblock
// must end the block and re-predecode, keeping block execution byte-
// identical with the per-instruction path (which notices on the very next
// fetch).
func TestSuperblockSelfModifyingCode(t *testing.T) {
	blocks, slow := newCPUPairSB(t, smcProgram(), nil)
	exB, exS := blocks.Run(1_000_000), slow.Run(1_000_000)
	if exB.Reason != ExitHalt || exS.Reason != ExitHalt {
		t.Fatalf("exits: blocks %v slow %v", exB, exS)
	}
	if blocks.X[isa.RegA0] != 111 {
		t.Fatalf("blocks a0 = %d, want 111 (stale superblock?)", blocks.X[isa.RegA0])
	}
	compareCPUs(t, "smc", blocks, slow)
}

// TestSuperblockLoweringShapes pins the lowering pass: run lengths and
// memory-op counts are suffix sums that stop at terminators and the page
// boundary.
func TestSuperblockLoweringShapes(t *testing.T) {
	g := mem.NewGuestPhys(mem.NewPool(8), 4*isa.PageSize)
	if err := g.PopulateAll(); err != nil {
		t.Fatal(err)
	}
	img := words(
		isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 1}, // 0: run of 4
		isa.Inst{Op: isa.OpLD, Rd: isa.RegT0, Rs1: isa.RegS0},           // 1: mem
		isa.Inst{Op: isa.OpSD, Rs2: isa.RegT0, Rs1: isa.RegS0, Imm: 8},  // 2: mem
		isa.Inst{Op: isa.OpADD, Rd: isa.RegA1, Rs1: isa.RegA0},          // 3
		isa.Inst{Op: isa.OpBEQ, Rs1: isa.RegZero, Rs2: isa.RegZero},     // 4: terminator
		isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 1}, // 5: run of 1
		isa.Inst{Op: isa.OpJAL, Rd: isa.RegZero},                        // 6: terminator
	)
	if f := g.Write(0, img); f != nil {
		t.Fatal(f)
	}
	ic := NewICache()
	ic.fill(g, 0)
	p := ic.pages[0]
	wantLen := []uint16{4, 3, 2, 1, 0, 1, 0}
	wantMem := []uint16{2, 2, 1, 0, 0, 0, 0}
	for i, w := range wantLen {
		if p.blkLen[i] != w {
			t.Errorf("blkLen[%d] = %d, want %d", i, p.blkLen[i], w)
		}
		if p.blkMem[i] != wantMem[i] {
			t.Errorf("blkMem[%d] = %d, want %d", i, p.blkMem[i], wantMem[i])
		}
	}
	// The rest of the page is zeroed: OpIllegal, all terminators.
	for i := len(wantLen); i < instPerPage; i++ {
		if p.blkLen[i] != 0 {
			t.Fatalf("blkLen[%d] = %d for zeroed slot", i, p.blkLen[i])
		}
	}
	// Page-boundary cap: a page ending in straight-line ops must not run
	// past the last slot.
	var full []isa.Inst
	for i := 0; i < instPerPage; i++ {
		full = append(full, isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 1})
	}
	if f := g.Write(isa.PageSize, words(full...)); f != nil {
		t.Fatal(f)
	}
	ic.fill(g, 1)
	p1 := ic.pages[1]
	if p1.blkLen[0] != instPerPage || p1.blkLen[instPerPage-1] != 1 {
		t.Errorf("page-spanning run mislowered: blkLen[0]=%d blkLen[last]=%d",
			p1.blkLen[0], p1.blkLen[instPerPage-1])
	}
}
