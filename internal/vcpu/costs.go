// Package vcpu implements the GV64 interpreter: the simulated CPU core with
// cycle accounting, two privilege levels, interrupt delivery, and the VM-exit
// machinery the VMM (internal/core) builds on.
//
// A vCPU runs in one of two privilege regimes:
//
//   - Full (Deprivileged == false): privileged instructions execute directly
//     against the CSR file. This models native hardware and hardware-assisted
//     virtualization (where the CPU holds a complete guest state and only
//     hypercalls/MMIO/nested faults exit).
//   - Deprivileged (Deprivileged == true): every privileged instruction (CSR
//     access, SRET, SFENCE.VMA, WFI) suspends to the VMM, which emulates it
//     against the same CSR file. This models classic trap-and-emulate and
//     paravirtual execution, where the guest kernel runs without hardware
//     privilege.
//
// All simulated time is expressed in cycles at a nominal 1 GHz, so one cycle
// is one nanosecond of guest time.
package vcpu

// Costs is the cycle cost model. The relative magnitudes follow the
// virtualization literature for mid-2010s hardware: a VM exit/entry round
// trip costs on the order of a thousand cycles, an uncached memory reference
// tens of cycles, and register operations single cycles. EXPERIMENTS.md
// records which result shapes depend on which ratios.
type Costs struct {
	Instr      uint64 // base cost of any retired instruction
	MemAccess  uint64 // data memory reference (cache-less DRAM abstraction)
	PTRef      uint64 // one page-table entry reference during a walk
	TrapEntry  uint64 // architectural trap entry/return inside the guest
	ExitRound  uint64 // VM exit + re-entry world switch
	Hypercall  uint64 // paravirtual call dispatch on top of the exit
	Inject     uint64 // virtual interrupt/trap injection by the VMM
	Emulate    uint64 // instruction decode + emulation work in the VMM
	COWBreak   uint64 // host-side copy-on-write split
	DemandFill uint64 // host-side demand page allocation
}

// DefaultCosts returns the standard cost model.
func DefaultCosts() Costs {
	return Costs{
		Instr:      1,
		MemAccess:  10,
		PTRef:      10,
		TrapEntry:  40,
		ExitRound:  1200,
		Hypercall:  600,
		Inject:     300,
		Emulate:    400,
		COWBreak:   2000,
		DemandFill: 1500,
	}
}

// CyclesPerSecond converts simulated cycles to time: 1 GHz nominal clock.
const CyclesPerSecond = 1_000_000_000
