package vcpu

import (
	"math/rand"
	"testing"

	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/mmu"
)

// TestExecTableComplete pins the completeness contract of the threaded-
// dispatch table: every valid opcode resolves to an executor, and invalid or
// out-of-range opcodes (Decode passes any 6-bit value through) resolve to
// nil without panicking. FuzzDecode enforces the same property over the
// whole word space.
func TestExecTableComplete(t *testing.T) {
	if missing := execTable.Unresolved(func(f execFn) bool { return f == nil }); len(missing) > 0 {
		t.Fatalf("opcodes with no threaded executor: %v", missing)
	}
	for op := isa.Op(0); op < 64; op++ {
		if got := ExecutorResolved(op); got != op.Valid() {
			t.Errorf("ExecutorResolved(%v) = %v, want %v", op, got, op.Valid())
		}
	}
}

// newCPUPairTD builds two CPUs over identical images differing only in
// NoThreadedDispatch (icache on in both; superblock dispatch per noSB).
func newCPUPairTD(t *testing.T, img []byte, noSB bool, tweak func(*CPU)) (threaded, sw *CPU) {
	t.Helper()
	build := func(noTD bool) *CPU {
		g := mem.NewGuestPhys(mem.NewPool(ramPages*2), ramPages*isa.PageSize)
		if err := g.PopulateAll(); err != nil {
			t.Fatal(err)
		}
		if f := g.Write(0x1000, img); f != nil {
			t.Fatal(f)
		}
		c := New(g, mmu.NewContext(g, mmu.StyleDirect))
		c.Priv = PrivS
		c.PC = 0x1000
		c.ICache = NewICache()
		c.NoSuperblocks = noSB
		c.NoThreadedDispatch = noTD
		if tweak != nil {
			tweak(c)
		}
		return c
	}
	return build(false), build(true)
}

// TestThreadedDispatchQuantumSweep: quantum expiry must land on exactly the
// same instruction with threaded dispatch on or off, with superblocks both
// enabled and pinned off — the same sweep that protects the superblock
// horizon, re-aimed at the dispatch engine.
func TestThreadedDispatchQuantumSweep(t *testing.T) {
	img := straightLineImg(t, 100)
	for _, noSB := range []bool{false, true} {
		for budget := uint64(1); budget < 160; budget += 3 {
			threaded, sw := newCPUPairTD(t, img, noSB, nil)
			for {
				exT := threaded.Run(budget)
				exS := sw.Run(budget)
				if exT.Reason != exS.Reason {
					t.Fatalf("noSB=%v budget %d: exit diverged: threaded %v switch %v (pc %#x vs %#x)",
						noSB, budget, exT, exS, threaded.PC, sw.PC)
				}
				compareCPUs(t, "dispatch-quantum", threaded, sw)
				if t.Failed() {
					t.Fatalf("diverged at noSB=%v budget %d", noSB, budget)
				}
				if exT.Reason == ExitHalt {
					break
				}
			}
		}
	}
}

// TestThreadedDispatchSelfModifyingCode: the SMC bail must behave
// identically under both dispatch engines.
func TestThreadedDispatchSelfModifyingCode(t *testing.T) {
	threaded, sw := newCPUPairTD(t, smcProgram(), false, nil)
	exT, exS := threaded.Run(1_000_000), sw.Run(1_000_000)
	if exT.Reason != ExitHalt || exS.Reason != ExitHalt {
		t.Fatalf("exits: threaded %v switch %v", exT, exS)
	}
	if threaded.X[isa.RegA0] != 111 {
		t.Fatalf("threaded a0 = %d, want 111 (stale executor?)", threaded.X[isa.RegA0])
	}
	compareCPUs(t, "dispatch-smc", threaded, sw)
}

// TestDecodeResolvesExecutors guards the differential suites against
// vacuity: threaded dispatch is the default, so its plumbing must actually
// resolve an executor for every decoded slot — a regression that left fn nil
// would silently fall back to the switch and pass every equivalence test.
func TestDecodeResolvesExecutors(t *testing.T) {
	threaded, _ := newCPUPairTD(t, straightLineImg(t, 100), false, nil)
	if ex := threaded.Run(1_000_000); ex.Reason != ExitHalt {
		t.Fatalf("run ended %v", ex)
	}
	slots := 0
	for gfn, p := range threaded.ICache.pages {
		for i := 0; i < instPerPage; i++ {
			if p.valid[i>>6]&(1<<(i&63)) == 0 {
				continue
			}
			slots++
			if want := p.ins[i].Op.Valid(); (p.fn[i] != nil) != want {
				t.Fatalf("gfn %d slot %d (%s): fn resolved=%v, want %v",
					gfn, i, p.ins[i].Op, p.fn[i] != nil, want)
			}
		}
	}
	if slots == 0 {
		t.Fatal("no decoded slots found — icache never engaged")
	}
}

// knownCSRs biases the randomized CSR trials toward implemented registers.
var knownCSRs = []uint16{
	isa.CSRSstatus, isa.CSRSie, isa.CSRStvec, isa.CSRSscratch, isa.CSRSepc,
	isa.CSRScause, isa.CSRStval, isa.CSRSip, isa.CSRStimecmp, isa.CSRSatp,
	isa.CSRCycle, isa.CSRTime, isa.CSRInstret, isa.CSRVenv,
}

// TestThreadedExecutorsMatchSwitch is the per-opcode equivalence property:
// for every valid opcode, a randomized single-step through the threaded
// executor must leave the machine in exactly the state the dispatch switch
// produces — registers, PC, privilege, CSRs, cycles, instret, every
// statistic — and agree on whether (and with what) Run would exit. The
// status/Exit mapping is checked directly: done ⇔ stExit, with the same
// Exit value.
func TestThreadedExecutorsMatchSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const pages = 64
	build := func(seed int64) *CPU {
		r := rand.New(rand.NewSource(seed))
		g := mem.NewGuestPhys(mem.NewPool(pages*2), pages*isa.PageSize)
		if err := g.PopulateAll(); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, isa.PageSize)
		for gfn := uint64(0); gfn < 8; gfn++ {
			for i := range buf {
				buf[i] = byte(r.Intn(256))
			}
			g.WriteRaw(gfn, buf)
		}
		c := New(g, mmu.NewContext(g, mmu.StyleDirect))
		for i := 1; i < 32; i++ {
			switch r.Intn(3) {
			case 0: // in-RAM, aligned: loads/stores usually land
				c.X[i] = uint64(r.Intn(pages*isa.PageSize)) &^ 7
			case 1: // small values for shift/branch operands
				c.X[i] = uint64(r.Intn(256))
			default: // arbitrary 64-bit patterns (incl. out-of-RAM VAs)
				c.X[i] = r.Uint64()
			}
		}
		c.PC = 0x1000
		c.Priv = uint8(r.Intn(2))
		c.Deprivileged = r.Intn(2) == 0
		c.CSR.Sstatus = uint64(r.Intn(8)) // SIE/SPIE/SPP bits
		c.CSR.Stvec = 0x2000
		c.CSR.Sepc = 0x3000
		c.CSR.Sip = uint64(r.Intn(8))
		c.CSR.Sie = uint64(r.Intn(8))
		return c
	}
	for op := isa.OpIllegal + 1; int(op) < isa.NumOps; op++ {
		fn := execTable.For(op)
		if fn == nil {
			t.Fatalf("%v: no executor", op)
		}
		for trial := 0; trial < 24; trial++ {
			raw := rng.Uint32()&0x03FF_FFFF | uint32(op)<<26
			switch op {
			case isa.OpCSRRW, isa.OpCSRRS, isa.OpCSRRC:
				if trial%2 == 0 {
					raw = raw&^0xFFFF | uint32(knownCSRs[rng.Intn(len(knownCSRs))])
				}
			}
			in := isa.Decode(raw)
			seed := int64(op)<<32 | int64(trial)
			a, b := build(seed), build(seed)

			st := fn(a, in, raw)
			ex, done := b.execute(in, raw)

			if (st == stExit) != done {
				t.Fatalf("%v %+v: status %d vs done=%v", op, in, st, done)
			}
			if done && a.pendExit != ex {
				t.Fatalf("%v %+v: exit diverged: %+v vs %+v", op, in, a.pendExit, ex)
			}
			if a.X != b.X || a.PC != b.PC || a.Priv != b.Priv {
				t.Fatalf("%v %+v (raw %#x): register state diverged (pc %#x vs %#x, a0 %d vs %d)",
					op, in, raw, a.PC, b.PC, a.X[10], b.X[10])
			}
			if a.CSR != b.CSR {
				t.Fatalf("%v %+v: CSR state diverged: %+v vs %+v", op, in, a.CSR, b.CSR)
			}
			if a.Cycles != b.Cycles || a.Instret != b.Instret {
				t.Fatalf("%v %+v: time diverged: (cyc=%d ret=%d) vs (cyc=%d ret=%d)",
					op, in, a.Cycles, a.Instret, b.Cycles, b.Instret)
			}
			if a.Stats != b.Stats {
				t.Fatalf("%v %+v: exit stats diverged: %+v vs %+v", op, in, a.Stats, b.Stats)
			}
			if a.MMU.Stats != b.MMU.Stats || a.MMU.TLB.Stats != b.MMU.TLB.Stats {
				t.Fatalf("%v %+v: MMU/TLB stats diverged", op, in)
			}
		}
	}
}
