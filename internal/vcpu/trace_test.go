package vcpu

import (
	"fmt"
	"testing"

	"govisor/internal/asm"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/mmu"
)

// newCPUPairTrace builds two CPUs over identical images, both with the full
// chained-block engine, differing only in hot-trace promotion.
func newCPUPairTrace(t *testing.T, img []byte) (traced, plain *CPU) {
	t.Helper()
	traced, _ = newCPUPairSB(t, img, nil)
	plain, _ = newCPUPairSB(t, img, func(c *CPU) { c.NoTraces = true })
	return traced, plain
}

// runPairToHalt drives both arms to halt and asserts byte-identical state.
func runPairToHalt(t *testing.T, label string, traced, plain *CPU) {
	t.Helper()
	exT, exP := traced.Run(50_000_000), plain.Run(50_000_000)
	if exT.Reason != ExitHalt || exP.Reason != ExitHalt {
		t.Fatalf("%s: exits: traced %v plain %v (pc %#x vs %#x)", label, exT, exP, traced.PC, plain.PC)
	}
	compareCPUs(t, label, traced, plain)
	if t.Failed() {
		t.FailNow()
	}
}

// TestTraceFormationAndLoop: the boundary-straddling hot loop must promote
// to a closed-loop trace (one formation, one entry per iteration) and stay
// byte-identical to the NoTraces reference arm, which must never touch the
// trace machinery.
func TestTraceFormationAndLoop(t *testing.T) {
	img := chainLoopImg(t, 200)
	traced, plain := newCPUPairTrace(t, img)
	runPairToHalt(t, "trace-loop", traced, plain)
	st := traced.ICache.Stats
	if st.TraceFormations == 0 || st.TraceEntries < 100 {
		t.Fatalf("trace engine idle on a hot loop: %+v", st)
	}
	if pst := plain.ICache.Stats; pst.TraceFormations != 0 || pst.TraceEntries != 0 ||
		pst.TraceDemotions != 0 || pst.TraceInvalidations != 0 {
		t.Fatalf("reference arm used the trace engine: %+v", pst)
	}
}

// TestTraceQuantumFallback: quantum expiry must land on exactly the same
// instruction with traces on or off. The whole-span admission refuses a pass
// whose worst case could cross the deadline, the per-iteration re-admission
// refuses further passes, and a budget sweep lands the deadline on every
// boundary in and around would-be traces.
func TestTraceQuantumFallback(t *testing.T) {
	img := chainLoopImg(t, 60)
	var entries uint64
	for budget := uint64(97); budget < 4000; budget += 449 {
		traced, plain := newCPUPairTrace(t, img)
		for {
			exT := traced.Run(budget)
			exP := plain.Run(budget)
			if exT.Reason != exP.Reason {
				t.Fatalf("budget %d: exit diverged: traced %v plain %v (pc %#x vs %#x)",
					budget, exT, exP, traced.PC, plain.PC)
			}
			compareCPUs(t, "trace-quantum", traced, plain)
			if t.Failed() {
				t.Fatalf("diverged at budget %d", budget)
			}
			if exT.Reason == ExitHalt {
				break
			}
		}
		entries += traced.ICache.Stats.TraceEntries
	}
	if entries == 0 {
		t.Fatal("no budget in the sweep admitted a single trace pass")
	}
}

// TestTraceStimecmpExact: the timer latch must flip at exactly the same
// instruction with traces on or off — the trace admission refuses any pass
// whose worst-case span could cross an unlatched STIMECMP. Swept so the
// latch point lands before, inside and after the hot loop's trace passes.
func TestTraceStimecmpExact(t *testing.T) {
	img := chainLoopImg(t, 60)
	for cmp := uint64(50); cmp < 6000; cmp += 377 {
		traced, plain := newCPUPairTrace(t, img)
		traced.CSR.Stimecmp, plain.CSR.Stimecmp = cmp, cmp
		runPairToHalt(t, "trace-stimecmp", traced, plain)
		if traced.CSR.Sip != plain.CSR.Sip {
			t.Fatalf("cmp %d: Sip diverged: %#x vs %#x", cmp, traced.CSR.Sip, plain.CSR.Sip)
		}
	}
}

// traceTortureImg builds the straddling loop with a mid-loop branch that
// patches an instruction in the trace's second constituent page at iteration
// patchAt (SMC into a mid-trace page), and optionally an SFENCE.VMA every
// 16th iteration (TLB generation churn between formation and entry).
func traceTortureImg(t *testing.T, iters, patchAt uint64, sfence bool) []byte {
	t.Helper()
	b := asm.NewBuilder(0x1000)
	b.Li(isa.RegS0, iters)
	for b.PC() < 0x1FF0 {
		b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1)
	}
	b.Label("loop")
	for b.PC() < 0x2020 {
		b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1)
	}
	if patchAt != 0 {
		// if s0 == patchAt: overwrite the ADDI at 0x2010 with "addi a0, a0, 3"
		b.Li(isa.RegT0, patchAt)
		b.Branch(isa.OpBNE, isa.RegS0, isa.RegT0, "nopatch")
		b.Li(isa.RegT1, uint64(isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 3})))
		b.Li(isa.RegT2, 0x2010)
		b.Store(isa.OpSW, isa.RegT1, isa.RegT2, 0)
		b.Label("nopatch")
	}
	if sfence {
		// if s0 % 16 == 0: SFENCE.VMA — lands between trace formation
		// (heat saturates in 8 clean iterations) and later entries.
		b.Li(isa.RegT3, 16)
		b.R(isa.OpREMU, isa.RegT4, isa.RegS0, isa.RegT3)
		b.Branch(isa.OpBNE, isa.RegT4, isa.RegZero, "nofence")
		b.SfenceVMA(isa.RegZero, isa.RegZero)
		b.Label("nofence")
	}
	b.I(isa.OpADDI, isa.RegS0, isa.RegS0, -1)
	b.Branch(isa.OpBNE, isa.RegS0, isa.RegZero, "loop")
	b.Halt(0)
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestTraceSMCMidTraceConstituent: a store into a mid-trace constituent page
// (the successor page of the crossing) must demote the trace on the exact
// instruction where the block path notices, and both arms must stay
// byte-identical through the patch, the refill and the re-formation.
func TestTraceSMCMidTraceConstituent(t *testing.T) {
	img := traceTortureImg(t, 50, 25, false)
	traced, plain := newCPUPairTrace(t, img)
	runPairToHalt(t, "trace-smc", traced, plain)
	st := traced.ICache.Stats
	if st.TraceEntries == 0 {
		t.Fatalf("trace never entered before the patch: %+v", st)
	}
	if st.TraceDemotions == 0 {
		t.Fatalf("SMC into a constituent page never demoted: %+v", st)
	}
}

// TestTraceSfenceBetweenFormationAndEntry: SFENCE.VMA between formation and
// the next entry bumps the TLB generation, so every translation snapshot the
// trace depends on goes stale at once. Entry admission must refuse the pass
// (a demotion per fence) and fall back to the block path, which re-proves
// the links; once their snapshots are fresh the same trace re-admits — all
// byte-identical to the reference arm.
func TestTraceSfenceBetweenFormationAndEntry(t *testing.T) {
	img := traceTortureImg(t, 96, 0, true)
	traced, plain := newCPUPairTrace(t, img)
	runPairToHalt(t, "trace-sfence", traced, plain)
	st := traced.ICache.Stats
	if st.TraceDemotions == 0 {
		t.Fatalf("SFENCE churn never demoted a pass: %+v", st)
	}
	if st.TraceEntries == 0 {
		t.Fatalf("trace never entered between fences: %+v", st)
	}
	if st.TraceEntries < st.TraceDemotions {
		t.Fatalf("trace never recovered between fences: %+v", st)
	}
}

// TestTraceRemapFlushExact: the invalidation the page-version check cannot
// see — a leaf PTE is retargeted to a different frame whose code differs
// while the old frame's content (and so its version) never changes. The
// trace's snapshots still name the old frame; only the TLB-generation check
// stands between the traced arm and silently executing stale code. Both
// arms must observe the new frame at exactly the remap iteration.
func TestTraceRemapFlushExact(t *testing.T) {
	const (
		targetVA = uint64(0x200000)
		frame1   = uint64(80)
		frame2   = uint64(81)
		iters    = uint64(64)
		remapAt  = uint64(32)
	)
	build := func(noTraces bool) *CPU {
		g := mem.NewGuestPhys(mem.NewPool(ramPages*2), ramPages*isa.PageSize)
		if err := g.PopulateAll(); err != nil {
			t.Fatal(err)
		}
		tb, err := mmu.NewTableBuilder(g, 128, 32)
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.IdentityMap(160*isa.PageSize, isa.PTERead|isa.PTEWrite|isa.PTEExec); err != nil {
			t.Fatal(err)
		}
		if err := tb.Map(targetVA, frame1<<isa.PageShift, isa.PTERead|isa.PTEExec); err != nil {
			t.Fatal(err)
		}
		l0, err := tb.EnsureL0(targetVA)
		if err != nil {
			t.Fatal(err)
		}
		pteAddr := l0<<isa.PageShift + isa.VPN(targetVA, 0)*8
		newPTE := isa.MakePTE(frame2, isa.PTERead|isa.PTEExec|isa.PTEValid|isa.PTEAcc|isa.PTEDirty)

		// Both frames: bump a1 (frame 2 by 2, so staleness is visible), then
		// jump back to the loop.
		for _, fr := range []struct {
			ppn uint64
			inc int64
		}{{frame1, 1}, {frame2, 2}} {
			fb := asm.NewBuilder(targetVA)
			fb.I(isa.OpADDI, isa.RegA1, isa.RegA1, fr.inc)
			fb.I(isa.OpADDI, isa.RegA2, isa.RegA2, 1)
			fb.Jalr(isa.RegZero, isa.RegS3, 0)
			fimg, err := fb.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if f := g.Write(fr.ppn<<isa.PageShift, fimg); f != nil {
				t.Fatal(f)
			}
		}

		b := asm.NewBuilder(0x1000)
		b.Li(isa.RegT0, isa.MakeSatp(isa.SatpModePaged, 1, tb.RootPPN))
		b.Csrw(isa.CSRSatp, isa.RegT0)
		b.SfenceVMA(isa.RegZero, isa.RegZero)
		b.La(isa.RegS3, "loopret")
		b.Li(isa.RegS4, targetVA)
		b.Li(isa.RegS5, pteAddr)
		b.Li(isa.RegS6, newPTE)
		b.Li(isa.RegS0, iters)
		b.Li(isa.RegS2, 0)
		b.Li(isa.RegT5, remapAt)
		b.Label("top")
		// Two straight instructions so the loop head is a traceable block,
		// then into the remapped page (a trace constituent).
		b.I(isa.OpADDI, isa.RegA3, isa.RegA3, 1)
		b.I(isa.OpADDI, isa.RegA4, isa.RegA4, 1)
		b.Jalr(isa.RegZero, isa.RegS4, 0)
		b.Label("loopret")
		b.Branch(isa.OpBNE, isa.RegS2, isa.RegT5, "no_remap")
		b.Store(isa.OpSD, isa.RegS6, isa.RegS5, 0)
		b.SfenceVMA(isa.RegZero, isa.RegZero)
		b.Label("no_remap")
		b.I(isa.OpADDI, isa.RegS2, isa.RegS2, 1)
		b.I(isa.OpADDI, isa.RegS0, isa.RegS0, -1)
		b.Branch(isa.OpBNE, isa.RegS0, isa.RegZero, "top")
		b.Halt(0)
		img, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if f := g.Write(0x1000, img); f != nil {
			t.Fatal(f)
		}

		c := New(g, mmu.NewContext(g, mmu.StyleDirect))
		c.Priv = PrivS
		c.PC = 0x1000
		c.ICache = NewICache()
		c.NoTraces = noTraces
		return c
	}

	traced, plain := build(false), build(true)
	runPairToHalt(t, "trace-remap", traced, plain)
	want := (remapAt + 1) + (iters-remapAt-1)*2
	if traced.X[isa.RegA1] != want || plain.X[isa.RegA1] != want {
		t.Errorf("a1: traced=%d plain=%d want %d (stale frame executed?)",
			traced.X[isa.RegA1], plain.X[isa.RegA1], want)
	}
	if st := traced.ICache.Stats; st.TraceEntries == 0 {
		t.Errorf("traced arm never entered a trace: %+v", st)
	}
}

// TestTraceStoreEviction: more hot loops than the trace store holds. Each
// tiny loop runs hot enough to form its own trace; past maxTraces the store
// must evict deterministically, keep every arm byte-identical, and keep
// admitting the still-hot newcomers.
func TestTraceStoreEviction(t *testing.T) {
	const loops = maxTraces + 6
	b := asm.NewBuilder(0x1000)
	for i := 0; i < loops; i++ {
		lbl := fmt.Sprintf("loop%d", i)
		b.Li(isa.RegT0, 16)
		b.Label(lbl)
		b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1)
		b.I(isa.OpADDI, isa.RegA1, isa.RegA1, 1)
		b.I(isa.OpADDI, isa.RegT0, isa.RegT0, -1)
		b.Branch(isa.OpBNE, isa.RegT0, isa.RegZero, lbl)
	}
	b.Halt(0)
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	traced, plain := newCPUPairTrace(t, img)
	runPairToHalt(t, "trace-evict", traced, plain)
	st := traced.ICache.Stats
	if st.TraceFormations < loops {
		t.Fatalf("expected ≥%d formations, got %+v", loops, st)
	}
	if st.TraceInvalidations < loops-maxTraces {
		t.Fatalf("expected ≥%d store evictions, got %+v", loops-maxTraces, st)
	}
	if len(traced.ICache.traces) > maxTraces {
		t.Fatalf("trace store over bound: %d", len(traced.ICache.traces))
	}
}
