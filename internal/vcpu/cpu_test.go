package vcpu

import (
	"testing"
	"testing/quick"

	"govisor/internal/asm"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/mmu"
)

const ramPages = 256

// newCPU builds a CPU over fresh RAM with the program loaded at org.
func newCPU(t *testing.T, img []byte, org uint64) *CPU {
	t.Helper()
	g := mem.NewGuestPhys(mem.NewPool(ramPages*2), ramPages*isa.PageSize)
	if err := g.PopulateAll(); err != nil {
		t.Fatal(err)
	}
	if f := g.Write(org, img); f != nil {
		t.Fatal(f)
	}
	c := New(g, mmu.NewContext(g, mmu.StyleDirect))
	c.Priv = PrivS
	c.PC = org
	return c
}

// buildRun assembles source with builder fn, runs to completion, returns CPU.
func buildRun(t *testing.T, build func(b *asm.Builder)) *CPU {
	t.Helper()
	b := asm.NewBuilder(0x1000)
	build(b)
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	c := newCPU(t, img, 0x1000)
	ex := c.Run(1_000_000)
	if ex.Reason != ExitHalt {
		t.Fatalf("exit = %v (pc=%#x)", ex, c.PC)
	}
	return c
}

func TestArithmeticBasics(t *testing.T) {
	c := buildRun(t, func(b *asm.Builder) {
		b.Li(isa.RegA0, 20)
		b.Li(isa.RegA1, 22)
		b.R(isa.OpADD, isa.RegA2, isa.RegA0, isa.RegA1) // 42
		b.R(isa.OpSUB, isa.RegA3, isa.RegA0, isa.RegA1) // -2
		b.R(isa.OpMUL, isa.RegA4, isa.RegA0, isa.RegA1) // 440
		b.Halt(0)
	})
	if c.X[isa.RegA2] != 42 {
		t.Errorf("add = %d", c.X[isa.RegA2])
	}
	if int64(c.X[isa.RegA3]) != -2 {
		t.Errorf("sub = %d", int64(c.X[isa.RegA3]))
	}
	if c.X[isa.RegA4] != 440 {
		t.Errorf("mul = %d", c.X[isa.RegA4])
	}
}

func TestX0AlwaysZero(t *testing.T) {
	c := buildRun(t, func(b *asm.Builder) {
		b.I(isa.OpADDI, isa.RegZero, isa.RegZero, 99)
		b.Mv(isa.RegA0, isa.RegZero)
		b.Halt(0)
	})
	if c.X[isa.RegA0] != 0 {
		t.Fatalf("x0 = %d", c.X[isa.RegA0])
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	c := buildRun(t, func(b *asm.Builder) {
		b.Li(isa.RegA0, 7)
		b.Li(isa.RegA1, 0)
		b.R(isa.OpDIV, isa.RegA2, isa.RegA0, isa.RegA1)  // 7/0 = -1
		b.R(isa.OpREM, isa.RegA3, isa.RegA0, isa.RegA1)  // 7%0 = 7
		b.R(isa.OpDIVU, isa.RegA4, isa.RegA0, isa.RegA1) // all ones
		b.Li(isa.RegA5, 1<<63)
		b.Li(isa.RegA6, ^uint64(0))                     // -1
		b.R(isa.OpDIV, isa.RegA7, isa.RegA5, isa.RegA6) // overflow → MinInt
		b.R(isa.OpREM, isa.RegT0, isa.RegA5, isa.RegA6) // overflow → 0
		b.Halt(0)
	})
	if int64(c.X[isa.RegA2]) != -1 {
		t.Errorf("div by zero = %d", int64(c.X[isa.RegA2]))
	}
	if c.X[isa.RegA3] != 7 {
		t.Errorf("rem by zero = %d", c.X[isa.RegA3])
	}
	if c.X[isa.RegA4] != ^uint64(0) {
		t.Errorf("divu by zero = %#x", c.X[isa.RegA4])
	}
	if c.X[isa.RegA7] != 1<<63 {
		t.Errorf("overflow div = %#x", c.X[isa.RegA7])
	}
	if c.X[isa.RegT0] != 0 {
		t.Errorf("overflow rem = %d", c.X[isa.RegT0])
	}
}

func TestShiftsAndComparisons(t *testing.T) {
	c := buildRun(t, func(b *asm.Builder) {
		b.Li(isa.RegA0, ^uint64(0)) // -1
		b.I(isa.OpSRAI, isa.RegA1, isa.RegA0, 16)
		b.I(isa.OpSRLI, isa.RegA2, isa.RegA0, 60)
		b.Li(isa.RegT0, 5)
		b.Li(isa.RegT1, ^uint64(2))                      // -3
		b.R(isa.OpSLT, isa.RegA3, isa.RegT1, isa.RegT0)  // -3 < 5 → 1
		b.R(isa.OpSLTU, isa.RegA4, isa.RegT1, isa.RegT0) // huge > 5 → 0
		b.Halt(0)
	})
	if c.X[isa.RegA1] != ^uint64(0) {
		t.Errorf("srai = %#x", c.X[isa.RegA1])
	}
	if c.X[isa.RegA2] != 0xF {
		t.Errorf("srli = %#x", c.X[isa.RegA2])
	}
	if c.X[isa.RegA3] != 1 || c.X[isa.RegA4] != 0 {
		t.Errorf("slt=%d sltu=%d", c.X[isa.RegA3], c.X[isa.RegA4])
	}
}

func TestLoadsStoresAllWidths(t *testing.T) {
	c := buildRun(t, func(b *asm.Builder) {
		b.Li(isa.RegS0, 0x8000) // scratch area
		b.Li(isa.RegA0, 0xFFEEDDCCBBAA9988)
		b.Store(isa.OpSD, isa.RegA0, isa.RegS0, 0)
		b.Load(isa.OpLD, isa.RegA1, isa.RegS0, 0)
		b.Load(isa.OpLW, isa.RegA2, isa.RegS0, 0)  // sign-extended 0xBBAA9988
		b.Load(isa.OpLWU, isa.RegA3, isa.RegS0, 0) // zero-extended
		b.Load(isa.OpLH, isa.RegA4, isa.RegS0, 0)  // 0x9988 sign-extended
		b.Load(isa.OpLHU, isa.RegA5, isa.RegS0, 0)
		b.Load(isa.OpLB, isa.RegA6, isa.RegS0, 0) // 0x88 sign-extended
		b.Load(isa.OpLBU, isa.RegA7, isa.RegS0, 0)
		b.Halt(0)
	})
	if c.X[isa.RegA1] != 0xFFEEDDCCBBAA9988 {
		t.Errorf("ld = %#x", c.X[isa.RegA1])
	}
	if c.X[isa.RegA2] != 0xFFFFFFFFBBAA9988 {
		t.Errorf("lw = %#x", c.X[isa.RegA2])
	}
	if c.X[isa.RegA3] != 0xBBAA9988 {
		t.Errorf("lwu = %#x", c.X[isa.RegA3])
	}
	if c.X[isa.RegA4] != 0xFFFFFFFFFFFF9988 {
		t.Errorf("lh = %#x", c.X[isa.RegA4])
	}
	if c.X[isa.RegA5] != 0x9988 {
		t.Errorf("lhu = %#x", c.X[isa.RegA5])
	}
	if c.X[isa.RegA6] != 0xFFFFFFFFFFFFFF88 {
		t.Errorf("lb = %#x", c.X[isa.RegA6])
	}
	if c.X[isa.RegA7] != 0x88 {
		t.Errorf("lbu = %#x", c.X[isa.RegA7])
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..100 with a loop.
	c := buildRun(t, func(b *asm.Builder) {
		b.Li(isa.RegA0, 0)   // sum
		b.Li(isa.RegT0, 1)   // i
		b.Li(isa.RegT1, 100) // limit
		b.Label("loop")
		b.R(isa.OpADD, isa.RegA0, isa.RegA0, isa.RegT0)
		b.I(isa.OpADDI, isa.RegT0, isa.RegT0, 1)
		b.Branch(isa.OpBGE, isa.RegT1, isa.RegT0, "loop")
		b.Halt(0)
	})
	if c.X[isa.RegA0] != 5050 {
		t.Fatalf("sum = %d", c.X[isa.RegA0])
	}
}

func TestCallRet(t *testing.T) {
	c := buildRun(t, func(b *asm.Builder) {
		b.Li(isa.RegSP, 0x9000)
		b.Li(isa.RegA0, 5)
		b.Call("double")
		b.Call("double")
		b.Halt(0)
		b.Label("double")
		b.R(isa.OpADD, isa.RegA0, isa.RegA0, isa.RegA0)
		b.Ret()
	})
	if c.X[isa.RegA0] != 20 {
		t.Fatalf("a0 = %d", c.X[isa.RegA0])
	}
}

func TestCSRReadWrite(t *testing.T) {
	c := buildRun(t, func(b *asm.Builder) {
		b.Li(isa.RegA0, 0x7777)
		b.Csrw(isa.CSRSscratch, isa.RegA0)
		b.Csrr(isa.RegA1, isa.CSRSscratch)
		b.Csrr(isa.RegA2, isa.CSRVenv)
		b.Csrr(isa.RegA3, isa.CSRCycle)
		b.Halt(0)
	})
	if c.X[isa.RegA1] != 0x7777 {
		t.Errorf("sscratch = %#x", c.X[isa.RegA1])
	}
	if c.X[isa.RegA2] != isa.VEnvNative {
		t.Errorf("venv = %d", c.X[isa.RegA2])
	}
	if c.X[isa.RegA3] == 0 {
		t.Error("cycle counter should be nonzero")
	}
}

func TestTrapAndSretRoundTrip(t *testing.T) {
	// Install a trap handler, take an illegal-instruction trap, return.
	c := buildRun(t, func(b *asm.Builder) {
		b.La(isa.RegT0, "handler")
		b.Csrw(isa.CSRStvec, isa.RegT0)
		b.Raw(0) // illegal instruction → trap
		b.Label("resume")
		b.Li(isa.RegA1, 77)
		b.Halt(0)
		b.Align(4)
		b.Label("handler")
		b.Csrr(isa.RegA0, isa.CSRScause)
		b.La(isa.RegT1, "resume")
		b.Csrw(isa.CSRSepc, isa.RegT1)
		b.Sret()
	})
	if c.X[isa.RegA0] != isa.CauseIllegal {
		t.Errorf("scause = %d", c.X[isa.RegA0])
	}
	if c.X[isa.RegA1] != 77 {
		t.Errorf("resume path not taken: a1 = %d", c.X[isa.RegA1])
	}
	if c.Stats.Traps != 1 {
		t.Errorf("traps = %d", c.Stats.Traps)
	}
}

func TestUserModeEcallNative(t *testing.T) {
	// Kernel drops to U-mode; user code ecalls; kernel handler gets EcallU
	// and halts. No VMM exits should occur for the syscall itself.
	c := buildRun(t, func(b *asm.Builder) {
		b.La(isa.RegT0, "handler")
		b.Csrw(isa.CSRStvec, isa.RegT0)
		// sstatus.SPP = 0 (U), sepc = user entry; sret drops privilege.
		b.La(isa.RegT1, "user")
		b.Csrw(isa.CSRSepc, isa.RegT1)
		b.Li(isa.RegT2, 0)
		b.Csrw(isa.CSRSstatus, isa.RegT2)
		b.Sret()
		b.Label("user")
		b.Li(isa.RegA0, 123)
		b.Ecall()
		b.Label("spin") // unreachable
		b.J("spin")
		b.Align(4)
		b.Label("handler")
		b.Csrr(isa.RegA1, isa.CSRScause)
		b.Halt(0)
	})
	if c.X[isa.RegA1] != isa.CauseEcallU {
		t.Errorf("cause = %d", c.X[isa.RegA1])
	}
	if c.X[isa.RegA0] != 123 {
		t.Errorf("a0 = %d", c.X[isa.RegA0])
	}
	if c.Stats.Exits[ExitEcall] != 0 {
		t.Error("native U-mode ecall must not exit to the VMM")
	}
}

func TestUserModeCannotTouchCSRs(t *testing.T) {
	c := buildRun(t, func(b *asm.Builder) {
		b.La(isa.RegT0, "handler")
		b.Csrw(isa.CSRStvec, isa.RegT0)
		b.La(isa.RegT1, "user")
		b.Csrw(isa.CSRSepc, isa.RegT1)
		b.Sret() // to U
		b.Label("user")
		b.Csrr(isa.RegA0, isa.CSRSatp) // privileged → illegal
		b.J("user")
		b.Align(4)
		b.Label("handler")
		b.Csrr(isa.RegA1, isa.CSRScause)
		b.Halt(0)
	})
	if c.X[isa.RegA1] != isa.CauseIllegal {
		t.Errorf("cause = %d", c.X[isa.RegA1])
	}
}

func TestUserCSRsReadableFromU(t *testing.T) {
	c := buildRun(t, func(b *asm.Builder) {
		b.La(isa.RegT0, "handler")
		b.Csrw(isa.CSRStvec, isa.RegT0)
		b.La(isa.RegT1, "user")
		b.Csrw(isa.CSRSepc, isa.RegT1)
		b.Sret()
		b.Label("user")
		b.Csrr(isa.RegA0, isa.CSRCycle) // unprivileged counter
		b.Ecall()
		b.Align(4)
		b.Label("handler")
		b.Halt(0)
	})
	if c.X[isa.RegA0] == 0 {
		t.Error("cycle read from U returned 0")
	}
}

func TestMisalignedAccessTraps(t *testing.T) {
	c := buildRun(t, func(b *asm.Builder) {
		b.La(isa.RegT0, "handler")
		b.Csrw(isa.CSRStvec, isa.RegT0)
		b.Li(isa.RegS0, 0x8001)
		b.Load(isa.OpLD, isa.RegA0, isa.RegS0, 0) // misaligned
		b.Label("spin")
		b.J("spin")
		b.Align(4)
		b.Label("handler")
		b.Csrr(isa.RegA1, isa.CSRScause)
		b.Csrr(isa.RegA2, isa.CSRStval)
		b.Halt(0)
	})
	if c.X[isa.RegA1] != isa.CauseLoadMisaligned {
		t.Errorf("cause = %d", c.X[isa.RegA1])
	}
	if c.X[isa.RegA2] != 0x8001 {
		t.Errorf("stval = %#x", c.X[isa.RegA2])
	}
}

func TestEcallFromSExits(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.Li(isa.RegA7, 42)
	b.Ecall()
	b.Halt(9)
	img, _ := b.Finish()
	c := newCPU(t, img, 0x1000)
	ex := c.Run(10_000)
	if ex.Reason != ExitEcall || ex.From != PrivS {
		t.Fatalf("exit = %v", ex)
	}
	if c.X[isa.RegA7] != 42 {
		t.Fatalf("a7 = %d", c.X[isa.RegA7])
	}
	// VMM handles, then resumes past the ecall.
	c.PC += 4
	ex = c.Run(10_000)
	if ex.Reason != ExitHalt || ex.Code != 9 {
		t.Fatalf("resume exit = %v", ex)
	}
}

func TestQuantumExpiry(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.Label("spin")
	b.J("spin")
	img, _ := b.Finish()
	c := newCPU(t, img, 0x1000)
	ex := c.Run(1000)
	if ex.Reason != ExitQuantum {
		t.Fatalf("exit = %v", ex)
	}
	if c.Cycles < 1000 {
		t.Fatalf("cycles = %d", c.Cycles)
	}
	// Resumable.
	ex = c.Run(1000)
	if ex.Reason != ExitQuantum {
		t.Fatalf("second run = %v", ex)
	}
}

func TestTimerInterruptDirectDelivery(t *testing.T) {
	c := buildRun(t, func(b *asm.Builder) {
		b.La(isa.RegT0, "handler")
		b.Csrw(isa.CSRStvec, isa.RegT0)
		// Enable timer interrupts.
		b.Li(isa.RegT1, 1<<isa.IntTimer)
		b.Csrw(isa.CSRSie, isa.RegT1)
		b.Li(isa.RegT2, isa.StatusSIE)
		b.Csrw(isa.CSRSstatus, isa.RegT2)
		// Arm the timer 500 cycles out.
		b.Csrr(isa.RegT3, isa.CSRCycle)
		b.I(isa.OpADDI, isa.RegT3, isa.RegT3, 500)
		b.Csrw(isa.CSRStimecmp, isa.RegT3)
		b.Label("spin")
		b.J("spin")
		b.Align(4)
		b.Label("handler")
		b.Csrr(isa.RegA0, isa.CSRScause)
		b.Halt(0)
	})
	want := isa.CauseInterrupt | isa.IntTimer
	if c.X[isa.RegA0] != want {
		t.Fatalf("cause = %#x want %#x", c.X[isa.RegA0], want)
	}
	if c.Stats.Interrupts != 1 {
		t.Fatalf("interrupts = %d", c.Stats.Interrupts)
	}
}

func TestWFIWaitsForInterrupt(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.La(isa.RegT0, "handler")
	b.Csrw(isa.CSRStvec, isa.RegT0)
	b.Li(isa.RegT1, 1<<isa.IntExt)
	b.Csrw(isa.CSRSie, isa.RegT1)
	b.Li(isa.RegT2, isa.StatusSIE)
	b.Csrw(isa.CSRSstatus, isa.RegT2)
	b.Wfi()
	b.Label("spin")
	b.J("spin")
	b.Align(4)
	b.Label("handler")
	b.Halt(0)
	img, _ := b.Finish()
	c := newCPU(t, img, 0x1000)
	ex := c.Run(100_000)
	if ex.Reason != ExitWFI {
		t.Fatalf("exit = %v", ex)
	}
	// Device raises the external line; VMM resumes.
	c.RaiseIRQ(isa.IntExt)
	ex = c.Run(100_000)
	if ex.Reason != ExitHalt {
		t.Fatalf("after irq: %v", ex)
	}
}

func TestDeprivilegedCSRExits(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.Li(isa.RegA0, 0xAB)
	b.Csrw(isa.CSRSscratch, isa.RegA0)
	b.Halt(3)
	img, _ := b.Finish()
	c := newCPU(t, img, 0x1000)
	c.Deprivileged = true
	c.Venv = isa.VEnvTrap

	ex := c.Run(100_000)
	if ex.Reason != ExitPriv {
		t.Fatalf("exit = %v", ex)
	}
	if ex.Inst.Op != isa.OpCSRRW {
		t.Fatalf("inst = %v", ex.Inst)
	}
	// VMM emulates and resumes.
	if err := c.EmulatePrivileged(ex.Inst); err != nil {
		t.Fatal(err)
	}
	if c.CSR.Sscratch != 0xAB {
		t.Fatalf("sscratch = %#x", c.CSR.Sscratch)
	}
	ex = c.Run(100_000)
	if ex.Reason != ExitHalt || ex.Code != 3 {
		t.Fatalf("resume = %v", ex)
	}
}

func TestDeprivilegedGuestTrapExits(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.Raw(0) // illegal
	img, _ := b.Finish()
	c := newCPU(t, img, 0x1000)
	c.Deprivileged = true
	ex := c.Run(10_000)
	if ex.Reason != ExitGuestTrap || ex.Cause != isa.CauseIllegal {
		t.Fatalf("exit = %v", ex)
	}
}

func TestDeprivilegedInterruptWindow(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.Label("spin")
	b.J("spin")
	img, _ := b.Finish()
	c := newCPU(t, img, 0x1000)
	c.Deprivileged = true
	c.CSR.Sie = 1 << isa.IntTimer
	c.CSR.Sstatus = isa.StatusSIE
	c.RaiseIRQ(isa.IntTimer)
	ex := c.Run(10_000)
	if ex.Reason != ExitIntrWindow {
		t.Fatalf("exit = %v", ex)
	}
}

func TestMMIOExitRoundTrip(t *testing.T) {
	const mmioBase = 0x4000_0000
	b := asm.NewBuilder(0x1000)
	b.Li(isa.RegS0, mmioBase)
	b.Li(isa.RegA0, 0x55)
	b.Store(isa.OpSW, isa.RegA0, isa.RegS0, 0) // device write
	b.Load(isa.OpLW, isa.RegA1, isa.RegS0, 4)  // device read
	b.Halt(0)
	img, _ := b.Finish()
	c := newCPU(t, img, 0x1000)
	c.IsMMIO = func(gpa uint64) bool { return gpa >= mmioBase && gpa < mmioBase+0x1000 }

	ex := c.Run(100_000)
	if ex.Reason != ExitMMIO || !ex.MMIO.Write || ex.MMIO.GPA != mmioBase || ex.MMIO.Value != 0x55 {
		t.Fatalf("write exit = %v", ex)
	}
	ex = c.Run(100_000)
	if ex.Reason != ExitMMIO || ex.MMIO.Write || ex.MMIO.GPA != mmioBase+4 {
		t.Fatalf("read exit = %v", ex)
	}
	c.FinishMMIORead(ex.MMIO, 0xFFFFFFFF)
	ex = c.Run(100_000)
	if ex.Reason != ExitHalt {
		t.Fatalf("final = %v", ex)
	}
	// LW sign-extends.
	if c.X[isa.RegA1] != ^uint64(0) {
		t.Fatalf("a1 = %#x", c.X[isa.RegA1])
	}
}

func TestCycleAccountingMonotonic(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	for i := 0; i < 10; i++ {
		b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1)
	}
	b.Halt(0)
	img, _ := b.Finish()
	c := newCPU(t, img, 0x1000)
	ex := c.Run(1_000_000)
	if ex.Reason != ExitHalt {
		t.Fatal(ex)
	}
	if c.Instret != 11 {
		t.Fatalf("instret = %d", c.Instret)
	}
	if c.Cycles < 11 {
		t.Fatalf("cycles = %d", c.Cycles)
	}
}

func TestStoreCostsMoreThanALU(t *testing.T) {
	run := func(build func(b *asm.Builder)) uint64 {
		b := asm.NewBuilder(0x1000)
		build(b)
		b.Halt(0)
		img, _ := b.Finish()
		c := newCPU(t, img, 0x1000)
		if ex := c.Run(1_000_000); ex.Reason != ExitHalt {
			t.Fatal(ex)
		}
		return c.Cycles
	}
	alu := run(func(b *asm.Builder) { b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1) })
	st := run(func(b *asm.Builder) {
		b.Li(isa.RegS0, 0x8000)
		b.Store(isa.OpSD, isa.RegZero, isa.RegS0, 0)
	})
	if st <= alu {
		t.Fatalf("store cycles %d should exceed alu cycles %d", st, alu)
	}
}

// Property test: ALU ops match Go semantics for random operands.
func TestALUSemanticsProperty(t *testing.T) {
	type alu struct {
		op   isa.Op
		eval func(a, b uint64) uint64
	}
	ops := []alu{
		{isa.OpADD, func(a, b uint64) uint64 { return a + b }},
		{isa.OpSUB, func(a, b uint64) uint64 { return a - b }},
		{isa.OpAND, func(a, b uint64) uint64 { return a & b }},
		{isa.OpOR, func(a, b uint64) uint64 { return a | b }},
		{isa.OpXOR, func(a, b uint64) uint64 { return a ^ b }},
		{isa.OpSLL, func(a, b uint64) uint64 { return a << (b & 63) }},
		{isa.OpSRL, func(a, b uint64) uint64 { return a >> (b & 63) }},
		{isa.OpSRA, func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) }},
		{isa.OpMUL, func(a, b uint64) uint64 { return a * b }},
	}
	f := func(a, b uint64, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		bld := asm.NewBuilder(0x1000)
		bld.Li(isa.RegA0, a)
		bld.Li(isa.RegA1, b)
		bld.R(op.op, isa.RegA2, isa.RegA0, isa.RegA1)
		bld.Halt(0)
		img, err := bld.Finish()
		if err != nil {
			return false
		}
		c := newCPU(t, img, 0x1000)
		if ex := c.Run(1_000_000); ex.Reason != ExitHalt {
			return false
		}
		return c.X[isa.RegA2] == op.eval(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPagedExecution(t *testing.T) {
	// The kernel builds identity tables (via the Go-side builder, standing in
	// for boot code), enables SATP, and keeps executing.
	g := mem.NewGuestPhys(mem.NewPool(ramPages*2), ramPages*isa.PageSize)
	g.PopulateAll()
	tb, err := mmu.NewTableBuilder(g, 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.IdentityMap(ramPages*isa.PageSize, isa.PTERead|isa.PTEWrite|isa.PTEExec); err != nil {
		t.Fatal(err)
	}

	b := asm.NewBuilder(0x1000)
	b.Li(isa.RegT0, isa.MakeSatp(isa.SatpModePaged, 1, tb.RootPPN))
	b.Csrw(isa.CSRSatp, isa.RegT0)
	// Now running translated; do some memory work.
	b.Li(isa.RegS0, 0x10000)
	b.Li(isa.RegA0, 0xCAFE)
	b.Store(isa.OpSD, isa.RegA0, isa.RegS0, 0)
	b.Load(isa.OpLD, isa.RegA1, isa.RegS0, 0)
	b.Halt(0)
	img, _ := b.Finish()
	if f := g.Write(0x1000, img); f != nil {
		t.Fatal(f)
	}
	c := New(g, mmu.NewContext(g, mmu.StyleDirect))
	c.Priv = PrivS
	c.PC = 0x1000
	ex := c.Run(1_000_000)
	if ex.Reason != ExitHalt {
		t.Fatalf("exit = %v (pc=%#x)", ex, c.PC)
	}
	if c.X[isa.RegA1] != 0xCAFE {
		t.Fatalf("a1 = %#x", c.X[isa.RegA1])
	}
	if c.MMU.Stats.Walks == 0 {
		t.Fatal("paged run should have walked")
	}
}

func TestPageFaultDeliveredToGuest(t *testing.T) {
	g := mem.NewGuestPhys(mem.NewPool(ramPages*2), ramPages*isa.PageSize)
	g.PopulateAll()
	tb, _ := mmu.NewTableBuilder(g, 128, 32)
	// Map only the code+handler region; 0x700000 left unmapped.
	tb.IdentityMap(64*isa.PageSize, isa.PTERead|isa.PTEWrite|isa.PTEExec)

	b := asm.NewBuilder(0x1000)
	b.La(isa.RegT0, "handler")
	b.Csrw(isa.CSRStvec, isa.RegT0)
	b.Li(isa.RegT1, isa.MakeSatp(isa.SatpModePaged, 1, tb.RootPPN))
	b.Csrw(isa.CSRSatp, isa.RegT1)
	b.Li(isa.RegS0, 0x700000)
	b.Load(isa.OpLD, isa.RegA0, isa.RegS0, 0) // → load page fault
	b.Label("spin")
	b.J("spin")
	b.Align(4)
	b.Label("handler")
	b.Csrr(isa.RegA1, isa.CSRScause)
	b.Csrr(isa.RegA2, isa.CSRStval)
	b.Halt(0)
	img, _ := b.Finish()
	g.Write(0x1000, img)
	c := New(g, mmu.NewContext(g, mmu.StyleDirect))
	c.Priv = PrivS
	c.PC = 0x1000
	ex := c.Run(1_000_000)
	if ex.Reason != ExitHalt {
		t.Fatalf("exit = %v", ex)
	}
	if c.X[isa.RegA1] != isa.CauseLoadPageFault {
		t.Fatalf("cause = %d", c.X[isa.RegA1])
	}
	if c.X[isa.RegA2] != 0x700000 {
		t.Fatalf("stval = %#x", c.X[isa.RegA2])
	}
}
