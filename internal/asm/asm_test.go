package asm

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"govisor/internal/isa"
)

func decodeAt(t *testing.T, img []byte, off int) isa.Inst {
	t.Helper()
	if off+4 > len(img) {
		t.Fatalf("image too short: want word at %d, len %d", off, len(img))
	}
	return isa.Decode(binary.LittleEndian.Uint32(img[off:]))
}

func TestBuilderBasicEmit(t *testing.T) {
	b := NewBuilder(0x1000)
	b.R(isa.OpADD, isa.RegA0, isa.RegA1, isa.RegA2)
	b.I(isa.OpADDI, isa.RegT0, isa.RegZero, -7)
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 8 {
		t.Fatalf("len = %d", len(img))
	}
	if in := decodeAt(t, img, 0); in.Op != isa.OpADD || in.Rd != isa.RegA0 {
		t.Errorf("word0 = %+v", in)
	}
	if in := decodeAt(t, img, 4); in.Op != isa.OpADDI || in.Imm != -7 {
		t.Errorf("word1 = %+v", in)
	}
}

func TestBranchBackwardAndForward(t *testing.T) {
	b := NewBuilder(0)
	b.Label("top")
	b.Nop()
	b.Branch(isa.OpBEQ, 1, 2, "top") // at 4, target 0 ⇒ -4
	b.Branch(isa.OpBNE, 3, 4, "end") // at 8, target 12 ⇒ +4
	b.Label("end")
	b.Nop()
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if in := decodeAt(t, img, 4); in.Imm != -4 {
		t.Errorf("backward branch imm = %d", in.Imm)
	}
	if in := decodeAt(t, img, 8); in.Imm != 4 {
		t.Errorf("forward branch imm = %d", in.Imm)
	}
}

func TestJalFixup(t *testing.T) {
	b := NewBuilder(0x2000)
	b.Jal(isa.RegRA, "fn") // at 0x2000
	b.Halt(0)
	b.Label("fn")
	b.Ret()
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if in := decodeAt(t, img, 0); in.Op != isa.OpJAL || in.Imm != 8 {
		t.Errorf("jal = %+v, want imm 8", in)
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	b := NewBuilder(0)
	b.J("nowhere")
	if _, err := b.Finish(); err == nil {
		t.Fatal("expected error for undefined label")
	}
}

func TestDuplicateLabelFails(t *testing.T) {
	b := NewBuilder(0)
	b.Label("x")
	b.Label("x")
	if _, err := b.Finish(); err == nil {
		t.Fatal("expected error for duplicate label")
	}
}

func TestBranchOutOfRangeFails(t *testing.T) {
	b := NewBuilder(0)
	b.Branch(isa.OpBEQ, 0, 0, "far")
	b.Space(40000)
	b.Align(4)
	b.Label("far")
	b.Nop()
	if _, err := b.Finish(); err == nil {
		t.Fatal("expected range error")
	}
}

func TestImmediateRangeChecks(t *testing.T) {
	b := NewBuilder(0)
	b.I(isa.OpADDI, 1, 0, 40000) // out of signed range
	if _, err := b.Finish(); err == nil {
		t.Fatal("expected immediate range error")
	}
	b2 := NewBuilder(0)
	b2.I(isa.OpORI, 1, 0, -1) // negative for zero-extended imm
	if _, err := b2.Finish(); err == nil {
		t.Fatal("expected unsigned immediate error")
	}
}

// runLi simulates the emitted li sequence and returns the resulting register
// value, verifying the expansion semantics without a full CPU.
func runLi(t *testing.T, img []byte) uint64 {
	t.Helper()
	var x [32]uint64
	for off := 0; off < len(img); off += 4 {
		in := decodeAt(t, img, off)
		switch in.Op {
		case isa.OpADDI:
			x[in.Rd] = x[in.Rs1] + uint64(int64(in.Imm))
		case isa.OpLUI:
			x[in.Rd] = uint64(int64(in.Imm)) << 16
		case isa.OpORI:
			x[in.Rd] = x[in.Rs1] | uint64(uint32(in.Imm))
		case isa.OpXORI:
			x[in.Rd] = x[in.Rs1] ^ uint64(uint32(in.Imm))
		case isa.OpSLLI:
			x[in.Rd] = x[in.Rs1] << uint(in.Imm&63)
		default:
			t.Fatalf("unexpected op %v in li expansion", in.Op)
		}
		if in.Rd == 0 {
			x[0] = 0
		}
	}
	return x[isa.RegA0]
}

func TestLiExpansionValues(t *testing.T) {
	cases := []uint64{
		0, 1, 0x7FFF, 0x8000, 0xFFFF, 0x10000, 0x12345678,
		0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0x100000000,
		0xDEADBEEFCAFEBABE, ^uint64(0), 1 << 63,
		0xFFFFFFFFFFFF8000, // -32768
		0xFFFFFFFF80000000, // int32 min
	}
	for _, v := range cases {
		b := NewBuilder(0)
		b.Li(isa.RegA0, v)
		img, err := b.Finish()
		if err != nil {
			t.Fatalf("li %#x: %v", v, err)
		}
		if got := runLi(t, img); got != v {
			t.Errorf("li %#x evaluated to %#x (seq %d instrs)", v, got, len(img)/4)
		}
	}
}

func TestLiExpansionProperty(t *testing.T) {
	f := func(v uint64) bool {
		b := NewBuilder(0)
		b.Li(isa.RegA0, v)
		img, err := b.Finish()
		if err != nil {
			return false
		}
		return runLi(t, img) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLiShortFormsAreShort(t *testing.T) {
	b := NewBuilder(0)
	b.Li(isa.RegA0, 5)
	img, _ := b.Finish()
	if len(img) != 4 {
		t.Errorf("li 5 used %d instrs", len(img)/4)
	}
	b = NewBuilder(0)
	b.Li(isa.RegA0, 0x12340000)
	img, _ = b.Finish()
	if len(img) != 4 {
		t.Errorf("li 0x12340000 used %d instrs", len(img)/4)
	}
}

func TestLaResolvesAddress(t *testing.T) {
	b := NewBuilder(0x4000)
	b.La(isa.RegA0, "data")
	b.Halt(0)
	b.Label("data")
	b.Dword(99)
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// la is lui+ori: target should be 0x4000 + 12.
	if got := runLi(t, img[:8]); got != 0x400C {
		t.Errorf("la resolved to %#x, want 0x400C", got)
	}
}

func TestDwordLabelAndData(t *testing.T) {
	b := NewBuilder(0x100)
	b.DwordLabel("tgt")
	b.Label("tgt")
	b.Asciiz("hi")
	b.Align(8)
	b.Dword(0x1122334455667788)
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(img); got != 0x108 {
		t.Errorf("dword label = %#x, want 0x108", got)
	}
	if img[8] != 'h' || img[9] != 'i' || img[10] != 0 {
		t.Errorf("asciiz bytes = %v", img[8:11])
	}
	if got := binary.LittleEndian.Uint64(img[16:]); got != 0x1122334455667788 {
		t.Errorf("data dword = %#x", got)
	}
}

func TestAlignPads(t *testing.T) {
	b := NewBuilder(0)
	b.Byte(1)
	b.Align(8)
	if b.Len() != 8 {
		t.Errorf("len after align = %d", b.Len())
	}
	b.Align(3) // not a power of two
	if _, err := b.Finish(); err == nil {
		t.Fatal("expected alignment error")
	}
}

func TestAssembleTextProgram(t *testing.T) {
	src := `
# compute: a0 = 6*7, then halt
.equ ANSWER, 42
start:
	li   a0, 6
	li   a1, 7
	mul  a0, a0, a1
	li   t0, 42
	bne  a0, t0, fail
	halt 0
fail:
	halt 1

	.align 8
msg:
	.asciiz "ok"
table:
	.dword msg, 0x10
`
	img, err := Assemble(src, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) == 0 {
		t.Fatal("empty image")
	}
	in := decodeAt(t, img, 0)
	if in.Op != isa.OpADDI || in.Imm != 6 {
		t.Errorf("first instr %+v", in)
	}
}

func TestAssembleTextCSRAndMem(t *testing.T) {
	src := `
	csrr  t0, satp
	csrw  stvec, t0
	csrrs a0, scause, zero
	ld    a1, 8(sp)
	sd    a1, -16(sp)
	lw    a2, (gp)
	sfence.vma zero, zero
	ecall
	sret
	wfi
`
	img, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in := decodeAt(t, img, 0); in.Op != isa.OpCSRRS || uint16(in.Imm) != isa.CSRSatp {
		t.Errorf("csrr = %+v", in)
	}
	if in := decodeAt(t, img, 16); in.Op != isa.OpSD || in.Imm != -16 {
		t.Errorf("sd = %+v", in)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frobnicate a0, a1",
		"addi a0, a1",      // missing imm
		"ld a0, 8[sp]",     // bad operand
		"li a0, zzz",       // bad number
		"beq a0, a1",       // missing label
		`.asciiz unquoted`, // bad string
	}
	for _, src := range bad {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleCommentsAndBlank(t *testing.T) {
	img, err := Assemble("\n  # only comments\n; and this\n\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 0 {
		t.Errorf("len = %d", len(img))
	}
}
