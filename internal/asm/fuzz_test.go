package asm

import (
	"testing"

	"govisor/internal/isa"
)

// FuzzAssembleDisassemble: for every decodable instruction word whose
// operands are expressible in assembler syntax, disassembling and re-
// assembling the text must reproduce the exact instruction — the assembler,
// disassembler and encoder agree on one canonical form. Operand fields the
// textual syntax cannot carry (branch/jump label targets, unknown CSR
// numbers, dead immediate bits in system instructions) are canonicalized
// the same way the seeded round-trip test does.
func FuzzAssembleDisassemble(f *testing.F) {
	f.Add(isa.Encode(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3}))
	f.Add(isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: 4, Rs1: 5, Imm: -7}))
	f.Add(isa.Encode(isa.Inst{Op: isa.OpLD, Rd: 6, Rs1: 7, Imm: 128}))
	f.Add(isa.Encode(isa.Inst{Op: isa.OpSD, Rs1: 8, Rs2: 9, Imm: -16}))
	f.Add(isa.Encode(isa.Inst{Op: isa.OpCSRRW, Rd: 1, Rs1: 2, Imm: int32(isa.CSRSscratch)}))
	f.Add(isa.Encode(isa.Inst{Op: isa.OpHALT, Imm: 3}))
	f.Add(uint32(0))
	f.Add(^uint32(0))
	f.Fuzz(func(t *testing.T, w uint32) {
		in := isa.Decode(w)
		if !in.Op.Valid() {
			return
		}
		switch isa.FormatOf(in.Op) {
		case isa.FmtJ:
			return // jumps take label targets, not numeric offsets
		case isa.FmtB:
			switch in.Op {
			case isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSD:
			default:
				return // branches take label targets
			}
		}
		switch in.Op {
		case isa.OpCSRRW, isa.OpCSRRS, isa.OpCSRRC:
			in.Imm = int32(isa.CSRSscratch) // arbitrary CSRs have no name to parse
		case isa.OpSLLI, isa.OpSRLI, isa.OpSRAI:
			in.Imm &= 63
		case isa.OpLUI:
			in.Rs1 = 0
		case isa.OpSFENCE:
			in.Rd = 0
		case isa.OpHALT:
			// halt N round-trips its 16-bit code.
		case isa.OpECALL, isa.OpEBREAK, isa.OpSRET, isa.OpWFI, isa.OpFENCE:
			in.Imm = 0 // plain mnemonics carry no immediate text
		}
		text := isa.Disasm(in)
		if text == "" {
			t.Fatalf("word %#x: empty disassembly for %+v", w, in)
		}
		img, err := Assemble(text, 0)
		if err != nil {
			t.Fatalf("Assemble(%q) from word %#x: %v", text, w, err)
		}
		if len(img) != 4 {
			t.Fatalf("Assemble(%q) produced %d bytes", text, len(img))
		}
		got := isa.Decode(uint32(img[0]) | uint32(img[1])<<8 | uint32(img[2])<<16 | uint32(img[3])<<24)
		if got != in {
			t.Fatalf("round trip %q: want %+v got %+v", text, in, got)
		}
	})
}
