package asm

import (
	"fmt"
	"strconv"
	"strings"

	"govisor/internal/isa"
)

// Assemble parses GV64 assembly source text and returns the program image
// based at org. Syntax, one statement per line ('#' or ';' comments):
//
//	label:                       define a label
//	.equ NAME value              symbolic constant
//	.dword v | .word v | .byte v data (values or label names for .dword)
//	.asciiz "text"               NUL-terminated string
//	.align n | .space n          padding
//	add rd, rs1, rs2             R-type
//	addi rd, rs1, imm            I-type
//	ld rd, off(rs1)              loads
//	sd rs2, off(rs1)             stores
//	beq rs1, rs2, label          branches
//	jal rd, label | j label      jumps
//	csrrw rd, csr, rs1           CSR ops (csr by name or number)
//	li rd, value | la rd, label  pseudo
//	mv rd, rs | call l | ret | nop
//	ecall | ebreak | sret | wfi | halt code | sfence.vma rs1, rs2
func Assemble(src string, org uint64) ([]byte, error) {
	b := NewBuilder(org)
	for lineno, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Possibly "label: rest".
		if i := strings.Index(line, ":"); i >= 0 && isIdent(line[:i]) {
			b.Label(strings.TrimSpace(line[:i]))
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				continue
			}
		}
		if err := parseStmt(b, line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno+1, err)
		}
	}
	return b.Finish()
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, "#;"); i >= 0 {
		return s[:i]
	}
	return s
}

func isIdent(s string) bool {
	s = strings.TrimSpace(s)
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r == '.':
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseStmt(b *Builder, line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	args := splitArgs(rest)

	switch mnemonic {
	case ".equ":
		if len(args) != 2 {
			return fmt.Errorf(".equ wants NAME VALUE")
		}
		v, err := parseNum(args[1])
		if err != nil {
			return err
		}
		b.Equ(args[0], uint64(v))
		return nil
	case ".dword":
		for _, a := range args {
			if v, err := parseNum(a); err == nil {
				b.Dword(uint64(v))
			} else if isIdent(a) {
				b.DwordLabel(a)
			} else {
				return fmt.Errorf("bad .dword operand %q", a)
			}
		}
		return nil
	case ".word":
		for _, a := range args {
			v, err := parseNum(a)
			if err != nil {
				return err
			}
			b.Word(uint32(v))
		}
		return nil
	case ".byte":
		for _, a := range args {
			v, err := parseNum(a)
			if err != nil {
				return err
			}
			b.Byte(byte(v))
		}
		return nil
	case ".asciiz":
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return fmt.Errorf("bad string %q: %w", rest, err)
		}
		b.Asciiz(s)
		return nil
	case ".align":
		v, err := parseNum(args[0])
		if err != nil {
			return err
		}
		b.Align(int(v))
		return nil
	case ".space":
		v, err := parseNum(args[0])
		if err != nil {
			return err
		}
		b.Space(int(v))
		return nil
	}

	// Pseudo-instructions.
	switch mnemonic {
	case "nop":
		b.Nop()
		return nil
	case "ret":
		b.Ret()
		return nil
	case "mv":
		rd, err1 := reg(idx(args, 0))
		rs, err2 := reg(idx(args, 1))
		if err := firstErr(err1, err2); err != nil {
			return err
		}
		b.Mv(rd, rs)
		return nil
	case "li":
		if len(args) != 2 {
			return fmt.Errorf("li wants rd, value")
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		v, err := parseNum(args[1])
		if err != nil {
			// Symbolic constants defined with .equ are allowed here.
			if ev, ok := b.EquValue(args[1]); ok {
				b.Li(rd, ev)
				return nil
			}
			return err
		}
		b.Li(rd, uint64(v))
		return nil
	case "la":
		if len(args) != 2 {
			return fmt.Errorf("la wants rd, label")
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		b.La(rd, args[1])
		return nil
	case "j":
		if len(args) != 1 {
			return fmt.Errorf("j wants label")
		}
		b.J(args[0])
		return nil
	case "call":
		if len(args) != 1 {
			return fmt.Errorf("call wants label")
		}
		b.Call(args[0])
		return nil
	case "csrr":
		if len(args) != 2 {
			return fmt.Errorf("csrr wants rd, csr")
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		c, err := csr(args[1])
		if err != nil {
			return err
		}
		b.Csrr(rd, c)
		return nil
	case "csrw":
		if len(args) != 2 {
			return fmt.Errorf("csrw wants csr, rs")
		}
		c, err := csr(args[0])
		if err != nil {
			return err
		}
		rs, err := reg(args[1])
		if err != nil {
			return err
		}
		b.Csrw(c, rs)
		return nil
	case "halt":
		code := int64(0)
		if len(args) == 1 {
			v, err := parseNum(args[0])
			if err != nil {
				return err
			}
			code = v
		}
		b.Halt(uint16(code))
		return nil
	case "sfence.vma":
		var r1, r2 uint8
		var err error
		if len(args) >= 1 {
			if r1, err = reg(args[0]); err != nil {
				return err
			}
		}
		if len(args) >= 2 {
			if r2, err = reg(args[1]); err != nil {
				return err
			}
		}
		b.SfenceVMA(r1, r2)
		return nil
	}

	op, ok := opByName(mnemonic)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}

	switch isa.FormatOf(op) {
	case isa.FmtR:
		rd, err1 := reg(idx(args, 0))
		rs1, err2 := reg(idx(args, 1))
		rs2, err3 := reg(idx(args, 2))
		if err := firstErr(err1, err2, err3); err != nil {
			return err
		}
		b.R(op, rd, rs1, rs2)
	case isa.FmtI:
		switch op {
		case isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW, isa.OpLWU, isa.OpLD, isa.OpJALR:
			rd, err := reg(idx(args, 0))
			if err != nil {
				return err
			}
			off, base, err := memOperand(idx(args, 1))
			if err != nil {
				return err
			}
			b.I(op, rd, base, off)
		case isa.OpCSRRW, isa.OpCSRRS, isa.OpCSRRC:
			rd, err := reg(idx(args, 0))
			if err != nil {
				return err
			}
			c, err := csr(idx(args, 1))
			if err != nil {
				return err
			}
			rs, err := reg(idx(args, 2))
			if err != nil {
				return err
			}
			b.Inst(isa.Inst{Op: op, Rd: rd, Rs1: rs, Imm: int32(c)})
		case isa.OpLUI:
			rd, err := reg(idx(args, 0))
			if err != nil {
				return err
			}
			v, err := parseNum(idx(args, 1))
			if err != nil {
				return err
			}
			b.I(op, rd, 0, v)
		default:
			rd, err := reg(idx(args, 0))
			if err != nil {
				return err
			}
			rs1, err := reg(idx(args, 1))
			if err != nil {
				return err
			}
			v, err := parseNum(idx(args, 2))
			if err != nil {
				return err
			}
			b.I(op, rd, rs1, v)
		}
	case isa.FmtB:
		switch op {
		case isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSD:
			src, err := reg(idx(args, 0))
			if err != nil {
				return err
			}
			off, base, err := memOperand(idx(args, 1))
			if err != nil {
				return err
			}
			b.Store(op, src, base, off)
		default:
			rs1, err := reg(idx(args, 0))
			if err != nil {
				return err
			}
			rs2, err := reg(idx(args, 1))
			if err != nil {
				return err
			}
			if len(args) < 3 {
				return fmt.Errorf("%s wants a target label", op)
			}
			b.Branch(op, rs1, rs2, args[2])
		}
	case isa.FmtJ:
		rd, err := reg(idx(args, 0))
		if err != nil {
			return err
		}
		if len(args) < 2 {
			return fmt.Errorf("jal wants rd, label")
		}
		b.Jal(rd, args[1])
	case isa.FmtSys:
		switch op {
		case isa.OpECALL:
			b.Ecall()
		case isa.OpEBREAK:
			b.Ebreak()
		case isa.OpSRET:
			b.Sret()
		case isa.OpWFI:
			b.Wfi()
		case isa.OpFENCE:
			b.Inst(isa.Inst{Op: isa.OpFENCE})
		case isa.OpHALT:
			b.Halt(0)
		}
	}
	return nil
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func idx(args []string, i int) string {
	if i < len(args) {
		return args[i]
	}
	return ""
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func reg(s string) (uint8, error) {
	r, ok := isa.RegByName(s)
	if !ok {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return r, nil
}

func csr(s string) (uint16, error) {
	if c, ok := isa.CSRByName(s); ok {
		return c, nil
	}
	if v, err := parseNum(s); err == nil && v >= 0 && v < 1<<12 {
		return uint16(v), nil
	}
	return 0, fmt.Errorf("bad CSR %q", s)
}

// memOperand parses "off(reg)" or "(reg)".
func memOperand(s string) (off int64, base uint8, err error) {
	i := strings.Index(s, "(")
	if i < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	if i > 0 {
		off, err = parseNum(s[:i])
		if err != nil {
			return 0, 0, err
		}
	}
	base, err = reg(s[i+1 : len(s)-1])
	return off, base, err
}

func parseNum(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

var opTable = func() map[string]isa.Op {
	m := make(map[string]isa.Op, isa.NumOps)
	for op := isa.Op(1); int(op) < isa.NumOps; op++ {
		m[op.String()] = op
	}
	return m
}()

func opByName(name string) (isa.Op, bool) {
	op, ok := opTable[name]
	return op, ok
}
