// Package asm implements a two-pass assembler for the GV64 instruction set.
//
// Guest software in govisor — the guest kernel and every benchmark workload —
// is produced either programmatically through Builder (the common path: guest
// code generators in internal/guest compose programs in Go) or from textual
// .gvs source via Assemble (used by cmd/gvasm).
//
// Builder records instructions and data into a flat image based at Org, with
// symbolic labels resolved on Finish. Pseudo-instructions (li, la, mv, j,
// call, ret, nop, csrr, csrw) expand to core GV64 sequences.
package asm

import (
	"encoding/binary"
	"fmt"

	"govisor/internal/isa"
)

// Builder assembles a GV64 program image.
//
// The zero value is not ready for use; construct with NewBuilder.
type Builder struct {
	org    uint64
	buf    []byte
	labels map[string]uint64
	equs   map[string]uint64
	fixups []fixup
	errs   []error
}

type fixupKind uint8

const (
	fixBranch fixupKind = iota // 16-bit PC-relative byte offset
	fixJal                     // 21-bit PC-relative word offset
	fixLaHi                    // LUI with target>>16
	fixLaLo                    // ORI with target&0xFFFF
	fixDword                   // 64-bit absolute data word
)

type fixup struct {
	off   uint64 // byte offset into buf of the word to patch
	label string
	kind  fixupKind
}

// NewBuilder returns a Builder whose image starts at base address org.
func NewBuilder(org uint64) *Builder {
	return &Builder{
		org:    org,
		labels: make(map[string]uint64),
		equs:   make(map[string]uint64),
	}
}

// Org returns the image base address.
func (b *Builder) Org() uint64 { return b.org }

// PC returns the address of the next byte to be emitted.
func (b *Builder) PC() uint64 { return b.org + uint64(len(b.buf)) }

// Len returns the current image size in bytes.
func (b *Builder) Len() int { return len(b.buf) }

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Label defines name at the current PC. Redefinition is an error.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errorf("asm: label %q redefined", name)
		return
	}
	b.labels[name] = b.PC()
}

// Equ defines a symbolic constant usable by La/Li fixups in textual source.
func (b *Builder) Equ(name string, val uint64) {
	b.equs[name] = val
}

// EquValue resolves a symbolic constant defined with Equ.
func (b *Builder) EquValue(name string) (uint64, bool) {
	v, ok := b.equs[name]
	return v, ok
}

// LabelAddr returns the address of a previously defined label; it is an
// error to query a label before Finish resolves forward references, so this
// is only valid for labels already defined.
func (b *Builder) LabelAddr(name string) (uint64, bool) {
	a, ok := b.labels[name]
	return a, ok
}

func (b *Builder) word(w uint32) {
	b.buf = binary.LittleEndian.AppendUint32(b.buf, w)
}

// Raw emits a pre-encoded instruction word.
func (b *Builder) Raw(w uint32) { b.word(w) }

// Inst emits a decoded instruction.
func (b *Builder) Inst(in isa.Inst) { b.word(isa.Encode(in)) }

// R emits a register-register instruction.
func (b *Builder) R(op isa.Op, rd, rs1, rs2 uint8) {
	b.Inst(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// I emits an immediate-format instruction, range-checking the immediate.
func (b *Builder) I(op isa.Op, rd, rs1 uint8, imm int64) {
	if isa.SignExtendsImm(op) {
		if imm < -32768 || imm > 32767 {
			b.errorf("asm: %s immediate %d out of signed 16-bit range at %#x", op, imm, b.PC())
		}
	} else if imm < 0 || imm > 0xFFFF {
		b.errorf("asm: %s immediate %d out of unsigned 16-bit range at %#x", op, imm, b.PC())
	}
	b.Inst(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int32(imm)})
}

// Load emits a load instruction rd ← [rs1+off].
func (b *Builder) Load(op isa.Op, rd, base uint8, off int64) { b.I(op, rd, base, off) }

// Store emits a store instruction [base+off] ← src.
func (b *Builder) Store(op isa.Op, src, base uint8, off int64) {
	if off < -32768 || off > 32767 {
		b.errorf("asm: store offset %d out of range at %#x", off, b.PC())
	}
	b.Inst(isa.Inst{Op: op, Rs1: base, Rs2: src, Imm: int32(off)})
}

// Branch emits a conditional branch to a label.
func (b *Builder) Branch(op isa.Op, rs1, rs2 uint8, label string) {
	b.fixups = append(b.fixups, fixup{off: uint64(len(b.buf)), label: label, kind: fixBranch})
	b.Inst(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

// Jal emits jal rd, label.
func (b *Builder) Jal(rd uint8, label string) {
	b.fixups = append(b.fixups, fixup{off: uint64(len(b.buf)), label: label, kind: fixJal})
	b.Inst(isa.Inst{Op: isa.OpJAL, Rd: rd})
}

// Jalr emits jalr rd, off(rs1).
func (b *Builder) Jalr(rd, rs1 uint8, off int64) { b.I(isa.OpJALR, rd, rs1, off) }

// J emits an unconditional jump (jal zero, label).
func (b *Builder) J(label string) { b.Jal(isa.RegZero, label) }

// Call emits jal ra, label.
func (b *Builder) Call(label string) { b.Jal(isa.RegRA, label) }

// Ret emits jalr zero, 0(ra).
func (b *Builder) Ret() { b.Jalr(isa.RegZero, isa.RegRA, 0) }

// Nop emits addi zero, zero, 0.
func (b *Builder) Nop() { b.I(isa.OpADDI, 0, 0, 0) }

// Mv emits mv rd, rs (addi rd, rs, 0).
func (b *Builder) Mv(rd, rs uint8) { b.I(isa.OpADDI, rd, rs, 0) }

// Li loads an arbitrary 64-bit constant into rd using the shortest
// addi/lui/ori/slli sequence (1–7 instructions).
func (b *Builder) Li(rd uint8, v uint64) {
	sv := int64(v)
	switch {
	case sv >= -32768 && sv <= 32767:
		b.I(isa.OpADDI, rd, isa.RegZero, sv)
	case sv >= -(1<<31) && sv < 1<<31 && v&0xFFFF == 0:
		b.I(isa.OpLUI, rd, 0, int64(int16(uint16(v>>16))))
	case sv >= -(1<<31) && sv < 1<<31:
		b.I(isa.OpLUI, rd, 0, int64(int16(uint16(v>>16))))
		b.I(isa.OpXORI, rd, rd, int64(v&0xFFFF))
		// XORI with zero-extended low bits: LUI already produced the high
		// half; low 16 bits of LUI result are zero, so xor sets them exactly.
	default:
		// General 64-bit: build from the top in 16-bit chunks.
		// addi rd, zero, top16 (sign bits shift out), then 3 × (slli 16; ori).
		b.I(isa.OpADDI, rd, isa.RegZero, int64(int16(uint16(v>>48))))
		for shift := 32; shift >= 0; shift -= 16 {
			b.I(isa.OpSLLI, rd, rd, 16)
			b.I(isa.OpORI, rd, rd, int64(v>>uint(shift)&0xFFFF))
		}
	}
}

// La loads the address of label into rd. The sequence is a fixed two
// instructions (lui+ori), so the target must resolve below 2³¹; govisor
// guest images always do.
func (b *Builder) La(rd uint8, label string) {
	b.fixups = append(b.fixups, fixup{off: uint64(len(b.buf)), label: label, kind: fixLaHi})
	b.I(isa.OpLUI, rd, 0, 0)
	b.fixups = append(b.fixups, fixup{off: uint64(len(b.buf)), label: label, kind: fixLaLo})
	b.I(isa.OpORI, rd, rd, 0)
}

// Csrr emits csrrs rd, csr, zero (read CSR).
func (b *Builder) Csrr(rd uint8, csr uint16) {
	b.Inst(isa.Inst{Op: isa.OpCSRRS, Rd: rd, Rs1: isa.RegZero, Imm: int32(csr)})
}

// Csrw emits csrrw zero, csr, rs (write CSR).
func (b *Builder) Csrw(csr uint16, rs uint8) {
	b.Inst(isa.Inst{Op: isa.OpCSRRW, Rd: isa.RegZero, Rs1: rs, Imm: int32(csr)})
}

// Csrrw emits the full read-write form.
func (b *Builder) Csrrw(rd uint8, csr uint16, rs uint8) {
	b.Inst(isa.Inst{Op: isa.OpCSRRW, Rd: rd, Rs1: rs, Imm: int32(csr)})
}

// Csrs emits csrrs zero, csr, rs (set bits).
func (b *Builder) Csrs(csr uint16, rs uint8) {
	b.Inst(isa.Inst{Op: isa.OpCSRRS, Rd: isa.RegZero, Rs1: rs, Imm: int32(csr)})
}

// Csrc emits csrrc zero, csr, rs (clear bits).
func (b *Builder) Csrc(csr uint16, rs uint8) {
	b.Inst(isa.Inst{Op: isa.OpCSRRC, Rd: isa.RegZero, Rs1: rs, Imm: int32(csr)})
}

// Ecall emits an environment call.
func (b *Builder) Ecall() { b.Inst(isa.Inst{Op: isa.OpECALL}) }

// Ebreak emits a breakpoint.
func (b *Builder) Ebreak() { b.Inst(isa.Inst{Op: isa.OpEBREAK}) }

// Sret emits a return-from-trap.
func (b *Builder) Sret() { b.Inst(isa.Inst{Op: isa.OpSRET}) }

// Wfi emits wait-for-interrupt.
func (b *Builder) Wfi() { b.Inst(isa.Inst{Op: isa.OpWFI}) }

// SfenceVMA emits sfence.vma rs1(addr), rs2(asid); zero registers mean "all".
func (b *Builder) SfenceVMA(addrReg, asidReg uint8) {
	b.Inst(isa.Inst{Op: isa.OpSFENCE, Rs1: addrReg, Rs2: asidReg})
}

// Halt emits halt with a diagnostic code.
func (b *Builder) Halt(code uint16) {
	b.Inst(isa.Inst{Op: isa.OpHALT, Imm: int32(code)})
}

// Dword emits a 64-bit little-endian data word.
func (b *Builder) Dword(v uint64) {
	b.buf = binary.LittleEndian.AppendUint64(b.buf, v)
}

// DwordLabel emits a 64-bit data word holding the address of label.
func (b *Builder) DwordLabel(label string) {
	b.fixups = append(b.fixups, fixup{off: uint64(len(b.buf)), label: label, kind: fixDword})
	b.Dword(0)
}

// Word emits a 32-bit little-endian data word.
func (b *Builder) Word(v uint32) { b.word(v) }

// Byte emits raw bytes.
func (b *Builder) Byte(v ...byte) { b.buf = append(b.buf, v...) }

// Asciiz emits a NUL-terminated string.
func (b *Builder) Asciiz(s string) {
	b.buf = append(b.buf, s...)
	b.buf = append(b.buf, 0)
}

// Align pads with zero bytes to the given power-of-two boundary.
func (b *Builder) Align(n int) {
	if n <= 0 || n&(n-1) != 0 {
		b.errorf("asm: alignment %d not a power of two", n)
		return
	}
	for b.PC()%uint64(n) != 0 {
		b.buf = append(b.buf, 0)
	}
}

// Space reserves n zero bytes.
func (b *Builder) Space(n int) {
	b.buf = append(b.buf, make([]byte, n)...)
}

// resolve looks a symbol up in labels then equs.
func (b *Builder) resolve(name string) (uint64, bool) {
	if a, ok := b.labels[name]; ok {
		return a, true
	}
	a, ok := b.equs[name]
	return a, ok
}

// Finish resolves all fixups and returns the image. The image loads at
// Org(); execution conventionally begins at Org() unless the caller tracks
// an entry label itself.
func (b *Builder) Finish() ([]byte, error) {
	for _, f := range b.fixups {
		target, ok := b.resolve(f.label)
		if !ok {
			b.errorf("asm: undefined label %q", f.label)
			continue
		}
		switch f.kind {
		case fixBranch:
			pc := b.org + f.off
			delta := int64(target) - int64(pc)
			if delta < -32768 || delta > 32767 || delta%4 != 0 {
				b.errorf("asm: branch to %q out of range (%d bytes)", f.label, delta)
				continue
			}
			b.patch16(f.off, uint16(int16(delta)))
		case fixJal:
			pc := b.org + f.off
			delta := int64(target) - int64(pc)
			if delta < -(1<<22) || delta >= 1<<22 || delta%4 != 0 {
				b.errorf("asm: jal to %q out of range (%d bytes)", f.label, delta)
				continue
			}
			w := binary.LittleEndian.Uint32(b.buf[f.off:])
			w = w&^0x1FFFFF | uint32(delta>>2)&0x1FFFFF
			binary.LittleEndian.PutUint32(b.buf[f.off:], w)
		case fixLaHi:
			if target >= 1<<31 {
				b.errorf("asm: la target %q = %#x exceeds 31-bit range", f.label, target)
				continue
			}
			b.patch16(f.off, uint16(target>>16))
		case fixLaLo:
			b.patch16(f.off, uint16(target))
		case fixDword:
			binary.LittleEndian.PutUint64(b.buf[f.off:], target)
		}
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("asm: %d errors, first: %w", len(b.errs), b.errs[0])
	}
	out := make([]byte, len(b.buf))
	copy(out, b.buf)
	return out, nil
}

func (b *Builder) patch16(off uint64, v uint16) {
	w := binary.LittleEndian.Uint32(b.buf[off:])
	w = w&^0xFFFF | uint32(v)
	binary.LittleEndian.PutUint32(b.buf[off:], w)
}
