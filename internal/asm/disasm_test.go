package asm

import (
	"math/rand"
	"strings"
	"testing"

	"govisor/internal/isa"
)

// TestDisasmReassembleRoundTrip: for a corpus of instructions, disassembling
// and re-assembling the text yields the identical encoding — the assembler
// and disassembler agree on syntax.
func TestDisasmReassembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var corpus []isa.Inst
	for i := 0; i < 500; i++ {
		op := isa.Op(rng.Intn(isa.NumOps-1) + 1)
		in := isa.Inst{Op: op}
		switch isa.FormatOf(op) {
		case isa.FmtR:
			in.Rd = uint8(rng.Intn(32))
			in.Rs1 = uint8(rng.Intn(32))
			in.Rs2 = uint8(rng.Intn(32))
			if op == isa.OpSFENCE {
				in.Rd = 0 // sfence.vma has no destination operand
			}
		case isa.FmtI:
			in.Rd = uint8(rng.Intn(32))
			in.Rs1 = uint8(rng.Intn(32))
			if op == isa.OpLUI {
				in.Rs1 = 0 // LUI has no source register operand
			}
			switch op {
			case isa.OpCSRRW, isa.OpCSRRS, isa.OpCSRRC:
				// Use a known CSR so the name round-trips.
				in.Imm = int32(isa.CSRSscratch)
			case isa.OpSLLI, isa.OpSRLI, isa.OpSRAI:
				in.Imm = int32(rng.Intn(64))
			default:
				if isa.SignExtendsImm(op) {
					in.Imm = int32(int16(rng.Uint32()))
				} else {
					in.Imm = int32(uint16(rng.Uint32()))
				}
			}
		case isa.FmtB:
			in.Rs1 = uint8(rng.Intn(32))
			in.Rs2 = uint8(rng.Intn(32))
			in.Imm = int32(int16(rng.Uint32())) &^ 3
			if isa.FormatOf(op) == isa.FmtB {
				switch op {
				case isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSD:
				default:
					continue // branches need labels; tested separately
				}
			}
		case isa.FmtJ:
			continue // jumps need labels
		case isa.FmtSys:
			if op == isa.OpHALT || op == isa.OpECALL {
				in.Imm = int32(uint16(rng.Uint32()))
			}
			if op == isa.OpECALL {
				in.Imm = 0 // ecall renders without the imm operand by default
			}
		}
		corpus = append(corpus, in)
	}
	for _, in := range corpus {
		text := isa.Disasm(in)
		// The halt mnemonic renders "halt N"; ecall as "ecall 0" — both parse.
		img, err := Assemble(text, 0)
		if err != nil {
			// "ecall N" with nonzero N renders as "ecall N" which the parser
			// treats as plain ecall; skip only genuinely unparseable text.
			if strings.HasPrefix(text, "ecall") {
				continue
			}
			t.Fatalf("Assemble(%q): %v", text, err)
		}
		if len(img) != 4 {
			t.Fatalf("Assemble(%q) produced %d bytes", text, len(img))
		}
		got := isa.Decode(uint32(img[0]) | uint32(img[1])<<8 | uint32(img[2])<<16 | uint32(img[3])<<24)
		want := in
		if got != want {
			t.Fatalf("round trip %q: want %+v got %+v", text, want, got)
		}
	}
}

func TestAssembleBranchAndJumpSyntax(t *testing.T) {
	src := `
top:
	beq a0, a1, top
	bltu t0, t1, fwd
	jal ra, fwd
	j top
	call fwd
fwd:
	ret
`
	img, err := Assemble(src, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 6*4 {
		t.Fatalf("len = %d", len(img))
	}
}

func TestAssembleEquUsedByLa(t *testing.T) {
	src := `
.equ UART, 0x40000000
	la t0, UART
	sb a0, 0(t0)
	halt
`
	img, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 4*4 {
		t.Fatalf("len = %d", len(img))
	}
}
