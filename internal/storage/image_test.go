package storage

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func sector(fill byte) []byte {
	s := make([]byte, SectorSize)
	for i := range s {
		s[i] = fill
	}
	return s
}

func TestRawReadWrite(t *testing.T) {
	r := NewRaw(16)
	if r.Sectors() != 16 {
		t.Fatal("capacity")
	}
	buf := make([]byte, SectorSize)
	if err := r.ReadSector(3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, sector(0)) {
		t.Fatal("unwritten sector should be zero")
	}
	if err := r.WriteSector(3, sector(0xAB)); err != nil {
		t.Fatal(err)
	}
	r.ReadSector(3, buf)
	if !bytes.Equal(buf, sector(0xAB)) {
		t.Fatal("round trip")
	}
	if r.Allocated() != 1 {
		t.Fatalf("allocated = %d", r.Allocated())
	}
}

func TestRawOutOfRange(t *testing.T) {
	r := NewRaw(4)
	if err := r.ReadSector(4, make([]byte, SectorSize)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	if err := r.WriteSector(9, sector(1)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestCOWFallsThroughToBacking(t *testing.T) {
	base := NewRaw(8)
	base.WriteSector(2, sector(0x11))
	c := NewCOW(base)
	buf := make([]byte, SectorSize)
	if err := c.ReadSector(2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, sector(0x11)) {
		t.Fatal("fall-through read")
	}
	if c.ChainReads != 1 {
		t.Fatalf("chain reads = %d", c.ChainReads)
	}
}

func TestCOWWriteShadowsBacking(t *testing.T) {
	base := NewRaw(8)
	base.WriteSector(2, sector(0x11))
	c := NewCOW(base)
	c.WriteSector(2, sector(0x22))
	buf := make([]byte, SectorSize)
	c.ReadSector(2, buf)
	if !bytes.Equal(buf, sector(0x22)) {
		t.Fatal("layer read")
	}
	base.ReadSector(2, buf)
	if !bytes.Equal(buf, sector(0x11)) {
		t.Fatal("backing must be untouched")
	}
	if c.CopyUps != 1 {
		t.Fatalf("copyups = %d", c.CopyUps)
	}
	// Second write to the same sector: no new copy-up.
	c.WriteSector(2, sector(0x33))
	if c.CopyUps != 1 {
		t.Fatalf("copyups after rewrite = %d", c.CopyUps)
	}
}

func TestSnapshotChainDepthAndFreeze(t *testing.T) {
	base := NewRaw(8)
	l1 := NewCOW(base)
	l1.WriteSector(0, sector(1))
	l2 := l1.Snapshot()
	if l1.Depth() != 1 || l2.Depth() != 2 {
		t.Fatalf("depths %d %d", l1.Depth(), l2.Depth())
	}
	// Frozen layer rejects writes.
	if err := l1.WriteSector(0, sector(9)); err == nil {
		t.Fatal("frozen layer accepted write")
	}
	// New layer sees old content until overwritten.
	buf := make([]byte, SectorSize)
	l2.ReadSector(0, buf)
	if !bytes.Equal(buf, sector(1)) {
		t.Fatal("snapshot content")
	}
	l2.WriteSector(0, sector(2))
	l2.ReadSector(0, buf)
	if !bytes.Equal(buf, sector(2)) {
		t.Fatal("top layer content")
	}
}

func TestCloneSharesUntouchedSectors(t *testing.T) {
	base := NewRaw(8)
	gold := NewCOW(base)
	gold.WriteSector(1, sector(0xAA))
	a := gold.Clone()
	b := gold.Clone()
	a.WriteSector(1, sector(0x01))
	buf := make([]byte, SectorSize)
	b.ReadSector(1, buf)
	if !bytes.Equal(buf, sector(0xAA)) {
		t.Fatal("clone b must see gold content")
	}
	if a.Allocated() != 1 || b.Allocated() != 0 {
		t.Fatalf("allocations a=%d b=%d", a.Allocated(), b.Allocated())
	}
}

func TestFlattenCollapsesChain(t *testing.T) {
	base := NewRaw(8)
	base.WriteSector(0, sector(1))
	l1 := NewCOW(base)
	l1.WriteSector(1, sector(2))
	l2 := l1.Snapshot()
	l2.WriteSector(2, sector(3))
	flat, err := l2.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, SectorSize)
	for i, want := range []byte{1, 2, 3} {
		flat.ReadSector(uint64(i), buf)
		if !bytes.Equal(buf, sector(want)) {
			t.Fatalf("sector %d", i)
		}
	}
	if flat.Allocated() != 3 {
		t.Fatalf("allocated = %d", flat.Allocated())
	}
}

// Property: a COW chain behaves exactly like a flat disk for any write set.
func TestCOWChainEquivalenceProperty(t *testing.T) {
	f := func(ops []struct {
		LBA  uint8
		Fill byte
		Snap bool
	}) bool {
		ref := NewRaw(32)
		var c Image = NewCOW(NewRaw(32))
		for _, op := range ops {
			lba := uint64(op.LBA % 32)
			if op.Snap {
				c = c.(*COW).Snapshot()
			}
			if err := ref.WriteSector(lba, sector(op.Fill)); err != nil {
				return false
			}
			if err := c.WriteSector(lba, sector(op.Fill)); err != nil {
				return false
			}
		}
		want := make([]byte, SectorSize)
		got := make([]byte, SectorSize)
		for lba := uint64(0); lba < 32; lba++ {
			ref.ReadSector(lba, want)
			c.ReadSector(lba, got)
			if !bytes.Equal(want, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
