// Package storage implements the disk images backing block devices: a raw
// in-memory image and a copy-on-write layered image with backing chains —
// the substrate for instant VM cloning, snapshot trees, and the COW-depth
// experiment F15.
package storage

import (
	"errors"
	"fmt"
)

// SectorSize matches dev.SectorSize; kept as its own constant so the storage
// layer has no dependency on the device layer.
const SectorSize = 512

// ErrOutOfRange is returned for accesses beyond the end of the image.
var ErrOutOfRange = errors.New("storage: sector out of range")

// Image is a random-access sector store. Raw and COW images implement it,
// and dev.BlockBackend is satisfied by any Image.
type Image interface {
	ReadSector(lba uint64, buf []byte) error
	WriteSector(lba uint64, buf []byte) error
	Sectors() uint64
}

// Raw is a flat in-memory image. Sectors are allocated lazily so a large
// empty disk costs nothing; unwritten sectors read as zeros.
type Raw struct {
	sectors uint64
	data    map[uint64][]byte

	// Stats.
	Reads, Writes uint64
}

// NewRaw creates a raw image with the given capacity.
func NewRaw(sectors uint64) *Raw {
	return &Raw{sectors: sectors, data: make(map[uint64][]byte)}
}

// Sectors implements Image.
func (r *Raw) Sectors() uint64 { return r.sectors }

// ReadSector implements Image.
func (r *Raw) ReadSector(lba uint64, buf []byte) error {
	if lba >= r.sectors {
		return fmt.Errorf("%w: lba %d of %d", ErrOutOfRange, lba, r.sectors)
	}
	r.Reads++
	if s, ok := r.data[lba]; ok {
		copy(buf, s)
		return nil
	}
	for i := range buf[:min(len(buf), SectorSize)] {
		buf[i] = 0
	}
	return nil
}

// WriteSector implements Image.
func (r *Raw) WriteSector(lba uint64, buf []byte) error {
	if lba >= r.sectors {
		return fmt.Errorf("%w: lba %d of %d", ErrOutOfRange, lba, r.sectors)
	}
	r.Writes++
	s, ok := r.data[lba]
	if !ok {
		s = make([]byte, SectorSize)
		r.data[lba] = s
	}
	copy(s, buf)
	return nil
}

// Allocated returns the number of materialized sectors.
func (r *Raw) Allocated() uint64 { return uint64(len(r.data)) }

// COW is a copy-on-write image layered over a backing image. Reads fall
// through the chain to the deepest layer that has the sector; the first
// write to a sector copies it up into this layer (read-modify-write against
// the backing chain is unnecessary because writes are whole sectors).
//
// Snapshot chains are built by stacking COW layers: each Snapshot call
// freezes the current layer and returns a fresh writable top.
type COW struct {
	backing Image
	delta   map[uint64][]byte
	sectors uint64
	frozen  bool

	// Stats for F15.
	Reads, Writes, CopyUps, ChainReads uint64
}

// NewCOW creates a writable COW layer over backing.
func NewCOW(backing Image) *COW {
	return &COW{
		backing: backing,
		delta:   make(map[uint64][]byte),
		sectors: backing.Sectors(),
	}
}

// Sectors implements Image.
func (c *COW) Sectors() uint64 { return c.sectors }

// Backing returns the image this layer falls through to.
func (c *COW) Backing() Image { return c.backing }

// Depth returns the number of COW layers in the chain including this one.
func (c *COW) Depth() int {
	d := 1
	b := c.backing
	for {
		cow, ok := b.(*COW)
		if !ok {
			return d
		}
		d++
		b = cow.backing
	}
}

// ReadSector implements Image.
func (c *COW) ReadSector(lba uint64, buf []byte) error {
	if lba >= c.sectors {
		return fmt.Errorf("%w: lba %d of %d", ErrOutOfRange, lba, c.sectors)
	}
	c.Reads++
	if s, ok := c.delta[lba]; ok {
		copy(buf, s)
		return nil
	}
	c.ChainReads++
	return c.backing.ReadSector(lba, buf)
}

// WriteSector implements Image.
func (c *COW) WriteSector(lba uint64, buf []byte) error {
	if c.frozen {
		return errors.New("storage: write to frozen snapshot layer")
	}
	if lba >= c.sectors {
		return fmt.Errorf("%w: lba %d of %d", ErrOutOfRange, lba, c.sectors)
	}
	c.Writes++
	s, ok := c.delta[lba]
	if !ok {
		s = make([]byte, SectorSize)
		c.delta[lba] = s
		c.CopyUps++
	}
	copy(s, buf)
	return nil
}

// Allocated returns the number of sectors materialized in this layer only.
func (c *COW) Allocated() uint64 { return uint64(len(c.delta)) }

// Snapshot freezes this layer and returns a new writable layer on top.
// The frozen layer keeps serving reads for sectors the new layer lacks.
func (c *COW) Snapshot() *COW {
	c.frozen = true
	return NewCOW(c)
}

// Clone returns an independent writable layer over the same (now frozen)
// base — the instant-provisioning path of experiment T14: both clones share
// every untouched sector.
func (c *COW) Clone() *COW {
	c.frozen = true
	return NewCOW(c)
}

// Flatten copies every live sector into a new Raw image (snapshot
// consolidation), collapsing the chain.
func (c *COW) Flatten() (*Raw, error) {
	out := NewRaw(c.sectors)
	buf := make([]byte, SectorSize)
	zero := make([]byte, SectorSize)
	for lba := uint64(0); lba < c.sectors; lba++ {
		if err := c.ReadSector(lba, buf); err != nil {
			return nil, err
		}
		if string(buf) == string(zero) {
			continue
		}
		if err := out.WriteSector(lba, buf); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
