package bench

import (
	"fmt"
	"time"

	"govisor/internal/core"
	"govisor/internal/guest"
	"govisor/internal/metrics"
)

// M6BlockChain: host-side interpreter throughput with cross-page superblock
// continuation and block chaining on vs off (icache, superblocks, threaded
// dispatch and the write memo stay on in both arms, so the comparison
// isolates the chaining layer on top of PR 3/4/5). Guest cycles and retired
// instructions must be byte-identical in both configurations — enforced
// below, and proven in full by the differential suites in internal/vcpu and
// internal/guest — while host nanoseconds per guest instruction drop. The
// workloads are the layer's target shapes: an unrolled ALU body longer than
// a code page (every iteration's block run crosses page boundaries mid-run)
// and a short loop parked across a boundary (the unchained arm pays a full
// fetch translation and icache lookup at the boundary and the back edge of
// every iteration). Only the RunToHalt phase is timed, after a warm-up run
// per configuration; the chained arm's rows also report the chain-cache
// counters, which are deterministic in a serial run.
func M6BlockChain() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"mode", "workload", "config", "guest instrs", "guest cycles", "host ns/instr", "speedup", "chain",
	}}

	type stream struct {
		kind   guest.StreamKind
		iters  uint64
		unroll uint64
	}
	streams := []stream{
		{guest.StreamXPageALU, scaled(8000), 2200},
		{guest.StreamXPageLoop, scaled(900000), 12},
	}

	for _, mode := range []core.Mode{core.ModeNative, core.ModeHW} {
		for _, s := range streams {
			img, err := guest.BuildStreamProgram(s.kind, s.iters, s.unroll)
			if err != nil {
				return nil, err
			}
			type result struct {
				vm     *core.VM
				hostNs float64
			}
			run := func(noChain bool) (result, error) {
				vm, err := newVM(mode, func(c *core.Config) { c.NoBlockChain = noChain })
				if err != nil {
					return result{}, err
				}
				if err := vm.Boot(img); err != nil {
					return result{}, err
				}
				start := time.Now()
				st := vm.RunToHalt(benchBudget)
				elapsed := float64(time.Since(start).Nanoseconds())
				if st != core.StateHalted || vm.HaltCode != 0 {
					return result{}, fmt.Errorf("bench: M6 %v/%v guest ended %v halt %#x",
						mode, s.kind, st, vm.HaltCode)
				}
				return result{vm, elapsed}, nil
			}
			// Warm both configurations before measuring.
			for _, warm := range []bool{true, false} {
				if _, err := run(warm); err != nil {
					return nil, err
				}
			}
			off, err := run(true)
			if err != nil {
				return nil, err
			}
			on, err := run(false)
			if err != nil {
				return nil, err
			}
			// The transparency property, enforced at benchmark time.
			if on.vm.CPU.Cycles != off.vm.CPU.Cycles || on.vm.CPU.Instret != off.vm.CPU.Instret {
				return nil, fmt.Errorf("bench: block chaining is not invisible: on (cyc=%d ret=%d) off (cyc=%d ret=%d)",
					on.vm.CPU.Cycles, on.vm.CPU.Instret, off.vm.CPU.Cycles, off.vm.CPU.Instret)
			}
			ic := on.vm.CPU.ICache.Stats
			instrs := float64(on.vm.CPU.Instret)
			nsOff := off.hostNs / instrs
			nsOn := on.hostNs / instrs
			t.AddRow(mode.String(), s.kind.String(), "reference", fmt.Sprintf("%.0f", instrs),
				fmt.Sprint(off.vm.CPU.Cycles), fmt.Sprintf("%.1f", nsOff), "1.00x", "-")
			t.AddRow(mode.String(), s.kind.String(), "chained", fmt.Sprintf("%.0f", instrs),
				fmt.Sprint(on.vm.CPU.Cycles), fmt.Sprintf("%.1f", nsOn),
				fmt.Sprintf("%.2fx", nsOff/nsOn),
				fmt.Sprintf("%d hits / %d crossings", ic.ChainHits, ic.Crossings))
		}
	}
	return t, nil
}
