package bench

import (
	"fmt"
	"time"

	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/guest"
	"govisor/internal/isa"
	"govisor/internal/metrics"
	"govisor/internal/sched"
	"govisor/internal/vnet"
)

// m9Pairs is the M9 fleet size: 8 unicast flows = 16 VMs on one shared
// switch, every sender kicking batched virtio-net TX chains at a passive
// receiver that posted its whole RX ring up front.
const m9Pairs = 8

// m9Fleet builds the dataplane storm: 2×m9Pairs VMs around one switch.
// PCPUs is fixed at the fleet size so the epoch schedule — and therefore
// every simulated number — is identical at every worker count (the M2
// pattern). Receiver MACs are statically installed in the FDB; passive
// receivers never transmit, so the switch cannot learn them.
func m9Fleet(frames, batch, frameLen uint64, nospan bool) (*core.Host, *vnet.Switch, error) {
	const vms = 2 * m9Pairs
	sw := vnet.NewSwitch()
	h := core.NewHost(uint64(vms+2)*(benchRAM>>isa.PageShift), vms, sched.NewCredit())
	for i := 0; i < m9Pairs; i++ {
		srcMAC := vnet.MACForVM(uint32(2 * i))
		dstMAC := vnet.MACForVM(uint32(2*i + 1))

		send, err := h.CreateVM(core.Config{
			Name: fmt.Sprintf("m9-tx%d", i), Mode: core.ModeHW, MemBytes: benchRAM,
			NoSpanDMA: nospan,
		})
		if err != nil {
			return nil, nil, err
		}
		if _, _, err := send.AttachVirtioNet(sw.NewPort()); err != nil {
			return nil, nil, err
		}
		prog, err := guest.BuildVirtioNetUnicastProgram(frames, batch, frameLen, 0, srcMAC, dstMAC)
		if err != nil {
			return nil, nil, err
		}
		if err := send.Boot(prog); err != nil {
			return nil, nil, err
		}
		h.AddToScheduler(2*i, 256, 0)

		recv, err := h.CreateVM(core.Config{
			Name: fmt.Sprintf("m9-rx%d", i), Mode: core.ModeHW, MemBytes: benchRAM,
			NoSpanDMA: nospan,
		})
		if err != nil {
			return nil, nil, err
		}
		rxPort := sw.NewPort()
		if _, _, err := recv.AttachVirtioNet(rxPort); err != nil {
			return nil, nil, err
		}
		sw.Learn(dstMAC, rxPort)
		rprog, err := guest.BuildVirtioNetRXProgram(frames, 12+frameLen, 0)
		if err != nil {
			return nil, nil, err
		}
		if err := recv.Boot(rprog); err != nil {
			return nil, nil, err
		}
		h.AddToScheduler(2*i+1, 256, 0)
	}
	return h, sw, nil
}

// M9Dataplane: host-side throughput of the virtio-net dataplane storm —
// 8 unicast sender→receiver flows over one shared switch under RunParallel —
// with the span-DMA memo on (at 1 and 4 workers) against the unmemoized
// NoSpanDMA reference arm. Timestamp-ordered epoch-barrier delivery and the
// span memo must be architecturally invisible: guest cycles, retired
// instructions, the host clock and every switch counter are byte-identical
// across all arms and worker counts — enforced here at bench time, and
// proven in full (registers, CSRs, RAM hashes, VMM/MMU/TLB stats, serial
// engine included) by TestDifferentialDataplaneInvisible. The gated
// measurement is host ns per guest instruction; frames forwarded is pure
// simulated output.
func M9Dataplane() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"config", "workers", "guest instrs", "guest cycles (vm0)", "forwarded", "host ns/instr", "speedup",
	}}

	batch := uint64(16)
	frames := scaled(512)
	frames = (frames + batch - 1) / batch * batch // kick batches must divide
	const frameLen = 256

	type result struct {
		instret uint64
		cycles  uint64
		now     uint64
		fwd     uint64
		hostNs  float64
	}
	run := func(workers int, nospan bool) (result, error) {
		h, sw, err := m9Fleet(frames, batch, frameLen, nospan)
		if err != nil {
			return result{}, err
		}
		start := time.Now()
		h.RunParallel(workers, benchBudget)
		elapsed := float64(time.Since(start).Nanoseconds())
		if !h.AllHalted() {
			return result{}, fmt.Errorf("bench: M9 fleet did not halt (workers=%d nospan=%v)", workers, nospan)
		}
		var instret uint64
		for _, vm := range h.VMs {
			if vm.HaltCode != 0 {
				return result{}, fmt.Errorf("bench: M9 guest %s halt %#x cause %d",
					vm.Name, vm.HaltCode, vm.Result(gabi.PResult3))
			}
			instret += vm.CPU.Instret
		}
		fwd, flooded, dropped := sw.Stats()
		if want := uint64(m9Pairs) * frames; fwd != want || flooded != 0 || dropped != 0 {
			return result{}, fmt.Errorf("bench: M9 switch fwd=%d flood=%d drop=%d, want %d unicast forwards",
				fwd, flooded, dropped, want)
		}
		return result{instret, h.VMs[0].CPU.Cycles, h.Now, fwd, elapsed}, nil
	}

	arms := []struct {
		config  string
		workers int
		nospan  bool
	}{
		{"reference (NoSpanDMA)", 1, true},
		{"dataplane", 1, false},
		{"dataplane", 4, false},
	}
	// Warm allocator and host caches with one throwaway run per arm.
	for _, a := range arms {
		if _, err := run(a.workers, a.nospan); err != nil {
			return nil, err
		}
	}
	var base result
	for i, a := range arms {
		r, err := run(a.workers, a.nospan)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = r
		}
		// The transparency property, enforced at benchmark time: neither the
		// span memo nor the worker count may leak into anything the
		// simulation can observe.
		if r.cycles != base.cycles || r.instret != base.instret || r.now != base.now || r.fwd != base.fwd {
			return nil, fmt.Errorf("bench: M9 dataplane not invisible (%s w=%d): "+
				"(cyc=%d ret=%d now=%d fwd=%d) vs (cyc=%d ret=%d now=%d fwd=%d)",
				a.config, a.workers, r.cycles, r.instret, r.now, r.fwd,
				base.cycles, base.instret, base.now, base.fwd)
		}
		nsBase := base.hostNs / float64(base.instret)
		ns := r.hostNs / float64(r.instret)
		t.AddRow(a.config, fmt.Sprint(a.workers), fmt.Sprint(r.instret),
			fmt.Sprint(r.cycles), fmt.Sprint(r.fwd),
			fmt.Sprintf("%.1f", ns), fmt.Sprintf("%.2fx", nsBase/ns))
	}
	return t, nil
}
