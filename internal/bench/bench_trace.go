package bench

import (
	"fmt"
	"time"

	"govisor/internal/core"
	"govisor/internal/guest"
	"govisor/internal/metrics"
)

// M8HotTraces: host-side interpreter throughput with hot-trace formation on
// vs off (icache, superblocks, threaded dispatch, the write memo and block
// chaining stay on in both arms, so the comparison isolates the trace layer
// on top of PR 7's chain cache). Guest cycles and retired instructions must
// be byte-identical in both configurations — enforced below, and proven in
// full by the differential suites in internal/vcpu and internal/guest —
// while host nanoseconds per guest instruction drop. The workloads are the
// layer's target shapes: the short loop parked across a page boundary (a
// closed-loop trace iterates inside the engine, paying the outer fetch loop
// once per pass instead of twice per iteration), the page-crossing unrolled
// ALU body, and the in-page ALU stream as a floor check. Only the RunToHalt
// phase is timed, after a warm-up run per configuration; the traced arm's
// rows also report the trace telemetry (formations / entries / demotions),
// which is deterministic in a serial run.
func M8HotTraces() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"mode", "workload", "config", "guest instrs", "guest cycles", "host ns/instr", "speedup", "traces",
	}}

	type stream struct {
		kind   guest.StreamKind
		iters  uint64
		unroll uint64
	}
	streams := []stream{
		{guest.StreamXPageLoop, scaled(900000), 12},
		{guest.StreamXPageALU, scaled(8000), 2200},
		{guest.StreamALU, scaled(30000), 512},
	}

	for _, mode := range []core.Mode{core.ModeNative, core.ModeHW} {
		for _, s := range streams {
			img, err := guest.BuildStreamProgram(s.kind, s.iters, s.unroll)
			if err != nil {
				return nil, err
			}
			type result struct {
				vm     *core.VM
				hostNs float64
			}
			run := func(noTraces bool) (result, error) {
				vm, err := newVM(mode, func(c *core.Config) { c.NoTraces = noTraces })
				if err != nil {
					return result{}, err
				}
				if err := vm.Boot(img); err != nil {
					return result{}, err
				}
				start := time.Now()
				st := vm.RunToHalt(benchBudget)
				elapsed := float64(time.Since(start).Nanoseconds())
				if st != core.StateHalted || vm.HaltCode != 0 {
					return result{}, fmt.Errorf("bench: M8 %v/%v guest ended %v halt %#x",
						mode, s.kind, st, vm.HaltCode)
				}
				return result{vm, elapsed}, nil
			}
			// Warm both configurations before measuring.
			for _, warm := range []bool{true, false} {
				if _, err := run(warm); err != nil {
					return nil, err
				}
			}
			off, err := run(true)
			if err != nil {
				return nil, err
			}
			on, err := run(false)
			if err != nil {
				return nil, err
			}
			// The transparency property, enforced at benchmark time.
			if on.vm.CPU.Cycles != off.vm.CPU.Cycles || on.vm.CPU.Instret != off.vm.CPU.Instret {
				return nil, fmt.Errorf("bench: hot traces are not invisible: on (cyc=%d ret=%d) off (cyc=%d ret=%d)",
					on.vm.CPU.Cycles, on.vm.CPU.Instret, off.vm.CPU.Cycles, off.vm.CPU.Instret)
			}
			ic := on.vm.CPU.ICache.Stats
			instrs := float64(on.vm.CPU.Instret)
			nsOff := off.hostNs / instrs
			nsOn := on.hostNs / instrs
			t.AddRow(mode.String(), s.kind.String(), "reference", fmt.Sprintf("%.0f", instrs),
				fmt.Sprint(off.vm.CPU.Cycles), fmt.Sprintf("%.1f", nsOff), "1.00x", "-")
			t.AddRow(mode.String(), s.kind.String(), "traced", fmt.Sprintf("%.0f", instrs),
				fmt.Sprint(on.vm.CPU.Cycles), fmt.Sprintf("%.1f", nsOn),
				fmt.Sprintf("%.2fx", nsOff/nsOn),
				fmt.Sprintf("%d formed / %d entries / %d demotions", ic.TraceFormations, ic.TraceEntries, ic.TraceDemotions))
		}
	}
	return t, nil
}
