package bench

import (
	"fmt"
	"time"

	"govisor/internal/core"
	"govisor/internal/guest"
	"govisor/internal/metrics"
)

// M5WriteMemo: host-side interpreter throughput with the write-path
// memoization engine (mmu.TranslateWrite + mem.WriteUintFast with coalesced
// version bumps, plus the read-memo RAM-verdict fold on loads) vs the
// unmemoized store path, on store-dense and mixed stream guests. The icache,
// superblocks and threaded dispatch stay on in both arms, so the comparison
// isolates the write memo on top of PR 4's baseline. Like M1/M3/M4 this is a
// microbenchmark of the simulator, not the simulated machine: guest cycles,
// retired instructions and dirty accounting must be byte-identical in both
// configurations — enforced below, and proven in full by
// TestDifferentialWriteMemo{Invisible,Parallel} — while host nanoseconds per
// guest instruction drop. Only the RunToHalt phase is timed, after a warm-up
// run per configuration.
func M5WriteMemo() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"mode", "workload", "config", "guest instrs", "guest cycles", "host ns/instr", "speedup", "memo",
	}}

	type stream struct {
		kind   guest.StreamKind
		iters  uint64
		unroll uint64
	}
	streams := []stream{
		{guest.StreamStore, scaled(20000), 512},
		{guest.StreamMixed, scaled(20000), 512},
	}

	for _, mode := range []core.Mode{core.ModeNative, core.ModeHW} {
		for _, s := range streams {
			img, err := guest.BuildStreamProgram(s.kind, s.iters, s.unroll)
			if err != nil {
				return nil, err
			}
			type result struct {
				vm     *core.VM
				hostNs float64
			}
			run := func(noMemo bool) (result, error) {
				vm, err := newVM(mode, func(c *core.Config) { c.NoWriteMemo = noMemo })
				if err != nil {
					return result{}, err
				}
				if err := vm.Boot(img); err != nil {
					return result{}, err
				}
				start := time.Now()
				st := vm.RunToHalt(benchBudget)
				elapsed := float64(time.Since(start).Nanoseconds())
				if st != core.StateHalted || vm.HaltCode != 0 {
					return result{}, fmt.Errorf("bench: M5 %v/%v guest ended %v halt %#x",
						mode, s.kind, st, vm.HaltCode)
				}
				return result{vm, elapsed}, nil
			}
			// Warm both configurations before measuring.
			for _, warm := range []bool{true, false} {
				if _, err := run(warm); err != nil {
					return nil, err
				}
			}
			off, err := run(true)
			if err != nil {
				return nil, err
			}
			on, err := run(false)
			if err != nil {
				return nil, err
			}
			// The transparency property, enforced at benchmark time: time,
			// retirement and the guest-visible dirty accounting must agree.
			if on.vm.CPU.Cycles != off.vm.CPU.Cycles || on.vm.CPU.Instret != off.vm.CPU.Instret ||
				on.vm.Mem.DirtySets != off.vm.Mem.DirtySets {
				return nil, fmt.Errorf("bench: write memo is not invisible: memo (cyc=%d ret=%d dirty=%d) plain (cyc=%d ret=%d dirty=%d)",
					on.vm.CPU.Cycles, on.vm.CPU.Instret, on.vm.Mem.DirtySets,
					off.vm.CPU.Cycles, off.vm.CPU.Instret, off.vm.Mem.DirtySets)
			}
			if on.vm.Mem.WMemoHits == 0 {
				return nil, fmt.Errorf("bench: M5 %v/%v memo arm never hit the write memo", mode, s.kind)
			}
			instrs := float64(on.vm.CPU.Instret)
			nsOff := off.hostNs / instrs
			nsOn := on.hostNs / instrs
			t.AddRow(mode.String(), s.kind.String(), "resolve", fmt.Sprintf("%.0f", instrs),
				fmt.Sprint(off.vm.CPU.Cycles), fmt.Sprintf("%.1f", nsOff), "1.00x", "-")
			t.AddRow(mode.String(), s.kind.String(), "write-memo", fmt.Sprintf("%.0f", instrs),
				fmt.Sprint(on.vm.CPU.Cycles), fmt.Sprintf("%.1f", nsOn),
				fmt.Sprintf("%.2fx", nsOff/nsOn), WriteMemoCounters(on.vm).String())
		}
	}
	return t, nil
}

// WriteMemoCounters exposes one VM's write-memo telemetry in the counter-set
// form the benchmark tables and EXPERIMENTS.md consume.
func WriteMemoCounters(vm *core.VM) *metrics.CounterSet {
	s := &metrics.CounterSet{}
	s.Add("wmemo_hits", vm.Mem.WMemoHits)
	s.Add("wmemo_fills", vm.Mem.WMemoFills)
	s.Add("write_epoch_bumps", vm.Mem.WriteEpoch())
	return s
}
