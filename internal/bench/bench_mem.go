package bench

import (
	"fmt"

	"govisor/internal/balloon"
	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/guest"
	"govisor/internal/isa"
	"govisor/internal/ksm"
	"govisor/internal/mem"
	"govisor/internal/metrics"
	"govisor/internal/migrate"
)

// F7Migration: total time and downtime vs dirty rate for the three
// algorithms.
func F7Migration() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"algorithm", "dirty load", "total (Mcyc)", "downtime (Mcyc)", "sent (MiB)", "rounds", "converged",
	}}
	loads := []struct {
		name         string
		pages, think uint64
	}{
		{"light (8pg)", 8, 5000},
		{"medium (128pg)", 128, 500},
		{"heavy (512pg)", 512, 0},
	}
	algs := []struct {
		name string
		mode migrate.Mode
	}{
		{"pre-copy", migrate.PreCopy},
		{"stop-and-copy", migrate.StopAndCopy},
		{"post-copy", migrate.PostCopy},
	}
	for _, load := range loads {
		for _, alg := range algs {
			src, dst, err := migrationPair(load.pages, load.think)
			if err != nil {
				return nil, err
			}
			opt := migrate.DefaultOptions()
			opt.Mode = alg.mode
			if alg.mode == migrate.PostCopy {
				opt.PostCopyPushChunk = 256
			}
			rep, err := migrate.Migrate(src, dst, opt)
			if err != nil {
				return nil, err
			}
			t.AddRow(alg.name, load.name,
				fmt.Sprintf("%.2f", float64(rep.TotalCycles)/1e6),
				fmt.Sprintf("%.3f", float64(rep.DowntimeCycles)/1e6),
				fmt.Sprintf("%.1f", float64(rep.BytesSent)/(1<<20)),
				fmt.Sprint(len(rep.Rounds)),
				fmt.Sprint(rep.Converged))
		}
	}
	return t, nil
}

func migrationPair(pages, think uint64) (*core.VM, *core.VM, error) {
	kernel, err := guest.BuildKernel()
	if err != nil {
		return nil, nil, err
	}
	pool := mem.NewPool(benchPool)
	src, err := core.NewVM(pool, core.Config{Name: "src", Mode: core.ModeHW, MemBytes: benchRAM})
	if err != nil {
		return nil, nil, err
	}
	guest.Dirty(0, pages, think).Apply(src)
	if err := src.Boot(kernel); err != nil {
		return nil, nil, err
	}
	src.Step(10_000_000)
	dst, err := core.NewVM(pool, core.Config{Name: "dst", Mode: core.ModeHW, MemBytes: benchRAM})
	if err != nil {
		return nil, nil, err
	}
	return src, dst, nil
}

// F8PrecopyRounds: pages sent per pre-copy round at two dirty rates.
func F8PrecopyRounds() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{"round", "pages (slow dirtier)", "pages (fast dirtier)"}}
	roundsFor := func(pages, think uint64, maxRounds int) ([]migrate.Round, error) {
		src, dst, err := migrationPair(pages, think)
		if err != nil {
			return nil, err
		}
		opt := migrate.DefaultOptions()
		opt.MaxRounds = maxRounds
		opt.StopThresholdPages = 4
		rep, err := migrate.Migrate(src, dst, opt)
		if err != nil {
			return nil, err
		}
		return rep.Rounds, nil
	}
	slow, err := roundsFor(96, 2000, 10)
	if err != nil {
		return nil, err
	}
	fast, err := roundsFor(512, 0, 10)
	if err != nil {
		return nil, err
	}
	n := len(slow)
	if len(fast) > n {
		n = len(fast)
	}
	for i := 0; i < n; i++ {
		s, f := "-", "-"
		if i < len(slow) {
			s = fmt.Sprint(slow[i].Pages)
		}
		if i < len(fast) {
			f = fmt.Sprint(fast[i].Pages)
		}
		t.AddRow(fmt.Sprint(i), s, f)
	}
	return t, nil
}

// A3PrecopyBounds: ablation — downtime/total vs MaxRounds for a hot guest.
func A3PrecopyBounds() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{"max rounds", "total (Mcyc)", "downtime (Mcyc)", "sent (MiB)"}}
	for _, rounds := range []int{1, 3, 5, 10, 20} {
		src, dst, err := migrationPair(256, 100)
		if err != nil {
			return nil, err
		}
		opt := migrate.DefaultOptions()
		opt.MaxRounds = rounds
		opt.StopThresholdPages = 8
		rep, err := migrate.Migrate(src, dst, opt)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(rounds),
			fmt.Sprintf("%.2f", float64(rep.TotalCycles)/1e6),
			fmt.Sprintf("%.3f", float64(rep.DowntimeCycles)/1e6),
			fmt.Sprintf("%.1f", float64(rep.BytesSent)/(1<<20)))
	}
	return t, nil
}

// F9Dedup: host frames saved by page sharing vs number of identical VMs.
func F9Dedup() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"VMs", "frames before", "frames after", "saved", "saved/VM", "bytes hashed (KiB)",
	}}
	kernel, err := guest.BuildKernel()
	if err != nil {
		return nil, err
	}
	for _, n := range []int{2, 4, 8, 16} {
		pool := mem.NewPool(uint64(n+2) * (benchRAM >> isa.PageShift))
		var spaces []*mem.GuestPhys
		for i := 0; i < n; i++ {
			vm, err := core.NewVM(pool, core.Config{
				Name: fmt.Sprintf("vm%d", i), Mode: core.ModeHW, MemBytes: benchRAM,
			})
			if err != nil {
				return nil, err
			}
			guest.MemTouch(1, 64, 0).Apply(vm)
			if err := vm.Boot(kernel); err != nil {
				return nil, err
			}
			if st := vm.RunToHalt(benchBudget); st != core.StateHalted {
				return nil, fmt.Errorf("bench: dedup guest %d ended %v", i, st)
			}
			spaces = append(spaces, vm.Mem)
		}
		before := pool.InUse()
		sc := ksm.NewScanner(pool)
		sc.ScanAll(spaces)
		after := pool.InUse()
		t.AddRow(fmt.Sprint(n), fmt.Sprint(before), fmt.Sprint(after),
			fmt.Sprint(before-after),
			fmt.Sprintf("%.1f", float64(before-after)/float64(n)),
			fmt.Sprint(sc.Stats.HashBytes/1024))
	}
	return t, nil
}

// T10Balloon: throughput under memory overcommit with balloon reclaim.
func T10Balloon() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"overcommit", "host frames", "guest work", "swap-ins", "slowdown",
	}}
	kernel, err := guest.BuildKernel()
	if err != nil {
		return nil, err
	}
	const wsPages = 900
	var baseline float64
	// Sweep the host pool from generous to starved relative to the guest's
	// roughly 1000-page footprint (workload + kernel + tables).
	for _, frames := range []uint64{2048, 1100, 1000, 900, 800} {
		pool := mem.NewPool(frames)
		vm, err := core.NewVM(pool, core.Config{Name: "oc", Mode: core.ModeHW, MemBytes: benchRAM})
		if err != nil {
			return nil, err
		}
		swap := balloon.NewSwapper()
		ctl := &balloon.Controller{Policy: balloon.DefaultPolicy(), Pool: pool,
			Spaces: []*mem.GuestPhys{vm.Mem}, Swap: swap}
		vm.ReclaimHook = func() bool { return ctl.ReclaimOne() }
		source := swap.Source(vm.Mem)
		vm.PageSource = func(gfn uint64) ([]byte, bool) {
			page, ok := source(gfn)
			if ok {
				// Swap-in pays an SSD-class latency (~20 µs).
				vm.CPU.AddCycles(20_000)
			}
			return page, ok
		}
		guest.MemTouch(6, wsPages, 20).Apply(vm)
		if err := vm.Boot(kernel); err != nil {
			return nil, err
		}
		if st := vm.RunToHalt(benchBudget); st != core.StateHalted {
			return nil, fmt.Errorf("bench: balloon guest ended %v (%v)", st, vm.Err)
		}
		cyc := float64(region(vm))
		if baseline == 0 {
			baseline = cyc
		}
		ratio := float64(wsPages+100) / float64(frames)
		t.AddRow(fmt.Sprintf("%.2fx", ratio), fmt.Sprint(frames),
			fmt.Sprintf("%.0f Mcyc", cyc/1e6),
			fmt.Sprint(swap.SwapIns),
			fmt.Sprintf("%.2fx", cyc/baseline))
	}
	return t, nil
}

// T14Provision: snapshot/restore and clone latency vs guest size, measured
// in pages copied (the deterministic cost driver).
func T14Provision() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"guest footprint (pages)", "snapshot bytes", "restore fills", "clone page copies",
	}}
	kernel, err := guest.BuildKernel()
	if err != nil {
		return nil, err
	}
	for _, ws := range []uint64{64, 256, 1024} {
		pool := mem.NewPool(benchPool)
		vm, err := core.NewVM(pool, core.Config{Name: "p", Mode: core.ModeHW, MemBytes: benchRAM})
		if err != nil {
			return nil, err
		}
		guest.MemTouch(1, ws, 100).Apply(vm)
		if err := vm.Boot(kernel); err != nil {
			return nil, err
		}
		if st := vm.RunToHalt(benchBudget); st != core.StateHalted {
			return nil, fmt.Errorf("bench: provision guest ended %v", st)
		}
		vm.Pause()

		var buf countWriter
		if err := saveSnapshot(vm, &buf); err != nil {
			return nil, err
		}
		// Clone: frames copied up-front is always zero (COW); record the
		// present set as what a full copy would have moved.
		clone, err := core.NewVM(pool, core.Config{Name: "c", Mode: core.ModeHW, MemBytes: benchRAM})
		if err != nil {
			return nil, err
		}
		inUse := pool.InUse()
		if err := cloneVM(vm, clone); err != nil {
			return nil, err
		}
		copies := pool.InUse() - inUse

		t.AddRow(fmt.Sprint(vm.Mem.Present()),
			fmt.Sprint(buf.n),
			fmt.Sprint(vm.Mem.Present()), // restore populates this many
			fmt.Sprint(copies))
	}
	return t, nil
}

// F15 depends only on the storage layer; see bench_storage.go.

// gabi import is used by runKernel error paths.
var _ = gabi.PResult0
