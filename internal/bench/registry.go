package bench

import "govisor/internal/metrics"

// Experiment is one reproduced table or figure.
type Experiment struct {
	ID    string // table/figure number in EXPERIMENTS.md
	Name  string
	Run   func() (*metrics.Table, error)
	Notes string // the expected shape, stated up front
}

// All lists every reproduced experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"T1", "Privileged-operation microbenchmarks", T1PrivilegedOps,
			"trap&emulate ≫ para > hw-assist ≈ native for privileged ops"},
		{"T2", "VM-exit cost breakdown", T2ExitLatency,
			"the fixed world-switch cost dominates every exit"},
		{"F3", "Slowdown vs privileged-op density", F3PrivDensity,
			"all modes ≈ native at zero density; trap&emulate degrades steepest"},
		{"F4", "Working-set sweep: shadow vs nested paging", F4WorkingSet,
			"beyond TLB reach, nested pays 2-D walks and trails shadow"},
		{"F5", "Page-table churn across modes", F5PTChurn,
			"shadow worst (write-protect traps), para recovers via hypercalls, nested best"},
		{"T6", "I/O paths: emulated vs virtio", T6IOPath,
			"virtio collapses exits/op and wins ≥5× on cycles"},
		{"F7", "Live migration: downtime vs dirty rate", F7Migration,
			"pre-copy downtime grows with dirty rate; post-copy stays flat"},
		{"F8", "Pre-copy convergence rounds", F8PrecopyRounds,
			"geometric decay below link rate; plateau above it"},
		{"F9", "Content-based page sharing", F9Dedup,
			"savings scale with identical-VM count; scan cost linear in pages"},
		{"T10", "Ballooning under overcommit", T10Balloon,
			"mild slowdown until working sets stop fitting, then a cliff"},
		{"F11", "Scheduler fairness and wakeup latency", F11SchedFairness,
			"credit/cfs near-1.0 Jain; boost keeps latency VM responsive"},
		{"T12", "Weight and cap enforcement", T12WeightCap,
			"measured shares track configured weights within a few percent"},
		{"T13", "Consolidation scaling", T13Consolidation,
			"near-linear to the core count, then proportional sharing"},
		{"T14", "Provisioning: snapshot vs COW clone", T14Provision,
			"snapshot cost scales with footprint; clones are O(1)"},
		{"F15", "COW image chain depth", F15COWDepth,
			"reads fall through deeper chains; first-writes pay one copy-up"},
		{"A1", "Ablation: paravirtual MMU batching", A1ParaBatching,
			"multicall batching amortizes the hypercall round trip"},
		{"A2", "Ablation: TLB ASID tagging", A2ASIDFlush,
			"flush-on-switch costs extra misses after every world switch"},
		{"A3", "Ablation: pre-copy round bound", A3PrecopyBounds,
			"more rounds trade total time for downtime until convergence stalls"},
		{"A4", "Ablation: virtio queue depth", A4QueueDepth,
			"deeper batches amortize the doorbell exit until it stops mattering"},
		{"M1", "Simulator: decoded-instruction block cache", M1ICache,
			"≥2× lower host ns/guest-instr with identical guest cycles (the cache is architecturally invisible)"},
		{"M2", "Simulator: parallel host execution scale-out", M2ParallelFleet,
			"8-VM fleet wall-clock drops ≈ min(workers, host cores)× with byte-identical guest state at every worker count"},
		{"M3", "Simulator: superblock execution engine", M3Superblocks,
			"≥1.5× lower host ns/guest-instr on straight-line workloads with identical guest cycles (blocks are architecturally invisible)"},
		{"M4", "Simulator: threaded dispatch engine", M4Dispatch,
			"≥1.2× lower host ns/guest-instr on the ALU stream vs the dispatch switch with identical guest cycles (decode-time executor resolution is architecturally invisible)"},
		{"M5", "Simulator: write-path memoization engine", M5WriteMemo,
			"≥1.5× lower host ns/guest-instr on the store-dense stream vs per-store resolution with identical guest cycles and dirty accounting (the write memo is architecturally invisible)"},
		{"M6", "Simulator: cross-page superblocks and block chaining", M6BlockChain,
			"≥1.2× lower host ns/guest-instr on the cross-page streams vs NoBlockChain with identical guest cycles (chaining is architecturally invisible)"},
		{"M7", "Resilience: streamed-migration host evacuation", M7Evacuation,
			"every VM drains byte-identically over real wire connections, clean and under the seeded fault schedule; downtime percentiles, retries and resumes are deterministic"},
		{"M8", "Simulator: hot-trace formation on the chain cache", M8HotTraces,
			"boundary-straddling loop <7 host ns/guest-instr and ALU streams <6 vs NoTraces with identical guest cycles (traces are architecturally invisible)"},
		{"M9", "Dataplane: span-DMA memo and sharded timestamp-ordered switch", M9Dataplane,
			"16-VM unicast storm: lower host ns/guest-instr than the NoSpanDMA arm with byte-identical guest cycles, host clock and switch counters across arms and worker counts"},
	}
}
