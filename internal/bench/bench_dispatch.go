package bench

import (
	"fmt"
	"time"

	"govisor/internal/core"
	"govisor/internal/guest"
	"govisor/internal/metrics"
)

// M4Dispatch: host-side interpreter throughput with threaded dispatch
// (decode-time-resolved executor table) vs the original `switch in.Op`
// interpreter, on the M3 stream guests. The icache and superblocks stay on
// in both arms, so the comparison isolates the dispatch engine — including
// the block-specialized ALU path — on top of PR 3's baseline. Like M1/M3
// this is a microbenchmark of the simulator, not the simulated machine:
// guest cycles and retired instructions must be byte-identical in both
// configurations — enforced below, and proven in full by
// TestDifferentialThreadedDispatch{Invisible,Parallel} — while host
// nanoseconds per guest instruction drop. Only the RunToHalt phase is
// timed, after a warm-up run per configuration.
func M4Dispatch() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"mode", "workload", "config", "guest instrs", "guest cycles", "host ns/instr", "speedup",
	}}

	type stream struct {
		kind   guest.StreamKind
		iters  uint64
		unroll uint64
	}
	streams := []stream{
		{guest.StreamALU, scaled(30000), 512},
		{guest.StreamCopy, scaled(20000), 512},
	}

	for _, mode := range []core.Mode{core.ModeNative, core.ModeHW} {
		for _, s := range streams {
			img, err := guest.BuildStreamProgram(s.kind, s.iters, s.unroll)
			if err != nil {
				return nil, err
			}
			type result struct {
				vm     *core.VM
				hostNs float64
			}
			run := func(noThreaded bool) (result, error) {
				vm, err := newVM(mode, func(c *core.Config) { c.NoThreadedDispatch = noThreaded })
				if err != nil {
					return result{}, err
				}
				if err := vm.Boot(img); err != nil {
					return result{}, err
				}
				start := time.Now()
				st := vm.RunToHalt(benchBudget)
				elapsed := float64(time.Since(start).Nanoseconds())
				if st != core.StateHalted || vm.HaltCode != 0 {
					return result{}, fmt.Errorf("bench: M4 %v/%v guest ended %v halt %#x",
						mode, s.kind, st, vm.HaltCode)
				}
				return result{vm, elapsed}, nil
			}
			// Warm both configurations before measuring.
			for _, warm := range []bool{true, false} {
				if _, err := run(warm); err != nil {
					return nil, err
				}
			}
			off, err := run(true)
			if err != nil {
				return nil, err
			}
			on, err := run(false)
			if err != nil {
				return nil, err
			}
			// The transparency property, enforced at benchmark time.
			if on.vm.CPU.Cycles != off.vm.CPU.Cycles || on.vm.CPU.Instret != off.vm.CPU.Instret {
				return nil, fmt.Errorf("bench: threaded dispatch is not invisible: threaded (cyc=%d ret=%d) switch (cyc=%d ret=%d)",
					on.vm.CPU.Cycles, on.vm.CPU.Instret, off.vm.CPU.Cycles, off.vm.CPU.Instret)
			}
			instrs := float64(on.vm.CPU.Instret)
			nsOff := off.hostNs / instrs
			nsOn := on.hostNs / instrs
			t.AddRow(mode.String(), s.kind.String(), "switch", fmt.Sprintf("%.0f", instrs),
				fmt.Sprint(off.vm.CPU.Cycles), fmt.Sprintf("%.1f", nsOff), "1.00x")
			t.AddRow(mode.String(), s.kind.String(), "threaded", fmt.Sprintf("%.0f", instrs),
				fmt.Sprint(on.vm.CPU.Cycles), fmt.Sprintf("%.1f", nsOn),
				fmt.Sprintf("%.2fx", nsOff/nsOn))
		}
	}
	return t, nil
}
