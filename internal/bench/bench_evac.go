package bench

import (
	"fmt"
	"sort"
	"time"

	"govisor/internal/core"
	"govisor/internal/faultnet"
	"govisor/internal/guest"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/metrics"
	"govisor/internal/migrate"
)

// evacRAM keeps the drill VMs small enough that draining a whole host of
// them stays in benchmark budget; the streams still cross hundreds of
// frames per VM.
const evacRAM = 2 << 20

// M7Evacuation: host-evacuation drill over the streamed migration engine.
// A fleet of VMs with staggered dirty footprints is drained one by one to
// fresh destinations through real wire connections (net.Pipe), once over a
// clean transport and once under the deterministic faultnet schedule
// (seeds 42+i). Every migration must complete — under faults that means
// surviving injected resets, partial writes, corruption and delay spikes
// via retry, backoff and round-resume. The simulated columns (downtime
// percentiles, retries, resumes, faults, bytes) are deterministic; only
// host ns/instr measures the host.
func M7Evacuation() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"scenario", "vms", "downtime P50 (Kcyc)", "downtime P99 (Kcyc)",
		"retries", "resumes", "faults", "sent (MiB)", "host ns/instr",
	}}
	const vms = 6
	scenarios := []struct {
		name    string
		faulted bool
	}{
		{"clean drain", false},
		{"faulted drain (seed 42)", true},
	}
	kernel, err := guest.BuildKernel()
	if err != nil {
		return nil, err
	}
	for _, sc := range scenarios {
		var (
			downtimes []uint64
			retries   uint64
			resumes   uint64
			faults    uint64
			sent      uint64
			instrs    uint64
		)
		start := time.Now()
		for i := 0; i < vms; i++ {
			pool := mem.NewPool(4 * evacRAM >> isa.PageShift)
			src, err := core.NewVM(pool, core.Config{
				Name: fmt.Sprintf("evac-src-%d", i), Mode: core.ModeHW, MemBytes: evacRAM,
			})
			if err != nil {
				return nil, err
			}
			// Staggered dirty footprints spread the per-VM downtimes, so
			// the percentile columns summarize a real distribution.
			guest.Dirty(0, 8+uint64(i)*24, 2000).Apply(src)
			if err := src.Boot(kernel); err != nil {
				return nil, err
			}
			src.Step(scaled(10_000_000))
			if src.State != core.StateRunning {
				return nil, fmt.Errorf("bench: M7 source %d ended %v (%v)", i, src.State, src.Err)
			}
			dst, err := core.NewVM(pool, core.Config{
				Name: fmt.Sprintf("evac-dst-%d", i), Mode: core.ModeHW, MemBytes: evacRAM,
			})
			if err != nil {
				return nil, err
			}
			opt := migrate.DefaultStreamOptions()
			opt.MaxAttempts = 10
			var inj *faultnet.Injector
			if sc.faulted {
				inj = faultnet.NewInjector(faultnet.Plan{
					Seed:         42 + int64(i),
					MeanGapBytes: 45_000,
					MaxFaults:    2,
				})
				opt.Wire = migrate.PipeWire(inj.Wrap)
				opt.DelayCycles = inj.TakeDelayCycles
			}
			rep, err := migrate.StreamMigrate(src, dst, opt)
			if err != nil {
				return nil, fmt.Errorf("bench: M7 evacuating VM %d (%s): %w", i, sc.name, err)
			}
			downtimes = append(downtimes, rep.DowntimeCycles)
			retries += rep.Retries
			resumes += rep.Resumes
			sent += rep.BytesSent
			if inj != nil {
				faults += inj.Stats().Total()
			}
			// The evacuated VM keeps serving on its new host.
			dst.Step(scaled(5_000_000))
			if dst.State != core.StateRunning {
				return nil, fmt.Errorf("bench: M7 destination %d ended %v (%v)", i, dst.State, dst.Err)
			}
			instrs += dst.CPU.Instret
		}
		hostNs := float64(time.Since(start).Nanoseconds())
		if sc.faulted && faults == 0 {
			return nil, fmt.Errorf("bench: M7 fault schedule injected nothing — drill is vacuous")
		}
		t.AddRow(sc.name, fmt.Sprint(vms),
			fmt.Sprintf("%.1f", float64(percentile(downtimes, 50))/1e3),
			fmt.Sprintf("%.1f", float64(percentile(downtimes, 99))/1e3),
			fmt.Sprint(retries), fmt.Sprint(resumes), fmt.Sprint(faults),
			fmt.Sprintf("%.1f", float64(sent)/(1<<20)),
			fmt.Sprintf("%.1f", hostNs/float64(instrs)))
	}
	return t, nil
}

// percentile returns the nearest-rank p-th percentile of values.
func percentile(values []uint64, p int) uint64 {
	s := append([]uint64(nil), values...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (p*len(s) + 99) / 100
	if idx > 0 {
		idx--
	}
	return s[idx]
}
