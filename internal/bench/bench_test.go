package bench

import (
	"fmt"
	"strings"
	"testing"
)

// TestRegistryComplete checks the experiment index is well-formed.
func TestRegistryComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Name == "" || e.Run == nil || e.Notes == "" {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"T1", "F7", "A4", "F15"} {
		if !seen[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
}

// TestFastExperimentsProduceTables runs the sub-second experiments end to
// end and sanity-checks their tables (the heavyweight ones are exercised by
// the root bench harness and cmd/benchsuite).
func TestFastExperimentsProduceTables(t *testing.T) {
	fast := map[string]int{ // id → minimum rows
		"T2":  5,
		"F15": 4,
		"A2":  2,
		"A4":  8,
		"T14": 3,
		"F9":  4,
	}
	for _, e := range All() {
		rows, ok := fast[e.ID]
		if !ok {
			continue
		}
		table, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(table.Rows) < rows {
			t.Fatalf("%s: %d rows, want ≥ %d:\n%s", e.ID, len(table.Rows), rows, table.String())
		}
		if len(table.Header) == 0 {
			t.Fatalf("%s: no header", e.ID)
		}
		out := table.String()
		if !strings.Contains(out, table.Header[0]) {
			t.Fatalf("%s: header not rendered", e.ID)
		}
	}
}

// TestT1ShapeHolds asserts the headline T1 ordering as a regression guard:
// native ≈ hw ≪ para ≈ trap for privileged ops.
func TestT1ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	table, err := T1PrivilegedOps()
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: csr pair — columns: op, native, hw, para, trap.
	row := table.Rows[0]
	var vals [4]float64
	for i := 0; i < 4; i++ {
		var v float64
		if _, err := sscan(row[i+1], &v); err != nil {
			t.Fatalf("parsing %q: %v", row[i+1], err)
		}
		vals[i] = v
	}
	native, hw, para, trap := vals[0], vals[1], vals[2], vals[3]
	if hw > 3*native {
		t.Errorf("hw %v should be ≈ native %v", hw, native)
	}
	if para < 50*native || trap < 50*native {
		t.Errorf("deprivileged modes should be ≫ native: %v %v vs %v", para, trap, native)
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
