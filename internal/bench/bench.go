// Package bench implements the reproduced evaluation: one runner per table
// or figure in EXPERIMENTS.md. Each runner executes the experiment on the
// simulated machine and returns a rendered table; cmd/benchsuite prints
// them all, and the root bench_test.go wraps each in a testing.B benchmark.
package bench

import (
	"fmt"

	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/guest"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/metrics"
	"govisor/internal/vcpu"
)

// Standard experiment sizing. Kept modest so the full suite runs in
// minutes; the shapes, not the absolute counts, are the result.
const (
	benchRAM    = 8 << 20
	benchPool   = 4 * benchRAM >> isa.PageShift
	benchBudget = 20_000_000_000
)

// AllModes lists the execution modes in comparison order.
var AllModes = []core.Mode{core.ModeNative, core.ModeHW, core.ModePara, core.ModeTrap}

// quickScale divides the M-series microbenchmark workload sizes when quick
// mode is on (the CI smoke job): the tables keep their shape but run in
// seconds. The reproduced experiments (T/F/A) are untouched — their result
// is the shape, and shrinking them would change it.
var quickScale uint64 = 1

// SetQuick toggles quick mode for the M-series simulator microbenchmarks.
func SetQuick(on bool) {
	if on {
		quickScale = 25
	} else {
		quickScale = 1
	}
}

// scaled applies the quick divisor with a floor of 1.
func scaled(n uint64) uint64 {
	if s := n / quickScale; s > 0 {
		return s
	}
	return 1
}

// newVM builds a VM in the given mode with default sizing.
func newVM(mode core.Mode, cfg func(*core.Config)) (*core.VM, error) {
	c := core.Config{Name: "bench-" + mode.String(), Mode: mode, MemBytes: benchRAM}
	if cfg != nil {
		cfg(&c)
	}
	return core.NewVM(mem.NewPool(benchPool), c)
}

// runKernel boots the universal kernel with a workload and runs to halt.
func runKernel(mode core.Mode, w guest.Workload, cfg func(*core.Config)) (*core.VM, error) {
	kernel, err := guest.BuildKernel()
	if err != nil {
		return nil, err
	}
	vm, err := newVM(mode, cfg)
	if err != nil {
		return nil, err
	}
	w.Apply(vm)
	if err := vm.Boot(kernel); err != nil {
		return nil, err
	}
	if st := vm.RunToHalt(benchBudget); st != core.StateHalted {
		return nil, fmt.Errorf("bench: %v guest ended %v (err %v, halt %#x)", mode, st, vm.Err, vm.HaltCode)
	}
	if vm.HaltCode != 0 {
		return nil, fmt.Errorf("bench: %v guest panicked: halt %#x cause %d", mode, vm.HaltCode, vm.Result(gabi.PResult3))
	}
	return vm, nil
}

// runProgram boots a standalone guest image and runs it to halt.
func runProgram(mode core.Mode, img []byte, attach func(vm *core.VM) error) (*core.VM, error) {
	vm, err := newVM(mode, nil)
	if err != nil {
		return nil, err
	}
	if attach != nil {
		if err := attach(vm); err != nil {
			return nil, err
		}
	}
	if err := vm.Boot(img); err != nil {
		return nil, err
	}
	if st := vm.RunToHalt(benchBudget); st != core.StateHalted || vm.HaltCode != 0 {
		return nil, fmt.Errorf("bench: guest ended %v halt %#x (err %v)", st, vm.HaltCode, vm.Err)
	}
	return vm, nil
}

// region returns the cycles between markers 1 and 2.
func region(vm *core.VM) uint64 {
	var start, end uint64
	for _, m := range vm.Markers {
		switch m.ID {
		case 1:
			start = m.Cycles
		case 2:
			end = m.Cycles
		}
	}
	if end <= start {
		return 0
	}
	return end - start
}

// T1PrivilegedOps: cycles per privileged operation under each mode.
func T1PrivilegedOps() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"operation", "native", "hw-assist", "para", "trap&emulate",
	}}

	const n = 2000
	row := func(name string, w guest.Workload, perOp uint64) error {
		cells := []string{name}
		for _, mode := range AllModes {
			vm, err := runKernel(mode, w, nil)
			if err != nil {
				return err
			}
			cells = append(cells, fmt.Sprintf("%.0f", float64(region(vm))/float64(perOp)))
		}
		// Reorder: native, hw, para, trap matches AllModes already.
		t.AddRow(cells...)
		return nil
	}
	if err := row("csr write+read pair", guest.CSRLoop(n), n); err != nil {
		return nil, err
	}
	if err := row("syscall round trip", guest.Syscall(n), n); err != nil {
		return nil, err
	}
	return t, nil
}

// T2ExitLatency: cost per exit by reason, measured from counters.
func T2ExitLatency() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{"exit reason", "count", "cycles/exit (incl. emulation)"}}
	costs := vcpu.DefaultCosts()
	// Microcalibration rows straight from the cost model (the fixed part)…
	t.AddRow("world switch (fixed)", "-", fmt.Sprint(costs.ExitRound))
	t.AddRow("hypercall dispatch", "-", fmt.Sprint(costs.ExitRound+costs.Hypercall))
	t.AddRow("privileged emulation", "-", fmt.Sprint(costs.ExitRound+costs.Emulate))
	t.AddRow("trap injection", "-", fmt.Sprint(costs.ExitRound+costs.Inject))
	// …and a measured row: CSR loop under trap mode.
	vm, err := runKernel(core.ModeTrap, guest.CSRLoop(2000), nil)
	if err != nil {
		return nil, err
	}
	exits := vm.CPU.Stats.Exits[vcpu.ExitPriv]
	t.AddRow("measured: trapped CSR op", fmt.Sprint(exits),
		fmt.Sprintf("%.0f", float64(region(vm))/float64(exits)))
	return t, nil
}

// F3PrivDensity: slowdown vs native as privileged-op density sweeps.
func F3PrivDensity() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"ALU ops per priv op", "native", "hw-assist", "para", "trap&emulate",
	}}
	for _, period := range []uint64{0, 1000, 200, 50, 10} {
		label := "none"
		if period > 0 {
			label = fmt.Sprint(period)
		}
		cells := []string{label}
		var native float64
		for _, mode := range AllModes {
			vm, err := runKernel(mode, guest.Compute(500, period), nil)
			if err != nil {
				return nil, err
			}
			c := float64(region(vm))
			if mode == core.ModeNative {
				native = c
			}
			cells = append(cells, fmt.Sprintf("%.2fx", c/native))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// F4WorkingSet: memory-toucher cycles/iteration vs working-set pages,
// shadow vs nested (and native for reference).
func F4WorkingSet() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"working set (pages)", "native", "shadow (trap)", "nested (hw)", "nested/shadow",
	}}
	const iters = 24
	for _, pages := range []uint64{64, 192, 256, 512, 1024} {
		var cyc [3]float64
		for i, mode := range []core.Mode{core.ModeNative, core.ModeTrap, core.ModeHW} {
			vm, err := runKernel(mode, guest.MemTouch(iters, pages, 0), nil)
			if err != nil {
				return nil, err
			}
			cyc[i] = float64(region(vm)) / iters
		}
		t.AddRow(fmt.Sprint(pages),
			fmt.Sprintf("%.0f", cyc[0]), fmt.Sprintf("%.0f", cyc[1]),
			fmt.Sprintf("%.0f", cyc[2]), fmt.Sprintf("%.2f", cyc[2]/cyc[1]))
	}
	return t, nil
}

// F5PTChurn: map/touch/unmap loops across the modes (+ para batched).
func F5PTChurn() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"mode", "cycles/page-op", "exits", "pt-write emuls", "mmu hypercalls",
	}}
	const iters = 4
	ops := float64(iters * core.ChurnWindowPages * 2) // map + unmap
	for _, mode := range AllModes {
		vm, err := runKernel(mode, guest.PTChurn(iters, false), nil)
		if err != nil {
			return nil, err
		}
		exits := vm.CPU.Stats.Exits[vcpu.ExitPriv] + vm.CPU.Stats.Exits[vcpu.ExitHostFault] +
			vm.CPU.Stats.Exits[vcpu.ExitEcall] + vm.CPU.Stats.Exits[vcpu.ExitShadowMiss]
		t.AddRow(mode.String(),
			fmt.Sprintf("%.0f", float64(region(vm))/ops),
			fmt.Sprint(exits), fmt.Sprint(vm.Stats.PTWriteEmuls), fmt.Sprint(vm.Stats.ParaMaps))
	}
	// Paravirtual with multicall batching.
	vm, err := runKernel(core.ModePara, guest.PTChurn(iters, true), nil)
	if err != nil {
		return nil, err
	}
	t.AddRow("para (batched)",
		fmt.Sprintf("%.0f", float64(region(vm))/ops),
		fmt.Sprint(vm.CPU.Stats.Exits[vcpu.ExitEcall]),
		fmt.Sprint(vm.Stats.PTWriteEmuls), fmt.Sprint(vm.Stats.ParaMaps))
	return t, nil
}
