package bench

import (
	"fmt"
	"time"

	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/guest"
	"govisor/internal/metrics"
)

// M1ICache: host-side interpreter throughput with the decoded-instruction
// block cache on vs off, on the F3 privileged-density hot loop. This is a
// microbenchmark of the simulator itself, not of the simulated machine: the
// guest cycle counts must be byte-identical in both configurations (the
// cache is architecturally invisible) while host nanoseconds per guest
// instruction drop. Only the RunToHalt phase is timed — kernel assembly, VM
// construction and boot are excluded — and both configurations get a warm-up
// run before measurement.
func M1ICache() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"mode", "config", "guest instrs", "guest cycles", "host ns/instr", "speedup", "hit rate",
	}}

	// The F3 hot loop: ALU work with one privileged CSR op per 50
	// instructions, sized up so host timing dominates noise.
	w := guest.Compute(scaled(20000), 50)

	for _, mode := range []core.Mode{core.ModeNative, core.ModeTrap} {
		type result struct {
			vm     *core.VM
			hostNs float64
		}
		run := func(noCache bool) (result, error) {
			kernel, err := guest.BuildKernel()
			if err != nil {
				return result{}, err
			}
			// Superblocks stay off in both arms: M1 is the icache-only
			// baseline that M3 measures superblock dispatch against, so it
			// must keep isolating the decoded cache alone.
			vm, err := newVM(mode, func(c *core.Config) {
				c.NoICache = noCache
				c.NoSuperblocks = true
			})
			if err != nil {
				return result{}, err
			}
			w.Apply(vm)
			if err := vm.Boot(kernel); err != nil {
				return result{}, err
			}
			start := time.Now()
			st := vm.RunToHalt(benchBudget)
			elapsed := float64(time.Since(start).Nanoseconds())
			if st != core.StateHalted || vm.HaltCode != 0 {
				return result{}, fmt.Errorf("bench: M1 guest ended %v halt %#x cause %d",
					st, vm.HaltCode, vm.Result(gabi.PResult3))
			}
			return result{vm, elapsed}, nil
		}
		// Warm both configurations so neither measurement pays first-run
		// allocator and host-cache effects.
		for _, warm := range []bool{true, false} {
			if _, err := run(warm); err != nil {
				return nil, err
			}
		}
		off, err := run(true)
		if err != nil {
			return nil, err
		}
		on, err := run(false)
		if err != nil {
			return nil, err
		}
		// The transparency property, enforced at benchmark time: identical
		// guest time and retired instructions with the cache on or off.
		if on.vm.CPU.Cycles != off.vm.CPU.Cycles || on.vm.CPU.Instret != off.vm.CPU.Instret {
			return nil, fmt.Errorf("bench: icache is not invisible: on (cyc=%d ret=%d) off (cyc=%d ret=%d)",
				on.vm.CPU.Cycles, on.vm.CPU.Instret, off.vm.CPU.Cycles, off.vm.CPU.Instret)
		}
		instrs := float64(on.vm.CPU.Instret)
		nsOff := off.hostNs / instrs
		nsOn := on.hostNs / instrs
		ic := on.vm.CPU.ICache
		t.AddRow(mode.String(), "uncached", fmt.Sprintf("%.0f", instrs),
			fmt.Sprint(off.vm.CPU.Cycles), fmt.Sprintf("%.1f", nsOff), "1.00x", "-")
		t.AddRow(mode.String(), "block cache", fmt.Sprintf("%.0f", instrs),
			fmt.Sprint(on.vm.CPU.Cycles), fmt.Sprintf("%.1f", nsOn),
			fmt.Sprintf("%.2fx", nsOff/nsOn),
			fmt.Sprintf("%.4f (%s)", ic.HitRate(), ic.Counters()))
	}
	return t, nil
}
