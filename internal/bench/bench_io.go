package bench

import (
	"fmt"

	"govisor/internal/core"
	"govisor/internal/guest"
	"govisor/internal/metrics"
	"govisor/internal/storage"
	"govisor/internal/vnet"
)

// T6IOPath: emulated vs paravirtual device paths — cycles and exits per
// operation for disk sectors and network frames.
func T6IOPath() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"path", "ops", "cycles/op", "exits/op", "speedup",
	}}
	const (
		sectors  = 128
		frames   = 128
		frameLen = 256
	)

	type result struct {
		name   string
		cycles float64
		exits  float64
	}
	var results []result

	// Disk: PIO baseline.
	prog, err := guest.BuildPIODiskProgram(sectors, true)
	if err != nil {
		return nil, err
	}
	vm, err := runProgram(core.ModeHW, prog, func(vm *core.VM) error {
		_, err := vm.AttachPIODisk(storage.NewRaw(8192))
		return err
	})
	if err != nil {
		return nil, err
	}
	results = append(results, result{"disk: programmed-I/O",
		float64(region(vm)) / sectors, float64(vm.Stats.MMIOExits) / sectors})

	// Disk: virtio at two batch depths.
	for _, batch := range []uint64{1, 16} {
		prog, err := guest.BuildVirtioBlkProgram(sectors, batch, 0)
		if err != nil {
			return nil, err
		}
		vm, err := runProgram(core.ModeHW, prog, func(vm *core.VM) error {
			_, _, err := vm.AttachVirtioBlk(storage.NewRaw(8192))
			return err
		})
		if err != nil {
			return nil, err
		}
		results = append(results, result{fmt.Sprintf("disk: virtio (batch %d)", batch),
			float64(region(vm)) / sectors, float64(vm.Stats.MMIOExits) / sectors})
	}

	// Net: register NIC baseline.
	prog, err = guest.BuildRegNICProgram(frames, frameLen)
	if err != nil {
		return nil, err
	}
	vm, err = runProgram(core.ModeHW, prog, func(vm *core.VM) error {
		sw := vnet.NewSwitch()
		_, err := vm.AttachRegNIC(sw.NewPort())
		sw.NewPort()
		return err
	})
	if err != nil {
		return nil, err
	}
	results = append(results, result{"net: register NIC",
		float64(region(vm)) / frames, float64(vm.Stats.MMIOExits) / frames})

	// Net: virtio.
	prog, err = guest.BuildVirtioNetProgram(frames, 16, frameLen, 0)
	if err != nil {
		return nil, err
	}
	vm, err = runProgram(core.ModeHW, prog, func(vm *core.VM) error {
		sw := vnet.NewSwitch()
		_, _, err := vm.AttachVirtioNet(sw.NewPort())
		sw.NewPort()
		return err
	})
	if err != nil {
		return nil, err
	}
	results = append(results, result{"net: virtio (batch 16)",
		float64(region(vm)) / frames, float64(vm.Stats.MMIOExits) / frames})

	diskBase, netBase := results[0].cycles, results[3].cycles
	for i, r := range results {
		base := diskBase
		ops := sectors
		if i >= 3 {
			base = netBase
			ops = frames
		}
		t.AddRow(r.name, fmt.Sprint(ops),
			fmt.Sprintf("%.0f", r.cycles), fmt.Sprintf("%.1f", r.exits),
			fmt.Sprintf("%.1fx", base/r.cycles))
	}
	return t, nil
}

// A4QueueDepth: virtio-blk cycles/op vs batch depth (ablation).
func A4QueueDepth() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{"batch depth", "cycles/sector", "kicks", "exits/sector"}}
	const sectors = 128
	for _, batch := range []uint64{1, 2, 4, 8, 16, 32, 64, 128} {
		prog, err := guest.BuildVirtioBlkProgram(sectors, batch, 0)
		if err != nil {
			return nil, err
		}
		var kicks uint64
		vm, err := runProgram(core.ModeHW, prog, func(vm *core.VM) error {
			_, mmio, err := vm.AttachVirtioBlk(storage.NewRaw(8192))
			if err == nil {
				defer func() { _ = mmio }()
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		kicks = uint64(sectors) / batch
		t.AddRow(fmt.Sprint(batch),
			fmt.Sprintf("%.0f", float64(region(vm))/sectors),
			fmt.Sprint(kicks),
			fmt.Sprintf("%.2f", float64(vm.Stats.MMIOExits)/sectors))
	}
	return t, nil
}
