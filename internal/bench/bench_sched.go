package bench

import (
	"fmt"
	"io"

	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/guest"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/metrics"
	"govisor/internal/mmu"
	"govisor/internal/sched"
	"govisor/internal/snapshot"
	"govisor/internal/storage"
)

// schedHost builds a host with n CPU-hog VMs plus, optionally, one
// latency-sensitive timer VM, under the given scheduler.
func schedHost(s core.Scheduler, hogs int, withLatency bool, pcpus int) (*core.Host, error) {
	kernel, err := guest.BuildKernel()
	if err != nil {
		return nil, err
	}
	const vmRAM = 2 << 20
	h := core.NewHost(uint64(hogs+4)*(vmRAM>>isa.PageShift), pcpus, s)
	for i := 0; i < hogs; i++ {
		vm, err := h.CreateVM(core.Config{
			Name: fmt.Sprintf("hog%d", i), Mode: core.ModeHW, MemBytes: vmRAM,
		})
		if err != nil {
			return nil, err
		}
		guest.Dirty(0, 8, 100).Apply(vm)
		if err := vm.Boot(kernel); err != nil {
			return nil, err
		}
		h.AddToScheduler(i, 256, 0)
	}
	if withLatency {
		vm, err := h.CreateVM(core.Config{
			Name: "latency", Mode: core.ModeHW, MemBytes: vmRAM,
		})
		if err != nil {
			return nil, err
		}
		guest.Idle(50, 400_000).Apply(vm) // 50 ticks, 0.4 ms period
		if err := vm.Boot(kernel); err != nil {
			return nil, err
		}
		h.AddToScheduler(hogs, 256, 0)
	}
	return h, nil
}

// F11SchedFairness: fairness and wakeup latency, credit vs CFS vs RR.
func F11SchedFairness() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"scheduler", "Jain fairness (4 hogs)", "latency VM ticks", "avg wakeup latency (cyc)",
	}}
	scheds := []struct {
		name string
		mk   func() core.Scheduler
	}{
		{"round-robin", func() core.Scheduler { return sched.NewRoundRobin(core.DefaultQuantum) }},
		{"credit", func() core.Scheduler { return sched.NewCredit() }},
		{"cfs", func() core.Scheduler { return sched.NewCFS() }},
	}
	for _, sc := range scheds {
		h, err := schedHost(sc.mk(), 4, true, 1)
		if err != nil {
			return nil, err
		}
		h.Run(150_000_000)
		shares := make([]float64, 4)
		for i := 0; i < 4; i++ {
			shares[i] = float64(h.VMs[i].Result(gabi.PResult0))
		}
		lat := h.VMs[4]
		ticks := lat.Result(gabi.PResult0)
		avgLat := "-"
		if ticks > 0 {
			avgLat = fmt.Sprintf("%.0f", float64(lat.Result(gabi.PResult1))/float64(ticks))
		}
		t.AddRow(sc.name, fmt.Sprintf("%.3f", metrics.JainIndex(shares)),
			fmt.Sprint(ticks), avgLat)
	}
	return t, nil
}

// T12WeightCap: measured CPU share vs configured weight/cap under credit.
func T12WeightCap() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"config", "vm", "weight", "cap", "measured share",
	}}
	kernel, err := guest.BuildKernel()
	if err != nil {
		return nil, err
	}
	run := func(label string, weights []uint64, caps []uint64) error {
		const vmRAM = 2 << 20
		cs := sched.NewCredit()
		h := core.NewHost(uint64(len(weights)+2)*(vmRAM>>isa.PageShift), 1, cs)
		for i := range weights {
			vm, err := h.CreateVM(core.Config{
				Name: fmt.Sprintf("vm%d", i), Mode: core.ModeHW, MemBytes: vmRAM,
			})
			if err != nil {
				return err
			}
			guest.Dirty(0, 8, 100).Apply(vm)
			if err := vm.Boot(kernel); err != nil {
				return err
			}
			h.AddToScheduler(i, weights[i], caps[i])
		}
		h.Run(200_000_000)
		var total uint64
		works := make([]uint64, len(weights))
		for i := range weights {
			works[i] = h.VMs[i].Result(gabi.PResult0)
			total += works[i]
		}
		for i := range weights {
			capLabel := "-"
			if caps[i] > 0 {
				capLabel = fmt.Sprintf("%d%%", caps[i])
			}
			t.AddRow(label, fmt.Sprint(i), fmt.Sprint(weights[i]), capLabel,
				fmt.Sprintf("%.1f%%", 100*float64(works[i])/float64(total)))
		}
		return nil
	}
	if err := run("2:1 weights", []uint64{512, 256}, []uint64{0, 0}); err != nil {
		return nil, err
	}
	if err := run("4:1 weights", []uint64{512, 128}, []uint64{0, 0}); err != nil {
		return nil, err
	}
	if err := run("25% cap", []uint64{256, 256}, []uint64{25, 0}); err != nil {
		return nil, err
	}
	return t, nil
}

// T13Consolidation: aggregate throughput vs VM count on a 4-core host.
func T13Consolidation() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"VMs", "aggregate work", "per-VM work", "scaling efficiency",
	}}
	var perVMBase float64
	for _, n := range []int{1, 2, 4, 8, 16} {
		h, err := schedHost(sched.NewCredit(), n, false, 4)
		if err != nil {
			return nil, err
		}
		h.Run(100_000_000)
		var total uint64
		for _, vm := range h.VMs {
			total += vm.Result(gabi.PResult0)
		}
		per := float64(total) / float64(n)
		if n == 1 {
			perVMBase = per
		}
		ideal := perVMBase * float64(min(n, 4))
		t.AddRow(fmt.Sprint(n), fmt.Sprint(total),
			fmt.Sprintf("%.0f", per),
			fmt.Sprintf("%.0f%%", 100*float64(total)/ideal))
	}
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// A2ASIDFlush: TLB cost of address-space switches with and without ASID
// tagging (ablation). This is a mechanism-level microbenchmark: two address
// spaces over the same tables alternate every `switchEvery` accesses, as a
// guest context-switching between processes would.
func A2ASIDFlush() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"TLB tagging", "switches", "accesses", "tlb misses", "walk refs",
	}}
	const (
		wsPages     = 64
		rounds      = 64
		switchEvery = 1 // switch space every round
	)
	run := func(useASID bool) (misses, refs uint64, switches int, accesses int, err error) {
		g := mem.NewGuestPhys(mem.NewPool(4096), 16<<20)
		if err := g.PopulateAll(); err != nil {
			return 0, 0, 0, 0, err
		}
		tb, err := mmu.NewTableBuilder(g, 3000, 64)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if err := tb.IdentityMap(8<<20, isa.PTERead|isa.PTEWrite); err != nil {
			return 0, 0, 0, 0, err
		}
		ctx := mmu.NewContext(g, mmu.StyleDirect)
		ctx.UseASID = useASID
		satp := func(asid uint16) uint64 {
			return isa.MakeSatp(isa.SatpModePaged, asid, tb.RootPPN)
		}
		for r := 0; r < rounds; r++ {
			asid := uint16(1 + r%2)
			ctx.SetSatp(satp(asid)) // the world switch under test
			switches++
			for p := uint64(0); p < wsPages; p++ {
				if _, _, fault := ctx.Translate(p<<isa.PageShift, isa.AccRead, false); fault != nil {
					return 0, 0, 0, 0, fault
				}
				accesses++
			}
		}
		return ctx.TLB.Stats.Misses, ctx.Stats.WalkRefs, switches, accesses, nil
	}
	for _, useASID := range []bool{true, false} {
		misses, refs, switches, accesses, err := run(useASID)
		if err != nil {
			return nil, err
		}
		label := "ASIDs (tagged TLB)"
		if !useASID {
			label = "flush on switch"
		}
		t.AddRow(label, fmt.Sprint(switches), fmt.Sprint(accesses),
			fmt.Sprint(misses), fmt.Sprint(refs))
	}
	return t, nil
}

// A1ParaBatching: MMU hypercall batching (ablation; complements F5).
func A1ParaBatching() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{"mmu updates", "unbatched (cyc)", "batched (cyc)", "ratio"}}
	const iters = 4
	un, err := runKernel(core.ModePara, guest.PTChurn(iters, false), nil)
	if err != nil {
		return nil, err
	}
	ba, err := runKernel(core.ModePara, guest.PTChurn(iters, true), nil)
	if err != nil {
		return nil, err
	}
	cu, cb := region(un), region(ba)
	t.AddRow(fmt.Sprint(un.Stats.ParaMaps), fmt.Sprint(cu), fmt.Sprint(cb),
		fmt.Sprintf("%.2fx", float64(cu)/float64(cb)))
	return t, nil
}

// Helpers shared with bench_mem.go.

type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

func saveSnapshot(vm *core.VM, w io.Writer) error { return snapshot.Save(vm, w) }
func cloneVM(src, dst *core.VM) error             { return snapshot.Clone(src, dst) }

// F15COWDepth: read amplification and first-write cost vs snapshot chain
// depth. "Layer probes" counts every per-layer lookup a read performed —
// the read-amplification a deep chain causes; re-reading freshly written
// sectors shows the top layer short-circuiting the chain.
func F15COWDepth() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"chain depth", "cold-read layer probes", "copy-ups (128 writes)", "warm-read layer probes",
	}}
	base := storage.NewRaw(4096)
	buf := make([]byte, storage.SectorSize)
	for lba := uint64(0); lba < 1024; lba++ {
		buf[0] = byte(lba)
		base.WriteSector(lba, buf)
	}
	// chainProbes sums reads observed at every layer of the chain.
	chainProbes := func(top *storage.COW) uint64 {
		var total uint64
		var img storage.Image = top
		for {
			cow, ok := img.(*storage.COW)
			if !ok {
				total += img.(*storage.Raw).Reads
				return total
			}
			total += cow.Reads
			img = cow.Backing()
		}
	}
	resetProbes := func(top *storage.COW) {
		var img storage.Image = top
		for {
			cow, ok := img.(*storage.COW)
			if !ok {
				img.(*storage.Raw).Reads = 0
				return
			}
			cow.Reads, cow.ChainReads, cow.CopyUps = 0, 0, 0
			img = cow.Backing()
		}
	}
	layer := storage.NewCOW(base)
	for depth := 1; depth <= 8; depth *= 2 {
		for layer.Depth() < depth {
			layer = layer.Snapshot()
		}
		resetProbes(layer)
		// Cold reads: sectors only the base holds → walk the whole chain.
		for i := uint64(0); i < 256; i++ {
			layer.ReadSector(i*13%1024, buf)
		}
		cold := chainProbes(layer)
		resetProbes(layer)
		// First writes pay exactly one copy-up each.
		for i := uint64(0); i < 128; i++ {
			layer.WriteSector(i*29%1024, buf)
		}
		copyUps := layer.CopyUps
		resetProbes(layer)
		// Warm reads of the written sectors stop at the top layer.
		for i := uint64(0); i < 128; i++ {
			layer.ReadSector(i*29%1024, buf)
		}
		warm := chainProbes(layer)
		t.AddRow(fmt.Sprint(layer.Depth()),
			fmt.Sprint(cold), fmt.Sprint(copyUps), fmt.Sprint(warm))
	}
	return t, nil
}
