package bench

import (
	"fmt"
	"time"

	"govisor/internal/core"
	"govisor/internal/guest"
	"govisor/internal/metrics"
)

// M3Superblocks: host-side interpreter throughput with superblock dispatch
// on vs off (the icache stays on in both arms, so the comparison isolates
// the block engine on top of PR 1's baseline). Like M1 this is a
// microbenchmark of the simulator, not the simulated machine: guest cycles
// and retired instructions must be byte-identical in both configurations —
// enforced below, and proven in full by TestDifferentialSuperblockInvisible
// — while host nanoseconds per guest instruction drop. The workloads are
// the engine's target shape: loops with long unrolled straight-line bodies
// (pure ALU, and a page-local memory copy that additionally exercises the
// data-translation fast path), run with paging enabled under the native and
// hw-assist modes. Only the RunToHalt phase is timed, after a warm-up run
// per configuration.
func M3Superblocks() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"mode", "workload", "config", "guest instrs", "guest cycles", "host ns/instr", "speedup",
	}}

	type stream struct {
		kind   guest.StreamKind
		iters  uint64
		unroll uint64
	}
	streams := []stream{
		{guest.StreamALU, scaled(30000), 512},
		{guest.StreamCopy, scaled(20000), 512},
	}

	for _, mode := range []core.Mode{core.ModeNative, core.ModeHW} {
		for _, s := range streams {
			img, err := guest.BuildStreamProgram(s.kind, s.iters, s.unroll)
			if err != nil {
				return nil, err
			}
			type result struct {
				vm     *core.VM
				hostNs float64
			}
			run := func(noBlocks bool) (result, error) {
				vm, err := newVM(mode, func(c *core.Config) { c.NoSuperblocks = noBlocks })
				if err != nil {
					return result{}, err
				}
				if err := vm.Boot(img); err != nil {
					return result{}, err
				}
				start := time.Now()
				st := vm.RunToHalt(benchBudget)
				elapsed := float64(time.Since(start).Nanoseconds())
				if st != core.StateHalted || vm.HaltCode != 0 {
					return result{}, fmt.Errorf("bench: M3 %v/%v guest ended %v halt %#x",
						mode, s.kind, st, vm.HaltCode)
				}
				return result{vm, elapsed}, nil
			}
			// Warm both configurations before measuring.
			for _, warm := range []bool{true, false} {
				if _, err := run(warm); err != nil {
					return nil, err
				}
			}
			off, err := run(true)
			if err != nil {
				return nil, err
			}
			on, err := run(false)
			if err != nil {
				return nil, err
			}
			// The transparency property, enforced at benchmark time.
			if on.vm.CPU.Cycles != off.vm.CPU.Cycles || on.vm.CPU.Instret != off.vm.CPU.Instret {
				return nil, fmt.Errorf("bench: superblocks are not invisible: on (cyc=%d ret=%d) off (cyc=%d ret=%d)",
					on.vm.CPU.Cycles, on.vm.CPU.Instret, off.vm.CPU.Cycles, off.vm.CPU.Instret)
			}
			instrs := float64(on.vm.CPU.Instret)
			nsOff := off.hostNs / instrs
			nsOn := on.hostNs / instrs
			t.AddRow(mode.String(), s.kind.String(), "per-instr", fmt.Sprintf("%.0f", instrs),
				fmt.Sprint(off.vm.CPU.Cycles), fmt.Sprintf("%.1f", nsOff), "1.00x")
			t.AddRow(mode.String(), s.kind.String(), "superblocks", fmt.Sprintf("%.0f", instrs),
				fmt.Sprint(on.vm.CPU.Cycles), fmt.Sprintf("%.1f", nsOn),
				fmt.Sprintf("%.2fx", nsOff/nsOn))
		}
	}
	return t, nil
}
