package bench

import (
	"fmt"
	"runtime"
	"time"

	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/guest"
	"govisor/internal/isa"
	"govisor/internal/metrics"
	"govisor/internal/sched"
)

// m2Fleet builds the M2 scale-out fleet: 8 CPU-bound VMs on an 8-PCPU host
// under the credit scheduler. PCPUs is fixed at the fleet size so the epoch
// schedule — and therefore every simulated number — is identical at every
// worker count; only the host-side worker pool varies.
func m2Fleet() (*core.Host, error) {
	kernel, err := guest.BuildKernel()
	if err != nil {
		return nil, err
	}
	const vms = 8
	h := core.NewHost(uint64(vms+2)*(benchRAM>>isa.PageShift), vms, sched.NewCredit())
	for i := 0; i < vms; i++ {
		vm, err := h.CreateVM(core.Config{
			Name: fmt.Sprintf("m2-%d", i), Mode: core.ModeHW, MemBytes: benchRAM,
		})
		if err != nil {
			return nil, err
		}
		// ~3.7M guest cycles per VM: several 1 ms scheduling epochs, so the
		// measurement covers lease/barrier overhead, not just one dispatch.
		guest.Compute(scaled(600_000), 0).Apply(vm)
		if err := vm.Boot(kernel); err != nil {
			return nil, err
		}
		h.AddToScheduler(i, 256, 0)
	}
	return h, nil
}

// M2ParallelFleet: host wall-clock for an 8-VM fleet under RunParallel at
// 1/2/4/8 workers. Like M1, this is a microbenchmark of the simulator, not
// of the simulated machine: guest cycles, retired instructions and the host
// clock must be byte-identical at every worker count (enforced below, the
// transparency property TestDifferentialParallelInvisible proves in full),
// while wall-clock drops roughly with min(workers, host cores). On a
// single-core CI runner the speedup column degenerates to ≈1× — the guest-
// visible equality columns are the part that must always hold.
func M2ParallelFleet() (*metrics.Table, error) {
	t := &metrics.Table{Header: []string{
		"workers", "wall ms", "host ns/guest-instr", "speedup", "guest cycles (vm0)", "host clock",
	}}
	type result struct {
		wall    time.Duration
		instret uint64
		cycles  uint64
		now     uint64
	}
	run := func(workers int) (result, error) {
		h, err := m2Fleet()
		if err != nil {
			return result{}, err
		}
		start := time.Now()
		h.RunParallel(workers, benchBudget)
		wall := time.Since(start)
		if !h.AllHalted() {
			return result{}, fmt.Errorf("bench: M2 fleet did not halt at %d workers", workers)
		}
		var instret uint64
		for _, vm := range h.VMs {
			if vm.HaltCode != 0 {
				return result{}, fmt.Errorf("bench: M2 guest %s halt %#x cause %d",
					vm.Name, vm.HaltCode, vm.Result(gabi.PResult3))
			}
			instret += vm.CPU.Instret
		}
		return result{wall, instret, h.VMs[0].CPU.Cycles, h.Now}, nil
	}
	// Warm up allocator and host caches before measuring.
	if _, err := run(runtime.NumCPU()); err != nil {
		return nil, err
	}
	var base result
	for _, workers := range []int{1, 2, 4, 8} {
		r, err := run(workers)
		if err != nil {
			return nil, err
		}
		if workers == 1 {
			base = r
		}
		// Transparency, enforced at benchmark time: worker count must not
		// leak into anything the simulation can observe.
		if r.cycles != base.cycles || r.now != base.now || r.instret != base.instret {
			return nil, fmt.Errorf("bench: parallel engine not invisible at %d workers: "+
				"(cyc=%d now=%d ret=%d) vs (cyc=%d now=%d ret=%d)",
				workers, r.cycles, r.now, r.instret, base.cycles, base.now, base.instret)
		}
		t.AddRow(fmt.Sprint(workers),
			fmt.Sprintf("%.1f", float64(r.wall.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(r.wall.Nanoseconds())/float64(r.instret)),
			fmt.Sprintf("%.2fx", float64(base.wall)/float64(r.wall)),
			fmt.Sprint(r.cycles), fmt.Sprint(r.now))
	}
	return t, nil
}
