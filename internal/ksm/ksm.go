// Package ksm implements content-based page sharing across VMs, in the
// style of VMware ESX's transparent page sharing and Linux KSM: a scanner
// hashes guest pages, merges identical frames into one copy-on-write frame,
// and lets the write path (mem.GuestPhys COW handling) split them again.
// Experiment F9 measures the memory it reclaims and what scanning costs.
package ksm

import (
	"hash/fnv"

	"govisor/internal/mem"
)

// Stats counts scanner activity.
type Stats struct {
	PagesScanned uint64
	PagesMerged  uint64
	ZeroPages    uint64
	HashBytes    uint64 // bytes hashed (scan-cost proxy)
	FramesFreed  uint64
}

// Scanner deduplicates pages across a set of guest address spaces sharing
// one host pool.
type Scanner struct {
	pool *mem.Pool

	// canon maps content hash → a canonical (hfn, owner, gfn) triple.
	canon map[uint64]canonRef

	Stats Stats
}

type canonRef struct {
	hfn   uint64
	owner *mem.GuestPhys
	gfn   uint64
}

// NewScanner creates a scanner over the pool.
func NewScanner(pool *mem.Pool) *Scanner {
	return &Scanner{pool: pool, canon: make(map[uint64]canonRef)}
}

// hashPage hashes frame content; nil (lazily zero) frames hash as zero page.
func (s *Scanner) hashPage(hfn uint64) (uint64, bool) {
	data := s.pool.Data(hfn)
	if data == nil {
		return 0, true // logically zero
	}
	h := fnv.New64a()
	h.Write(data)
	s.Stats.HashBytes += uint64(len(data))
	allZero := true
	for _, b := range data {
		if b != 0 {
			allZero = false
			break
		}
	}
	return h.Sum64(), allZero
}

// equalFrames confirms byte equality before merging (hash collisions must
// never corrupt guests).
func (s *Scanner) equalFrames(a, b uint64) bool {
	da, db := s.pool.Data(a), s.pool.Data(b)
	if da == nil && db == nil {
		return true
	}
	if da == nil || db == nil {
		return s.pool.IsZero(a) && s.pool.IsZero(b)
	}
	if len(da) != len(db) {
		return false
	}
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

// ScanVM performs one full pass over a guest's pages, merging any whose
// content matches a previously seen canonical frame. Pages already shared
// are skipped. It returns the number of frames freed by this pass.
//
//govisor:serialonly(remaps frames shared across VMs; only safe at the epoch barrier)
func (s *Scanner) ScanVM(g *mem.GuestPhys) uint64 {
	var freed uint64
	before := s.pool.InUse()
	for gfn := uint64(0); gfn < g.Pages(); gfn++ {
		hfn := g.Frame(gfn)
		if hfn == mem.NoFrame {
			continue
		}
		s.Stats.PagesScanned++
		if g.IsCOW(gfn) {
			continue // already sharing
		}
		// Never merge write-protected pages (page-table pages under shadow
		// or para): their protection semantics must stay exact.
		if g.WriteProtected(gfn) {
			continue
		}
		hash, isZero := s.hashPage(hfn)
		if isZero {
			s.Stats.ZeroPages++
		}
		ref, seen := s.canon[hash]
		if !seen || ref.hfn == hfn {
			s.canon[hash] = canonRef{hfn: hfn, owner: g, gfn: gfn}
			continue
		}
		// Canonical frame may have been split or released since recorded;
		// verify it is still live and content-equal.
		if s.pool.RefCount(ref.hfn) == 0 || !s.equalFrames(ref.hfn, hfn) {
			s.canon[hash] = canonRef{hfn: hfn, owner: g, gfn: gfn}
			continue
		}
		// Merge: point this gfn at the canonical frame, COW both sides.
		s.pool.IncRef(ref.hfn)
		g.MapShared(gfn, ref.hfn)
		if ref.owner != nil {
			ref.owner.MarkCOWIfMapped(ref.gfn, ref.hfn)
		}
		s.Stats.PagesMerged++
	}
	after := s.pool.InUse()
	if before > after {
		freed = before - after
		s.Stats.FramesFreed += freed
	}
	return freed
}

// ScanAll runs one pass over every VM address space, returning total frames
// freed.
//
//govisor:serialonly(remaps frames shared across VMs; only safe at the epoch barrier)
func (s *Scanner) ScanAll(gs []*mem.GuestPhys) uint64 {
	var freed uint64
	for _, g := range gs {
		freed += s.ScanVM(g)
	}
	return freed
}
