package ksm

import (
	"testing"

	"govisor/internal/isa"
	"govisor/internal/mem"
)

func newVMSpace(t *testing.T, pool *mem.Pool, pages uint64) *mem.GuestPhys {
	t.Helper()
	g := mem.NewGuestPhys(pool, pages*isa.PageSize)
	if err := g.PopulateAll(); err != nil {
		t.Fatal(err)
	}
	return g
}

func fillPage(g *mem.GuestPhys, gfn uint64, fill byte) {
	buf := make([]byte, isa.PageSize)
	for i := range buf {
		buf[i] = fill
	}
	g.WriteRaw(gfn, buf)
}

func TestScanMergesIdenticalAcrossVMs(t *testing.T) {
	pool := mem.NewPool(64)
	a := newVMSpace(t, pool, 8)
	b := newVMSpace(t, pool, 8)
	// Same "image" content in both VMs.
	for gfn := uint64(0); gfn < 4; gfn++ {
		fillPage(a, gfn, byte(gfn+1))
		fillPage(b, gfn, byte(gfn+1))
	}
	// Distinct content elsewhere.
	fillPage(a, 5, 0xAA)
	fillPage(b, 5, 0xBB)

	before := pool.InUse()
	s := NewScanner(pool)
	freed := s.ScanAll([]*mem.GuestPhys{a, b})
	if freed == 0 {
		t.Fatal("no frames freed")
	}
	if pool.InUse() >= before {
		t.Fatal("pool usage did not drop")
	}
	// The 4 identical pages + zero pages merge; distinct pages must not.
	if a.Frame(5) == b.Frame(5) {
		t.Fatal("distinct pages merged")
	}
	for gfn := uint64(0); gfn < 4; gfn++ {
		if a.Frame(gfn) != b.Frame(gfn) {
			t.Fatalf("identical page %d not merged", gfn)
		}
		if !b.IsCOW(gfn) || !a.IsCOW(gfn) {
			t.Fatalf("merged page %d not COW on both sides", gfn)
		}
	}
}

func TestMergedPageSplitsOnWrite(t *testing.T) {
	pool := mem.NewPool(64)
	a := newVMSpace(t, pool, 4)
	b := newVMSpace(t, pool, 4)
	fillPage(a, 0, 0x42)
	fillPage(b, 0, 0x42)
	s := NewScanner(pool)
	s.ScanAll([]*mem.GuestPhys{a, b})
	if a.Frame(0) != b.Frame(0) {
		t.Fatal("pages should be merged")
	}
	// Guest B writes: COW break isolates it.
	if f := b.WriteUint(0, 8, 0xDEAD); f != nil {
		t.Fatal(f)
	}
	if a.Frame(0) == b.Frame(0) {
		t.Fatal("write did not split the shared frame")
	}
	va, _ := a.ReadUint(0, 8)
	vb, _ := b.ReadUint(0, 8)
	if va == vb {
		t.Fatal("contents should now differ")
	}
	if va != 0x4242424242424242 {
		t.Fatalf("a content corrupted: %#x", va)
	}
}

// TestMergeObservedThroughWriteMemo: a scan merging pages whose owners hold
// warm write-memo entries must be observed by the memoized store path — the
// canonical side's COW flip happens in place (no remap, no version bump), so
// only the write-epoch invalidation stands between a warm memo and
// scribbling on the shared frame.
func TestMergeObservedThroughWriteMemo(t *testing.T) {
	pool := mem.NewPool(64)
	a := newVMSpace(t, pool, 8)
	b := newVMSpace(t, pool, 8)
	fillPage(a, 2, 0x5A)
	fillPage(b, 2, 0x5A)

	// Warm both sides' memos on the page that is about to merge.
	for _, g := range []*mem.GuestPhys{a, b} {
		for i := uint64(0); i < 4; i++ {
			if f := g.WriteUintMemo(2*isa.PageSize+i*8, 8, 0x5A5A); f != nil {
				t.Fatal(f)
			}
		}
	}
	if a.WMemoHits == 0 || b.WMemoHits == 0 {
		t.Fatal("memo never engaged before the merge — vacuous test")
	}

	s := NewScanner(pool)
	s.ScanVM(a)
	s.ScanVM(b)
	if s.Stats.PagesMerged == 0 {
		t.Fatal("scan merged nothing")
	}
	if a.Frame(2) != b.Frame(2) {
		t.Fatal("pages not sharing one frame after merge")
	}

	// Post-merge stores through the warm memos must COW-split, not leak.
	if f := a.WriteUintMemo(2*isa.PageSize, 8, 0xA11A); f != nil {
		t.Fatal(f)
	}
	if a.Frame(2) == b.Frame(2) {
		t.Fatal("store through warm memo did not split the merged frame")
	}
	va, _ := a.ReadUint(2*isa.PageSize, 8)
	vb, _ := b.ReadUint(2*isa.PageSize, 8)
	if va != 0xA11A {
		t.Fatalf("writer reads %#x, want 0xA11A", va)
	}
	if vb != 0x5A5A {
		t.Fatalf("sharer reads %#x — the memoized store leaked through the merge", vb)
	}
}

func TestZeroPagesMerge(t *testing.T) {
	pool := mem.NewPool(64)
	a := newVMSpace(t, pool, 8)
	b := newVMSpace(t, pool, 8)
	// All pages zero (never written): one scan should collapse most frames.
	s := NewScanner(pool)
	before := pool.InUse()
	s.ScanAll([]*mem.GuestPhys{a, b})
	if pool.InUse() >= before {
		t.Fatalf("zero pages not merged: %d → %d", before, pool.InUse())
	}
	if s.Stats.ZeroPages == 0 {
		t.Fatal("zero page counter")
	}
}

func TestScanSkipsWriteProtectedPages(t *testing.T) {
	pool := mem.NewPool(64)
	a := newVMSpace(t, pool, 4)
	b := newVMSpace(t, pool, 4)
	fillPage(a, 1, 7)
	fillPage(b, 1, 7)
	a.WriteProtect(1, true) // a page-table page: must not merge
	s := NewScanner(pool)
	s.ScanAll([]*mem.GuestPhys{a, b})
	if a.Frame(1) == b.Frame(1) {
		t.Fatal("write-protected page merged")
	}
}

func TestRepeatedScansIdempotent(t *testing.T) {
	pool := mem.NewPool(64)
	a := newVMSpace(t, pool, 8)
	b := newVMSpace(t, pool, 8)
	for gfn := uint64(0); gfn < 8; gfn++ {
		fillPage(a, gfn, 9)
		fillPage(b, gfn, 9)
	}
	s := NewScanner(pool)
	s.ScanAll([]*mem.GuestPhys{a, b})
	inUse := pool.InUse()
	s.ScanAll([]*mem.GuestPhys{a, b})
	if pool.InUse() != inUse {
		t.Fatalf("second scan changed usage: %d → %d", inUse, pool.InUse())
	}
}

func TestSavingsScaleWithVMCount(t *testing.T) {
	pool := mem.NewPool(1024)
	var spaces []*mem.GuestPhys
	const pages = 16
	for i := 0; i < 8; i++ {
		g := newVMSpace(t, pool, pages)
		for gfn := uint64(0); gfn < pages; gfn++ {
			fillPage(g, gfn, byte(gfn)) // same image everywhere
		}
		spaces = append(spaces, g)
	}
	s := NewScanner(pool)
	s.ScanAll(spaces)
	// 8 VMs × 16 pages = 128 frames; after dedup ~16 remain.
	if pool.InUse() > 2*pages {
		t.Fatalf("in use after dedup = %d", pool.InUse())
	}
}
