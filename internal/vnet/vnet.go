// Package vnet implements the virtual L2 switch connecting VM network
// devices. Frames carry 6-byte destination and source MAC addresses in their
// first 12 bytes (Ethernet-style); the switch learns source addresses and
// forwards unicast frames to the learned port, flooding unknown and
// broadcast destinations. Delivery is synchronous and deterministic, which
// keeps the networking experiments reproducible.
//
// Two properties make the switch fleet-scale:
//
//   - Deferred frames carry the sender's simulated-cycle timestamp, and
//     Flush delivers in (timestamp, port id, send order). Arrival order
//     reflects simulated time — not worker interleaving and not flat port
//     order — so it is invariant across RunParallel worker counts and
//     matches what a serial run observes at the same simulated instant.
//   - The forwarding database is sharded by MAC and the port list is an
//     atomic snapshot, so forwards from thousands of ports never serialize
//     on one switch-wide mutex.
package vnet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// MAC is a 6-byte hardware address.
type MAC [6]byte

// Broadcast is the all-ones MAC.
var Broadcast = MAC{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// String formats the address conventionally.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// MACForVM derives a stable locally-administered MAC from a VM id.
func MACForVM(id uint32) MAC {
	return MAC{0x02, 0x67, 0x76, byte(id >> 16), byte(id >> 8), byte(id)}
}

// pendingFrame is one deferred frame plus the simulated cycle at which its
// owner sent it.
type pendingFrame struct {
	data  []byte
	stamp uint64
}

// Port is one switch attachment point. It satisfies dev.NetBackend.
type Port struct {
	sw       *Switch
	id       int
	receiver func(frame []byte)
	clock    func() uint64  // sender's simulated-cycle source; nil stamps 0
	pending  []pendingFrame // frames queued while the switch defers delivery

	TxFrames, RxFrames uint64
}

// Send transmits a frame from this port into the switch. With the switch in
// deferred mode the frame is queued on the sending port instead (owner-only
// state, so concurrent VM workers never contend), stamped with the sender's
// simulated cycle, and delivered by the next Flush in timestamp order.
func (p *Port) Send(frame []byte) {
	p.TxFrames++
	if p.sw.deferred.Load() {
		var stamp uint64
		if p.clock != nil {
			stamp = p.clock()
		}
		p.pending = append(p.pending, pendingFrame{data: append([]byte(nil), frame...), stamp: stamp})
		return
	}
	p.sw.forward(p, frame)
}

// SetClock registers the simulated-cycle source used to stamp deferred
// frames. Ports without a clock stamp 0, which sorts ahead of every clocked
// frame and (via the port-id/send-order tie-break) reproduces plain port
// order among themselves.
func (p *Port) SetClock(fn func() uint64) { p.clock = fn }

// SetReceiver registers the frame sink for this port.
func (p *Port) SetReceiver(fn func(frame []byte)) { p.receiver = fn }

// Switch returns the switch this port attaches to.
func (p *Port) Switch() *Switch { return p.sw }

func (p *Port) deliver(frame []byte) {
	p.RxFrames++
	if p.receiver != nil {
		p.receiver(frame)
	}
}

// fdbShards must be a power of two; 16 keeps shard contention negligible for
// thousands of ports while the per-shard maps stay cache-friendly.
const fdbShards = 16

// fdbShard is one slice of the forwarding database.
type fdbShard struct {
	mu sync.Mutex
	m  map[MAC]*Port
}

// fdbIndex hashes all six address bytes so sequential MACForVM addresses
// (which differ only in their low bytes) spread across shards.
func fdbIndex(mac MAC) int {
	h := uint32(2166136261)
	for _, b := range mac {
		h = (h ^ uint32(b)) * 16777619
	}
	return int(h & (fdbShards - 1))
}

// Switch is a learning L2 switch.
type Switch struct {
	mu       sync.Mutex // port registration only
	ports    atomic.Pointer[[]*Port]
	shards   [fdbShards]fdbShard
	deferred atomic.Bool

	// Stats, atomically updated: forwards from different ports touch
	// disjoint FDB shards concurrently in synchronous mode.
	Forwarded, Flooded, Dropped uint64
}

// NewSwitch creates an empty switch.
func NewSwitch() *Switch {
	s := &Switch{}
	for i := range s.shards {
		s.shards[i].m = make(map[MAC]*Port)
	}
	s.ports.Store(&[]*Port{})
	return s
}

// NewPort attaches a new port. Registration copies the port snapshot so
// forwards read it lock-free.
func (s *Switch) NewPort() *Port {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.ports.Load()
	p := &Port{sw: s, id: len(old)}
	next := make([]*Port, len(old)+1)
	copy(next, old)
	next[len(old)] = p
	s.ports.Store(&next)
	return p
}

// Ports returns the number of attached ports.
func (s *Switch) Ports() int { return len(*s.ports.Load()) }

// Learn installs a static forwarding entry: frames addressed to mac unicast
// to p without waiting for p to transmit. Purely passive receivers (a VM
// that only posts RX buffers) are otherwise unreachable except by flood.
func (s *Switch) Learn(mac MAC, p *Port) {
	sh := &s.shards[fdbIndex(mac)]
	sh.mu.Lock()
	sh.m[mac] = p
	sh.mu.Unlock()
}

// lookup consults the FDB shard for mac.
func (s *Switch) lookup(mac MAC) (*Port, bool) {
	sh := &s.shards[fdbIndex(mac)]
	sh.mu.Lock()
	p, ok := sh.m[mac]
	sh.mu.Unlock()
	return p, ok
}

// Stats returns the forwarding counters with atomic loads, safe to call
// while forwards are in flight.
func (s *Switch) Stats() (forwarded, flooded, dropped uint64) {
	return atomic.LoadUint64(&s.Forwarded), atomic.LoadUint64(&s.Flooded), atomic.LoadUint64(&s.Dropped)
}

func frameMACs(frame []byte) (dst, src MAC, ok bool) {
	if len(frame) < 12 {
		return dst, src, false
	}
	copy(dst[:], frame[0:6])
	copy(src[:], frame[6:12])
	return dst, src, true
}

func (s *Switch) forward(from *Port, frame []byte) {
	dst, src, ok := frameMACs(frame)
	if !ok {
		atomic.AddUint64(&s.Dropped, 1)
		return
	}
	// Learn only unicast sources: a broadcast (or multicast) source MAC is
	// never a legitimate station address, and learning it would let a
	// later frame *to* the broadcast group-bit space unicast-forward.
	if src[0]&1 == 0 {
		s.Learn(src, from)
	}
	if dst != Broadcast {
		if p, known := s.lookup(dst); known {
			if p == from {
				// Hairpin: the destination lives on the sending port. A
				// real switch filters these; flooding them (the old
				// behaviour) duplicated the frame to every other segment.
				atomic.AddUint64(&s.Dropped, 1)
				return
			}
			atomic.AddUint64(&s.Forwarded, 1)
			p.deliver(frame)
			return
		}
	}
	// Flood: every port except the sender.
	atomic.AddUint64(&s.Flooded, 1)
	for _, p := range *s.ports.Load() {
		if p != from {
			p.deliver(frame)
		}
	}
}

// SetDeferred switches between synchronous delivery (the default: Send
// forwards immediately) and epoch-deferred delivery for parallel host
// execution: Send queues on the sending port and Flush — called serially at
// the epoch barrier — performs the actual forwarding. Deferral makes inter-
// VM traffic independent of worker interleaving: frames are delivered in
// (timestamp, port id, send order) rather than in goroutine arrival order.
// core.Host.RunParallel flips every switch its VMs attach to into deferred
// mode automatically for the duration of the run.
//
//govisor:serialonly(flips delivery mode for every attached VM; barrier-only)
func (s *Switch) SetDeferred(on bool) { s.deferred.Store(on) }

// Deferred reports the current delivery mode.
func (s *Switch) Deferred() bool { return s.deferred.Load() }

// flushEntry pairs a queued frame with its delivery-order key.
type flushEntry struct {
	port  *Port
	frame pendingFrame
	seq   int // send order within the owning port
}

// Flush forwards every queued frame in (timestamp, port id, send order):
// arrival order reflects the simulated instant each frame was sent, with the
// port id and per-port send order as deterministic tie-breaks. It must be
// called from the epoch barrier (or any other single-threaded context) and
// returns the number of frames delivered to the switch.
//
//govisor:serialonly(delivers into every attached VM's RX ring; barrier-only)
func (s *Switch) Flush() int {
	var entries []flushEntry
	for _, p := range *s.ports.Load() {
		pending := p.pending
		p.pending = nil
		for i, f := range pending {
			entries = append(entries, flushEntry{port: p, frame: f, seq: i})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.frame.stamp != b.frame.stamp {
			return a.frame.stamp < b.frame.stamp
		}
		if a.port.id != b.port.id {
			return a.port.id < b.port.id
		}
		return a.seq < b.seq
	})
	for _, e := range entries {
		s.forward(e.port, e.frame.data)
	}
	return len(entries)
}

// BuildFrame assembles dst|src|payload.
func BuildFrame(dst, src MAC, payload []byte) []byte {
	frame := make([]byte, 12+len(payload))
	copy(frame[0:6], dst[:])
	copy(frame[6:12], src[:])
	copy(frame[12:], payload)
	return frame
}
