// Package vnet implements the virtual L2 switch connecting VM network
// devices. Frames carry 6-byte destination and source MAC addresses in their
// first 12 bytes (Ethernet-style); the switch learns source addresses and
// forwards unicast frames to the learned port, flooding unknown and
// broadcast destinations. Delivery is synchronous and deterministic, which
// keeps the networking experiments reproducible.
package vnet

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// MAC is a 6-byte hardware address.
type MAC [6]byte

// Broadcast is the all-ones MAC.
var Broadcast = MAC{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// String formats the address conventionally.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// MACForVM derives a stable locally-administered MAC from a VM id.
func MACForVM(id uint32) MAC {
	return MAC{0x02, 0x67, 0x76, byte(id >> 16), byte(id >> 8), byte(id)}
}

// Port is one switch attachment point. It satisfies dev.NetBackend.
type Port struct {
	sw       *Switch
	id       int
	receiver func(frame []byte)
	pending  [][]byte // frames queued while the switch defers delivery

	TxFrames, RxFrames uint64
}

// Send transmits a frame from this port into the switch. With the switch in
// deferred mode the frame is queued on the sending port instead (owner-only
// state, so concurrent VM workers never contend) and delivered by the next
// Flush.
func (p *Port) Send(frame []byte) {
	p.TxFrames++
	if p.sw.deferred.Load() {
		p.pending = append(p.pending, append([]byte(nil), frame...))
		return
	}
	p.sw.forward(p, frame)
}

// SetReceiver registers the frame sink for this port.
func (p *Port) SetReceiver(fn func(frame []byte)) { p.receiver = fn }

// Switch returns the switch this port attaches to.
func (p *Port) Switch() *Switch { return p.sw }

func (p *Port) deliver(frame []byte) {
	p.RxFrames++
	if p.receiver != nil {
		p.receiver(frame)
	}
}

// Switch is a learning L2 switch.
type Switch struct {
	mu       sync.Mutex
	ports    []*Port
	fdb      map[MAC]*Port // forwarding database: learned source → port
	deferred atomic.Bool

	// Stats.
	Forwarded, Flooded, Dropped uint64
}

// NewSwitch creates an empty switch.
func NewSwitch() *Switch {
	return &Switch{fdb: make(map[MAC]*Port)}
}

// NewPort attaches a new port.
func (s *Switch) NewPort() *Port {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := &Port{sw: s, id: len(s.ports)}
	s.ports = append(s.ports, p)
	return p
}

// Ports returns the number of attached ports.
func (s *Switch) Ports() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ports)
}

func frameMACs(frame []byte) (dst, src MAC, ok bool) {
	if len(frame) < 12 {
		return dst, src, false
	}
	copy(dst[:], frame[0:6])
	copy(src[:], frame[6:12])
	return dst, src, true
}

func (s *Switch) forward(from *Port, frame []byte) {
	s.mu.Lock()
	dst, src, ok := frameMACs(frame)
	if !ok {
		s.Dropped++
		s.mu.Unlock()
		return
	}
	// Learn only unicast sources: a broadcast (or multicast) source MAC is
	// never a legitimate station address, and learning it would let a
	// later frame *to* the broadcast group-bit space unicast-forward.
	if src[0]&1 == 0 {
		s.fdb[src] = from
	}
	var targets []*Port
	if dst != Broadcast {
		if p, known := s.fdb[dst]; known {
			if p == from {
				// Hairpin: the destination lives on the sending port. A
				// real switch filters these; flooding them (the old
				// behaviour) duplicated the frame to every other segment.
				s.Dropped++
				s.mu.Unlock()
				return
			}
			targets = []*Port{p}
			s.Forwarded++
		}
	}
	if targets == nil {
		// Flood: every port except the sender.
		s.Flooded++
		for _, p := range s.ports {
			if p != from {
				targets = append(targets, p)
			}
		}
	}
	s.mu.Unlock()
	for _, p := range targets {
		p.deliver(frame)
	}
}

// SetDeferred switches between synchronous delivery (the default: Send
// forwards immediately) and epoch-deferred delivery for parallel host
// execution: Send queues on the sending port and Flush — called serially at
// the epoch barrier — performs the actual forwarding. Deferral makes inter-
// VM traffic independent of worker interleaving: frames are delivered in
// (port id, send order) rather than in goroutine arrival order.
// core.Host.RunParallel flips every switch its VMs attach to into deferred
// mode automatically for the duration of the run.
//
//govisor:serialonly(flips delivery mode for every attached VM; barrier-only)
func (s *Switch) SetDeferred(on bool) { s.deferred.Store(on) }

// Deferred reports the current delivery mode.
func (s *Switch) Deferred() bool { return s.deferred.Load() }

// Flush forwards every queued frame, walking ports in id order. It must be
// called from the epoch barrier (or any other single-threaded context) and
// returns the number of frames delivered to the switch.
//
//govisor:serialonly(delivers into every attached VM's RX ring; barrier-only)
func (s *Switch) Flush() int {
	s.mu.Lock()
	ports := append([]*Port(nil), s.ports...)
	s.mu.Unlock()
	n := 0
	for _, p := range ports {
		pending := p.pending
		p.pending = nil
		for _, frame := range pending {
			s.forward(p, frame)
			n++
		}
	}
	return n
}

// BuildFrame assembles dst|src|payload.
func BuildFrame(dst, src MAC, payload []byte) []byte {
	frame := make([]byte, 12+len(payload))
	copy(frame[0:6], dst[:])
	copy(frame[6:12], src[:])
	copy(frame[12:], payload)
	return frame
}
