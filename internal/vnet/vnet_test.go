package vnet

import (
	"bytes"
	"testing"
)

func TestMACForVMStable(t *testing.T) {
	if MACForVM(1) != MACForVM(1) {
		t.Fatal("MAC not stable")
	}
	if MACForVM(1) == MACForVM(2) {
		t.Fatal("MACs collide")
	}
	if MACForVM(7).String() == "" {
		t.Fatal("formatting")
	}
}

func TestFloodThenLearnedForward(t *testing.T) {
	sw := NewSwitch()
	a, b, c := sw.NewPort(), sw.NewPort(), sw.NewPort()
	var gotB, gotC [][]byte
	b.SetReceiver(func(f []byte) { gotB = append(gotB, f) })
	c.SetReceiver(func(f []byte) { gotC = append(gotC, f) })

	macA, macB := MACForVM(1), MACForVM(2)

	// First frame A→B: unknown destination, flooded to B and C.
	a.Send(BuildFrame(macB, macA, []byte("one")))
	if len(gotB) != 1 || len(gotC) != 1 {
		t.Fatalf("flood: B=%d C=%d", len(gotB), len(gotC))
	}
	// B replies: switch learns B's port; A is already learned.
	b.Send(BuildFrame(macA, macB, []byte("two")))
	// Second A→B: unicast to B only.
	a.Send(BuildFrame(macB, macA, []byte("three")))
	if len(gotB) != 2 {
		t.Fatalf("B frames = %d", len(gotB))
	}
	if len(gotC) != 1 {
		t.Fatalf("C should not see unicast: %d", len(gotC))
	}
	if sw.Forwarded != 2 || sw.Flooded != 1 {
		t.Fatalf("stats fwd=%d flood=%d", sw.Forwarded, sw.Flooded)
	}
	if !bytes.Equal(gotB[1][12:], []byte("three")) {
		t.Fatal("payload")
	}
}

func TestBroadcastFloods(t *testing.T) {
	sw := NewSwitch()
	a, b, c := sw.NewPort(), sw.NewPort(), sw.NewPort()
	nB, nC := 0, 0
	b.SetReceiver(func([]byte) { nB++ })
	c.SetReceiver(func([]byte) { nC++ })
	a.Send(BuildFrame(Broadcast, MACForVM(1), []byte("hello")))
	if nB != 1 || nC != 1 {
		t.Fatalf("broadcast: B=%d C=%d", nB, nC)
	}
}

func TestRuntFrameDropped(t *testing.T) {
	sw := NewSwitch()
	a := sw.NewPort()
	_ = sw.NewPort()
	a.Send([]byte{1, 2, 3})
	if sw.Dropped != 1 {
		t.Fatalf("dropped = %d", sw.Dropped)
	}
}

func TestNoSelfDelivery(t *testing.T) {
	sw := NewSwitch()
	a := sw.NewPort()
	self := 0
	a.SetReceiver(func([]byte) { self++ })
	a.Send(BuildFrame(Broadcast, MACForVM(1), nil))
	if self != 0 {
		t.Fatal("sender must not receive its own frame")
	}
}

func TestPortCounters(t *testing.T) {
	sw := NewSwitch()
	a, b := sw.NewPort(), sw.NewPort()
	b.SetReceiver(func([]byte) {})
	a.Send(BuildFrame(Broadcast, MACForVM(1), nil))
	if a.TxFrames != 1 || b.RxFrames != 1 {
		t.Fatalf("counters tx=%d rx=%d", a.TxFrames, b.RxFrames)
	}
	if sw.Ports() != 2 {
		t.Fatal("port count")
	}
}
