package vnet

import (
	"bytes"
	"testing"
)

func TestMACForVMStable(t *testing.T) {
	if MACForVM(1) != MACForVM(1) {
		t.Fatal("MAC not stable")
	}
	if MACForVM(1) == MACForVM(2) {
		t.Fatal("MACs collide")
	}
	if MACForVM(7).String() == "" {
		t.Fatal("formatting")
	}
}

func TestFloodThenLearnedForward(t *testing.T) {
	sw := NewSwitch()
	a, b, c := sw.NewPort(), sw.NewPort(), sw.NewPort()
	var gotB, gotC [][]byte
	b.SetReceiver(func(f []byte) { gotB = append(gotB, f) })
	c.SetReceiver(func(f []byte) { gotC = append(gotC, f) })

	macA, macB := MACForVM(1), MACForVM(2)

	// First frame A→B: unknown destination, flooded to B and C.
	a.Send(BuildFrame(macB, macA, []byte("one")))
	if len(gotB) != 1 || len(gotC) != 1 {
		t.Fatalf("flood: B=%d C=%d", len(gotB), len(gotC))
	}
	// B replies: switch learns B's port; A is already learned.
	b.Send(BuildFrame(macA, macB, []byte("two")))
	// Second A→B: unicast to B only.
	a.Send(BuildFrame(macB, macA, []byte("three")))
	if len(gotB) != 2 {
		t.Fatalf("B frames = %d", len(gotB))
	}
	if len(gotC) != 1 {
		t.Fatalf("C should not see unicast: %d", len(gotC))
	}
	if sw.Forwarded != 2 || sw.Flooded != 1 {
		t.Fatalf("stats fwd=%d flood=%d", sw.Forwarded, sw.Flooded)
	}
	if !bytes.Equal(gotB[1][12:], []byte("three")) {
		t.Fatal("payload")
	}
}

func TestBroadcastFloods(t *testing.T) {
	sw := NewSwitch()
	a, b, c := sw.NewPort(), sw.NewPort(), sw.NewPort()
	nB, nC := 0, 0
	b.SetReceiver(func([]byte) { nB++ })
	c.SetReceiver(func([]byte) { nC++ })
	a.Send(BuildFrame(Broadcast, MACForVM(1), []byte("hello")))
	if nB != 1 || nC != 1 {
		t.Fatalf("broadcast: B=%d C=%d", nB, nC)
	}
}

func TestRuntFrameDropped(t *testing.T) {
	sw := NewSwitch()
	a := sw.NewPort()
	_ = sw.NewPort()
	a.Send([]byte{1, 2, 3})
	if sw.Dropped != 1 {
		t.Fatalf("dropped = %d", sw.Dropped)
	}
}

func TestNoSelfDelivery(t *testing.T) {
	sw := NewSwitch()
	a := sw.NewPort()
	self := 0
	a.SetReceiver(func([]byte) { self++ })
	a.Send(BuildFrame(Broadcast, MACForVM(1), nil))
	if self != 0 {
		t.Fatal("sender must not receive its own frame")
	}
}

func TestPortCounters(t *testing.T) {
	sw := NewSwitch()
	a, b := sw.NewPort(), sw.NewPort()
	b.SetReceiver(func([]byte) {})
	a.Send(BuildFrame(Broadcast, MACForVM(1), nil))
	if a.TxFrames != 1 || b.RxFrames != 1 {
		t.Fatalf("counters tx=%d rx=%d", a.TxFrames, b.RxFrames)
	}
	if sw.Ports() != 2 {
		t.Fatal("port count")
	}
}

// TestHairpinUnicastDropped: a unicast frame whose destination is learned on
// the sending port must be filtered, not flooded — before the fix the switch
// treated "known but on the sender" as unknown and duplicated the frame to
// every other segment.
func TestHairpinUnicastDropped(t *testing.T) {
	sw := NewSwitch()
	a, b := sw.NewPort(), sw.NewPort()
	nB := 0
	b.SetReceiver(func([]byte) { nB++ })
	macA, macA2 := MACForVM(1), MACForVM(10)

	// Two stations behind port A teach the switch both MACs.
	a.Send(BuildFrame(Broadcast, macA, nil))
	a.Send(BuildFrame(Broadcast, macA2, nil))
	if nB != 2 {
		t.Fatalf("broadcast floods = %d, want 2", nB)
	}
	// A-side traffic between them hairpins: same ingress port as the
	// learned destination. The switch must drop, and B must see nothing.
	a.Send(BuildFrame(macA2, macA, []byte("local")))
	a.Send(BuildFrame(macA, macA2, []byte("reply")))
	if nB != 2 {
		t.Fatalf("hairpin frames leaked to B: %d", nB)
	}
	if sw.Dropped != 2 || sw.Forwarded != 0 {
		t.Fatalf("stats dropped=%d fwd=%d, want 2/0", sw.Dropped, sw.Forwarded)
	}
}

// TestHairpinUnicastDroppedDeferred is the same property through the
// deferred (parallel-epoch) path: queued hairpin frames are filtered at
// Flush, which still counts them as flushed (they entered the switch).
func TestHairpinUnicastDroppedDeferred(t *testing.T) {
	sw := NewSwitch()
	a, b := sw.NewPort(), sw.NewPort()
	nB := 0
	b.SetReceiver(func([]byte) { nB++ })
	macA, macA2 := MACForVM(1), MACForVM(10)
	a.Send(BuildFrame(Broadcast, macA, nil))
	a.Send(BuildFrame(Broadcast, macA2, nil))

	sw.SetDeferred(true)
	a.Send(BuildFrame(macA2, macA, []byte("local")))
	a.Send(BuildFrame(MACForVM(2), macA, []byte("far"))) // unknown dst: floods
	if n := sw.Flush(); n != 2 {
		t.Fatalf("flushed %d frames, want 2", n)
	}
	sw.SetDeferred(false)
	if nB != 3 { // two broadcasts + one flood; the hairpin must not arrive
		t.Fatalf("B received %d frames, want 3", nB)
	}
	if sw.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", sw.Dropped)
	}
}

// TestBroadcastSourceNotLearned: a frame whose *source* MAC is the broadcast
// address must not be learned — before the fix it entered the fdb, and a
// later frame addressed to ff:ff:.. on a switch with such a poisoned entry
// would have unicast-forwarded instead of flooding. Group-bit (multicast)
// sources are refused the same way, in sync and deferred modes.
func TestBroadcastSourceNotLearned(t *testing.T) {
	for _, deferred := range []bool{false, true} {
		sw := NewSwitch()
		a, b, c := sw.NewPort(), sw.NewPort(), sw.NewPort()
		nB, nC := 0, 0
		b.SetReceiver(func([]byte) { nB++ })
		c.SetReceiver(func([]byte) { nC++ })
		mcast := MAC{0x01, 0x00, 0x5e, 0x00, 0x00, 0x01}

		sw.SetDeferred(deferred)
		a.Send(BuildFrame(MACForVM(2), Broadcast, nil)) // broadcast source
		a.Send(BuildFrame(MACForVM(2), mcast, nil))     // multicast source
		b.Send(BuildFrame(Broadcast, MACForVM(2), nil)) // must still flood
		if deferred {
			sw.Flush()
			sw.SetDeferred(false)
		}
		if nC != 3 {
			t.Fatalf("deferred=%v: C received %d frames, want 3 floods", deferred, nC)
		}
		if sw.Flooded != 3 {
			t.Fatalf("deferred=%v: flooded = %d, want 3", deferred, sw.Flooded)
		}
	}
}

// TestDeferredDeliveryFlushesInPortOrder: with the switch deferred (parallel
// host epochs), Send queues and Flush delivers everything in (port id, send
// order) — the property that makes inter-VM traffic independent of worker
// interleaving.
func TestDeferredDeliveryFlushesInPortOrder(t *testing.T) {
	sw := NewSwitch()
	a, b, c := sw.NewPort(), sw.NewPort(), sw.NewPort()
	var got [][]byte
	c.SetReceiver(func(f []byte) { got = append(got, append([]byte(nil), f...)) })
	macA, macB, macC := MACForVM(1), MACForVM(2), MACForVM(3)
	// Teach the switch C's port so deferred unicasts don't flood.
	c.Send(BuildFrame(Broadcast, macC, []byte("hello")))

	sw.SetDeferred(true)
	// Sends arrive "out of order" (as racing workers would): B then A.
	buf := []byte("from-b")
	b.Send(BuildFrame(macC, macB, buf))
	buf[0] = 'X' // the queue must hold a private copy
	a.Send(BuildFrame(macC, macA, []byte("from-a")))
	a.Send(BuildFrame(macC, macA, []byte("from-a2")))
	if len(got) != 0 {
		t.Fatalf("deferred switch delivered early: %d", len(got))
	}
	if n := sw.Flush(); n != 3 {
		t.Fatalf("flushed %d frames, want 3", n)
	}
	want := []string{"from-a", "from-a2", "from-b"} // port order, then send order
	for i, w := range want {
		if string(got[i][12:]) != w {
			t.Fatalf("frame %d = %q, want %q", i, got[i][12:], w)
		}
	}
	// Back to synchronous: Send delivers immediately again.
	sw.SetDeferred(false)
	a.Send(BuildFrame(macC, macA, []byte("sync")))
	if len(got) != 4 || string(got[3][12:]) != "sync" {
		t.Fatal("synchronous mode not restored")
	}
	if n := sw.Flush(); n != 0 {
		t.Fatalf("empty flush delivered %d", n)
	}
}

// TestFlushDeliversInTimestampOrder: ports with clocks stamp each deferred
// frame with the sender's simulated cycle, and Flush sorts by (timestamp,
// port id, send order). A frame sent "earlier in simulated time" from a
// higher-id port must arrive before a later frame from a lower-id port —
// arrival order reflects simulated time, not the flat port walk.
func TestFlushDeliversInTimestampOrder(t *testing.T) {
	sw := NewSwitch()
	a, b, c := sw.NewPort(), sw.NewPort(), sw.NewPort()
	var got []string
	c.SetReceiver(func(f []byte) { got = append(got, string(f[12:])) })
	macA, macB, macC := MACForVM(1), MACForVM(2), MACForVM(3)
	sw.Learn(macC, c)

	var cycA, cycB uint64
	a.SetClock(func() uint64 { return cycA })
	b.SetClock(func() uint64 { return cycB })

	sw.SetDeferred(true)
	cycA = 200
	a.Send(BuildFrame(macC, macA, []byte("a@200")))
	cycA = 250
	a.Send(BuildFrame(macC, macA, []byte("a@250")))
	cycB = 100
	b.Send(BuildFrame(macC, macB, []byte("b@100")))
	cycB = 200 // ties with a@200: port id breaks the tie, a first
	b.Send(BuildFrame(macC, macB, []byte("b@200")))
	if n := sw.Flush(); n != 4 {
		t.Fatalf("flushed %d frames, want 4", n)
	}
	sw.SetDeferred(false)

	want := []string{"b@100", "a@200", "b@200", "a@250"}
	if len(got) != len(want) {
		t.Fatalf("received %d frames, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("frame %d = %q, want %q (full order %v)", i, got[i], w, got)
		}
	}
}

// TestLearnStaticEntry: a static FDB entry makes a purely passive port
// reachable by unicast without it ever transmitting.
func TestLearnStaticEntry(t *testing.T) {
	sw := NewSwitch()
	a, b, c := sw.NewPort(), sw.NewPort(), sw.NewPort()
	nB, nC := 0, 0
	b.SetReceiver(func([]byte) { nB++ })
	c.SetReceiver(func([]byte) { nC++ })
	macB := MACForVM(2)
	sw.Learn(macB, b)
	a.Send(BuildFrame(macB, MACForVM(1), []byte("hi")))
	if nB != 1 || nC != 0 {
		t.Fatalf("static unicast: B=%d C=%d, want 1/0", nB, nC)
	}
	if sw.Forwarded != 1 || sw.Flooded != 0 {
		t.Fatalf("stats fwd=%d flood=%d", sw.Forwarded, sw.Flooded)
	}
	fwd, fl, dr := sw.Stats()
	if fwd != 1 || fl != 0 || dr != 0 {
		t.Fatalf("Stats() = %d/%d/%d", fwd, fl, dr)
	}
}
