package vnet

import (
	"bytes"
	"testing"
)

func TestMACForVMStable(t *testing.T) {
	if MACForVM(1) != MACForVM(1) {
		t.Fatal("MAC not stable")
	}
	if MACForVM(1) == MACForVM(2) {
		t.Fatal("MACs collide")
	}
	if MACForVM(7).String() == "" {
		t.Fatal("formatting")
	}
}

func TestFloodThenLearnedForward(t *testing.T) {
	sw := NewSwitch()
	a, b, c := sw.NewPort(), sw.NewPort(), sw.NewPort()
	var gotB, gotC [][]byte
	b.SetReceiver(func(f []byte) { gotB = append(gotB, f) })
	c.SetReceiver(func(f []byte) { gotC = append(gotC, f) })

	macA, macB := MACForVM(1), MACForVM(2)

	// First frame A→B: unknown destination, flooded to B and C.
	a.Send(BuildFrame(macB, macA, []byte("one")))
	if len(gotB) != 1 || len(gotC) != 1 {
		t.Fatalf("flood: B=%d C=%d", len(gotB), len(gotC))
	}
	// B replies: switch learns B's port; A is already learned.
	b.Send(BuildFrame(macA, macB, []byte("two")))
	// Second A→B: unicast to B only.
	a.Send(BuildFrame(macB, macA, []byte("three")))
	if len(gotB) != 2 {
		t.Fatalf("B frames = %d", len(gotB))
	}
	if len(gotC) != 1 {
		t.Fatalf("C should not see unicast: %d", len(gotC))
	}
	if sw.Forwarded != 2 || sw.Flooded != 1 {
		t.Fatalf("stats fwd=%d flood=%d", sw.Forwarded, sw.Flooded)
	}
	if !bytes.Equal(gotB[1][12:], []byte("three")) {
		t.Fatal("payload")
	}
}

func TestBroadcastFloods(t *testing.T) {
	sw := NewSwitch()
	a, b, c := sw.NewPort(), sw.NewPort(), sw.NewPort()
	nB, nC := 0, 0
	b.SetReceiver(func([]byte) { nB++ })
	c.SetReceiver(func([]byte) { nC++ })
	a.Send(BuildFrame(Broadcast, MACForVM(1), []byte("hello")))
	if nB != 1 || nC != 1 {
		t.Fatalf("broadcast: B=%d C=%d", nB, nC)
	}
}

func TestRuntFrameDropped(t *testing.T) {
	sw := NewSwitch()
	a := sw.NewPort()
	_ = sw.NewPort()
	a.Send([]byte{1, 2, 3})
	if sw.Dropped != 1 {
		t.Fatalf("dropped = %d", sw.Dropped)
	}
}

func TestNoSelfDelivery(t *testing.T) {
	sw := NewSwitch()
	a := sw.NewPort()
	self := 0
	a.SetReceiver(func([]byte) { self++ })
	a.Send(BuildFrame(Broadcast, MACForVM(1), nil))
	if self != 0 {
		t.Fatal("sender must not receive its own frame")
	}
}

func TestPortCounters(t *testing.T) {
	sw := NewSwitch()
	a, b := sw.NewPort(), sw.NewPort()
	b.SetReceiver(func([]byte) {})
	a.Send(BuildFrame(Broadcast, MACForVM(1), nil))
	if a.TxFrames != 1 || b.RxFrames != 1 {
		t.Fatalf("counters tx=%d rx=%d", a.TxFrames, b.RxFrames)
	}
	if sw.Ports() != 2 {
		t.Fatal("port count")
	}
}

// TestDeferredDeliveryFlushesInPortOrder: with the switch deferred (parallel
// host epochs), Send queues and Flush delivers everything in (port id, send
// order) — the property that makes inter-VM traffic independent of worker
// interleaving.
func TestDeferredDeliveryFlushesInPortOrder(t *testing.T) {
	sw := NewSwitch()
	a, b, c := sw.NewPort(), sw.NewPort(), sw.NewPort()
	var got [][]byte
	c.SetReceiver(func(f []byte) { got = append(got, append([]byte(nil), f...)) })
	macA, macB, macC := MACForVM(1), MACForVM(2), MACForVM(3)
	// Teach the switch C's port so deferred unicasts don't flood.
	c.Send(BuildFrame(Broadcast, macC, []byte("hello")))

	sw.SetDeferred(true)
	// Sends arrive "out of order" (as racing workers would): B then A.
	buf := []byte("from-b")
	b.Send(BuildFrame(macC, macB, buf))
	buf[0] = 'X' // the queue must hold a private copy
	a.Send(BuildFrame(macC, macA, []byte("from-a")))
	a.Send(BuildFrame(macC, macA, []byte("from-a2")))
	if len(got) != 0 {
		t.Fatalf("deferred switch delivered early: %d", len(got))
	}
	if n := sw.Flush(); n != 3 {
		t.Fatalf("flushed %d frames, want 3", n)
	}
	want := []string{"from-a", "from-a2", "from-b"} // port order, then send order
	for i, w := range want {
		if string(got[i][12:]) != w {
			t.Fatalf("frame %d = %q, want %q", i, got[i][12:], w)
		}
	}
	// Back to synchronous: Send delivers immediately again.
	sw.SetDeferred(false)
	a.Send(BuildFrame(macC, macA, []byte("sync")))
	if len(got) != 4 || string(got[3][12:]) != "sync" {
		t.Fatal("synchronous mode not restored")
	}
	if n := sw.Flush(); n != 0 {
		t.Fatalf("empty flush delivered %d", n)
	}
}
