package migrate

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"govisor/internal/core"
	"govisor/internal/isa"
)

// fuzzConn feeds a fixed byte slice to readFrame and discards writes.
type fuzzConn struct{ r *bytes.Reader }

func (c *fuzzConn) Read(p []byte) (int, error)  { return c.r.Read(p) }
func (c *fuzzConn) Write(p []byte) (int, error) { return len(p), nil }
func (c *fuzzConn) Close() error                { return nil }

// fuzzNPages sizes decodeCommit's bitmap check: the 2 MiB test VMs have
// 512 guest pages, and the seeds below are built against the same figure.
const fuzzNPages = 512

// seedFrames builds one valid frame of every type, in sequence, as one
// stream — the happy path every mutation starts from.
func seedFrames() []byte {
	var out []byte
	var seq uint64
	add := func(ft frameType, payload []byte) {
		var buf bytes.Buffer
		w := newWireConn(struct {
			io.Reader
			io.Writer
			io.Closer
		}{nil, &buf, io.NopCloser(nil)})
		w.wseq = seq
		if err := w.writeFrame(ft, payload); err != nil {
			panic(err)
		}
		seq++
		out = append(out, buf.Bytes()...)
	}
	page := make([]byte, isa.PageSize)
	for i := range page {
		page[i] = byte(i * 7)
	}
	var arch core.ArchState
	arch.PC = 0x1000
	arch.Priv = 1
	arch.X[2] = 0xFFF0
	arch.CSR.Satp = 1<<63 | 42
	present := newBitmap(fuzzNPages)
	bitmapSet(present, 0)
	bitmapSet(present, 511)
	add(ftHello, encodeHello(helloMsg{NPages: fuzzNPages, Mode: PreCopy}))
	add(ftWelcome, encodeWelcome(welcomeMsg{AckedRounds: 3, Committed: false}))
	add(ftPages, encodeRuns([]pageRun{
		{Start: 0, Count: 4, Zero: true},
		{Start: 4, Count: 1, Data: page},
	}))
	add(ftRoundEnd, encodeRoundEnd(roundEndMsg{Round: 2, Pages: 5}))
	add(ftRoundAck, encodeU64(2))
	add(ftArch, encodeArch(arch))
	add(ftCommit, encodeCommit(commitMsg{Downtime: 819, Mode: PostCopy, Present: present}))
	add(ftCommitAck, nil)
	add(ftPull, encodeU64(17))
	add(ftPage, encodePage(pageMsg{GFN: 17, Have: true, Data: page}))
	add(ftPullChunk, encodeU64(8))
	add(ftChunkDone, encodeChunkDone(chunkDoneMsg{Pushed: 8, Done: true}))
	return out
}

// FuzzMigrationStream: the wire decoders must be total — an arbitrary byte
// stream either parses as frames whose payloads decode, or fails with an
// error; never a panic, never an unbounded allocation. Every payload that
// does decode must re-encode and re-decode to the same value, so a
// destination's view of a frame is exactly what a re-sending source would
// put back on the wire (the resume path depends on this).
func FuzzMigrationStream(f *testing.F) {
	seed := seedFrames()
	f.Add(seed)
	// A bit flip in the payload of the first frame: the CRC must catch it.
	flipped := append([]byte(nil), seed...)
	flipped[headerSize+3] ^= 0x10
	f.Add(flipped)
	f.Add(seed[:len(seed)-5]) // truncated mid-frame
	f.Add(seed[7:])           // desynchronized start
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		w := newWireConn(&fuzzConn{bytes.NewReader(data)})
		for {
			ft, p, err := w.readFrame()
			if err != nil {
				return // framing rejected the rest of the stream
			}
			checkPayload(t, ft, p)
		}
	})
}

// checkPayload decodes one frame payload and, on success, proves the
// encode∘decode round trip is the identity.
func checkPayload(t *testing.T, ft frameType, p []byte) {
	t.Helper()
	reject := func(again []byte, err error) {
		if err != nil {
			t.Fatalf("%v re-decode failed after round trip: %v", ft, err)
		}
		if !bytes.Equal(again, p) {
			t.Fatalf("%v round trip changed payload:\n in %x\nout %x", ft, p, again)
		}
	}
	switch ft {
	case ftHello:
		if m, err := decodeHello(p); err == nil {
			reject(encodeHello(m), nil)
		}
	case ftWelcome:
		if m, err := decodeWelcome(p); err == nil {
			reject(encodeWelcome(m), nil)
		}
	case ftPages:
		runs, err := decodeRuns(p)
		if err != nil {
			return
		}
		again, err := decodeRuns(encodeRuns(runs))
		if err != nil || !reflect.DeepEqual(runs, again) {
			t.Fatalf("pages round trip diverged (err %v)", err)
		}
	case ftRoundEnd:
		if m, err := decodeRoundEnd(p); err == nil {
			reject(encodeRoundEnd(m), nil)
		}
	case ftRoundAck, ftPull, ftPullChunk:
		if v, err := decodeU64(p, ft.String()); err == nil {
			reject(encodeU64(v), nil)
		}
	case ftArch:
		a, err := decodeArch(p)
		if err != nil {
			return
		}
		again, err := decodeArch(encodeArch(a))
		if err != nil || a != again {
			t.Fatalf("arch round trip diverged (err %v)", err)
		}
	case ftCommit:
		if m, err := decodeCommit(p, fuzzNPages); err == nil {
			reject(encodeCommit(m), nil)
		}
	case ftCommitAck:
		// No payload; nothing to decode.
	case ftPage:
		if m, err := decodePage(p); err == nil {
			reject(encodePage(m), nil)
		}
	case ftChunkDone:
		if m, err := decodeChunkDone(p); err == nil {
			reject(encodeChunkDone(m), nil)
		}
	default:
		// Unknown frame type: framing accepted it (CRC was valid), the
		// protocol layer would reject it — that is expectFrame's job.
	}
}

// TestSeedFramesParse keeps the checked-in corpus honest: the seed stream
// must parse end-to-end with every payload decoding.
func TestSeedFramesParse(t *testing.T) {
	data := seedFrames()
	w := newWireConn(&fuzzConn{bytes.NewReader(data)})
	var n int
	for {
		ft, p, err := w.readFrame()
		if err != nil {
			break
		}
		checkPayload(t, ft, p)
		n++
	}
	if n != 12 {
		t.Fatalf("seed stream parsed %d frames, want 12", n)
	}
}
