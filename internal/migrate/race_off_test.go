//go:build !race

package migrate

// raceScale divides the test-side guest-execution budgets (warm-up,
// post-migration verification, lockstep run-on) under the race detector,
// which costs ~10-20× per memory access: full size normally, scaled down so
// `go test -race ./...` stays inside the default per-package timeout. The
// migration engine's own stepping (round quanta, link cycle costs) is NOT
// scaled — the algorithms under test run their real schedules — and every
// differential comparison uses the same budget on both arms, so determinism
// assertions are unaffected.
const raceScale = 1
