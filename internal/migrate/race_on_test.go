//go:build race

package migrate

// raceScale under the race detector: see race_off_test.go.
const raceScale = 8
