package migrate

// Streamed live migration: the in-process engine's three algorithms run
// over a real byte transport (net.Pipe, TCP, anything io.ReadWriteCloser)
// with the wire codec in wire.go, and — the point of the exercise — an
// explicit failure model. Connections drop, frames corrupt, writes
// truncate; the engine retries with backoff in simulated cycles, resumes
// from the last destination-acked round re-sending only what was dirtied
// since, and if the brown-out exceeds a hard DowntimeBudget it aborts and
// rolls the source back so the guest never observes the attempt.
//
// Cost-model identity: the simulated clock charges the *logical* wire
// sizes (pageWireSize per page, cpuStateWireSize for the CPU state) in the
// exact sequence the in-process engine does, regardless of how frames are
// physically encoded (zero-run batching shrinks WireBytes, never
// BytesSent). A fault-free streamed migration is therefore byte-identical
// to Migrate — same registers, RAM, dirty/COW accounting, and Report —
// which stream_test.go proves differentially.
//
// Concurrency model: the protocol is strictly turn-based, so at any moment
// each side has one goroutine touching its conn half. Pre-commit the
// source drives and the destination reacts (session.serve); post-commit in
// post-copy the roles invert — the destination drives pulls and chunk
// requests, and redials on failure, handing the source a fresh half via
// the session (the in-process stand-in for dialing the source's listener).

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"govisor/internal/core"
	"govisor/internal/isa"
	"govisor/internal/mem"
)

// ErrAborted tags a migration that gave up and rolled back: the source is
// running again with guest-visible state exactly as it was at Pause, the
// destination is to be discarded.
var ErrAborted = errors.New("migrate: aborted; source rolled back")

// errBudget is the non-retriable brown-out overrun.
var errBudget = errors.New("migrate: downtime budget exceeded")

// Wire produces one connection attempt: the source-side and
// destination-side halves of a fresh duplex byte stream.
type Wire func() (src, dst io.ReadWriteCloser, err error)

// PipeWire is a Wire over net.Pipe. wrapSrc, when non-nil, wraps the
// source half — the hook where a faultnet injector goes.
func PipeWire(wrapSrc func(io.ReadWriteCloser) io.ReadWriteCloser) Wire {
	return func() (io.ReadWriteCloser, io.ReadWriteCloser, error) {
		a, b := net.Pipe()
		var s io.ReadWriteCloser = a
		if wrapSrc != nil {
			s = wrapSrc(a)
		}
		return s, b, nil
	}
}

// StreamOptions configures a streamed migration.
type StreamOptions struct {
	Options
	// Wire opens a connection attempt (default: a clean net.Pipe).
	Wire Wire
	// MaxAttempts bounds consecutive failures of one operation before the
	// migration gives up (default 5).
	MaxAttempts int
	// BackoffCycles is the base retry backoff in simulated cycles,
	// doubling per consecutive failure (default 200_000).
	BackoffCycles uint64
	// DowntimeBudget caps brown-out cycles; exceeding it aborts and rolls
	// back. 0 means unlimited.
	DowntimeBudget uint64
	// DelayCycles, when set, drains injected latency (e.g. a faultnet
	// Injector's TakeDelayCycles) to charge to the simulated clock.
	DelayCycles func() uint64
	// PauseProbe, when set, runs immediately after the source pauses —
	// the test hook that checkpoints guest-visible state for rollback
	// proofs.
	PauseProbe func()
}

// DefaultStreamOptions mirrors DefaultOptions with streaming defaults.
func DefaultStreamOptions() StreamOptions {
	return StreamOptions{Options: DefaultOptions(), MaxAttempts: 5, BackoffCycles: 200_000}
}

// StreamReport extends Report with transport-level outcomes.
type StreamReport struct {
	Report
	WireBytes uint64 // physical bytes moved on engine-tracked conns
	Retries   uint64 // failed operations / connection attempts
	Resumes   uint64 // successful reconnects after a drop
	Aborted   bool   // gave up; source rolled back (or never paused)
}

// StreamMigrate moves the running guest in src to dst over a wire. On
// success dst is running and src is paused, exactly as Migrate leaves
// them; on an ErrAborted error src is running again with guest-visible
// state bit-for-bit as it was when the brown-out began.
//
//govisor:serialonly(drives two VMs and a wire protocol; migration runs outside worker context)
func StreamMigrate(src, dst *core.VM, opt StreamOptions) (StreamReport, error) {
	if err := validatePair(src, dst); err != nil {
		return StreamReport{}, err
	}
	if opt.Wire == nil {
		opt.Wire = PipeWire(nil)
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 5
	}
	if opt.BackoffCycles == 0 {
		opt.BackoffCycles = 200_000
	}
	e := &streamEngine{s: newSession(src, dst, opt), src: src, opt: opt}
	e.rep.Mode = opt.Mode
	var err error
	switch opt.Mode {
	case PreCopy:
		err = e.preCopy()
	case StopAndCopy:
		err = e.stopAndCopy()
	case PostCopy:
		err = e.postCopy()
	default:
		return StreamReport{}, fmt.Errorf("migrate: unknown mode %d", opt.Mode)
	}
	e.finish()
	return e.rep, err
}

// ---- destination session -------------------------------------------------

// session holds the state both hosts' migration daemons share across
// connection attempts: the destination's acked-round / committed record
// (what welcome reports on resume), the applied-page bitmap, and the
// source's post-copy serving state.
type session struct {
	src, dst *core.VM
	opt      StreamOptions
	npages   uint64
	zeroPage []byte

	mu           sync.Mutex
	ackedRounds  uint64
	committed    bool
	applied      []byte // dest: pages landed (stream or pull)
	appliedCount uint64
	present      []byte // dest: source-present bitmap from commit
	presentCount uint64
	arch         core.ArchState
	haveArch     bool
	// dest-side accounting merged into the engine report at sync points
	destFills   uint64
	destBytes   uint64
	destCycles  uint64
	destRetries uint64
	destResumes uint64
	wireBytes   uint64

	// post-copy source serving state (fixed at commit, like the
	// in-process engine's `remaining` list and `sent` map). srvMu
	// serializes spawned demand-only servers: a redial may start the next
	// server while the previous one is still unwinding from its dead conn,
	// and both touch this state.
	srvMu     sync.Mutex
	remaining []uint64
	cursor    int
	sent      []byte
	sentCount uint64
	srcCount  uint64 // len of present set at commit

	// dest-driven redial plumbing
	dstConn  *wireConn
	srcConns chan io.ReadWriteCloser // chunk mode: fresh src halves for the engine
}

func newSession(src, dst *core.VM, opt StreamOptions) *session {
	return &session{
		src:      src,
		dst:      dst,
		opt:      opt,
		npages:   dst.Mem.Pages(),
		zeroPage: make([]byte, isa.PageSize),
		applied:  newBitmap(dst.Mem.Pages()),
		srcConns: make(chan io.ReadWriteCloser, 1),
	}
}

func (s *session) welcome() welcomeMsg {
	s.mu.Lock()
	defer s.mu.Unlock()
	return welcomeMsg{AckedRounds: s.ackedRounds, Committed: s.committed}
}

func (s *session) isCommitted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committed
}

func (s *session) addWire(n uint64) {
	s.mu.Lock()
	s.wireBytes += n
	s.mu.Unlock()
}

// markApplied records a landed page; once the present set is covered it
// clears the destination's PageSource — the source is no longer pinned.
func (s *session) markApplied(gfn uint64) {
	s.mu.Lock()
	if !bitmapGet(s.applied, gfn) {
		bitmapSet(s.applied, gfn)
		s.appliedCount++
	}
	release := s.committed && s.presentCount > 0 && s.coveredLocked()
	s.mu.Unlock()
	if release && s.dst.PageSource != nil {
		s.dst.PageSource = nil
	}
}

// coveredLocked reports whether every source-present page has landed.
// Caller holds mu.
func (s *session) coveredLocked() bool {
	for i := uint64(0); i < s.npages; i++ {
		if bitmapGet(s.present, i) && !bitmapGet(s.applied, i) {
			return false
		}
	}
	return true
}

// applyRuns lands streamed page runs in the destination's RAM, in gfn
// order, through the same WriteRaw path the in-process engine uses — so
// dirty/COW accounting on the destination is identical.
func (s *session) applyRuns(runs []pageRun) error {
	for _, r := range runs {
		if r.Start+uint64(r.Count) > s.npages {
			return fmt.Errorf("migrate: page run [%d,+%d) outside %d pages", r.Start, r.Count, s.npages)
		}
		for i := uint64(0); i < uint64(r.Count); i++ {
			gfn := r.Start + i
			data := s.zeroPage
			if !r.Zero {
				data = r.Data[i*isa.PageSize : (i+1)*isa.PageSize]
			}
			if err := s.dst.Mem.WriteRaw(gfn, data); err != nil {
				return fmt.Errorf("migrate: applying gfn %d: %w", gfn, err)
			}
			s.markApplied(gfn)
		}
	}
	return nil
}

// serve reacts to one source-driven connection: apply pages, ack rounds,
// adopt on commit. Returns keepConn=true when the conn's ownership has
// passed to the demand-pull closure (post-copy demand-only).
func (s *session) serve(conn *wireConn) (keepConn bool) {
	for {
		t, p, err := conn.readFrame()
		if err != nil {
			return false
		}
		switch t {
		case ftHello:
			if _, err := decodeHello(p); err != nil {
				return false
			}
			if conn.writeFrame(ftWelcome, encodeWelcome(s.welcome())) != nil {
				return false
			}
		case ftPages:
			runs, err := decodeRuns(p)
			if err != nil {
				return false
			}
			if s.applyRuns(runs) != nil {
				return false
			}
		case ftArch:
			a, err := decodeArch(p)
			if err != nil {
				return false
			}
			s.mu.Lock()
			s.arch, s.haveArch = a, true
			s.mu.Unlock()
		case ftRoundEnd:
			m, err := decodeRoundEnd(p)
			if err != nil {
				return false
			}
			s.mu.Lock()
			if m.Round >= s.ackedRounds {
				s.ackedRounds = m.Round + 1
			}
			s.mu.Unlock()
			if conn.writeFrame(ftRoundAck, encodeU64(m.Round)) != nil {
				return false
			}
		case ftCommit:
			m, err := decodeCommit(p, s.npages)
			if err != nil || s.commit(m, conn) != nil {
				return false
			}
			if conn.writeFrame(ftCommitAck, nil) != nil {
				return false
			}
			if s.opt.Mode != PostCopy {
				return false // session complete
			}
			if s.opt.PostCopyPushChunk > 0 {
				s.pushLoop(conn)
				return false
			}
			return true // demand-only: the PageSource closure owns conn now
		default:
			return false
		}
	}
}

// commit performs the switchover once; resends are acked idempotently.
func (s *session) commit(m commitMsg, conn *wireConn) error {
	s.mu.Lock()
	if s.committed {
		s.mu.Unlock()
		return nil
	}
	if !s.haveArch {
		s.mu.Unlock()
		return errors.New("migrate: commit before architectural state")
	}
	arch := s.arch
	s.committed = true
	if s.opt.Mode == PostCopy {
		s.present = append([]byte(nil), m.Present...)
		s.presentCount = 0
		for i := uint64(0); i < s.npages; i++ {
			if bitmapGet(s.present, i) {
				s.presentCount++
			}
		}
	}
	s.mu.Unlock()
	s.dst.AdoptArch(arch)
	s.dst.CPU.AddCycles(m.Downtime)
	if s.opt.Mode == PostCopy {
		s.dstConn = conn
		s.dst.PageSource = s.demandPull
	}
	return nil
}

// demandPull is the destination's post-copy PageSource: consult the
// present bitmap locally (absent pages fall back to demand-zero at no
// cost, as in-process), pull over the wire with retry/redial, charge the
// same RTT + transfer cost the in-process hook charges.
func (s *session) demandPull(gfn uint64) ([]byte, bool) {
	s.mu.Lock()
	skip := !bitmapGet(s.present, gfn) || bitmapGet(s.applied, gfn)
	s.mu.Unlock()
	if skip {
		return nil, false
	}
	page, ok, err := s.pullOverWire(gfn)
	if err != nil {
		s.dst.FailRemote(fmt.Errorf("migrate: demand pull gfn %d: %w", gfn, err))
		return nil, false
	}
	if !ok {
		return nil, false
	}
	cost := s.opt.Link.RTTCycles + s.opt.Link.TxCycles(pageWireSize)
	s.dst.CPU.AddCycles(cost)
	s.mu.Lock()
	s.destFills++
	s.destBytes += pageWireSize
	s.destCycles += cost
	s.mu.Unlock()
	s.markApplied(gfn)
	return page, true
}

// pullOverWire fetches one page from the source, redialing on failure.
func (s *session) pullOverWire(gfn uint64) ([]byte, bool, error) {
	backoff := s.opt.BackoffCycles
	for attempt := 0; ; attempt++ {
		page, ok, err := s.tryPull(gfn)
		if err == nil {
			return page, ok, nil
		}
		if attempt+1 >= s.opt.MaxAttempts {
			return nil, false, err
		}
		s.mu.Lock()
		s.destRetries++
		s.mu.Unlock()
		s.chargeDst(backoff)
		backoff *= 2
		if rerr := s.redial(); rerr != nil {
			return nil, false, rerr
		}
	}
}

func (s *session) tryPull(gfn uint64) ([]byte, bool, error) {
	conn := s.dstConn
	if err := conn.writeFrame(ftPull, encodeU64(gfn)); err != nil {
		return nil, false, err
	}
	p, err := conn.expectFrame(ftPage)
	if err != nil {
		return nil, false, err
	}
	m, err := decodePage(p)
	if err != nil {
		return nil, false, err
	}
	if m.GFN != gfn {
		return nil, false, fmt.Errorf("migrate: pulled gfn %d, asked for %d", m.GFN, gfn)
	}
	if !m.Have {
		return nil, false, nil
	}
	page := make([]byte, isa.PageSize)
	if !m.Zero {
		copy(page, m.Data)
	}
	return page, true, nil
}

// chargeDst puts overhead cycles (backoff, injected delay) on the
// destination's clock — post-commit the destination is the running guest.
func (s *session) chargeDst(c uint64) {
	if s.opt.DelayCycles != nil {
		c += s.opt.DelayCycles()
	}
	if c > 0 {
		s.dst.CPU.AddCycles(c)
	}
}

// redial replaces the failed post-commit connection: close both old
// halves, open a fresh wire, hand the source half to whichever source-side
// server runs (the engine's serve loop in chunk mode, a spawned goroutine
// in demand-only mode), and re-handshake.
func (s *session) redial() error {
	if old := s.dstConn; old != nil {
		old.Close()
	}
	sh, dh, err := s.opt.Wire()
	if err != nil {
		return err
	}
	conn := newWireConn(dh)
	s.dstConn = conn
	if s.opt.PostCopyPushChunk > 0 {
		s.srcConns <- sh
	} else {
		go s.runServer(newWireConn(sh))
	}
	if err := conn.writeFrame(ftHello, encodeHello(helloMsg{NPages: s.npages, Mode: s.opt.Mode, Pull: true})); err != nil {
		return err
	}
	p, err := conn.expectFrame(ftWelcome)
	if err != nil {
		return err
	}
	if _, err := decodeWelcome(p); err != nil {
		return err
	}
	s.mu.Lock()
	s.destResumes++
	s.mu.Unlock()
	return nil
}

// runServer wraps servePulls for spawned (demand-only) servers. Holding
// srvMu for the server's lifetime serializes successive servers across
// redials: the old conn is already closed when the next server spawns, so
// the old server exits promptly and the handoff cannot interleave on the
// shared serving schedule.
func (s *session) runServer(conn *wireConn) {
	s.srvMu.Lock()
	defer s.srvMu.Unlock()
	s.servePulls(conn)
	conn.Close()
	s.addWire(conn.moved)
}

// pushLoop is the destination's chunk-mode driver: request background
// chunks, apply them, run the guest for the chunk's transfer cycles
// (demand pulls interleave on the same conn), redial on failure. Mirrors
// the in-process push loop's accounting exactly.
func (s *session) pushLoop(conn *wireConn) {
	backoff := s.opt.BackoffCycles
	fails := 0
	for {
		done, err := s.pushChunkOnce()
		if err == nil {
			if done {
				return
			}
			fails = 0
			backoff = s.opt.BackoffCycles
			continue
		}
		fails++
		s.mu.Lock()
		s.destRetries++
		s.mu.Unlock()
		if fails >= s.opt.MaxAttempts {
			s.dst.FailRemote(fmt.Errorf("migrate: post-copy push lost the source: %w", err))
			return
		}
		s.chargeDst(backoff)
		backoff *= 2
		if rerr := s.redial(); rerr != nil {
			s.dst.FailRemote(fmt.Errorf("migrate: post-copy redial: %w", rerr))
			return
		}
	}
}

// pushChunkOnce requests one chunk and applies it. The chunk's logical
// cost and byte accounting replicate the in-process loop: cost is
// TxCycles(pushed·pageWireSize) and the guest runs for exactly that.
func (s *session) pushChunkOnce() (done bool, err error) {
	conn := s.dstConn
	if err := conn.writeFrame(ftPullChunk, encodeU64(uint64(s.opt.PostCopyPushChunk))); err != nil {
		return false, err
	}
	for {
		t, p, err := conn.readFrame()
		if err != nil {
			return false, err
		}
		switch t {
		case ftPages:
			runs, err := decodeRuns(p)
			if err != nil {
				return false, err
			}
			if err := s.applyRuns(runs); err != nil {
				return false, err
			}
		case ftChunkDone:
			m, err := decodeChunkDone(p)
			if err != nil {
				return false, err
			}
			bytes := uint64(m.Pushed) * pageWireSize
			cost := s.opt.Link.TxCycles(bytes)
			s.mu.Lock()
			s.destBytes += bytes
			s.destCycles += cost
			s.mu.Unlock()
			if s.dst.State == core.StateRunning {
				s.dst.Step(cost)
			}
			return m.Done, nil
		default:
			return false, fmt.Errorf("migrate: unexpected %v frame in push loop", t)
		}
	}
}

// ---- source-side post-copy server ---------------------------------------

// initPullState freezes the source's serving schedule at commit: the
// present-page list (the in-process `remaining`) and the sent bitmap.
func (s *session) initPullState() {
	s.remaining = presentPages(s.src)
	s.cursor = 0
	s.sent = newBitmap(s.src.Mem.Pages())
	s.sentCount = 0
	s.srcCount = uint64(len(s.remaining))
}

// servePulls is the source's post-commit server: answer demand pulls and
// chunk requests until the schedule is exhausted (chunk mode) or every
// present page has been pulled (demand-only). Returns nil on completion,
// an error when the conn died (the destination will redial).
func (s *session) servePulls(conn *wireConn) error {
	buf := make([]byte, isa.PageSize)
	for {
		t, p, err := conn.readFrame()
		if err != nil {
			return err
		}
		switch t {
		case ftHello:
			if _, err := decodeHello(p); err != nil {
				return err
			}
			if err := conn.writeFrame(ftWelcome, encodeWelcome(s.welcome())); err != nil {
				return err
			}
		case ftPull:
			gfn, err := decodeU64(p, "pull")
			if err != nil {
				return err
			}
			if err := s.servePage(conn, gfn, buf); err != nil {
				return err
			}
			if s.opt.PostCopyPushChunk == 0 && s.sentCount >= s.srcCount {
				return nil // demand-only coverage complete; source released
			}
		case ftPullChunk:
			if _, err := decodeU64(p, "pull-chunk"); err != nil {
				return err
			}
			exhausted, err := s.serveChunk(conn, buf)
			if err != nil {
				return err
			}
			if exhausted {
				return nil
			}
		default:
			return fmt.Errorf("migrate: unexpected %v frame in pull server", t)
		}
	}
}

func (s *session) servePage(conn *wireConn, gfn uint64, buf []byte) error {
	m := pageMsg{GFN: gfn}
	if gfn < s.src.Mem.Pages() && s.src.Mem.Frame(gfn) != mem.NoFrame {
		s.src.Mem.ReadRaw(gfn, buf)
		m.Have = true
		if isZeroPage(buf) {
			m.Zero = true
		} else {
			m.Data = buf
		}
		if !bitmapGet(s.sent, gfn) {
			bitmapSet(s.sent, gfn)
			s.sentCount++
		}
	}
	return conn.writeFrame(ftPage, encodePage(m))
}

// serveChunk advances the push schedule by one in-process-equivalent
// chunk: consume PostCopyPushChunk entries of the frozen remaining list,
// push the not-yet-sent ones, report the pushed count. Cursor and sent
// marks only advance after the whole chunk is on the wire, so a mid-chunk
// drop re-sends the same chunk.
func (s *session) serveChunk(conn *wireConn, buf []byte) (exhausted bool, err error) {
	chunk := s.opt.PostCopyPushChunk
	if chunk > len(s.remaining)-s.cursor {
		chunk = len(s.remaining) - s.cursor
	}
	var push []uint64
	for _, gfn := range s.remaining[s.cursor : s.cursor+chunk] {
		if !bitmapGet(s.sent, gfn) {
			push = append(push, gfn)
		}
	}
	if len(push) > 0 {
		runs := buildRuns(push, func(gfn uint64, b []byte) { s.src.Mem.ReadRaw(gfn, b) })
		if err := writeRunFrames(conn, runs); err != nil {
			return false, err
		}
	}
	exhausted = s.cursor+chunk >= len(s.remaining)
	if err := conn.writeFrame(ftChunkDone, encodeChunkDone(chunkDoneMsg{Pushed: uint32(len(push)), Done: exhausted})); err != nil {
		return false, err
	}
	s.cursor += chunk
	for _, gfn := range push {
		if !bitmapGet(s.sent, gfn) {
			bitmapSet(s.sent, gfn)
			s.sentCount++
		}
	}
	return exhausted, nil
}

// writeRunFrames sends runs across as many ftPages frames as the payload
// cap requires.
func writeRunFrames(conn *wireConn, runs []pageRun) error {
	start := 0
	dataPages := 0
	for i, r := range runs {
		pages := 0
		if !r.Zero {
			pages = int(r.Count)
		}
		if i > start && (dataPages+pages > framePageCap || i-start >= 1024) {
			if err := conn.writeFrame(ftPages, encodeRuns(runs[start:i])); err != nil {
				return err
			}
			start, dataPages = i, 0
		}
		dataPages += pages
	}
	if start < len(runs) {
		return conn.writeFrame(ftPages, encodeRuns(runs[start:]))
	}
	return nil
}

// ---- source-side engine --------------------------------------------------

type streamEngine struct {
	s   *session
	src *core.VM
	opt StreamOptions
	rep StreamReport

	conn        *wireConn
	reactorDone chan struct{}
	lastWelcome welcomeMsg
	connected   bool
	fails       int
	backoff     uint64

	paused       bool
	ckpt         core.ArchState
	downtime     uint64
	lastCommitDT uint64
}

// connect opens a wire, spawns the destination reactor, handshakes.
func (e *streamEngine) connect() error {
	e.teardown()
	sh, dh, err := e.opt.Wire()
	if err != nil {
		return err
	}
	e.conn = newWireConn(sh)
	dconn := newWireConn(dh)
	e.reactorDone = make(chan struct{})
	go func(done chan struct{}) {
		keep := e.s.serve(dconn)
		if !keep {
			dconn.Close()
		}
		close(done)
	}(e.reactorDone)
	if err := e.conn.writeFrame(ftHello, encodeHello(helloMsg{NPages: e.src.Mem.Pages(), Mode: e.opt.Mode})); err != nil {
		return err
	}
	p, err := e.conn.expectFrame(ftWelcome)
	if err != nil {
		return err
	}
	w, err := decodeWelcome(p)
	if err != nil {
		return err
	}
	e.lastWelcome = w
	if e.connected {
		e.rep.Resumes++
	}
	e.connected = true
	return nil
}

// teardown closes the engine's conn and joins the reactor so the
// destination's view is settled before the next decision.
func (e *streamEngine) teardown() {
	if e.conn == nil {
		return
	}
	e.conn.Close()
	e.rep.WireBytes += e.conn.moved
	e.conn = nil
	if e.reactorDone != nil {
		<-e.reactorDone
		e.reactorDone = nil
	}
}

// ensureConn (re)establishes the wire, applying the retry policy.
func (e *streamEngine) ensureConn() error {
	for e.conn == nil {
		err := e.connect()
		if err == nil {
			e.fails = 0
			e.backoff = e.opt.BackoffCycles
			return nil
		}
		e.teardown()
		if gerr := e.fail(err); gerr != nil {
			return gerr
		}
	}
	return nil
}

// fail records one failure and charges backoff; it returns non-nil when
// the engine must give up (attempts exhausted or budget blown).
func (e *streamEngine) fail(cause error) error {
	e.rep.Retries++
	e.fails++
	if e.fails >= e.opt.MaxAttempts {
		return cause
	}
	if e.backoff == 0 {
		e.backoff = e.opt.BackoffCycles
	}
	c := e.backoff
	e.backoff *= 2
	if err := e.chargeOverhead(c); err != nil {
		return err
	}
	return nil
}

// chargeOverhead accounts non-transfer cycles (backoff, injected delay):
// a running source executes through them; a paused source accrues
// downtime against the budget.
func (e *streamEngine) chargeOverhead(c uint64) error {
	if e.opt.DelayCycles != nil {
		c += e.opt.DelayCycles()
	}
	if c == 0 {
		return nil
	}
	if e.paused {
		e.downtime += c
		return e.checkBudget()
	}
	if e.src.State == core.StateRunning {
		e.src.Step(c)
	} else {
		e.src.CPU.AddCycles(c)
	}
	return nil
}

func (e *streamEngine) checkBudget() error {
	if e.opt.DowntimeBudget > 0 && e.downtime > e.opt.DowntimeBudget {
		return errBudget
	}
	return nil
}

// sendRound streams one round of pages and waits for the destination's
// ack, retrying across reconnects. The welcome tells whether a round
// whose ack was lost actually landed, so it is never re-sent. Returns the
// cycles charged (summed across attempts).
func (e *streamEngine) sendRound(gfns []uint64, idx uint64, interleave bool) (uint64, error) {
	var spent uint64
	for {
		if err := e.ensureConn(); err != nil {
			return spent, err
		}
		if e.lastWelcome.AckedRounds > idx {
			return spent, nil
		}
		c, err := e.trySendRound(gfns, idx, interleave)
		spent += c
		if err == nil {
			e.fails = 0
			return spent, nil
		}
		if errors.Is(err, errBudget) {
			return spent, err
		}
		e.teardown()
		if gerr := e.fail(err); gerr != nil {
			return spent, gerr
		}
	}
}

// trySendRound is one attempt: write the page runs and the round marker,
// charge the logical transfer cost exactly as the in-process sendPages
// does (source executes through an interleaved round; a paused source's
// clock still advances), then block on the ack.
func (e *streamEngine) trySendRound(gfns []uint64, idx uint64, interleave bool) (uint64, error) {
	var c uint64
	if len(gfns) > 0 {
		runs := buildRuns(gfns, func(gfn uint64, b []byte) { e.src.Mem.ReadRaw(gfn, b) })
		if err := writeRunFrames(e.conn, runs); err != nil {
			return 0, err
		}
		c = uint64(len(gfns)) * e.opt.Link.TxCycles(pageWireSize)
	}
	if err := e.conn.writeFrame(ftRoundEnd, encodeRoundEnd(roundEndMsg{Round: idx, Pages: uint64(len(gfns))})); err != nil {
		return 0, err
	}
	e.rep.BytesSent += uint64(len(gfns)) * pageWireSize
	if c > 0 {
		if interleave && e.src.State == core.StateRunning {
			e.src.Step(c)
		} else {
			e.src.CPU.AddCycles(c)
		}
	}
	if e.paused {
		e.downtime += c
		if err := e.checkBudget(); err != nil {
			return c, err
		}
	}
	p, err := e.conn.expectFrame(ftRoundAck)
	if err != nil {
		return c, err
	}
	acked, err := decodeU64(p, "round-ack")
	if err != nil {
		return c, err
	}
	if acked != idx {
		return c, fmt.Errorf("migrate: acked round %d, expected %d", acked, idx)
	}
	return c, nil
}

// sendCommit transfers the architectural state and the switchover marker.
// If retries exhaust after the commit may have landed, the destination's
// committed flag resolves the ambiguity — the in-process stand-in for a
// fencing oracle; a real deployment would consult shared storage or a
// coordination service before declaring either side dead.
func (e *streamEngine) sendCommit(present []byte) error {
	txCPU := e.opt.Link.TxCycles(cpuStateWireSize)
	for {
		if err := e.ensureConn(); err != nil {
			if e.s.isCommitted() {
				return nil
			}
			return err
		}
		if e.lastWelcome.Committed {
			return nil
		}
		err := func() error {
			if err := e.conn.writeFrame(ftArch, encodeArch(e.src.CaptureArch())); err != nil {
				return err
			}
			e.downtime += txCPU
			e.rep.BytesSent += cpuStateWireSize
			if err := e.checkBudget(); err != nil {
				return err
			}
			e.lastCommitDT = e.downtime
			if err := e.conn.writeFrame(ftCommit, encodeCommit(commitMsg{Downtime: e.downtime, Mode: e.opt.Mode, Present: present})); err != nil {
				return err
			}
			_, err := e.conn.expectFrame(ftCommitAck)
			return err
		}()
		if err == nil {
			e.fails = 0
			return nil
		}
		if errors.Is(err, errBudget) {
			return err
		}
		e.teardown()
		if gerr := e.fail(err); gerr != nil {
			if e.s.isCommitted() {
				return nil
			}
			return gerr
		}
	}
}

// pause stops the source and checkpoints it for rollback.
func (e *streamEngine) pause() {
	e.src.Pause()
	e.ckpt = e.src.CaptureArch()
	e.paused = true
	if e.opt.PauseProbe != nil {
		e.opt.PauseProbe()
	}
}

// bail fails a migration that never paused the source: nothing to roll
// back, the guest kept running through every retry.
func (e *streamEngine) bail(cause error) error {
	e.teardown()
	e.rep.Aborted = true
	return fmt.Errorf("%w: %v", ErrAborted, cause)
}

// abort rolls the source back to the Pause checkpoint and resumes it: the
// guest's registers, CSRs, and cycle counter are bit-for-bit as if the
// brown-out never happened (RAM was only read during it). Safe because
// abort is only reachable before the commit landed — afterwards the
// destination owns the guest.
func (e *streamEngine) abort(cause error) error {
	e.teardown()
	if e.s.isCommitted() {
		// The commit landed while we were giving up; finish as a success.
		return nil
	}
	e.src.RestoreArch(e.ckpt)
	e.src.Resume()
	e.rep.Aborted = true
	return fmt.Errorf("%w: %v", ErrAborted, cause)
}

// finish settles accounting: fold the destination session's counters and
// retired-conn byte counts into the report.
func (e *streamEngine) finish() {
	if e.conn != nil {
		e.rep.WireBytes += e.conn.moved
	}
	s := e.s
	s.mu.Lock()
	e.rep.RemoteFills += s.destFills
	e.rep.BytesSent += s.destBytes
	e.rep.TotalCycles += s.destCycles
	e.rep.Retries += s.destRetries
	e.rep.Resumes += s.destResumes
	e.rep.WireBytes += s.wireBytes
	s.mu.Unlock()
}

// drainDelay charges any injected latency that accumulated outside a
// retry (running phase: the guest executes through it).
func (e *streamEngine) drainDelay() error { return e.chargeOverhead(0) }

func (e *streamEngine) preCopy() error {
	rep := &e.rep.Report
	src := e.src
	src.Mem.CollectDirty(nil)
	all := presentPages(src)
	c, err := e.sendRound(all, 0, true)
	if err != nil {
		return e.bail(err)
	}
	rep.TotalCycles += c
	rep.Rounds = append(rep.Rounds, Round{Pages: uint64(len(all)), Cycles: c})
	if err := e.drainDelay(); err != nil {
		return e.bail(err)
	}

	var dirty []uint64
	idx := uint64(1)
	for round := 1; round <= e.opt.MaxRounds; round++ {
		if src.Mem.DirtyCount() <= e.opt.StopThresholdPages {
			rep.Converged = true
			break
		}
		dirty = src.Mem.CollectDirty(dirty[:0])
		c, err := e.sendRound(dirty, idx, true)
		if err != nil {
			return e.bail(err)
		}
		idx++
		rep.TotalCycles += c
		rep.Rounds = append(rep.Rounds, Round{Pages: uint64(len(dirty)), Cycles: c})
		if err := e.drainDelay(); err != nil {
			return e.bail(err)
		}
	}

	e.pause()
	dirty = src.Mem.CollectDirty(dirty[:0])
	if _, err := e.sendRound(dirty, idx, false); err != nil {
		return e.abort(err)
	}
	if err := e.sendCommit(nil); err != nil {
		return e.abort(err)
	}
	rep.DowntimeCycles = e.lastCommitDT
	rep.TotalCycles += e.downtime
	rep.Rounds = append(rep.Rounds, Round{Pages: uint64(len(dirty)), Cycles: e.downtime})
	return nil
}

func (e *streamEngine) stopAndCopy() error {
	rep := &e.rep.Report
	rep.Converged = true
	e.pause()
	all := presentPages(e.src)
	if _, err := e.sendRound(all, 0, false); err != nil {
		return e.abort(err)
	}
	if err := e.sendCommit(nil); err != nil {
		return e.abort(err)
	}
	rep.DowntimeCycles = e.lastCommitDT
	rep.TotalCycles = e.downtime
	rep.Rounds = append(rep.Rounds, Round{Pages: uint64(len(all)), Cycles: e.downtime})
	return nil
}

func (e *streamEngine) postCopy() error {
	rep := &e.rep.Report
	rep.Converged = true
	e.pause()
	present := newBitmap(e.src.Mem.Pages())
	for gfn := uint64(0); gfn < e.src.Mem.Pages(); gfn++ {
		if e.src.Mem.Frame(gfn) != mem.NoFrame {
			bitmapSet(present, gfn)
		}
	}
	if err := e.sendCommit(present); err != nil {
		return e.abort(err)
	}
	rep.DowntimeCycles = e.lastCommitDT
	rep.TotalCycles += e.downtime
	e.s.initPullState()

	if e.opt.PostCopyPushChunk > 0 {
		return e.servePhase()
	}
	// Demand-only: hand the source conn to a background server and
	// return; demand fills accrue on the destination afterwards, exactly
	// as the in-process engine's report snapshot does. The handshake and
	// commit bytes already moved, so fold them in now and zero the
	// counter — the server reports only post-handoff traffic. Join the
	// destination reactor first: its last act was writing the commit ack
	// on the conn the PageSource closure now owns, and the join is the
	// happens-before edge between those writes and the caller's pulls.
	conn := e.conn
	e.conn = nil
	e.rep.WireBytes += conn.moved
	conn.moved = 0
	if e.reactorDone != nil {
		<-e.reactorDone
		e.reactorDone = nil
	}
	go e.s.runServer(conn)
	return nil
}

// servePhase runs the source's post-commit serving loop for chunk mode,
// accepting redialed conns from the destination until the schedule
// completes or the destination gives up.
func (e *streamEngine) servePhase() error {
	for {
		err := e.s.servePulls(e.conn)
		e.conn.Close()
		e.rep.WireBytes += e.conn.moved
		e.conn = nil
		if err == nil {
			<-e.reactorDone // destination finishes its last Step
			e.reactorDone = nil
			return nil
		}
		select {
		case sh := <-e.s.srcConns:
			e.conn = newWireConn(sh)
		case <-e.reactorDone:
			e.reactorDone = nil
			if e.s.dst.State == core.StateError {
				return fmt.Errorf("migrate: destination lost the source post-commit: %w", e.s.dst.Err)
			}
			return nil
		}
	}
}
