package migrate

import (
	"crypto/sha256"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"

	"govisor/internal/core"
	"govisor/internal/faultnet"
	"govisor/internal/isa"
	"govisor/internal/mem"
)

// vmSnap is a comparable digest of guest-visible state: architectural
// registers (including the cycle counter), a hash of all of RAM as the
// guest would read it (ReadRaw zero-fills absent pages), and console
// output.
type vmSnap struct {
	arch core.ArchState
	ram  [sha256.Size]byte
	uart string
}

func snapVM(vm *core.VM) vmSnap {
	h := sha256.New()
	buf := make([]byte, isa.PageSize)
	for gfn := uint64(0); gfn < vm.Mem.Pages(); gfn++ {
		vm.Mem.ReadRaw(gfn, buf)
		h.Write(buf)
	}
	var s vmSnap
	s.arch = vm.CaptureArch()
	copy(s.ram[:], h.Sum(nil))
	s.uart = vm.Output()
	return s
}

// TestStreamFaultFreeMatchesInProcess is the differential proof: over a
// clean pipe, the streamed engine is byte-identical to the in-process one
// for all three modes — same Report (rounds, bytes, downtime), same
// source and destination registers/CSRs/RAM, same dirty/COW accounting,
// and the destinations stay in lockstep when run onward.
func TestStreamFaultFreeMatchesInProcess(t *testing.T) {
	cases := []struct {
		name  string
		mode  Mode
		chunk int
	}{
		{"precopy", PreCopy, 0},
		{"stopandcopy", StopAndCopy, 0},
		{"postcopy-push", PostCopy, 8},
		{"postcopy-demand", PostCopy, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srcA, dstA := pair(t, 16, 2000)
			optA := DefaultOptions()
			optA.Mode = tc.mode
			optA.PostCopyPushChunk = tc.chunk
			repA, err := Migrate(srcA, dstA, optA)
			if err != nil {
				t.Fatalf("in-process: %v", err)
			}

			srcB, dstB := pair(t, 16, 2000)
			optB := DefaultStreamOptions()
			optB.Mode = tc.mode
			optB.PostCopyPushChunk = tc.chunk
			repB, err := StreamMigrate(srcB, dstB, optB)
			if err != nil {
				t.Fatalf("streamed: %v", err)
			}

			if !reflect.DeepEqual(repA, repB.Report) {
				t.Errorf("report mismatch:\nin-process %+v\nstreamed   %+v", repA, repB.Report)
			}
			if repB.Retries != 0 || repB.Resumes != 0 || repB.Aborted {
				t.Errorf("fault-free run reported retries=%d resumes=%d aborted=%v",
					repB.Retries, repB.Resumes, repB.Aborted)
			}
			if repB.WireBytes == 0 {
				t.Errorf("no physical wire bytes accounted")
			}
			if tc.mode != PostCopy && repB.WireBytes >= repB.BytesSent {
				t.Errorf("zero-run batching ineffective: %d physical vs %d logical bytes",
					repB.WireBytes, repB.BytesSent)
			}
			if srcB.State != core.StatePaused {
				t.Errorf("streamed source state %v, want paused", srcB.State)
			}
			if sa, sb := snapVM(srcA), snapVM(srcB); sa != sb {
				t.Errorf("source guest-visible state diverged")
			}
			if da, db := snapVM(dstA), snapVM(dstB); da != db {
				t.Errorf("destination guest-visible state diverged")
			}
			if dstA.Mem.DirtyCount() != dstB.Mem.DirtyCount() ||
				dstA.Mem.Present() != dstB.Mem.Present() {
				t.Errorf("destination dirty/present accounting diverged: dirty %d/%d present %d/%d",
					dstA.Mem.DirtyCount(), dstB.Mem.DirtyCount(),
					dstA.Mem.Present(), dstB.Mem.Present())
			}
			// Run both destinations onward: demand fills (post-copy) and
			// ordinary execution must stay in lockstep.
			dstA.Step(30_000_000 / raceScale)
			dstB.Step(30_000_000 / raceScale)
			if da, db := snapVM(dstA), snapVM(dstB); da != db {
				t.Errorf("post-migration execution diverged")
			}
			if dstA.Stats.RemoteFills != dstB.Stats.RemoteFills {
				t.Errorf("remote fills diverged: %d vs %d", dstA.Stats.RemoteFills, dstB.Stats.RemoteFills)
			}
		})
	}
}

// requireCompleted checks a finished streamed migration moved the paused
// source's exact state (registers modulo the absorbed downtime, RAM) to
// the destination, then verifies the destination executes.
func requireCompleted(t *testing.T, src, dst *core.VM, rep StreamReport) {
	t.Helper()
	if src.State != core.StatePaused {
		t.Fatalf("completed migration left source %v", src.State)
	}
	ss, ds := snapVM(src), snapVM(dst)
	want := ss.arch
	want.Cycles += rep.DowntimeCycles
	if ds.arch != want {
		t.Fatalf("destination architectural state differs from paused source (+downtime)")
	}
	if ds.ram != ss.ram {
		t.Fatalf("destination RAM differs from paused source RAM")
	}
	verifyDestRuns(t, dst)
}

// TestStreamSeededFaultSchedules runs the engine under deterministic
// fault schedules. Every run must either complete with the destination
// byte-identical to the paused source, or abort with the source's
// guest-visible state bit-for-bit unchanged from the instant it paused.
func TestStreamSeededFaultSchedules(t *testing.T) {
	cases := []struct {
		name string
		mode Mode
		plan faultnet.Plan
	}{
		{"precopy-mixed", PreCopy, faultnet.Plan{Seed: 1, MeanGapBytes: 60_000, MaxFaults: 3}},
		{"precopy-aggressive", PreCopy, faultnet.Plan{Seed: 6, MeanGapBytes: 25_000, MaxFaults: 6}},
		{"precopy-corrupt", PreCopy, faultnet.Plan{Seed: 3, MeanGapBytes: 50_000, MaxFaults: 3,
			Kinds: []faultnet.Kind{faultnet.KindCorrupt}}},
		{"stopandcopy-cuts", StopAndCopy, faultnet.Plan{Seed: 4, MeanGapBytes: 40_000, MaxFaults: 3,
			Kinds: []faultnet.Kind{faultnet.KindReset, faultnet.KindPartialWrite}}},
		{"precopy-acks-delays", PreCopy, faultnet.Plan{Seed: 5, MeanGapBytes: 45_000, MaxFaults: 4,
			Kinds: []faultnet.Kind{faultnet.KindReadReset, faultnet.KindDelay}}},
		{"postcopy-push-mixed", PostCopy, faultnet.Plan{Seed: 7, MeanGapBytes: 50_000, MaxFaults: 3}},
	}
	var completed, resumed, faulted int
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, dst := pair(t, 16, 2000)
			inj := faultnet.NewInjector(tc.plan)
			var probe *vmSnap
			opt := DefaultStreamOptions()
			opt.Mode = tc.mode
			if tc.mode == PostCopy {
				opt.PostCopyPushChunk = 8
			}
			opt.MaxAttempts = 8
			opt.Wire = PipeWire(inj.Wrap)
			opt.DelayCycles = inj.TakeDelayCycles
			opt.PauseProbe = func() { s := snapVM(src); probe = &s }

			rep, err := StreamMigrate(src, dst, opt)
			if inj.Stats().Total() == 0 {
				t.Errorf("fault plan injected nothing — schedule is vacuous: %+v", inj.Stats())
			} else {
				faulted++
			}
			switch {
			case err == nil:
				completed++
				if rep.Resumes > 0 {
					resumed++
				}
				if tc.mode == PostCopy {
					// The destination already ran; prove it executes and
					// every source page landed despite the faults.
					verifyDestRuns(t, dst)
					for gfn := uint64(0); gfn < src.Mem.Pages(); gfn++ {
						if src.Mem.Frame(gfn) != mem.NoFrame && dst.Mem.Frame(gfn) == mem.NoFrame {
							t.Fatalf("present gfn %d never landed on the destination", gfn)
						}
					}
				} else {
					requireCompleted(t, src, dst, rep)
				}
			case errors.Is(err, ErrAborted):
				if !rep.Aborted {
					t.Fatalf("ErrAborted without rep.Aborted")
				}
				if src.State != core.StateRunning {
					t.Fatalf("aborted migration left source %v", src.State)
				}
				if probe != nil {
					if now := snapVM(src); now != *probe {
						t.Fatalf("rollback is not bit-for-bit: source changed across the aborted brown-out")
					}
				}
				if dst.State != core.StateCreated {
					t.Fatalf("aborted migration left destination %v", dst.State)
				}
				verifyDestRuns(t, src) // the rolled-back source keeps executing
			default:
				t.Fatalf("unexpected error class: %v", err)
			}
		})
	}
	if completed == 0 {
		t.Errorf("no seeded schedule completed — retry/resume path unproven")
	}
	if resumed == 0 {
		t.Errorf("no seeded schedule resumed a dropped connection — resume path unproven")
	}
	if faulted < 5 {
		t.Errorf("only %d schedules injected faults; need ≥5", faulted)
	}
}

// TestStreamResumeResendsOnlySinceLastAck forces connection drops and
// proves the engine resumes from the destination's acked-round state
// instead of restarting, with the result still byte-identical.
func TestStreamResumeResendsOnlySinceLastAck(t *testing.T) {
	src, dst := pair(t, 16, 2000)
	inj := faultnet.NewInjector(faultnet.Plan{
		Seed:         11,
		MeanGapBytes: 50_000,
		MaxFaults:    2,
		Kinds:        []faultnet.Kind{faultnet.KindReset},
	})
	opt := DefaultStreamOptions()
	opt.MaxAttempts = 8
	opt.Wire = PipeWire(inj.Wrap)
	rep, err := StreamMigrate(src, dst, opt)
	if err != nil {
		t.Fatalf("migration did not survive resets: %v", err)
	}
	if rep.Resumes == 0 || rep.Retries == 0 {
		t.Fatalf("resets injected (%d) but no resume recorded: retries=%d resumes=%d",
			inj.Stats().Resets, rep.Retries, rep.Resumes)
	}
	requireCompleted(t, src, dst, rep)
}

// TestStreamAbortRollsBackOnBudget blows the downtime budget on a clean
// wire: the engine must abort, resume the source with state bit-for-bit
// as it was at Pause, and leave the destination unadopted.
func TestStreamAbortRollsBackOnBudget(t *testing.T) {
	src, dst := pair(t, 16, 2000)
	var probe *vmSnap
	opt := DefaultStreamOptions()
	opt.DowntimeBudget = 1 // any brown-out transfer exceeds this
	opt.PauseProbe = func() { s := snapVM(src); probe = &s }
	rep, err := StreamMigrate(src, dst, opt)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("expected ErrAborted, got %v", err)
	}
	if !rep.Aborted {
		t.Fatalf("report not marked aborted")
	}
	if probe == nil {
		t.Fatalf("budget abort must happen during brown-out, after Pause")
	}
	if src.State != core.StateRunning {
		t.Fatalf("source state %v after rollback", src.State)
	}
	if now := snapVM(src); now != *probe {
		t.Fatalf("rollback is not bit-for-bit")
	}
	if dst.State != core.StateCreated {
		t.Fatalf("destination %v after abort, want untouched StateCreated", dst.State)
	}
	verifyDestRuns(t, src)
}

// TestStreamDemandOnlyServesAndReleases: demand-only post-copy over the
// wire serves faults through the background server, and once every
// present page has crossed, both ends release — the destination clears
// its PageSource, the source server exits.
func TestStreamDemandOnlyServesAndReleases(t *testing.T) {
	src, dst := pair(t, 8, 2000)
	opt := DefaultStreamOptions()
	opt.Mode = PostCopy
	opt.PostCopyPushChunk = 0
	rep, err := StreamMigrate(src, dst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DowntimeCycles != opt.Link.TxCycles(cpuStateWireSize) {
		t.Errorf("demand-only downtime %d, want bare CPU-state transfer", rep.DowntimeCycles)
	}
	if dst.PageSource == nil {
		t.Fatalf("no PageSource installed on the destination")
	}
	verifyDestRuns(t, dst) // real demand faults pull over the wire
	if dst.Stats.RemoteFills == 0 {
		t.Fatalf("destination ran without any remote fills")
	}
	// Drain the rest of the present set through the hook, as further
	// faults would, and prove the source is released.
	hook := dst.PageSource
	if hook == nil {
		t.Fatalf("PageSource cleared before coverage completed")
	}
	for gfn := uint64(0); gfn < src.Mem.Pages(); gfn++ {
		if src.Mem.Frame(gfn) != mem.NoFrame {
			hook(gfn)
		}
	}
	if dst.PageSource != nil {
		t.Fatalf("PageSource still installed after full coverage — source pinned")
	}
	if _, ok := hook(0); ok {
		t.Fatalf("hook re-served an already-transferred page")
	}
}

// TestStreamOverTCP runs the full engine over loopback TCP.
func TestStreamOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	defer ln.Close()
	wire := func() (io.ReadWriteCloser, io.ReadWriteCloser, error) {
		type res struct {
			c   net.Conn
			err error
		}
		ch := make(chan res, 1)
		go func() {
			c, err := ln.Accept()
			ch <- res{c, err}
		}()
		sc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, nil, err
		}
		r := <-ch
		if r.err != nil {
			sc.Close()
			return nil, nil, r.err
		}
		return sc, r.c, nil
	}
	src, dst := pair(t, 16, 2000)
	opt := DefaultStreamOptions()
	opt.Wire = wire
	rep, err := StreamMigrate(src, dst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries != 0 {
		t.Errorf("clean TCP run recorded %d retries", rep.Retries)
	}
	requireCompleted(t, src, dst, rep)
}

// TestStreamValidatesPair: the streamed entry point applies the same
// guards as the in-process one.
func TestStreamValidatesPair(t *testing.T) {
	src, _ := pair(t, 8, 2000)
	if _, err := StreamMigrate(src, src, DefaultStreamOptions()); err == nil {
		t.Fatalf("self-migration accepted")
	}
}
