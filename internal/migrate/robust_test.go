package migrate

import (
	"strings"
	"testing"

	"govisor/internal/core"
	"govisor/internal/mem"
)

// TestMigrateRejectsSelfMigration: migrating a VM onto itself must be a
// clean error, not silent state corruption.
func TestMigrateRejectsSelfMigration(t *testing.T) {
	src, _ := pair(t, 8, 2000)
	if _, err := Migrate(src, src, DefaultOptions()); err == nil {
		t.Fatalf("self-migration accepted")
	} else if !strings.Contains(err.Error(), "same VM") {
		t.Fatalf("unexpected error: %v", err)
	}
	if src.State != core.StateRunning {
		t.Fatalf("rejected migration changed source state to %v", src.State)
	}
}

// TestMigrateRejectsSharedGuestPhys: two VM shells over one guest-physical
// space would read and write the same frames; Migrate must refuse.
func TestMigrateRejectsSharedGuestPhys(t *testing.T) {
	src, dst := pair(t, 8, 2000)
	alias := *dst
	alias.Mem = src.Mem
	if _, err := Migrate(src, &alias, DefaultOptions()); err == nil {
		t.Fatalf("shared-memory migration accepted")
	} else if !strings.Contains(err.Error(), "guest-physical") {
		t.Fatalf("unexpected error: %v", err)
	}
	if src.State != core.StateRunning {
		t.Fatalf("rejected migration changed source state to %v", src.State)
	}
}

// TestPostCopyReportCountsDemandFills: demand-fill costs must land in
// rep.TotalCycles, not only on the destination clock. Regression for the
// undercount where the PageSource hook charged dst.CPU silently.
func TestPostCopyReportCountsDemandFills(t *testing.T) {
	src, dst := pair(t, 16, 2000)
	opt := DefaultOptions()
	opt.Mode = PostCopy
	opt.PostCopyPushChunk = 8
	rep, err := Migrate(src, dst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemoteFills == 0 {
		t.Fatalf("push-interleaved post-copy produced no demand fills; test is vacuous")
	}
	fillCost := rep.RemoteFills * (opt.Link.RTTCycles + opt.Link.TxCycles(pageWireSize))
	if rep.TotalCycles < rep.DowntimeCycles+fillCost {
		t.Fatalf("TotalCycles %d omits demand-fill cost (downtime %d + fills %d)",
			rep.TotalCycles, rep.DowntimeCycles, fillCost)
	}
	verifyDestRuns(t, dst)
}

// TestPostCopyDemandOnlyReleasesSource: with no background push, the
// PageSource hook must clear itself once every present source page has
// been pulled — otherwise demand-only mode pins the source forever.
func TestPostCopyDemandOnlyReleasesSource(t *testing.T) {
	src, dst := pair(t, 16, 2000)
	opt := DefaultOptions()
	opt.Mode = PostCopy
	opt.PostCopyPushChunk = 0 // demand-only
	if _, err := Migrate(src, dst, opt); err != nil {
		t.Fatal(err)
	}
	hook := dst.PageSource
	if hook == nil {
		t.Fatalf("demand-only post-copy did not install a PageSource")
	}
	// Pull every present source page through the hook, as destination
	// faults would.
	pages := src.Mem.Pages()
	var pulled uint64
	for gfn := uint64(0); gfn < pages; gfn++ {
		if src.Mem.Frame(gfn) == mem.NoFrame {
			if _, ok := hook(gfn); ok {
				t.Fatalf("hook served a page the source does not have (gfn %d)", gfn)
			}
			continue
		}
		if _, ok := hook(gfn); ok {
			pulled++
		}
	}
	if pulled != src.Mem.Present() {
		t.Fatalf("pulled %d pages, source has %d present", pulled, src.Mem.Present())
	}
	if dst.PageSource != nil {
		t.Fatalf("PageSource still set after all %d present pages pulled — source pinned forever", pulled)
	}
	// Re-pulling an already-sent page must fall back to demand-zero.
	if _, ok := hook(0); ok {
		t.Fatalf("hook re-served an already-transferred page")
	}
}
