package migrate

import (
	"testing"

	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/guest"
	"govisor/internal/isa"
	"govisor/internal/mem"
)

const (
	vmRAM  = 2 << 20
	frames = 4 * (vmRAM >> isa.PageShift)
)

// pair builds a running source VM (dirty-page mutator workload) and a fresh
// destination.
func pair(t *testing.T, dirtyPages, thinkOps uint64) (*core.VM, *core.VM) {
	t.Helper()
	kernel, err := guest.BuildKernel()
	if err != nil {
		t.Fatal(err)
	}
	pool := mem.NewPool(frames)
	src, err := core.NewVM(pool, core.Config{Name: "src", Mode: core.ModeHW, MemBytes: vmRAM})
	if err != nil {
		t.Fatal(err)
	}
	guest.Dirty(0, dirtyPages, thinkOps).Apply(src) // runs forever
	if err := src.Boot(kernel); err != nil {
		t.Fatal(err)
	}
	// Warm up: let the workload touch its pages.
	src.Step(5_000_000 / raceScale)
	if src.State != core.StateRunning {
		t.Fatalf("source state %v (err=%v)", src.State, src.Err)
	}
	dst, err := core.NewVM(pool, core.Config{Name: "dst", Mode: core.ModeHW, MemBytes: vmRAM})
	if err != nil {
		t.Fatal(err)
	}
	return src, dst
}

// verifyDestRuns resumes the destination and checks the workload continues.
func verifyDestRuns(t *testing.T, dst *core.VM) {
	t.Helper()
	before := dst.Result(gabi.PResult0)
	dst.Step(50_000_000 / raceScale)
	if dst.State == core.StateError {
		t.Fatalf("destination errored: %v", dst.Err)
	}
	after := dst.Result(gabi.PResult0)
	if after <= before {
		t.Fatalf("destination made no progress: %d → %d", before, after)
	}
}

func TestPreCopyMigratesAndConverges(t *testing.T) {
	src, dst := pair(t, 16, 2000)
	opt := DefaultOptions()
	rep, err := Migrate(src, dst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Errorf("slow dirtier should converge: %+v", rep.Rounds)
	}
	if len(rep.Rounds) < 2 {
		t.Errorf("rounds = %d", len(rep.Rounds))
	}
	if rep.DowntimeCycles == 0 || rep.DowntimeCycles >= rep.TotalCycles {
		t.Errorf("downtime %d of total %d", rep.DowntimeCycles, rep.TotalCycles)
	}
	if src.State != core.StatePaused {
		t.Errorf("source state %v", src.State)
	}
	verifyDestRuns(t, dst)
}

func TestPreCopyMemoryIdenticalAtSwitchover(t *testing.T) {
	src, dst := pair(t, 8, 5000)
	if _, err := Migrate(src, dst, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// The source is paused: every present source page must match dst.
	sbuf := make([]byte, isa.PageSize)
	dbuf := make([]byte, isa.PageSize)
	for gfn := uint64(0); gfn < src.Mem.Pages(); gfn++ {
		if src.Mem.Frame(gfn) == mem.NoFrame {
			continue
		}
		src.Mem.ReadRaw(gfn, sbuf)
		dst.Mem.ReadRaw(gfn, dbuf)
		for i := range sbuf {
			if sbuf[i] != dbuf[i] {
				t.Fatalf("gfn %d differs at byte %d", gfn, i)
			}
		}
	}
	// CPU state adopted.
	if dst.CPU.PC != src.CPU.PC {
		t.Fatalf("pc %#x vs %#x", dst.CPU.PC, src.CPU.PC)
	}
	if dst.CPU.CSR.Satp != src.CPU.CSR.Satp {
		t.Fatal("satp not adopted")
	}
}

// TestPreCopyDirtyRoundsObserveWriteMemo is the regression test for the
// memo-vs-migration interaction: the pre-copy engine's dirty rounds call
// CollectDirty directly, which clears dirty bits without bumping page
// versions — so only the write-epoch invalidation forces the guest's
// post-round stores (which run through the write memo) back through
// resolveWrite, where they re-dirty. If the memo ever kept serving stores
// after a round, later rounds would see empty dirty sets, pre-copy would
// "converge" instantly, and the destination would silently lose every
// post-round store. The test proves the iterative rounds keep observing
// stores with the memo enabled, and that the whole migration — round page
// counts, bytes, downtime, destination RAM — is byte-identical to the
// memo-off reference arm.
func TestPreCopyDirtyRoundsObserveWriteMemo(t *testing.T) {
	run := func(noMemo bool) (Report, *core.VM) {
		kernel, err := guest.BuildKernel()
		if err != nil {
			t.Fatal(err)
		}
		pool := mem.NewPool(frames)
		cfg := core.Config{Name: "src", Mode: core.ModeHW, MemBytes: vmRAM, NoWriteMemo: noMemo}
		src, err := core.NewVM(pool, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Six dirty pages: fewer than the write memo's slot count, so each
		// mutation round's stores hit the previous round's memo entries —
		// the exact warm-memo-across-CollectDirty interaction under test.
		guest.Dirty(0, 6, 30).Apply(src)
		if err := src.Boot(kernel); err != nil {
			t.Fatal(err)
		}
		src.Step(5_000_000 / raceScale)
		if src.State != core.StateRunning {
			t.Fatalf("source state %v (err=%v)", src.State, src.Err)
		}
		if !noMemo && src.Mem.WMemoHits == 0 {
			t.Fatal("warm-up never hit the write memo — vacuous regression test")
		}
		cfg.Name = "dst"
		dst, err := core.NewVM(pool, cfg)
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.Link = Gbps(1, 50) // slow link: dirty rounds must iterate
		opt.StopThresholdPages = 2
		opt.MaxRounds = 6
		rep, err := Migrate(src, dst, opt)
		if err != nil {
			t.Fatal(err)
		}
		return rep, dst
	}

	repMemo, dstMemo := run(false)
	repRef, dstRef := run(true)

	// The guest dirties 48 pages per round; iterative rounds must keep
	// finding them — a memo that swallowed post-round stores would produce
	// empty rounds after the first.
	if len(repMemo.Rounds) < 3 {
		t.Fatalf("only %d pre-copy rounds — dirty logging under the memo lost its feed", len(repMemo.Rounds))
	}
	for i, r := range repMemo.Rounds[1 : len(repMemo.Rounds)-1] {
		if r.Pages == 0 {
			t.Fatalf("iterative round %d resent 0 pages: post-round stores invisible to CollectDirty", i+1)
		}
	}

	// Memo on/off must agree on the whole migration, bit for bit.
	if len(repMemo.Rounds) != len(repRef.Rounds) {
		t.Fatalf("round counts diverged: %d vs %d", len(repMemo.Rounds), len(repRef.Rounds))
	}
	for i := range repMemo.Rounds {
		if repMemo.Rounds[i] != repRef.Rounds[i] {
			t.Fatalf("round %d diverged: %+v vs %+v", i, repMemo.Rounds[i], repRef.Rounds[i])
		}
	}
	if repMemo.BytesSent != repRef.BytesSent || repMemo.DowntimeCycles != repRef.DowntimeCycles ||
		repMemo.TotalCycles != repRef.TotalCycles || repMemo.Converged != repRef.Converged {
		t.Fatalf("reports diverged:\nmemo %+v\nref  %+v", repMemo, repRef)
	}
	buf1 := make([]byte, isa.PageSize)
	buf2 := make([]byte, isa.PageSize)
	for gfn := uint64(0); gfn < dstMemo.Mem.Pages(); gfn++ {
		dstMemo.Mem.ReadRaw(gfn, buf1)
		dstRef.Mem.ReadRaw(gfn, buf2)
		for i := range buf1 {
			if buf1[i] != buf2[i] {
				t.Fatalf("destination RAM diverged at gfn %d byte %d", gfn, i)
			}
		}
	}
	verifyDestRuns(t, dstMemo)
}

func TestPreCopyNonConvergenceAtHighDirtyRate(t *testing.T) {
	// Fast dirtier (no think time, large set) over a slow link cannot
	// converge; the algorithm must cap rounds and force stop-and-copy.
	src, dst := pair(t, 320, 0)
	opt := DefaultOptions()
	opt.Link = Gbps(0.5, 50) // slow link
	opt.MaxRounds = 5
	opt.StopThresholdPages = 8
	rep, err := Migrate(src, dst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Converged {
		t.Errorf("fast dirtier over slow link should not converge")
	}
	if len(rep.Rounds) < opt.MaxRounds {
		t.Errorf("rounds = %d", len(rep.Rounds))
	}
	verifyDestRuns(t, dst)
}

func TestDowntimeGrowsWithDirtyRate(t *testing.T) {
	downtime := func(pages, think uint64) uint64 {
		src, dst := pair(t, pages, think)
		opt := DefaultOptions()
		opt.StopThresholdPages = 4
		opt.MaxRounds = 8
		rep, err := Migrate(src, dst, opt)
		if err != nil {
			t.Fatal(err)
		}
		verifyDestRuns(t, dst)
		return rep.DowntimeCycles
	}
	slow := downtime(8, 5000)
	fast := downtime(320, 0)
	if fast <= slow {
		t.Errorf("downtime slow=%d fast=%d; should grow with dirty rate", slow, fast)
	}
}

func TestStopAndCopyDowntimeEqualsTotal(t *testing.T) {
	src, dst := pair(t, 16, 1000)
	opt := DefaultOptions()
	opt.Mode = StopAndCopy
	rep, err := Migrate(src, dst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DowntimeCycles != rep.TotalCycles {
		t.Errorf("stop-and-copy downtime %d != total %d", rep.DowntimeCycles, rep.TotalCycles)
	}
	verifyDestRuns(t, dst)
}

func TestPostCopyTinyDowntime(t *testing.T) {
	src, dst := pair(t, 64, 100)
	pre := DefaultOptions()
	preRep, err := Migrate(src, dst, pre)
	if err != nil {
		t.Fatal(err)
	}

	src2, dst2 := pair(t, 64, 100)
	post := DefaultOptions()
	post.Mode = PostCopy
	postRep, err := Migrate(src2, dst2, post)
	if err != nil {
		t.Fatal(err)
	}
	if postRep.DowntimeCycles >= preRep.DowntimeCycles {
		t.Errorf("post-copy downtime %d should undercut pre-copy %d",
			postRep.DowntimeCycles, preRep.DowntimeCycles)
	}
	// Destination runs with demand fetches.
	dst2.Step(100_000_000 / raceScale)
	if dst2.State == core.StateError {
		t.Fatalf("dest errored: %v", dst2.Err)
	}
	if postRep.RemoteFills == 0 && dst2.Stats.RemoteFills == 0 {
		t.Error("post-copy should demand-fetch pages")
	}
}

func TestPostCopyBackgroundPushCompletes(t *testing.T) {
	src, dst := pair(t, 32, 500)
	opt := DefaultOptions()
	opt.Mode = PostCopy
	opt.PostCopyPushChunk = 64
	rep, err := Migrate(src, dst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if dst.PageSource != nil {
		t.Error("push should complete and clear the demand hook")
	}
	if rep.BytesSent == 0 {
		t.Error("no bytes pushed")
	}
	verifyDestRuns(t, dst)
}

func TestMigrateRejectsBadStates(t *testing.T) {
	src, dst := pair(t, 8, 1000)
	src.Pause()
	src.State = core.StateHalted
	if _, err := Migrate(src, dst, DefaultOptions()); err == nil {
		t.Fatal("halted source accepted")
	}
}

func TestLinkMath(t *testing.T) {
	l := Gbps(10, 50)
	// 10 Gb/s = 1.25 GB/s; a 4 KiB page ≈ 3.3 µs ≈ 3300 cycles.
	c := l.TxCycles(isa.PageSize)
	if c < 3000 || c > 3600 {
		t.Fatalf("page tx = %d cycles", c)
	}
	if l.RTTCycles != 50_000 {
		t.Fatalf("rtt = %d", l.RTTCycles)
	}
	if (Link{}).TxCycles(100) != 0 {
		t.Fatal("zero link should cost nothing")
	}
}

func TestPreCopyRoundsDecayGeometrically(t *testing.T) {
	// With dirty rate below link rate, each round's page count should
	// shrink (geometric decay) — the F8 shape.
	src, dst := pair(t, 128, 1500)
	opt := DefaultOptions()
	opt.StopThresholdPages = 4
	opt.MaxRounds = 12
	rep, err := Migrate(src, dst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) < 3 {
		t.Skipf("converged too fast to observe decay: %+v", rep.Rounds)
	}
	// Compare the first iterative round with the last pre-final round.
	first := rep.Rounds[1].Pages
	last := rep.Rounds[len(rep.Rounds)-2].Pages
	if last > first {
		t.Errorf("rounds grew: %+v", rep.Rounds)
	}
}
