package migrate

// The migration wire format. Every message is a frame:
//
//	u32 magic | u8 type | u8 flags | u16 reserved | u64 seq | u32 payloadLen
//	payload…
//	u32 CRC32-IEEE over header+payload
//
// Sequence numbers are per-connection per-direction and must increase by
// exactly one; the CRC catches in-flight corruption (faultnet's bit flips
// land here). Page content travels as runs — contiguous gfn ranges sharing
// zero-ness — so all-zero pages cost 13 bytes instead of a page on the
// physical wire while the simulated cost model still charges the logical
// pageWireSize per page, keeping streamed reports byte-identical to the
// in-process engine's.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/isa"
)

const (
	frameMagic   = 0x4D475631 // "MGV1"
	headerSize   = 20
	trailerSize  = 4       // CRC32
	maxPayload   = 2 << 20 // decode-side allocation cap
	maxRunPages  = 1 << 20 // sanity cap on one run's page count
	framePageCap = 128     // data pages per ftPages frame
	archWireLen  = 32*8 + 8 + 8 + 8 + 8 + 10*8 + gabi.ParamSlots*8 + 8
)

// frameType tags one wire message.
type frameType uint8

const (
	ftHello     frameType = iota + 1 // src→dst: open/resume a session
	ftWelcome                        // dst→src: acked rounds + commit flag
	ftPages                          // src→dst: page runs
	ftRoundEnd                       // src→dst: round boundary
	ftRoundAck                       // dst→src: round durably applied
	ftArch                           // src→dst: architectural CPU state
	ftCommit                         // src→dst: switchover
	ftCommitAck                      // dst→src: destination adopted
	ftPull                           // dst→src: post-copy demand pull
	ftPage                           // src→dst: one pulled page
	ftPullChunk                      // dst→src: request a background push chunk
	ftChunkDone                      // src→dst: chunk complete (+pushed count)
)

// String names the frame type.
func (t frameType) String() string {
	switch t {
	case ftHello:
		return "hello"
	case ftWelcome:
		return "welcome"
	case ftPages:
		return "pages"
	case ftRoundEnd:
		return "round-end"
	case ftRoundAck:
		return "round-ack"
	case ftArch:
		return "arch"
	case ftCommit:
		return "commit"
	case ftCommitAck:
		return "commit-ack"
	case ftPull:
		return "pull"
	case ftPage:
		return "page"
	case ftPullChunk:
		return "pull-chunk"
	case ftChunkDone:
		return "chunk-done"
	}
	return fmt.Sprintf("frame?%d", uint8(t))
}

// wireConn frames an io.ReadWriteCloser with sequencing, CRCs, and
// physical byte accounting.
type wireConn struct {
	rw    io.ReadWriteCloser
	rseq  uint64
	wseq  uint64
	moved uint64 // physical bytes in both directions
}

func newWireConn(rw io.ReadWriteCloser) *wireConn { return &wireConn{rw: rw} }

func (w *wireConn) Close() error { return w.rw.Close() }

// writeFrame sends one frame.
func (w *wireConn) writeFrame(t frameType, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("migrate: frame %v payload %d exceeds cap", t, len(payload))
	}
	buf := make([]byte, headerSize+len(payload)+trailerSize)
	binary.LittleEndian.PutUint32(buf[0:], frameMagic)
	buf[4] = byte(t)
	binary.LittleEndian.PutUint64(buf[8:], w.wseq)
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(payload)))
	copy(buf[headerSize:], payload)
	crc := crc32.ChecksumIEEE(buf[:headerSize+len(payload)])
	binary.LittleEndian.PutUint32(buf[headerSize+len(payload):], crc)
	if _, err := w.rw.Write(buf); err != nil {
		return fmt.Errorf("migrate: writing %v frame: %w", t, err)
	}
	w.wseq++
	w.moved += uint64(len(buf))
	return nil
}

// readFrame receives and validates one frame.
func (w *wireConn) readFrame() (frameType, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(w.rw, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("migrate: reading frame header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != frameMagic {
		return 0, nil, fmt.Errorf("migrate: bad frame magic %#x", got)
	}
	t := frameType(hdr[4])
	seq := binary.LittleEndian.Uint64(hdr[8:])
	plen := binary.LittleEndian.Uint32(hdr[16:])
	if plen > maxPayload {
		return 0, nil, fmt.Errorf("migrate: frame %v payload %d exceeds cap", t, plen)
	}
	rest := make([]byte, int(plen)+trailerSize)
	if _, err := io.ReadFull(w.rw, rest); err != nil {
		return 0, nil, fmt.Errorf("migrate: reading %v payload: %w", t, err)
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, rest[:plen])
	if got := binary.LittleEndian.Uint32(rest[plen:]); got != crc {
		return 0, nil, fmt.Errorf("migrate: frame %v CRC mismatch (seq %d)", t, seq)
	}
	if seq != w.rseq {
		return 0, nil, fmt.Errorf("migrate: frame %v out of sequence: got %d want %d", t, seq, w.rseq)
	}
	w.rseq++
	w.moved += uint64(headerSize + len(rest))
	return t, rest[:plen:plen], nil
}

// expectFrame reads one frame and requires the given type.
func (w *wireConn) expectFrame(t frameType) ([]byte, error) {
	got, p, err := w.readFrame()
	if err != nil {
		return nil, err
	}
	if got != t {
		return nil, fmt.Errorf("migrate: expected %v frame, got %v", t, got)
	}
	return p, nil
}

// ---- payload codecs ------------------------------------------------------

type helloMsg struct {
	NPages uint64
	Mode   Mode
	Pull   bool // a redialed post-commit pull connection
}

func encodeHello(m helloMsg) []byte {
	b := make([]byte, 10)
	binary.LittleEndian.PutUint64(b, m.NPages)
	b[8] = byte(m.Mode)
	if m.Pull {
		b[9] = 1
	}
	return b
}

func decodeHello(p []byte) (helloMsg, error) {
	if len(p) != 10 {
		return helloMsg{}, fmt.Errorf("migrate: hello payload %d bytes", len(p))
	}
	m := helloMsg{
		NPages: binary.LittleEndian.Uint64(p),
		Mode:   Mode(p[8]),
		Pull:   p[9] != 0,
	}
	if m.Mode > PostCopy {
		return helloMsg{}, fmt.Errorf("migrate: hello names unknown mode %d", p[8])
	}
	return m, nil
}

type welcomeMsg struct {
	AckedRounds uint64
	Committed   bool
}

func encodeWelcome(m welcomeMsg) []byte {
	b := make([]byte, 9)
	binary.LittleEndian.PutUint64(b, m.AckedRounds)
	if m.Committed {
		b[8] = 1
	}
	return b
}

func decodeWelcome(p []byte) (welcomeMsg, error) {
	if len(p) != 9 {
		return welcomeMsg{}, fmt.Errorf("migrate: welcome payload %d bytes", len(p))
	}
	return welcomeMsg{
		AckedRounds: binary.LittleEndian.Uint64(p),
		Committed:   p[8] != 0,
	}, nil
}

func encodeU64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func decodeU64(p []byte, what string) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("migrate: %s payload %d bytes", what, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// pageRun is one contiguous gfn range sharing zero-ness. Data holds
// Count*PageSize bytes for non-zero runs and is empty for zero runs.
type pageRun struct {
	Start uint64
	Count uint32
	Zero  bool
	Data  []byte
}

// encodeRuns packs runs into one ftPages payload.
func encodeRuns(runs []pageRun) []byte {
	size := 0
	for _, r := range runs {
		size += 13 + len(r.Data)
	}
	b := make([]byte, 0, size)
	for _, r := range runs {
		var hdr [13]byte
		binary.LittleEndian.PutUint64(hdr[0:], r.Start)
		binary.LittleEndian.PutUint32(hdr[8:], r.Count)
		if r.Zero {
			hdr[12] = 1
		}
		b = append(b, hdr[:]...)
		b = append(b, r.Data...)
	}
	return b
}

// decodeRuns unpacks an ftPages payload. It validates structure only; gfn
// bounds are the applier's job.
func decodeRuns(p []byte) ([]pageRun, error) {
	var runs []pageRun
	for len(p) > 0 {
		if len(p) < 13 {
			return nil, fmt.Errorf("migrate: truncated page-run header (%d bytes)", len(p))
		}
		r := pageRun{
			Start: binary.LittleEndian.Uint64(p[0:]),
			Count: binary.LittleEndian.Uint32(p[8:]),
			Zero:  p[12] != 0,
		}
		if p[12] > 1 {
			return nil, fmt.Errorf("migrate: page-run flag byte %d", p[12])
		}
		if r.Count == 0 || r.Count > maxRunPages {
			return nil, fmt.Errorf("migrate: page-run count %d", r.Count)
		}
		if r.Start+uint64(r.Count) < r.Start {
			return nil, fmt.Errorf("migrate: page-run wraps gfn space")
		}
		p = p[13:]
		if !r.Zero {
			need := int(r.Count) * isa.PageSize
			if need/isa.PageSize != int(r.Count) || len(p) < need {
				return nil, fmt.Errorf("migrate: page-run data truncated (%d of %d·%d)", len(p), r.Count, isa.PageSize)
			}
			r.Data = p[:need:need]
			p = p[need:]
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// buildRuns groups a sorted gfn list into page runs, reading content from
// read (which fills a PageSize buffer for a gfn). Zero pages batch into
// data-less runs.
func buildRuns(gfns []uint64, read func(gfn uint64, buf []byte)) []pageRun {
	var runs []pageRun
	buf := make([]byte, isa.PageSize)
	for _, gfn := range gfns {
		read(gfn, buf)
		zero := isZeroPage(buf)
		if n := len(runs); n > 0 {
			last := &runs[n-1]
			if last.Zero == zero && last.Start+uint64(last.Count) == gfn &&
				(zero || last.Count < framePageCap) && last.Count < maxRunPages {
				last.Count++
				if !zero {
					last.Data = append(last.Data, buf...)
				}
				continue
			}
		}
		r := pageRun{Start: gfn, Count: 1, Zero: zero}
		if !zero {
			r.Data = append([]byte(nil), buf...)
		}
		runs = append(runs, r)
	}
	return runs
}

// isZeroPage reports whether a page buffer is all zero.
func isZeroPage(b []byte) bool {
	for i := 0; i+8 <= len(b); i += 8 {
		if binary.LittleEndian.Uint64(b[i:]) != 0 {
			return false
		}
	}
	for i := len(b) &^ 7; i < len(b); i++ {
		if b[i] != 0 {
			return false
		}
	}
	return true
}

// encodeArch serializes an architectural snapshot.
func encodeArch(a core.ArchState) []byte {
	b := make([]byte, archWireLen)
	o := 0
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[o:], v)
		o += 8
	}
	for _, x := range a.X {
		put(x)
	}
	put(a.PC)
	put(uint64(a.Priv))
	put(a.Cycles)
	put(a.Instret)
	c := a.CSR
	for _, v := range []uint64{c.Sstatus, c.Sie, c.Stvec, c.Sscratch, c.Sepc, c.Scause, c.Stval, c.Sip, c.Stimecmp, c.Satp} {
		put(v)
	}
	for _, v := range a.Params {
		put(v)
	}
	put(uint64(a.HaltCode))
	return b
}

// decodeArch parses an architectural snapshot.
func decodeArch(p []byte) (core.ArchState, error) {
	var a core.ArchState
	if len(p) != archWireLen {
		return a, fmt.Errorf("migrate: arch payload %d bytes, want %d", len(p), archWireLen)
	}
	o := 0
	get := func() uint64 {
		v := binary.LittleEndian.Uint64(p[o:])
		o += 8
		return v
	}
	for i := range a.X {
		a.X[i] = get()
	}
	a.PC = get()
	priv := get()
	if priv > 3 {
		return a, fmt.Errorf("migrate: arch privilege %d out of range", priv)
	}
	a.Priv = uint8(priv)
	a.Cycles = get()
	a.Instret = get()
	c := &a.CSR
	for _, dst := range []*uint64{&c.Sstatus, &c.Sie, &c.Stvec, &c.Sscratch, &c.Sepc, &c.Scause, &c.Stval, &c.Sip, &c.Stimecmp, &c.Satp} {
		*dst = get()
	}
	for i := range a.Params {
		a.Params[i] = get()
	}
	hc := get()
	if hc > 0xFFFF {
		return a, fmt.Errorf("migrate: arch halt code %d out of range", hc)
	}
	a.HaltCode = uint16(hc)
	return a, nil
}

type commitMsg struct {
	Downtime uint64
	Mode     Mode
	Present  []byte // post-copy: bitmap of source-present gfns
}

func encodeCommit(m commitMsg) []byte {
	b := make([]byte, 10+len(m.Present))
	binary.LittleEndian.PutUint64(b, m.Downtime)
	b[8] = byte(m.Mode)
	if len(m.Present) > 0 {
		b[9] = 1
	}
	copy(b[10:], m.Present)
	return b
}

func decodeCommit(p []byte, npages uint64) (commitMsg, error) {
	if len(p) < 10 {
		return commitMsg{}, fmt.Errorf("migrate: commit payload %d bytes", len(p))
	}
	m := commitMsg{
		Downtime: binary.LittleEndian.Uint64(p),
		Mode:     Mode(p[8]),
	}
	if m.Mode > PostCopy {
		return commitMsg{}, fmt.Errorf("migrate: commit names unknown mode %d", p[8])
	}
	switch p[9] {
	case 0:
		if len(p) != 10 {
			return commitMsg{}, fmt.Errorf("migrate: commit trailing bytes")
		}
	case 1:
		want := int((npages + 7) / 8)
		if len(p) != 10+want {
			return commitMsg{}, fmt.Errorf("migrate: commit bitmap %d bytes, want %d", len(p)-10, want)
		}
		m.Present = p[10 : 10+want : 10+want]
	default:
		return commitMsg{}, fmt.Errorf("migrate: commit bitmap flag %d", p[9])
	}
	return m, nil
}

type pageMsg struct {
	GFN  uint64
	Zero bool
	Have bool // false: source does not hold this page
	Data []byte
}

func encodePage(m pageMsg) []byte {
	var flags byte
	if m.Zero {
		flags |= 1
	}
	if m.Have {
		flags |= 2
	}
	b := make([]byte, 9+len(m.Data))
	binary.LittleEndian.PutUint64(b, m.GFN)
	b[8] = flags
	copy(b[9:], m.Data)
	return b
}

func decodePage(p []byte) (pageMsg, error) {
	if len(p) < 9 {
		return pageMsg{}, fmt.Errorf("migrate: page payload %d bytes", len(p))
	}
	if p[8] > 3 {
		return pageMsg{}, fmt.Errorf("migrate: page flag byte %d", p[8])
	}
	m := pageMsg{
		GFN:  binary.LittleEndian.Uint64(p),
		Zero: p[8]&1 != 0,
		Have: p[8]&2 != 0,
	}
	wantData := m.Have && !m.Zero
	switch {
	case wantData && len(p) != 9+isa.PageSize:
		return pageMsg{}, fmt.Errorf("migrate: page data %d bytes", len(p)-9)
	case !wantData && len(p) != 9:
		return pageMsg{}, fmt.Errorf("migrate: page trailing bytes")
	}
	if wantData {
		m.Data = p[9 : 9+isa.PageSize : 9+isa.PageSize]
	}
	return m, nil
}

type chunkDoneMsg struct {
	Pushed uint32 // pages actually pushed this chunk (logical wire cost)
	Done   bool   // background push schedule exhausted
}

func encodeChunkDone(m chunkDoneMsg) []byte {
	b := make([]byte, 5)
	binary.LittleEndian.PutUint32(b, m.Pushed)
	if m.Done {
		b[4] = 1
	}
	return b
}

func decodeChunkDone(p []byte) (chunkDoneMsg, error) {
	if len(p) != 5 || p[4] > 1 {
		return chunkDoneMsg{}, fmt.Errorf("migrate: chunk-done payload malformed (%d bytes)", len(p))
	}
	return chunkDoneMsg{Pushed: binary.LittleEndian.Uint32(p), Done: p[4] != 0}, nil
}

type roundEndMsg struct {
	Round uint64
	Pages uint64
}

func encodeRoundEnd(m roundEndMsg) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, m.Round)
	binary.LittleEndian.PutUint64(b[8:], m.Pages)
	return b
}

func decodeRoundEnd(p []byte) (roundEndMsg, error) {
	if len(p) != 16 {
		return roundEndMsg{}, fmt.Errorf("migrate: round-end payload %d bytes", len(p))
	}
	return roundEndMsg{
		Round: binary.LittleEndian.Uint64(p),
		Pages: binary.LittleEndian.Uint64(p[8:]),
	}, nil
}

// bitmap helpers (plain []byte bitmaps keep iteration order deterministic,
// unlike map sets — detorder bans order-sensitive map ranging).

func bitmapSet(b []byte, i uint64)      { b[i>>3] |= 1 << (i & 7) }
func bitmapGet(b []byte, i uint64) bool { return i>>3 < uint64(len(b)) && b[i>>3]&(1<<(i&7)) != 0 }
func newBitmap(n uint64) []byte         { return make([]byte, (n+7)/8) }
