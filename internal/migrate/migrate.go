// Package migrate implements live migration of govisor VMs: iterative
// pre-copy with dirty-page tracking (the NSDI'05 design), stop-and-copy as
// the baseline, and post-copy with demand paging over a simulated
// rate-limited link. Experiments F7 (downtime vs dirty rate) and F8
// (pre-copy convergence) run on top of it.
//
// Time is simulated: transferring N bytes over the link costs
// N·CyclesPerSecond⁄BytesPerSec guest cycles, and during pre-copy rounds the
// source guest keeps executing for exactly the cycles the transfer takes —
// the interleaving that makes convergence a race between link rate and
// dirty rate.
package migrate

import (
	"fmt"

	"govisor/internal/core"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/vcpu"
)

// Link models the migration channel.
type Link struct {
	BytesPerSec uint64 // sustained throughput
	RTTCycles   uint64 // round-trip latency (post-copy page pulls)
}

// Gbps builds a link of the given gigabits per second with the given RTT in
// microseconds.
func Gbps(gbits float64, rttMicros uint64) Link {
	return Link{
		BytesPerSec: uint64(gbits * 1e9 / 8),
		RTTCycles:   rttMicros * (vcpu.CyclesPerSecond / 1_000_000),
	}
}

// TxCycles returns the cycles needed to push n bytes through the link.
func (l Link) TxCycles(n uint64) uint64 {
	if l.BytesPerSec == 0 {
		return 0
	}
	return n * vcpu.CyclesPerSecond / l.BytesPerSec
}

// pageWireSize is a page plus header overhead on the wire.
const pageWireSize = isa.PageSize + 16

// cpuStateWireSize approximates the architectural state transfer.
const cpuStateWireSize = 1024

// Mode selects the migration algorithm.
type Mode uint8

// Migration modes.
const (
	PreCopy Mode = iota
	StopAndCopy
	PostCopy
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case PreCopy:
		return "pre-copy"
	case StopAndCopy:
		return "stop-and-copy"
	case PostCopy:
		return "post-copy"
	}
	return "mode?"
}

// Options configures a migration.
type Options struct {
	Mode Mode
	Link Link
	// MaxRounds bounds pre-copy iterations before forcing stop-and-copy.
	MaxRounds int
	// StopThresholdPages ends pre-copy early once a round's dirty set is
	// this small.
	StopThresholdPages uint64
	// PostCopyPushChunk is how many background pages the source pushes
	// between destination execution slices (0 ⇒ demand-only).
	PostCopyPushChunk int
}

// DefaultOptions returns pre-copy over a 10 Gb link with Xen-like bounds.
func DefaultOptions() Options {
	return Options{
		Mode:               PreCopy,
		Link:               Gbps(10, 50),
		MaxRounds:          30,
		StopThresholdPages: 64,
	}
}

// Round records one pre-copy iteration.
type Round struct {
	Pages  uint64
	Cycles uint64
}

// Report is the outcome of a migration.
type Report struct {
	Mode           Mode
	TotalCycles    uint64 // wall time from start to destination running
	DowntimeCycles uint64 // guest paused (brown-out) time
	BytesSent      uint64
	Rounds         []Round
	RemoteFills    uint64 // post-copy demand fetches
	Converged      bool   // pre-copy reached the threshold before MaxRounds
}

// Migrate moves the running guest in src to dst. dst must be a freshly
// created VM (same config and devices) that has not been booted. On return
// dst is running and src is paused.
//
//govisor:serialonly(drives two VMs at once; migration rounds run outside worker context)
func Migrate(src, dst *core.VM, opt Options) (Report, error) {
	if err := validatePair(src, dst); err != nil {
		return Report{}, err
	}
	switch opt.Mode {
	case PreCopy:
		return preCopy(src, dst, opt)
	case StopAndCopy:
		return stopAndCopy(src, dst, opt)
	case PostCopy:
		return postCopy(src, dst, opt)
	}
	return Report{}, fmt.Errorf("migrate: unknown mode %d", opt.Mode)
}

// validatePair vets a migration pair: a live source, an unbooted
// destination with enough RAM, and — crucially — two distinct VMs over
// distinct guest-physical spaces (self-migration silently corrupts state).
func validatePair(src, dst *core.VM) error {
	if src == dst {
		return fmt.Errorf("migrate: source and destination are the same VM")
	}
	if src.Mem == dst.Mem {
		return fmt.Errorf("migrate: source and destination share a guest-physical space")
	}
	if src.State != core.StateRunning && src.State != core.StateIdle {
		return fmt.Errorf("migrate: source is %v", src.State)
	}
	if dst.State != core.StateCreated {
		return fmt.Errorf("migrate: destination is %v", dst.State)
	}
	if dst.Mem.Pages() < src.Mem.Pages() {
		return fmt.Errorf("migrate: destination RAM too small")
	}
	return nil
}

// sendPages transfers the given source pages into dst, running the source
// guest concurrently when interleave is true. It returns the transfer
// cycles.
func sendPages(src, dst *core.VM, gfns []uint64, link Link, interleave bool, rep *Report) (uint64, error) {
	if len(gfns) == 0 {
		return 0, nil
	}
	buf := make([]byte, isa.PageSize)
	var cycles uint64
	for _, gfn := range gfns {
		src.Mem.ReadRaw(gfn, buf)
		if err := dst.Mem.WriteRaw(gfn, buf); err != nil {
			return cycles, fmt.Errorf("migrate: writing gfn %d: %w", gfn, err)
		}
		cycles += link.TxCycles(pageWireSize)
		rep.BytesSent += pageWireSize
	}
	if interleave && src.State == core.StateRunning {
		src.Step(cycles)
	} else {
		// Guest paused: the time still elapses on the wall clock.
		src.CPU.AddCycles(cycles)
	}
	return cycles, nil
}

func presentPages(vm *core.VM) []uint64 {
	out := make([]uint64, 0, vm.Mem.Present())
	for gfn := uint64(0); gfn < vm.Mem.Pages(); gfn++ {
		if vm.Mem.Frame(gfn) != mem.NoFrame {
			out = append(out, gfn)
		}
	}
	return out
}

//govisor:serialonly(migration round; touches source and destination VMs together)
func preCopy(src, dst *core.VM, opt Options) (Report, error) {
	rep := Report{Mode: PreCopy}
	// Round 0: clear the dirty log and send every present page while the
	// guest keeps running.
	src.Mem.CollectDirty(nil)
	all := presentPages(src)
	c, err := sendPages(src, dst, all, opt.Link, true, &rep)
	if err != nil {
		return rep, err
	}
	rep.TotalCycles += c
	rep.Rounds = append(rep.Rounds, Round{Pages: uint64(len(all)), Cycles: c})

	// Iterative rounds: resend what got dirtied while we were sending.
	// The convergence check peeks at the dirty count without clearing it,
	// so the residue is still logged for the final brown-out transfer.
	var dirty []uint64
	for round := 1; round <= opt.MaxRounds; round++ {
		if src.Mem.DirtyCount() <= opt.StopThresholdPages {
			rep.Converged = true
			break
		}
		dirty = src.Mem.CollectDirty(dirty[:0])
		c, err := sendPages(src, dst, dirty, opt.Link, true, &rep)
		if err != nil {
			return rep, err
		}
		rep.TotalCycles += c
		rep.Rounds = append(rep.Rounds, Round{Pages: uint64(len(dirty)), Cycles: c})
	}

	// Brown-out: pause, send the final dirty set + CPU state, switch over.
	src.Pause()
	dirty = src.Mem.CollectDirty(dirty[:0])
	c, err = sendPages(src, dst, dirty, opt.Link, false, &rep)
	if err != nil {
		return rep, err
	}
	c += opt.Link.TxCycles(cpuStateWireSize)
	rep.BytesSent += cpuStateWireSize
	rep.DowntimeCycles = c
	rep.TotalCycles += c
	rep.Rounds = append(rep.Rounds, Round{Pages: uint64(len(dirty)), Cycles: c})

	dst.AdoptState(src)
	dst.CPU.AddCycles(c) // the destination clock absorbs the downtime
	return rep, nil
}

//govisor:serialonly(migration round; touches source and destination VMs together)
func stopAndCopy(src, dst *core.VM, opt Options) (Report, error) {
	rep := Report{Mode: StopAndCopy, Converged: true}
	src.Pause()
	all := presentPages(src)
	c, err := sendPages(src, dst, all, opt.Link, false, &rep)
	if err != nil {
		return rep, err
	}
	c += opt.Link.TxCycles(cpuStateWireSize)
	rep.BytesSent += cpuStateWireSize
	rep.Rounds = append(rep.Rounds, Round{Pages: uint64(len(all)), Cycles: c})
	rep.DowntimeCycles = c
	rep.TotalCycles = c
	dst.AdoptState(src)
	dst.CPU.AddCycles(c)
	return rep, nil
}

//govisor:serialonly(migration round; touches source and destination VMs together)
func postCopy(src, dst *core.VM, opt Options) (Report, error) {
	rep := Report{Mode: PostCopy, Converged: true}
	src.Pause()

	// Switchover immediately: only the CPU state crosses during downtime.
	c := opt.Link.TxCycles(cpuStateWireSize)
	rep.BytesSent += cpuStateWireSize
	rep.DowntimeCycles = c
	rep.TotalCycles = c
	dst.AdoptState(src)
	dst.CPU.AddCycles(c)

	// Demand path: every not-present fault on the destination pulls the
	// page from the source, paying RTT + transfer. The source is paused, so
	// its present set is frozen; once `sent` covers it the hook clears
	// itself — otherwise demand-only mode would pin the source forever.
	sent := make(map[uint64]bool)
	presentTotal := src.Mem.Present()
	buf := make([]byte, isa.PageSize)
	dst.PageSource = func(gfn uint64) ([]byte, bool) {
		if sent[gfn] {
			return nil, false // already pushed: plain demand-zero fill
		}
		if src.Mem.Frame(gfn) == mem.NoFrame {
			return nil, false
		}
		src.Mem.ReadRaw(gfn, buf)
		sent[gfn] = true
		if uint64(len(sent)) >= presentTotal {
			dst.PageSource = nil
		}
		cost := opt.Link.RTTCycles + opt.Link.TxCycles(pageWireSize)
		dst.CPU.AddCycles(cost)
		rep.TotalCycles += cost
		rep.BytesSent += pageWireSize
		rep.RemoteFills++
		page := make([]byte, isa.PageSize)
		copy(page, buf)
		return page, true
	}

	// Background push: interleave destination execution with proactive
	// transfers until every source page has landed.
	if opt.PostCopyPushChunk > 0 {
		remaining := presentPages(src)
		for len(remaining) > 0 {
			chunk := opt.PostCopyPushChunk
			if chunk > len(remaining) {
				chunk = len(remaining)
			}
			var pushed uint64
			for _, gfn := range remaining[:chunk] {
				if sent[gfn] {
					continue
				}
				src.Mem.ReadRaw(gfn, buf)
				if err := dst.Mem.WriteRaw(gfn, buf); err != nil {
					return rep, err
				}
				sent[gfn] = true
				pushed += pageWireSize
				rep.BytesSent += pageWireSize
			}
			remaining = remaining[chunk:]
			cost := opt.Link.TxCycles(pushed)
			rep.TotalCycles += cost
			if dst.State == core.StateRunning {
				dst.Step(cost)
			}
		}
		dst.PageSource = nil
	}
	return rep, nil
}
