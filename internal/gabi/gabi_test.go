package gabi

import (
	"testing"
	"testing/quick"
)

// TestLayoutInvariants: the guest-physical layout constants the kernels and
// the VMM both rely on must stay mutually consistent.
func TestLayoutInvariants(t *testing.T) {
	if ParamBase+ParamSlots*8 > KernelBase {
		t.Fatalf("parameter block [%#x, %#x) overlaps the kernel at %#x",
			ParamBase, ParamBase+ParamSlots*8, KernelBase)
	}
	if KernelBase >= StackTop {
		t.Fatalf("kernel base %#x above stack top %#x", KernelBase, StackTop)
	}
	if ParamBase%8 != 0 {
		t.Fatalf("parameter block %#x not 8-byte aligned", ParamBase)
	}
	if KernelBase%4 != 0 {
		t.Fatalf("kernel base %#x not instruction aligned", KernelBase)
	}
}

// TestParamSlotsWellFormed: every named slot must fit the block, and the
// result slots must not collide with the input slots.
func TestParamSlotsWellFormed(t *testing.T) {
	slots := []int{
		PWorkload, PIterations, PWorkingSet, PStride, PWriteFrac,
		PPrivDensity, PArg0, PArg1, PArg2, PHeapBase, PHeapPages, PSatp,
		PChurnVA, PChurnPTE, PChurnPages, PResult0, PResult1, PResult2, PResult3,
	}
	seen := map[int]bool{}
	for _, s := range slots {
		if s < 0 || s >= ParamSlots {
			t.Fatalf("slot %d outside the %d-slot block", s, ParamSlots)
		}
		if seen[s] {
			t.Fatalf("slot %d assigned twice", s)
		}
		seen[s] = true
	}
	for _, r := range []int{PResult0, PResult1, PResult2, PResult3} {
		if r <= PChurnPages {
			t.Fatalf("result slot %d inside the input range", r)
		}
	}
}

// TestHypercallNumbersUnique: the ABI numbers must be dense and distinct —
// a collision would silently dispatch the wrong service.
func TestHypercallNumbersUnique(t *testing.T) {
	nrs := []uint64{
		HCPutchar, HCYield, HCSetTimer, HCMMUMap, HCMMUBatch, HCMMUUnmap,
		HCFlushTLB, HCGetTime, HCMarker, HCPuts, HCExit,
	}
	seen := map[uint64]bool{}
	for _, n := range nrs {
		if seen[n] {
			t.Fatalf("hypercall number %d assigned twice", n)
		}
		seen[n] = true
	}
	for _, w := range []uint64{WCompute, WMemTouch, WPTChurn, WSyscall, WCSR, WDirty, WIdle} {
		if w > 16 {
			t.Fatalf("workload id %d out of the expected small range", w)
		}
	}
}

// TestErrorCodesAreNegative: error returns occupy the top of the u64 range
// (two's-complement negatives) and never collide with HCOK or each other.
func TestErrorCodesAreNegative(t *testing.T) {
	einval, enosys := uint64(HCEInval), uint64(HCENoSys)
	if int64(einval) != -1 || int64(enosys) != -2 {
		t.Fatalf("error codes: einval=%d enosys=%d", int64(einval), int64(enosys))
	}
	if HCOK == HCEInval || HCOK == HCENoSys || HCEInval == HCENoSys {
		t.Fatal("error codes collide")
	}
}

// TestBatchEntryRoundTrip: the HCMMUBatch wire format must round-trip
// exactly for arbitrary values — the guest encodes with stores, the VMM
// decodes with DecodeBatchEntry, and both sides compile against this.
func TestBatchEntryRoundTrip(t *testing.T) {
	roundTrip := func(va, pa, flags uint64) bool {
		var buf [BatchEntrySize]byte
		EncodeBatchEntry(buf[:], va, pa, flags)
		gva, gpa, gflags := DecodeBatchEntry(buf[:])
		return gva == va && gpa == pa && gflags == flags
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Fatal(err)
	}
	// The layout is little-endian u64 triples at fixed offsets, matching the
	// stores the generated kernels emit (sd at +0, +8, +16).
	var buf [BatchEntrySize]byte
	EncodeBatchEntry(buf[:], 0x0102030405060708, 0x1112131415161718, 0x2122232425262728)
	if buf[0] != 0x08 || buf[8] != 0x18 || buf[16] != 0x28 {
		t.Fatalf("layout not little-endian at 8-byte offsets: % x", buf)
	}
}
