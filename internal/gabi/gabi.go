// Package gabi pins down the guest↔VMM binary interface: the boot protocol,
// the hypercall ABI, and the guest-physical layout conventions the generated
// guest kernels rely on. Both the VMM (internal/core) and the guest code
// generators (internal/guest) import it, so the two sides can never drift.
package gabi

import "encoding/binary"

// Guest-physical layout conventions.
const (
	// ParamBase is the guest-physical address of the boot parameter block
	// (ParamSlots little-endian u64 values). The VMM passes it in a0.
	ParamBase  = 0x0200
	ParamSlots = 48

	// KernelBase is where kernel images are loaded and entered.
	KernelBase = 0x1000

	// StackTop is the initial kernel stack pointer (grows down).
	StackTop = 0xF000
)

// Well-known parameter slots (index into the u64 array at ParamBase).
const (
	PWorkload    = 0 // which workload the kernel runs (W* below)
	PIterations  = 1 // outer iterations
	PWorkingSet  = 2 // pages in the working set
	PStride      = 3 // bytes between touches
	PWriteFrac   = 4 // percent of touches that are writes (0..100)
	PPrivDensity = 5 // privileged ops per 1000 instructions
	PArg0        = 6 // workload-specific
	PArg1        = 7
	PArg2        = 8
	PHeapBase    = 9  // first usable heap page (set by VMM)
	PHeapPages   = 10 // heap size in pages
	PSatp        = 11 // satp value for the pre-built identity tables
	PChurnVA     = 12 // virtual base of the PT-churn window
	PChurnPTE    = 13 // gpa of the level-0 PTE array covering the churn window
	PChurnPages  = 14 // number of PTEs in the churn window
	PResult0     = 16 // kernel writes results here before HALT
	PResult1     = 17
	PResult2     = 18
	PResult3     = 19
)

// Workload identifiers for PWorkload.
const (
	WCompute  = 0 // pure ALU loop
	WMemTouch = 1 // walk a working set with loads/stores
	WPTChurn  = 2 // map/unmap loop (page-table churn)
	WSyscall  = 3 // user/kernel syscall ping-pong
	WCSR      = 4 // privileged CSR read/write loop
	WDirty    = 5 // dirty pages at a controlled rate (migration driver)
	WIdle     = 6 // arm timer and WFI loop
)

// Hypercall numbers (ECALL from virtual S-mode; number in a7, args in
// a0..a5, result in a0). Under the native baseline the same ABI is the
// "firmware" interface, so one kernel binary runs everywhere.
const (
	HCPutchar  = 0 // a0 = byte
	HCYield    = 1
	HCSetTimer = 2  // a0 = absolute cycle deadline (0 disarms)
	HCMMUMap   = 3  // para: a0 = va, a1 = pa, a2 = PTE flag bits
	HCMMUBatch = 4  // para: a0 = gpa of entries {va,pa,flags}×a1 (24 B each)
	HCMMUUnmap = 5  // para: a0 = va
	HCFlushTLB = 6  // a0 = va (0 ⇒ all)
	HCGetTime  = 7  // → a0 = cycles
	HCMarker   = 8  // a0 = marker id; VMM records (id, cycles)
	HCPuts     = 9  // a0 = gpa of NUL-terminated string
	HCExit     = 10 // a0 = code; stops the vCPU like HALT
)

// Hypercall error returns (negative values in a0).
const (
	HCOK     = 0
	HCEInval = ^uint64(0)     // -1: bad arguments
	HCENoSys = ^uint64(0) - 1 // -2: unknown hypercall
)

// BatchEntrySize is the byte size of one HCMMUBatch entry in guest memory:
// three little-endian u64 values {va, pa, flags}.
const BatchEntrySize = 24

// EncodeBatchEntry packs one HCMMUBatch entry into buf, which must be at
// least BatchEntrySize bytes. The layout is the one the guest kernels build
// with stores and the VMM decodes, so both sides share this one definition.
func EncodeBatchEntry(buf []byte, va, pa, flags uint64) {
	binary.LittleEndian.PutUint64(buf[0:], va)
	binary.LittleEndian.PutUint64(buf[8:], pa)
	binary.LittleEndian.PutUint64(buf[16:], flags)
}

// DecodeBatchEntry unpacks one HCMMUBatch entry from buf.
func DecodeBatchEntry(buf []byte) (va, pa, flags uint64) {
	return binary.LittleEndian.Uint64(buf[0:]),
		binary.LittleEndian.Uint64(buf[8:]),
		binary.LittleEndian.Uint64(buf[16:])
}
