package faultnet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
)

// bufConn is an in-memory ReadWriteCloser: writes append to out, reads
// drain in.
type bufConn struct {
	mu     sync.Mutex
	in     bytes.Buffer
	out    bytes.Buffer
	closed bool
}

func (b *bufConn) Read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, io.ErrClosedPipe
	}
	if b.in.Len() == 0 {
		return 0, io.EOF
	}
	return b.in.Read(p)
}

func (b *bufConn) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, io.ErrClosedPipe
	}
	return b.out.Write(p)
}

func (b *bufConn) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	return nil
}

func (b *bufConn) written() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.out.Bytes()...)
}

// driveSchedule pushes a fixed write pattern through a fresh injector and
// returns a trace of what happened per write.
func driveSchedule(t *testing.T, plan Plan) []string {
	t.Helper()
	inj := NewInjector(plan)
	var trace []string
	inner := &bufConn{}
	conn := inj.Wrap(inner)
	buf := make([]byte, 257)
	for i := range buf {
		buf[i] = byte(i)
	}
	for w := 0; w < 400; w++ {
		n, err := conn.Write(buf)
		switch {
		case err == nil:
			trace = append(trace, fmt.Sprintf("w%d ok %d", w, n))
		case errors.Is(err, ErrInjected):
			trace = append(trace, fmt.Sprintf("w%d inj %d %v", w, n, err))
			// Redial: a fresh conn continues the same schedule.
			inner = &bufConn{}
			conn = inj.Wrap(inner)
		default:
			t.Fatalf("write %d: unexpected error %v", w, err)
		}
		// Exercise the read path so read-resets fire deterministically.
		if _, err := conn.Read(make([]byte, 1)); errors.Is(err, ErrInjected) {
			trace = append(trace, fmt.Sprintf("r%d inj %v", w, err))
			inner = &bufConn{}
			conn = inj.Wrap(inner)
		}
	}
	st := inj.Stats()
	trace = append(trace, fmt.Sprintf("stats %+v delay %d", st, inj.TakeDelayCycles()))
	return trace
}

// TestDeterministicSchedule proves the fault schedule is a pure function
// of (seed, byte stream): two identical runs produce identical traces,
// and a different seed produces a different one.
func TestDeterministicSchedule(t *testing.T) {
	plan := Plan{Seed: 42, MeanGapBytes: 900}
	a := driveSchedule(t, plan)
	b := driveSchedule(t, plan)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", a, b)
	}
	inj := NewInjector(plan)
	if inj.Stats().Total() != 0 {
		t.Fatalf("fresh injector has nonzero stats")
	}
	c := driveSchedule(t, Plan{Seed: 43, MeanGapBytes: 900})
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds produced identical traces")
	}
}

// TestResetRefusesWriteAndBreaksConn: a reset fault refuses the write,
// closes the inner conn, and poisons every later operation.
func TestResetRefusesWriteAndBreaksConn(t *testing.T) {
	inj := NewInjector(Plan{Seed: 1, MeanGapBytes: 4, Kinds: []Kind{KindReset}})
	inner := &bufConn{}
	conn := inj.Wrap(inner)
	var err error
	for i := 0; i < 100; i++ {
		if _, err = conn.Write([]byte{1, 2, 3}); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("expected injected reset, got %v", err)
	}
	if !inner.closed {
		t.Fatalf("inner conn not closed on reset")
	}
	if _, err2 := conn.Write([]byte{9}); err2 == nil {
		t.Fatalf("write after reset succeeded")
	}
	if _, err2 := conn.Read(make([]byte, 1)); err2 == nil {
		t.Fatalf("read after reset succeeded")
	}
	if got := inj.Stats().Resets; got != 1 {
		t.Fatalf("Resets = %d, want 1", got)
	}
}

// TestPartialWriteTruncates: a partial-write fault delivers a strict
// prefix then fails the conn.
func TestPartialWriteTruncates(t *testing.T) {
	inj := NewInjector(Plan{Seed: 7, MeanGapBytes: 64, Kinds: []Kind{KindPartialWrite}})
	buf := make([]byte, 40)
	for i := range buf {
		buf[i] = byte(i + 1)
	}
	for try := 0; try < 100; try++ {
		inner := &bufConn{}
		conn := inj.Wrap(inner)
		n, err := conn.Write(buf)
		if err == nil {
			if n != len(buf) || !bytes.Equal(inner.written(), buf) {
				t.Fatalf("clean write mangled: n=%d", n)
			}
			continue
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("unexpected error %v", err)
		}
		if n >= len(buf) {
			t.Fatalf("partial write delivered full buffer (n=%d)", n)
		}
		if !bytes.Equal(inner.written(), buf[:n]) {
			t.Fatalf("delivered bytes are not a prefix: %v", inner.written())
		}
		if !inner.closed {
			t.Fatalf("inner conn not closed after partial write")
		}
		return
	}
	t.Fatalf("partial-write fault never fired")
}

// TestCorruptFlipsExactlyOneBit: a corruption fault delivers the buffer
// with exactly one bit flipped.
func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	inj := NewInjector(Plan{Seed: 3, MeanGapBytes: 64, Kinds: []Kind{KindCorrupt}})
	buf := make([]byte, 48)
	for i := range buf {
		buf[i] = byte(i * 3)
	}
	for try := 0; try < 100; try++ {
		inner := &bufConn{}
		conn := inj.Wrap(inner)
		n, err := conn.Write(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("corrupt write failed: n=%d err=%v", n, err)
		}
		got := inner.written()
		if bytes.Equal(got, buf) {
			continue // fault not due yet
		}
		flipped := 0
		for i := range buf {
			d := got[i] ^ buf[i]
			for ; d != 0; d &= d - 1 {
				flipped++
			}
		}
		if flipped != 1 {
			t.Fatalf("corruption flipped %d bits, want exactly 1", flipped)
		}
		if inj.Stats().Corruptions == 0 {
			t.Fatalf("corruption not counted")
		}
		return
	}
	t.Fatalf("corruption fault never fired")
}

// TestReadResetDeliversWriteThenFailsRead: the write goes through intact
// and the following read fails — the lost-ack failure mode.
func TestReadResetDeliversWriteThenFailsRead(t *testing.T) {
	inj := NewInjector(Plan{Seed: 5, MeanGapBytes: 16, Kinds: []Kind{KindReadReset}})
	buf := []byte("round-ack-payload")
	for try := 0; try < 100; try++ {
		inner := &bufConn{}
		inner.in.WriteString("ack")
		conn := inj.Wrap(inner)
		n, err := conn.Write(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("read-reset write failed: n=%d err=%v", n, err)
		}
		if !bytes.Equal(inner.written(), buf) {
			t.Fatalf("read-reset mangled the write")
		}
		_, rerr := conn.Read(make([]byte, 8))
		if rerr == nil {
			continue // fault not due yet; the stub ack was readable
		}
		if !errors.Is(rerr, ErrInjected) {
			t.Fatalf("read failed with %v, want injected", rerr)
		}
		if !inner.closed {
			t.Fatalf("inner conn not closed after read-reset")
		}
		return
	}
	t.Fatalf("read-reset fault never fired")
}

// TestDelayAccumulates: delay faults pass data through untouched and pile
// simulated cycles onto the injector until drained.
func TestDelayAccumulates(t *testing.T) {
	inj := NewInjector(Plan{Seed: 9, MeanGapBytes: 8, DelayCycles: 1234, Kinds: []Kind{KindDelay}})
	inner := &bufConn{}
	conn := inj.Wrap(inner)
	var sent bytes.Buffer
	for i := 0; i < 64; i++ {
		chunk := []byte{byte(i), byte(i + 1), byte(i + 2)}
		sent.Write(chunk)
		if _, err := conn.Write(chunk); err != nil {
			t.Fatalf("delay write failed: %v", err)
		}
	}
	if !bytes.Equal(inner.written(), sent.Bytes()) {
		t.Fatalf("delay faults altered the byte stream")
	}
	st := inj.Stats()
	if st.Delays == 0 {
		t.Fatalf("no delay faults fired")
	}
	if got, want := inj.TakeDelayCycles(), st.Delays*1234; got != want {
		t.Fatalf("TakeDelayCycles = %d, want %d", got, want)
	}
	if inj.TakeDelayCycles() != 0 {
		t.Fatalf("TakeDelayCycles did not drain")
	}
}

// TestByteClockPersistsAcrossConns: wrapping a second conn does not
// restart the schedule — the distance to the next fault carries over.
func TestByteClockPersistsAcrossConns(t *testing.T) {
	// One conn for the whole stream:
	one := NewInjector(Plan{Seed: 11, MeanGapBytes: 100, Kinds: []Kind{KindDelay}})
	cw := one.Wrap(&bufConn{})
	for i := 0; i < 50; i++ {
		if _, err := cw.Write(make([]byte, 17)); err != nil {
			t.Fatal(err)
		}
	}
	// Same stream split across five sequential conns:
	two := NewInjector(Plan{Seed: 11, MeanGapBytes: 100, Kinds: []Kind{KindDelay}})
	for c := 0; c < 5; c++ {
		cw := two.Wrap(&bufConn{})
		for i := 0; i < 10; i++ {
			if _, err := cw.Write(make([]byte, 17)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if one.Stats() != two.Stats() {
		t.Fatalf("schedule restarted across conns: %+v vs %+v", one.Stats(), two.Stats())
	}
}

// TestMaxFaultsStopsInjecting: after MaxFaults faults the wrapper becomes
// transparent.
func TestMaxFaultsStopsInjecting(t *testing.T) {
	inj := NewInjector(Plan{Seed: 2, MeanGapBytes: 4, MaxFaults: 3, Kinds: []Kind{KindDelay}})
	conn := inj.Wrap(&bufConn{})
	for i := 0; i < 1000; i++ {
		if _, err := conn.Write(make([]byte, 9)); err != nil {
			t.Fatal(err)
		}
	}
	if got := inj.Stats().Total(); got != 3 {
		t.Fatalf("fired %d faults, want exactly MaxFaults=3", got)
	}
}

// TestZeroMeanGapDisables: MeanGapBytes == 0 never injects.
func TestZeroMeanGapDisables(t *testing.T) {
	inj := NewInjector(Plan{Seed: 77})
	conn := inj.Wrap(&bufConn{})
	for i := 0; i < 500; i++ {
		if _, err := conn.Write(make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if inj.Stats().Total() != 0 {
		t.Fatalf("disabled plan injected faults: %+v", inj.Stats())
	}
}
