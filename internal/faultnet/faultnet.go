// Package faultnet wraps a migration transport in a deterministic fault
// injector: connection resets at byte offsets, partial writes, bit
// corruption (caught by the stream codec's per-frame CRCs), and latency
// spikes measured in simulated cycles. The schedule is a pure function of
// the seed and the byte stream — no wall clock, no global RNG — so a
// faulted migration run is exactly reproducible, the property every
// resilience proof in internal/migrate rests on: the failure model is an
// explicit, sweepable parameter, not an ambient assumption.
//
// One Injector owns one fault schedule and wraps every connection of a
// migration session in turn; the byte clock and PRNG persist across
// conns, so redialing does not reset the distance to the next fault.
package faultnet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
)

// ErrInjected is the error class of every injected failure; transports
// report it wrapped with the fault kind, and errors.Is(err, ErrInjected)
// distinguishes a simulated failure from a real transport one.
var ErrInjected = errors.New("faultnet: injected fault")

// Kind enumerates the injectable fault classes.
type Kind uint8

// Fault kinds.
const (
	// KindReset terminates the connection before a write: the write
	// returns an injected error and every later operation fails.
	KindReset Kind = iota
	// KindPartialWrite hands only a prefix of the buffer to the inner
	// conn, then terminates the connection — a mid-frame truncation the
	// peer sees as a short, unparseable stream.
	KindPartialWrite
	// KindCorrupt flips one bit of a written buffer and lets it through;
	// the peer's frame CRC must catch it.
	KindCorrupt
	// KindReadReset terminates the connection at the next read: the
	// sender loses the ack channel instead of the data channel, the case
	// where the peer may have committed work the sender cannot confirm.
	KindReadReset
	// KindDelay injects a latency spike of Plan.DelayCycles simulated
	// cycles, accumulated on the injector for the engine to charge.
	KindDelay
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindReset:
		return "reset"
	case KindPartialWrite:
		return "partial-write"
	case KindCorrupt:
		return "corrupt"
	case KindReadReset:
		return "read-reset"
	case KindDelay:
		return "delay"
	}
	return "kind?"
}

// Plan parameterizes a fault schedule.
type Plan struct {
	// Seed seeds the schedule PRNG; equal seeds over equal byte streams
	// inject equal faults.
	Seed int64
	// MeanGapBytes is the average written-byte gap between faults; actual
	// gaps are uniform in [1, 2·MeanGapBytes]. Zero disables injection.
	MeanGapBytes uint64
	// Kinds restricts the schedule to the listed kinds; empty means all.
	Kinds []Kind
	// DelayCycles is the magnitude of one KindDelay spike in simulated
	// cycles (default 100_000 when delays are enabled).
	DelayCycles uint64
	// MaxFaults stops injecting after this many faults; 0 is unlimited.
	MaxFaults int
}

// Stats counts injected faults by kind.
type Stats struct {
	Resets        uint64
	PartialWrites uint64
	Corruptions   uint64
	ReadResets    uint64
	Delays        uint64
}

// Total sums the injected fault count.
func (s Stats) Total() uint64 {
	return s.Resets + s.PartialWrites + s.Corruptions + s.ReadResets + s.Delays
}

// Injector owns a fault schedule across the connections of one session.
// Wrap successive conns with Wrap; the byte clock and PRNG persist.
type Injector struct {
	mu     sync.Mutex
	plan   Plan
	rng    *rand.Rand
	kinds  []Kind
	bytes  uint64 // total bytes written across all wrapped conns
	nextAt uint64 // byte offset of the next fault
	next   Kind
	fired  int
	delay  uint64 // accumulated injected latency, simulated cycles
	stats  Stats
}

// NewInjector builds an injector for the plan.
func NewInjector(plan Plan) *Injector {
	kinds := plan.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{KindReset, KindPartialWrite, KindCorrupt, KindReadReset, KindDelay}
	}
	if plan.DelayCycles == 0 {
		plan.DelayCycles = 100_000
	}
	inj := &Injector{
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		kinds: kinds,
	}
	inj.schedule()
	return inj
}

// schedule draws the next fault's byte offset and kind. Caller holds mu
// (or is the constructor).
func (inj *Injector) schedule() {
	if inj.plan.MeanGapBytes == 0 {
		inj.nextAt = ^uint64(0)
		return
	}
	gap := 1 + uint64(inj.rng.Int63n(int64(2*inj.plan.MeanGapBytes)))
	inj.nextAt = inj.bytes + gap
	inj.next = inj.kinds[inj.rng.Intn(len(inj.kinds))]
}

// verdict is one write's fault decision.
type verdict struct {
	due  bool
	kind Kind
	at   uint64 // absolute byte offset the fault fired at
	cut  uint64 // offset within the buffer (partial-write length / flip site)
	bit  uint   // bit to flip for KindCorrupt
}

// observe advances the byte clock by n written bytes and decides whether a
// fault fires inside this write.
func (inj *Injector) observe(n uint64) verdict {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	exhausted := inj.plan.MaxFaults > 0 && inj.fired >= inj.plan.MaxFaults
	if exhausted || n == 0 || inj.bytes+n <= inj.nextAt {
		inj.bytes += n
		return verdict{}
	}
	v := verdict{due: true, kind: inj.next, at: inj.nextAt}
	if v.at < inj.bytes {
		v.at = inj.bytes
	}
	v.cut = v.at - inj.bytes
	if v.cut >= n {
		v.cut = n - 1
	}
	v.bit = uint(inj.rng.Intn(8))
	inj.fired++
	switch v.kind {
	case KindReset:
		inj.stats.Resets++
		// The write is refused: no bytes advance.
	case KindPartialWrite:
		inj.stats.PartialWrites++
		inj.bytes += v.cut
	case KindCorrupt:
		inj.stats.Corruptions++
		inj.bytes += n
	case KindReadReset:
		inj.stats.ReadResets++
		inj.bytes += n
	case KindDelay:
		inj.stats.Delays++
		inj.delay += inj.plan.DelayCycles
		inj.bytes += n
	}
	inj.schedule()
	return v
}

// Stats returns the injected-fault counters.
func (inj *Injector) Stats() Stats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}

// TakeDelayCycles drains the accumulated injected latency; the migration
// engine charges it to the simulated clock.
func (inj *Injector) TakeDelayCycles() uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	d := inj.delay
	inj.delay = 0
	return d
}

// Wrap returns conn with this injector's fault schedule applied.
func (inj *Injector) Wrap(conn io.ReadWriteCloser) io.ReadWriteCloser {
	return &Conn{inner: conn, inj: inj}
}

// Conn is a fault-injecting connection wrapper. Like the transports it
// wraps, it supports one concurrent reader and one concurrent writer.
type Conn struct {
	inner io.ReadWriteCloser
	inj   *Injector

	mu        sync.Mutex
	broken    error
	readReset error
}

// injectedErr builds the error for one fired fault.
func injectedErr(k Kind, at uint64) error {
	return fmt.Errorf("%w: %v at byte offset %d", ErrInjected, k, at)
}

// fail marks the conn broken and closes the inner conn so the peer's
// blocked reads and writes unwedge.
func (c *Conn) fail(err error) error {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	c.mu.Unlock()
	c.inner.Close()
	return err
}

// Write passes p through the fault schedule: it may be delivered intact,
// delivered with one bit flipped, truncated mid-buffer, or refused with a
// connection reset.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		return 0, err
	}
	c.mu.Unlock()

	v := c.inj.observe(uint64(len(p)))
	if !v.due {
		return c.inner.Write(p)
	}
	switch v.kind {
	case KindReset:
		return 0, c.fail(injectedErr(v.kind, v.at))
	case KindPartialWrite:
		n, _ := c.inner.Write(p[:v.cut])
		return n, c.fail(injectedErr(v.kind, v.at))
	case KindCorrupt:
		q := make([]byte, len(p))
		copy(q, p)
		q[v.cut] ^= 1 << v.bit
		return c.inner.Write(q)
	case KindReadReset:
		// Deliver this write intact; the reset fires on the next Read —
		// the "ack lost after the peer applied the data" failure mode.
		c.mu.Lock()
		if c.readReset == nil {
			c.readReset = injectedErr(v.kind, v.at)
		}
		c.mu.Unlock()
		return c.inner.Write(p)
	default: // KindDelay: latency accumulated in observe, data intact.
		return c.inner.Write(p)
	}
}

// Read passes through unless a read-reset fault is pending or the conn is
// already broken.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		return 0, err
	}
	if c.readReset != nil {
		err := c.readReset
		c.readReset = nil
		c.mu.Unlock()
		return 0, c.fail(err)
	}
	c.mu.Unlock()
	return c.inner.Read(p)
}

// Close closes the inner conn; later operations fail.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = errors.New("faultnet: conn closed")
	}
	c.mu.Unlock()
	return c.inner.Close()
}
