// Package tlb models the translation lookaside buffer of the simulated CPU.
//
// The TLB caches virtual-page → physical-page translations at 4 KiB
// granularity (superpage walks still save page-table references; their
// translations are inserted per 4 KiB page, as in most hardware fill paths).
// Entries are tagged with an address-space identifier so a world switch can
// either flush everything (cheap hardware, expensive misses) or keep entries
// alive across switches (the ASID ablation in EXPERIMENTS.md).
package tlb

import "govisor/internal/isa"

// Perm bits cached with each translation.
const (
	PermR uint8 = 1 << 0
	PermW uint8 = 1 << 1
	PermX uint8 = 1 << 2
	PermU uint8 = 1 << 3 // accessible from user mode
)

// PermsFromPTE converts architectural PTE bits to cached perm bits.
func PermsFromPTE(pte uint64) uint8 {
	var p uint8
	if pte&isa.PTERead != 0 {
		p |= PermR
	}
	if pte&isa.PTEWrite != 0 {
		p |= PermW
	}
	if pte&isa.PTEExec != 0 {
		p |= PermX
	}
	if pte&isa.PTEUser != 0 {
		p |= PermU
	}
	return p
}

// Entry is one cached translation.
type Entry struct {
	valid  bool
	global bool
	asid   uint16
	vpn    uint64
	stamp  uint64 // LRU timestamp

	PPN   uint64 // physical page number the VPN maps to
	Perms uint8
}

// Stats counts TLB behaviour for the experiments.
type Stats struct {
	Hits         uint64
	Misses       uint64
	Flushes      uint64 // full or ASID flush operations
	PageFlushes  uint64
	Evictions    uint64
	GlobalShoots uint64 // entries killed by flushes
}

// TLB is a set-associative translation cache.
type TLB struct {
	sets  [][]Entry
	nsets uint64
	clock uint64
	gen   uint64 // structural generation: bumped by inserts and flushes
	Stats Stats
}

// Default geometry: 64 sets × 4 ways = 256 entries ≈ a mid-2010s L2 TLB
// reach of 1 MiB with 4 KiB pages.
const (
	DefaultSets = 64
	DefaultWays = 4
)

// New creates a TLB with the given geometry; sets must be a power of two.
func New(sets, ways int) *TLB {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		panic("tlb: geometry must be positive power-of-two sets")
	}
	t := &TLB{sets: make([][]Entry, sets), nsets: uint64(sets)}
	for i := range t.sets {
		t.sets[i] = make([]Entry, ways)
	}
	return t
}

// NewDefault creates a TLB with the default geometry.
func NewDefault() *TLB { return New(DefaultSets, DefaultWays) }

// Entries returns the total capacity.
func (t *TLB) Entries() int { return int(t.nsets) * len(t.sets[0]) }

func (t *TLB) set(vpn uint64) []Entry { return t.sets[vpn&(t.nsets-1)] }

// Lookup searches for a translation of va in address space asid.
func (t *TLB) Lookup(asid uint16, va uint64) (Entry, bool) {
	if e, ok := t.LookupRef(asid, va); ok {
		return *e, true
	}
	return Entry{}, false
}

// LookupRef is Lookup returning a pointer to the live entry, for callers
// that memoize the hit and replay it with Touch while Gen is unchanged. The
// pointer stays valid for the TLB's lifetime (sets are never reallocated),
// but the entry it addresses may be overwritten by later inserts — which is
// exactly what a Gen change signals.
func (t *TLB) LookupRef(asid uint16, va uint64) (*Entry, bool) {
	vpn := va >> isa.PageShift
	set := t.set(vpn)
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn && (e.global || e.asid == asid) {
			t.clock++
			e.stamp = t.clock
			t.Stats.Hits++
			return e, true
		}
	}
	t.Stats.Misses++
	return nil, false
}

// Gen returns the structural generation, which changes whenever set contents
// change (insert or flush). While it is stable, a repeated Lookup of the same
// (asid, va) would match the same entry with the same result, so the scan can
// be replayed with Touch instead.
func (t *TLB) Gen() uint64 { return t.gen }

// Touch replays the bookkeeping of a Lookup hit on e — LRU stamp refresh and
// the hit count — without the set scan. Callers must have proven via Gen that
// no insert or flush happened since e was returned by LookupRef.
func (t *TLB) Touch(e *Entry) {
	t.clock++
	e.stamp = t.clock
	t.Stats.Hits++
}

// TouchN folds n consecutive Touch calls on the same entry into one step:
// the clock advances by n, the entry's stamp lands at the final clock value
// and the hit count grows by n — bit-identical to the n individual calls.
// Exact only when the caller proves nothing else touches the TLB between
// the folded hits (no other lookups, inserts or flushes interleave).
func (t *TLB) TouchN(e *Entry, n uint64) {
	t.clock += n
	e.stamp = t.clock
	t.Stats.Hits += n
}

// Insert caches a translation, evicting the LRU way if the set is full.
func (t *TLB) Insert(asid uint16, va, ppn uint64, perms uint8, global bool) {
	vpn := va >> isa.PageShift
	set := t.set(vpn)
	victim := 0
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn && (e.global || e.asid == asid) {
			victim = i // refresh existing entry in place
			break
		}
		if !e.valid {
			victim = i
			break
		}
		if e.stamp < set[victim].stamp {
			victim = i
		}
	}
	if set[victim].valid && set[victim].vpn != vpn {
		t.Stats.Evictions++
	}
	t.gen++
	t.clock++
	set[victim] = Entry{
		valid: true, global: global, asid: asid, vpn: vpn,
		stamp: t.clock, PPN: ppn, Perms: perms,
	}
}

// FlushAll invalidates every entry (world switch without ASIDs, or
// sfence.vma with zero operands when ASIDs are disabled).
func (t *TLB) FlushAll() {
	t.gen++
	t.Stats.Flushes++
	for _, set := range t.sets {
		for i := range set {
			if set[i].valid {
				set[i].valid = false
				t.Stats.GlobalShoots++
			}
		}
	}
}

// FlushASID invalidates all non-global entries of one address space.
func (t *TLB) FlushASID(asid uint16) {
	t.gen++
	t.Stats.Flushes++
	for _, set := range t.sets {
		for i := range set {
			if set[i].valid && !set[i].global && set[i].asid == asid {
				set[i].valid = false
				t.Stats.GlobalShoots++
			}
		}
	}
}

// FlushPage invalidates translations of one virtual page in one address
// space (global entries for the page are also dropped — conservative, as the
// architecture requires).
func (t *TLB) FlushPage(asid uint16, va uint64) {
	t.gen++
	t.Stats.PageFlushes++
	vpn := va >> isa.PageShift
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn && (set[i].global || set[i].asid == asid) {
			set[i].valid = false
		}
	}
}

// FlushPageAllASIDs invalidates every translation of one virtual page
// regardless of address space (shadow-entry invalidation, which must kill
// cached translations for roots that are not currently active).
func (t *TLB) FlushPageAllASIDs(va uint64) {
	t.gen++
	t.Stats.PageFlushes++
	vpn := va >> isa.PageShift
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].valid = false
		}
	}
}

// HitRate returns hits / (hits + misses), or 0 when idle.
func (t *TLB) HitRate() float64 {
	total := t.Stats.Hits + t.Stats.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Stats.Hits) / float64(total)
}

// ResetStats zeroes the counters (benchmark warmup boundaries).
func (t *TLB) ResetStats() { t.Stats = Stats{} }
