package tlb

import (
	"testing"
	"testing/quick"

	"govisor/internal/isa"
)

func TestLookupMissThenHit(t *testing.T) {
	tl := NewDefault()
	if _, ok := tl.Lookup(1, 0x1000); ok {
		t.Fatal("empty TLB should miss")
	}
	tl.Insert(1, 0x1000, 55, PermR|PermW, false)
	e, ok := tl.Lookup(1, 0x1FFF) // same page
	if !ok || e.PPN != 55 || e.Perms != PermR|PermW {
		t.Fatalf("hit = %+v, %v", e, ok)
	}
	if tl.Stats.Hits != 1 || tl.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", tl.Stats)
	}
}

func TestASIDIsolation(t *testing.T) {
	tl := NewDefault()
	tl.Insert(1, 0x2000, 7, PermR, false)
	if _, ok := tl.Lookup(2, 0x2000); ok {
		t.Fatal("asid 2 should not see asid 1's entry")
	}
	if _, ok := tl.Lookup(1, 0x2000); !ok {
		t.Fatal("asid 1 should hit")
	}
}

func TestGlobalEntriesMatchAnyASID(t *testing.T) {
	tl := NewDefault()
	tl.Insert(1, 0x3000, 9, PermR|PermX, true)
	if e, ok := tl.Lookup(42, 0x3000); !ok || e.PPN != 9 {
		t.Fatal("global entry should match any asid")
	}
	tl.FlushASID(42)
	if _, ok := tl.Lookup(1, 0x3000); !ok {
		t.Fatal("FlushASID must keep global entries")
	}
	tl.FlushAll()
	if _, ok := tl.Lookup(1, 0x3000); ok {
		t.Fatal("FlushAll must drop global entries")
	}
}

func TestFlushPage(t *testing.T) {
	tl := NewDefault()
	tl.Insert(1, 0x4000, 1, PermR, false)
	tl.Insert(1, 0x5000, 2, PermR, false)
	tl.FlushPage(1, 0x4000)
	if _, ok := tl.Lookup(1, 0x4000); ok {
		t.Fatal("flushed page should miss")
	}
	if _, ok := tl.Lookup(1, 0x5000); !ok {
		t.Fatal("other page should survive")
	}
}

func TestLRUEviction(t *testing.T) {
	tl := New(1, 2) // one set, two ways
	tl.Insert(1, 0x1000, 1, PermR, false)
	tl.Insert(1, 0x2000, 2, PermR, false)
	tl.Lookup(1, 0x1000) // touch page 1 so page 2 is LRU
	tl.Insert(1, 0x3000, 3, PermR, false)
	if _, ok := tl.Lookup(1, 0x2000); ok {
		t.Fatal("LRU entry (0x2000) should have been evicted")
	}
	if _, ok := tl.Lookup(1, 0x1000); !ok {
		t.Fatal("recently used entry should survive")
	}
	if tl.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d", tl.Stats.Evictions)
	}
}

func TestInsertRefreshesInPlace(t *testing.T) {
	tl := New(1, 2)
	tl.Insert(1, 0x1000, 1, PermR, false)
	tl.Insert(1, 0x1000, 99, PermR|PermW, false) // same page, new frame
	e, ok := tl.Lookup(1, 0x1000)
	if !ok || e.PPN != 99 {
		t.Fatalf("refresh: %+v", e)
	}
	// The other way must still be free: inserting another page evicts nothing.
	tl.Insert(1, 0x2000, 2, PermR, false)
	if tl.Stats.Evictions != 0 {
		t.Fatalf("evictions = %d", tl.Stats.Evictions)
	}
}

func TestPermsFromPTE(t *testing.T) {
	p := PermsFromPTE(isa.PTERead | isa.PTEWrite | isa.PTEExec | isa.PTEUser)
	if p != PermR|PermW|PermX|PermU {
		t.Fatalf("perms = %b", p)
	}
	if PermsFromPTE(isa.PTEValid) != 0 {
		t.Fatal("valid-only PTE should carry no perms")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two sets")
		}
	}()
	New(3, 2)
}

func TestHitRate(t *testing.T) {
	tl := NewDefault()
	if tl.HitRate() != 0 {
		t.Fatal("idle hit rate should be 0")
	}
	tl.Insert(1, 0, 0, PermR, false)
	tl.Lookup(1, 0)
	tl.Lookup(1, 0x10000000)
	if r := tl.HitRate(); r != 0.5 {
		t.Fatalf("hit rate = %v", r)
	}
	tl.ResetStats()
	if tl.Stats.Hits != 0 {
		t.Fatal("ResetStats")
	}
}

// Property: after inserting a set of (asid, page) translations that all land
// in distinct sets, every one can be looked up.
func TestInsertLookupProperty(t *testing.T) {
	f := func(pages []uint16) bool {
		tl := New(256, 4)
		seen := map[uint64]uint64{}
		for i, p := range pages {
			vpn := uint64(p) // ≤ 65535 distinct pages over 256 sets × 4 ways
			if len(seen) >= 4 {
				break
			}
			va := vpn << isa.PageShift
			tl.Insert(7, va, uint64(i), PermR, false)
			seen[va] = uint64(i)
		}
		for va := range seen {
			if _, ok := tl.Lookup(7, va); !ok {
				// Collisions within a set can evict; accept only if ≥5 pages
				// mapped to one set, impossible with ≤4 inserts.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
