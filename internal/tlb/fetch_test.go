package tlb

import (
	"testing"

	"govisor/internal/isa"
)

// TestTouchMatchesLookup: replaying a hit with Touch must leave the TLB in
// exactly the state a full Lookup would — same stats, same LRU outcome.
func TestTouchMatchesLookup(t *testing.T) {
	a := New(4, 2)
	b := New(4, 2)
	va := uint64(5 << isa.PageShift)
	a.Insert(1, va, 99, PermR|PermX, false)
	b.Insert(1, va, 99, PermR|PermX, false)

	// a: two plain lookups. b: one LookupRef then one Touch replay.
	a.Lookup(1, va)
	a.Lookup(1, va)
	e, ok := b.LookupRef(1, va)
	if !ok {
		t.Fatal("miss on inserted entry")
	}
	b.Touch(e)

	if a.Stats != b.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.clock != b.clock {
		t.Fatalf("clock diverged: %d vs %d", a.clock, b.clock)
	}

	// After identical further pressure, both must evict the same way.
	for i := uint64(0); i < 4; i++ {
		conflict := (5 + (i+1)*4) << isa.PageShift
		a.Insert(1, conflict, 100+i, PermR, false)
		b.Insert(1, conflict, 100+i, PermR, false)
	}
	ea, oka := a.Lookup(1, va)
	eb, okb := b.Lookup(1, va)
	if oka != okb || ea.PPN != eb.PPN {
		t.Fatalf("post-pressure state diverged: (%v %v) vs (%v %v)", ea, oka, eb, okb)
	}
}

// TestGenTracksStructuralChanges: Gen must change on every insert and flush
// (the events that can change what a scan returns) and stay put on lookups.
func TestGenTracksStructuralChanges(t *testing.T) {
	tl := NewDefault()
	g0 := tl.Gen()
	tl.Insert(1, 0x1000, 2, PermR|PermX, false)
	g1 := tl.Gen()
	if g1 == g0 {
		t.Fatal("Insert did not change Gen")
	}
	tl.Lookup(1, 0x1000)
	if tl.Gen() != g1 {
		t.Fatal("Lookup changed Gen")
	}
	tl.FlushPage(1, 0x1000)
	g2 := tl.Gen()
	if g2 == g1 {
		t.Fatal("FlushPage did not change Gen")
	}
	tl.FlushASID(1)
	g3 := tl.Gen()
	if g3 == g2 {
		t.Fatal("FlushASID did not change Gen")
	}
	tl.FlushPageAllASIDs(0x1000)
	g4 := tl.Gen()
	if g4 == g3 {
		t.Fatal("FlushPageAllASIDs did not change Gen")
	}
	tl.FlushAll()
	if tl.Gen() == g4 {
		t.Fatal("FlushAll did not change Gen")
	}
}
