package isa

import "fmt"

// Architectural register numbers with their ABI names. x0 reads as zero and
// ignores writes.
const (
	RegZero = 0 // hardwired zero
	RegRA   = 1 // return address
	RegSP   = 2 // stack pointer
	RegGP   = 3 // global pointer
	RegTP   = 4 // thread pointer
	RegT0   = 5 // temporaries
	RegT1   = 6
	RegT2   = 7
	RegS0   = 8 // saved / frame pointer
	RegS1   = 9
	RegA0   = 10 // arguments / return values
	RegA1   = 11
	RegA2   = 12
	RegA3   = 13
	RegA4   = 14
	RegA5   = 15
	RegA6   = 16
	RegA7   = 17 // syscall / hypercall number
	RegS2   = 18
	RegS3   = 19
	RegS4   = 20
	RegS5   = 21
	RegS6   = 22
	RegS7   = 23
	RegS8   = 24
	RegS9   = 25
	RegS10  = 26
	RegS11  = 27
	RegT3   = 28
	RegT4   = 29
	RegT5   = 30
	RegT6   = 31
)

var regNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// RegName returns the ABI name of register r ("zero", "ra", "a0", ...).
func RegName(r uint8) string {
	if r < 32 {
		return regNames[r]
	}
	return fmt.Sprintf("x%d", r)
}

// RegByName resolves an ABI name ("a0") or numeric name ("x10") to a
// register number.
func RegByName(name string) (uint8, bool) {
	for i, n := range regNames {
		if n == name {
			return uint8(i), true
		}
	}
	if len(name) >= 2 && name[0] == 'x' {
		var v int
		if _, err := fmt.Sscanf(name, "x%d", &v); err == nil && v >= 0 && v < 32 {
			return uint8(v), true
		}
	}
	if name == "fp" {
		return RegS0, true
	}
	return 0, false
}
