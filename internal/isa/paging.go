package isa

// Paging geometry: 4 KiB base pages, three translation levels of 512 entries
// each (sv39-like), giving a 39-bit virtual address space. A leaf at level 1
// maps a 2 MiB superpage; a leaf at level 2 maps a 1 GiB superpage.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1

	PTLevels       = 3
	PTEntriesShift = 9
	PTEntries      = 1 << PTEntriesShift // 512 PTEs per table page
	VABits         = PageShift + PTLevels*PTEntriesShift

	MegaPageSize = 1 << (PageShift + PTEntriesShift)   // 2 MiB
	GigaPageSize = 1 << (PageShift + 2*PTEntriesShift) // 1 GiB
)

// Page-table entry bits. A PTE is a leaf iff any of R/W/X is set; otherwise a
// valid PTE points to the next-level table.
const (
	PTEValid  uint64 = 1 << 0
	PTERead   uint64 = 1 << 1
	PTEWrite  uint64 = 1 << 2
	PTEExec   uint64 = 1 << 3
	PTEUser   uint64 = 1 << 4
	PTEGlobal uint64 = 1 << 5
	PTEAcc    uint64 = 1 << 6
	PTEDirty  uint64 = 1 << 7

	ptePPNShift = 10
	ptePPNMask  = (uint64(1)<<44 - 1) << ptePPNShift
)

// PTEPerms masks the permission/attribute bits of a PTE.
const PTEPerms = PTEValid | PTERead | PTEWrite | PTEExec | PTEUser | PTEGlobal | PTEAcc | PTEDirty

// PTEPPN extracts the physical page number a PTE points to.
func PTEPPN(pte uint64) uint64 { return (pte & ptePPNMask) >> ptePPNShift }

// MakePTE assembles a PTE from a physical page number and flag bits.
func MakePTE(ppn uint64, flags uint64) uint64 {
	return ppn<<ptePPNShift&ptePPNMask | flags&PTEPerms
}

// PTELeaf reports whether a valid PTE is a leaf mapping.
func PTELeaf(pte uint64) bool { return pte&(PTERead|PTEWrite|PTEExec) != 0 }

// VPN extracts the level-th virtual page number component (level 0 is the
// least significant, indexing the last-level table).
func VPN(va uint64, level int) uint64 {
	return va >> (PageShift + uint(level)*PTEntriesShift) & (PTEntries - 1)
}

// PageAlign rounds addr down to a page boundary.
func PageAlign(addr uint64) uint64 { return addr &^ uint64(PageMask) }

// PageRoundUp rounds n up to a whole number of pages.
func PageRoundUp(n uint64) uint64 { return (n + PageMask) &^ uint64(PageMask) }

// PFN returns the page frame number containing addr.
func PFN(addr uint64) uint64 { return addr >> PageShift }

// Access describes the kind of memory access being translated.
type Access uint8

// Access kinds.
const (
	AccRead Access = iota
	AccWrite
	AccExec
)

// String returns "read", "write" or "exec".
func (a Access) String() string {
	switch a {
	case AccRead:
		return "read"
	case AccWrite:
		return "write"
	case AccExec:
		return "exec"
	}
	return "access?"
}

// PageFaultCause maps an access kind to the architectural page-fault cause.
func PageFaultCause(a Access) uint64 {
	switch a {
	case AccWrite:
		return CauseStorePageFault
	case AccExec:
		return CauseInstrPageFault
	default:
		return CauseLoadPageFault
	}
}

// AccessFaultCause maps an access kind to the architectural access-fault
// cause (used for physical-address violations, e.g. beyond guest RAM).
func AccessFaultCause(a Access) uint64 {
	switch a {
	case AccWrite:
		return CauseStoreAccess
	case AccExec:
		return CauseInstrAccess
	default:
		return CauseLoadAccess
	}
}
