package isa

import "fmt"

// Control and status register addresses (12-bit space, RISC-V numbering where
// an equivalent exists). All S-mode CSRs trap with CauseIllegal when accessed
// from U-mode; the read-only counters and VENV are accessible from U.
const (
	CSRSstatus  uint16 = 0x100
	CSRSie      uint16 = 0x104
	CSRStvec    uint16 = 0x105
	CSRSscratch uint16 = 0x140
	CSRSepc     uint16 = 0x141
	CSRScause   uint16 = 0x142
	CSRStval    uint16 = 0x143
	CSRSip      uint16 = 0x144
	CSRStimecmp uint16 = 0x14D
	CSRSatp     uint16 = 0x180

	CSRCycle   uint16 = 0xC00 // read-only cycle counter
	CSRTime    uint16 = 0xC01 // read-only wall time (== cycles at 1 GHz)
	CSRInstret uint16 = 0xC02 // read-only retired-instruction counter

	// CSRVenv is a read-only environment-discovery register: the guest probes
	// it at boot to learn which virtualization style it is running under.
	// Values are the VEnv* constants below.
	CSRVenv uint16 = 0xFC0
)

// VEnv values reported by CSRVenv.
const (
	VEnvNative uint64 = 0 // bare hardware (the "native" baseline)
	VEnvTrap   uint64 = 1 // trap-and-emulate VMM with shadow paging
	VEnvPara   uint64 = 2 // paravirtual VMM (hypercall ABI, direct paging)
	VEnvHW     uint64 = 3 // hardware-assisted VMM (nested paging)
)

// sstatus bits.
const (
	StatusSIE  uint64 = 1 << 1 // supervisor interrupts enabled
	StatusSPIE uint64 = 1 << 5 // previous SIE (stacked on trap entry)
	StatusSPP  uint64 = 1 << 8 // previous privilege (0 = U, 1 = S)
)

// Interrupt numbers (bit positions in sie/sip; also scause values with
// CauseInterrupt set).
const (
	IntSoft  uint64 = 1
	IntTimer uint64 = 5
	IntExt   uint64 = 9
)

// Trap cause values written to scause.
const (
	CauseInstrMisaligned uint64 = 0
	CauseInstrAccess     uint64 = 1
	CauseIllegal         uint64 = 2
	CauseBreakpoint      uint64 = 3
	CauseLoadMisaligned  uint64 = 4
	CauseLoadAccess      uint64 = 5
	CauseStoreMisaligned uint64 = 6
	CauseStoreAccess     uint64 = 7
	CauseEcallU          uint64 = 8
	CauseEcallS          uint64 = 9
	CauseInstrPageFault  uint64 = 12
	CauseLoadPageFault   uint64 = 13
	CauseStorePageFault  uint64 = 15

	// CauseInterrupt is OR-ed with an Int* number for asynchronous traps.
	CauseInterrupt uint64 = 1 << 63
)

// CauseName renders an scause value for traces and error messages.
func CauseName(c uint64) string {
	if c&CauseInterrupt != 0 {
		switch c &^ CauseInterrupt {
		case IntSoft:
			return "soft-interrupt"
		case IntTimer:
			return "timer-interrupt"
		case IntExt:
			return "ext-interrupt"
		}
		return fmt.Sprintf("interrupt(%d)", c&^CauseInterrupt)
	}
	switch c {
	case CauseInstrMisaligned:
		return "instr-misaligned"
	case CauseInstrAccess:
		return "instr-access"
	case CauseIllegal:
		return "illegal-instruction"
	case CauseBreakpoint:
		return "breakpoint"
	case CauseLoadMisaligned:
		return "load-misaligned"
	case CauseLoadAccess:
		return "load-access"
	case CauseStoreMisaligned:
		return "store-misaligned"
	case CauseStoreAccess:
		return "store-access"
	case CauseEcallU:
		return "ecall-from-U"
	case CauseEcallS:
		return "ecall-from-S"
	case CauseInstrPageFault:
		return "instr-page-fault"
	case CauseLoadPageFault:
		return "load-page-fault"
	case CauseStorePageFault:
		return "store-page-fault"
	}
	return fmt.Sprintf("cause(%d)", c)
}

// SATP field layout: |mode:4|asid:16|ppn:44|.
const (
	SatpModeBare  uint64 = 0 // translation off: VA == PA
	SatpModePaged uint64 = 8 // 3-level page tables (sv39-like)

	satpModeShift = 60
	satpASIDShift = 44
	satpPPNMask   = (1 << 44) - 1
)

// SatpMode extracts the translation mode field.
func SatpMode(satp uint64) uint64 { return satp >> satpModeShift }

// SatpASID extracts the address-space identifier.
func SatpASID(satp uint64) uint16 { return uint16(satp >> satpASIDShift) }

// SatpPPN extracts the root page-table physical page number.
func SatpPPN(satp uint64) uint64 { return satp & satpPPNMask }

// MakeSatp assembles a SATP value.
func MakeSatp(mode uint64, asid uint16, ppn uint64) uint64 {
	return mode<<satpModeShift | uint64(asid)<<satpASIDShift | ppn&satpPPNMask
}

// CSRName returns a symbolic name for a CSR address.
func CSRName(a uint16) string {
	switch a {
	case CSRSstatus:
		return "sstatus"
	case CSRSie:
		return "sie"
	case CSRStvec:
		return "stvec"
	case CSRSscratch:
		return "sscratch"
	case CSRSepc:
		return "sepc"
	case CSRScause:
		return "scause"
	case CSRStval:
		return "stval"
	case CSRSip:
		return "sip"
	case CSRStimecmp:
		return "stimecmp"
	case CSRSatp:
		return "satp"
	case CSRCycle:
		return "cycle"
	case CSRTime:
		return "time"
	case CSRInstret:
		return "instret"
	case CSRVenv:
		return "venv"
	}
	return fmt.Sprintf("csr(0x%x)", a)
}

// CSRByName resolves a symbolic CSR name; used by the assembler.
func CSRByName(name string) (uint16, bool) {
	switch name {
	case "sstatus":
		return CSRSstatus, true
	case "sie":
		return CSRSie, true
	case "stvec":
		return CSRStvec, true
	case "sscratch":
		return CSRSscratch, true
	case "sepc":
		return CSRSepc, true
	case "scause":
		return CSRScause, true
	case "stval":
		return CSRStval, true
	case "sip":
		return CSRSip, true
	case "stimecmp":
		return CSRStimecmp, true
	case "satp":
		return CSRSatp, true
	case "cycle":
		return CSRCycle, true
	case "time":
		return CSRTime, true
	case "instret":
		return CSRInstret, true
	case "venv":
		return CSRVenv, true
	}
	return 0, false
}

// IsUserCSR reports whether the CSR may be read from U-mode.
func IsUserCSR(a uint16) bool {
	switch a {
	case CSRCycle, CSRTime, CSRInstret, CSRVenv:
		return true
	}
	return false
}

// IsReadOnlyCSR reports whether writes to the CSR are architecturally
// prohibited (illegal-instruction trap).
func IsReadOnlyCSR(a uint16) bool {
	switch a {
	case CSRCycle, CSRTime, CSRInstret, CSRVenv:
		return true
	}
	return false
}

// KnownCSR reports whether a names an implemented CSR.
func KnownCSR(a uint16) bool {
	switch a {
	case CSRSstatus, CSRSie, CSRStvec, CSRSscratch, CSRSepc, CSRScause,
		CSRStval, CSRSip, CSRStimecmp, CSRSatp,
		CSRCycle, CSRTime, CSRInstret, CSRVenv:
		return true
	}
	return false
}
