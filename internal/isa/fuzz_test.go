package isa_test

import (
	"testing"

	"govisor/internal/isa"
	"govisor/internal/vcpu"
)

// FuzzDecode: Decode must be total — any 32-bit word either decodes to a
// valid instruction or to one failing Op.Valid(), never panics — and for
// valid instructions Encode∘Decode must be the identity on the decoded form
// (re-encoding then re-decoding reproduces the same Inst), so the assembler,
// the interpreter and the decoded-instruction cache all agree on every word.
// Every successfully decoded instruction must additionally resolve a non-nil
// executor in the threaded-dispatch table (the external test package exists
// to reach vcpu for this), so table/switch completeness can never drift as
// opcodes are added.
func FuzzDecode(f *testing.F) {
	// Seed with one instruction of every format, plus boundary patterns.
	f.Add(isa.Encode(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3}))
	f.Add(isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 6, Imm: -42}))
	f.Add(isa.Encode(isa.Inst{Op: isa.OpBEQ, Rs1: 7, Rs2: 8, Imm: 16}))
	f.Add(isa.Encode(isa.Inst{Op: isa.OpJAL, Rd: 1, Imm: -2048}))
	f.Add(isa.Encode(isa.Inst{Op: isa.OpECALL}))
	f.Add(isa.Encode(isa.Inst{Op: isa.OpCSRRW, Rd: 9, Rs1: 10, Imm: int32(isa.CSRSatp)}))
	f.Add(isa.Encode(isa.Inst{Op: isa.OpHALT, Imm: 7}))
	f.Add(uint32(0))
	f.Add(^uint32(0))
	f.Add(uint32(0xDEADBEEF))
	f.Fuzz(func(t *testing.T, w uint32) {
		in := isa.Decode(w)
		if !in.Op.Valid() {
			if vcpu.ExecutorResolved(in.Op) {
				t.Fatalf("word %#x: invalid op %v resolves an executor", w, in.Op)
			}
			return
		}
		// Disasm must be total on valid instructions.
		if isa.Disasm(in) == "" {
			t.Fatalf("word %#x: empty disassembly for %+v", w, in)
		}
		// Threaded dispatch must be total on valid instructions too: decode-
		// time executor resolution may never come up empty for a word the
		// interpreter would execute.
		if !vcpu.ExecutorResolved(in.Op) {
			t.Fatalf("word %#x: %s decodes but resolves no threaded-dispatch executor", w, isa.Disasm(in))
		}
		re := isa.Encode(in)
		back := isa.Decode(re)
		if back != in {
			t.Fatalf("word %#x: decode %+v re-encodes to %#x which decodes to %+v", w, in, re, back)
		}
	})
}
