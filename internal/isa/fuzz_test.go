package isa

import "testing"

// FuzzDecode: Decode must be total — any 32-bit word either decodes to a
// valid instruction or to one failing Op.Valid(), never panics — and for
// valid instructions Encode∘Decode must be the identity on the decoded form
// (re-encoding then re-decoding reproduces the same Inst), so the assembler,
// the interpreter and the decoded-instruction cache all agree on every word.
func FuzzDecode(f *testing.F) {
	// Seed with one instruction of every format, plus boundary patterns.
	f.Add(Encode(Inst{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3}))
	f.Add(Encode(Inst{Op: OpADDI, Rd: 5, Rs1: 6, Imm: -42}))
	f.Add(Encode(Inst{Op: OpBEQ, Rs1: 7, Rs2: 8, Imm: 16}))
	f.Add(Encode(Inst{Op: OpJAL, Rd: 1, Imm: -2048}))
	f.Add(Encode(Inst{Op: OpECALL}))
	f.Add(Encode(Inst{Op: OpCSRRW, Rd: 9, Rs1: 10, Imm: int32(CSRSatp)}))
	f.Add(Encode(Inst{Op: OpHALT, Imm: 7}))
	f.Add(uint32(0))
	f.Add(^uint32(0))
	f.Add(uint32(0xDEADBEEF))
	f.Fuzz(func(t *testing.T, w uint32) {
		in := Decode(w)
		if !in.Op.Valid() {
			return
		}
		// Disasm must be total on valid instructions.
		if Disasm(in) == "" {
			t.Fatalf("word %#x: empty disassembly for %+v", w, in)
		}
		re := Encode(in)
		back := Decode(re)
		if back != in {
			t.Fatalf("word %#x: decode %+v re-encodes to %#x which decodes to %+v", w, in, re, back)
		}
	})
}
