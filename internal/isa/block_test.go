package isa

import "testing"

// TestBlockClassificationCoversOpcodeSpace pins the superblock classification
// of every defined opcode: straight-line ops are exactly the ALU, immediate,
// load/store and FENCE instructions; everything that can redirect control,
// change privilege/CSR/translation state or suspend to the VMM terminates a
// block. Adding an opcode without classifying it here fails the test.
func TestBlockClassificationCoversOpcodeSpace(t *testing.T) {
	straight := map[Op]bool{
		OpADD: true, OpSUB: true, OpAND: true, OpOR: true, OpXOR: true,
		OpSLL: true, OpSRL: true, OpSRA: true, OpSLT: true, OpSLTU: true,
		OpMUL: true, OpMULH: true, OpDIV: true, OpDIVU: true,
		OpREM: true, OpREMU: true,
		OpADDI: true, OpANDI: true, OpORI: true, OpXORI: true,
		OpSLLI: true, OpSRLI: true, OpSRAI: true, OpSLTI: true,
		OpSLTIU: true, OpLUI: true,
		OpLB: true, OpLBU: true, OpLH: true, OpLHU: true,
		OpLW: true, OpLWU: true, OpLD: true,
		OpSB: true, OpSH: true, OpSW: true, OpSD: true,
		OpFENCE: true,
	}
	for op := Op(0); int(op) < NumOps; op++ {
		if got := IsBlockStraight(op); got != straight[op] {
			t.Errorf("IsBlockStraight(%v) = %v, want %v", op, got, straight[op])
		}
	}
	// Invalid encodings beyond the opcode space must terminate blocks too.
	if IsBlockStraight(Op(NumOps)) || IsBlockStraight(OpIllegal) {
		t.Error("invalid opcodes must not be block-straight")
	}
}

func TestMemOpClassification(t *testing.T) {
	loads := []Op{OpLB, OpLBU, OpLH, OpLHU, OpLW, OpLWU, OpLD}
	stores := []Op{OpSB, OpSH, OpSW, OpSD}
	for _, op := range loads {
		if !IsLoad(op) || IsStore(op) || !IsMemOp(op) {
			t.Errorf("%v misclassified as load=%v store=%v mem=%v", op, IsLoad(op), IsStore(op), IsMemOp(op))
		}
	}
	for _, op := range stores {
		if IsLoad(op) || !IsStore(op) || !IsMemOp(op) {
			t.Errorf("%v misclassified as load=%v store=%v mem=%v", op, IsLoad(op), IsStore(op), IsMemOp(op))
		}
	}
	for op := Op(0); int(op) < NumOps; op++ {
		if IsMemOp(op) != (IsLoad(op) || IsStore(op)) {
			t.Errorf("IsMemOp(%v) inconsistent with IsLoad/IsStore", op)
		}
	}
}
