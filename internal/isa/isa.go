// Package isa defines GV64, the 64-bit RISC guest instruction set executed by
// the govisor simulated machine.
//
// GV64 is deliberately RISC-V-flavoured (two privilege levels, CSRs, sv39-like
// paging) but uses its own fixed 32-bit encoding so the whole toolchain —
// assembler, interpreter, MMU — is self-contained. The ISA carries exactly the
// privileged surface a virtual machine monitor must virtualize: control and
// status registers, address-translation control (SATP, SFENCE.VMA), trap
// entry/return (SRET), and environment calls.
//
// Instruction formats (32-bit words, little-endian in memory):
//
//	R-type:  |op:6|rd:5|rs1:5|rs2:5|pad:11|        register-register ALU
//	I-type:  |op:6|rd:5|rs1:5|imm:16|              immediates, loads, JALR, CSR
//	B-type:  |op:6|rs1:5|rs2:5|imm:16|             conditional branches
//	J-type:  |op:6|rd:5|imm:21|                    JAL (imm is byte offset >> 2)
//
// Branch immediates are signed byte offsets (must be multiples of 4). ADDI,
// SLTI, SLTIU and memory offsets sign-extend their 16-bit immediate; ANDI,
// ORI and XORI zero-extend (MIPS-style), which lets the assembler synthesize
// arbitrary 64-bit constants with shift/or chains.
package isa

import "fmt"

// Op identifies a GV64 opcode (6 bits).
type Op uint8

// Opcode space. The zero value is reserved as an illegal instruction so that
// zeroed memory faults rather than executing.
const (
	OpIllegal Op = iota

	// R-type ALU.
	OpADD
	OpSUB
	OpAND
	OpOR
	OpXOR
	OpSLL
	OpSRL
	OpSRA
	OpSLT
	OpSLTU
	OpMUL
	OpMULH
	OpDIV
	OpDIVU
	OpREM
	OpREMU

	// I-type ALU.
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLLI
	OpSRLI
	OpSRAI
	OpSLTI
	OpSLTIU
	OpLUI

	// Loads.
	OpLB
	OpLBU
	OpLH
	OpLHU
	OpLW
	OpLWU
	OpLD

	// Stores.
	OpSB
	OpSH
	OpSW
	OpSD

	// Branches.
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Jumps.
	OpJAL
	OpJALR

	// System.
	OpECALL
	OpEBREAK
	OpSRET
	OpWFI
	OpFENCE
	OpSFENCE // SFENCE.VMA: rs1 = vaddr (0 ⇒ flush all), rs2 = asid (0 ⇒ all)
	OpCSRRW
	OpCSRRS
	OpCSRRC
	OpHALT // stop the hart; imm16 is a diagnostic code

	opMax
)

// NumOps reports the number of defined opcodes (exported for fuzz/property
// tests that want to enumerate the space).
const NumOps = int(opMax)

var opNames = [...]string{
	OpIllegal: "illegal",
	OpADD:     "add", OpSUB: "sub", OpAND: "and", OpOR: "or", OpXOR: "xor",
	OpSLL: "sll", OpSRL: "srl", OpSRA: "sra", OpSLT: "slt", OpSLTU: "sltu",
	OpMUL: "mul", OpMULH: "mulh", OpDIV: "div", OpDIVU: "divu",
	OpREM: "rem", OpREMU: "remu",
	OpADDI: "addi", OpANDI: "andi", OpORI: "ori", OpXORI: "xori",
	OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai", OpSLTI: "slti",
	OpSLTIU: "sltiu", OpLUI: "lui",
	OpLB: "lb", OpLBU: "lbu", OpLH: "lh", OpLHU: "lhu",
	OpLW: "lw", OpLWU: "lwu", OpLD: "ld",
	OpSB: "sb", OpSH: "sh", OpSW: "sw", OpSD: "sd",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpBLTU: "bltu", OpBGEU: "bgeu",
	OpJAL: "jal", OpJALR: "jalr",
	OpECALL: "ecall", OpEBREAK: "ebreak", OpSRET: "sret", OpWFI: "wfi",
	OpFENCE: "fence", OpSFENCE: "sfence.vma",
	OpCSRRW: "csrrw", OpCSRRS: "csrrs", OpCSRRC: "csrrc",
	OpHALT: "halt",
}

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined, executable opcode.
func (op Op) Valid() bool { return op > OpIllegal && op < opMax }

// Format classifies how an opcode's operand fields are laid out.
type Format uint8

// Instruction formats.
const (
	FmtR   Format = iota // rd, rs1, rs2
	FmtI                 // rd, rs1, imm16
	FmtB                 // rs1, rs2, imm16
	FmtJ                 // rd, imm21 (stored as byte offset >> 2)
	FmtSys               // no register operands (ecall/ebreak/sret/wfi/fence/halt)
)

// FormatOf returns the encoding format used by op.
func FormatOf(op Op) Format {
	switch op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA, OpSLT,
		OpSLTU, OpMUL, OpMULH, OpDIV, OpDIVU, OpREM, OpREMU, OpSFENCE:
		return FmtR
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU,
		OpSB, OpSH, OpSW, OpSD:
		// Stores are B-format: rs1 = base, rs2 = source value, imm = offset.
		return FmtB
	case OpJAL:
		return FmtJ
	case OpECALL, OpEBREAK, OpSRET, OpWFI, OpFENCE, OpHALT:
		return FmtSys
	default:
		return FmtI
	}
}

// SignExtendsImm reports whether op's 16-bit immediate is sign-extended
// (as opposed to zero-extended) when consumed by the interpreter.
func SignExtendsImm(op Op) bool {
	switch op {
	case OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpCSRRW, OpCSRRS, OpCSRRC:
		return false
	}
	return true
}

// Inst is a decoded GV64 instruction.
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32 // sign- or zero-extended per SignExtendsImm; J-type byte offset
}

// Encode packs the instruction into its 32-bit word representation.
// It panics if register numbers exceed 31; immediates are truncated to their
// field width (the assembler range-checks before calling).
func Encode(in Inst) uint32 {
	if in.Rd > 31 || in.Rs1 > 31 || in.Rs2 > 31 {
		panic(fmt.Sprintf("isa: register out of range in %+v", in))
	}
	w := uint32(in.Op) << 26
	switch FormatOf(in.Op) {
	case FmtR:
		w |= uint32(in.Rd)<<21 | uint32(in.Rs1)<<16 | uint32(in.Rs2)<<11
	case FmtI:
		w |= uint32(in.Rd)<<21 | uint32(in.Rs1)<<16 | uint32(uint16(in.Imm))
	case FmtB:
		w |= uint32(in.Rs1)<<21 | uint32(in.Rs2)<<16 | uint32(uint16(in.Imm))
	case FmtJ:
		w |= uint32(in.Rd)<<21 | (uint32(in.Imm>>2) & 0x1FFFFF)
	case FmtSys:
		w |= uint32(uint16(in.Imm))
	}
	return w
}

// Decode unpacks a 32-bit instruction word. Undefined opcodes decode with
// Op = OpIllegal or an out-of-range Op; callers must check Op.Valid().
func Decode(w uint32) Inst {
	op := Op(w >> 26)
	var in Inst
	in.Op = op
	switch FormatOf(op) {
	case FmtR:
		in.Rd = uint8(w >> 21 & 31)
		in.Rs1 = uint8(w >> 16 & 31)
		in.Rs2 = uint8(w >> 11 & 31)
	case FmtI:
		in.Rd = uint8(w >> 21 & 31)
		in.Rs1 = uint8(w >> 16 & 31)
		in.Imm = immExtend(op, uint16(w))
	case FmtB:
		in.Rs1 = uint8(w >> 21 & 31)
		in.Rs2 = uint8(w >> 16 & 31)
		in.Imm = immExtend(op, uint16(w))
	case FmtJ:
		in.Rd = uint8(w >> 21 & 31)
		off := int32(w<<11) >> 11 // sign-extend 21-bit field
		in.Imm = off << 2         // stored in words
	case FmtSys:
		in.Imm = int32(uint16(w))
	}
	return in
}

func immExtend(op Op, raw uint16) int32 {
	if SignExtendsImm(op) {
		return int32(int16(raw))
	}
	return int32(uint32(raw))
}

// Disasm renders the instruction in assembler syntax, for traces and tests.
func Disasm(in Inst) string {
	switch FormatOf(in.Op) {
	case FmtR:
		if in.Op == OpSFENCE {
			return fmt.Sprintf("sfence.vma %s, %s", RegName(in.Rs1), RegName(in.Rs2))
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2))
	case FmtI:
		switch in.Op {
		case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpLWU, OpLD:
			return fmt.Sprintf("%s %s, %d(%s)", in.Op, RegName(in.Rd), in.Imm, RegName(in.Rs1))
		case OpJALR:
			return fmt.Sprintf("jalr %s, %d(%s)", RegName(in.Rd), in.Imm, RegName(in.Rs1))
		case OpLUI:
			return fmt.Sprintf("lui %s, %d", RegName(in.Rd), in.Imm)
		case OpCSRRW, OpCSRRS, OpCSRRC:
			return fmt.Sprintf("%s %s, %s, %s", in.Op, RegName(in.Rd), CSRName(uint16(in.Imm)), RegName(in.Rs1))
		}
		return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rd), RegName(in.Rs1), in.Imm)
	case FmtB:
		switch in.Op {
		case OpSB, OpSH, OpSW, OpSD:
			return fmt.Sprintf("%s %s, %d(%s)", in.Op, RegName(in.Rs2), in.Imm, RegName(in.Rs1))
		}
		return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rs1), RegName(in.Rs2), in.Imm)
	case FmtJ:
		return fmt.Sprintf("jal %s, %d", RegName(in.Rd), in.Imm)
	default:
		if in.Op == OpHALT || in.Op == OpECALL {
			return fmt.Sprintf("%s %d", in.Op, in.Imm)
		}
		return in.Op.String()
	}
}
