package isa

// Threaded-dispatch support. The interpreter's hot loop resolves every
// opcode to an executor function once, at decode/predecode time, and then
// calls the resolved func pointer per retired instruction instead of
// re-inspecting the opcode in a switch. The executor func type is
// interpreter-specific (it closes over the machine state), so the table is
// generic in it; the table *type* lives here, next to the opcode space it
// must stay total over, and the completeness contract — every Valid opcode
// resolves to a non-zero executor — is enforced by FuzzDecode and the
// interpreter's table test through Unresolved.

// ExecTable maps every defined opcode to an executor value of type F. It is
// indexed by Op, sized exactly to the defined opcode space, and meant to be
// built once as a package-level indexed composite literal (mirroring
// opNames) so adding an opcode without an executor is caught by the
// completeness check, not by a nil call at run time.
type ExecTable[F any] [NumOps]F

// For returns the executor resolved for op — the decode-time lookup.
// Invalid and out-of-range opcodes (Decode passes any 6-bit value through)
// resolve to the zero F, never a panic, so resolution can run before the
// Op.Valid check on the fetch path.
func (t *ExecTable[F]) For(op Op) F {
	if !op.Valid() {
		var zero F
		return zero
	}
	return t[op]
}

// Unresolved returns every valid opcode whose table entry is unset. Func
// types are not comparable, so the caller supplies the zero test.
func (t *ExecTable[F]) Unresolved(isZero func(F) bool) []Op {
	var missing []Op
	for op := OpIllegal + 1; op < opMax; op++ {
		if isZero(t[op]) {
			missing = append(missing, op)
		}
	}
	return missing
}
