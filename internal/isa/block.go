package isa

// Superblock classification. The vCPU's superblock engine lowers predecoded
// code pages into straight-line runs; the run boundaries are an ISA property
// (which opcodes can transfer control, change privilege or translation state,
// or suspend to the VMM), so the classification lives here next to the
// opcode definitions it must stay in sync with.

// IsLoad reports whether op is a memory load.
func IsLoad(op Op) bool {
	switch op {
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpLWU, OpLD:
		return true
	}
	return false
}

// IsStore reports whether op is a memory store.
func IsStore(op Op) bool {
	switch op {
	case OpSB, OpSH, OpSW, OpSD:
		return true
	}
	return false
}

// IsMemOp reports whether op accesses data memory (load or store).
func IsMemOp(op Op) bool { return IsLoad(op) || IsStore(op) }

// IsChainSource reports whether op may anchor a block-chain link: pure
// control transfers that always retire with the PC redirected and touch
// nothing but registers (branches, JAL, JALR). System terminators — ECALL,
// EBREAK, SRET, WFI, CSR ops, SFENCE, HALT — are excluded: they can trap,
// exit to the VMM, or change privilege/translation state, so their successor
// fetch context is not worth caching.
func IsChainSource(op Op) bool {
	switch op {
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU, OpJAL, OpJALR:
		return true
	}
	return false
}

// IsBlockStraight reports whether op can appear inside a superblock: on its
// non-trapping path it retires with PC advancing to the next word and cannot
// alter control flow, privilege, CSRs, or translation state, and never
// requires VMM involvement beyond what loads/stores already may (MMIO and
// host faults, which end the block when they happen). Every other opcode —
// branches, jumps, system ops, and invalid encodings — is a block terminator.
func IsBlockStraight(op Op) bool {
	switch op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA, OpSLT,
		OpSLTU, OpMUL, OpMULH, OpDIV, OpDIVU, OpREM, OpREMU,
		OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI,
		OpSLTI, OpSLTIU, OpLUI,
		OpFENCE:
		return true
	}
	return IsMemOp(op)
}
