package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripAllFormats(t *testing.T) {
	cases := []Inst{
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSUB, Rd: 31, Rs1: 31, Rs2: 31},
		{Op: OpADDI, Rd: 10, Rs1: 11, Imm: -32768},
		{Op: OpADDI, Rd: 10, Rs1: 11, Imm: 32767},
		{Op: OpORI, Rd: 5, Rs1: 6, Imm: 0xFFFF}, // zero-extended
		{Op: OpANDI, Rd: 5, Rs1: 6, Imm: 0},
		{Op: OpLD, Rd: 7, Rs1: 2, Imm: -8},
		{Op: OpSD, Rs1: 2, Rs2: 7, Imm: 16},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -4096},
		{Op: OpBGEU, Rs1: 30, Rs2: 29, Imm: 32764},
		{Op: OpJAL, Rd: 1, Imm: -4 << 18},
		{Op: OpJAL, Rd: 0, Imm: 4},
		{Op: OpJALR, Rd: 1, Rs1: 5, Imm: 0},
		{Op: OpCSRRW, Rd: 10, Rs1: 11, Imm: int32(CSRSatp)},
		{Op: OpCSRRS, Rd: 10, Rs1: 0, Imm: int32(CSRScause)},
		{Op: OpECALL},
		{Op: OpHALT, Imm: 42},
		{Op: OpSRET},
		{Op: OpSFENCE, Rs1: 4, Rs2: 5},
		{Op: OpLUI, Rd: 3, Imm: -1},
	}
	for _, in := range cases {
		got := Decode(Encode(in))
		if got != in {
			t.Errorf("round trip %s: encoded %+v, decoded %+v", in.Op, in, got)
		}
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		op := Op(rng.Intn(NumOps-1) + 1)
		in := Inst{Op: op}
		switch FormatOf(op) {
		case FmtR:
			in.Rd = uint8(rng.Intn(32))
			in.Rs1 = uint8(rng.Intn(32))
			in.Rs2 = uint8(rng.Intn(32))
		case FmtI:
			in.Rd = uint8(rng.Intn(32))
			in.Rs1 = uint8(rng.Intn(32))
			if SignExtendsImm(op) {
				in.Imm = int32(int16(rng.Uint32()))
			} else {
				in.Imm = int32(uint16(rng.Uint32()))
			}
		case FmtB:
			in.Rs1 = uint8(rng.Intn(32))
			in.Rs2 = uint8(rng.Intn(32))
			in.Imm = int32(int16(rng.Uint32()))
		case FmtJ:
			in.Rd = uint8(rng.Intn(32))
			in.Imm = (int32(rng.Uint32()) << 12 >> 12) &^ 3 // 20-bit word offset
		case FmtSys:
			in.Imm = int32(uint16(rng.Uint32()))
		}
		return Decode(Encode(in)) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(w uint32) bool {
		_ = Decode(w) // must not panic, any bit pattern
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroWordIsIllegal(t *testing.T) {
	in := Decode(0)
	if in.Op.Valid() {
		t.Fatalf("all-zero word decoded to valid op %v", in.Op)
	}
}

func TestOpStringsUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(1); int(op) < NumOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("mnemonic %q used by both %d and %d", s, prev, op)
		}
		seen[s] = op
	}
}

func TestRegNameRoundTrip(t *testing.T) {
	for r := uint8(0); r < 32; r++ {
		got, ok := RegByName(RegName(r))
		if !ok || got != r {
			t.Errorf("RegByName(RegName(%d)) = %d, %v", r, got, ok)
		}
	}
	if r, ok := RegByName("x17"); !ok || r != 17 {
		t.Errorf("x17 = %d, %v", r, ok)
	}
	if r, ok := RegByName("fp"); !ok || r != RegS0 {
		t.Errorf("fp = %d, %v", r, ok)
	}
	if _, ok := RegByName("x32"); ok {
		t.Error("x32 should not resolve")
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("bogus should not resolve")
	}
}

func TestCSRNameRoundTrip(t *testing.T) {
	addrs := []uint16{
		CSRSstatus, CSRSie, CSRStvec, CSRSscratch, CSRSepc, CSRScause,
		CSRStval, CSRSip, CSRStimecmp, CSRSatp, CSRCycle, CSRTime,
		CSRInstret, CSRVenv,
	}
	for _, a := range addrs {
		got, ok := CSRByName(CSRName(a))
		if !ok || got != a {
			t.Errorf("CSRByName(CSRName(%#x)) = %#x, %v", a, got, ok)
		}
		if !KnownCSR(a) {
			t.Errorf("CSR %#x not known", a)
		}
	}
	if KnownCSR(0x7FF) {
		t.Error("0x7FF should be unknown")
	}
}

func TestSatpFields(t *testing.T) {
	satp := MakeSatp(SatpModePaged, 0xBEEF, 0x12345)
	if SatpMode(satp) != SatpModePaged {
		t.Errorf("mode = %d", SatpMode(satp))
	}
	if SatpASID(satp) != 0xBEEF {
		t.Errorf("asid = %#x", SatpASID(satp))
	}
	if SatpPPN(satp) != 0x12345 {
		t.Errorf("ppn = %#x", SatpPPN(satp))
	}
}

func TestSatpRoundTripProperty(t *testing.T) {
	f := func(asid uint16, ppn uint64) bool {
		ppn &= (1 << 44) - 1
		s := MakeSatp(SatpModePaged, asid, ppn)
		return SatpASID(s) == asid && SatpPPN(s) == ppn && SatpMode(s) == SatpModePaged
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPTEFields(t *testing.T) {
	pte := MakePTE(0xABCDE, PTEValid|PTERead|PTEWrite)
	if PTEPPN(pte) != 0xABCDE {
		t.Errorf("ppn = %#x", PTEPPN(pte))
	}
	if !PTELeaf(pte) {
		t.Error("R|W entry should be leaf")
	}
	ptr := MakePTE(0x1, PTEValid)
	if PTELeaf(ptr) {
		t.Error("pointer entry misclassified as leaf")
	}
}

func TestPTERoundTripProperty(t *testing.T) {
	f := func(ppn uint64, flags uint8) bool {
		ppn &= (1 << 44) - 1
		fl := uint64(flags) & PTEPerms
		pte := MakePTE(ppn, fl)
		return PTEPPN(pte) == ppn && pte&PTEPerms == fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVPNDecomposition(t *testing.T) {
	// va = vpn2|vpn1|vpn0|offset with distinctive values.
	va := uint64(3)<<30 | uint64(5)<<21 | uint64(7)<<12 | 0x123
	if VPN(va, 2) != 3 || VPN(va, 1) != 5 || VPN(va, 0) != 7 {
		t.Errorf("VPN fields = %d,%d,%d", VPN(va, 2), VPN(va, 1), VPN(va, 0))
	}
}

func TestPageHelpers(t *testing.T) {
	if PageAlign(0x1FFF) != 0x1000 {
		t.Errorf("PageAlign(0x1FFF) = %#x", PageAlign(0x1FFF))
	}
	if PageRoundUp(1) != PageSize {
		t.Errorf("PageRoundUp(1) = %d", PageRoundUp(1))
	}
	if PageRoundUp(0) != 0 {
		t.Errorf("PageRoundUp(0) = %d", PageRoundUp(0))
	}
	if PFN(0x3456) != 3 {
		t.Errorf("PFN = %d", PFN(0x3456))
	}
}

func TestCauseNames(t *testing.T) {
	if CauseName(CauseEcallU) != "ecall-from-U" {
		t.Error(CauseName(CauseEcallU))
	}
	if CauseName(CauseInterrupt|IntTimer) != "timer-interrupt" {
		t.Error(CauseName(CauseInterrupt | IntTimer))
	}
	if CauseName(999) == "" {
		t.Error("unknown cause should still render")
	}
}

func TestDisasmSmoke(t *testing.T) {
	cases := map[string]Inst{
		"add a0, a1, a2":      {Op: OpADD, Rd: RegA0, Rs1: RegA1, Rs2: RegA2},
		"addi a0, a1, -5":     {Op: OpADDI, Rd: RegA0, Rs1: RegA1, Imm: -5},
		"ld t0, 8(sp)":        {Op: OpLD, Rd: RegT0, Rs1: RegSP, Imm: 8},
		"sd t0, 8(sp)":        {Op: OpSD, Rs1: RegSP, Rs2: RegT0, Imm: 8},
		"beq a0, a1, 16":      {Op: OpBEQ, Rs1: RegA0, Rs2: RegA1, Imm: 16},
		"jal ra, -8":          {Op: OpJAL, Rd: RegRA, Imm: -8},
		"csrrw a0, satp, a1":  {Op: OpCSRRW, Rd: RegA0, Rs1: RegA1, Imm: int32(CSRSatp)},
		"sret":                {Op: OpSRET},
		"sfence.vma t0, zero": {Op: OpSFENCE, Rs1: RegT0},
	}
	for want, in := range cases {
		if got := Disasm(in); got != want {
			t.Errorf("Disasm(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPageFaultCauseMapping(t *testing.T) {
	if PageFaultCause(AccRead) != CauseLoadPageFault ||
		PageFaultCause(AccWrite) != CauseStorePageFault ||
		PageFaultCause(AccExec) != CauseInstrPageFault {
		t.Error("page fault cause mapping wrong")
	}
	if AccessFaultCause(AccRead) != CauseLoadAccess ||
		AccessFaultCause(AccWrite) != CauseStoreAccess ||
		AccessFaultCause(AccExec) != CauseInstrAccess {
		t.Error("access fault cause mapping wrong")
	}
}
