// Package core implements the govisor virtual machine monitor: VM lifecycle,
// the VM-exit dispatch loop, privileged-instruction emulation, the hypercall
// interface, virtual interrupt injection, and the wiring between vCPUs,
// guest memory, the MMU engines and the device models.
//
// One VMM supports four execution modes over the same guest binary:
//
//	ModeNative — the baseline: the "hardware" runs the guest fully
//	             privileged with direct 1-D paging. No VMM exits except
//	             firmware calls (the hypercall ABI doubles as SBI).
//	ModeTrap   — classic trap-and-emulate with shadow paging: the guest is
//	             deprivileged, every privileged op exits and is emulated,
//	             translations come from VMM-maintained shadow tables kept
//	             coherent by write-protecting guest page-table pages.
//	ModePara   — paravirtual: the guest is deprivileged but cooperates,
//	             replacing page-table writes with (batchable) hypercalls
//	             against VMM-validated direct-mapped tables.
//	ModeHW     — simulated hardware assist: the guest runs privileged
//	             against its own CSR file; translation pays the
//	             two-dimensional nested-walk cost; exits happen only for
//	             hypercalls, MMIO, and host-level page faults.
package core

import (
	"fmt"

	"govisor/internal/dev"
	"govisor/internal/gabi"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/mmu"
	"govisor/internal/storage"
	"govisor/internal/vcpu"
	"govisor/internal/virtio"
	"govisor/internal/vnet"
)

// Mode selects the virtualization style of a VM.
type Mode uint8

// Virtualization modes.
const (
	ModeNative Mode = iota
	ModeTrap
	ModePara
	ModeHW
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeTrap:
		return "trap"
	case ModePara:
		return "para"
	case ModeHW:
		return "hw"
	}
	return "mode?"
}

// Venv returns the CSRVenv discovery value for the mode.
func (m Mode) Venv() uint64 {
	switch m {
	case ModeTrap:
		return isa.VEnvTrap
	case ModePara:
		return isa.VEnvPara
	case ModeHW:
		return isa.VEnvHW
	default:
		return isa.VEnvNative
	}
}

// State is the lifecycle state of a VM.
type State uint8

// VM states.
const (
	StateCreated State = iota
	StateRunning
	StateIdle   // WFI with no pending interrupt; wakes on IRQ or timer
	StatePaused // explicitly paused (migration brown-out)
	StateHalted
	StateError
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StateIdle:
		return "idle"
	case StatePaused:
		return "paused"
	case StateHalted:
		return "halted"
	case StateError:
		return "error"
	}
	return "state?"
}

// Config describes a VM to create.
type Config struct {
	Name     string
	Mode     Mode
	MemBytes uint64
	// EagerMem pre-populates all of guest RAM at boot; otherwise pages are
	// demand-allocated on first touch.
	EagerMem bool
	// Costs overrides the cycle cost model (zero value ⇒ defaults).
	Costs *vcpu.Costs
	// UseASID controls TLB tagging (ablation A2). Default true.
	NoASID bool
	// NestedLevels overrides the nested walk depth in ModeHW (default 3).
	NestedLevels int
	// NoICache disables the vCPU's decoded-instruction block cache. The
	// cache is architecturally invisible (identical cycles, registers, CSRs
	// and statistics either way) and on by default; turning it off exists
	// for the differential transparency tests and host-side benchmarking.
	NoICache bool
	// NoSuperblocks disables superblock dispatch on top of the icache —
	// same invisibility contract, same reason to exist. NoICache implies
	// no superblocks (blocks live in predecoded pages).
	NoSuperblocks bool
	// NoThreadedDispatch pins the vCPU to the original dispatch switch
	// instead of the decode-time-resolved executor table — same
	// invisibility contract as the icache and superblocks; the switch arm
	// exists for the differential transparency tests and dispatch
	// benchmarking.
	NoThreadedDispatch bool
	// NoWriteMemo pins the vCPU's store path to the unmemoized reference
	// arm (per-store translation, range checks and version bumps) instead
	// of the write-path memo stack — same invisibility contract; the arm
	// exists for the differential transparency tests and the M5 write-memo
	// benchmark.
	NoWriteMemo bool
	// NoBlockChain pins block entry to the unchained reference arm: no
	// cross-page superblock continuation and no recorded block→successor
	// links; every block entry repeats the full fetch translation and
	// icache lookup — same invisibility contract; the arm exists for the
	// differential transparency tests and the M6 chaining benchmark.
	// NoICache and NoSuperblocks each imply no chaining (links live in
	// predecoded pages and anchor at block boundaries).
	NoBlockChain bool
	// NoTraces pins execution to the per-dispatch chained-block reference
	// arm: hot chain links are never promoted to traces (multi-block runs
	// with one entry check, whole-span admission and batched accounting) —
	// same invisibility contract; the arm exists for the differential
	// transparency tests and the M8 hot-trace benchmark. NoBlockChain (and
	// so NoICache / NoSuperblocks) implies no traces: traces are built from
	// and entered through chain links.
	NoTraces bool
	// NoSpanDMA pins guest-physical DMA to the unmemoized reference arm:
	// ReadSpan/WriteSpan resolve every page through the per-access Read/Write
	// path instead of the epoch-validated span memo — same invisibility
	// contract as the write memo; the arm exists for the differential
	// transparency tests and the M9 dataplane benchmark.
	NoSpanDMA bool
}

// Marker is a benchmark region marker recorded by the HCMarker hypercall.
type Marker struct {
	ID     uint64
	Cycles uint64
}

// VMStats aggregates VMM-side counters for one VM.
type VMStats struct {
	Hypercalls   uint64
	ParaMaps     uint64 // MMU map/unmap operations validated
	ParaBatches  uint64
	Injections   uint64 // virtual traps/interrupts injected
	PTWriteEmuls uint64 // trapped guest page-table writes emulated
	ShadowFills  uint64
	DemandFills  uint64
	RemoteFills  uint64 // post-copy pages pulled from a migration source
	MMIOExits    uint64
}

// VM is one guest virtual machine.
type VM struct {
	Name string
	Mode Mode

	Mem    *mem.GuestPhys
	CPU    *vcpu.CPU
	MMUCtx *mmu.Context
	Bus    *dev.Bus
	IntCtl *dev.IntController
	UART   *dev.UART

	State    State
	HaltCode uint16
	Err      error

	Params  [gabi.ParamSlots]uint64
	Markers []Marker

	// PageSource, when set, resolves not-present pages from a remote host
	// (post-copy live migration). It returns the page content and true, or
	// false to fall back to demand-zero allocation.
	PageSource func(gfn uint64) ([]byte, bool)

	// ReclaimHook, when set, is invoked when the host pool is exhausted;
	// returning true means "retry the allocation" (the overcommit policy
	// freed something). Used by the ballooning experiments. Under
	// Host.RunParallel the hook runs on this VM's worker mid-epoch, so it
	// must not touch other VMs' state — drive cross-VM reclaim from
	// Host.EpochFunc instead (see the RunParallel contract).
	ReclaimHook func() bool

	Stats VMStats

	// Paravirtual / prebuilt paging state.
	tb          *mmu.TableBuilder
	ptPages     map[uint64]bool // pinned table pages (para)
	churnVA     uint64
	virtioSlot  int
	virtioByIRQ map[uint]*virtio.MMIODev
	costs       vcpu.Costs

	// netPorts are the virtual-switch attachments of this VM's NICs; the
	// parallel engine defers their switches at run start so inter-VM frames
	// deliver at epoch barriers instead of racing across workers.
	netPorts []*vnet.Port
}

// ChurnWindowVA is the virtual base of the PT-churn window handed to guest
// kernels (well above RAM, below the MMIO window).
const ChurnWindowVA = 0x2000_0000

// ChurnWindowPages is how many leaf PTEs the churn window spans.
const ChurnWindowPages = 256

// ptRegionPages is the number of top-of-RAM pages reserved for the
// VMM-built boot page tables.
const ptRegionPages = 64

// NewVM creates a VM over the host pool.
func NewVM(pool *mem.Pool, cfg Config) (*VM, error) {
	if cfg.MemBytes < 32*isa.PageSize {
		return nil, fmt.Errorf("core: %s: at least 32 pages of RAM required", cfg.Name)
	}
	g := mem.NewGuestPhys(pool, cfg.MemBytes)
	g.SetNoSpanDMA(cfg.NoSpanDMA)

	var style mmu.Style
	depriv := false
	switch cfg.Mode {
	case ModeNative:
		style = mmu.StyleDirect
	case ModeTrap:
		style = mmu.StyleShadow
		depriv = true
	case ModePara:
		style = mmu.StyleDirect
		depriv = true
	case ModeHW:
		style = mmu.StyleNested
	default:
		return nil, fmt.Errorf("core: unknown mode %d", cfg.Mode)
	}
	ctx := mmu.NewContext(g, style)
	ctx.UseASID = !cfg.NoASID
	if cfg.NestedLevels > 0 {
		ctx.NestedLevels = cfg.NestedLevels
	}

	cpu := vcpu.New(g, ctx)
	cpu.Deprivileged = depriv
	cpu.Venv = cfg.Mode.Venv()
	if cfg.Costs != nil {
		cpu.Costs = *cfg.Costs
	}
	if !cfg.NoICache {
		cpu.ICache = vcpu.NewICache()
	}
	cpu.NoSuperblocks = cfg.NoSuperblocks
	cpu.NoThreadedDispatch = cfg.NoThreadedDispatch
	cpu.NoWriteMemo = cfg.NoWriteMemo
	cpu.NoBlockChain = cfg.NoBlockChain || cfg.NoSuperblocks || cfg.NoICache
	cpu.NoTraces = cfg.NoTraces || cpu.NoBlockChain

	vm := &VM{
		Name:        cfg.Name,
		Mode:        cfg.Mode,
		Mem:         g,
		CPU:         cpu,
		MMUCtx:      ctx,
		Bus:         dev.NewBus(),
		IntCtl:      dev.NewIntController(),
		State:       StateCreated,
		ptPages:     make(map[uint64]bool),
		churnVA:     ChurnWindowVA,
		virtioByIRQ: make(map[uint]*virtio.MMIODev),
		costs:       cpu.Costs,
	}
	cpu.IsMMIO = vm.Bus.IsMMIO
	vm.IntCtl.SetPin = func(asserted bool) {
		if asserted {
			cpu.RaiseIRQ(isa.IntExt)
			if vm.State == StateIdle {
				vm.State = StateRunning
			}
		} else {
			cpu.ClearIRQ(isa.IntExt)
		}
	}
	if err := vm.Bus.Attach(dev.IntCtlBase, dev.IntCtlSize, vm.IntCtl); err != nil {
		return nil, err
	}
	vm.UART = dev.NewUART(vm.IntCtl)
	if err := vm.Bus.Attach(dev.UARTBase, dev.UARTSize, vm.UART); err != nil {
		return nil, err
	}
	if cfg.EagerMem {
		if err := g.PopulateAll(); err != nil {
			return nil, fmt.Errorf("core: %s: populating %d bytes: %w", cfg.Name, cfg.MemBytes, err)
		}
	}
	return vm, nil
}

// AttachPIODisk wires the programmed-I/O baseline disk.
func (vm *VM) AttachPIODisk(img storage.Image) (*dev.PIODisk, error) {
	d := dev.NewPIODisk(img, vm.IntCtl)
	if err := vm.Bus.Attach(dev.PIODiskBase, dev.PIODiskSize, d); err != nil {
		return nil, err
	}
	return d, nil
}

// AttachRegNIC wires the register-banged baseline NIC to a switch port.
func (vm *VM) AttachRegNIC(port *vnet.Port) (*dev.RegNIC, error) {
	n := dev.NewRegNIC(port, vm.IntCtl)
	if err := vm.Bus.Attach(dev.RegNICBase, dev.RegNICSize, n); err != nil {
		return nil, err
	}
	port.SetClock(func() uint64 { return vm.CPU.Cycles })
	vm.netPorts = append(vm.netPorts, port)
	return n, nil
}

// attachVirtio places a virtio backend in the next free slot.
func (vm *VM) attachVirtio(name string, backend virtio.Backend) (*virtio.MMIODev, error) {
	if vm.virtioSlot >= dev.VirtioSlots {
		return nil, fmt.Errorf("core: %s: out of virtio slots", vm.Name)
	}
	slot := vm.virtioSlot
	vm.virtioSlot++
	irq := uint(dev.IRQVirtio0 + slot)
	d := virtio.NewMMIODev(name, backend, vm.Mem, func() { vm.IntCtl.Raise(irq) })
	base := uint64(dev.VirtioBase + slot*dev.VirtioStride)
	if err := vm.Bus.Attach(base, dev.VirtioStride, d); err != nil {
		return nil, err
	}
	vm.virtioByIRQ[irq] = d
	return d, nil
}

// AttachVirtioBlk wires a virtio-blk device over img.
func (vm *VM) AttachVirtioBlk(img storage.Image) (*virtio.Blk, *virtio.MMIODev, error) {
	blk := virtio.NewBlk(img)
	d, err := vm.attachVirtio("virtio-blk", blk)
	if err != nil {
		return nil, nil, err
	}
	blk.Bind(d)
	return blk, d, nil
}

// AttachVirtioNet wires a virtio-net device to a switch port.
func (vm *VM) AttachVirtioNet(port *vnet.Port) (*virtio.Net, *virtio.MMIODev, error) {
	n := virtio.NewNet(port)
	d, err := vm.attachVirtio("virtio-net", n)
	if err != nil {
		return nil, nil, err
	}
	n.Bind(d)
	// Frames this VM defers at a switch carry its simulated send time, so
	// epoch-barrier flushes deliver in guest-time order regardless of which
	// worker ran which VM (see vnet.Switch.Flush).
	port.SetClock(func() uint64 { return vm.CPU.Cycles })
	vm.netPorts = append(vm.netPorts, port)
	return n, d, nil
}

// AttachVirtioConsole wires a virtio console.
func (vm *VM) AttachVirtioConsole() (*virtio.Console, *virtio.MMIODev, error) {
	c := virtio.NewConsole()
	d, err := vm.attachVirtio("virtio-console", c)
	if err != nil {
		return nil, nil, err
	}
	c.Bind(d)
	return c, d, nil
}

// balloonOps adapts the VM's memory to the virtio-balloon device.
type balloonOps struct{ vm *VM }

func (b balloonOps) ReclaimPage(gfn uint64) { b.vm.Mem.Unmap(gfn) }
func (b balloonOps) ReturnPage(gfn uint64)  { _ = b.vm.Mem.Populate(gfn) }

// AttachVirtioBalloon wires a balloon device driving this VM's memory.
func (vm *VM) AttachVirtioBalloon() (*virtio.Balloon, *virtio.MMIODev, error) {
	bal := virtio.NewBalloon(balloonOps{vm})
	d, err := vm.attachVirtio("virtio-balloon", bal)
	if err != nil {
		return nil, nil, err
	}
	bal.Bind(d)
	return bal, d, nil
}

// Boot loads the kernel image, builds the boot page tables, writes the
// parameter block, and arms the vCPU at the kernel entry point.
//
// The VMM plays bootloader: identity page tables covering guest RAM (2 MiB
// superpages where possible), the MMIO window, and the PT-churn window are
// built in a reserved region at the top of RAM; their SATP value is passed
// to the kernel through the parameter block. Under ModePara the table pages
// are pinned (write-protected) and may only change via MMU hypercalls.
func (vm *VM) Boot(kernel []byte) error {
	if vm.State != StateCreated {
		return fmt.Errorf("core: %s: boot in state %v", vm.Name, vm.State)
	}
	np := vm.Mem.Pages()
	if uint64(len(kernel)) > (np-ptRegionPages)<<isa.PageShift-gabi.KernelBase {
		return fmt.Errorf("core: %s: kernel of %d bytes does not fit", vm.Name, len(kernel))
	}
	// Ensure the pages backing kernel, params and stack exist.
	for gfn := uint64(0); gfn <= (gabi.KernelBase+uint64(len(kernel)))>>isa.PageShift; gfn++ {
		if err := vm.Mem.Populate(gfn); err != nil {
			return err
		}
	}
	if f := vm.Mem.Write(gabi.KernelBase, kernel); f != nil {
		return fmt.Errorf("core: %s: loading kernel: %w", vm.Name, f)
	}

	// Boot page tables at the top of RAM.
	tableStart := np - ptRegionPages
	tb, err := mmu.NewTableBuilder(vm.Mem, tableStart, ptRegionPages)
	if err != nil {
		return err
	}
	ramFlags := isa.PTERead | isa.PTEWrite | isa.PTEExec | isa.PTEGlobal
	if err := tb.IdentityMap(np<<isa.PageShift, ramFlags); err != nil {
		return err
	}
	// MMIO window: 2 MiB superpages covering all device slots.
	mmioFlags := isa.PTERead | isa.PTEWrite | isa.PTEGlobal
	for off := uint64(0); off < 16*isa.MegaPageSize; off += isa.MegaPageSize {
		if err := tb.MapSuper(dev.MMIOBase+off, dev.MMIOBase+off, mmioFlags); err != nil {
			return err
		}
	}
	// Churn window: allocate the L0 table and expose the PTE slots.
	l0, err := tb.EnsureL0(vm.churnVA)
	if err != nil {
		return err
	}
	vm.tb = tb
	// Pin what must never be reclaimed: the page-table region (the walker
	// faults recursively if it vanishes), the kernel image, and the
	// parameter/stack pages.
	for gfn := tableStart; gfn < np; gfn++ {
		vm.Mem.Pin(gfn)
	}
	for gfn := uint64(0); gfn <= (gabi.KernelBase+uint64(len(kernel)))>>isa.PageShift; gfn++ {
		vm.Mem.Pin(gfn)
	}
	vm.Mem.Pin((gabi.StackTop - 1) >> isa.PageShift)
	if vm.Mode == ModePara {
		for _, ppn := range tb.TablePPNs() {
			vm.Mem.WriteProtect(ppn, true)
			vm.ptPages[ppn] = true
		}
	}

	satp := isa.MakeSatp(isa.SatpModePaged, 1, tb.RootPPN)
	heapBase := (gabi.KernelBase + isa.PageRoundUp(uint64(len(kernel))) + 16*isa.PageSize) >> isa.PageShift
	vm.Params[gabi.PHeapBase] = heapBase
	vm.Params[gabi.PHeapPages] = tableStart - heapBase
	vm.Params[gabi.PSatp] = satp
	vm.Params[gabi.PChurnVA] = vm.churnVA
	vm.Params[gabi.PChurnPTE] = l0<<isa.PageShift + isa.VPN(vm.churnVA, 0)*8
	vm.Params[gabi.PChurnPages] = ChurnWindowPages
	for i, v := range vm.Params {
		if f := vm.Mem.WriteUintPriv(gabi.ParamBase+uint64(i)*8, 8, v); f != nil {
			return fmt.Errorf("core: %s: writing params: %w", vm.Name, f)
		}
	}

	cpu := vm.CPU
	cpu.PC = gabi.KernelBase
	cpu.Priv = vcpu.PrivS
	cpu.SetReg(isa.RegA0, gabi.ParamBase)
	cpu.SetReg(isa.RegSP, gabi.StackTop)
	vm.State = StateRunning
	// Boot-time dirtying is not workload dirtying.
	vm.Mem.CollectDirty(nil)
	return nil
}

// SetParam stores a boot parameter; must be called before Boot.
func (vm *VM) SetParam(slot int, v uint64) { vm.Params[slot] = v }

// Result reads a result slot from the parameter block after the guest halts.
func (vm *VM) Result(slot int) uint64 {
	v, _ := vm.Mem.ReadUint(gabi.ParamBase+uint64(slot)*8, 8)
	return v
}

// Output returns the UART console output.
func (vm *VM) Output() string { return vm.UART.Output() }

// Pause stops the VM at the next exit boundary (migration brown-out).
func (vm *VM) Pause() {
	if vm.State == StateRunning || vm.State == StateIdle {
		vm.State = StatePaused
	}
}

// Resume restarts a paused VM.
func (vm *VM) Resume() {
	if vm.State == StatePaused {
		vm.State = StateRunning
	}
}

// AdoptState copies the architectural vCPU state from src into this VM —
// the migration switchover. Memory content is transferred separately by the
// migration engine; device models are expected to be attached identically
// on both sides. Installing SATP through WriteCSR re-arms the destination's
// own MMU (shadow spaces rebuild on demand).
func (vm *VM) AdoptState(src *VM) {
	dst := vm.CPU
	s := src.CPU
	dst.X = s.X
	dst.PC = s.PC
	dst.Priv = s.Priv
	dst.Cycles = s.Cycles
	dst.Instret = s.Instret
	dst.CSR = s.CSR
	dst.WriteCSR(isa.CSRSatp, s.CSR.Satp)
	vm.Params = src.Params
	vm.HaltCode = src.HaltCode
	vm.State = StateRunning
}

// ArchState is the portable architectural snapshot of a vCPU — exactly the
// fields AdoptState transfers at migration switchover. The streamed
// migration engine serializes it over the wire and also checkpoints it at
// Pause so an aborted migration can roll the source back bit-for-bit.
type ArchState struct {
	X        [32]uint64
	PC       uint64
	Priv     uint8
	Cycles   uint64
	Instret  uint64
	CSR      vcpu.CSRFile
	Params   [gabi.ParamSlots]uint64
	HaltCode uint16
}

// CaptureArch snapshots the VM's architectural state.
func (vm *VM) CaptureArch() ArchState {
	c := vm.CPU
	return ArchState{
		X:        c.X,
		PC:       c.PC,
		Priv:     c.Priv,
		Cycles:   c.Cycles,
		Instret:  c.Instret,
		CSR:      c.CSR,
		Params:   vm.Params,
		HaltCode: vm.HaltCode,
	}
}

// AdoptArch installs a captured architectural state into this VM — the
// remote half of AdoptState. Installing SATP through WriteCSR re-arms the
// destination's own MMU, and the VM comes up running, exactly as a local
// AdoptState would leave it.
func (vm *VM) AdoptArch(a ArchState) {
	c := vm.CPU
	c.X = a.X
	c.PC = a.PC
	c.Priv = a.Priv
	c.Cycles = a.Cycles
	c.Instret = a.Instret
	c.CSR = a.CSR
	c.WriteCSR(isa.CSRSatp, a.CSR.Satp)
	vm.Params = a.Params
	vm.HaltCode = a.HaltCode
	vm.State = StateRunning
}

// RestoreArch rolls the VM back to a checkpoint taken on this same VM
// while it was paused — the migration-abort path. Unlike AdoptArch it is a
// raw field restore with no MMU re-arm: nothing has executed since the
// checkpoint (the brown-out only read memory and advanced the clock), so
// the MMU state on record is still valid and must not be perturbed. The VM
// stays in its current (paused) state; the caller Resumes it.
func (vm *VM) RestoreArch(a ArchState) {
	c := vm.CPU
	c.X = a.X
	c.PC = a.PC
	c.Priv = a.Priv
	c.Cycles = a.Cycles
	c.Instret = a.Instret
	c.CSR = a.CSR
	vm.Params = a.Params
	vm.HaltCode = a.HaltCode
}

// FailRemote transitions the VM to StateError with err — used by
// post-copy PageSource hooks when a remote pull fails unrecoverably, so
// the guest halts with a visible error instead of silently executing
// demand-zero garbage.
func (vm *VM) FailRemote(err error) { vm.fail(err) }

// Release returns all resources to the host pool (teardown).
func (vm *VM) Release() {
	if vm.MMUCtx.Shadow != nil {
		vm.MMUCtx.Shadow.DropAll()
	}
	vm.Mem.Release()
	vm.State = StateHalted
}
