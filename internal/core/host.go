package core

import (
	"fmt"

	"govisor/internal/mem"
)

// Scheduler is the vCPU scheduling policy a Host consults. Implementations
// live in internal/sched (round-robin, Xen-style credit, CFS-like fair);
// the interface is defined here so core does not depend on any policy.
type Scheduler interface {
	// Add registers a runnable entity with a proportional weight and an
	// optional utilization cap in percent (0 = uncapped).
	Add(id int, weight uint64, capPct uint64)
	// Remove deregisters an entity.
	Remove(id int)
	// Next picks the entity to run and the quantum (in cycles) to grant.
	// ok is false when nothing is runnable.
	Next() (id int, quantum uint64, ok bool)
	// Account reports the cycles the entity actually consumed.
	Account(id int, used uint64)
	// Block marks an entity not runnable (idle/halted); Unblock reverses.
	// Unblock MUST be a no-op for entities that are not blocked: both host
	// engines call it to resync after device IRQs or Resume make a VM
	// runnable outside the timer wake path, so a policy that treats every
	// Unblock as a wake event (boost, requeue) would be distorted.
	Block(id int)
	Unblock(id int)
}

// Host is one simulated physical machine: a frame pool shared by its VMs, a
// vCPU scheduler multiplexing them over PCPUs simulated cores, and a global
// host clock.
type Host struct {
	Pool  *mem.Pool
	VMs   []*VM
	Sched Scheduler
	// PCPUs is the number of physical cores the host time model assumes:
	// with N VMs and C cores, aggregate guest progress per host cycle is
	// min(N, C).
	PCPUs int

	// Now is the host clock in cycles.
	Now uint64

	// Quantum is the default scheduling quantum when the scheduler does not
	// dictate one.
	Quantum uint64

	// EpochFunc, when set, runs serially at every RunParallel epoch barrier.
	// It is where cross-VM effects belong under parallel execution: KSM scan
	// rounds, balloon policy, migration pre-copy rounds, deferred virtual-
	// switch delivery (vnet.Switch.Flush). Nothing else may touch more than
	// one VM while an epoch is in flight.
	EpochFunc func()

	wakeAt     map[int]uint64 // host time at which each idle VM's timer fires
	runnableAt map[int]uint64 // host time a woken VM joined the runqueue
	idleAt     map[int]uint64 // host time each VM went idle (device-wake clock sync)
}

// DefaultQuantum is 1 ms of guest time at the nominal clock.
const DefaultQuantum = 1_000_000

// NewHost creates a host with the given memory budget in frames.
func NewHost(poolFrames uint64, pcpus int, sched Scheduler) *Host {
	if pcpus <= 0 {
		pcpus = 1
	}
	return &Host{
		Pool:    mem.NewPool(poolFrames),
		Sched:   sched,
		PCPUs:   pcpus,
		Quantum: DefaultQuantum,
	}
}

// CreateVM creates and registers a VM on this host. Each VM's allocation
// stream is hinted onto its own pool shard so concurrent demand fills under
// RunParallel mostly avoid each other's locks.
func (h *Host) CreateVM(cfg Config) (*VM, error) {
	vm, err := NewVM(h.Pool, cfg)
	if err != nil {
		return nil, err
	}
	vm.Mem.SetAllocHint(len(h.VMs))
	h.VMs = append(h.VMs, vm)
	return vm, nil
}

// AddToScheduler registers VM index i with the scheduler.
func (h *Host) AddToScheduler(i int, weight, capPct uint64) {
	h.Sched.Add(i, weight, capPct)
}

// Run multiplexes the host's VMs under the scheduler until every VM has
// halted (or errored), or until the host clock reaches limit. It returns
// the host cycles elapsed.
//
// The time model is a single dispatch trace: the host advances its clock by
// (consumed quantum ÷ effective parallelism), where effective parallelism is
// min(runnable VMs, PCPUs). This keeps multi-VM experiments deterministic —
// no goroutine interleaving — while preserving the contention behaviour the
// scheduling and consolidation experiments measure.
//
// Idle VMs are tickless: a WFI guest's clock keeps tracking wall (host)
// time, so when its timer fires the guest observes both the sleep and any
// scheduling delay before it was redispatched — which is exactly what the
// wakeup-latency experiment (F11) measures.
func (h *Host) Run(limit uint64) uint64 {
	if h.Sched == nil {
		panic("core: host has no scheduler")
	}
	h.ensureTimerMaps()
	start := h.Now
	for h.Now-start < limit {
		runnable := h.wakeSleepers()
		if runnable == 0 {
			if !h.advanceToNextWake() {
				return h.Now - start
			}
			continue
		}

		id, quantum, ok := h.Sched.Next()
		if !ok {
			h.Now += h.Quantum // all entities capped/throttled: host idles
			continue
		}
		if quantum == 0 {
			quantum = h.Quantum
		}
		par := runnable
		if par > h.PCPUs {
			par = h.PCPUs
		}
		if par < 1 {
			par = 1
		}
		// Host timer preemption: never run a quantum past the next pending
		// timer wake, so wakeups are observed promptly.
		quantum = h.clampToNextWake(quantum, uint64(par))
		vm := h.VMs[id]
		if vm.State != StateRunning {
			h.parkIfNotRunning(id, h.Now)
			continue
		}
		h.chargeRunqueueWait(id)
		used := vm.Step(quantum)
		h.Sched.Account(id, used)
		h.Now += used / uint64(par)
		if used == 0 {
			h.Now++ // ensure forward progress
		}
		h.parkIfNotRunning(id, h.Now)
	}
	return h.Now - start
}

func (h *Host) ensureTimerMaps() {
	if h.wakeAt == nil {
		h.wakeAt = make(map[int]uint64)
		h.runnableAt = make(map[int]uint64)
		h.idleAt = make(map[int]uint64)
	}
}

// parkIfNotRunning blocks a VM that is not in the running state and, if it
// went idle, records at — the wall time it actually stopped executing (the
// end of its consumed slice, not the dispatch time, or the already-consumed
// quantum would be double-charged): an idle guest's clock tracks wall time,
// so a later device wake charges the gap (timer wakes compute the same
// thing from the armed deadline instead).
func (h *Host) parkIfNotRunning(id int, at uint64) {
	vm := h.VMs[id]
	if vm.State == StateRunning {
		return
	}
	h.Sched.Block(id)
	if vm.State == StateIdle {
		if _, tracked := h.idleAt[id]; !tracked {
			h.idleAt[id] = at
		}
	}
}

// wakeSleepers wakes idle VMs whose timers have fired on the host clock and
// returns the number of runnable VMs. This is the serial prologue both
// execution engines (Run and RunParallel) share.
func (h *Host) wakeSleepers() int {
	runnable := 0
	for i, vm := range h.VMs {
		if vm.State == StateIdle {
			cmp := vm.CPU.CSR.Stimecmp
			if _, tracked := h.wakeAt[i]; !tracked && cmp != 0 {
				// The guest sleeps until its deadline, in wall time.
				sleep := uint64(0)
				if cmp > vm.CPU.Cycles {
					sleep = cmp - vm.CPU.Cycles
				}
				h.wakeAt[i] = h.Now + sleep
			}
			if at, tracked := h.wakeAt[i]; tracked && h.Now >= at {
				// Wall time passed while asleep (plus any lateness).
				late := h.Now - at
				if cmp > vm.CPU.Cycles {
					vm.CPU.Cycles = cmp
				}
				vm.CPU.AddCycles(late)
				delete(h.wakeAt, i)
				delete(h.idleAt, i)
				vm.State = StateRunning
				h.Sched.Unblock(i)
				// From here until dispatch the VM sits on the runqueue;
				// that wait is wall time its clock must absorb, so the
				// guest's own latency measurement sees scheduling delay.
				h.runnableAt[i] = h.Now
			}
		} else {
			delete(h.wakeAt, i)
			if vm.State == StateRunning {
				if at, wasIdle := h.idleAt[i]; wasIdle {
					// A device IRQ woke this guest out of WFI: while idle
					// its clock tracked wall time, so it absorbs the wait
					// before resuming (the timer path above computes the
					// same charge from the armed deadline), and the
					// runqueue delay until dispatch is charged like any
					// other wake.
					if h.Now > at {
						vm.CPU.AddCycles(h.Now - at)
					}
					h.runnableAt[i] = h.Now
				}
				// Resync the scheduler: a device IRQ or Resume makes a VM
				// runnable without passing through the timer wake above,
				// and it would otherwise sit blocked forever. No-op when
				// the entity is not blocked.
				h.Sched.Unblock(i)
			}
			delete(h.idleAt, i)
		}
		if vm.State == StateRunning {
			runnable++
		}
	}
	return runnable
}

// advanceToNextWake moves the clock to the earliest pending timer wake. It
// returns false when no wake is pending — the host has nothing left to do.
func (h *Host) advanceToNextWake() bool {
	next := uint64(0)
	//govisor:nondet(pure min fold over the values; result is independent of iteration order)
	for _, at := range h.wakeAt {
		if next == 0 || at < next {
			next = at
		}
	}
	if next == 0 {
		return false
	}
	if next > h.Now {
		h.Now = next
	} else {
		h.Now++
	}
	return true
}

// clampToNextWake bounds a dispatch quantum so it cannot run past the next
// pending timer wake. par converts wall room into cycle room: Run's single
// dispatch advances the host clock by used/par, while a RunParallel lease
// occupies its own simulated core (par 1).
func (h *Host) clampToNextWake(quantum, par uint64) uint64 {
	//govisor:nondet(pure clamp/min fold over the values; result is independent of iteration order)
	for _, at := range h.wakeAt {
		if at > h.Now {
			if room := (at - h.Now) * par; room < quantum {
				quantum = room
			}
		} else {
			quantum = 1
		}
	}
	if quantum == 0 {
		quantum = 1
	}
	return quantum
}

// chargeRunqueueWait applies the wall time VM id spent waiting on the
// runqueue since it woke (the scheduling-delay component of wakeup latency).
func (h *Host) chargeRunqueueWait(id int) {
	if rs, waited := h.runnableAt[id]; waited {
		if h.Now > rs {
			h.VMs[id].CPU.AddCycles(h.Now - rs)
		}
		delete(h.runnableAt, id)
	}
}

// AllHalted reports whether every VM reached a terminal state.
func (h *Host) AllHalted() bool {
	for _, vm := range h.VMs {
		if vm.State != StateHalted && vm.State != StateError {
			return false
		}
	}
	return true
}

// String summarizes the host.
func (h *Host) String() string {
	return fmt.Sprintf("host{vms=%d, pool=%d/%d frames, now=%d}",
		len(h.VMs), h.Pool.InUse(), h.Pool.Capacity(), h.Now)
}
