//go:build !race

package core

// raceScale shrinks host-time budgets in tests that spin through tens of
// millions of guest cycles: full size normally, divided down under the race
// detector (which costs ~10-20× per memory access) so `go test -race ./...`
// stays inside a CI-friendly wall clock. Determinism assertions are
// unaffected — every compared run uses the same budget.
const raceScale = 1
