package core

import (
	"strings"
	"testing"

	"govisor/internal/asm"
	"govisor/internal/gabi"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/sched"
)

const (
	tRAM   = 1 << 20
	tPool  = 8 << 20 >> isa.PageShift
	budget = 500_000_000
)

// miniProgram assembles a tiny standalone guest.
func miniProgram(t *testing.T, build func(b *asm.Builder)) []byte {
	t.Helper()
	b := asm.NewBuilder(gabi.KernelBase)
	build(b)
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func newTestVM(t *testing.T, mode Mode) *VM {
	t.Helper()
	vm, err := NewVM(mem.NewPool(tPool), Config{Name: "t", Mode: mode, MemBytes: tRAM})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestVMRejectsTinyMemory(t *testing.T) {
	if _, err := NewVM(mem.NewPool(64), Config{Name: "x", MemBytes: 1024}); err == nil {
		t.Fatal("tiny VM accepted")
	}
}

func TestBootRejectsDoubleBootAndHugeKernel(t *testing.T) {
	vm := newTestVM(t, ModeNative)
	img := miniProgram(t, func(b *asm.Builder) { b.Halt(0) })
	if err := vm.Boot(img); err != nil {
		t.Fatal(err)
	}
	if err := vm.Boot(img); err == nil {
		t.Fatal("double boot accepted")
	}
	vm2 := newTestVM(t, ModeNative)
	if err := vm2.Boot(make([]byte, tRAM)); err == nil {
		t.Fatal("oversized kernel accepted")
	}
}

func TestHypercallConsoleOutput(t *testing.T) {
	vm := newTestVM(t, ModeNative)
	img := miniProgram(t, func(b *asm.Builder) {
		for _, ch := range "hi\n" {
			b.Li(isa.RegA0, uint64(ch))
			b.Li(isa.RegA7, gabi.HCPutchar)
			b.Ecall()
		}
		// HCPuts with a string in memory.
		b.La(isa.RegA0, "msg")
		b.Li(isa.RegA7, gabi.HCPuts)
		b.Ecall()
		b.Halt(0)
		b.Label("msg")
		b.Asciiz("govisor")
	})
	if err := vm.Boot(img); err != nil {
		t.Fatal(err)
	}
	if st := vm.RunToHalt(budget); st != StateHalted {
		t.Fatalf("state %v err %v", st, vm.Err)
	}
	if got := vm.Output(); got != "hi\ngovisor" {
		t.Fatalf("output %q", got)
	}
}

func TestHypercallUnknownReturnsENoSys(t *testing.T) {
	vm := newTestVM(t, ModeNative)
	img := miniProgram(t, func(b *asm.Builder) {
		b.Li(isa.RegA7, 9999)
		b.Ecall()
		// a0 now holds the error; halt with it truncated.
		b.Store(isa.OpSD, isa.RegA0, isa.RegZero, 0x100)
		b.Halt(0)
	})
	vm.Boot(img)
	if st := vm.RunToHalt(budget); st != StateHalted {
		t.Fatalf("state %v", st)
	}
	v, _ := vm.Mem.ReadUint(0x100, 8)
	if v != gabi.HCENoSys {
		t.Fatalf("ret = %#x", v)
	}
}

func TestHypercallExit(t *testing.T) {
	vm := newTestVM(t, ModeNative)
	img := miniProgram(t, func(b *asm.Builder) {
		b.Li(isa.RegA0, 42)
		b.Li(isa.RegA7, gabi.HCExit)
		b.Ecall()
		b.Halt(7) // unreachable
	})
	vm.Boot(img)
	if st := vm.RunToHalt(budget); st != StateHalted {
		t.Fatalf("state %v", st)
	}
	if vm.HaltCode != 42 {
		t.Fatalf("halt code %d", vm.HaltCode)
	}
}

func TestParaMapValidation(t *testing.T) {
	vm := newTestVM(t, ModePara)
	img := miniProgram(t, func(b *asm.Builder) {
		// Attempt to map the PT region itself (forbidden).
		b.Li(isa.RegA0, ChurnWindowVA)
		b.Li(isa.RegA1, tRAM-isa.PageSize) // inside the reserved tables
		b.Li(isa.RegA2, isa.PTERead|isa.PTEWrite)
		b.Li(isa.RegA7, gabi.HCMMUMap)
		b.Ecall()
		b.Store(isa.OpSD, isa.RegA0, isa.RegZero, 0x100)
		// Misaligned va (not page aligned).
		b.Li(isa.RegA0, ChurnWindowVA+123)
		b.Li(isa.RegA1, 0x10000)
		b.Li(isa.RegA7, gabi.HCMMUMap)
		b.Ecall()
		b.Store(isa.OpSD, isa.RegA0, isa.RegZero, 0x108)
		b.Halt(0)
	})
	vm.Boot(img)
	if st := vm.RunToHalt(budget); st != StateHalted {
		t.Fatalf("state %v err %v", st, vm.Err)
	}
	v1, _ := vm.Mem.ReadUint(0x100, 8)
	v2, _ := vm.Mem.ReadUint(0x108, 8)
	if v1 != gabi.HCEInval || v2 != gabi.HCEInval {
		t.Fatalf("rets = %#x, %#x", v1, v2)
	}
}

func TestParaMapRejectedInOtherModes(t *testing.T) {
	vm := newTestVM(t, ModeHW)
	img := miniProgram(t, func(b *asm.Builder) {
		b.Li(isa.RegA0, ChurnWindowVA)
		b.Li(isa.RegA1, 0x10000)
		b.Li(isa.RegA2, isa.PTERead)
		b.Li(isa.RegA7, gabi.HCMMUMap)
		b.Ecall()
		b.Store(isa.OpSD, isa.RegA0, isa.RegZero, 0x100)
		b.Halt(0)
	})
	vm.Boot(img)
	vm.RunToHalt(budget)
	v, _ := vm.Mem.ReadUint(0x100, 8)
	if v != gabi.HCEInval {
		t.Fatalf("ret = %#x", v)
	}
}

func TestGuestAccessBeyondRAMFaults(t *testing.T) {
	vm := newTestVM(t, ModeNative)
	img := miniProgram(t, func(b *asm.Builder) {
		b.La(isa.RegT0, "handler")
		b.Csrw(isa.CSRStvec, isa.RegT0)
		b.Li(isa.RegT1, 0x3000_0000) // beyond RAM, below MMIO
		b.Load(isa.OpLD, isa.RegT2, isa.RegT1, 0)
		b.Halt(1)
		b.Align(4)
		b.Label("handler")
		b.Csrr(isa.RegA0, isa.CSRScause)
		b.Store(isa.OpSD, isa.RegA0, isa.RegZero, 0x100)
		b.Halt(0)
	})
	vm.Boot(img)
	if st := vm.RunToHalt(budget); st != StateHalted || vm.HaltCode != 0 {
		t.Fatalf("state %v code %d", st, vm.HaltCode)
	}
	v, _ := vm.Mem.ReadUint(0x100, 8)
	if v != isa.CauseLoadAccess {
		t.Fatalf("cause = %d", v)
	}
}

func TestBalloonReclaimAndReturn(t *testing.T) {
	vm := newTestVM(t, ModeHW)
	bal, _, err := vm.AttachVirtioBalloon()
	if err != nil {
		t.Fatal(err)
	}
	img := miniProgram(t, func(b *asm.Builder) {
		// Touch page 0x40 so it is resident, then spin on param 0.
		b.Li(isa.RegT0, 0x40000)
		b.Store(isa.OpSD, isa.RegT0, isa.RegT0, 0)
		b.Halt(0)
	})
	vm.Boot(img)
	vm.RunToHalt(budget)
	if vm.Mem.Frame(0x40) == mem.NoFrame {
		t.Fatal("page not resident")
	}
	// Host-side reclaim through the balloon ops (as the device would).
	ops := balloonOps{vm}
	ops.ReclaimPage(0x40)
	if vm.Mem.Frame(0x40) != mem.NoFrame {
		t.Fatal("reclaim did not unmap")
	}
	ops.ReturnPage(0x40)
	if vm.Mem.Frame(0x40) == mem.NoFrame {
		t.Fatal("return did not remap")
	}
	_ = bal
}

func TestReclaimHookRetriesAllocation(t *testing.T) {
	// Pool sized so the guest runs out; the hook frees one page each time.
	pool := mem.NewPool(40)
	vm, err := NewVM(pool, Config{Name: "oc", Mode: ModeHW, MemBytes: tRAM})
	if err != nil {
		t.Fatal(err)
	}
	var reclaims int
	vm.ReclaimHook = func() bool {
		// Evict the lowest present heap page.
		for gfn := uint64(0x20); gfn < vm.Mem.Pages(); gfn++ {
			if vm.Mem.Frame(gfn) != mem.NoFrame && !vm.Mem.WriteProtected(gfn) {
				vm.Mem.Unmap(gfn)
				reclaims++
				return true
			}
		}
		return false
	}
	img := miniProgram(t, func(b *asm.Builder) {
		// Touch 64 distinct pages at 0x40000.. — more than the pool allows.
		b.Li(isa.RegT0, 0x40000)
		b.Li(isa.RegT1, 64)
		b.Label("loop")
		b.Store(isa.OpSD, isa.RegT1, isa.RegT0, 0)
		b.Li(isa.RegT2, isa.PageSize)
		b.R(isa.OpADD, isa.RegT0, isa.RegT0, isa.RegT2)
		b.I(isa.OpADDI, isa.RegT1, isa.RegT1, -1)
		b.Branch(isa.OpBNE, isa.RegT1, isa.RegZero, "loop")
		b.Halt(0)
	})
	vm.Boot(img)
	if st := vm.RunToHalt(budget); st != StateHalted {
		t.Fatalf("state %v err %v", st, vm.Err)
	}
	if reclaims == 0 {
		t.Fatal("hook never fired")
	}
}

// spinProgram counts iterations into params[PResult0] forever.
func spinProgram(t *testing.T) []byte {
	return miniProgram(t, func(b *asm.Builder) {
		b.Li(isa.RegT0, 0)
		b.Label("loop")
		b.I(isa.OpADDI, isa.RegT0, isa.RegT0, 1)
		b.Li(isa.RegT1, gabi.ParamBase+gabi.PResult0*8)
		b.Store(isa.OpSD, isa.RegT0, isa.RegT1, 0)
		b.J("loop")
	})
}

func TestHostRunSharesCPUFairly(t *testing.T) {
	cs := sched.NewCredit()
	h := NewHost(tPool, 1, cs)
	img := spinProgram(t)
	for i := 0; i < 3; i++ {
		vm, err := h.CreateVM(Config{Name: "vm", Mode: ModeHW, MemBytes: tRAM})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Boot(img); err != nil {
			t.Fatal(err)
		}
		h.AddToScheduler(i, 256, 0)
	}
	h.Run(60_000_000)
	var counts []uint64
	for _, vm := range h.VMs {
		counts = append(counts, vm.Result(gabi.PResult0))
	}
	for _, c := range counts {
		if c == 0 {
			t.Fatalf("a VM starved: %v", counts)
		}
	}
	// Equal weights: within 25% of each other.
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if float64(max) > 1.25*float64(min) {
		t.Fatalf("unfair split: %v", counts)
	}
}

func TestHostRunStopsWhenAllHalt(t *testing.T) {
	h := NewHost(tPool, 1, sched.NewRoundRobin(DefaultQuantum))
	img := miniProgram(t, func(b *asm.Builder) { b.Halt(0) })
	vm, _ := h.CreateVM(Config{Name: "vm", Mode: ModeNative, MemBytes: tRAM})
	vm.Boot(img)
	h.AddToScheduler(0, 1, 0)
	h.Run(1_000_000_000)
	if !h.AllHalted() {
		t.Fatalf("vm state %v", vm.State)
	}
	if !strings.Contains(h.String(), "vms=1") {
		t.Fatal("host String")
	}
}

func TestHostWeightedShares(t *testing.T) {
	cs := sched.NewCredit()
	h := NewHost(tPool, 1, cs)
	img := spinProgram(t)
	for i := 0; i < 2; i++ {
		vm, _ := h.CreateVM(Config{Name: "vm", Mode: ModeHW, MemBytes: tRAM})
		vm.Boot(img)
	}
	h.AddToScheduler(0, 512, 0) // 4x weight
	h.AddToScheduler(1, 128, 0)
	h.Run(120_000_000)
	c0 := h.VMs[0].Result(gabi.PResult0)
	c1 := h.VMs[1].Result(gabi.PResult0)
	ratio := float64(c0) / float64(c1)
	if ratio < 3.0 || ratio > 5.0 {
		t.Fatalf("weight 4:1 gave %.2f (%d vs %d)", ratio, c0, c1)
	}
}

func TestModeAndStateStrings(t *testing.T) {
	for _, m := range []Mode{ModeNative, ModeTrap, ModePara, ModeHW} {
		if m.String() == "mode?" {
			t.Fatal("mode string")
		}
	}
	for _, s := range []State{StateCreated, StateRunning, StateIdle, StatePaused, StateHalted, StateError} {
		if s.String() == "state?" {
			t.Fatal("state string")
		}
	}
}
