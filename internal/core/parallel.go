package core

import (
	"sync"

	"govisor/internal/vnet"
)

// LeaseScheduler is the optional capability RunParallel uses to dispatch
// several VMs per epoch: BeginLease excludes an entity from Next until
// EndLease, so one serial lease phase can hand out distinct (VM, quantum)
// pairs. All schedulers in internal/sched implement it; a plain Scheduler
// still works under RunParallel but degenerates to one lease per epoch.
type LeaseScheduler interface {
	Scheduler
	BeginLease(id int)
	EndLease(id int)
}

// epochLease is one (VM, quantum) grant of an epoch. used is written by the
// executing worker and read back after the epoch barrier.
type epochLease struct {
	id      int
	quantum uint64
	used    uint64
}

// RunParallel multiplexes the host's VMs like Run, but executes each epoch's
// leased VMs concurrently on a pool of host worker goroutines. It runs until
// every VM has halted (or errored), or until the host clock advances by
// limit, and returns the host cycles elapsed.
//
// The engine is built so that every guest-visible outcome is independent of
// both the worker count and goroutine interleaving:
//
//   - Epoch schedule. Each epoch, the serial prologue wakes timers and then
//     leases up to min(runnable, PCPUs) distinct VMs from the scheduler
//     (BeginLease keeps Next from repeating an entity). The schedule is
//     fixed before any worker runs.
//   - Concurrent execution. Workers run vm.Step for the leased VMs. A VM's
//     entire state (vCPU, MMU, TLB, icache, devices, GuestPhys) is touched
//     only by the worker holding its lease; the one shared structure, the
//     host frame pool, is lock-striped and goroutine-safe, and frame numbers
//     are not guest-visible.
//   - Epoch barrier. Accounting, scheduler state edges, the clock advance
//     and EpochFunc (KSM scans, balloon policy, migration rounds, deferred
//     vnet delivery — every cross-VM effect) run serially, in lease order.
//
// The host clock advances by the longest lease actually consumed: each
// leased VM occupies its own simulated core for the epoch. This is gang
// scheduling — a VM that exits its quantum early still holds its core until
// the barrier — which slightly differs from Run's single-dispatch
// interleaving but is deterministic and preserves min(N, PCPUs) aggregate
// progress.
//
// Known limits:
//
//   - Frame-pool exhaustion races. If concurrent leases allocate the pool's
//     final frames mid-epoch, which VM sees ErrOutOfFrames can vary with
//     interleaving.
//   - VM.ReclaimHook and VM.PageSource run on the faulting VM's worker,
//     mid-epoch. A hook that touches only host-side or own-VM state is
//     safe, but one that reclaims from *other* VMs' address spaces (the
//     balloon Controller pattern) would mutate state a concurrent worker
//     owns. Under RunParallel, overcommit pressure must instead be resolved
//     from EpochFunc — shrink the fleet at the barrier so mid-epoch
//     allocation never hits the wall — which also makes the outcome
//     deterministic.
func (h *Host) RunParallel(workers int, limit uint64) uint64 {
	if h.Sched == nil {
		panic("core: host has no scheduler")
	}
	if workers < 1 {
		workers = 1
	}
	h.ensureTimerMaps()
	ls, multi := h.Sched.(LeaseScheduler)

	// Inter-VM networking must not race across workers: flip every switch
	// the fleet's NICs attach to into epoch-deferred delivery for the
	// duration of the run. Frames queue on the sending port and deliver at
	// the epoch barrier, in (port id, send order).
	switches, restoreSwitches := h.deferSwitches()
	defer restoreSwitches()

	jobs := make(chan *epochLease)
	defer close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		go func() {
			for l := range jobs {
				l.used = h.VMs[l.id].Step(l.quantum)
				wg.Done()
			}
		}()
	}

	leases := make([]*epochLease, 0, h.PCPUs)
	start := h.Now
	for h.Now-start < limit {
		runnable := h.wakeSleepers()
		if runnable == 0 {
			if !h.advanceToNextWake() {
				return h.Now - start
			}
			continue
		}
		par := runnable
		if par > h.PCPUs {
			par = h.PCPUs
		}
		if par < 1 || !multi {
			par = 1
		}

		// Lease phase (serial): fix this epoch's schedule.
		leases = leases[:0]
		for len(leases) < par {
			id, quantum, ok := h.Sched.Next()
			if !ok {
				break
			}
			if quantum == 0 {
				quantum = h.Quantum
			}
			if h.VMs[id].State != StateRunning {
				h.parkIfNotRunning(id, h.Now)
				continue
			}
			// Host timer preemption: never run an epoch past the next
			// pending timer wake. A leased VM runs on its own simulated
			// core, so cycle room equals wall room (par 1).
			quantum = h.clampToNextWake(quantum, 1)
			h.chargeRunqueueWait(id)
			if multi {
				ls.BeginLease(id)
			}
			leases = append(leases, &epochLease{id: id, quantum: quantum})
		}
		if len(leases) == 0 {
			h.Now += h.Quantum // all entities capped/throttled: host idles
			continue
		}

		// Execute phase: the schedule is already fixed, so interleaving
		// cannot affect any guest-visible outcome.
		wg.Add(len(leases))
		for _, l := range leases {
			jobs <- l
		}
		wg.Wait()

		// Barrier phase (serial, in lease order).
		var epochWall uint64
		for _, l := range leases {
			h.Sched.Account(l.id, l.used)
			if multi {
				ls.EndLease(l.id)
			}
			// A lease that went idle stopped executing at epoch start +
			// consumed cycles (its own simulated core ran 1:1 with wall).
			h.parkIfNotRunning(l.id, h.Now+l.used)
			if l.used > epochWall {
				epochWall = l.used
			}
		}
		if epochWall == 0 {
			epochWall = 1 // ensure forward progress
		}
		h.Now += epochWall
		// Barrier-time frame delivery (or EpochFunc work) may raise IRQs
		// that wake idle VMs; the next epoch's wakeSleepers resyncs the
		// scheduler with any VM a device made runnable.
		for _, sw := range switches {
			sw.Flush()
		}
		if h.EpochFunc != nil {
			h.EpochFunc()
		}
	}
	return h.Now - start
}

// deferSwitches flips every switch attached to this host's VMs into epoch-
// deferred delivery, returning the distinct switches plus a restore func
// that flushes any leftover frames and reinstates each switch's prior mode.
func (h *Host) deferSwitches() ([]*vnet.Switch, func()) {
	var switches []*vnet.Switch
	prior := make(map[*vnet.Switch]bool)
	for _, vm := range h.VMs {
		for _, port := range vm.netPorts {
			sw := port.Switch()
			if _, seen := prior[sw]; seen {
				continue
			}
			prior[sw] = sw.Deferred()
			sw.SetDeferred(true)
			switches = append(switches, sw)
		}
	}
	return switches, func() {
		for _, sw := range switches {
			sw.Flush()
			sw.SetDeferred(prior[sw])
		}
	}
}
