package core

import (
	"fmt"

	"govisor/internal/gabi"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/mmu"
	"govisor/internal/vcpu"
)

// Step runs the VM for up to budget guest cycles, dispatching VM exits.
// It returns the number of cycles actually consumed (including VMM work
// charged to the guest clock).
//
//govisor:worker
func (vm *VM) Step(budget uint64) uint64 {
	cpu := vm.CPU
	start := cpu.Cycles
	deadline := start + budget
	for vm.State == StateRunning && cpu.Cycles < deadline {
		ex := cpu.Run(deadline - cpu.Cycles)
		vm.handleExit(ex)
	}
	return cpu.Cycles - start
}

// RunToHalt drives a single VM to completion, fast-forwarding idle periods
// to the next timer deadline. It stops after maxCycles of guest time as a
// runaway guard and returns the final state.
func (vm *VM) RunToHalt(maxCycles uint64) State {
	cpu := vm.CPU
	limit := cpu.Cycles + maxCycles
	for cpu.Cycles < limit {
		switch vm.State {
		case StateRunning:
			vm.Step(limit - cpu.Cycles)
		case StateIdle:
			// Only a timer can wake an idle VM with nobody else running.
			if cmp := cpu.CSR.Stimecmp; cmp != 0 {
				if cmp > cpu.Cycles {
					cpu.Cycles = cmp
				}
				vm.State = StateRunning
				continue
			}
			return vm.State
		default:
			return vm.State
		}
	}
	return vm.State
}

func (vm *VM) fail(err error) {
	vm.State = StateError
	if vm.Err == nil {
		vm.Err = err
	}
}

func (vm *VM) handleExit(ex vcpu.Exit) {
	cpu := vm.CPU
	switch ex.Reason {
	case vcpu.ExitQuantum:
		// Budget exhausted; Step's loop condition stops.

	case vcpu.ExitHalt:
		vm.HaltCode = ex.Code
		vm.State = StateHalted

	case vcpu.ExitEcall:
		if ex.From == vcpu.PrivU {
			// Deprivileged guest's user code made a syscall: reflect it into
			// the guest kernel (the expensive trap-and-emulate syscall path).
			cpu.InjectTrap(isa.CauseEcallU, 0)
			cpu.AddCycles(vm.costs.Inject)
			vm.Stats.Injections++
			return
		}
		vm.hypercall()

	case vcpu.ExitPriv:
		cpu.AddCycles(vm.costs.Emulate)
		if err := cpu.EmulatePrivileged(ex.Inst); err != nil {
			// Architecturally this is an illegal instruction in the guest.
			cpu.InjectTrap(isa.CauseIllegal, 0)
			cpu.AddCycles(vm.costs.Inject)
			vm.Stats.Injections++
		}

	case vcpu.ExitGuestTrap:
		cpu.InjectTrap(ex.Cause, ex.Tval)
		cpu.AddCycles(vm.costs.Inject)
		vm.Stats.Injections++

	case vcpu.ExitIntrWindow:
		irq := cpu.PendingInterrupt()
		if irq == 0 {
			return // raced with the guest masking interrupts; just resume
		}
		cpu.InjectTrap(isa.CauseInterrupt|irq, 0)
		cpu.AddCycles(vm.costs.Inject)
		vm.Stats.Injections++

	case vcpu.ExitWFI:
		// Stay runnable if anything is already pending; otherwise idle.
		if cpu.CSR.Sip&cpu.CSR.Sie == 0 {
			vm.State = StateIdle
		}

	case vcpu.ExitMMIO:
		vm.Stats.MMIOExits++
		if ex.MMIO.Write {
			vm.Bus.Write(ex.MMIO.GPA, int(ex.MMIO.Size), ex.MMIO.Value)
		} else {
			v := vm.Bus.Read(ex.MMIO.GPA, int(ex.MMIO.Size))
			cpu.FinishMMIORead(ex.MMIO, v)
		}

	case vcpu.ExitShadowMiss:
		vm.handleShadowMiss(ex)

	case vcpu.ExitHostFault:
		vm.handleHostFault(ex)

	case vcpu.ExitError:
		vm.fail(ex.Err)

	default:
		vm.fail(fmt.Errorf("core: %s: unhandled exit %v", vm.Name, ex))
	}
}

func (vm *VM) handleShadowMiss(ex vcpu.Exit) {
	cpu := vm.CPU
	sh := vm.MMUCtx.Shadow
	if sh == nil {
		vm.fail(fmt.Errorf("core: %s: shadow miss without shadow engine", vm.Name))
		return
	}
	root := isa.SatpPPN(cpu.CSR.Satp)
	refs, fault := sh.Fill(root, ex.VA, ex.Access, cpu.Priv == vcpu.PrivU)
	cpu.AddCycles(uint64(refs)*vm.costs.PTRef + vm.costs.Emulate)
	vm.Stats.ShadowFills++
	if fault == nil {
		return // resume; the retry hits the freshly filled shadow entry
	}
	switch fault.Kind {
	case mmu.FaultGuest:
		cpu.InjectTrap(fault.Cause, ex.VA)
		cpu.AddCycles(vm.costs.Inject)
		vm.Stats.Injections++
	case mmu.FaultHost:
		vm.handleHostFault(vcpu.Exit{
			Reason: vcpu.ExitHostFault, VA: ex.VA, Access: ex.Access, Mem: fault.Mem,
		})
	default:
		vm.fail(fmt.Errorf("core: %s: shadow fill returned %v", vm.Name, fault))
	}
}

func (vm *VM) handleHostFault(ex vcpu.Exit) {
	cpu := vm.CPU
	f := ex.Mem
	if f == nil {
		vm.fail(fmt.Errorf("core: %s: host fault exit without fault", vm.Name))
		return
	}
	gfn := f.GPA >> isa.PageShift
	switch f.Kind {
	case mem.FaultNotPresent:
		// Post-copy migration pulls the page from the source first.
		if vm.PageSource != nil {
			if page, ok := vm.PageSource(gfn); ok {
				if err := vm.ensureFrame(gfn); err != nil {
					vm.fail(err)
					return
				}
				if err := vm.Mem.WriteRaw(gfn, page); err != nil {
					vm.fail(err)
					return
				}
				vm.Stats.RemoteFills++
				return
			}
		}
		if err := vm.ensureFrame(gfn); err != nil {
			vm.fail(err)
			return
		}
		if err := vm.Mem.Populate(gfn); err != nil {
			vm.fail(fmt.Errorf("core: %s: demand fill gfn %d: %w", vm.Name, gfn, err))
			return
		}
		cpu.AddCycles(vm.costs.DemandFill)
		vm.Stats.DemandFills++

	case mem.FaultWriteProt:
		switch {
		case vm.Mode == ModeTrap && vm.MMUCtx.Shadow != nil && vm.MMUCtx.Shadow.IsPTPage(gfn):
			vm.emulatePTWrite(f.GPA, gfn)
		case vm.Mode == ModePara && vm.ptPages[gfn]:
			// A paravirtual guest must not write pinned tables directly.
			cpu.InjectTrap(isa.CauseStorePageFault, ex.VA)
			cpu.AddCycles(vm.costs.Inject)
			vm.Stats.Injections++
		default:
			vm.fail(fmt.Errorf("core: %s: unexpected write-protect fault at gpa %#x", vm.Name, f.GPA))
		}

	case mem.FaultBeyondRAM:
		cpu.InjectTrap(isa.AccessFaultCause(f.Access), ex.VA)
		cpu.AddCycles(vm.costs.Inject)
		vm.Stats.Injections++

	default:
		vm.fail(fmt.Errorf("core: %s: unhandled host fault %v", vm.Name, f))
	}
}

// ensureFrame retries pool pressure through the overcommit hook.
func (vm *VM) ensureFrame(gfn uint64) error {
	if vm.Mem.Pool().Free() > 0 {
		return nil
	}
	if vm.ReclaimHook != nil && vm.ReclaimHook() {
		return nil
	}
	return fmt.Errorf("core: %s: host memory exhausted at gfn %d", vm.Name, gfn)
}

// emulatePTWrite handles a trapped guest store to a shadow-tracked page-
// table page: decode the faulting store, perform it on the guest's behalf,
// and invalidate every shadow entry derived through the page.
func (vm *VM) emulatePTWrite(gpa, gfn uint64) {
	cpu := vm.CPU
	in, err := vm.fetchCurrent()
	if err != nil {
		vm.fail(fmt.Errorf("core: %s: decoding PT write: %w", vm.Name, err))
		return
	}
	var size int
	switch in.Op {
	case isa.OpSB:
		size = 1
	case isa.OpSH:
		size = 2
	case isa.OpSW:
		size = 4
	case isa.OpSD:
		size = 8
	default:
		vm.fail(fmt.Errorf("core: %s: WP fault from non-store %s", vm.Name, isa.Disasm(in)))
		return
	}
	val := cpu.Reg(in.Rs2)
	if f := vm.Mem.WriteUintPriv(gpa, size, val); f != nil {
		vm.fail(fmt.Errorf("core: %s: emulating PT write: %w", vm.Name, f))
		return
	}
	for _, vpn := range vm.MMUCtx.Shadow.InvalidatePTWrite(gfn) {
		vm.MMUCtx.TLB.FlushPageAllASIDs(vpn << isa.PageShift)
	}
	cpu.SkipInstr()
	cpu.AddCycles(vm.costs.Emulate)
	vm.Stats.PTWriteEmuls++
}

// fetchCurrent reads and decodes the instruction at the guest PC (the VMM's
// software instruction decoder for emulation paths).
func (vm *VM) fetchCurrent() (isa.Inst, error) {
	cpu := vm.CPU
	gpa, refs, fault := vm.MMUCtx.Translate(cpu.PC, isa.AccExec, cpu.Priv == vcpu.PrivU)
	cpu.AddCycles(uint64(refs) * vm.costs.PTRef)
	if fault != nil {
		if fault.Kind == mmu.FaultShadowMiss && vm.MMUCtx.Shadow != nil {
			root := isa.SatpPPN(cpu.CSR.Satp)
			if _, ff := vm.MMUCtx.Shadow.Fill(root, cpu.PC, isa.AccExec, cpu.Priv == vcpu.PrivU); ff == nil {
				gpa, _, fault = vm.MMUCtx.Translate(cpu.PC, isa.AccExec, cpu.Priv == vcpu.PrivU)
			}
		}
		if fault != nil {
			return isa.Inst{}, fault
		}
	}
	w, f := vm.Mem.ReadUint(gpa, 4)
	if f != nil {
		return isa.Inst{}, f
	}
	return isa.Decode(uint32(w)), nil
}

// hypercall dispatches an ECALL from virtual S-mode. Under the native
// baseline the same ABI acts as firmware (SBI) calls.
func (vm *VM) hypercall() {
	cpu := vm.CPU
	cpu.AddCycles(vm.costs.Hypercall)
	vm.Stats.Hypercalls++
	nr := cpu.Reg(isa.RegA7)
	a0 := cpu.Reg(isa.RegA0)
	a1 := cpu.Reg(isa.RegA1)
	a2 := cpu.Reg(isa.RegA2)

	ret := uint64(gabi.HCOK)
	switch nr {
	case gabi.HCPutchar:
		vm.UART.MMIOWrite(0 /* UARTTx */, 1, a0)

	case gabi.HCYield:
		// Cooperative yield: treated as an immediate quantum end by making
		// the vCPU idle-for-zero-time; the scheduler layer observes it via
		// the exit itself. Nothing to do in the single-VM path.

	case gabi.HCSetTimer:
		cpu.WriteCSR(isa.CSRStimecmp, a0)

	case gabi.HCMMUMap:
		ret = vm.paraMap(a0, a1, a2)

	case gabi.HCMMUBatch:
		ret = vm.paraBatch(a0, a1)

	case gabi.HCMMUUnmap:
		ret = vm.paraUnmap(a0)

	case gabi.HCFlushTLB:
		vm.MMUCtx.Flush(a0, 0)

	case gabi.HCGetTime:
		ret = cpu.Cycles

	case gabi.HCMarker:
		vm.Markers = append(vm.Markers, Marker{ID: a0, Cycles: cpu.Cycles})

	case gabi.HCPuts:
		vm.putString(a0)

	case gabi.HCExit:
		vm.HaltCode = uint16(a0)
		vm.State = StateHalted
		cpu.SkipInstr()
		return

	default:
		ret = gabi.HCENoSys
	}
	cpu.SetReg(isa.RegA0, ret)
	cpu.SkipInstr()
}

func (vm *VM) putString(gpa uint64) {
	for i := 0; i < 4096; i++ {
		b, f := vm.Mem.ReadUint(gpa+uint64(i), 1)
		if f != nil || b == 0 {
			return
		}
		vm.UART.MMIOWrite(0, 1, b)
	}
}

// paraMap validates and applies one paravirtual mapping request.
func (vm *VM) paraMap(va, pa, flags uint64) uint64 {
	if vm.Mode != ModePara || vm.tb == nil {
		return gabi.HCEInval
	}
	if va>>isa.VABits != 0 || va&isa.PageMask != 0 || pa&isa.PageMask != 0 {
		return gabi.HCEInval
	}
	// The guest may only map its own RAM, and never the table region.
	gfn := pa >> isa.PageShift
	if gfn >= vm.Mem.Pages() || gfn >= vm.Mem.Pages()-ptRegionPages {
		return gabi.HCEInval
	}
	before := vm.tb.Pages
	if err := vm.tb.Map(va, pa, flags&(isa.PTERead|isa.PTEWrite|isa.PTEExec|isa.PTEUser)); err != nil {
		return gabi.HCEInval
	}
	// Newly allocated table pages must be pinned too.
	if vm.tb.Pages != before {
		for _, ppn := range vm.tb.TablePPNs() {
			if !vm.ptPages[ppn] {
				vm.Mem.WriteProtect(ppn, true)
				vm.ptPages[ppn] = true
			}
		}
	}
	vm.MMUCtx.TLB.FlushPageAllASIDs(va)
	vm.Stats.ParaMaps++
	return gabi.HCOK
}

func (vm *VM) paraUnmap(va uint64) uint64 {
	if vm.Mode != ModePara || vm.tb == nil {
		return gabi.HCEInval
	}
	if err := vm.tb.Unmap(va); err != nil {
		return gabi.HCEInval
	}
	vm.MMUCtx.TLB.FlushPageAllASIDs(va)
	vm.Stats.ParaMaps++
	return gabi.HCOK
}

// paraBatch applies count {va, pa, flags} triples from guest memory in one
// hypercall — the multicall batching that gives paravirtual MMU updates
// their amortized cost (ablation A1 compares against unbatched).
func (vm *VM) paraBatch(gpa, count uint64) uint64 {
	if vm.Mode != ModePara || count > 4096 {
		return gabi.HCEInval
	}
	var buf [gabi.BatchEntrySize]byte
	for i := uint64(0); i < count; i++ {
		if f := vm.Mem.Read(gpa+i*gabi.BatchEntrySize, buf[:]); f != nil {
			return gabi.HCEInval
		}
		va, pa, flags := gabi.DecodeBatchEntry(buf[:])
		if rc := vm.paraMap(va, pa, flags); rc != gabi.HCOK {
			return rc
		}
		// Charge the per-entry validation work, far cheaper than a
		// separate hypercall round trip.
		vm.CPU.AddCycles(vm.costs.MemAccess * 3)
	}
	vm.Stats.ParaBatches++
	return gabi.HCOK
}
