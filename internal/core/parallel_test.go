package core

import (
	"sync/atomic"
	"testing"

	"govisor/internal/asm"
	"govisor/internal/gabi"
	"govisor/internal/isa"
	"govisor/internal/sched"
)

// idleTickProgram arms the timer, sleeps in WFI, and repeats `ticks` times —
// the wakeup path RunParallel must reproduce exactly.
func idleTickProgram(t *testing.T, ticks int64, period uint64) []byte {
	return miniProgram(t, func(b *asm.Builder) {
		b.Li(isa.RegS0, uint64(ticks))
		b.Label("loop")
		b.Li(isa.RegA7, gabi.HCGetTime)
		b.Ecall()
		b.Li(isa.RegT0, period)
		b.R(isa.OpADD, isa.RegA0, isa.RegA0, isa.RegT0)
		b.Li(isa.RegA7, gabi.HCSetTimer)
		b.Ecall()
		b.Wfi()
		b.I(isa.OpADDI, isa.RegS0, isa.RegS0, -1)
		b.Branch(isa.OpBNE, isa.RegS0, isa.RegZero, "loop")
		b.Halt(0)
	})
}

// parallelFixture builds a host with 3 spinning VMs and 1 timer-idle VM
// under the given scheduler.
func parallelFixture(t *testing.T, mk func() Scheduler) *Host {
	t.Helper()
	h := NewHost(tPool, 2, mk())
	spin := spinProgram(t)
	idle := idleTickProgram(t, 4, 80_000)
	for i := 0; i < 3; i++ {
		vm, err := h.CreateVM(Config{Name: "spin", Mode: ModeHW, MemBytes: tRAM})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Boot(spin); err != nil {
			t.Fatal(err)
		}
		h.AddToScheduler(i, 256, 0)
	}
	vm, err := h.CreateVM(Config{Name: "idle", Mode: ModeHW, MemBytes: tRAM})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Boot(idle); err != nil {
		t.Fatal(err)
	}
	h.AddToScheduler(3, 256, 0)
	return h
}

type hostSnapshot struct {
	now    uint64
	cycles [4]uint64
	pcs    [4]uint64
	work   [4]uint64
	shares []float64
}

func snapshotHost(h *Host) hostSnapshot {
	s := hostSnapshot{now: h.Now}
	for i, vm := range h.VMs {
		s.cycles[i] = vm.CPU.Cycles
		s.pcs[i] = vm.CPU.PC
		s.work[i] = vm.Result(gabi.PResult0)
	}
	if sh, ok := h.Sched.(interface{ Shares() []float64 }); ok {
		s.shares = sh.Shares()
	}
	return s
}

// TestRunParallelIdenticalAcrossWorkers: the whole point of the epoch
// engine — worker count must never leak into any guest-visible or scheduler-
// visible number, for every policy, including timer wakeups mid-run.
func TestRunParallelIdenticalAcrossWorkers(t *testing.T) {
	policies := map[string]func() Scheduler{
		"rr":     func() Scheduler { return sched.NewRoundRobin(DefaultQuantum) },
		"credit": func() Scheduler { return sched.NewCredit() },
		"cfs":    func() Scheduler { return sched.NewCFS() },
	}
	for name, mk := range policies {
		var ref hostSnapshot
		for workers := 1; workers <= 4; workers++ {
			h := parallelFixture(t, mk)
			h.RunParallel(workers, 40_000_000/raceScale)
			got := snapshotHost(h)
			if workers == 1 {
				ref = got
				continue
			}
			if got.now != ref.now {
				t.Errorf("%s w=%d: host clock %d != %d", name, workers, got.now, ref.now)
			}
			for i := range got.cycles {
				if got.cycles[i] != ref.cycles[i] || got.pcs[i] != ref.pcs[i] || got.work[i] != ref.work[i] {
					t.Errorf("%s w=%d vm%d: (cyc=%d pc=%#x work=%d) != (cyc=%d pc=%#x work=%d)",
						name, workers, i, got.cycles[i], got.pcs[i], got.work[i],
						ref.cycles[i], ref.pcs[i], ref.work[i])
				}
			}
			for i := range got.shares {
				if got.shares[i] != ref.shares[i] {
					t.Errorf("%s w=%d: scheduler shares diverged: %v vs %v", name, workers, got.shares, ref.shares)
					break
				}
			}
		}
	}
}

// TestRunParallelRunsAllToHalt: halting guests finish under the pool and the
// engine reports completion by going idle.
func TestRunParallelRunsAllToHalt(t *testing.T) {
	h := NewHost(tPool, 4, sched.NewCredit())
	img := miniProgram(t, func(b *asm.Builder) {
		b.Li(isa.RegT0, 5000)
		b.Label("loop")
		b.I(isa.OpADDI, isa.RegT0, isa.RegT0, -1)
		b.Branch(isa.OpBNE, isa.RegT0, isa.RegZero, "loop")
		b.Halt(0)
	})
	for i := 0; i < 6; i++ {
		vm, err := h.CreateVM(Config{Name: "v", Mode: ModeHW, MemBytes: tRAM})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Boot(img); err != nil {
			t.Fatal(err)
		}
		h.AddToScheduler(i, 256, 0)
	}
	elapsed := h.RunParallel(3, 1_000_000_000)
	if !h.AllHalted() {
		for _, vm := range h.VMs {
			t.Logf("vm state %v err %v", vm.State, vm.Err)
		}
		t.Fatal("fleet did not halt")
	}
	if elapsed == 0 {
		t.Fatal("no host time elapsed")
	}
}

// TestRunParallelSharesCPUFairly mirrors the serial fairness test under the
// parallel engine: equal weights on a 1-PCPU host must stay within 25%.
func TestRunParallelSharesCPUFairly(t *testing.T) {
	cs := sched.NewCredit()
	// Keep enough dispatches in the window for fairness to converge even
	// with the race-scaled budget.
	cs.Quantum = 200_000
	h := NewHost(tPool, 1, cs)
	img := spinProgram(t)
	for i := 0; i < 3; i++ {
		vm, err := h.CreateVM(Config{Name: "vm", Mode: ModeHW, MemBytes: tRAM})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Boot(img); err != nil {
			t.Fatal(err)
		}
		h.AddToScheduler(i, 256, 0)
	}
	h.RunParallel(4, 60_000_000/raceScale)
	var lo, hi uint64
	for i, vm := range h.VMs {
		c := vm.Result(gabi.PResult0)
		if c == 0 {
			t.Fatalf("vm %d starved", i)
		}
		if i == 0 || c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if float64(hi) > 1.25*float64(lo) {
		t.Fatalf("unfair split: lo=%d hi=%d", lo, hi)
	}
}

// TestRunParallelEpochFunc: the barrier hook runs, serially, every epoch.
func TestRunParallelEpochFunc(t *testing.T) {
	h := NewHost(tPool, 2, sched.NewCredit())
	img := spinProgram(t)
	for i := 0; i < 2; i++ {
		vm, _ := h.CreateVM(Config{Name: "vm", Mode: ModeHW, MemBytes: tRAM})
		if err := vm.Boot(img); err != nil {
			t.Fatal(err)
		}
		h.AddToScheduler(i, 256, 0)
	}
	var epochs atomic.Int64
	var inHook atomic.Int64
	h.EpochFunc = func() {
		if inHook.Add(1) != 1 {
			t.Error("EpochFunc reentered")
		}
		epochs.Add(1)
		inHook.Add(-1)
	}
	h.RunParallel(2, 10_000_000/raceScale)
	if epochs.Load() == 0 {
		t.Fatal("EpochFunc never ran")
	}
}

// plainScheduler hides the lease capability, forcing the single-lease
// fallback path.
type plainScheduler struct{ s *sched.Credit }

func (p plainScheduler) Add(id int, w, c uint64)     { p.s.Add(id, w, c) }
func (p plainScheduler) Remove(id int)               { p.s.Remove(id) }
func (p plainScheduler) Next() (int, uint64, bool)   { return p.s.Next() }
func (p plainScheduler) Account(id int, used uint64) { p.s.Account(id, used) }
func (p plainScheduler) Block(id int)                { p.s.Block(id) }
func (p plainScheduler) Unblock(id int)              { p.s.Unblock(id) }

// TestRunParallelPlainSchedulerFallback: a scheduler without lease support
// still works (one lease per epoch).
func TestRunParallelPlainSchedulerFallback(t *testing.T) {
	h := NewHost(tPool, 4, plainScheduler{sched.NewCredit()})
	img := spinProgram(t)
	for i := 0; i < 2; i++ {
		vm, _ := h.CreateVM(Config{Name: "vm", Mode: ModeHW, MemBytes: tRAM})
		if err := vm.Boot(img); err != nil {
			t.Fatal(err)
		}
		h.AddToScheduler(i, 256, 0)
	}
	h.RunParallel(4, 20_000_000/raceScale)
	for i, vm := range h.VMs {
		if vm.Result(gabi.PResult0) == 0 {
			t.Fatalf("vm %d starved under fallback", i)
		}
	}
}
