package guest

import (
	"fmt"
	"testing"

	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/sched"
)

// TestDifferentialThreadedDispatchInvisible is the transparency proof for
// the threaded dispatch engine, the successor to the icache (PR 1) and
// superblock (PR 3) proofs: for every virtualization mode and differential
// workload, a run on the decode-time-resolved executor table must be
// indistinguishable from a run pinned to the original dispatch switch —
// cycles, instret, registers, CSRs, UART output, guest RAM, and every
// VMM/MMU/TLB statistic. The icache and superblocks stay on in both arms,
// so the comparison isolates dispatch (including the block-specialized ALU
// path); threaded dispatch may only change host time.
func TestDifferentialThreadedDispatchInvisible(t *testing.T) {
	workloads := []struct {
		name string
		w    Workload
	}{
		{"compute-hot", Compute(300, 50)},  // straight-line ALU runs, CSR terminators
		{"memtouch", MemTouch(4, 300, 40)}, // data TLB churn under block memory ops
		{"ptchurn", PTChurn(2, false)},     // SFENCE flushes invalidate fetch/data memos
		{"syscall", Syscall(60)},           // privilege flips through ECALL/SRET executors
		{"csr", CSRLoop(80)},               // CSR executors exit every few instructions
		{"idle", Idle(3, 50_000)},          // WFI executor, STIMECMP latches, re-entry
	}
	for _, mode := range allModes {
		for _, wl := range workloads {
			t.Run(mode.String()+"/"+wl.name, func(t *testing.T) {
				on := bootAndRunTD(t, mode, wl.w, false)
				off := bootAndRunTD(t, mode, wl.w, true)

				con, coff := on.CPU, off.CPU
				if con.Cycles != coff.Cycles || con.Instret != coff.Instret {
					t.Errorf("time diverged: threaded (cyc=%d ret=%d) vs switch (cyc=%d ret=%d)",
						con.Cycles, con.Instret, coff.Cycles, coff.Instret)
				}
				if con.X != coff.X || con.PC != coff.PC || con.Priv != coff.Priv {
					t.Error("register state diverged")
				}
				if con.CSR != coff.CSR {
					t.Errorf("CSR state diverged: %+v vs %+v", con.CSR, coff.CSR)
				}
				if con.Stats != coff.Stats {
					t.Errorf("exit stats diverged: %+v vs %+v", con.Stats, coff.Stats)
				}
				if on.Stats != off.Stats {
					t.Errorf("VMM stats diverged: %+v vs %+v", on.Stats, off.Stats)
				}
				if on.MMUCtx.Stats != off.MMUCtx.Stats {
					t.Errorf("MMU stats diverged: %+v vs %+v", on.MMUCtx.Stats, off.MMUCtx.Stats)
				}
				if on.MMUCtx.TLB.Stats != off.MMUCtx.TLB.Stats {
					t.Errorf("TLB stats diverged: %+v vs %+v", on.MMUCtx.TLB.Stats, off.MMUCtx.TLB.Stats)
				}
				if on.Output() != off.Output() {
					t.Errorf("UART output diverged: %q vs %q", on.Output(), off.Output())
				}
				if on.Mem.DirtySets != off.Mem.DirtySets || on.Mem.Present() != off.Mem.Present() {
					t.Error("memory population diverged")
				}
				for slot := gabi.PResult0; slot <= gabi.PResult3; slot++ {
					if on.Result(slot) != off.Result(slot) {
						t.Errorf("result slot %d diverged: %d vs %d", slot, on.Result(slot), off.Result(slot))
					}
				}
				if ramHash(on) != ramHash(off) {
					t.Error("guest RAM image diverged")
				}
			})
		}
	}
}

// bootAndRunTD runs a workload with threaded dispatch toggled (icache and
// superblocks stay on in both arms so the comparison isolates dispatch).
func bootAndRunTD(t *testing.T, mode core.Mode, w Workload, noThreaded bool) *core.VM {
	t.Helper()
	vm := bootVMCfg(t, mode, w, func(c *core.Config) { c.NoThreadedDispatch = noThreaded })
	state := vm.RunToHalt(runBudget)
	if state != core.StateHalted {
		t.Fatalf("[%v threaded=%v] final state %v (err=%v, pc=%#x)", mode, !noThreaded, state, vm.Err, vm.CPU.PC)
	}
	if vm.HaltCode != 0 {
		t.Fatalf("[%v threaded=%v] guest panicked: halt=%#x", mode, !noThreaded, vm.HaltCode)
	}
	return vm
}

// TestDifferentialThreadedDispatchParallel extends the dispatch proof to the
// parallel engine: a mixed-mode fleet under RunParallel must be byte-
// identical with threaded dispatch on or off at every worker count 1..4 —
// per-VM cycles, instret, registers, CSRs, UART, RAM hashes, VMM/MMU/TLB
// stats, exit counters, host clock and pool occupancy. Epoch-lease quantum
// slicing must land on the same instruction under both dispatch engines.
func TestDifferentialThreadedDispatchParallel(t *testing.T) {
	spec := consolidationFleet()
	ref := buildFleetCfg(t, spec, func() core.Scheduler { return sched.NewCredit() },
		func(c *core.Config) { c.NoThreadedDispatch = true })
	runFleetParallel(t, ref, 1)

	for workers := 1; workers <= 4; workers++ {
		h := buildFleetCfg(t, spec, func() core.Scheduler { return sched.NewCredit() }, nil)
		runFleetParallel(t, h, workers)
		if h.Now != ref.Now {
			t.Errorf("w=%d: host clock %d != %d", workers, h.Now, ref.Now)
		}
		if h.Pool.InUse() != ref.Pool.InUse() {
			t.Errorf("w=%d: pool occupancy %d != %d", workers, h.Pool.InUse(), ref.Pool.InUse())
		}
		for i := range h.VMs {
			compareVMs(t, fmt.Sprintf("dispatch w=%d vm=%s", workers, h.VMs[i].Name),
				ref.VMs[i], h.VMs[i], true)
		}
	}
}
