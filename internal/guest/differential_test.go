package guest

import (
	"math/rand"
	"testing"

	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/isa"
)

// TestDifferentialExecutionAcrossModes is the transparency property at the
// heart of virtualization: for any workload, every virtualization mode must
// produce exactly the result the native machine produces — the modes may
// only differ in *time*. Randomized workload parameters, one seed, four
// machines.
func TestDifferentialExecutionAcrossModes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type config struct {
		name string
		w    Workload
	}
	var configs []config
	for i := 0; i < 6; i++ {
		configs = append(configs,
			config{"compute", Compute(uint64(rng.Intn(400)+50), uint64(rng.Intn(40)))},
			config{"memtouch", MemTouch(uint64(rng.Intn(4)+1), uint64(rng.Intn(200)+16), uint64(rng.Intn(100)))},
			config{"syscall", Syscall(uint64(rng.Intn(100) + 10))},
			config{"csr", CSRLoop(uint64(rng.Intn(200) + 20))},
		)
	}
	for i, cfg := range configs {
		var ref uint64
		var refSet bool
		for _, mode := range allModes {
			vm := bootAndRun(t, mode, cfg.w)
			got := vm.Result(gabi.PResult0)
			if !refSet {
				ref = got
				refSet = true
				continue
			}
			if got != ref {
				t.Fatalf("config %d (%s): %v computed %d, native computed %d — virtualization is not transparent",
					i, cfg.name, mode, got, ref)
			}
		}
	}
}

// TestDifferentialICacheInvisible is the transparency proof for the decoded-
// instruction block cache: for every virtualization mode and workload, a run
// with the cache must be indistinguishable from a run without it — not just
// in architectural state (cycles, instret, registers, CSRs, UART output) but
// in every simulation statistic (VM exits, TLB hits/misses/evictions, MMU
// walks, shadow fills, dirty pages). The cache may only change host time.
func TestDifferentialICacheInvisible(t *testing.T) {
	workloads := []struct {
		name string
		w    Workload
	}{
		{"compute-hot", Compute(300, 50)},  // the F3 privileged-density loop
		{"memtouch", MemTouch(4, 300, 40)}, // TLB pressure: fetch entries compete with data
		{"ptchurn", PTChurn(2, false)},     // SFENCE flushes + write-protect faults
		{"syscall", Syscall(60)},           // trap entry/SRET privilege flips mid-stream
		{"csr", CSRLoop(80)},               // CSR exits every few instructions
		{"idle", Idle(3, 50_000)},          // WFI, timer fast-forward, re-entry
	}
	for _, mode := range allModes {
		for _, wl := range workloads {
			t.Run(mode.String()+"/"+wl.name, func(t *testing.T) {
				on := bootAndRunCfgd(t, mode, wl.w, false)
				off := bootAndRunCfgd(t, mode, wl.w, true)

				con, coff := on.CPU, off.CPU
				if con.Cycles != coff.Cycles || con.Instret != coff.Instret {
					t.Errorf("time diverged: cached (cyc=%d ret=%d) vs plain (cyc=%d ret=%d)",
						con.Cycles, con.Instret, coff.Cycles, coff.Instret)
				}
				if con.X != coff.X || con.PC != coff.PC || con.Priv != coff.Priv {
					t.Error("register state diverged")
				}
				if con.CSR != coff.CSR {
					t.Errorf("CSR state diverged: %+v vs %+v", con.CSR, coff.CSR)
				}
				if con.Stats != coff.Stats {
					t.Errorf("exit stats diverged: %+v vs %+v", con.Stats, coff.Stats)
				}
				if on.Stats != off.Stats {
					t.Errorf("VMM stats diverged: %+v vs %+v", on.Stats, off.Stats)
				}
				if on.MMUCtx.Stats != off.MMUCtx.Stats {
					t.Errorf("MMU stats diverged: %+v vs %+v", on.MMUCtx.Stats, off.MMUCtx.Stats)
				}
				if on.MMUCtx.TLB.Stats != off.MMUCtx.TLB.Stats {
					t.Errorf("TLB stats diverged: %+v vs %+v", on.MMUCtx.TLB.Stats, off.MMUCtx.TLB.Stats)
				}
				if on.Output() != off.Output() {
					t.Errorf("UART output diverged: %q vs %q", on.Output(), off.Output())
				}
				if on.Mem.DirtySets != off.Mem.DirtySets || on.Mem.Present() != off.Mem.Present() {
					t.Error("memory population diverged")
				}
				for slot := gabi.PResult0; slot <= gabi.PResult3; slot++ {
					if on.Result(slot) != off.Result(slot) {
						t.Errorf("result slot %d diverged: %d vs %d", slot, on.Result(slot), off.Result(slot))
					}
				}
				// The cached run should actually have used the cache.
				if con.ICache == nil || con.ICache.Stats.Hits == 0 {
					t.Error("cached run never hit the decoded cache")
				}
				if coff.ICache != nil {
					t.Error("NoICache run has a cache attached")
				}

				// Full guest-RAM image comparison.
				bufOn := make([]byte, isa.PageSize)
				bufOff := make([]byte, isa.PageSize)
				for gfn := uint64(0); gfn < on.Mem.Pages(); gfn++ {
					on.Mem.ReadRaw(gfn, bufOn)
					off.Mem.ReadRaw(gfn, bufOff)
					for i := range bufOn {
						if bufOn[i] != bufOff[i] {
							t.Fatalf("guest RAM diverged at gfn %d byte %d", gfn, i)
						}
					}
				}
			})
		}
	}
}

// bootAndRunCfgd runs a workload with the decoded-instruction cache toggled.
func bootAndRunCfgd(t *testing.T, mode core.Mode, w Workload, noICache bool) *core.VM {
	t.Helper()
	vm := bootVMCfg(t, mode, w, func(c *core.Config) { c.NoICache = noICache })
	state := vm.RunToHalt(runBudget)
	if state != core.StateHalted {
		t.Fatalf("[%v icache=%v] final state %v (err=%v, pc=%#x)", mode, !noICache, state, vm.Err, vm.CPU.PC)
	}
	if vm.HaltCode != 0 {
		t.Fatalf("[%v icache=%v] guest panicked: halt=%#x", mode, !noICache, vm.HaltCode)
	}
	return vm
}

// TestDifferentialMemoryImage: after the same deterministic workload, the
// guest-visible heap contents must be identical across modes (shadow tables,
// nested walks and hypercall paging must never corrupt data).
func TestDifferentialMemoryImage(t *testing.T) {
	w := MemTouch(3, 64, 50)
	heap := func(vm *core.VM) []byte {
		base := vm.Result(0) // unused slot; compute heap from params instead
		_ = base
		hb, _ := vm.Mem.ReadUint(gabi.ParamBase+gabi.PHeapBase*8, 8)
		buf := make([]byte, 64*4096)
		for i := uint64(0); i < 64; i++ {
			vm.Mem.ReadRaw(hb+i, buf[i*4096:(i+1)*4096])
		}
		return buf
	}
	var ref []byte
	for _, mode := range allModes {
		vm := bootAndRun(t, mode, w)
		img := heap(vm)
		if ref == nil {
			ref = img
			continue
		}
		for i := range img {
			if img[i] != ref[i] {
				t.Fatalf("%v: heap byte %d differs (%d vs %d)", mode, i, img[i], ref[i])
			}
		}
	}
}
