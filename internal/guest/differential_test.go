package guest

import (
	"math/rand"
	"testing"

	"govisor/internal/core"
	"govisor/internal/gabi"
)

// TestDifferentialExecutionAcrossModes is the transparency property at the
// heart of virtualization: for any workload, every virtualization mode must
// produce exactly the result the native machine produces — the modes may
// only differ in *time*. Randomized workload parameters, one seed, four
// machines.
func TestDifferentialExecutionAcrossModes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type config struct {
		name string
		w    Workload
	}
	var configs []config
	for i := 0; i < 6; i++ {
		configs = append(configs,
			config{"compute", Compute(uint64(rng.Intn(400)+50), uint64(rng.Intn(40)))},
			config{"memtouch", MemTouch(uint64(rng.Intn(4)+1), uint64(rng.Intn(200)+16), uint64(rng.Intn(100)))},
			config{"syscall", Syscall(uint64(rng.Intn(100) + 10))},
			config{"csr", CSRLoop(uint64(rng.Intn(200) + 20))},
		)
	}
	for i, cfg := range configs {
		var ref uint64
		var refSet bool
		for _, mode := range allModes {
			vm := bootAndRun(t, mode, cfg.w)
			got := vm.Result(gabi.PResult0)
			if !refSet {
				ref = got
				refSet = true
				continue
			}
			if got != ref {
				t.Fatalf("config %d (%s): %v computed %d, native computed %d — virtualization is not transparent",
					i, cfg.name, mode, got, ref)
			}
		}
	}
}

// TestDifferentialMemoryImage: after the same deterministic workload, the
// guest-visible heap contents must be identical across modes (shadow tables,
// nested walks and hypercall paging must never corrupt data).
func TestDifferentialMemoryImage(t *testing.T) {
	w := MemTouch(3, 64, 50)
	heap := func(vm *core.VM) []byte {
		base := vm.Result(0) // unused slot; compute heap from params instead
		_ = base
		hb, _ := vm.Mem.ReadUint(gabi.ParamBase+gabi.PHeapBase*8, 8)
		buf := make([]byte, 64*4096)
		for i := uint64(0); i < 64; i++ {
			vm.Mem.ReadRaw(hb+i, buf[i*4096:(i+1)*4096])
		}
		return buf
	}
	var ref []byte
	for _, mode := range allModes {
		vm := bootAndRun(t, mode, w)
		img := heap(vm)
		if ref == nil {
			ref = img
			continue
		}
		for i := range img {
			if img[i] != ref[i] {
				t.Fatalf("%v: heap byte %d differs (%d vs %d)", mode, i, img[i], ref[i])
			}
		}
	}
}
